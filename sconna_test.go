package sconna

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestVersionSet(t *testing.T) {
	if Version == "" {
		t.Fatal("version unset")
	}
}

func TestFacadeCoreRoundTrip(t *testing.T) {
	cfg := DefaultCoreConfig()
	cfg.N = 8
	cfg.IdealADC = true
	vdpe, err := NewVDPE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vdpe.Dot([]int{100, 200}, []int{50, -60})
	if err != nil {
		t.Fatal(err)
	}
	exact := 100*50 - 200*60
	if math.Abs(float64(res.Est-exact)) > 2*256 {
		t.Fatalf("est=%d exact=%d", res.Est, exact)
	}
	vdpc, err := NewVDPC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vdpc.M() != cfg.M {
		t.Fatal("facade VDPC broken")
	}
}

func TestFacadeAccelerators(t *testing.T) {
	if SconnaAccel().Name != "SCONNA" {
		t.Fatal("SconnaAccel broken")
	}
	if MAMAccel().N != 22 || AMMAccel().N != 16 {
		t.Fatal("baseline configs broken")
	}
	ms := EvaluatedModels()
	if len(ms) != 4 {
		t.Fatal("evaluated models broken")
	}
	r, err := Simulate(SconnaAccel(), ms[3]) // ShuffleNet: fastest
	if err != nil {
		t.Fatal(err)
	}
	if r.FPS <= 0 {
		t.Fatal("simulate broken")
	}
}

func TestFacadeTableI(t *testing.T) {
	cells := TableI()
	if len(cells) != 16 {
		t.Fatalf("TableI cells=%d", len(cells))
	}
	s := SolveSconnaN(30e9)
	if s.PaperN != 176 {
		t.Fatal("paper N constant wrong")
	}
}

func TestFacadeFig7Sweeps(t *testing.T) {
	pts := Fig7a(-28, []float64{0.2, 0.8})
	if len(pts) != 2 || pts[1].BitrateHz <= pts[0].BitrateHz {
		t.Fatal("Fig7a sweep broken")
	}
	alpha := Fig7b(10)
	if len(alpha) != 11 || alpha[10].VoltageV <= alpha[1].VoltageV {
		t.Fatal("Fig7b sweep broken")
	}
}

func TestFacadeTableIIModels(t *testing.T) {
	ms := TableIIModels()
	if len(ms) != 4 {
		t.Fatal("TableIIModels broken")
	}
	for _, m := range ms {
		if _, gt := m.KernelCensus(44); gt == 0 {
			t.Fatalf("%s census empty", m.Name)
		}
	}
}

func TestFacadeAccuracyOptions(t *testing.T) {
	full := DefaultAccuracyOptions()
	quick := QuickAccuracyOptions()
	if quick.TrainExamples >= full.TrainExamples {
		t.Fatal("quick options should be smaller")
	}
	if full.Bits != 8 || full.VDPESize != 176 {
		t.Fatal("full options disagree with paper operating point")
	}
}

func TestFacadeRunFig9(t *testing.T) {
	data, err := RunFig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []string{"MAM (HOLYLIGHT)", "AMM (DEAPCNN)"} {
		if data.GmeanFPS[base] <= 1 {
			t.Fatalf("SCONNA should beat %s on FPS gmean", base)
		}
	}
}

func TestFacadeModelRegistry(t *testing.T) {
	src := nn.BuildSmallCNN(2, 4, 9)
	qn, err := QuantizeNetwork(src, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Artifact round trip through the facade loader.
	var buf bytes.Buffer
	if err := qn.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadQuantNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Digest() != qn.Digest() {
		t.Fatal("facade artifact round trip moved the digest")
	}

	reg := NewModelRegistry()
	defer reg.DrainAll(context.Background())
	shape := []int{1, 16, 16}
	m, err := reg.Register(DefaultModelName, loaded, SharedDotEngine(ExactDotEngine{}), ServeOptions{InputShape: shape})
	if err != nil {
		t.Fatal(err)
	}
	if m.Version() != qn.Digest().String() {
		t.Fatal("registry version is not the quantized network digest")
	}
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = float32(i%7) / 7
	}
	res, err := m.Server().Submit(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if want := qn.Forward(x, ExactDotEngine{}).ArgMax(); res.Class != want {
		t.Fatalf("registry classified %d, want %d", res.Class, want)
	}
	if def, err := reg.Default(); err != nil || def.Name() != DefaultModelName {
		t.Fatalf("default = %v, %v", def, err)
	}
}

func TestFacadeRunners(t *testing.T) {
	arun, err := NewAccelRunner(AccelRunnerOptions{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	jobs := []AccelJob{
		{Cfg: SconnaAccel(), Model: EvaluatedModels()[3]},
		{Cfg: SconnaAccel(), Model: EvaluatedModels()[3]}, // duplicate: computes once
	}
	results, err := arun.SimulateAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].FPS != results[1].FPS {
		t.Fatal("duplicate jobs diverged")
	}
	if s := arun.Stats(); s.Misses != 1 || s.Hits() != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit", s)
	}

	srun, err := NewScalabilityRunner(DefaultScalabilityConfig(), ScalabilityRunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cells := srun.TableI(); len(cells) != 16 {
		t.Fatalf("runner TableI cells=%d", len(cells))
	}
}

func TestFacadeResilience(t *testing.T) {
	// The engine-level fault schedule is a pure function of (seed, seq):
	// two options values with the same seed agree everywhere, and the
	// wrapped factory realizes exactly what the schedule promises.
	chaos := ChaosOptions{Seed: 3, ErrRate: 0.5, SkipSeqs: 2}
	var faulted int
	for seq := uint64(0); seq < 64; seq++ {
		f := chaos.FaultFor(seq)
		if seq < 2 && f != 0 {
			t.Fatalf("seq %d inside SkipSeqs faulted (%v)", seq, f)
		}
		if f != (ChaosOptions{Seed: 3, ErrRate: 0.5, SkipSeqs: 2}).FaultFor(seq) {
			t.Fatalf("schedule not replayable at seq %d", seq)
		}
		if f != 0 {
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("50% error rate scheduled no faults over 64 seqs")
	}
	factory := ChaosEngineFactory(SharedDotEngine(ExactDotEngine{}), chaos)
	for seq := 0; seq < 64; seq++ {
		_, err := factory(seq)
		if wantErr := chaos.FaultFor(uint64(seq)) == 1; (err != nil) != wantErr {
			t.Fatalf("factory(%d) err=%v, schedule says fault=%v", seq, err, chaos.FaultFor(uint64(seq)))
		}
	}

	// HTTP chaos + retrying client: every budgeted injected 500 is
	// flagged and recovered within the retry budget.
	var served int
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.WriteHeader(http.StatusOK)
	})
	hs := httptest.NewServer(ChaosMiddleware(inner, HTTPChaosOptions{Seed: 9, ErrorRate: 1, FaultBudget: 2}))
	defer hs.Close()
	client := RetryClient{HTTP: hs.Client(), Opts: RetryOptions{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}}
	resp, err := client.Post(hs.URL, "application/json", []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || served == 0 {
		t.Fatalf("retry client got %d (handler served %d)", resp.StatusCode, served)
	}
	if client.Retries() == 0 {
		t.Fatal("retry client recovered a full-rate fault budget without retrying")
	}

	// Breaker config and stats travel through the facade types.
	src := nn.BuildSmallCNN(2, 4, 9)
	qn, err := QuantizeNetwork(src, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewModelRegistry()
	defer reg.DrainAll(context.Background())
	if _, err := reg.Register(DefaultModelName, qn, SharedDotEngine(ExactDotEngine{}), ServeOptions{
		InputShape: []int{1, 16, 16},
		Breaker:    &BreakerOptions{Window: 8},
	}); err != nil {
		t.Fatal(err)
	}
	st := reg.Stats()
	if len(st.Models) != 1 || st.Models[0].Breaker == nil {
		t.Fatalf("breaker stats missing from registry stats: %+v", st.Models)
	}
	var bs BreakerStats = *st.Models[0].Breaker
	if bs.State != "closed" {
		t.Fatalf("fresh breaker state = %q, want closed", bs.State)
	}
	if st.Health != "ok" {
		t.Fatalf("health = %q, want ok", st.Health)
	}
}
