// Quickstart: build one SCONNA vector-dot-product element and compute a
// signed dot product through the full optical stochastic pipeline — LUT
// streams, optical AND gates, sign-steering filters and photo-charge
// accumulation — then validate one multiplier against the device-accurate
// transient model.
package main

import (
	"fmt"
	"log"

	sconna "repro"
)

func main() {
	// A small functional VDPE: 8 wavelengths, 8-bit operands.
	cfg := sconna.DefaultCoreConfig()
	cfg.N = 8
	vdpe, err := sconna.NewVDPE(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A DIV (unsigned post-ReLU activations) against a DKV (signed
	// weights): the sign bit steers each product stream to the positive
	// or negative PCA.
	div := []int{200, 17, 255, 64, 128, 3, 90, 41}
	dkv := []int{35, -120, 256, -7, 64, -255, 12, 0}

	res, err := vdpe.Dot(div, dkv)
	if err != nil {
		log.Fatal(err)
	}
	exact := 0
	for i := range div {
		exact += div[i] * dkv[i]
	}
	fmt.Println("SCONNA quickstart — one VDPE dot product")
	fmt.Printf("  exact integer dot product : %d\n", exact)
	fmt.Printf("  pre-ADC optical result    : %d\n", res.Exact)
	fmt.Printf("  post-ADC estimate         : %d\n", res.Est)
	fmt.Printf("  PCA accumulations         : +%d ones / -%d ones\n", res.PosOnes, res.NegOnes)

	// Validate one OSM against the slow device-accurate path: drive the
	// optical AND gate with the serialized streams at 30 Gbps and decode
	// the drop-port waveform.
	osm := vdpe.OSMs()[0]
	fast := osm.MultiplyStreams(200, 35)
	slow := osm.MultiplyTransient(200, 35, 30e9, 8)
	fmt.Printf("\nOSM device check at lambda=%.2f nm:\n", osm.Wavelength)
	fmt.Printf("  logical product ones   : %d\n", fast.Bits.PopCount())
	fmt.Printf("  transient decode ones  : %d\n", slow.PopCount())
	fmt.Printf("  waveforms identical    : %v\n", fast.Bits.Equal(slow))
	fmt.Printf("  OAG worst-case contrast: %.1f dB\n", osm.Gate.ContrastDB())
}
