// Design space: regenerate the two device-level sweeps behind SCONNA's
// operating point — the Fig. 7(a) bitrate-vs-FWHM frontier of the optical
// AND gate and the Fig. 7(b) PCA charge-accumulation linearity — plus a
// Fig. 6(c)-style transient eye check and an accelerator-level batch
// sweep driven twice through the cache-aware evaluation runner (the
// second pass recomputes nothing).
//
// The four sections are independent studies, so they build concurrently
// on the shared bounded worker pool (internal/parallel) and print in
// order — the output is identical to the serial walk.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	sconna "repro"
	"repro/internal/parallel"
	"repro/internal/photonics"
)

func main() {
	sections, err := parallel.Map(0, 4, func(i int) (string, error) {
		switch i {
		case 0:
			return fig7aSection(), nil
		case 1:
			return fig7bSection(), nil
		case 2:
			return fig6cSection(), nil
		default:
			return cachedSweepSection()
		}
	})
	if err != nil { // unreachable: the sections cannot fail
		panic(err)
	}
	fmt.Print(strings.Join(sections, "\n"))
}

// cachedSweepSection runs an (accelerator, batch) design-space grid on
// ResNet50 twice through one cache-aware runner. The cold pass computes
// every cell; the warm pass is pure cache hits — exactly how repeated
// param studies skip recomputation — and returns bit-identical results.
func cachedSweepSection() (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "Design-space sweep through the cache-aware runner (ResNet50)")
	runner, err := sconna.NewAccelRunner(sconna.AccelRunnerOptions{})
	if err != nil {
		return "", err
	}
	var jobs []sconna.AccelJob
	for _, base := range []sconna.AccelConfig{sconna.SconnaAccel(), sconna.MAMAccel(), sconna.AMMAccel()} {
		for _, batch := range []int{1, 8, 32} {
			cfg := base
			cfg.Batch = batch
			jobs = append(jobs, sconna.AccelJob{Cfg: cfg, Model: sconna.EvaluatedModels()[1]})
		}
	}
	cold, err := runner.SimulateAll(jobs)
	if err != nil {
		return "", err
	}
	coldStats := runner.Stats()
	warm, err := runner.SimulateAll(jobs)
	if err != nil {
		return "", err
	}
	for i, job := range jobs {
		fmt.Fprintf(&b, "  %-16s batch %2d | %12.1f FPS\n", job.Cfg.Name, job.Cfg.BatchSize(), cold[i].FPS)
		if warm[i].FPS != cold[i].FPS || warm[i].TotalNS != cold[i].TotalNS || warm[i].EnergyJ != cold[i].EnergyJ {
			return "", fmt.Errorf("warm result diverged at job %d", i)
		}
	}
	s := runner.Stats()
	fmt.Fprintf(&b, "  -> second pass: %d/%d lookups served from cache, %d recomputed;\n",
		s.Hits()-coldStats.Hits(), s.Lookups-coldStats.Lookups, s.Misses-coldStats.Misses)
	fmt.Fprintln(&b, "     warm sweeps are O(changed cells), not O(grid).")
	return b.String(), nil
}

func fig7aSection() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 7(a) — OAG max bitrate vs FWHM at OMA = -28 dBm")
	var fwhms []float64
	for f := 0.1; f <= 1.2001; f += 0.1 {
		fwhms = append(fwhms, f)
	}
	for _, p := range sconna.Fig7a(-28, fwhms) {
		bars := int(p.BitrateHz / 1e9 / 2)
		fmt.Fprintf(&b, "  %.1f nm | %-22s %5.1f Gbps\n", p.FWHMNM, strings.Repeat("#", bars), p.BitrateHz/1e9)
	}
	fmt.Fprintln(&b, "  -> saturates at the 40 Gbps electrical cap near 0.8 nm;")
	fmt.Fprintln(&b, "     the paper operates conservatively at 30 Gbps.")
	return b.String()
}

func fig7bSection() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 7(b) — PCA analog output voltage vs alpha")
	for _, p := range sconna.Fig7b(10) {
		bars := int(p.VoltageV * 40)
		fmt.Fprintf(&b, "  %5.1f%% | %-40s %.4f V\n", p.AlphaPct, strings.Repeat("#", bars), p.VoltageV)
	}
	fmt.Fprintln(&b, "  -> linear to alpha=100%: the TIR never saturates at N=176.")
	return b.String()
}

func fig6cSection() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 6(c) — OAG transient eye at 10 Gbps")
	g := photonics.NewOAG(0.35)
	rng := rand.New(rand.NewSource(7))
	n := 24
	ib := make([]bool, n)
	wb := make([]bool, n)
	for i := range ib {
		ib[i] = rng.Intn(2) == 1
		wb[i] = rng.Intn(2) == 1
	}
	const spb = 12
	trace := g.Transient(ib, wb, 10e9, spb)
	decoded := g.DecodeTransient(trace, spb)
	row := func(name string, bits []bool) {
		fmt.Fprintf(&b, "  %-8s ", name)
		for _, bit := range bits {
			if bit {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte('\n')
	}
	row("I", ib)
	row("W", wb)
	want := make([]bool, n)
	for i := range want {
		want[i] = ib[i] && wb[i]
	}
	row("I AND W", want)
	row("T(l_in)", decoded)
	return b.String()
}
