// Design space: regenerate the two device-level sweeps behind SCONNA's
// operating point — the Fig. 7(a) bitrate-vs-FWHM frontier of the optical
// AND gate and the Fig. 7(b) PCA charge-accumulation linearity — plus a
// Fig. 6(c)-style transient eye check.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	sconna "repro"
	"repro/internal/photonics"
)

func main() {
	fmt.Println("Fig. 7(a) — OAG max bitrate vs FWHM at OMA = -28 dBm")
	var fwhms []float64
	for f := 0.1; f <= 1.2001; f += 0.1 {
		fwhms = append(fwhms, f)
	}
	for _, p := range sconna.Fig7a(-28, fwhms) {
		bars := int(p.BitrateHz / 1e9 / 2)
		fmt.Printf("  %.1f nm | %-22s %5.1f Gbps\n", p.FWHMNM, strings.Repeat("#", bars), p.BitrateHz/1e9)
	}
	fmt.Println("  -> saturates at the 40 Gbps electrical cap near 0.8 nm;")
	fmt.Println("     the paper operates conservatively at 30 Gbps.")

	fmt.Println("\nFig. 7(b) — PCA analog output voltage vs alpha")
	for _, p := range sconna.Fig7b(10) {
		bars := int(p.VoltageV * 40)
		fmt.Printf("  %5.1f%% | %-40s %.4f V\n", p.AlphaPct, strings.Repeat("#", bars), p.VoltageV)
	}
	fmt.Println("  -> linear to alpha=100%: the TIR never saturates at N=176.")

	fmt.Println("\nFig. 6(c) — OAG transient eye at 10 Gbps")
	g := photonics.NewOAG(0.35)
	rng := rand.New(rand.NewSource(7))
	n := 24
	ib := make([]bool, n)
	wb := make([]bool, n)
	for i := range ib {
		ib[i] = rng.Intn(2) == 1
		wb[i] = rng.Intn(2) == 1
	}
	const spb = 12
	trace := g.Transient(ib, wb, 10e9, spb)
	decoded := g.DecodeTransient(trace, spb)
	row := func(name string, bits []bool) {
		fmt.Printf("  %-8s ", name)
		for _, b := range bits {
			if b {
				fmt.Print("1")
			} else {
				fmt.Print("0")
			}
		}
		fmt.Println()
	}
	row("I", ib)
	row("W", wb)
	want := make([]bool, n)
	for i := range want {
		want[i] = ib[i] && wb[i]
	}
	row("I AND W", want)
	row("T(l_in)", decoded)
}
