// Scalability: regenerate the paper's Table I (how far analog photonic
// VDPEs scale at 4/6-bit precision) and the Section V-B determination of
// SCONNA's VDPC size, demonstrating how stochastic streams break the
// N-vs-precision trade-off.
package main

import (
	"fmt"

	sconna "repro"
	"repro/internal/report"
)

func main() {
	t := report.NewTable("Table I — max VDPE size N (analog organizations)",
		"org", "precision", "DR (GS/s)", "N measured", "N paper")
	for _, c := range sconna.TableI() {
		t.AddRow(c.Org.String(), fmt.Sprintf("%d-bit", c.Precision), c.DataRate/1e9, c.N, c.PaperN)
	}
	fmt.Println(t.String())

	s := sconna.SolveSconnaN(30e9)
	fmt.Println("SCONNA VDPC sizing at B=8, BR=30 Gbps (Sec. V-B):")
	fmt.Printf("  FSR-limited theoretical N      : %d\n", s.TheoreticalN)
	fmt.Printf("  Eq.2/3 sensitivity (B_Res=1)   : %.1f dBm\n", s.SensitivityDBm)
	fmt.Printf("  N from our equations           : %d\n", s.NFromEquations)
	fmt.Printf("  N at paper's -28 dBm sens.     : %d\n", s.NWithPaperSensitivity)
	fmt.Printf("  N published in the paper       : %d\n", s.PaperN)
	fmt.Println("\nEvery analog entry collapses as precision rises; the digital")
	fmt.Println("stochastic streams keep a single optical level and scale past 100.")
}
