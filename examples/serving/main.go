// Serving walkthrough: stand the micro-batching SCONNA inference
// service up in-process, classify a batch over the HTTP API, then watch
// the two serving modes differ — pooled-engine throughput mode versus
// the deterministic mode whose responses replay bit-identically.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func main() {
	// 1. A small trained, quantized model: the serving plane fronts the
	// same compute plane the Table V study evaluates.
	dcfg := dataset.DefaultConfig()
	dcfg.Seed = 5
	examples := dataset.Generate(dcfg, 160)
	model := nn.BuildSmallCNN(4, dataset.NumClasses, 5)
	model.Train(examples[:120], 4, 16, nn.SGD{LR: 0.05, Momentum: 0.9}, rand.New(rand.NewSource(5)))
	qn, err := quant.Quantize(model, 8, examples[:32])
	if err != nil {
		log.Fatal(err)
	}

	// 2. The engine factory: one stateful SCONNA functional engine per
	// pool slot (and, in deterministic mode, per request seq).
	ccfg := core.DefaultConfig()
	ccfg.Bits = 8
	ccfg.N = 64
	ccfg.M = 1
	factory := quant.SconnaEngineFactory(ccfg)

	// 3. Throughput mode: micro-batches run on pooled engines.
	s, err := serve.New(qn, factory, serve.Options{
		MaxBatch:   16,
		PoolSize:   2,
		InputShape: []int{1, 16, 16},
		ClassNames: dataset.ClassNames[:],
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// Classify a batch through the JSON API, exactly as a client would.
	batch := make([][]float32, 6)
	for i := range batch {
		batch[i] = examples[120+i].X.Data
	}
	payload, _ := json.Marshal(map[string]any{"inputs": batch})
	resp, err := http.Post(base+"/v1/classify", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	var out struct{ Results []serve.Result }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Println("batched classification (throughput mode):")
	for i, r := range out.Results {
		fmt.Printf("  input %d: seq=%d class=%q engine=%d (label %q)\n",
			i, r.Seq, r.ClassName, r.Engine, dataset.ClassNames[examples[120+i].Label])
	}

	resp, err = http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\n/stats: %s\n", stats)

	hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		log.Fatal(err)
	}

	// 4. Deterministic mode: the same trace served twice — and at
	// different pool sizes — produces bit-identical logits, because each
	// request's engine is derived from its arrival index.
	trace := make([]*tensor.T, 3)
	for i := range trace {
		trace[i] = examples[120+i].X
	}
	replay := func(pool int) []serve.Result {
		ds, err := serve.New(qn, factory, serve.Options{
			Deterministic: true,
			PoolSize:      pool,
			MaxBatch:      8,
			QueueDepth:    32,
			InputShape:    []int{1, 16, 16},
			ClassNames:    dataset.ClassNames[:],
		})
		if err != nil {
			log.Fatal(err)
		}
		defer ds.Drain(ctx)
		results, err := ds.SubmitBatch(context.Background(), trace)
		if err != nil {
			log.Fatal(err)
		}
		return results
	}
	a, b := replay(1), replay(4)
	fmt.Println("\ndeterministic replay (pool=1 vs pool=4):")
	for i := range a {
		identical := len(a[i].Logits) == len(b[i].Logits)
		for j := range a[i].Logits {
			identical = identical && a[i].Logits[j] == b[i].Logits[j]
		}
		fmt.Printf("  seq %d: class=%q engine=%d bit-identical=%v\n",
			a[i].Seq, a[i].ClassName, a[i].Engine, identical)
	}
}
