// Serving walkthrough: stand the multi-model SCONNA inference service
// up in-process. One trained CNN is quantized at two precisions and
// registered as two named, versioned models behind one HTTP surface;
// traffic routes by name (plus the legacy default alias), a model is
// hot-swapped out under traffic, the deterministic mode's per-model
// replays stay bit-identical across pool sizes, a seeded chaos run
// trips a circuit breaker and recovers through a retrying client, and
// the telemetry plane traces requests stage by stage, exporting
// Prometheus text on /metrics and a Chrome trace on /debug/traces.
// Finally the fleet plane boots a two-replica ring behind a router,
// kills the replica that owns a model, and shows traffic rerouting to
// the survivor with the dead replica's breaker open in /metrics.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

func main() {
	// 1. One trained float CNN, quantized at two operand precisions:
	// two genuinely different quantized models (different weights,
	// different versions) sharing a lineage — the cheapest way to a
	// heterogeneous model fleet.
	dcfg := dataset.DefaultConfig()
	dcfg.Seed = 5
	examples := dataset.Generate(dcfg, 160)
	model := nn.BuildSmallCNN(4, dataset.NumClasses, 5)
	model.Train(examples[:120], 4, 16, nn.SGD{LR: 0.05, Momentum: 0.9}, rand.New(rand.NewSource(5)))
	hi, err := quant.Quantize(model, 8, examples[:32])
	if err != nil {
		log.Fatal(err)
	}
	lo, err := quant.Quantize(model, 4, examples[:32])
	if err != nil {
		log.Fatal(err)
	}

	// 2. The quantized artifact: how models reach a production server.
	// sconnaserve -save-quant writes this file; -model name=path loads
	// it — no retraining or requantization at boot. The content digest
	// is the model's version ID, stable across the round trip.
	dir, err := os.MkdirTemp("", "sconna-serving-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "hi8.qnn")
	if err := hi.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	loaded, err := quant.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifact round trip: version %s -> %s (stable=%v)\n\n",
		hi.Digest().Short(), loaded.Digest().Short(), hi.Digest() == loaded.Digest())

	// 3. The registry: every model gets its own engine pool,
	// micro-batcher and stats; the first registered is the default the
	// legacy /v1/classify alias routes to.
	// Each model's engine factory runs at that model's operand
	// precision (as sconnaserve does per -model).
	factoryAt := func(bits int) quant.EngineFactory {
		ccfg := core.DefaultConfig()
		ccfg.Bits = bits
		ccfg.N = 64
		ccfg.M = 1
		return quant.SconnaEngineFactory(ccfg)
	}
	factory := factoryAt(8)
	opts := serve.Options{
		MaxBatch:   16,
		PoolSize:   2,
		InputShape: []int{1, 16, 16},
		ClassNames: dataset.ClassNames[:],
	}
	reg := serve.NewRegistry()
	if _, err := reg.Register("hi8", loaded, factory, opts); err != nil {
		log.Fatal(err)
	}
	if _, err := reg.Register("lo4", lo, factoryAt(4), opts); err != nil {
		log.Fatal(err)
	}
	hs, base, err := serve.ListenLocal(reg.Handler())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving models %v on %s\n\n", reg.Names(), base)

	// Classify the same inputs through both named routes and the legacy
	// alias, exactly as clients would.
	batch := make([][]float32, 4)
	for i := range batch {
		batch[i] = examples[120+i].X.Data
	}
	payload, _ := json.Marshal(map[string]any{"inputs": batch})
	for _, path := range []string{"/v1/models/hi8/classify", "/v1/models/lo4/classify", "/v1/classify"} {
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(payload))
		if err != nil {
			log.Fatal(err)
		}
		var out struct{ Results []serve.Result }
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("POST %s:\n", path)
		for i, r := range out.Results {
			fmt.Printf("  input %d: seq=%d class=%q (label %q)\n",
				i, r.Seq, r.ClassName, dataset.ClassNames[examples[120+i].Label])
		}
	}

	// The listing names every model with its content-addressed version
	// and private traffic counters.
	resp, err := http.Get(base + "/v1/models")
	if err != nil {
		log.Fatal(err)
	}
	listing, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\nGET /v1/models: %s\n", listing)

	// 4. Hot unregister under a live listener: lo4 drains gracefully and
	// its route 404s while hi8 keeps serving.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := reg.Unregister(ctx, "lo4"); err != nil {
		log.Fatal(err)
	}
	code := func(path string) int {
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(payload))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	fmt.Printf("\nafter unregistering lo4: lo4 -> %d, hi8 -> %d\n",
		code("/v1/models/lo4/classify"), code("/v1/models/hi8/classify"))
	hs.Close()
	if err := reg.DrainAll(ctx); err != nil {
		log.Fatal(err)
	}

	// 5. Deterministic mode, per model: each request's engine derives
	// from its per-model arrival index, so the same trace replays
	// bit-identically at any pool size — independently for every model.
	trace := make([]*tensor.T, 3)
	for i := range trace {
		trace[i] = examples[120+i].X
	}
	replay := func(pool int) []serve.Result {
		o := opts
		o.Deterministic = true
		o.PoolSize = pool
		o.QueueDepth = 32
		dreg := serve.NewRegistry()
		if _, err := dreg.Register("hi8", hi, factory, o); err != nil {
			log.Fatal(err)
		}
		defer dreg.DrainAll(ctx)
		m, err := dreg.Get("hi8")
		if err != nil {
			log.Fatal(err)
		}
		results, err := m.Server().SubmitBatch(context.Background(), trace)
		if err != nil {
			log.Fatal(err)
		}
		return results
	}
	a, b := replay(1), replay(4)
	fmt.Println("\ndeterministic replay (pool=1 vs pool=4):")
	for i := range a {
		identical := len(a[i].Logits) == len(b[i].Logits)
		for j := range a[i].Logits {
			identical = identical && a[i].Logits[j] == b[i].Logits[j]
		}
		fmt.Printf("  seq %d: class=%q engine=%d bit-identical=%v\n",
			a[i].Seq, a[i].ClassName, a[i].Engine, identical)
	}

	// 6. Chaos run: the resilience plane under seeded fault injection.
	// The model's engine factory is wrapped in a deterministic fault
	// schedule (half of all engine builds fail — the same half at the
	// same seed, with the startup pool exempt via SkipSeqs), and the
	// model carries a circuit breaker. Driving traffic trips the breaker
	// (health degrades, callers get 503 + Retry-After); stopping the
	// faults lets the half-open probes close it again. A retrying client
	// rides the whole episode out — exactly what
	// `sconnaserve -selftest -chaos-seed 7` soaks at scale.
	co := opts
	co.Deterministic = true
	co.PoolSize = 2
	co.QueueDepth = 32
	co.DefaultTimeout = 5 * time.Second
	co.Breaker = &resilience.BreakerOptions{
		Window: 8, FailureThreshold: 0.5, MinSamples: 4,
		Cooldown: 20 * time.Millisecond, HalfOpenProbes: 2,
	}
	chaotic := resilience.ChaosEngineFactory(factory, resilience.ChaosOptions{
		Seed: 7, ErrRate: 0.5, SkipSeqs: co.PoolSize,
	})
	var faulting atomic.Bool
	faulting.Store(true)
	gated := func(seq int) (quant.DotEngine, error) {
		if faulting.Load() {
			return chaotic(seq)
		}
		return factory(seq)
	}
	creg := serve.NewRegistry()
	if _, err := creg.Register("hi8", hi, gated, co); err != nil {
		log.Fatal(err)
	}
	defer creg.DrainAll(ctx)
	chs, cbase, err := serve.ListenLocal(creg.Handler())
	if err != nil {
		log.Fatal(err)
	}
	defer chs.Close()
	single, _ := json.Marshal(map[string]any{"input": trace[0].Data})
	retrier := resilience.RetryClient{
		HTTP: http.DefaultClient,
		Opts: resilience.RetryOptions{MaxAttempts: 8, Seed: 7, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	}
	posts := 0
	for creg.Health() != "degraded" {
		resp, err := http.Post(cbase+"/v1/models/hi8/classify", "application/json", bytes.NewReader(single))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		posts++
	}
	st := creg.Stats()
	fmt.Printf("\nchaos run: breaker %s after %d faulted requests (health %q)\n",
		st.Models[0].Breaker.State, posts, st.Health)
	faulting.Store(false)
	resp2, err := retrier.Post(cbase+"/v1/models/hi8/classify", "application/json", single)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	for creg.Health() != "ok" {
		time.Sleep(2 * time.Millisecond)
		r, err := http.Post(cbase+"/v1/models/hi8/classify", "application/json", bytes.NewReader(single))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}
	fmt.Printf("chaos run: faults stopped, retrying client answered %d after %d retries, breaker closed (health %q)\n",
		resp2.StatusCode, retrier.Retries(), creg.Health())

	// 7. Telemetry: arm the tracing plane and scrape it. Each request
	// gets a replay-stable span (trace ID derived from its arrival seq,
	// joining any client-stamped X-Trace-Id), per-stage latencies land
	// in log2 histograms, and the surface exports as Prometheus text on
	// GET /metrics plus a Chrome trace-event dump on GET /debug/traces.
	// A nil ServeOptions.Telemetry (the default) keeps the zero-cost
	// path that preserves deterministic-replay byte-identity.
	to := opts
	to.Telemetry = &telemetry.Options{TraceRing: 64}
	treg := serve.NewRegistry()
	if _, err := treg.Register("hi8", hi, factory, to); err != nil {
		log.Fatal(err)
	}
	defer treg.DrainAll(ctx)
	ths, tbase, err := serve.ListenLocal(telemetry.WithPprof(treg.Handler()))
	if err != nil {
		log.Fatal(err)
	}
	defer ths.Close()
	for i := 0; i < 8; i++ {
		req, err := http.NewRequest("POST", tbase+"/v1/models/hi8/classify", bytes.NewReader(payload))
		if err != nil {
			log.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(telemetry.TraceIDHeader, telemetry.TraceID(uint64(i)))
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}
	mresp, err := http.Get(tbase + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	exposition, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err := telemetry.ValidateExposition(string(exposition)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntelemetry: GET /metrics (selected series)")
	for _, line := range strings.Split(string(exposition), "\n") {
		if strings.HasPrefix(line, "sconna_serve_requests_total") ||
			strings.HasPrefix(line, "sconna_serve_latency_seconds_count") ||
			strings.HasPrefix(line, "sconna_serve_traces_total") {
			fmt.Printf("  %s\n", line)
		}
	}
	tresp, err := http.Get(tbase + "/debug/traces")
	if err != nil {
		log.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&chrome); err != nil {
		log.Fatal(err)
	}
	tresp.Body.Close()
	spans := 0
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	fmt.Printf("telemetry: GET /debug/traces dumped %d stage slices across %d events (load in chrome://tracing or Perfetto)\n",
		spans, len(chrome.TraceEvents))

	// 8. Fleet: the same registry, distributed. Two replicas each serve
	// hi8 (in production each boots from the artifact store via
	// `sconnaserve -pull name=digest`); a router discovers their model
	// sets, places names on its bounded-load rendezvous ring, and
	// proxies classify traffic with failover and a per-replica circuit
	// breaker — what `sconnaserve -router -replica host:port,...` runs
	// as a standalone binary. Kill the owning replica and traffic
	// reroutes to the survivor while /metrics reports the open breaker.
	var fleetServers []*http.Server
	var members []string
	for i := 0; i < 2; i++ {
		freg := serve.NewRegistry()
		if _, err := freg.Register("hi8", hi, factory, opts); err != nil {
			log.Fatal(err)
		}
		defer freg.DrainAll(ctx)
		fhs, fbase, err := serve.ListenLocal(freg.Handler())
		if err != nil {
			log.Fatal(err)
		}
		defer fhs.Close()
		fleetServers = append(fleetServers, fhs)
		members = append(members, strings.TrimPrefix(fbase, "http://"))
	}
	rt := fleet.NewRouter(fleet.RouterOptions{
		Replicas: members,
		Breaker: &resilience.BreakerOptions{
			Window: 8, FailureThreshold: 0.5, MinSamples: 2,
			Cooldown: time.Minute, HalfOpenProbes: 1,
		},
	})
	if err := rt.Refresh(ctx); err != nil {
		log.Fatal(err)
	}
	rhs, rbase, err := serve.ListenLocal(rt.Handler())
	if err != nil {
		log.Fatal(err)
	}
	defer rhs.Close()
	fmt.Printf("\nfleet: routing %v across a 2-replica ring, hi8 assigned to %s\n",
		rt.Models(), rt.Assignments()["hi8"])
	servedBy := func() string {
		resp, err := http.Post(rbase+"/v1/models/hi8/classify", "application/json", bytes.NewReader(single))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("fleet classify: %d", resp.StatusCode)
		}
		return resp.Header.Get(serve.ServedByHeader)
	}
	owner := servedBy()
	for i, m := range members {
		if m == owner {
			fleetServers[i].Close()
		}
	}
	// Post until the breaker trips: every request still answers 200 via
	// the survivor — failover is the router's job, not the client's.
	var rerouted string
	for rt.Stats().Health != "degraded" {
		rerouted = servedBy()
	}
	fmt.Printf("fleet: killed %s; traffic rerouted to %s with zero client errors (reroutes=%d)\n",
		owner, rerouted, rt.Stats().Reroutes)
	fresp, err := http.Get(rbase + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	fdoc, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if err := telemetry.ValidateExposition(string(fdoc)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("fleet: GET /metrics (router series)")
	for _, line := range strings.Split(string(fdoc), "\n") {
		if strings.HasPrefix(line, "sconna_router_breaker_state") ||
			strings.HasPrefix(line, "sconna_router_reroutes_total") {
			fmt.Printf("  %s\n", line)
		}
	}
}
