// CNN inference: train a small CNN on the procedural dataset, quantize it
// to 8-bit integers, and run the same quantized network through (a) exact
// integer arithmetic and (b) the SCONNA functional core — LUT streams,
// optical AND gates and PCA accumulation with the 1.3%-MAPE ADC — then
// also simulate the four paper CNNs on the SCONNA performance model.
package main

import (
	"fmt"
	"log"
	"math/rand"

	sconna "repro"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/quant"
)

func main() {
	fmt.Println("Training a small CNN on the procedural dataset...")
	cfg := dataset.DefaultConfig()
	examples := dataset.Generate(cfg, 320)
	train, test := dataset.Split(examples, 0.25)
	net := nn.BuildSmallCNN(6, dataset.NumClasses, 42)
	res := net.Train(train, 12, 16, nn.SGD{LR: 0.05, Momentum: 0.9}, rand.New(rand.NewSource(42)))
	fmt.Printf("  train accuracy %.1f%%, loss %.3f, %d params\n",
		res.TrainAccuracy*100, res.FinalLoss, net.NumParams())

	qn, err := quant.Quantize(net, 8, train[:32])
	if err != nil {
		log.Fatal(err)
	}

	ccfg := sconna.DefaultCoreConfig()
	ccfg.N = 64 // chunking granularity of the functional engine
	ccfg.M = 1
	engine, err := quant.NewSconnaEngine(ccfg)
	if err != nil {
		log.Fatal(err)
	}

	subset := test
	if len(subset) > 40 {
		subset = subset[:40]
	}
	e1, e5 := qn.Evaluate(subset, 5, quant.ExactEngine{})
	s1, s5 := qn.Evaluate(subset, 5, engine)
	fmt.Println("\nQuantized inference, exact integer vs SCONNA optical arithmetic:")
	fmt.Printf("  exact int8   top-1 %.1f%%  top-5 %.1f%%\n", e1*100, e5*100)
	fmt.Printf("  SCONNA       top-1 %.1f%%  top-5 %.1f%%\n", s1*100, s5*100)
	fmt.Printf("  drop         top-1 %.1f pp top-5 %.1f pp\n", (e1-s1)*100, (e5-s5)*100)

	fmt.Println("\nPerformance-plane simulation of the paper's CNNs on SCONNA:")
	for _, m := range sconna.EvaluatedModels() {
		r, err := sconna.Simulate(sconna.SconnaAccel(), m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %9.0f FPS  %7.2f FPS/W  latency %.3f ms\n",
			m.Name, r.FPS, r.FPSPerW, r.TotalNS/1e6)
	}
}
