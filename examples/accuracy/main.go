// Accuracy: a reduced Table V study — train the four proxy CNNs, quantize
// them, and measure the Top-1/Top-5 accuracy drop when their dot products
// run through the SCONNA functional core instead of exact integer
// arithmetic. Run cmd/trainsc for the full-size study.
package main

import (
	"fmt"
	"log"

	sconna "repro"
	"repro/internal/accuracy"
)

func main() {
	fmt.Println("Reduced Table V study (use cmd/trainsc for the full run)...")
	rows, err := sconna.RunTableV(sconna.QuickAccuracyOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %8s %12s %12s %10s %10s\n",
		"model", "params", "top1 exact", "top1 sconna", "drop1(pp)", "paper")
	for _, r := range rows {
		ref, ok := accuracy.PaperTableV[r.Model]
		paper := "-"
		if ok {
			paper = fmt.Sprintf("%.1f", ref[0])
		} else if r.Model == "Gmean" {
			paper = "0.4"
		}
		if r.Model == "Gmean" {
			fmt.Printf("%-22s %8s %12s %12s %10.2f %10s\n", r.Model, "-", "-", "-", r.Drop1, paper)
			continue
		}
		fmt.Printf("%-22s %8d %11.1f%% %11.1f%% %10.2f %10s\n",
			r.Model, r.Params, r.Top1Exact, r.Top1Sconna, r.Drop1, paper)
	}
	fmt.Println("\nThe drop mechanism matches the paper: per-lane stream quantization")
	fmt.Println("plus 1.3%-MAPE ADC error, with larger models more error-tolerant.")
}
