package digest

import "testing"

// The hasher must be deterministic: identical write sequences produce
// identical digests across calls and hasher instances.
func TestDeterminism(t *testing.T) {
	t.Parallel()
	build := func() Digest {
		return New().Str("sconna").Int(176).F64(30e9).Bool(true).Sum()
	}
	if build() != build() {
		t.Fatal("identical write sequences produced different digests")
	}
}

// Framing must make the byte stream unambiguous: values can never alias
// across a field boundary, and the same payload under different type
// tags must hash differently.
func TestFraming(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		a, b *Hasher
	}{
		{"string split", New().Str("ab").Str("c"), New().Str("a").Str("bc")},
		{"bytes vs string", New().Str("ab"), New().Bytes([]byte("ab"))},
		{"int vs uint", New().Int(1), New().U64(1)},
		{"int vs bool", New().Int(1), New().Bool(true)},
		{"float vs uint bits", New().F64(1), New().U64(0x3FF0000000000000)},
		{"negative zero", New().F64(0), New().F64(negZero())},
		{"empty string matters", New().Str(""), New()},
	}
	for _, c := range cases {
		if c.a.Sum() == c.b.Sum() {
			t.Errorf("%s: distinct write sequences collided", c.name)
		}
	}
}

func negZero() float64 { z := 0.0; return -z }

// Sum must not consume the hasher: further writes extend the stream.
func TestSumExtends(t *testing.T) {
	t.Parallel()
	h := New().Str("a")
	first := h.Sum()
	if h.Str("b").Sum() == first {
		t.Fatal("write after Sum did not change the digest")
	}
	if New().Str("a").Sum() != first {
		t.Fatal("Sum disturbed the accumulated state")
	}
}

// The hasher's own byte encoding is part of the compatibility contract:
// this golden value only moves if the framing or hash function changes,
// which invalidates every stored digest and must be a deliberate act.
func TestEncodingGolden(t *testing.T) {
	t.Parallel()
	got := New().Str("repro").Int(-1).U64(2).F64(0.5).Bool(false).Bytes([]byte{7}).Sum()
	const want = "cd3e45ecb2b86c99099c9dcf632bf0b05e3355367d78d1d24efa3ca9adb2b73c"
	if got.String() != want {
		t.Fatalf("encoding golden moved:\n got %s\nwant %s", got, want)
	}
	if got.Short() != want[:12] {
		t.Fatalf("Short() = %s, want %s", got.Short(), want[:12])
	}
}
