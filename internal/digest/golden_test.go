// Golden digests pin the cache-key format of every simulation input
// type. A digest is the address of a persisted result, so these values
// are a compatibility contract: if one moves, on-disk caches silently
// cold-start. Legitimate moves (a new simulated field, a reorder, a
// semantic change) must come with a schema-tag bump in the owning
// package AND an update here — never update a golden to "fix" a test
// without understanding which input change moved it.
package digest_test

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/scalability"
)

func TestGoldenAccelConfigDigests(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		cfg  accel.Config
		want string
	}{
		{"SCONNA", accel.Sconna(), "3452e891f7db6961fde7233b1726a6e6f5b6f1c9874a3dd13102a045f057ea71"},
		{"MAM", accel.MAM(), "6850aab5452a96a5e84c330261511441b6568602468512fa0cacf40196da6683"},
		{"AMM", accel.AMM(), "a4d8da69501b9eb2e6b25be8bf640e49a28c0b4dda4e9452cb6b8bb0db52ad76"},
	}
	for _, c := range cases {
		if got := c.cfg.Digest().String(); got != c.want {
			t.Errorf("%s config digest moved:\n got %s\nwant %s", c.name, got, c.want)
		}
	}
}

func TestGoldenModelDigests(t *testing.T) {
	t.Parallel()
	cases := []struct {
		m    models.Model
		want string
	}{
		{models.GoogleNet(), "60ed22bd7ff7779acde7be1408ec40cf58a9302316b23fa3d243ed20b77df3af"},
		{models.ResNet50(), "7442a63989f9c6d49c0e1d90b67c2c4438154451727e433d342440f5770bcb4f"},
		{models.MobileNetV2(), "acb9de07c2f4697c6b46c29977030f591fcdc179fa01be8d720f63b38b5aa71b"},
		{models.ShuffleNetV2(), "ae966dc6e6ba91d2ca3c8a93d138dc32d5e793695b22d8bfab213a6aa487c3d1"},
		{models.VGG16(), "3cc3c8d4207c6e1c9e8eb5210671ef7e7250034ede15b32a8a8c9d22d85b9102"},
		{models.DenseNet121(), "5d132bc0a0656911454772dce76c19ffa438c76c265018fc7abd090413f5cfe4"},
	}
	for _, c := range cases {
		if got := c.m.Digest().String(); got != c.want {
			t.Errorf("%s digest moved:\n got %s\nwant %s", c.m.Name, got, c.want)
		}
	}
}

// goldenQuantNet builds the pinned quantized network: a seeded random
// init quantized with no calibration examples, so the construction path
// involves no accumulation chains — every stored value comes from a
// single float op, deterministic across platforms.
func goldenQuantNet(t *testing.T, width, bits int, seed int64) *quant.Network {
	t.Helper()
	qn, err := quant.Quantize(nn.BuildSmallCNN(width, 4, seed), bits, nil)
	if err != nil {
		t.Fatal(err)
	}
	return qn
}

// The quantized-network digest is the serving registry's model version
// ID: a moved golden means every deployed version identifier silently
// changes (and clients pinning versions stop matching). Same contract
// as the cache keys — a legitimate move requires a quant schema-tag
// bump plus an update here.
func TestGoldenQuantNetworkDigest(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name        string
		width, bits int
		seed        int64
		want        string
	}{
		{"w2b6s21", 2, 6, 21, "3a0f37c63957f9b551a5107fc058a116ed9f86d828533544d9e5f9cd6ff87317"},
		{"w4b8s11", 4, 8, 11, "00e0ab52dd6816ca6212d9a26ac051dbea386206545e8f17115acee7dc0ff146"},
	}
	for _, c := range cases {
		if got := goldenQuantNet(t, c.width, c.bits, c.seed).Digest().String(); got != c.want {
			t.Errorf("%s quant network digest moved:\n got %s\nwant %s", c.name, got, c.want)
		}
	}
}

func TestGoldenScalabilityConfigDigest(t *testing.T) {
	t.Parallel()
	const want = "960199075a8d1bb235f24e2c80b8dae7b77ca0c737e3f4f3666ae018f0d726f1"
	if got := scalability.DefaultConfig().Digest().String(); got != want {
		t.Errorf("scalability config digest moved:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenJobDigest(t *testing.T) {
	t.Parallel()
	job := accel.Job{Cfg: accel.Sconna(), Model: models.ResNet50()}
	const want = "65605c9a52a15d24327abfdfde45dfe356ba139fa2b45fef51ce2c602d9142e4"
	if got := job.Digest().String(); got != want {
		t.Errorf("job digest moved:\n got %s\nwant %s", got, want)
	}
}

// Every field the simulations read must move the digest; a field the
// digest ignores would let two different inputs share a cached result.
func TestDigestFieldSensitivity(t *testing.T) {
	t.Parallel()
	base := accel.Sconna()
	mutations := map[string]func(*accel.Config){
		"Name":           func(c *accel.Config) { c.Name = "x" },
		"Org":            func(c *accel.Config) { c.Org = scalability.MAM },
		"N":              func(c *accel.Config) { c.N++ },
		"Batch":          func(c *accel.Config) { c.Batch = 8 },
		"BitRateHz":      func(c *accel.Config) { c.BitRateHz *= 2 },
		"HeaterHoldW":    func(c *accel.Config) { c.HeaterHoldW = 1e-3 },
		"Peripherals.NS": func(c *accel.Config) { c.Peripherals.BufferNS = 3 },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if cfg.Digest() == base.Digest() {
			t.Errorf("mutating %s did not move the config digest", name)
		}
	}

	m := models.ResNet50()
	m.Layers[3].Stride++
	if m.Digest() == models.ResNet50().Digest() {
		t.Error("mutating a layer stride did not move the model digest")
	}

	s := scalability.DefaultConfig()
	s.BudgetIsElectrical = !s.BudgetIsElectrical
	if s.Digest() == scalability.DefaultConfig().Digest() {
		t.Error("mutating BudgetIsElectrical did not move the scalability digest")
	}
}
