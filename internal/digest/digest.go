// Package digest provides canonical, field-order-stable content digests
// for the reproduction's simulation inputs. A digest is the cache key of
// the content-addressed result store (internal/cache): two inputs share a
// digest exactly when every field the simulation reads is identical, so a
// digest hit is a proof that the memoized result is the result.
//
// The encoding is a compatibility contract. Each domain type writes its
// fields through a Hasher in declared order, prefixed with a schema tag
// ("repro/accel.Config@v1", ...); golden-value tests in this package pin
// the resulting hex digests. Changing a simulated field, its order, or
// its meaning MUST bump the schema tag — that is the invalidation story:
// old on-disk entries simply stop being addressed, they are never
// reinterpreted.
//
// Every value written is framed with a one-byte type tag, and strings and
// raw bytes carry a length prefix, so the byte stream is unambiguous:
// Str("ab"),Str("c") and Str("a"),Str("bc") hash differently, as do
// Int(1) and U64(1).
package digest

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Size is the digest length in bytes (SHA-256).
const Size = sha256.Size

// Digest is a content digest usable directly as a cache key.
type Digest [Size]byte

// String returns the full lowercase hex form (the on-disk file name of a
// cached entry).
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Short returns a 12-hex-char prefix for logs and reports.
func (d Digest) Short() string { return hex.EncodeToString(d[:6]) }

// Hasher accumulates tagged, framed values into a SHA-256 state. The
// zero value is not usable; call New.
type Hasher struct {
	h   hash.Hash
	buf [9]byte // 1 tag byte + up to 8 payload bytes
}

// New returns an empty Hasher.
func New() *Hasher { return &Hasher{h: sha256.New()} }

// Value type tags. Each written value is framed as tag || payload so that
// adjacent fields can never alias across a type or length boundary.
const (
	tagStr   = 's'
	tagBytes = 'r'
	tagInt   = 'i'
	tagUint  = 'u'
	tagFloat = 'f'
	tagBool  = 'b'
)

func (h *Hasher) word(tag byte, v uint64) *Hasher {
	h.buf[0] = tag
	binary.BigEndian.PutUint64(h.buf[1:], v)
	h.h.Write(h.buf[:])
	return h
}

// Str writes a length-prefixed string.
func (h *Hasher) Str(s string) *Hasher {
	h.word(tagStr, uint64(len(s)))
	h.h.Write([]byte(s))
	return h
}

// Bytes writes a length-prefixed byte slice (used to compose digests:
// writing a sub-digest's bytes nests one contract inside another).
func (h *Hasher) Bytes(p []byte) *Hasher {
	h.word(tagBytes, uint64(len(p)))
	h.h.Write(p)
	return h
}

// Int writes an int as a signed 64-bit word.
func (h *Hasher) Int(v int) *Hasher { return h.I64(int64(v)) }

// I64 writes a signed 64-bit word.
func (h *Hasher) I64(v int64) *Hasher { return h.word(tagInt, uint64(v)) }

// U64 writes an unsigned 64-bit word.
func (h *Hasher) U64(v uint64) *Hasher { return h.word(tagUint, v) }

// F64 writes a float64 as its IEEE-754 bit pattern, so the key preserves
// every distinction the simulation arithmetic can observe (including
// -0 vs 0 and NaN payloads).
func (h *Hasher) F64(v float64) *Hasher { return h.word(tagFloat, math.Float64bits(v)) }

// Bool writes a boolean.
func (h *Hasher) Bool(v bool) *Hasher {
	var b uint64
	if v {
		b = 1
	}
	return h.word(tagBool, b)
}

// Sum returns the digest of everything written so far. The Hasher remains
// usable (further writes extend the stream).
func (h *Hasher) Sum() Digest {
	var d Digest
	h.h.Sum(d[:0])
	return d
}
