// Package parallel provides the bounded-concurrency substrate shared by
// the reproduction's evaluation engines: the performance-plane design-space
// sweeps (internal/accel, internal/scalability), the functional-plane
// batched inference (internal/quant, internal/accuracy) and dataset
// generation (internal/dataset).
//
// Every helper here is deterministic by construction: work is identified
// by index, results are collected in index order, and errors aggregate in
// index order — so the outcome of a parallel run depends only on the work
// function, never on worker count or goroutine scheduling. Callers that
// hold per-worker state (e.g. a stateful core.VDPC) key that state off the
// shard index, not the goroutine, which is what makes parallel evaluation
// bit-identical to the serial path.
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values >= 1 pass through,
// anything else (0, negative) selects GOMAXPROCS.
func Workers(requested int) int {
	if requested >= 1 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines. All indices run even when some fail; the returned error
// joins every per-index failure in index order (deterministic regardless
// of scheduling). workers <= 0 selects GOMAXPROCS.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	errs := make([]error, n)
	if w == 1 {
		// Serial fast path: no goroutines, same index order, same
		// aggregation — the reference the parallel path must match.
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return join(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return join(errs)
}

func join(errs []error) error {
	var nonNil []error
	for i, e := range errs {
		if e != nil {
			nonNil = append(nonNil, fmt.Errorf("item %d: %w", i, e))
		}
	}
	return errors.Join(nonNil...)
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines
// and returns the results in index order. On error the slice is nil and
// the error aggregates per-index failures in index order.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, e := fn(i)
		if e != nil {
			return e
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Span is one contiguous index range [Lo, Hi) of a sharded work list.
type Span struct{ Lo, Hi int }

// Len returns the span size.
func (s Span) Len() int { return s.Hi - s.Lo }

// Spans shards n items into contiguous spans of at most size items. The
// partition depends only on (n, size) — never on worker count — which is
// what lets per-span state (RNG streams, accumulator cores) reproduce the
// serial result exactly under any parallelism.
func Spans(n, size int) []Span {
	if n <= 0 {
		return nil
	}
	if size <= 0 {
		size = n
	}
	out := make([]Span, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Span{Lo: lo, Hi: hi})
	}
	return out
}

// ShardSpan returns shard i of a work list of n items partitioned into
// `of` contiguous shards via Spans(n, ceil(n/of)): a pure function of
// (n, i, of), so N machines that agree on the job list agree on the
// partition with no coordination. Shards beyond the span list (possible
// when of > n) are empty. i outside [0, of) or of < 1 panics — shard
// coordinates come from operator input and a typo must not silently
// compute the wrong slice.
func ShardSpan(n, i, of int) Span {
	if of < 1 || i < 0 || i >= of {
		panic(fmt.Sprintf("parallel: shard %d/%d is not a valid partition coordinate", i, of))
	}
	if n <= 0 {
		return Span{}
	}
	spans := Spans(n, (n+of-1)/of)
	if i >= len(spans) {
		return Span{Lo: n, Hi: n}
	}
	return spans[i]
}
