package parallel

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	t.Parallel()
	if Workers(3) != 3 {
		t.Fatal("explicit worker count must pass through")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatal("defaulted worker count must be positive")
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		counts := make([]atomic.Int64, n)
		if err := ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	t.Parallel()
	if err := ForEach(4, 0, func(int) error { t.Error("must not run"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachErrorOrderDeterministic(t *testing.T) {
	t.Parallel()
	fail := func(i int) error {
		if i%3 == 0 {
			return fmt.Errorf("boom-%d", i)
		}
		return nil
	}
	serial := ForEach(1, 20, fail)
	for _, workers := range []int{2, 8} {
		par := ForEach(workers, 20, fail)
		if par == nil || serial == nil {
			t.Fatal("expected errors")
		}
		if par.Error() != serial.Error() {
			t.Fatalf("workers=%d error order diverged:\n%s\nvs\n%s", workers, par, serial)
		}
	}
	if !strings.Contains(serial.Error(), "item 0: boom-0") {
		t.Fatalf("missing indexed error: %s", serial)
	}
}

func TestForEachErrorDoesNotStopOtherItems(t *testing.T) {
	t.Parallel()
	var ran atomic.Int64
	err := ForEach(4, 10, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("first item fails")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran.Load() != 10 {
		t.Fatalf("all items must still run, got %d", ran.Load())
	}
}

func TestMapOrdered(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 3, 16} {
		got, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d out of order at %d: %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	t.Parallel()
	got, err := Map(4, 10, func(i int) (int, error) {
		if i == 7 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || got != nil {
		t.Fatal("map with failing item must return nil slice and error")
	}
}

func TestSpansPartition(t *testing.T) {
	t.Parallel()
	spans := Spans(10, 4)
	want := []Span{{0, 4}, {4, 8}, {8, 10}}
	if len(spans) != len(want) {
		t.Fatalf("spans %v", spans)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("span %d = %v want %v", i, spans[i], want[i])
		}
	}
	if Spans(0, 4) != nil {
		t.Fatal("no spans for empty input")
	}
	if got := Spans(5, 0); len(got) != 1 || got[0] != (Span{0, 5}) {
		t.Fatalf("size<=0 must yield one span, got %v", got)
	}
	if (Span{2, 6}).Len() != 4 {
		t.Fatal("span length")
	}
}

func TestShardSpanPartition(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ n, of int }{
		{12, 1}, {12, 2}, {12, 3}, {12, 5}, {7, 3}, {3, 8}, {0, 4}, {1, 1},
	} {
		covered := make([]int, tc.n)
		prevHi := 0
		for i := 0; i < tc.of; i++ {
			s := ShardSpan(tc.n, i, tc.of)
			if s.Lo > s.Hi {
				t.Fatalf("ShardSpan(%d, %d, %d) inverted: %+v", tc.n, i, tc.of, s)
			}
			if s.Len() > 0 && s.Lo < prevHi {
				t.Fatalf("ShardSpan(%d, %d, %d) overlaps the previous shard", tc.n, i, tc.of)
			}
			if s.Len() > 0 {
				prevHi = s.Hi
			}
			for j := s.Lo; j < s.Hi; j++ {
				covered[j]++
			}
			// Pure function: the same coordinates give the same span.
			if again := ShardSpan(tc.n, i, tc.of); again != s {
				t.Fatalf("ShardSpan(%d, %d, %d) not deterministic: %+v vs %+v", tc.n, i, tc.of, s, again)
			}
		}
		for j, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d of=%d: item %d covered %d times", tc.n, tc.of, j, c)
			}
		}
	}
}

func TestShardSpanRejectsBadCoordinates(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ i, of int }{{-1, 2}, {2, 2}, {0, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShardSpan(10, %d, %d) must panic", tc.i, tc.of)
				}
			}()
			ShardSpan(10, tc.i, tc.of)
		}()
	}
}
