// Package report renders the experiment harness output: fixed-width ASCII
// tables and CSV series matching the rows/series the paper's tables and
// figures present.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows under a header.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat renders floats compactly: integers without decimals, small
// magnitudes with sensible precision.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == float64(int64(v)) && av < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case av >= 1000:
		return fmt.Sprintf("%.1f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	case av >= 0.001:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (quoting commas).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, t.Headers)
	for _, r := range t.rows {
		writeCSVRow(&sb, r)
	}
	return sb.String()
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			sb.WriteString(c)
		}
	}
	sb.WriteByte('\n')
}

// Series renders an (x, y) series as two CSV columns, the format used for
// the figure sweeps (Fig. 7a, 7b).
func Series(title, xlabel, ylabel string, xs, ys []float64) string {
	t := NewTable(title, xlabel, ylabel)
	for i := range xs {
		t.AddRow(xs[i], ys[i])
	}
	return t.String()
}
