package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 42)
	s := tb.String()
	if !strings.Contains(s, "Title") {
		t.Fatal("missing title")
	}
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "1.50") {
		t.Fatalf("missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), s)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows=%d", tb.Rows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "bbbbbbbb")
	tb.AddRow("xxxxxxxxxx", "y")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// All lines equal width after alignment (modulo trailing spaces).
	w := len(strings.TrimRight(lines[0], " "))
	for _, l := range lines[1:] {
		if len(strings.TrimRight(l, " ")) < w-12 {
			t.Fatalf("misaligned:\n%s", s)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:         "3",
		1234.5:    "1234.5",
		12.345:    "12.35",
		0.5:       "0.5000",
		0.0000012: "1.200e-06",
		-7:        "-7",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%g)=%q want %q", in, got, want)
		}
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "k", "v")
	tb.AddRow("a,b", `say "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Fatalf("comma not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Fatalf("quote not escaped: %q", csv)
	}
	if !strings.HasPrefix(csv, "k,v\n") {
		t.Fatalf("header wrong: %q", csv)
	}
}

func TestSeries(t *testing.T) {
	s := Series("sweep", "x", "y", []float64{1, 2}, []float64{10, 20})
	if !strings.Contains(s, "sweep") || !strings.Contains(s, "10") {
		t.Fatalf("series broken:\n%s", s)
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable("empty", "only")
	if tb.Rows() != 0 {
		t.Fatal("phantom rows")
	}
	if s := tb.String(); !strings.Contains(s, "only") {
		t.Fatal("header missing")
	}
}
