package models

import "testing"

func TestLayerMath(t *testing.T) {
	l := Layer{Kind: Conv, K: 3, D: 512, L: 512, HOut: 14, WOut: 14}
	if l.S() != 4608 {
		t.Fatalf("S=%d want 4608", l.S())
	}
	if l.VDPs() != 14*14*512 {
		t.Fatalf("VDPs=%d", l.VDPs())
	}
	if l.MACs() != l.VDPs()*4608 {
		t.Fatal("MACs inconsistent")
	}
	if l.Params() != 512*4608 {
		t.Fatal("Params inconsistent")
	}
}

func TestKindString(t *testing.T) {
	if Conv.String() != "conv" || DWConv.String() != "dwconv" || Dense.String() != "fc" {
		t.Fatal("kind names broken")
	}
	if Kind(9).String() != "?" {
		t.Fatal("unknown kind")
	}
}

// ResNet50's largest DKV is the paper's running example: S = 3*3*512 = 4608.
func TestResNet50MaxS(t *testing.T) {
	if got := ResNet50().MaxS(); got != 4608 {
		t.Fatalf("MaxS=%d want 4608 (Sec. II-B)", got)
	}
}

// Published parameter-count sanity: each descriptor must land near the
// architecture's known weight count (conv+fc only, no BN).
func TestParameterCounts(t *testing.T) {
	cases := []struct {
		m      Model
		lo, hi int64 // millions of weights
	}{
		{ResNet50(), 22e6, 28e6},       // ~25.5M
		{VGG16(), 130e6, 140e6},        // ~138M
		{GoogleNet(), 5e6, 8e6},        // ~6M (no aux heads)
		{MobileNetV2(), 2.5e6, 4.5e6},  // ~3.4M
		{ShuffleNetV2(), 1.5e6, 2.8e6}, // ~2.3M
		{DenseNet121(), 6e6, 9e6},      // ~7.5M (conv+fc, no BN)
	}
	for _, c := range cases {
		p := c.m.TotalParams()
		if p < c.lo || p > c.hi {
			t.Errorf("%s: params=%d want in [%d, %d]", c.m.Name, p, c.lo, c.hi)
		}
	}
}

// MAC-count sanity against published figures (ImageNet 224x224).
func TestMACCounts(t *testing.T) {
	cases := []struct {
		m      Model
		lo, hi int64
	}{
		{ResNet50(), 3.0e9, 4.5e9},       // ~3.8G multiply-adds
		{VGG16(), 14e9, 16.5e9},          // ~15.5G
		{GoogleNet(), 1.2e9, 1.8e9},      // ~1.5G
		{MobileNetV2(), 0.25e9, 0.45e9},  // ~0.3G
		{ShuffleNetV2(), 0.10e9, 0.20e9}, // ~0.15G
	}
	for _, c := range cases {
		mac := c.m.TotalMACs()
		if mac < c.lo || mac > c.hi {
			t.Errorf("%s: MACs=%d want in [%d, %d]", c.m.Name, mac, c.lo, c.hi)
		}
	}
}

// Table II reproduction: the share of kernels with S > 44 must dominate
// (>98% in the paper) for the four Table II CNNs, and our absolute counts
// must be within 25% of the published T_L.
func TestTableIICensus(t *testing.T) {
	for _, m := range TableIIModels() {
		le, gt := m.KernelCensus(44)
		total := le + gt
		if total == 0 {
			t.Fatalf("%s: empty model", m.Name)
		}
		frac := float64(gt) / float64(total)
		if frac < 0.95 {
			t.Errorf("%s: only %.1f%% of kernels have S>44 (paper: >98%%)", m.Name, frac*100)
		}
		if ref, ok := PaperTableII[m.Name]; ok {
			refTotal := ref.LE + ref.GT
			ratio := float64(total) / float64(refTotal)
			if ratio < 0.75 || ratio > 1.25 {
				t.Errorf("%s: total kernels %d vs paper %d (ratio %.2f)", m.Name, total, refTotal, ratio)
			}
		}
	}
}

// The depthwise-heavy mobile CNNs must show a *large* S<=44 share — the
// property the paper uses to explain their smaller Fig. 9 gains.
func TestMobileModelsUseSmallKernels(t *testing.T) {
	for _, m := range []Model{MobileNetV2(), ShuffleNetV2()} {
		le, gt := m.KernelCensus(44)
		frac := float64(le) / float64(le+gt)
		if frac < 0.10 {
			t.Errorf("%s: only %.1f%% small kernels; expected a sizable share from depthwise convs", m.Name, frac*100)
		}
	}
}

func TestEvaluatedSet(t *testing.T) {
	ev := Evaluated()
	if len(ev) != 4 {
		t.Fatalf("want 4 evaluated models, got %d", len(ev))
	}
	names := map[string]bool{}
	for _, m := range ev {
		names[m.Name] = true
		if len(m.Layers) == 0 {
			t.Fatalf("%s: no layers", m.Name)
		}
	}
	for _, want := range []string{"GoogleNet", "ResNet50", "MobileNet_V2", "ShuffleNet_V2"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

// Depthwise layers must carry D=1 (S=K*K): that is what makes their DKVs
// fit analog VDPEs.
func TestDepthwiseLayersHaveUnitDepth(t *testing.T) {
	for _, m := range []Model{MobileNetV2(), ShuffleNetV2()} {
		found := false
		for _, l := range m.Layers {
			if l.Kind == DWConv {
				found = true
				if l.D != 1 {
					t.Fatalf("%s/%s: depthwise D=%d want 1", m.Name, l.Name, l.D)
				}
				if l.S() != l.K*l.K {
					t.Fatalf("%s/%s: S=%d want %d", m.Name, l.Name, l.S(), l.K*l.K)
				}
			}
		}
		if !found {
			t.Fatalf("%s: no depthwise layers", m.Name)
		}
	}
}

func TestKernelCensusThresholds(t *testing.T) {
	m := ResNet50()
	le0, gt0 := m.KernelCensus(0)
	if le0 != 0 || gt0 != m.ConvKernels() {
		t.Fatal("threshold 0 should put everything above")
	}
	leBig, gtBig := m.KernelCensus(1 << 20)
	if gtBig != 0 || leBig != m.ConvKernels() {
		t.Fatal("huge threshold should put everything below")
	}
	if m.ConvKernels() >= m.TotalKernels() {
		t.Fatal("FC kernels must be excluded from the census population")
	}
}
