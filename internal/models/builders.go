package models

import "fmt"

// All builders assume 224x224x3 ImageNet-shaped inputs, the configuration
// the paper evaluates.

// conv appends a standard convolution layer.
func conv(ls *[]Layer, name string, k, d, l, hout, stride int) {
	*ls = append(*ls, Layer{Name: name, Kind: Conv, K: k, D: d, L: l, HOut: hout, WOut: hout, Stride: stride})
}

// dwconv appends a depthwise convolution layer.
func dwconv(ls *[]Layer, name string, k, ch, hout, stride int) {
	*ls = append(*ls, Layer{Name: name, Kind: DWConv, K: k, D: 1, L: ch, HOut: hout, WOut: hout, Stride: stride})
}

// fc appends a fully-connected layer.
func fc(ls *[]Layer, name string, in, out int) {
	*ls = append(*ls, Layer{Name: name, Kind: Dense, K: 1, D: in, L: out, HOut: 1, WOut: 1, Stride: 1})
}

// VGG16 returns the VGG-16 descriptor (13 convs + 3 FCs).
func VGG16() Model {
	var ls []Layer
	type blk struct{ n, ch, sz int }
	in := 3
	for bi, b := range []blk{{2, 64, 224}, {2, 128, 112}, {3, 256, 56}, {3, 512, 28}, {3, 512, 14}} {
		for i := 0; i < b.n; i++ {
			conv(&ls, fmt.Sprintf("conv%d_%d", bi+1, i+1), 3, in, b.ch, b.sz, 1)
			in = b.ch
		}
	}
	fc(&ls, "fc6", 512*7*7, 4096)
	fc(&ls, "fc7", 4096, 4096)
	fc(&ls, "fc8", 4096, 1000)
	return Model{Name: "VGG16", Layers: ls}
}

// ResNet50 returns the ResNet-50 descriptor (conv1 + 16 bottlenecks + FC).
func ResNet50() Model {
	var ls []Layer
	conv(&ls, "conv1", 7, 3, 64, 112, 2)
	type stage struct{ blocks, mid, out, sz int }
	in := 64
	for si, st := range []stage{{3, 64, 256, 56}, {4, 128, 512, 28}, {6, 256, 1024, 14}, {3, 512, 2048, 7}} {
		for b := 0; b < st.blocks; b++ {
			pre := fmt.Sprintf("res%d_%d", si+2, b+1)
			stride := 1
			if b == 0 && si > 0 {
				stride = 2
			}
			conv(&ls, pre+"_1x1a", 1, in, st.mid, st.sz, stride)
			conv(&ls, pre+"_3x3", 3, st.mid, st.mid, st.sz, 1)
			conv(&ls, pre+"_1x1b", 1, st.mid, st.out, st.sz, 1)
			if b == 0 {
				conv(&ls, pre+"_down", 1, in, st.out, st.sz, stride)
			}
			in = st.out
		}
	}
	fc(&ls, "fc", 2048, 1000)
	return Model{Name: "ResNet50", Layers: ls}
}

// GoogleNet returns the GoogLeNet (Inception v1) descriptor.
func GoogleNet() Model {
	var ls []Layer
	conv(&ls, "conv1", 7, 3, 64, 112, 2)
	conv(&ls, "conv2_reduce", 1, 64, 64, 56, 1)
	conv(&ls, "conv2", 3, 64, 192, 56, 1)
	// Inception module channel table: in, c1, c3r, c3, c5r, c5, pp.
	type inc struct {
		name                         string
		in, c1, c3r, c3, c5r, c5, pp int
		sz                           int
	}
	for _, m := range []inc{
		{"3a", 192, 64, 96, 128, 16, 32, 32, 28},
		{"3b", 256, 128, 128, 192, 32, 96, 64, 28},
		{"4a", 480, 192, 96, 208, 16, 48, 64, 14},
		{"4b", 512, 160, 112, 224, 24, 64, 64, 14},
		{"4c", 512, 128, 128, 256, 24, 64, 64, 14},
		{"4d", 512, 112, 144, 288, 32, 64, 64, 14},
		{"4e", 528, 256, 160, 320, 32, 128, 128, 14},
		{"5a", 832, 256, 160, 320, 32, 128, 128, 7},
		{"5b", 832, 384, 192, 384, 48, 128, 128, 7},
	} {
		conv(&ls, "inc"+m.name+"_1x1", 1, m.in, m.c1, m.sz, 1)
		conv(&ls, "inc"+m.name+"_3x3r", 1, m.in, m.c3r, m.sz, 1)
		conv(&ls, "inc"+m.name+"_3x3", 3, m.c3r, m.c3, m.sz, 1)
		conv(&ls, "inc"+m.name+"_5x5r", 1, m.in, m.c5r, m.sz, 1)
		conv(&ls, "inc"+m.name+"_5x5", 5, m.c5r, m.c5, m.sz, 1)
		conv(&ls, "inc"+m.name+"_pool", 1, m.in, m.pp, m.sz, 1)
	}
	fc(&ls, "fc", 1024, 1000)
	return Model{Name: "GoogleNet", Layers: ls}
}

// MobileNetV2 returns the MobileNet_V2 descriptor (inverted residuals).
func MobileNetV2() Model {
	var ls []Layer
	conv(&ls, "conv1", 3, 3, 32, 112, 2)
	type ir struct{ t, c, n, s int }
	in, sz := 32, 112
	bi := 0
	for _, b := range []ir{{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2}, {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1}} {
		for i := 0; i < b.n; i++ {
			bi++
			stride := 1
			if i == 0 {
				stride = b.s
			}
			outSz := sz
			if stride == 2 {
				outSz = sz / 2
			}
			hid := in * b.t
			pre := fmt.Sprintf("ir%d", bi)
			if b.t != 1 {
				conv(&ls, pre+"_expand", 1, in, hid, sz, 1)
			}
			dwconv(&ls, pre+"_dw", 3, hid, outSz, stride)
			conv(&ls, pre+"_project", 1, hid, b.c, outSz, 1)
			in, sz = b.c, outSz
		}
	}
	conv(&ls, "conv_last", 1, 320, 1280, 7, 1)
	fc(&ls, "fc", 1280, 1000)
	return Model{Name: "MobileNet_V2", Layers: ls}
}

// ShuffleNetV2 returns the ShuffleNet_V2 1x descriptor.
func ShuffleNetV2() Model {
	var ls []Layer
	conv(&ls, "conv1", 3, 3, 24, 112, 2)
	// maxpool to 56x56 carries no kernels.
	type stage struct{ ch, blocks, sz int }
	in := 24
	bi := 0
	for _, st := range []stage{{116, 4, 28}, {232, 8, 14}, {464, 4, 7}} {
		half := st.ch / 2
		for b := 0; b < st.blocks; b++ {
			bi++
			pre := fmt.Sprintf("sh%d", bi)
			if b == 0 {
				// Downsampling unit: both branches are active.
				dwconv(&ls, pre+"_ldw", 3, in, st.sz, 2)
				conv(&ls, pre+"_lpw", 1, in, half, st.sz, 1)
				conv(&ls, pre+"_r1", 1, in, half, st.sz*2, 1)
				dwconv(&ls, pre+"_rdw", 3, half, st.sz, 2)
				conv(&ls, pre+"_r2", 1, half, half, st.sz, 1)
			} else {
				// Basic unit: right branch on half the channels.
				conv(&ls, pre+"_r1", 1, half, half, st.sz, 1)
				dwconv(&ls, pre+"_rdw", 3, half, st.sz, 1)
				conv(&ls, pre+"_r2", 1, half, half, st.sz, 1)
			}
			in = st.ch
		}
	}
	conv(&ls, "conv5", 1, 464, 1024, 7, 1)
	fc(&ls, "fc", 1024, 1000)
	return Model{Name: "ShuffleNet_V2", Layers: ls}
}

// DenseNet121 returns the DenseNet-121 descriptor.
func DenseNet121() Model {
	var ls []Layer
	conv(&ls, "conv1", 7, 3, 64, 112, 2)
	const growth = 32
	in, sz := 64, 56
	for di, blocks := range []int{6, 12, 24, 16} {
		for b := 0; b < blocks; b++ {
			pre := fmt.Sprintf("dense%d_%d", di+1, b+1)
			conv(&ls, pre+"_1x1", 1, in, 4*growth, sz, 1)
			conv(&ls, pre+"_3x3", 3, 4*growth, growth, sz, 1)
			in += growth
		}
		if di < 3 {
			// Transition: 1x1 halving + 2x2 avgpool.
			conv(&ls, fmt.Sprintf("trans%d", di+1), 1, in, in/2, sz, 1)
			in /= 2
			sz /= 2
		}
	}
	fc(&ls, "fc", in, 1000)
	return Model{Name: "DenseNet", Layers: ls}
}
