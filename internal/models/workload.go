package models

import (
	"fmt"
	"sort"
	"strings"
)

// Workload summaries used by the Fig. 9 discussion (Sec. VI-C): which
// share of a CNN's VDP operations falls at which DKV size, and how many
// psum chunks each accelerator's VDPE size implies.

// SBucket aggregates the layers whose DKV size falls in [Lo, Hi].
type SBucket struct {
	Lo, Hi  int
	Layers  int
	Kernels int64
	VDPs    int64
	MACs    int64
}

// SHistogram buckets a model's conv/dense workload by DKV size S using
// the given bucket boundaries (ascending; a final open bucket catches the
// rest).
func (m Model) SHistogram(bounds []int) []SBucket {
	sorted := append([]int(nil), bounds...)
	sort.Ints(sorted)
	buckets := make([]SBucket, 0, len(sorted)+1)
	lo := 0
	for _, b := range sorted {
		buckets = append(buckets, SBucket{Lo: lo, Hi: b})
		lo = b + 1
	}
	buckets = append(buckets, SBucket{Lo: lo, Hi: 1 << 30})
	for _, l := range m.Layers {
		s := l.S()
		for i := range buckets {
			if s >= buckets[i].Lo && s <= buckets[i].Hi {
				buckets[i].Layers++
				buckets[i].Kernels += int64(l.L)
				buckets[i].VDPs += l.VDPs()
				buckets[i].MACs += l.MACs()
				break
			}
		}
	}
	return buckets
}

// ChunksPerOutput returns the total psum chunks the model generates on a
// VDPE of size n: sum over layers of VDPs * ceil(S/n). This is the
// quantity Sec. III-A argues dominates analog accelerators' latency.
func (m Model) ChunksPerOutput(n int) int64 {
	var t int64
	for _, l := range m.Layers {
		c := int64((l.S() + n - 1) / n)
		t += l.VDPs() * c
	}
	return t
}

// PsumAdvantage returns the ratio of psum chunks at VDPE size nBase over
// size nLarge — how much psum traffic a larger VDPE removes (e.g. 22 vs
// 176 for MAM vs SCONNA).
func (m Model) PsumAdvantage(nBase, nLarge int) float64 {
	base := m.ChunksPerOutput(nBase)
	large := m.ChunksPerOutput(nLarge)
	if large == 0 {
		return 0
	}
	return float64(base) / float64(large)
}

// Summary renders a one-line-per-layer workload table.
func (m Model) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d layers, %d kernels, %.2f GMACs, %.1fM params\n",
		m.Name, len(m.Layers), m.TotalKernels(), float64(m.TotalMACs())/1e9,
		float64(m.TotalParams())/1e6)
	for _, l := range m.Layers {
		fmt.Fprintf(&sb, "  %-16s %-6s K=%d D=%-4d L=%-4d S=%-5d out=%dx%d VDPs=%d\n",
			l.Name, l.Kind, l.K, l.D, l.L, l.S(), l.HOut, l.WOut, l.VDPs())
	}
	return sb.String()
}
