package models

import (
	"strings"
	"testing"
)

func TestSHistogramPartitions(t *testing.T) {
	m := ResNet50()
	buckets := m.SHistogram([]int{44, 576})
	if len(buckets) != 3 {
		t.Fatalf("want 3 buckets, got %d", len(buckets))
	}
	var kernels int64
	var macs int64
	for _, b := range buckets {
		kernels += b.Kernels
		macs += b.MACs
	}
	if kernels != m.TotalKernels() {
		t.Fatalf("buckets lose kernels: %d vs %d", kernels, m.TotalKernels())
	}
	if macs != m.TotalMACs() {
		t.Fatalf("buckets lose MACs: %d vs %d", macs, m.TotalMACs())
	}
	// ResNet50's big 3x3 layers land in the open bucket.
	if buckets[2].MACs == 0 {
		t.Fatal("open bucket empty")
	}
}

func TestSHistogramUnsortedBounds(t *testing.T) {
	m := ShuffleNetV2()
	a := m.SHistogram([]int{576, 44})
	b := m.SHistogram([]int{44, 576})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("bounds order must not matter")
		}
	}
}

// Section III-A arithmetic: a 22-point VDPE generates ~8x the psum chunks
// of a 176-point VDPE on large CNNs, and the advantage shrinks for the
// depthwise-heavy mobile CNNs (the paper's Sec. VI-C explanation).
func TestPsumAdvantageOrdering(t *testing.T) {
	large := ResNet50().PsumAdvantage(22, 176)
	mobile := MobileNetV2().PsumAdvantage(22, 176)
	if large < 4 {
		t.Fatalf("ResNet50 psum advantage %.2f too small", large)
	}
	if mobile >= large {
		t.Fatalf("mobile advantage %.2f should trail large-CNN advantage %.2f", mobile, large)
	}
}

func TestChunksPerOutputMonotone(t *testing.T) {
	m := GoogleNet()
	if m.ChunksPerOutput(16) <= m.ChunksPerOutput(176) {
		t.Fatal("smaller VDPEs must generate more chunks")
	}
	if m.ChunksPerOutput(1<<20) != totalVDPs(m) {
		t.Fatal("huge VDPE should give exactly one chunk per output")
	}
}

func totalVDPs(m Model) int64 {
	var t int64
	for _, l := range m.Layers {
		t += l.VDPs()
	}
	return t
}

func TestSummaryRendersEveryLayer(t *testing.T) {
	m := ShuffleNetV2()
	s := m.Summary()
	if !strings.Contains(s, m.Name) {
		t.Fatal("missing model name")
	}
	if strings.Count(s, "\n") < len(m.Layers) {
		t.Fatal("missing layers")
	}
	if !strings.Contains(s, "dwconv") {
		t.Fatal("missing depthwise rows")
	}
}
