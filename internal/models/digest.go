package models

import "repro/internal/digest"

// modelSchema tags the Model digest encoding. Bump it whenever a field
// the performance simulation reads is added, removed, reordered, or
// reinterpreted — see the compatibility contract in internal/digest.
const modelSchema = "repro/models.Model@v1"

// Digest returns the canonical content digest of the model: every layer
// field the performance plane reads, in declared order. Models with
// identical workloads share a digest regardless of how they were built,
// which is what lets cached sweep cells survive across processes.
func (m Model) Digest() digest.Digest {
	h := digest.New()
	h.Str(modelSchema)
	h.Str(m.Name)
	h.Int(len(m.Layers))
	for _, l := range m.Layers {
		h.Str(l.Name).Int(int(l.Kind))
		h.Int(l.K).Int(l.D).Int(l.L)
		h.Int(l.HOut).Int(l.WOut).Int(l.Stride)
	}
	return h.Sum()
}
