// Package models provides programmatic architecture descriptors for the
// CNNs the paper evaluates (GoogleNet, ResNet50, MobileNet_V2,
// ShuffleNet_V2) and tabulates (VGG16, DenseNet121 in Table II). The
// descriptors carry per-layer kernel geometry (K, D, L), output spatial
// dimensions and strides — everything the Table II kernel census and the
// Fig. 9 performance simulations need, none of the weights (which Table II
// does not depend on; see DESIGN.md "Substitutions").
package models

// Kind classifies a workload layer.
type Kind int

// Layer kinds.
const (
	// Conv is a standard convolution: each of L kernels spans K*K*D.
	Conv Kind = iota
	// DWConv is a depthwise convolution: L kernels of K*K*1 (the
	// MobileNet/ShuffleNet workhorse the paper calls out in Sec. VI-C).
	DWConv
	// Dense is a fully-connected layer: L kernels of D points each.
	Dense
)

// String returns the kind mnemonic.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case DWConv:
		return "dwconv"
	case Dense:
		return "fc"
	}
	return "?"
}

// Layer describes one weight-bearing layer's VDP workload.
type Layer struct {
	Name   string
	Kind   Kind
	K      int // kernel spatial size (1 for Dense)
	D      int // per-kernel input depth (1 for DWConv)
	L      int // number of kernels (output channels / units)
	HOut   int // output height (1 for Dense)
	WOut   int // output width (1 for Dense)
	Stride int
}

// S returns the flattened kernel-vector size K*K*D — the paper's DKV size.
func (l Layer) S() int { return l.K * l.K * l.D }

// VDPs returns the number of VDP operations (output points) the layer
// produces: HOut*WOut*L.
func (l Layer) VDPs() int64 { return int64(l.HOut) * int64(l.WOut) * int64(l.L) }

// MACs returns the layer's multiply-accumulate count: VDPs * S.
func (l Layer) MACs() int64 { return l.VDPs() * int64(l.S()) }

// Params returns the layer's weight parameter count: L * S.
func (l Layer) Params() int64 { return int64(l.L) * int64(l.S()) }

// Model is a named stack of workload layers.
type Model struct {
	Name   string
	Layers []Layer
}

// TotalKernels returns the total kernel count across layers (Table II's
// T_L).
func (m Model) TotalKernels() int64 {
	var t int64
	for _, l := range m.Layers {
		t += int64(l.L)
	}
	return t
}

// TotalMACs returns the model's MAC count.
func (m Model) TotalMACs() int64 {
	var t int64
	for _, l := range m.Layers {
		t += l.MACs()
	}
	return t
}

// TotalParams returns the model's weight count.
func (m Model) TotalParams() int64 {
	var t int64
	for _, l := range m.Layers {
		t += l.Params()
	}
	return t
}

// ConvKernels returns the convolutional kernel count (Conv + DWConv,
// excluding fully-connected units) — the population Table II censuses:
// its published totals match the conv-only counts of each architecture.
func (m Model) ConvKernels() int64 {
	var t int64
	for _, l := range m.Layers {
		if l.Kind != Dense {
			t += int64(l.L)
		}
	}
	return t
}

// KernelCensus counts convolutional kernels with S <= thresh and
// S > thresh (Table II uses thresh = 44, the best analog VDPE size).
func (m Model) KernelCensus(thresh int) (le, gt int64) {
	for _, l := range m.Layers {
		if l.Kind == Dense {
			continue
		}
		if l.S() <= thresh {
			le += int64(l.L)
		} else {
			gt += int64(l.L)
		}
	}
	return le, gt
}

// MaxS returns the largest DKV size in the model (4608 for ResNet50 in the
// paper's Sec. II-B).
func (m Model) MaxS() int {
	best := 0
	for _, l := range m.Layers {
		if l.S() > best {
			best = l.S()
		}
	}
	return best
}

// PaperTableII holds the published Table II kernel counts for reference.
var PaperTableII = map[string]struct{ LE, GT int64 }{
	"ResNet50":  {1, 26562},
	"GoogleNet": {13, 7554},
	"VGG16":     {69, 4168},
	"DenseNet":  {1, 10242},
}

// Evaluated returns the four CNNs of the Fig. 9 / Table V evaluation.
func Evaluated() []Model {
	return []Model{GoogleNet(), ResNet50(), MobileNetV2(), ShuffleNetV2()}
}

// TableIIModels returns the four CNNs of Table II.
func TableIIModels() []Model {
	return []Model{ResNet50(), GoogleNet(), VGG16(), DenseNet121()}
}
