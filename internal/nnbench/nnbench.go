// Package nnbench defines the compute-plane benchmark bodies shared by
// the `go test -bench` suites (internal/nn, internal/quant wrap them as
// standard benchmarks) and cmd/benchnn, which runs them through
// testing.Benchmark to emit BENCH_nn.json — the machine-readable
// trajectory future PRs diff for regressions — and to gate CI on the
// GEMM-vs-naive conv speedup.
//
// The shapes are fixed contracts: changing one invalidates the ns/op
// trajectory, so treat them like golden values.
package nnbench

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Conv benchmark shape: a mid-stack layer of the accuracy-study CNNs
// scaled up enough that the gather dominates (8->16 channels, 3x3,
// stride 1, pad 1 over 32x32).
const (
	convInC, convOutC, convK = 8, 16, 3
	convH, convW             = 32, 32
)

func benchConv() (*nn.Conv2D, *tensor.T) {
	rng := rand.New(rand.NewSource(1))
	c := nn.NewConv2D("bench", convInC, convOutC, convK, 1, 1, false, rng)
	x := tensor.New(convInC, convH, convW)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return c, x
}

// ConvForwardNaive times the reference per-output-pixel convolution (the
// seed implementation).
func ConvForwardNaive(b *testing.B) {
	c, x := benchConv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ForwardNaive(x)
	}
}

// ConvForwardGEMM times the im2col/GEMM convolution on the identical
// shape; outputs are bit-identical to the naive path.
func ConvForwardGEMM(b *testing.B) {
	c, x := benchConv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x)
	}
}

// ConvBackwardGEMM times the lowered gradient path (weight, bias and
// input gradients) after one forward pass.
func ConvBackwardGEMM(b *testing.B) {
	c, x := benchConv()
	out := c.Forward(x)
	grad := tensor.New(out.Shape...)
	rng := rand.New(rand.NewSource(2))
	for i := range grad.Data {
		grad.Data[i] = float32(rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Backward(grad)
	}
}

// DenseForward times the one-column GEMM fully-connected layer.
func DenseForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	d := nn.NewDense("bench", 512, 128, rng)
	x := tensor.New(512)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Forward(x)
	}
}

func benchQuant(b *testing.B) (*quant.Network, *tensor.T) {
	b.Helper()
	net := nn.BuildSmallCNN(8, 8, 1)
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(1, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(math.Abs(rng.NormFloat64()))
	}
	qn, err := quant.Quantize(net, 8, []nn.Example{{X: x, Label: 0}})
	if err != nil {
		b.Fatal(err)
	}
	return qn, x
}

// QuantForwardNaive times the reference quantized inference gather.
func QuantForwardNaive(b *testing.B) {
	qn, x := benchQuant(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qn.ForwardNaive(x, quant.ExactEngine{})
	}
}

// QuantForward times the lowered quantized inference (shared integer
// patch extraction, reused scratch).
func QuantForward(b *testing.B) {
	qn, x := benchQuant(b)
	s := quant.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qn.ForwardScratch(x, quant.ExactEngine{}, s)
	}
}

// sparseBenchInput draws a sparsity-controlled input: each element is
// zero with probability sparsity, otherwise in [0.5, 1] — comfortably
// above the quantization step, so the quantized zero fraction tracks the
// float sparsity.
func sparseBenchInput(seed int64, sparsity float64, shape ...int) *tensor.T {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(shape...)
	for i := range x.Data {
		if rng.Float64() >= sparsity {
			x.Data[i] = 0.5 + 0.5*rng.Float32()
		}
	}
	return x
}

// ConvForwardSparse returns a benchmark timing the float convolution
// forward on the golden conv shape at the given input sparsity: above
// the gate threshold the column-compacted path runs, below it the dense
// GEMM — the sweep measures the crossover.
func ConvForwardSparse(sparsity float64) func(*testing.B) {
	return func(b *testing.B) {
		c, _ := benchConv()
		x := sparseBenchInput(8, sparsity, convInC, convH, convW)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Forward(x)
		}
	}
}

// denseOnlyExact computes exact integer dot products without
// implementing quant.ZeroSkipper, so it pins the dense lowering: the
// dense reference leg of the sparsity sweep runs identical arithmetic
// with zero skipping off.
type denseOnlyExact struct{}

func (denseOnlyExact) Name() string           { return "exact-dense" }
func (denseOnlyExact) Dot(div, dkv []int) int { return quant.ExactEngine{}.Dot(div, dkv) }

// benchQuantSparse builds a single quantized convolution on the golden
// conv shape — the layer whose input sparsity the sweep controls
// directly, so the ratio measures the sparse lowering itself rather
// than a full network's mostly-dense downstream layers. Calibration
// uses a dense input, so quantization parameters are identical across
// sparsities.
func benchQuantSparse(b *testing.B, sparsity float64) (*quant.Network, *tensor.T) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	net := &nn.Network{Layers: []nn.Layer{
		nn.NewConv2D("bench", convInC, convOutC, convK, 1, 1, false, rng),
	}}
	calib := tensor.New(convInC, convH, convW)
	for i := range calib.Data {
		calib.Data[i] = float32(math.Abs(rng.NormFloat64()))
	}
	qn, err := quant.Quantize(net, 8, []nn.Example{{X: calib, Label: 0}})
	if err != nil {
		b.Fatal(err)
	}
	return qn, sparseBenchInput(9, sparsity, convInC, convH, convW)
}

// QuantForwardSparse returns a benchmark timing the quantized conv
// forward at the given input sparsity through a zero-skipping engine
// (the sparse path engages wherever the gate fires).
func QuantForwardSparse(sparsity float64) func(*testing.B) {
	return func(b *testing.B) {
		qn, x := benchQuantSparse(b, sparsity)
		s := quant.NewScratch()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qn.ForwardScratch(x, quant.ExactEngine{}, s)
		}
	}
}

// QuantForwardSparseDenseRef returns the dense reference for the sweep:
// the identical sparse input through a non-ZeroSkipper engine, so every
// layer takes the dense lowering. SparseSpeedup in BENCH_nn.json is this
// leg's ns/op over QuantForwardSparse's.
func QuantForwardSparseDenseRef(sparsity float64) func(*testing.B) {
	return func(b *testing.B) {
		qn, x := benchQuantSparse(b, sparsity)
		s := quant.NewScratch()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qn.ForwardScratch(x, denseOnlyExact{}, s)
		}
	}
}

// TrainStep returns a benchmark timing one epoch of mini-batch SGD over
// a fixed 64-example workload with the given data-parallel worker count
// (results are bit-identical across worker counts; only wall time
// moves).
func TrainStep(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(5))
		examples := make([]nn.Example, 64)
		for i := range examples {
			x := tensor.New(1, 16, 16)
			for j := range x.Data {
				x.Data[j] = float32(rng.NormFloat64())
			}
			examples[i] = nn.Example{X: x, Label: rng.Intn(8)}
		}
		net := nn.BuildSmallCNN(8, 8, 6)
		opt := nn.SGD{LR: 0.05, Momentum: 0.9}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := net.TrainParallel(examples, 1, 16, opt, rand.New(rand.NewSource(7)), workers); err != nil {
				b.Fatal(err)
			}
		}
	}
}
