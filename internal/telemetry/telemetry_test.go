package telemetry

import (
	"strings"
	"testing"
	"time"
)

// Exact-power observations must land in the bucket whose upper bound
// they equal — the off-by-one the serving plane's original histogram
// got wrong (it reported 2µs observations under a 4µs bound).
func TestHistogramExactPowerBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + time.Nanosecond, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{1024 * time.Microsecond, 10},
		{1025 * time.Microsecond, 11},
		{time.Hour * 24, Buckets - 1},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.d)
		snap := h.Snapshot()
		got := -1
		for i, n := range snap.Buckets {
			if n > 0 {
				got = i
				break
			}
		}
		if got != c.want {
			t.Errorf("Observe(%v) landed in bucket %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", h.Quantile(0.5))
	}
	// 99 observations at 1µs, one at 1024µs: p50 reads the 1µs bucket's
	// bound, p99 still the low bucket (rank 99 of 100 is the 99th
	// observation), p999 and p100 the high one.
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(1024 * time.Microsecond)
	if got := h.Quantile(0.50); got != time.Microsecond {
		t.Errorf("p50 = %v, want 1µs", got)
	}
	if got := h.Quantile(0.99); got != time.Microsecond {
		t.Errorf("p99 = %v, want 1µs (rank 99 of 100)", got)
	}
	if got := h.Quantile(0.999); got != 1024*time.Microsecond {
		t.Errorf("p999 = %v, want 1024µs", got)
	}
	if got := h.Quantile(1.0); got != 1024*time.Microsecond {
		t.Errorf("p100 = %v, want 1024µs", got)
	}
	snap := h.Snapshot()
	if snap.Count != 100 {
		t.Errorf("count = %d, want 100", snap.Count)
	}
	if want := 99*time.Microsecond + 1024*time.Microsecond; snap.Sum != want {
		t.Errorf("sum = %v, want %v", snap.Sum, want)
	}
}

// Trace IDs are a pure function of the seq: fixed known values pin the
// splitmix64 derivation so replayed traces keep their IDs across
// releases.
func TestTraceIDDeterministic(t *testing.T) {
	if TraceID(0) != TraceID(0) {
		t.Fatal("TraceID not deterministic")
	}
	if TraceID(0) == TraceID(1) {
		t.Fatal("TraceID collides on adjacent seqs")
	}
	if len(TraceID(12345)) != 16 {
		t.Fatalf("TraceID length %d, want 16", len(TraceID(12345)))
	}
}

func TestNilPlaneIsFree(t *testing.T) {
	var p *Plane
	sp := p.StartSpan(7, time.Now(), 0, "")
	if sp != nil {
		t.Fatal("nil plane produced a span")
	}
	sp.Mark(StageForward) // must not panic
	sp.Finish("ok")
	if p.Traces() != nil || p.StageSnapshot() != nil || p.TraceCount() != 0 || p.Name() != "" {
		t.Fatal("nil plane is not empty")
	}
}

func TestSpanRingAndStageHistograms(t *testing.T) {
	p := New(Options{Name: "m", TraceRing: 4})
	for seq := uint64(0); seq < 10; seq++ {
		sp := p.StartSpan(seq, time.Now(), time.Millisecond, "client-id")
		sp.Mark(StageQueue)
		sp.Mark(StageForward)
		sp.Mark(StageRespond)
		sp.Finish("ok")
	}
	if p.TraceCount() != 10 {
		t.Fatalf("TraceCount = %d, want 10", p.TraceCount())
	}
	recs := p.Traces()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(recs))
	}
	// Ring keeps the most recent, export is seq-sorted.
	for i, rec := range recs {
		if want := uint64(6 + i); rec.Seq != want {
			t.Errorf("trace %d has seq %d, want %d", i, rec.Seq, want)
		}
		if rec.TraceID != TraceID(rec.Seq) || rec.Model != "m" || rec.Status != "ok" || rec.ClientID != "client-id" {
			t.Errorf("trace record %+v malformed", rec)
		}
		stages := make([]string, len(rec.Stages))
		for j, s := range rec.Stages {
			stages[j] = s.Stage
		}
		if got := strings.Join(stages, ","); got != "decode,admit,queue,forward,respond" {
			t.Errorf("stage order %q", got)
		}
	}
	snaps := p.StageSnapshot()
	if len(snaps) != len(StageNames()) {
		t.Fatalf("%d stage snapshots, want %d", len(snaps), len(StageNames()))
	}
	if snaps[StageDecode].Count != 10 || snaps[StageForward].Count != 10 {
		t.Errorf("stage histogram counts: decode=%d forward=%d, want 10",
			snaps[StageDecode].Count, snaps[StageForward].Count)
	}
	if snaps[StageAssemble].Count != 0 {
		t.Errorf("unreached stage observed %d times", snaps[StageAssemble].Count)
	}
}

func TestChromeTraceExport(t *testing.T) {
	p := New(Options{Name: "alpha"})
	sp := p.StartSpan(3, time.Now(), 0, "")
	sp.Mark(StageQueue)
	sp.Mark(StageForward)
	sp.Finish("ok")
	var b strings.Builder
	if err := WriteChromeTrace(&b, p, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"traceEvents"`, `"process_name"`, `"alpha"`, `"queue"`, `"forward"`, TraceID(3)} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %q:\n%s", want, out)
		}
	}
}
