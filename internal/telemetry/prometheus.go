package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The Prometheus text exposition writer. Hand-rolled — the repo takes
// no dependencies — and deliberately small: families are written in
// the order collectors add them and samples in the order they were
// added to their family, so the document layout is a pure function of
// the collection code path (the golden-format test pins it).

// Label is one name="value" pair on a sample.
type Label struct{ Name, Value string }

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

type sample struct {
	suffix string // "" for the family name itself, "_bucket"/"_sum"/"_count" for histograms
	labels []Label
	value  float64
}

// Family is one metric family: a name, TYPE/HELP metadata, and its
// samples.
type Family struct {
	name, typ, help string
	samples         []sample
}

// Families accumulates metric families for one exposition document.
type Families struct {
	order  []*Family
	byName map[string]*Family
}

// NewFamilies returns an empty exposition document builder.
func NewFamilies() *Families {
	return &Families{byName: make(map[string]*Family)}
}

// Family returns the named family, creating it (with the given type
// and help, kept from the first call) on first use. typ is one of
// "counter", "gauge" or "histogram".
func (f *Families) Family(name, typ, help string) *Family {
	if fam, ok := f.byName[name]; ok {
		return fam
	}
	fam := &Family{name: name, typ: typ, help: help}
	f.byName[name] = fam
	f.order = append(f.order, fam)
	return fam
}

// Add appends one sample to the family.
func (fam *Family) Add(value float64, labels ...Label) {
	fam.samples = append(fam.samples, sample{labels: labels, value: value})
}

// Histogram appends a histogram snapshot in the Prometheus convention:
// cumulative `_bucket` samples with `le` upper bounds in seconds
// (every log2 bucket plus +Inf), then `_sum` and `_count`. The family
// must be of type "histogram".
func (fam *Family) Histogram(snap HistSnapshot, labels ...Label) {
	cum := uint64(0)
	for i, n := range snap.Buckets {
		cum += n
		le := strconv.FormatFloat(BucketUpper(i).Seconds(), 'g', -1, 64)
		fam.samples = append(fam.samples, sample{
			suffix: "_bucket",
			labels: append(append([]Label(nil), labels...), L("le", le)),
			value:  float64(cum),
		})
	}
	fam.samples = append(fam.samples, sample{
		suffix: "_bucket",
		labels: append(append([]Label(nil), labels...), L("le", "+Inf")),
		value:  float64(snap.Count),
	})
	fam.samples = append(fam.samples,
		sample{suffix: "_sum", labels: labels, value: snap.Sum.Seconds()},
		sample{suffix: "_count", labels: labels, value: float64(snap.Count)})
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// Write renders the document in the text exposition format (0.0.4).
func (f *Families) Write(w io.Writer) error {
	var b strings.Builder
	for _, fam := range f.order {
		if len(fam.samples) == 0 {
			continue
		}
		if fam.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, fam.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, s := range fam.samples {
			b.WriteString(fam.name)
			b.WriteString(s.suffix)
			if len(s.labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.labels {
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(s.value, 'g', -1, 64))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Collector contributes samples to an exposition document.
type Collector func(*Families)

// registry is the process-global collector set: subsystems that are
// not reachable from a serving handler (content-addressed caches, for
// one) register here and every /metrics endpoint scrapes them.
var registry struct {
	sync.Mutex
	m map[string]Collector
}

// RegisterCollector installs (or replaces) a named global collector,
// scraped by every MetricsHandler in registration-name order.
func RegisterCollector(name string, c Collector) {
	registry.Lock()
	defer registry.Unlock()
	if registry.m == nil {
		registry.m = make(map[string]Collector)
	}
	registry.m[name] = c
}

// UnregisterCollector removes a named global collector.
func UnregisterCollector(name string) {
	registry.Lock()
	defer registry.Unlock()
	delete(registry.m, name)
}

// CollectGlobal runs every registered global collector in name order.
// MetricsHandler calls it after its local collectors; tests and
// non-HTTP exporters can call it directly.
func CollectGlobal(f *Families) {
	registry.Lock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	cs := make([]Collector, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		cs = append(cs, registry.m[name])
	}
	registry.Unlock()
	for _, c := range cs {
		c(f)
	}
}

// expositionContentType is the Prometheus text format content type.
const expositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsHandler serves GET /metrics: the local collectors run first
// (in argument order), then every globally registered collector (in
// name order), and the document is written in the text exposition
// format.
func MetricsHandler(local ...Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		f := NewFamilies()
		for _, c := range local {
			c(f)
		}
		CollectGlobal(f)
		w.Header().Set("Content-Type", expositionContentType)
		// A broken connection surfaces in the scraper, not here.
		_ = f.Write(w)
	})
}

// ValidateExposition checks a text exposition document for
// well-formedness: TYPE lines precede their samples, sample names
// belong to the most recent family (modulo histogram/summary
// suffixes), label syntax parses, and values are floats. It is the
// assertion the selftest's scrape leg and the format tests share.
func ValidateExposition(doc string) error {
	curFamily := ""
	curType := ""
	seenSample := false
	lineNo := 0
	for _, line := range strings.Split(doc, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 3 {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if strings.HasPrefix(line, "# TYPE ") {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				curFamily, curType, seenSample = name, fields[3], false
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		if curFamily != "" {
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if name != curFamily && base != curFamily {
				return fmt.Errorf("line %d: sample %q outside family %q", lineNo, name, curFamily)
			}
			if curType == "histogram" && name == curFamily {
				return fmt.Errorf("line %d: bare histogram sample %q", lineNo, name)
			}
		}
		rest := line[len(name):]
		if strings.HasPrefix(rest, "{") {
			end := strings.LastIndex(rest, "}")
			if end < 0 {
				return fmt.Errorf("line %d: unterminated label set", lineNo)
			}
			if err := validateLabels(rest[1:end]); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			rest = rest[end+1:]
		}
		rest = strings.TrimSpace(rest)
		val := strings.Fields(rest)
		if len(val) < 1 || len(val) > 2 { // optional trailing timestamp
			return fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		if v := val[0]; v != "+Inf" && v != "-Inf" && v != "NaN" {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				return fmt.Errorf("line %d: bad value %q", lineNo, v)
			}
		}
		seenSample = true
	}
	_ = seenSample
	return nil
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validateLabels checks the inside of a {...} label set.
func validateLabels(s string) error {
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq <= 0 || !validMetricName(s[:eq]) {
			return fmt.Errorf("bad label name in %q", s)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return fmt.Errorf("unquoted label value in %q", s)
		}
		s = s[1:]
		// Scan to the closing unescaped quote.
		i := 0
		for ; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
		}
		if i >= len(s) {
			return fmt.Errorf("unterminated label value")
		}
		s = s[i+1:]
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		} else if len(s) > 0 {
			return fmt.Errorf("trailing garbage %q in label set", s)
		}
	}
	return nil
}
