package telemetry

import (
	"math"
	"math/bits"
	"sync"
	"time"
)

// Buckets is the log2-microsecond latency histogram size: bucket i
// holds observations in (2^(i-1), 2^i] microseconds (bucket 0 holds
// everything at or under 1µs), the last bucket is open-ended (~1.2
// hours), which comfortably brackets both microsecond dispatch
// overheads and multi-second cold batches.
//
// The buckets are right-closed so an observation of exactly 2^k µs
// lands in the bucket whose reported upper bound is 2^k — the
// Prometheus `le` convention. (The serving plane's original histogram
// was right-open, which pushed every exact-power observation one
// bucket up and doubled its reported quantile.)
const Buckets = 33

// Histogram is a fixed-bucket log2 latency histogram. One mutex guards
// it; observations are a handful of stores, so contention stays
// negligible next to a forward pass. The zero value is ready to use;
// a Histogram must not be copied after first use.
type Histogram struct {
	mu      sync.Mutex
	buckets [Buckets]uint64
	count   uint64
	sum     time.Duration
}

// bucketOf returns the bucket index for a microsecond observation:
// ceil(log2(us)), clamped to the open-ended last bucket.
func bucketOf(us int64) int {
	if us <= 1 {
		return 0
	}
	b := bits.Len64(uint64(us) - 1)
	if b >= Buckets {
		b = Buckets - 1
	}
	return b
}

// Observe records one latency observation. Sub-microsecond precision
// rounds up, so an observation never lands under a bound it exceeds.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b := bucketOf((d.Nanoseconds() + 999) / 1000)
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.sum += d
	h.mu.Unlock()
}

// Quantile returns the upper bound of the bucket containing the q-th
// (0..1) observation (nearest-rank: ceil(q*count)-1, zero-based), or 0
// when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}

// Count returns how many observations the histogram holds.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Snapshot copies the histogram's state for lock-free reading.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{Buckets: h.buckets, Count: h.count, Sum: h.sum}
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Buckets [Buckets]uint64
	Count   uint64
	Sum     time.Duration
}

// BucketUpper returns bucket i's inclusive upper bound as a duration
// (2^i microseconds).
func BucketUpper(i int) time.Duration {
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// Quantile returns the upper bound of the bucket containing the q-th
// (0..1) observation, or 0 when the snapshot is empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q*float64(s.Count))) - 1
	if rank >= s.Count { // q >= 1 (or float overshoot): the max observation
		rank = s.Count - 1
	}
	var seen uint64
	for b, n := range s.Buckets {
		seen += n
		if seen > rank {
			return BucketUpper(b)
		}
	}
	return BucketUpper(Buckets) // unreachable: counts sum to Count
}
