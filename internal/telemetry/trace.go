// Package telemetry is the observability plane of the serving stack:
// per-request span traces (deterministic trace IDs derived from the
// arrival seq via splitmix64, a bounded ring of recent traces
// exportable as Chrome trace-event JSON), per-stage log2 latency
// histograms, a hand-rolled Prometheus text exposition writer (no
// dependencies), and pprof mounting.
//
// The plane is strictly passive: it never touches request results, so
// deterministic replay stays byte-identical with telemetry on (pinned
// by the serving plane's Nop-telemetry replay test). Every recording
// entry point is nil-safe — a nil *Plane or nil *Span is the Nop path,
// costing one branch per call site and allocating nothing — which is
// what keeps the telemetry-off hot path provably unperturbed.
package telemetry

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Stage enumerates the serving pipeline stages a request moves through,
// in order. Each span records the monotonic completion offset of every
// stage it reaches; a stage's duration is the gap to the previous
// reached stage.
type Stage uint8

const (
	// StageDecode is HTTP body read and input decoding (zero-width for
	// direct Go submissions).
	StageDecode Stage = iota
	// StageAdmit is admission: input validation, seq assignment and
	// queue insertion.
	StageAdmit
	// StageQueue is time spent waiting in the bounded queue until batch
	// assembly pulled the request.
	StageQueue
	// StageAssemble is the batch-fill window plus the handoff to a
	// worker goroutine.
	StageAssemble
	// StageCheckout is the engine-pool checkout wait.
	StageCheckout
	// StageForward is the batched forward pass.
	StageForward
	// StageRespond is result fan-out to the caller's future.
	StageRespond

	numStages
)

var stageNames = [numStages]string{
	"decode", "admit", "queue", "assemble", "checkout", "forward", "respond",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// StageNames returns the pipeline stages in order; the per-stage
// histogram export iterates it so metric ordering is stable.
func StageNames() []string { return stageNames[:] }

// mix64 is the splitmix64 finalizer — the same fixed, well-diffusing
// 64-bit hash the serving plane's traffic mixing and chaos schedules
// use, so trace IDs are a pure function of the arrival seq and replay
// stably.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TraceID derives the deterministic trace ID for an arrival seq:
// splitmix64 of the seq, rendered as 16 hex digits. The load
// generator derives its client-side IDs the same way from the global
// request index, so client and server traces join on format.
func TraceID(seq uint64) string {
	return fmt.Sprintf("%016x", mix64(seq))
}

// TraceIDHeader is the HTTP header load-generation clients stamp their
// request-index-derived trace ID into; the server records it on the
// span so client- and server-side traces can be joined offline.
const TraceIDHeader = "X-Trace-Id"

// Options configures a Plane.
type Options struct {
	// Name labels the plane's metrics and trace events (the registry
	// sets it to the model name).
	Name string
	// TraceRing bounds the in-memory ring of recent completed traces
	// (<= 0 selects 256).
	TraceRing int
}

// Plane is one serving stack's telemetry: per-stage latency histograms
// and a bounded ring of recent request traces. A nil *Plane is the Nop
// path — every method is nil-safe and free.
type Plane struct {
	name  string
	epoch time.Time

	stage [numStages]Histogram

	mu    sync.Mutex
	ring  []Span
	next  int
	total uint64
}

// New builds a Plane.
func New(opts Options) *Plane {
	n := opts.TraceRing
	if n <= 0 {
		n = 256
	}
	return &Plane{name: opts.Name, epoch: time.Now(), ring: make([]Span, 0, n)}
}

// Name returns the plane's label ("" when unset).
func (p *Plane) Name() string {
	if p == nil {
		return ""
	}
	return p.name
}

// Span is one request's trace: the seq-derived trace ID and the
// monotonic completion offset of every pipeline stage it reached.
// Marks are written by the single goroutine owning the request at that
// stage; the channel handoffs between stages order them.
type Span struct {
	plane *Plane
	// Seq is the request's arrival index; the trace ID derives from it.
	Seq uint64
	// Start is the span's wall-clock start (decode start for HTTP
	// requests, admission for direct submissions).
	Start time.Time
	// ClientID is the client's TraceIDHeader value, when stamped.
	ClientID string
	// Status is the request outcome: "ok", "cancelled", "expired" or
	// "failed".
	Status string
	// marks[i] is stage i's completion offset from Start; -1 unreached.
	marks [numStages]time.Duration
}

// StartSpan opens a span for an admitted request. start is the
// admission time; decode is the already-elapsed HTTP decode duration
// (0 for direct submissions) and clientID the caller's stamped trace
// ID, both usually recovered via HTTPInfoFrom. Returns nil (free) on a
// nil plane.
func (p *Plane) StartSpan(seq uint64, start time.Time, decode time.Duration, clientID string) *Span {
	if p == nil {
		return nil
	}
	sp := &Span{plane: p, Seq: seq, Start: start.Add(-decode), ClientID: clientID}
	for i := range sp.marks {
		sp.marks[i] = -1
	}
	if decode > 0 {
		sp.marks[StageDecode] = decode
	}
	sp.marks[StageAdmit] = time.Since(sp.Start)
	return sp
}

// Mark records stage completion at the current monotonic time. Nil-safe.
func (sp *Span) Mark(stage Stage) {
	if sp == nil {
		return
	}
	sp.marks[stage] = time.Since(sp.Start)
}

// Finish closes the span with an outcome, folds its stage durations
// into the plane's histograms and publishes it to the trace ring.
// Nil-safe; a span must be finished at most once.
func (sp *Span) Finish(status string) {
	if sp == nil {
		return
	}
	sp.Status = status
	prev := time.Duration(0)
	for i := Stage(0); i < numStages; i++ {
		if sp.marks[i] < 0 {
			continue
		}
		sp.plane.stage[i].Observe(sp.marks[i] - prev)
		prev = sp.marks[i]
	}
	p := sp.plane
	p.mu.Lock()
	if len(p.ring) < cap(p.ring) {
		p.ring = append(p.ring, *sp)
	} else {
		p.ring[p.next] = *sp
		p.next = (p.next + 1) % cap(p.ring)
	}
	p.total++
	p.mu.Unlock()
}

// StageSnapshot returns the per-stage latency histograms, indexed like
// StageNames.
func (p *Plane) StageSnapshot() []HistSnapshot {
	if p == nil {
		return nil
	}
	out := make([]HistSnapshot, numStages)
	for i := range out {
		out[i] = p.stage[i].Snapshot()
	}
	return out
}

// TraceCount returns how many traces the plane has recorded in total
// (the ring keeps only the most recent TraceRing of them).
func (p *Plane) TraceCount() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// StageRecord is one stage of an exported trace.
type StageRecord struct {
	Stage string        `json:"stage"`
	Dur   time.Duration `json:"dur_ns"`
}

// SpanRecord is one exported trace: the JSONL/Chrome-facing form of a
// completed Span.
type SpanRecord struct {
	TraceID  string        `json:"trace_id"`
	Seq      uint64        `json:"seq"`
	Model    string        `json:"model,omitempty"`
	ClientID string        `json:"client_trace_id,omitempty"`
	Status   string        `json:"status"`
	StartUS  float64       `json:"start_us"` // offset from the plane's epoch
	Stages   []StageRecord `json:"stages"`
}

// Traces exports the ring's completed traces sorted by seq — a
// deterministic order, unlike completion order, so two replays of the
// same trace export identically-ordered documents.
func (p *Plane) Traces() []SpanRecord {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	spans := append([]Span(nil), p.ring...)
	p.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })
	out := make([]SpanRecord, len(spans))
	for i, sp := range spans {
		rec := SpanRecord{
			TraceID:  TraceID(sp.Seq),
			Seq:      sp.Seq,
			Model:    p.name,
			ClientID: sp.ClientID,
			Status:   sp.Status,
			StartUS:  float64(sp.Start.Sub(p.epoch).Nanoseconds()) / 1e3,
		}
		prev := time.Duration(0)
		for s := Stage(0); s < numStages; s++ {
			if sp.marks[s] < 0 {
				continue
			}
			rec.Stages = append(rec.Stages, StageRecord{Stage: s.String(), Dur: sp.marks[s] - prev})
			prev = sp.marks[s]
		}
		out[i] = rec
	}
	return out
}

// httpInfoKey carries HTTPInfo through a request context.
type httpInfoKey struct{}

// HTTPInfo is what the HTTP layer measured before admission: the body
// decode duration and the client's stamped trace ID.
type HTTPInfo struct {
	Decode   time.Duration
	ClientID string
}

// WithHTTPInfo attaches decode timing and the client trace ID to a
// request context; the admission path recovers it with HTTPInfoFrom.
// Only called when telemetry is enabled, so the Nop path allocates no
// context values.
func WithHTTPInfo(ctx context.Context, info HTTPInfo) context.Context {
	return context.WithValue(ctx, httpInfoKey{}, info)
}

// HTTPInfoFrom recovers WithHTTPInfo's payload (zero value when absent).
func HTTPInfoFrom(ctx context.Context) HTTPInfo {
	info, _ := ctx.Value(httpInfoKey{}).(HTTPInfo)
	return info
}
