package telemetry

import (
	"net/http"
	"net/http/pprof"
	"strings"
)

// WithPprof mounts the runtime profiling endpoints under /debug/pprof/
// in front of next: index, named profiles (heap, goroutine, block,
// mutex, allocs, threadcreate), cmdline, profile (CPU), symbol and
// trace. Everything else falls through to next untouched — the serving
// surface is byte-identical off this prefix, which is why pprof stays
// behind a flag rather than in the default handler.
func WithPprof(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/debug/pprof/") || r.URL.Path == "/debug/pprof" {
			mux.ServeHTTP(w, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}
