package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestExpositionWriteAndValidate(t *testing.T) {
	f := NewFamilies()
	c := f.Family("sconna_test_total", "counter", "A test counter.")
	c.Add(3, L("model", "default"), L("outcome", "served"))
	c.Add(1, L("model", `we"ird\na"me`))
	g := f.Family("sconna_test_depth", "gauge", "A test gauge.")
	g.Add(7.5)
	var h Histogram
	h.Observe(3 * time.Microsecond)
	h.Observe(2 * time.Second)
	f.Family("sconna_test_latency_seconds", "histogram", "A test histogram.").
		Histogram(h.Snapshot(), L("stage", "forward"))
	// Empty families are skipped entirely.
	f.Family("sconna_test_empty", "counter", "Never sampled.")

	var b strings.Builder
	if err := f.Write(&b); err != nil {
		t.Fatal(err)
	}
	doc := b.String()
	if err := ValidateExposition(doc); err != nil {
		t.Fatalf("self-written document fails validation: %v\n%s", err, doc)
	}
	for _, want := range []string{
		"# TYPE sconna_test_total counter",
		`sconna_test_total{model="default",outcome="served"} 3`,
		"sconna_test_depth 7.5",
		`sconna_test_latency_seconds_bucket{stage="forward",le="+Inf"} 2`,
		"sconna_test_latency_seconds_count{stage=\"forward\"} 2",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %q:\n%s", want, doc)
		}
	}
	if strings.Contains(doc, "sconna_test_empty") {
		t.Error("empty family was emitted")
	}
	// Histogram buckets are cumulative and end at the count.
	if !strings.Contains(doc, `le="4e-06"} 1`) {
		t.Errorf("3µs observation missing from the 4µs bucket:\n%s", doc)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"1bad_name 3",
		`ok{label=noquote} 1`,
		`ok{label="unterminated} 1`,
		"ok notanumber",
		"# TYPE x wrongtype\nx 1",
		"# TYPE sconna_a counter\nsconna_b 1",
	} {
		if err := ValidateExposition(bad); err == nil {
			t.Errorf("ValidateExposition(%q) passed, want error", bad)
		}
	}
	if err := ValidateExposition("good_name{a=\"b\",c=\"d\"} 1.5\n"); err != nil {
		t.Errorf("valid sample rejected: %v", err)
	}
}

func TestMetricsHandlerAndGlobalCollectors(t *testing.T) {
	RegisterCollector("zz_test_cache", func(f *Families) {
		f.Family("sconna_cache_lookups_total", "counter", "Cache lookups.").Add(5, L("cache", "t"))
	})
	defer UnregisterCollector("zz_test_cache")
	h := MetricsHandler(func(f *Families) {
		f.Family("sconna_local_total", "counter", "Local.").Add(1)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	doc := string(body)
	if err := ValidateExposition(doc); err != nil {
		t.Fatalf("handler document invalid: %v", err)
	}
	local := strings.Index(doc, "sconna_local_total")
	global := strings.Index(doc, "sconna_cache_lookups_total")
	if local < 0 || global < 0 || global < local {
		t.Errorf("local collectors must precede globals:\n%s", doc)
	}
}

func TestWithPprof(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	srv := httptest.NewServer(WithPprof(next))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "heap profile") {
		t.Fatalf("heap profile: %d %.80s", resp.StatusCode, body)
	}
	// Off-prefix traffic falls through untouched.
	resp, err = http.Get(srv.URL + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("fallthrough: %d, want 418", resp.StatusCode)
	}
}
