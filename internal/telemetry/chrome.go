package telemetry

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Chrome trace-event (the chrome://tracing /
// Perfetto JSON format). Complete events ("X") carry a start timestamp
// and duration in microseconds; metadata events ("M") name processes.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level document.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace exports the planes' recent traces as one Chrome
// trace-event JSON document: one process per plane (named by model),
// one thread row per request seq, one complete slice per pipeline
// stage. Planes are emitted in argument order and spans within a plane
// in seq order, so the document layout is deterministic for a given
// set of recorded traces.
func WriteChromeTrace(w io.Writer, planes ...*Plane) error {
	doc := chromeTrace{TraceEvents: []chromeEvent{}}
	for pi, p := range planes {
		if p == nil {
			continue
		}
		pid := pi + 1
		name := p.Name()
		if name == "" {
			name = "serve"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
		for _, rec := range p.Traces() {
			ts := rec.StartUS
			for _, st := range rec.Stages {
				dur := float64(st.Dur.Nanoseconds()) / 1e3
				ev := chromeEvent{
					Name: st.Stage, Cat: "serve", Ph: "X",
					TS: ts, Dur: dur, PID: pid, TID: rec.Seq,
					Args: map[string]any{"trace_id": rec.TraceID, "status": rec.Status},
				}
				if rec.ClientID != "" {
					ev.Args["client_trace_id"] = rec.ClientID
				}
				doc.TraceEvents = append(doc.TraceEvents, ev)
				ts += dur
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
