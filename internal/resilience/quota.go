package resilience

import "sync/atomic"

// Quota is a bounded in-flight admission counter — the weighted
// fairness primitive the model registry uses when models share a box:
// each model's limit is its weight share of the registry-wide
// in-flight budget, so one hot model cannot starve the rest of engine
// time. A limit of 0 admits everything (the default, and the
// byte-compatible legacy behavior).
type Quota struct {
	limit    atomic.Int64
	inflight atomic.Int64
	rejected atomic.Uint64
}

// SetLimit replaces the in-flight bound (0 disables). Safe under
// traffic: requests already admitted keep their slots; the new bound
// applies to subsequent admissions.
func (q *Quota) SetLimit(n int) { q.limit.Store(int64(n)) }

// Limit returns the current bound (0 = unlimited).
func (q *Quota) Limit() int { return int(q.limit.Load()) }

// InFlight returns the currently admitted count.
func (q *Quota) InFlight() int { return int(q.inflight.Load()) }

// Rejected counts admissions refused at the quota.
func (q *Quota) Rejected() uint64 { return q.rejected.Load() }

// TryAcquire admits one request if the in-flight count is under the
// limit. Every true return must be paired with exactly one Release.
func (q *Quota) TryAcquire() bool {
	limit := q.limit.Load()
	if limit <= 0 {
		q.inflight.Add(1)
		return true
	}
	for {
		cur := q.inflight.Load()
		if cur >= limit {
			q.rejected.Add(1)
			return false
		}
		if q.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// Release returns one admitted slot.
func (q *Quota) Release() { q.inflight.Add(-1) }
