package resilience

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/quant"
)

// The chaos schedule is a pure function of (seed, seq): two walks agree
// exactly, a different seed realizes a different schedule, and the
// configured rates are realized to within sampling error.
func TestChaosScheduleDeterministicAndSeeded(t *testing.T) {
	o := ChaosOptions{Seed: 42, ErrRate: 0.1, SlowRate: 0.1, WrongRate: 0.1}
	counts := map[Fault]int{}
	for seq := uint64(0); seq < 4096; seq++ {
		f := o.FaultFor(seq)
		if again := o.FaultFor(seq); again != f {
			t.Fatalf("seq %d: schedule not stable: %v then %v", seq, f, again)
		}
		counts[f]++
	}
	for _, f := range []Fault{FaultErr, FaultSlow, FaultWrong} {
		got := float64(counts[f]) / 4096
		if got < 0.05 || got > 0.15 {
			t.Fatalf("fault %v realized at rate %.3f, want ~0.1", f, got)
		}
	}
	diff := 0
	other := ChaosOptions{Seed: 43, ErrRate: 0.1, SlowRate: 0.1, WrongRate: 0.1}
	for seq := uint64(0); seq < 4096; seq++ {
		if o.FaultFor(seq) != other.FaultFor(seq) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("two seeds realized the identical schedule")
	}
}

func TestChaosEngineFactoryInjects(t *testing.T) {
	o := ChaosOptions{Seed: 7, ErrRate: 0.2, WrongRate: 0.2, SlowRate: 0.1, SlowDelay: time.Microsecond}
	factory := ChaosEngineFactory(quant.SharedEngine(quant.ExactEngine{}), o)
	div, dkv := []int{1, 2, 3}, []int{4, 5, 6}
	want := quant.ExactEngine{}.Dot(div, dkv)
	var sawErr, sawWrong, sawClean bool
	for seq := 0; seq < 256; seq++ {
		eng, err := factory(seq)
		fault := o.FaultFor(uint64(seq))
		switch fault {
		case FaultErr:
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("seq %d scheduled to fail, got err=%v", seq, err)
			}
			sawErr = true
			continue
		}
		if err != nil {
			t.Fatalf("seq %d: unscheduled error %v", seq, err)
		}
		got := eng.Dot(div, dkv)
		switch fault {
		case FaultWrong:
			if got == want {
				t.Fatalf("seq %d scheduled wrong, returned the correct dot", seq)
			}
			// The corruption itself is part of the schedule: replayable.
			eng2, _ := factory(seq)
			if eng2.Dot(div, dkv) != got {
				t.Fatalf("seq %d: corruption not replayable", seq)
			}
			sawWrong = true
		default:
			if got != want {
				t.Fatalf("seq %d (fault %v): dot %d, want %d", seq, fault, got, want)
			}
			if fault == FaultNone {
				sawClean = true
			}
		}
	}
	if !sawErr || !sawWrong || !sawClean {
		t.Fatalf("schedule did not exercise all paths: err=%v wrong=%v clean=%v", sawErr, sawWrong, sawClean)
	}
}

// The HTTP middleware injects flagged 500s at the configured rate and
// stops once the fault budget is spent.
func TestHTTPMiddlewareBudget(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h := Middleware(inner, HTTPChaosOptions{Seed: 3, ErrorRate: 0.5, FaultBudget: 5})
	hs := httptest.NewServer(h)
	defer hs.Close()
	injected := 0
	for i := 0; i < 100; i++ {
		resp, err := http.Get(hs.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusInternalServerError {
			if resp.Header.Get(ChaosHeader) == "" {
				t.Fatal("injected 500 not flagged")
			}
			injected++
		}
	}
	if injected != 5 {
		t.Fatalf("budget 5 realized %d injected faults", injected)
	}
	// Zero rates return the handler untouched.
	if got := Middleware(inner, HTTPChaosOptions{}); got == nil {
		t.Fatal("nil middleware")
	}
}

// The breaker trips at the failure threshold, sheds during cooldown
// with a Retry-After, admits bounded half-open probes, re-opens on a
// probe failure and closes after enough successes.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(BreakerOptions{
		Window: 8, FailureThreshold: 0.5, MinSamples: 4,
		Cooldown: time.Second, HalfOpenProbes: 2,
	})
	b.now = func() time.Time { return now }

	record := func(success bool) {
		ok, _ := b.Allow()
		if !ok {
			t.Fatalf("closed breaker refused (state %v)", b.State())
		}
		b.Record(success)
	}
	record(true)
	record(true)
	record(false)
	if b.State() != Closed {
		t.Fatalf("tripped below MinSamples: %v", b.State())
	}
	record(false) // 2 failures / 4 samples = threshold
	if b.State() != Open {
		t.Fatalf("state %v, want open at threshold", b.State())
	}
	ok, retryAfter := b.Allow()
	if ok || retryAfter <= 0 || retryAfter > time.Second {
		t.Fatalf("open breaker: ok=%v retryAfter=%v", ok, retryAfter)
	}

	// Cooldown elapses: bounded probes flow.
	now = now.Add(time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state %v, want half-open after cooldown", b.State())
	}
	ok1, _ := b.Allow()
	ok2, _ := b.Allow()
	ok3, _ := b.Allow()
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("half-open probe gating: %v %v %v, want true true false", ok1, ok2, ok3)
	}
	// A probe failure re-opens.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state %v, want open after failed probe", b.State())
	}
	if st := b.Stats(); st.Trips != 2 {
		t.Fatalf("trips = %d, want 2", st.Trips)
	}
	// The outstanding pre-reopen probe settles harmlessly.
	b.Record(true)

	// Second recovery: both probes succeed, the breaker closes.
	now = now.Add(2 * time.Second)
	for i := 0; i < 2; i++ {
		ok, _ := b.Allow()
		if !ok {
			t.Fatalf("probe %d refused", i)
		}
		b.Record(true)
	}
	if b.State() != Closed {
		t.Fatalf("state %v, want closed after probe successes", b.State())
	}
	st := b.Stats()
	if st.State != "closed" || st.Rejected == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// The retry client honors Retry-After, retries transient statuses, and
// hands back the final outcome when the budget runs out.
func TestRetryClient(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer hs.Close()

	c := &RetryClient{Opts: RetryOptions{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}}
	resp, err := c.Post(hs.URL, "application/json", []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final status %d after retries", resp.StatusCode)
	}
	if c.Attempts() != 3 || c.Retries() != 2 {
		t.Fatalf("attempts=%d retries=%d, want 3/2", c.Attempts(), c.Retries())
	}

	// Budget exhaustion surfaces the last transient response.
	hits.Store(-100)
	resp, err = c.Post(hs.URL, "application/json", []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted budget returned %d, want 429", resp.StatusCode)
	}
}

// The jittered backoff schedule is deterministic per seed.
func TestRetryDelayDeterministic(t *testing.T) {
	o := RetryOptions{BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Seed: 9}.resolve()
	a, b := &RetryClient{Opts: o}, &RetryClient{Opts: o}
	for k := 0; k < 5; k++ {
		da := a.delay(o, 0, k, "")
		if db := b.delay(o, 0, k, ""); da != db {
			t.Fatalf("attempt %d: delays diverge (%v vs %v)", k, da, db)
		}
		lo := time.Duration(float64(min(o.BaseDelay<<uint(k), o.MaxDelay)) * 0.5)
		hi := min(o.BaseDelay<<uint(k), o.MaxDelay)
		if da < lo || da > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", k, da, lo, hi)
		}
	}
	// Retry-After overrides backoff, capped at MaxDelay.
	if d := a.delay(o, 0, 0, "10"); d != o.MaxDelay {
		t.Fatalf("Retry-After 10s: delay %v, want the %v cap", d, o.MaxDelay)
	}
	if d := a.delay(o, 0, 0, "0"); d != 0 {
		t.Fatalf("Retry-After 0: delay %v, want 0", d)
	}
}

// The quota bounds concurrent admissions exactly, under -race.
func TestQuotaConcurrent(t *testing.T) {
	var q Quota
	q.SetLimit(4)
	var peak, cur atomic.Int64
	var admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !q.TryAcquire() {
					rejected.Add(1)
					continue
				}
				admitted.Add(1)
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				cur.Add(-1)
				q.Release()
			}
		}()
	}
	wg.Wait()
	if peak.Load() > 4 {
		t.Fatalf("quota of 4 admitted %d concurrently", peak.Load())
	}
	if q.InFlight() != 0 {
		t.Fatalf("in-flight %d after all released", q.InFlight())
	}
	if admitted.Load() == 0 {
		t.Fatal("nothing admitted")
	}
	if got := q.Rejected(); got != uint64(rejected.Load()) {
		t.Fatalf("rejected counter %d, observed %d", got, rejected.Load())
	}
	// Limit 0 admits everything.
	q.SetLimit(0)
	for i := 0; i < 10; i++ {
		if !q.TryAcquire() {
			t.Fatal("unlimited quota refused")
		}
	}
}
