package resilience

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// ChaosHeader marks chaos-injected HTTP failures, so clients, soak
// harnesses and log scrapers can separate injected 5xx from real ones.
const ChaosHeader = "X-Chaos-Injected"

// HTTPChaosOptions seeds a request-level fault schedule for the
// Middleware. The schedule is keyed by the middleware's own arrival
// index (an atomic counter), so the set of faulted indices is a pure
// function of (Seed, rates) — under concurrent clients the mapping of
// indices to wire requests follows arrival order, which is what a
// recorded serial trace replays exactly.
type HTTPChaosOptions struct {
	// Seed keys the schedule, exactly like ChaosOptions.Seed.
	Seed uint64
	// ErrorRate is the fraction of requests answered with an injected
	// 500 (body flagged, ChaosHeader set) before reaching the handler.
	ErrorRate float64
	// StallRate is the fraction of requests delayed by Stall before
	// being forwarded — injected tail latency, not failure.
	StallRate float64
	// Stall is the injected delay (<= 0 selects 20ms).
	Stall time.Duration
	// FaultBudget bounds how many faults (errors + stalls) the
	// middleware injects in total; 0 means unbounded. A bounded budget
	// turns a chaos run into a two-phase soak — faults early, clean
	// traffic after — which is how the selftest drives a breaker
	// through trip, cooldown and half-open recovery deterministically.
	FaultBudget uint64
}

// faultFor mirrors ChaosOptions.FaultFor on the HTTP axis.
func (o HTTPChaosOptions) faultFor(idx uint64) Fault {
	u := unit(Mix64(o.Seed ^ Mix64(idx^0x5e1f)))
	switch {
	case u < o.ErrorRate:
		return FaultErr
	case u < o.ErrorRate+o.StallRate:
		return FaultSlow
	}
	return FaultNone
}

func (o HTTPChaosOptions) stall() time.Duration {
	if o.Stall <= 0 {
		return 20 * time.Millisecond
	}
	return o.Stall
}

// Middleware wraps an HTTP handler with the seeded request-fault
// schedule: scheduled requests are answered 500 (flagged with
// ChaosHeader) or stalled, everything else passes through untouched.
// With zero rates the handler is returned as-is — the chaos plane
// costs nothing when disabled.
func Middleware(h http.Handler, o HTTPChaosOptions) http.Handler {
	if o.ErrorRate <= 0 && o.StallRate <= 0 {
		return h
	}
	var idx, spent atomic.Uint64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := idx.Add(1) - 1
		fault := o.faultFor(i)
		if fault != FaultNone && o.FaultBudget > 0 && spent.Add(1) > o.FaultBudget {
			fault = FaultNone
		}
		switch fault {
		case FaultErr:
			w.Header().Set(ChaosHeader, "error")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			_ = json.NewEncoder(w).Encode(map[string]string{
				"error": "resilience: injected HTTP fault",
			})
			return
		case FaultSlow:
			w.Header().Set(ChaosHeader, "stall")
			time.Sleep(o.stall())
		}
		h.ServeHTTP(w, r)
	})
}
