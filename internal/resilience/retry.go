package resilience

import (
	"bytes"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// RetryOptions shapes the retrying client's backoff policy.
//
// The backoff contract mirrors what the serving plane promises on its
// 429/503 paths: the response's Retry-After header (whole seconds,
// derived server-side from the observed drain rate) is authoritative
// when present; otherwise the delay grows exponentially from BaseDelay,
// doubling per attempt up to MaxDelay, with a deterministic jitter
// factor in [0.5, 1.0) hashed from (Seed, call index, attempt) — two
// runs at the same seed sleep the same schedule.
type RetryOptions struct {
	// MaxAttempts bounds total tries including the first (<= 0
	// selects 4).
	MaxAttempts int
	// BaseDelay is the first backoff step (<= 0 selects 25ms).
	BaseDelay time.Duration
	// MaxDelay caps every delay, including server-directed Retry-After
	// waits (<= 0 selects 1s).
	MaxDelay time.Duration
	// Seed keys the jitter schedule.
	Seed uint64
}

func (o RetryOptions) resolve() RetryOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 25 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = time.Second
	}
	return o
}

// RetryClient posts with retry: transport errors and retryable
// statuses (429 and all 5xx) back off and try again, everything else —
// including the final exhausted attempt — is returned to the caller.
// It is safe for concurrent use; Retries and Attempts aggregate across
// all callers.
type RetryClient struct {
	// HTTP is the underlying client (nil selects http.DefaultClient).
	HTTP *http.Client
	// Opts is the backoff policy (zero values resolve to defaults).
	Opts RetryOptions

	calls    atomic.Uint64
	attempts atomic.Uint64
	retries  atomic.Uint64
}

// Attempts returns the total request attempts issued.
func (c *RetryClient) Attempts() uint64 { return c.attempts.Load() }

// Retries returns how many of those attempts were retries.
func (c *RetryClient) Retries() uint64 { return c.retries.Load() }

// retryable reports whether a status code is worth another attempt:
// backpressure (429) and server-side failures (5xx), the two families
// the serving plane's resilience contract documents as transient.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// delay computes the sleep before attempt k (0-based retry index) of
// call n, honoring the server's Retry-After when given.
func (c *RetryClient) delay(o RetryOptions, call uint64, k int, retryAfter string) time.Duration {
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			d := time.Duration(secs) * time.Second
			if d > o.MaxDelay {
				d = o.MaxDelay
			}
			return d
		}
	}
	d := o.BaseDelay << uint(k)
	if d > o.MaxDelay || d <= 0 {
		d = o.MaxDelay
	}
	// Jitter in [0.5, 1.0): deterministic per (seed, call, attempt) so
	// replayed load realizes the same sleep schedule.
	j := 0.5 + 0.5*unit(Mix64(o.Seed^Mix64(call*64+uint64(k))))
	return time.Duration(float64(d) * j)
}

// Post issues a POST with the retry policy. The body is replayed from
// the byte slice on every attempt. The final response (or transport
// error) is returned; the caller owns closing the body.
func (c *RetryClient) Post(url, contentType string, body []byte) (*http.Response, error) {
	resp, _, err := c.PostHeader(url, contentType, body, nil)
	return resp, err
}

// PostHeader is Post with extra request headers — the load generator
// stamps its per-request trace ID this way — and additionally reports
// how many attempts this one call took (>= 1), so per-request retry
// counts can be recorded without reading the client-wide aggregates.
func (c *RetryClient) PostHeader(url, contentType string, body []byte, header http.Header) (*http.Response, int, error) {
	o := c.Opts.resolve()
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	call := c.calls.Add(1) - 1
	var resp *http.Response
	var err error
	tried := 0
	for k := 0; k < o.MaxAttempts; k++ {
		if k > 0 {
			c.retries.Add(1)
		}
		c.attempts.Add(1)
		tried++
		var req *http.Request
		req, err = http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, tried, err
		}
		req.Header.Set("Content-Type", contentType)
		for name, vs := range header {
			for _, v := range vs {
				req.Header.Add(name, v)
			}
		}
		resp, err = hc.Do(req)
		if err == nil && !retryable(resp.StatusCode) {
			return resp, tried, nil
		}
		if k == o.MaxAttempts-1 {
			break
		}
		retryAfter := ""
		if err == nil {
			retryAfter = resp.Header.Get("Retry-After")
			resp.Body.Close()
		}
		time.Sleep(c.delay(o, call, k, retryAfter))
	}
	return resp, tried, err
}
