package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's three-state machine.
type BreakerState int

const (
	// Closed admits everything; outcomes feed the rolling window.
	Closed BreakerState = iota
	// Open sheds everything until the cooldown elapses.
	Open
	// HalfOpen admits a bounded number of probes whose outcomes decide
	// between closing and re-opening.
	HalfOpen
)

// String names the state in stats documents ("closed", "open",
// "half-open").
func (s BreakerState) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "closed"
}

// BreakerOptions configures a circuit breaker. The zero value resolves
// to a 32-outcome window, a 0.5 failure threshold with 8 minimum
// samples, a 1s cooldown and 3 half-open probes.
type BreakerOptions struct {
	// Window is the rolling outcome-window size the failure rate is
	// computed over.
	Window int
	// FailureThreshold trips the breaker when failures/window reaches
	// it (with at least MinSamples outcomes observed).
	FailureThreshold float64
	// MinSamples gates tripping until the window has seen that many
	// outcomes, so one early failure cannot open a cold breaker.
	MinSamples int
	// Cooldown is how long an open breaker sheds before admitting
	// half-open probes.
	Cooldown time.Duration
	// HalfOpenProbes is how many consecutive probe successes close the
	// breaker again (and how many probes may be in flight at once).
	HalfOpenProbes int
}

func (o BreakerOptions) resolve() BreakerOptions {
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 0.5
	}
	if o.MinSamples <= 0 {
		o.MinSamples = min(8, o.Window)
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.HalfOpenProbes <= 0 {
		o.HalfOpenProbes = 3
	}
	return o
}

// Breaker is a per-model circuit breaker: Allow gates admission,
// Record feeds outcomes back. Both are cheap (one mutex, a ring of
// booleans) next to a forward pass. The zero Breaker is not usable —
// build with NewBreaker.
type Breaker struct {
	mu   sync.Mutex
	opts BreakerOptions
	now  func() time.Time // test seam; time.Now in production

	state    BreakerState
	openedAt time.Time

	// ring is the rolling outcome window (true = failure).
	ring   []bool
	idx    int
	filled int
	fails  int

	// half-open probe accounting.
	probesInFlight int
	probeSuccesses int

	trips    uint64
	rejected uint64
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(opts BreakerOptions) *Breaker {
	o := opts.resolve()
	return &Breaker{opts: o, now: time.Now, ring: make([]bool, o.Window)}
}

// resetWindow clears the rolling outcome window.
func (b *Breaker) resetWindow() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.idx, b.filled, b.fails = 0, 0, 0
}

// trip opens the breaker.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.now()
	b.trips++
	b.probesInFlight, b.probeSuccesses = 0, 0
	b.resetWindow()
}

// Allow reports whether a request may proceed. When it may not, the
// returned duration is the suggested Retry-After: the remaining
// cooldown of an open breaker, or the full cooldown when the half-open
// probe budget is already in flight. Every true return must be paired
// with exactly one Record call — the probe accounting depends on it.
func (b *Breaker) Allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true, 0
	case Open:
		remain := b.opts.Cooldown - b.now().Sub(b.openedAt)
		if remain > 0 {
			b.rejected++
			return false, remain
		}
		// Cooldown over: admit probes.
		b.state = HalfOpen
		b.probesInFlight, b.probeSuccesses = 0, 0
		fallthrough
	default: // HalfOpen
		if b.probesInFlight >= b.opts.HalfOpenProbes {
			b.rejected++
			return false, b.opts.Cooldown
		}
		b.probesInFlight++
		return true, 0
	}
}

// Record feeds one admitted request's outcome back (success = the
// request was served, regardless of the classification; failure = a
// server-side error or timeout). In the closed state it advances the
// rolling window and may trip; in half-open it settles one probe —
// any probe failure re-opens, HalfOpenProbes successes close.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		if b.probesInFlight > 0 {
			b.probesInFlight--
		}
		if !success {
			b.trip()
			return
		}
		b.probeSuccesses++
		if b.probeSuccesses >= b.opts.HalfOpenProbes {
			b.state = Closed
			b.resetWindow()
		}
	case Closed:
		if b.ring[b.idx] {
			b.fails--
		}
		b.ring[b.idx] = !success
		if !success {
			b.fails++
		}
		b.idx = (b.idx + 1) % len(b.ring)
		if b.filled < len(b.ring) {
			b.filled++
		}
		if b.filled >= b.opts.MinSamples &&
			float64(b.fails) >= b.opts.FailureThreshold*float64(b.filled) {
			b.trip()
		}
	default: // Open: a straggler from before the trip; the window was
		// reset, its outcome no longer has a home.
	}
}

// State returns the current state, advancing Open to HalfOpen if the
// cooldown has elapsed (so observers see the same state an Allow call
// would).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.now().Sub(b.openedAt) >= b.opts.Cooldown {
		b.state = HalfOpen
		b.probesInFlight, b.probeSuccesses = 0, 0
	}
	return b.state
}

// BreakerStats is the /stats-facing snapshot of one breaker.
type BreakerStats struct {
	// State is "closed", "open" or "half-open".
	State string `json:"state"`
	// Trips counts closed->open (and half-open->open) transitions.
	Trips uint64 `json:"trips"`
	// Rejected counts requests shed while open or probe-saturated.
	Rejected uint64 `json:"rejected"`
	// WindowFailures/WindowSamples describe the rolling outcome window
	// feeding the trip decision.
	WindowFailures int `json:"window_failures"`
	WindowSamples  int `json:"window_samples"`
	// CooldownRemainingMS is how much shed time an open breaker has
	// left (0 otherwise).
	CooldownRemainingMS int64 `json:"cooldown_remaining_ms,omitempty"`
}

// Stats snapshots the breaker for the stats plane.
func (b *Breaker) Stats() BreakerStats {
	state := b.State() // may advance Open -> HalfOpen
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStats{
		State:          state.String(),
		Trips:          b.trips,
		Rejected:       b.rejected,
		WindowFailures: b.fails,
		WindowSamples:  b.filled,
	}
	if b.state == Open {
		if remain := b.opts.Cooldown - b.now().Sub(b.openedAt); remain > 0 {
			st.CooldownRemainingMS = remain.Milliseconds()
		}
	}
	return st
}
