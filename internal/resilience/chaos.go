// Package resilience is the robustness plane of the serving stack:
// deterministic fault injection, a retrying HTTP client, circuit
// breakers and admission quotas. It sits below internal/serve (which
// wires breakers and quotas into the model registry and deadlines into
// the micro-batcher) and beside the load generator (whose clients use
// the retry policy), and it owes its shape to the same contract every
// other plane in this tree honors: determinism first.
//
// Fault injection is seeded, not random. Every chaos decision — does
// engine seq fail to build, does it run slow, does it return a
// wrong-but-flagged result, does HTTP request i get a 500 or a stall —
// is a pure function of (seed, index) through the splitmix64 finalizer.
// Two chaos runs at the same seed realize the identical fault schedule,
// so a failure a soak run surfaces is replayable byte-for-byte, and a
// test can compute the schedule up front and assert against it.
//
// The circuit breaker is a per-model three-state machine (closed →
// open → half-open) over a rolling outcome window: it trips when the
// failure fraction crosses a threshold, sheds load for a cooldown
// (callers get 503 + Retry-After), then admits a bounded number of
// probes whose outcomes decide between closing and re-opening. The
// admission quota is the registry-level fairness primitive: a bounded
// in-flight count per model, sized by weight when models share a box.
package resilience

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/quant"
)

// ErrInjected marks a chaos-injected engine-build failure. Serving
// layers treat it like any engine error; tests and soak runs unwrap it
// to separate injected faults from real ones.
var ErrInjected = errors.New("resilience: injected fault")

// Fault is one chaos-schedule outcome for an engine index.
type Fault int

const (
	// FaultNone leaves the engine untouched.
	FaultNone Fault = iota
	// FaultErr makes the factory call fail with ErrInjected.
	FaultErr
	// FaultSlow delays the engine's first dot product by SlowDelay —
	// one latency spike per engine build (per request in deterministic
	// serving, where every request builds factory(seq)).
	FaultSlow
	// FaultWrong perturbs every dot product by a small seeded offset:
	// the result is wrong, and flagged in the sense that the schedule
	// pinpoints exactly which seqs were corrupted — FaultFor(seq)
	// recovers the flag from (seed, seq) alone, so a replay harness can
	// separate corrupted responses from honest ones without trusting
	// the server.
	FaultWrong
)

// String names the fault kind in schedules and logs.
func (f Fault) String() string {
	switch f {
	case FaultErr:
		return "err"
	case FaultSlow:
		return "slow"
	case FaultWrong:
		return "wrong"
	}
	return "none"
}

// ChaosOptions seeds an engine-level fault schedule. Rates are
// probabilities in [0, 1]; they partition the unit interval in the
// order err, slow, wrong, so the same seed with a larger ErrRate keeps
// the slow/wrong assignments of surviving indices stable.
type ChaosOptions struct {
	// Seed keys the fault schedule; the same seed always realizes the
	// same schedule.
	Seed uint64
	// ErrRate is the fraction of engine builds that fail (ErrInjected).
	ErrRate float64
	// SlowRate is the fraction of engines whose first dot product
	// stalls for SlowDelay.
	SlowRate float64
	// WrongRate is the fraction of engines returning perturbed
	// (wrong-but-flagged) dot products.
	WrongRate float64
	// SlowDelay is the injected latency spike (<= 0 selects 10ms).
	SlowDelay time.Duration
	// SkipSeqs exempts engine indices below it from every fault. The
	// serving stack builds its startup engine pool from the same factory
	// (factory(0..PoolSize-1)); set SkipSeqs to the pool size so the
	// server always constructs and chaos lands only on live traffic. The
	// exemption is part of the schedule — FaultFor answers FaultNone for
	// exempt indices — so replays and assertions stay consistent.
	SkipSeqs int
}

// Mix64 is the splitmix64 finalizer: a fixed, well-diffusing 64-bit
// hash (every input bit moves every output bit), the one primitive all
// deterministic schedules in this tree reduce through — the loadgen's
// traffic mix, the sparse-input generator, and every chaos decision
// here.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// FaultFor returns the scheduled fault for one engine index: a pure
// function of (Seed, seq), so the schedule can be computed before,
// during or after a run — this is what makes injected wrong results
// "flagged" rather than silent corruption.
func (o ChaosOptions) FaultFor(seq uint64) Fault {
	if seq < uint64(o.SkipSeqs) {
		return FaultNone
	}
	u := unit(Mix64(o.Seed ^ Mix64(seq)))
	switch {
	case u < o.ErrRate:
		return FaultErr
	case u < o.ErrRate+o.SlowRate:
		return FaultSlow
	case u < o.ErrRate+o.SlowRate+o.WrongRate:
		return FaultWrong
	}
	return FaultNone
}

// slowDelay resolves the configured latency spike.
func (o ChaosOptions) slowDelay() time.Duration {
	if o.SlowDelay <= 0 {
		return 10 * time.Millisecond
	}
	return o.SlowDelay
}

// ChaosEngineFactory wraps an engine factory with the seeded fault
// schedule: build i fails, stalls or corrupts exactly when FaultFor(i)
// says so. In deterministic serving (engine = factory(request seq))
// this injects per-request faults; in throughput serving it decides
// each pool slot's fate once at build time. The wrapped factory is the
// chaos plane's only engine-level seam — the inner factory, and the
// network it serves, are untouched.
func ChaosEngineFactory(inner quant.EngineFactory, o ChaosOptions) quant.EngineFactory {
	return func(seq int) (quant.DotEngine, error) {
		fault := o.FaultFor(uint64(seq))
		if fault == FaultErr {
			return nil, fmt.Errorf("%w: engine %d scheduled to fail (seed %d)", ErrInjected, seq, o.Seed)
		}
		eng, err := inner(seq)
		if err != nil {
			return nil, err
		}
		switch fault {
		case FaultSlow:
			return &slowEngine{inner: eng, delay: o.slowDelay()}, nil
		case FaultWrong:
			// The perturbation is seeded off the seq so two runs corrupt
			// identically; it is small but nonzero (±1..8), enough to move
			// logits without leaving the engine's integer range.
			h := Mix64(o.Seed ^ Mix64(uint64(seq)) ^ 0xc0ffee)
			off := 1 + int(h%8)
			if h&(1<<32) != 0 {
				off = -off
			}
			return &wrongEngine{inner: eng, offset: off}, nil
		}
		return eng, nil
	}
}

// slowEngine stalls its first dot product — one injected latency spike
// per engine build.
type slowEngine struct {
	inner quant.DotEngine
	delay time.Duration
	fired bool
}

func (s *slowEngine) Dot(div, dkv []int) int {
	if !s.fired {
		s.fired = true
		time.Sleep(s.delay)
	}
	return s.inner.Dot(div, dkv)
}

func (s *slowEngine) Name() string { return "chaos-slow(" + s.inner.Name() + ")" }

// wrongEngine perturbs every dot product by a fixed seeded offset.
type wrongEngine struct {
	inner  quant.DotEngine
	offset int
}

func (w *wrongEngine) Dot(div, dkv []int) int { return w.inner.Dot(div, dkv) + w.offset }

func (w *wrongEngine) Name() string { return "chaos-wrong(" + w.inner.Name() + ")" }
