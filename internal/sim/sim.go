// Package sim provides the transaction-level, event-driven simulation
// kernel underlying the performance plane of this reproduction — the Go
// counterpart of the paper's "custom, transaction-level, event-driven
// python-based simulator" (Section VI-B).
//
// Two abstractions cover the accelerator models' needs:
//
//   - Kernel: a classic discrete-event scheduler (time-ordered callback
//     queue) used to sequence layer rounds and barriers.
//   - Station: an analytic FIFO resource with one or more servers, used for
//     contended components (eDRAM ports, psum reduction networks, ADCs,
//     NoC links). Transactions reserve service time and the station
//     resolves queueing delay without per-cycle simulation.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback.
type event struct {
	at  float64 // ns
	seq uint64  // tie-break for deterministic ordering
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Kernel is a discrete-event scheduler. The zero value is ready to use.
type Kernel struct {
	now    float64
	seq    uint64
	queue  eventQueue
	events uint64
}

// Now returns the current simulated time in ns.
func (k *Kernel) Now() float64 { return k.now }

// Schedule enqueues fn to run delayNS after the current time. Negative
// delays panic: causality violations are bugs.
func (k *Kernel) Schedule(delayNS float64, fn func()) {
	if delayNS < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delayNS))
	}
	k.ScheduleAt(k.now+delayNS, fn)
}

// ScheduleAt enqueues fn at absolute time atNS (>= Now).
func (k *Kernel) ScheduleAt(atNS float64, fn func()) {
	if atNS < k.now {
		panic(fmt.Sprintf("sim: schedule in the past (%g < %g)", atNS, k.now))
	}
	k.seq++
	heap.Push(&k.queue, &event{at: atNS, seq: k.seq, fn: fn})
}

// Run processes events until the queue drains, returning the final time.
func (k *Kernel) Run() float64 { return k.RunUntil(math.Inf(1)) }

// RunUntil processes events with timestamps <= limitNS and returns the
// time of the last processed event (or the current time if none ran).
func (k *Kernel) RunUntil(limitNS float64) float64 {
	for k.queue.Len() > 0 {
		next := k.queue[0]
		if next.at > limitNS {
			break
		}
		heap.Pop(&k.queue)
		k.now = next.at
		k.events++
		next.fn()
	}
	return k.now
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return k.queue.Len() }

// Processed returns the total number of events executed.
func (k *Kernel) Processed() uint64 { return k.events }

// Station is an analytic FIFO resource with `servers` identical servers.
// Transactions call Reserve with their ready time and service demand; the
// station returns when service starts and ends, accounting queueing delay.
type Station struct {
	name    string
	freeAt  []float64
	busyNS  float64
	count   uint64
	lastEnd float64
}

// NewStation creates a station with the given number of servers (>= 1).
func NewStation(name string, servers int) *Station {
	if servers < 1 {
		panic(fmt.Sprintf("sim: station %q needs >= 1 server", name))
	}
	return &Station{name: name, freeAt: make([]float64, servers)}
}

// Name returns the station's label.
func (s *Station) Name() string { return s.name }

// Reserve books serviceNS of work for a transaction that becomes ready at
// readyNS. It picks the earliest-free server, returns the actual start and
// end times, and records statistics.
func (s *Station) Reserve(readyNS, serviceNS float64) (start, end float64) {
	if serviceNS < 0 {
		panic(fmt.Sprintf("sim: negative service %g at %q", serviceNS, s.name))
	}
	best := 0
	for i := 1; i < len(s.freeAt); i++ {
		if s.freeAt[i] < s.freeAt[best] {
			best = i
		}
	}
	start = math.Max(readyNS, s.freeAt[best])
	end = start + serviceNS
	s.freeAt[best] = end
	s.busyNS += serviceNS
	s.count++
	if end > s.lastEnd {
		s.lastEnd = end
	}
	return start, end
}

// FreeAt returns the earliest time any server becomes free.
func (s *Station) FreeAt() float64 {
	min := s.freeAt[0]
	for _, f := range s.freeAt[1:] {
		if f < min {
			min = f
		}
	}
	return min
}

// LastEnd returns the completion time of the latest-finishing reservation.
func (s *Station) LastEnd() float64 { return s.lastEnd }

// BusyNS returns the total booked service time across servers.
func (s *Station) BusyNS() float64 { return s.busyNS }

// Count returns the number of reservations served.
func (s *Station) Count() uint64 { return s.count }

// Utilization returns busy time divided by (servers * horizonNS).
func (s *Station) Utilization(horizonNS float64) float64 {
	if horizonNS <= 0 {
		return 0
	}
	return s.busyNS / (float64(len(s.freeAt)) * horizonNS)
}

// Reset clears all bookings and statistics.
func (s *Station) Reset() {
	for i := range s.freeAt {
		s.freeAt[i] = 0
	}
	s.busyNS, s.count, s.lastEnd = 0, 0, 0
}
