package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	var k Kernel
	var order []int
	k.Schedule(5, func() { order = append(order, 5) })
	k.Schedule(1, func() { order = append(order, 1) })
	k.Schedule(3, func() { order = append(order, 3) })
	end := k.Run()
	if end != 5 {
		t.Fatalf("end=%g want 5", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 3 || order[2] != 5 {
		t.Fatalf("order=%v", order)
	}
	if k.Processed() != 3 {
		t.Fatalf("processed=%d", k.Processed())
	}
}

func TestKernelTieBreakIsFIFO(t *testing.T) {
	var k Kernel
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(1, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events must run FIFO: %v", order)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	var k Kernel
	var times []float64
	k.Schedule(1, func() {
		times = append(times, k.Now())
		k.Schedule(2, func() { times = append(times, k.Now()) })
	})
	k.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times=%v", times)
	}
}

func TestKernelRunUntil(t *testing.T) {
	var k Kernel
	ran := 0
	k.Schedule(1, func() { ran++ })
	k.Schedule(10, func() { ran++ })
	k.RunUntil(5)
	if ran != 1 || k.Pending() != 1 {
		t.Fatalf("ran=%d pending=%d", ran, k.Pending())
	}
	k.Run()
	if ran != 2 {
		t.Fatal("remaining event lost")
	}
}

func TestKernelCausalityPanics(t *testing.T) {
	var k Kernel
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Schedule(-1, func() {})
}

func TestStationSingleServerFIFO(t *testing.T) {
	s := NewStation("adc", 1)
	st1, e1 := s.Reserve(0, 10)
	if st1 != 0 || e1 != 10 {
		t.Fatalf("first: %g-%g", st1, e1)
	}
	// Ready at 5 but server busy until 10.
	st2, e2 := s.Reserve(5, 10)
	if st2 != 10 || e2 != 20 {
		t.Fatalf("queued: %g-%g", st2, e2)
	}
	// Ready after the server is idle: no queueing.
	st3, _ := s.Reserve(50, 1)
	if st3 != 50 {
		t.Fatalf("idle arrival start=%g", st3)
	}
	if s.Count() != 3 || s.BusyNS() != 21 {
		t.Fatalf("count=%d busy=%g", s.Count(), s.BusyNS())
	}
	if s.LastEnd() != 51 {
		t.Fatalf("lastEnd=%g", s.LastEnd())
	}
}

func TestStationMultiServer(t *testing.T) {
	s := NewStation("mem", 2)
	_, e1 := s.Reserve(0, 10)
	_, e2 := s.Reserve(0, 10)
	if e1 != 10 || e2 != 10 {
		t.Fatal("two servers should run in parallel")
	}
	st3, _ := s.Reserve(0, 10)
	if st3 != 10 {
		t.Fatalf("third transaction start=%g want 10", st3)
	}
	if u := s.Utilization(15); math.Abs(u-1.0) > 1e-12 {
		t.Fatalf("utilization=%g want 1.0 (30 busy over 2x15)", u)
	}
}

func TestStationReset(t *testing.T) {
	s := NewStation("x", 1)
	s.Reserve(0, 5)
	s.Reset()
	if s.Count() != 0 || s.BusyNS() != 0 || s.FreeAt() != 0 || s.LastEnd() != 0 {
		t.Fatal("reset incomplete")
	}
	if s.Name() != "x" {
		t.Fatal("name lost")
	}
}

// Property: a single-server station serializes work — total completion
// equals at least total service, and intervals never overlap.
func TestStationNoOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStation("p", 1)
		type iv struct{ a, b float64 }
		var ivs []iv
		for i := 0; i < 30; i++ {
			ready := rng.Float64() * 100
			svc := rng.Float64() * 10
			a, b := s.Reserve(ready, svc)
			if a < ready || math.Abs((b-a)-svc) > 1e-9 {
				return false
			}
			ivs = append(ivs, iv{a, b})
		}
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].a != ivs[j].a {
				return ivs[i].a < ivs[j].a
			}
			return ivs[i].b < ivs[j].b
		})
		for i := 1; i < len(ivs); i++ {
			if ivs[i].a < ivs[i-1].b-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStationValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 servers")
		}
	}()
	NewStation("bad", 0)
}

func TestUtilizationZeroHorizon(t *testing.T) {
	s := NewStation("z", 1)
	if s.Utilization(0) != 0 {
		t.Fatal("zero horizon should give zero utilization")
	}
}

func BenchmarkKernelScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var k Kernel
		for j := 0; j < 100; j++ {
			k.Schedule(float64(j%10), func() {})
		}
		k.Run()
	}
}
