package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the gob wire format: named parameter tensors with shapes.
type snapshot struct {
	Params []paramBlob
}

type paramBlob struct {
	Name  string
	Shape []int
	Data  []float32
}

// Save writes all trainable parameters to w in gob format. Architectures
// are code, not data: Load restores weights into an identically
// constructed network.
func (n *Network) Save(w io.Writer) error {
	var s snapshot
	for _, p := range n.Params() {
		s.Params = append(s.Params, paramBlob{
			Name:  p.Name,
			Shape: append([]int(nil), p.W.Shape...),
			Data:  append([]float32(nil), p.W.Data...),
		})
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load restores parameters saved by Save into this network. Parameter
// names, order and shapes must match the saved snapshot.
func (n *Network) Load(r io.Reader) error {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("nn: decoding snapshot: %w", err)
	}
	params := n.Params()
	if len(params) != len(s.Params) {
		return fmt.Errorf("nn: snapshot has %d params, network has %d", len(s.Params), len(params))
	}
	for i, p := range params {
		blob := s.Params[i]
		if p.Name != blob.Name {
			return fmt.Errorf("nn: param %d name %q vs snapshot %q", i, p.Name, blob.Name)
		}
		if len(p.W.Data) != len(blob.Data) {
			return fmt.Errorf("nn: param %q size %d vs snapshot %d", p.Name, len(p.W.Data), len(blob.Data))
		}
		for j, d := range blob.Shape {
			if j >= len(p.W.Shape) || p.W.Shape[j] != d {
				return fmt.Errorf("nn: param %q shape %v vs snapshot %v", p.Name, p.W.Shape, blob.Shape)
			}
		}
		copy(p.W.Data, blob.Data)
	}
	return nil
}
