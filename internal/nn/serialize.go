package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// snapshot is the gob wire format: named parameter tensors with shapes.
type snapshot struct {
	Params []paramBlob
}

type paramBlob struct {
	Name  string
	Shape []int
	Data  []float32
}

// Save writes all trainable parameters to w in gob format. Architectures
// are code, not data: Load restores weights into an identically
// constructed network.
func (n *Network) Save(w io.Writer) error {
	var s snapshot
	for _, p := range n.Params() {
		s.Params = append(s.Params, paramBlob{
			Name:  p.Name,
			Shape: append([]int(nil), p.W.Shape...),
			Data:  append([]float32(nil), p.W.Data...),
		})
	}
	return gob.NewEncoder(w).Encode(s)
}

// SaveFile writes the parameter snapshot to path via a temp-file +
// rename in the same directory, so a crash mid-write never leaves a
// truncated weights file behind (the disk-cache convention).
func (n *Network) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".weights-*")
	if err != nil {
		return fmt.Errorf("nn: saving weights: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := n.Save(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("nn: saving weights: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("nn: saving weights: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("nn: saving weights: %w", err)
	}
	return nil
}

// LoadFile restores parameters saved by SaveFile (or Save) from path
// into this identically constructed network.
func (n *Network) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("nn: loading weights: %w", err)
	}
	defer f.Close()
	return n.Load(f)
}

// Load restores parameters saved by Save into this network. Parameter
// names, order and shapes must match the saved snapshot.
func (n *Network) Load(r io.Reader) error {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("nn: decoding snapshot: %w", err)
	}
	params := n.Params()
	if len(params) != len(s.Params) {
		return fmt.Errorf("nn: snapshot has %d params, network has %d", len(s.Params), len(params))
	}
	for i, p := range params {
		blob := s.Params[i]
		if p.Name != blob.Name {
			return fmt.Errorf("nn: param %d name %q vs snapshot %q", i, p.Name, blob.Name)
		}
		if len(p.W.Data) != len(blob.Data) {
			return fmt.Errorf("nn: param %q size %d vs snapshot %d", p.Name, len(p.W.Data), len(blob.Data))
		}
		for j, d := range blob.Shape {
			if j >= len(p.W.Shape) || p.W.Shape[j] != d {
				return fmt.Errorf("nn: param %q shape %v vs snapshot %v", p.Name, p.W.Shape, blob.Shape)
			}
		}
		copy(p.W.Data, blob.Data)
	}
	return nil
}
