package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func trainExamples(n int, rng *rand.Rand) []Example {
	ex := make([]Example, n)
	for i := range ex {
		x := tensor.New(1, 8, 8)
		for j := range x.Data {
			x.Data[j] = float32(rng.NormFloat64() * 0.5)
		}
		ex[i] = Example{X: x, Label: rng.Intn(3)}
	}
	return ex
}

func trainNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return &Network{Layers: []Layer{
		NewConv2D("c1", 1, 4, 3, 1, 1, false, rng),
		&ReLU{},
		&MaxPool2{},
		NewConv2D("dw", 4, 4, 3, 1, 1, true, rng),
		&ReLU{},
		&GlobalAvgPool{},
		NewDense("fc", 4, 3, rng),
	}}
}

// TestTrainParallelWorkerInvariance pins the data-parallel training
// contract: for any worker count the trained weights, momentum state and
// returned loss/accuracy are bit-identical to the workers=1 walk of the
// same sharded all-reduce. Run under -race this also proves replica
// isolation (shared read-only weights, private gradients).
func TestTrainParallelWorkerInvariance(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(9))
	examples := trainExamples(37, rng) // odd count: exercises a ragged final batch
	opt := SGD{LR: 0.05, Momentum: 0.9, Decay: 1e-4}

	ref := trainNet(5)
	refRes, err := ref.TrainParallel(examples, 3, 10, opt, rand.New(rand.NewSource(1)), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		net := trainNet(5)
		res, err := net.TrainParallel(examples, 3, 10, opt, rand.New(rand.NewSource(1)), workers)
		if err != nil {
			t.Fatal(err)
		}
		if res != refRes {
			t.Fatalf("workers=%d result %+v diverged from serial %+v", workers, res, refRes)
		}
		refParams, gotParams := ref.Params(), net.Params()
		for pi, p := range refParams {
			for j := range p.W.Data {
				if math.Float32bits(p.W.Data[j]) != math.Float32bits(gotParams[pi].W.Data[j]) {
					t.Fatalf("workers=%d param %s[%d]: %v vs serial %v",
						workers, p.Name, j, gotParams[pi].W.Data[j], p.W.Data[j])
				}
			}
		}
	}
}

// TestTrainParallelLearns sanity-checks that the sharded trainer still
// optimizes: it must fit the same XOR-like task the serial trainer does.
func TestTrainParallelLearns(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	net := &Network{Layers: []Layer{
		NewDense("h", 2, 8, rng),
		&ReLU{},
		NewDense("o", 8, 2, rng),
	}}
	var ex []Example
	for _, c := range [][3]float32{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		ex = append(ex, Example{X: tensor.FromSlice([]float32{c[0], c[1]}, 2), Label: int(c[2])})
	}
	res, err := net.TrainParallel(ex, 400, 4, SGD{LR: 0.1, Momentum: 0.9}, rng, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainAccuracy < 1.0 {
		t.Fatalf("failed to fit XOR: acc=%.2f loss=%.3f", res.TrainAccuracy, res.FinalLoss)
	}
}

// TestTrainMatchesSerialReference guards the legacy contract: Train is
// untouched by the compute-plane rewrite, so a short run must still
// optimize and report sane aggregates.
func TestTrainParallelEmptyAndTinyBatches(t *testing.T) {
	t.Parallel()
	net := trainNet(3)
	if res, err := net.TrainParallel(nil, 2, 8, SGD{LR: 0.1}, rand.New(rand.NewSource(1)), 4); err != nil || res != (TrainResult{}) {
		t.Fatalf("empty training should be a no-op, got %+v err %v", res, err)
	}
	rng := rand.New(rand.NewSource(2))
	ex := trainExamples(3, rng)
	if _, err := net.TrainParallel(ex, 1, 0, SGD{LR: 0.01}, rng, 2); err != nil {
		t.Fatal(err)
	}
}
