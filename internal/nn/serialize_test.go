package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	src := BuildSmallCNN(4, 8, 77)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := BuildSmallCNN(4, 8, 999) // different init
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 16, 16)
	rng := rand.New(rand.NewSource(1))
	for i := range x.Data {
		x.Data[i] = float32(rng.Float64())
	}
	a := src.Forward(x)
	b := dst.Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("logit %d differs after load: %g vs %g", i, a.Data[i], b.Data[i])
		}
	}
}

func TestSaveLoadFileRoundTrip(t *testing.T) {
	src := BuildSmallCNN(3, 8, 42)
	path := t.TempDir() + "/weights.gob"
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	dst := BuildSmallCNN(3, 8, 7)
	if err := dst.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 16, 16)
	rng := rand.New(rand.NewSource(2))
	for i := range x.Data {
		x.Data[i] = float32(rng.Float64())
	}
	a, b := src.Forward(x), dst.Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("logit %d differs after file round trip", i)
		}
	}
	if err := dst.LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing weights file not reported")
	}
}

func TestLoadRejectsMismatchedArchitecture(t *testing.T) {
	src := BuildSmallCNN(4, 8, 1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := BuildSmallCNN(6, 8, 1) // wider: shapes differ
	if err := other.Load(&buf); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	net := BuildSmallCNN(4, 8, 1)
	if err := net.Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadRejectsRenamedParams(t *testing.T) {
	src := BuildDepthwiseCNN(4, 8, 1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := BuildSmallCNN(4, 8, 1)
	if err := dst.Load(&buf); err == nil {
		t.Fatal("expected param mismatch error")
	}
}
