package nn

import "math/rand"

// BuildSmallCNN constructs the accuracy-study CNN: a compact conv net over
// 1x16x16 inputs whose width scales with `width`, letting the Table V
// experiment emulate models of different sizes (larger width = more
// parameters = more error tolerance, the trend the paper observes between
// small and large CNNs).
//
// Architecture: conv3x3(1->w) relu maxpool2 | conv3x3(w->2w) relu maxpool2
// | conv3x3(2w->4w) relu | gap | dense(4w->classes).
func BuildSmallCNN(width, classes int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return &Network{Layers: []Layer{
		NewConv2D("c1", 1, width, 3, 1, 1, false, rng),
		&ReLU{},
		&MaxPool2{},
		NewConv2D("c2", width, 2*width, 3, 1, 1, false, rng),
		&ReLU{},
		&MaxPool2{},
		NewConv2D("c3", 2*width, 4*width, 3, 1, 1, false, rng),
		&ReLU{},
		&GlobalAvgPool{},
		NewDense("fc", 4*width, classes, rng),
	}}
}

// BuildDepthwiseCNN constructs a MobileNet-flavoured variant using
// depthwise separable convolutions, exercising the depthwise path that
// dominates MobileNet_V2/ShuffleNet_V2 workloads in the paper.
func BuildDepthwiseCNN(width, classes int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return &Network{Layers: []Layer{
		NewConv2D("c1", 1, width, 3, 1, 1, false, rng),
		&ReLU{},
		&MaxPool2{},
		NewConv2D("dw1", width, width, 3, 1, 1, true, rng),
		NewConv2D("pw1", width, 2*width, 1, 1, 0, false, rng),
		&ReLU{},
		&MaxPool2{},
		NewConv2D("dw2", 2*width, 2*width, 3, 1, 1, true, rng),
		NewConv2D("pw2", 2*width, 4*width, 1, 1, 0, false, rng),
		&ReLU{},
		&GlobalAvgPool{},
		NewDense("fc", 4*width, classes, rng),
	}}
}
