package nn_test

// Standard-benchmark wrappers over the shared compute-plane bench bodies
// (internal/nnbench): `go test -bench BenchmarkConvForward ./internal/nn`
// compares the naive and GEMM legs on the fixed trajectory shape, and
// cmd/benchnn runs the same bodies to emit BENCH_nn.json.

import (
	"runtime"
	"testing"

	"repro/internal/nnbench"
)

func BenchmarkConvForward(b *testing.B) {
	b.Run("naive", nnbench.ConvForwardNaive)
	b.Run("gemm", nnbench.ConvForwardGEMM)
}

func BenchmarkConvBackward(b *testing.B) {
	b.Run("gemm", nnbench.ConvBackwardGEMM)
}

func BenchmarkConvForwardSparse(b *testing.B) {
	b.Run("sp=0.5", nnbench.ConvForwardSparse(0.5))
	b.Run("sp=0.9", nnbench.ConvForwardSparse(0.9))
}

func BenchmarkQuantForwardSparse(b *testing.B) {
	b.Run("dense-ref", nnbench.QuantForwardSparseDenseRef(0.9))
	b.Run("sparse", nnbench.QuantForwardSparse(0.9))
}

func BenchmarkDenseForward(b *testing.B) {
	nnbench.DenseForward(b)
}

func BenchmarkTrainStep(b *testing.B) {
	b.Run("workers=1", nnbench.TrainStep(1))
	b.Run("workers=4", nnbench.TrainStep(4))
	b.Run("workers=all", nnbench.TrainStep(runtime.GOMAXPROCS(0)))
}
