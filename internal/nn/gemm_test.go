package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// convCase is one odd-shape configuration of the naive-vs-GEMM
// equivalence suite: padding, strides, 1x1 and 5x5 kernels, depthwise,
// non-square inputs.
type convCase struct {
	name              string
	inC, outC, k      int
	stride, pad, h, w int
	depthwise         bool
}

func convCases() []convCase {
	return []convCase{
		{"3x3-same", 3, 5, 3, 1, 1, 9, 9, false},
		{"3x3-stride2", 2, 4, 3, 2, 1, 11, 7, false},
		{"5x5-pad2", 3, 2, 5, 1, 2, 8, 10, false},
		{"5x5-stride3-pad1", 2, 3, 5, 3, 1, 13, 13, false},
		{"1x1-pointwise", 7, 3, 1, 1, 0, 6, 5, false},
		{"1x1-stride2", 4, 6, 1, 2, 0, 7, 9, false},
		{"k-eq-h-nopad", 3, 4, 4, 1, 0, 4, 6, false},
		{"depthwise-3x3", 5, 5, 3, 1, 1, 8, 8, true},
		{"depthwise-stride2", 3, 3, 3, 2, 1, 9, 11, true},
		{"depthwise-5x5-pad2", 4, 4, 5, 1, 2, 7, 7, true},
	}
}

func buildConv(tc convCase, seed int64) (*Conv2D, *tensor.T) {
	rng := rand.New(rand.NewSource(seed))
	c := NewConv2D("c", tc.inC, tc.outC, tc.k, tc.stride, tc.pad, tc.depthwise, rng)
	for i := range c.Bias.W.Data {
		c.Bias.W.Data[i] = float32(rng.NormFloat64())
	}
	x := tensor.New(tc.inC, tc.h, tc.w)
	for i := range x.Data {
		// Mix exact zeros in (post-ReLU activations are full of them) so
		// the equivalence covers the zero-gradient skip paths.
		if rng.Intn(5) == 0 {
			x.Data[i] = 0
		} else {
			x.Data[i] = float32(rng.NormFloat64())
		}
	}
	return c, x
}

func assertBitsEqual(t *testing.T, what string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s[%d]: %v (bits %08x) vs %v (bits %08x)",
				what, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

// TestConvGEMMForwardBitIdentical pins the compute-plane contract: the
// im2col/GEMM forward reproduces the naive reference bit-for-bit on
// every layer shape, including padded, strided, pointwise and depthwise
// kernels.
func TestConvGEMMForwardBitIdentical(t *testing.T) {
	t.Parallel()
	for i, tc := range convCases() {
		t.Run(tc.name, func(t *testing.T) {
			c, x := buildConv(tc, int64(100+i))
			want := c.ForwardNaive(x)
			got := c.Forward(x)
			if !got.SameShape(want) {
				t.Fatalf("shape %v vs %v", got.Shape, want.Shape)
			}
			assertBitsEqual(t, "out", got.Data, want.Data)
		})
	}
}

// TestConvGEMMBackwardBitIdentical verifies the full gradient contract:
// weight, bias and input gradients of the lowered Backward are
// bit-identical to BackwardNaive, including accumulation on top of
// already-nonzero gradient buffers (mini-batch accumulation) and
// zero-valued upstream gradients (the ReLU mask).
func TestConvGEMMBackwardBitIdentical(t *testing.T) {
	t.Parallel()
	for i, tc := range convCases() {
		t.Run(tc.name, func(t *testing.T) {
			cNaive, x := buildConv(tc, int64(200+i))
			cGemm, _ := buildConv(tc, int64(200+i)) // identical weights (same seed)
			assertBitsEqual(t, "setup-weights", cGemm.Wt.W.Data, cNaive.Wt.W.Data)

			rng := rand.New(rand.NewSource(int64(300 + i)))
			outNaive := cNaive.ForwardNaive(x)
			if out := cGemm.Forward(x); !out.SameShape(outNaive) {
				t.Fatalf("shape %v vs %v", out.Shape, outNaive.Shape)
			}
			grad := tensor.New(outNaive.Shape...)
			for j := range grad.Data {
				if rng.Intn(4) == 0 {
					grad.Data[j] = 0 // exercise the g==0 skip
				} else {
					grad.Data[j] = float32(rng.NormFloat64())
				}
			}
			// Pre-seed the gradient accumulators identically to cover the
			// accumulate-across-examples path.
			for pi, p := range cNaive.Params() {
				for j := range p.Grad.Data {
					v := float32(rng.NormFloat64())
					p.Grad.Data[j] = v
					cGemm.Params()[pi].Grad.Data[j] = v
				}
			}
			dxNaive := cNaive.BackwardNaive(grad)
			dxGemm := cGemm.Backward(grad.Clone())
			assertBitsEqual(t, "dx", dxGemm.Data, dxNaive.Data)
			assertBitsEqual(t, "dW", cGemm.Wt.Grad.Data, cNaive.Wt.Grad.Data)
			assertBitsEqual(t, "dBias", cGemm.Bias.Grad.Data, cNaive.Bias.Grad.Data)
		})
	}
}

// TestDenseGEMMBitIdentical pins the Dense lowering against an inline
// transcription of the reference row-by-row loops.
func TestDenseGEMMBitIdentical(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	for _, shape := range [][2]int{{7, 3}, {64, 10}, {1, 1}, {33, 17}} {
		in, out := shape[0], shape[1]
		t.Run(fmt.Sprintf("%dx%d", in, out), func(t *testing.T) {
			d := NewDense("d", in, out, rng)
			for i := range d.Bias.W.Data {
				d.Bias.W.Data[i] = float32(rng.NormFloat64())
			}
			x := tensor.New(in)
			for i := range x.Data {
				x.Data[i] = float32(rng.NormFloat64())
			}
			want := make([]float32, out)
			for o := 0; o < out; o++ {
				s := d.Bias.W.Data[o]
				row := d.Wt.W.Data[o*in : (o+1)*in]
				for i, v := range x.Data {
					s += row[i] * v
				}
				want[o] = s
			}
			got := d.Forward(x)
			assertBitsEqual(t, "dense", got.Data, want)
		})
	}
}

// TestBackwardAfterForwardNaive covers the scratch-rebuild path: the
// lowered Backward must produce correct gradients even when the patch
// matrix was never gathered because the forward pass ran naive.
func TestBackwardAfterForwardNaive(t *testing.T) {
	t.Parallel()
	tc := convCases()[0]
	cNaive, x := buildConv(tc, 1)
	cGemm, _ := buildConv(tc, 1)
	grad := tensor.New(tc.outC, cNaive.OutSize(tc.h), cNaive.OutSize(tc.w))
	grad.Fill(0.5)
	cNaive.ForwardNaive(x)
	cGemm.ForwardNaive(x) // no im2col happened
	dxNaive := cNaive.BackwardNaive(grad)
	dxGemm := cGemm.Backward(grad)
	assertBitsEqual(t, "dx", dxGemm.Data, dxNaive.Data)
	assertBitsEqual(t, "dW", cGemm.Wt.Grad.Data, cNaive.Wt.Grad.Data)
}
