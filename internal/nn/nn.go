// Package nn is the neural-network substrate of the reproduction: float32
// layers with forward and backward passes and an SGD trainer. The paper
// runs its accuracy study on PyTorch with ImageNet-pretrained CNNs; this
// package replaces that dependency with a pure-Go training stack so the
// Table V experiment can train real models end-to-end (see DESIGN.md,
// "Substitutions").
//
// Layers operate on single examples in CHW layout; training loops over a
// batch accumulating gradients before each optimizer step.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/matmul"
	"repro/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.T
	Grad *tensor.T
	vel  *tensor.T // SGD momentum buffer
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), Grad: tensor.New(shape...), vel: tensor.New(shape...)}
}

// Layer is a differentiable module.
type Layer interface {
	// Forward computes the layer output for input x.
	Forward(x *tensor.T) *tensor.T
	// Backward receives dLoss/dOutput and returns dLoss/dInput,
	// accumulating parameter gradients along the way. It must be called
	// after Forward on the same input.
	Backward(grad *tensor.T) *tensor.T
	// Params returns the layer's trainable parameters (may be empty).
	Params() []*Param
	// Name identifies the layer in summaries.
	Name() string
}

// Conv2D is a 2-D convolution over CHW tensors with square kernels,
// stride and symmetric zero padding. Depthwise convolutions (groups equal
// to channels, as in MobileNet/ShuffleNet) are selected with Depthwise.
//
// Forward and Backward run on the im2col/GEMM compute plane
// (internal/matmul): the input is gathered once into a patch matrix that
// the forward GEMM, the weight-gradient GEMM and the input-gradient
// scatter all share. The lowering keeps the reference summation order,
// so outputs and gradients are bit-identical to ForwardNaive /
// BackwardNaive (asserted by the equivalence tests).
type Conv2D struct {
	InC, OutC, K, Stride, Pad int
	Depthwise                 bool

	Wt   *Param // [OutC, InC(or 1), K, K]
	Bias *Param // [OutC]

	x *tensor.T // saved input

	// im2col scratch, owned by this layer instance: pos is the (shared,
	// immutable) patch geometry of the current input size, cols the patch
	// matrix of the saved input, reused across Forward calls and consumed
	// by Backward. Layer instances are single-goroutine by contract;
	// data-parallel training clones per-worker replicas (see
	// TrainParallel) so scratch is never shared.
	pos   *matmul.Pos
	cols  []float32
	colsX *tensor.T // input the patch matrix was gathered from
	scols *matmul.SparseCols
}

// NewConv2D constructs a convolution with He-normal initialized weights.
func NewConv2D(name string, inC, outC, k, stride, pad int, depthwise bool, rng *rand.Rand) *Conv2D {
	wc := inC
	if depthwise {
		if inC != outC {
			panic(fmt.Sprintf("nn: depthwise conv needs inC==outC, got %d/%d", inC, outC))
		}
		wc = 1
	}
	c := &Conv2D{InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad, Depthwise: depthwise}
	c.Wt = newParam(name+".w", outC, wc, k, k)
	c.Bias = newParam(name+".b", outC)
	fanIn := float64(wc * k * k)
	c.Wt.W.RandNormal(rng, math.Sqrt(2/fanIn))
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	if c.Depthwise {
		return fmt.Sprintf("dwconv%dx%d", c.K, c.K)
	}
	return fmt.Sprintf("conv%dx%d", c.K, c.K)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Wt, c.Bias} }

// OutSize returns the spatial output size for input size h.
func (c *Conv2D) OutSize(h int) int { return (h+2*c.Pad-c.K)/c.Stride + 1 }

// Forward implements Layer via the im2col/GEMM lowering: the input is
// gathered once into a patch matrix (reused by Backward), then one
// blocked GEMM produces all output channels. Bit-identical to
// ForwardNaive — the GEMM accumulates from the bias with one partial sum
// per input channel, the reference order.
//
// Inputs whose zero fraction reaches matmul.SparseThreshold instead run
// the column-compacted kernels, which are bit-identical to the dense
// GEMM by the signed-zero argument on matmul.ConvForwardSparse — so the
// gate is a pure performance decision, invisible in the output. The
// sparse path leaves no dense patch matrix behind; Backward's
// ensureCols regathers it on demand.
func (c *Conv2D) Forward(x *tensor.T) *tensor.T {
	c.x = x
	h, w := x.Shape[1], x.Shape[2]
	if c.pos == nil || c.pos.H != h || c.pos.W != w {
		c.pos = matmul.Positions(h, w, c.K, c.Stride, c.Pad)
	}
	npix := c.pos.NumPix()
	out := tensor.New(c.OutC, c.pos.OutH, c.pos.OutW)
	k2 := c.K * c.K
	if x.Sparsity() >= matmul.SparseThreshold {
		c.scols = c.pos.Im2colSparse(c.scols, x.Data, c.InC)
		c.colsX = nil // dense patch matrix not gathered for this input
		if c.Depthwise {
			matmul.DepthwiseForwardSparse(out.Data, c.Wt.W.Data, c.scols, c.InC, npix, k2, c.Bias.W.Data)
		} else {
			matmul.ConvForwardSparse(out.Data, c.Wt.W.Data, c.scols, c.OutC, npix, k2, c.Bias.W.Data)
		}
		return out
	}
	c.cols = c.pos.Im2col(c.cols, x.Data, c.InC)
	c.colsX = x
	if c.Depthwise {
		matmul.DepthwiseForward(out.Data, c.Wt.W.Data, c.cols, c.InC, npix, k2, c.Bias.W.Data)
	} else {
		matmul.ConvForward(out.Data, c.Wt.W.Data, c.cols, c.OutC, npix, c.InC*k2, k2, c.Bias.W.Data)
	}
	return out
}

// ForwardNaive is the reference per-output-pixel implementation the GEMM
// path is verified against (equivalence tests and the naive leg of
// BenchmarkConvForward). It is the seed implementation, kept verbatim.
func (c *Conv2D) ForwardNaive(x *tensor.T) *tensor.T {
	c.x = x
	h, w := x.Shape[1], x.Shape[2]
	oh, ow := c.OutSize(h), c.OutSize(w)
	out := tensor.New(c.OutC, oh, ow)
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := c.Bias.W.Data[oc]
				if c.Depthwise {
					sum += c.corrOne(x, oc, 0, oy, ox, oc)
				} else {
					for ic := 0; ic < c.InC; ic++ {
						sum += c.corrOne(x, oc, ic, oy, ox, ic)
					}
				}
				out.Set(sum, oc, oy, ox)
			}
		}
	}
	return out
}

// corrOne correlates kernel (oc, wc) against input channel ic at output
// position (oy, ox).
func (c *Conv2D) corrOne(x *tensor.T, oc, wc, oy, ox, ic int) float32 {
	h, w := x.Shape[1], x.Shape[2]
	var sum float32
	for ky := 0; ky < c.K; ky++ {
		iy := oy*c.Stride + ky - c.Pad
		if iy < 0 || iy >= h {
			continue
		}
		for kx := 0; kx < c.K; kx++ {
			ix := ox*c.Stride + kx - c.Pad
			if ix < 0 || ix >= w {
				continue
			}
			sum += c.Wt.W.At(oc, wc, ky, kx) * x.At(ic, iy, ix)
		}
	}
	return sum
}

// ensureCols (re)gathers the patch matrix of the saved input. Forward
// already did this for the common path; the rebuild covers Backward
// after ForwardNaive, which saves x without lowering it.
func (c *Conv2D) ensureCols() {
	if c.colsX == c.x && c.pos != nil {
		return
	}
	h, w := c.x.Shape[1], c.x.Shape[2]
	c.pos = matmul.Positions(h, w, c.K, c.Stride, c.Pad)
	c.cols = c.pos.Im2col(c.cols, c.x.Data, c.InC)
	c.colsX = c.x
}

// Backward implements Layer on the shared patch matrix: the bias and
// weight gradients accumulate as a GEMM against the Forward im2col (one
// axpy per nonzero (channel, pixel) gradient, applied in pixel order),
// and the input gradient scatters through the same position lists in the
// reference (oc, pixel, ic, ky, kx) order. Per-element accumulation
// order — and therefore every gradient bit — matches BackwardNaive.
func (c *Conv2D) Backward(grad *tensor.T) *tensor.T {
	c.ensureCols()
	x := c.x
	h, w := x.Shape[1], x.Shape[2]
	hw := h * w
	npix := grad.Shape[1] * grad.Shape[2]
	k2 := c.K * c.K
	rowLen := c.Wt.W.Shape[1] * k2 // InC*K*K, or K*K when depthwise
	colLen := c.InC * k2
	dx := tensor.New(x.Shape...)
	for oc := 0; oc < c.OutC; oc++ {
		grow := grad.Data[oc*npix : (oc+1)*npix]
		wrow := c.Wt.W.Data[oc*rowLen : (oc+1)*rowLen]
		wgrow := c.Wt.Grad.Data[oc*rowLen : (oc+1)*rowLen]
		bg := c.Bias.Grad.Data[oc]
		for pix, g := range grow {
			if g == 0 {
				continue
			}
			bg += g
			colrow := c.cols[pix*colLen : (pix+1)*colLen]
			offs, kks := c.pos.At(pix)
			if c.Depthwise {
				matmul.Axpy(wgrow, g, colrow[oc*k2:(oc+1)*k2])
				dst := dx.Data[oc*hw : (oc+1)*hw]
				for i, o := range offs {
					dst[o] += g * wrow[kks[i]]
				}
				continue
			}
			matmul.Axpy(wgrow, g, colrow)
			for ic := 0; ic < c.InC; ic++ {
				dst := dx.Data[ic*hw : (ic+1)*hw]
				wseg := wrow[ic*k2:]
				for i, o := range offs {
					dst[o] += g * wseg[kks[i]]
				}
			}
		}
		c.Bias.Grad.Data[oc] = bg
	}
	return dx
}

// BackwardNaive is the reference gradient implementation Backward is
// verified against (the seed implementation, kept verbatim). It reads
// only the input saved by Forward/ForwardNaive.
func (c *Conv2D) BackwardNaive(grad *tensor.T) *tensor.T {
	x := c.x
	h, w := x.Shape[1], x.Shape[2]
	oh, ow := grad.Shape[1], grad.Shape[2]
	dx := tensor.New(x.Shape...)
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := grad.At(oc, oy, ox)
				if g == 0 {
					continue
				}
				c.Bias.Grad.Data[oc] += g
				ics := []int{oc}
				if !c.Depthwise {
					ics = ics[:0]
					for ic := 0; ic < c.InC; ic++ {
						ics = append(ics, ic)
					}
				}
				for wi, ic := range ics {
					wc := wi
					if c.Depthwise {
						wc = 0
					}
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride + ky - c.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride + kx - c.Pad
							if ix < 0 || ix >= w {
								continue
							}
							c.Wt.Grad.Data[c.Wt.Grad.Idx4(oc, wc, ky, kx)] += g * x.AtFlat(x.Idx3(ic, iy, ix))
							dx.Data[dx.Idx3(ic, iy, ix)] += g * c.Wt.W.AtFlat(c.Wt.W.Idx4(oc, wc, ky, kx))
						}
					}
				}
			}
		}
	}
	return dx
}

// ReLU is the rectified linear activation.
type ReLU struct{ mask []bool }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.T) *tensor.T {
	out := x.Clone()
	r.mask = make([]bool, len(x.Data))
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.T) *tensor.T {
	dx := grad.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// MaxPool2 is a 2x2, stride-2 max pool over CHW tensors.
type MaxPool2 struct {
	argmax []int
	inShp  []int
}

// Name implements Layer.
func (m *MaxPool2) Name() string { return "maxpool2" }

// Params implements Layer.
func (m *MaxPool2) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MaxPool2) Forward(x *tensor.T) *tensor.T {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := h/2, w/2
	out := tensor.New(c, oh, ow)
	m.argmax = make([]int, c*oh*ow)
	m.inShp = x.Shape
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				bi := -1
				var bv float32 = -math.MaxFloat32
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := (ch*h+oy*2+dy)*w + ox*2 + dx
						if x.Data[idx] > bv {
							bv = x.Data[idx]
							bi = idx
						}
					}
				}
				out.Set(bv, ch, oy, ox)
				m.argmax[(ch*oh+oy)*ow+ox] = bi
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2) Backward(grad *tensor.T) *tensor.T {
	dx := tensor.New(m.inShp...)
	for i, src := range m.argmax {
		dx.Data[src] += grad.Data[i]
	}
	return dx
}

// GlobalAvgPool reduces each channel to its spatial mean, yielding a
// 1-D tensor of length C.
type GlobalAvgPool struct{ inShp []int }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return "gap" }

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.T) *tensor.T {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	g.inShp = x.Shape
	out := tensor.New(c)
	for ch := 0; ch < c; ch++ {
		var s float32
		for i := 0; i < h*w; i++ {
			s += x.Data[ch*h*w+i]
		}
		out.Data[ch] = s / float32(h*w)
	}
	return out
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(grad *tensor.T) *tensor.T {
	c, h, w := g.inShp[0], g.inShp[1], g.inShp[2]
	dx := tensor.New(g.inShp...)
	for ch := 0; ch < c; ch++ {
		gv := grad.Data[ch] / float32(h*w)
		for i := 0; i < h*w; i++ {
			dx.Data[ch*h*w+i] = gv
		}
	}
	return dx
}

// Flatten reshapes any tensor to 1-D.
type Flatten struct{ inShp []int }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.T) *tensor.T {
	f.inShp = x.Shape
	return x.Reshape(x.Len())
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.T) *tensor.T { return grad.Reshape(f.inShp...) }

// Dense is a fully-connected layer over 1-D tensors.
type Dense struct {
	In, Out int
	Wt      *Param // [Out, In]
	Bias    *Param // [Out]
	x       *tensor.T
}

// NewDense constructs a fully-connected layer with He initialization.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out}
	d.Wt = newParam(name+".w", out, in)
	d.Bias = newParam(name+".b", out)
	d.Wt.W.RandNormal(rng, math.Sqrt(2/float64(in)))
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return "dense" }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Wt, d.Bias} }

// Forward implements Layer as the one-column GEMM out = W*x + b with
// flat k-order accumulation from the bias — bit-identical to the
// reference row-by-row loops.
func (d *Dense) Forward(x *tensor.T) *tensor.T {
	d.x = x
	out := tensor.New(d.Out)
	matmul.ConvForward(out.Data, d.Wt.W.Data, x.Data, d.Out, 1, d.In, 1, d.Bias.W.Data)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.T) *tensor.T {
	dx := tensor.New(d.In)
	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		d.Bias.Grad.Data[o] += g
		row := d.Wt.W.Data[o*d.In : (o+1)*d.In]
		grow := d.Wt.Grad.Data[o*d.In : (o+1)*d.In]
		for i, v := range d.x.Data {
			grow[i] += g * v
			dx.Data[i] += g * row[i]
		}
	}
	return dx
}
