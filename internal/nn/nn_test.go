package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numericalGrad estimates dLoss/dTheta for parameter element (p, i) by
// central differences, where loss is evaluated by f.
func numericalGrad(f func() float64, w *tensor.T, i int) float64 {
	const eps = 1e-3
	orig := w.Data[i]
	w.Data[i] = orig + eps
	lp := f()
	w.Data[i] = orig - eps
	lm := f()
	w.Data[i] = orig
	return (lp - lm) / (2 * eps)
}

// checkLayerGradients verifies analytic parameter and input gradients of a
// small network against central differences.
func checkLayerGradients(t *testing.T, net *Network, x *tensor.T, label int, tol float64) {
	t.Helper()
	loss := func() float64 {
		l, _ := LossAndGrad(net.Forward(x), label)
		return l
	}
	// Analytic gradients.
	for _, p := range net.Params() {
		p.Grad.Zero()
	}
	l0, g := LossAndGrad(net.Forward(x), label)
	if math.IsNaN(l0) {
		t.Fatal("NaN loss")
	}
	dx := g
	for i := len(net.Layers) - 1; i >= 0; i-- {
		dx = net.Layers[i].Backward(dx)
	}
	for _, p := range net.Params() {
		step := p.W.Len() / 5
		if step == 0 {
			step = 1
		}
		for i := 0; i < p.W.Len(); i += step {
			want := numericalGrad(loss, p.W, i)
			got := float64(p.Grad.Data[i])
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("param %s[%d]: analytic %.5f vs numeric %.5f", p.Name, i, got, want)
			}
		}
	}
	// Input gradient.
	step := x.Len() / 7
	if step == 0 {
		step = 1
	}
	for i := 0; i < x.Len(); i += step {
		want := numericalGrad(loss, x, i)
		got := float64(dx.Data[i])
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("input[%d]: analytic %.5f vs numeric %.5f", i, got, want)
		}
	}
}

func randInput(rng *rand.Rand, shape ...int) *tensor.T {
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64() * 0.5)
	}
	return x
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := &Network{Layers: []Layer{
		NewConv2D("c", 2, 3, 3, 1, 1, false, rng),
		&Flatten{},
		NewDense("fc", 3*6*6, 4, rng),
	}}
	checkLayerGradients(t, net, randInput(rng, 2, 6, 6), 2, 2e-2)
}

func TestConv2DStrideGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := &Network{Layers: []Layer{
		NewConv2D("c", 1, 2, 3, 2, 1, false, rng),
		&Flatten{},
		NewDense("fc", 2*4*4, 3, rng),
	}}
	checkLayerGradients(t, net, randInput(rng, 1, 8, 8), 1, 2e-2)
}

func TestDepthwiseConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := &Network{Layers: []Layer{
		NewConv2D("dw", 3, 3, 3, 1, 1, true, rng),
		&Flatten{},
		NewDense("fc", 3*5*5, 3, rng),
	}}
	checkLayerGradients(t, net, randInput(rng, 3, 5, 5), 0, 2e-2)
}

func TestPoolAndGapGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := &Network{Layers: []Layer{
		NewConv2D("c", 1, 4, 3, 1, 1, false, rng),
		&ReLU{},
		&MaxPool2{},
		&GlobalAvgPool{},
		NewDense("fc", 4, 3, rng),
	}}
	checkLayerGradients(t, net, randInput(rng, 1, 8, 8), 2, 2e-2)
}

func TestDepthwiseRequiresEqualChannels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConv2D("bad", 3, 6, 3, 1, 1, true, rand.New(rand.NewSource(1)))
}

func TestConvOutSize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewConv2D("c", 1, 1, 3, 1, 1, false, rng)
	if c.OutSize(16) != 16 {
		t.Fatal("same-pad 3x3 stride 1 should preserve size")
	}
	c2 := NewConv2D("c2", 1, 1, 3, 2, 1, false, rng)
	if c2.OutSize(16) != 8 {
		t.Fatalf("stride-2 OutSize=%d want 8", c2.OutSize(16))
	}
}

func TestSoftmaxProperties(t *testing.T) {
	logits := tensor.FromSlice([]float32{1, 2, 3, 4}, 4)
	p := Softmax(logits)
	var sum float64
	for i := 1; i < len(p); i++ {
		if p[i] <= p[i-1] {
			t.Fatal("softmax must preserve order")
		}
	}
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax sums to %g", sum)
	}
	// Numerical stability for large logits.
	big := tensor.FromSlice([]float32{1000, 1001}, 2)
	pb := Softmax(big)
	if math.IsNaN(pb[0]) || math.IsNaN(pb[1]) {
		t.Fatal("softmax overflowed")
	}
}

func TestLossAndGradSigns(t *testing.T) {
	logits := tensor.FromSlice([]float32{0, 0, 0}, 3)
	loss, grad := LossAndGrad(logits, 1)
	if math.Abs(loss-math.Log(3)) > 1e-6 {
		t.Fatalf("uniform loss=%g want ln3", loss)
	}
	if grad.Data[1] >= 0 {
		t.Fatal("true-class gradient must be negative")
	}
	if grad.Data[0] <= 0 || grad.Data[2] <= 0 {
		t.Fatal("other-class gradients must be positive")
	}
}

func TestSGDStepMovesAgainstGradient(t *testing.T) {
	p := newParam("w", 2)
	p.W.Data[0] = 1
	p.Grad.Data[0] = 1 // positive gradient -> weight must decrease
	SGD{LR: 0.1}.Step([]*Param{p}, 1)
	if p.W.Data[0] >= 1 {
		t.Fatal("SGD moved with the gradient")
	}
	if p.Grad.Data[0] != 0 {
		t.Fatal("gradients must be zeroed after step")
	}
}

func TestTrainLearnsXORLikeTask(t *testing.T) {
	// A tiny dense net must fit a linearly-inseparable 2-D task.
	rng := rand.New(rand.NewSource(7))
	net := &Network{Layers: []Layer{
		NewDense("h", 2, 8, rng),
		&ReLU{},
		NewDense("o", 8, 2, rng),
	}}
	var ex []Example
	for _, c := range [][3]float32{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		ex = append(ex, Example{X: tensor.FromSlice([]float32{c[0], c[1]}, 2), Label: int(c[2])})
	}
	res := net.Train(ex, 400, 4, SGD{LR: 0.1, Momentum: 0.9}, rng)
	if res.TrainAccuracy < 1.0 {
		t.Fatalf("failed to fit XOR: acc=%.2f loss=%.3f", res.TrainAccuracy, res.FinalLoss)
	}
}

func TestEvaluateTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := &Network{Layers: []Layer{NewDense("o", 2, 4, rng)}}
	ex := []Example{{X: tensor.FromSlice([]float32{1, -1}, 2), Label: 0}}
	top1, top4 := net.Evaluate(ex, 4)
	if top4 != 1.0 {
		t.Fatalf("top-4 of 4 classes must be 1, got %g", top4)
	}
	if top1 < 0 || top1 > 1 {
		t.Fatal("top1 out of range")
	}
	if t1, tk := (&Network{}).Evaluate(nil, 5); t1 != 0 || tk != 0 {
		t.Fatal("empty evaluate should be 0")
	}
}

func TestInTopK(t *testing.T) {
	logits := []float32{0.1, 0.9, 0.5, 0.3}
	if !inTopK(logits, 1, 1) {
		t.Fatal("label 1 is the argmax")
	}
	if inTopK(logits, 0, 2) {
		t.Fatal("label 0 is rank 4")
	}
	if !inTopK(logits, 2, 2) {
		t.Fatal("label 2 is rank 2")
	}
}

func TestBuildersProduceWorkingNets(t *testing.T) {
	for _, b := range []struct {
		name string
		net  *Network
	}{
		{"small", BuildSmallCNN(4, 8, 1)},
		{"depthwise", BuildDepthwiseCNN(4, 8, 1)},
	} {
		x := tensor.New(1, 16, 16)
		out := b.net.Forward(x)
		if out.Len() != 8 {
			t.Fatalf("%s: output len %d want 8", b.name, out.Len())
		}
		if b.net.NumParams() == 0 {
			t.Fatalf("%s: no parameters", b.name)
		}
		if b.net.Summary() == "" {
			t.Fatalf("%s: empty summary", b.name)
		}
	}
}

func BenchmarkSmallCNNForward(b *testing.B) {
	net := BuildSmallCNN(8, 8, 1)
	x := tensor.New(1, 16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}
