package nn

import (
	"math/rand"
	"testing"

	"repro/internal/matmul"
	"repro/internal/tensor"
)

// sparseConvInput fills an input with N(0,1) values, zeroing each
// element independently with probability sparsity.
func sparseConvInput(rng *rand.Rand, sparsity float64, inC, h, w int) *tensor.T {
	x := tensor.New(inC, h, w)
	for i := range x.Data {
		if rng.Float64() >= sparsity {
			x.Data[i] = float32(rng.NormFloat64())
		}
	}
	return x
}

// TestConvSparseForwardBitIdentical pins the float sparse gate: across
// the odd-shape suite and input sparsities {0, 0.5, 0.9, 1.0} — some
// below the threshold (dense path), some above (compacted path) —
// Forward stays bit-identical to the naive reference.
func TestConvSparseForwardBitIdentical(t *testing.T) {
	t.Parallel()
	for i, tc := range convCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c, _ := buildConv(tc, int64(400+i))
			rng := rand.New(rand.NewSource(int64(500 + i)))
			for _, sp := range []float64{0, 0.5, 0.9, 1.0} {
				x := sparseConvInput(rng, sp, tc.inC, tc.h, tc.w)
				want := c.ForwardNaive(x)
				got := c.Forward(x)
				if !got.SameShape(want) {
					t.Fatalf("sp=%.1f: shape %v vs %v", sp, got.Shape, want.Shape)
				}
				assertBitsEqual(t, "out", got.Data, want.Data)
			}
		})
	}
}

// TestConvSparseGateEngages pins that the gate actually routes: a
// 90%-sparse input must take the compacted path (colsX left nil), a
// dense input must not.
func TestConvSparseGateEngages(t *testing.T) {
	t.Parallel()
	tc := convCases()[0]
	c, _ := buildConv(tc, 3)
	rng := rand.New(rand.NewSource(4))

	xs := sparseConvInput(rng, 0.9, tc.inC, tc.h, tc.w)
	if xs.Sparsity() < matmul.SparseThreshold {
		t.Fatalf("fixture not sparse enough: %v", xs.Sparsity())
	}
	c.Forward(xs)
	if c.colsX != nil {
		t.Fatal("sparse input gathered a dense patch matrix: gate did not fire")
	}
	if c.scols == nil || c.scols.NNZ() == 0 {
		t.Fatal("sparse input left no compacted structure")
	}

	xd := sparseConvInput(rng, 0, tc.inC, tc.h, tc.w)
	c.Forward(xd)
	if c.colsX != xd {
		t.Fatal("dense input did not take the dense path")
	}
}

// TestConvBackwardAfterSparseForward covers training through the sparse
// gate: Backward after a sparse-gated Forward must regather the dense
// patch matrix on demand and produce gradients bit-identical to the
// naive reference.
func TestConvBackwardAfterSparseForward(t *testing.T) {
	t.Parallel()
	for i, tc := range convCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cNaive, _ := buildConv(tc, int64(600+i))
			cSparse, _ := buildConv(tc, int64(600+i)) // identical weights
			rng := rand.New(rand.NewSource(int64(700 + i)))
			x := sparseConvInput(rng, 0.9, tc.inC, tc.h, tc.w)
			if x.Sparsity() < matmul.SparseThreshold {
				t.Fatalf("fixture not sparse enough: %v", x.Sparsity())
			}
			cNaive.ForwardNaive(x)
			cSparse.Forward(x) // compacted path: no dense patch matrix
			grad := tensor.New(tc.outC, cNaive.OutSize(tc.h), cNaive.OutSize(tc.w))
			for j := range grad.Data {
				grad.Data[j] = float32(rng.NormFloat64())
			}
			dxNaive := cNaive.BackwardNaive(grad)
			dxSparse := cSparse.Backward(grad.Clone())
			assertBitsEqual(t, "dx", dxSparse.Data, dxNaive.Data)
			assertBitsEqual(t, "dW", cSparse.Wt.Grad.Data, cNaive.Wt.Grad.Data)
			assertBitsEqual(t, "dBias", cSparse.Bias.Grad.Data, cNaive.Bias.Grad.Data)
		})
	}
}
