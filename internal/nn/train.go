package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TrainShardSize is the number of examples of one gradient shard in
// TrainParallel. Like quant.EvalShardSize it is a fixed property of the
// computation, not of the machine: the shard partition of every
// minibatch — and with it the gradient all-reduce order — is identical
// on every host and at every worker count, which is what makes
// data-parallel training bit-identical to its workers=1 walk.
const TrainShardSize = 4

// workerCloneable is implemented by layers that can produce a
// data-parallel training replica of themselves.
type workerCloneable interface {
	cloneForWorker() Layer
}

// cloneForWorker returns a replica Param sharing this parameter's weight
// tensor (read-only during gradient computation; the optimizer steps
// only the master) with a private gradient accumulator.
func (p *Param) cloneForWorker() *Param {
	return &Param{Name: p.Name, W: p.W, Grad: tensor.New(p.W.Shape...)}
}

func (c *Conv2D) cloneForWorker() Layer {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad,
		Depthwise: c.Depthwise,
		Wt:        c.Wt.cloneForWorker(),
		Bias:      c.Bias.cloneForWorker(),
	}
}

func (d *Dense) cloneForWorker() Layer {
	return &Dense{
		In: d.In, Out: d.Out,
		Wt:   d.Wt.cloneForWorker(),
		Bias: d.Bias.cloneForWorker(),
	}
}

func (r *ReLU) cloneForWorker() Layer          { return &ReLU{} }
func (m *MaxPool2) cloneForWorker() Layer      { return &MaxPool2{} }
func (g *GlobalAvgPool) cloneForWorker() Layer { return &GlobalAvgPool{} }
func (f *Flatten) cloneForWorker() Layer       { return &Flatten{} }

// cloneForWorker builds a training replica of the network: weights are
// shared with the master (workers only read them; the barrier before
// SGD.Step guarantees no reader is live while the master writes),
// gradients and per-layer forward state are private.
func (n *Network) cloneForWorker() (*Network, error) {
	c := &Network{Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		wc, ok := l.(workerCloneable)
		if !ok {
			return nil, fmt.Errorf("nn: layer %d (%T) does not support data-parallel training", i, l)
		}
		c.Layers[i] = wc.cloneForWorker()
	}
	return c, nil
}

// TrainParallel runs epochs of mini-batch SGD like Train, fanning each
// minibatch's gradient computation across data-parallel workers: the
// batch is partitioned into fixed TrainShardSize example shards, each
// shard's forward/backward runs on a private network replica (shared
// weights, private gradients), and the shard gradients all-reduce into
// the master in shard-index order before the optimizer step.
//
// The shard partition, per-shard accumulation order and reduce order
// depend only on (examples, batch) — never on workers or goroutine
// scheduling — so the trained weights and the returned result are
// bit-identical for every worker count (workers <= 0 selects
// GOMAXPROCS). The serial reference of that contract is workers=1; it
// differs from Train only in gradient summation order (per-shard partial
// sums instead of one flat walk), which reassociates float rounding,
// so the two trainers converge equivalently but not bit-identically.
// Deterministic given rng.
func (n *Network) TrainParallel(examples []Example, epochs, batch int, opt SGD, rng *rand.Rand, workers int) (TrainResult, error) {
	if batch < 1 {
		batch = 1
	}
	if len(examples) == 0 {
		return TrainResult{}, nil
	}
	maxShards := (min(batch, len(examples)) + TrainShardSize - 1) / TrainShardSize
	reps := make([]*Network, maxShards)
	repParams := make([][]*Param, maxShards)
	for s := range reps {
		rep, err := n.cloneForWorker()
		if err != nil {
			return TrainResult{}, err
		}
		reps[s] = rep
		repParams[s] = rep.Params()
	}
	masterParams := n.Params()
	shardLoss := make([]float64, maxShards)
	shardHits := make([]int, maxShards)

	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	var res TrainResult
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var lossSum float64
		correct := 0
		for b := 0; b < len(idx); b += batch {
			end := min(b+batch, len(idx))
			spans := parallel.Spans(end-b, TrainShardSize)
			if err := parallel.ForEach(workers, len(spans), func(s int) error {
				rep := reps[s]
				for _, p := range repParams[s] {
					p.Grad.Zero()
				}
				var loss float64
				hits := 0
				for _, i := range idx[b+spans[s].Lo : b+spans[s].Hi] {
					ex := examples[i]
					logits := rep.Forward(ex.X)
					if logits.ArgMax() == ex.Label {
						hits++
					}
					l, grad := LossAndGrad(logits, ex.Label)
					loss += l
					rep.Backward(grad)
				}
				shardLoss[s], shardHits[s] = loss, hits
				return nil
			}); err != nil {
				return TrainResult{}, err
			}
			// Index-ordered all-reduce: shard partials merge into the
			// master in shard order, element order within each tensor —
			// the same walk at every worker count.
			for s := range spans {
				for pi, p := range masterParams {
					p.Grad.AXPY(1, repParams[s][pi].Grad)
				}
				lossSum += shardLoss[s]
				correct += shardHits[s]
			}
			opt.Step(masterParams, end-b)
		}
		res.FinalLoss = lossSum / float64(len(idx))
		res.TrainAccuracy = float64(correct) / float64(len(idx))
	}
	return res, nil
}
