package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Network is a sequential stack of layers with a softmax cross-entropy
// head.
type Network struct {
	Layers []Layer
}

// Forward runs the stack and returns the logits.
func (n *Network) Forward(x *tensor.T) *tensor.T {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Params returns all trainable parameters.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total trainable scalar count.
func (n *Network) NumParams() int {
	t := 0
	for _, p := range n.Params() {
		t += p.W.Len()
	}
	return t
}

// Softmax returns the softmax of logits.
func Softmax(logits *tensor.T) []float64 {
	maxv := float64(logits.Data[logits.ArgMax()])
	exp := make([]float64, logits.Len())
	var sum float64
	for i, v := range logits.Data {
		exp[i] = math.Exp(float64(v) - maxv)
		sum += exp[i]
	}
	for i := range exp {
		exp[i] /= sum
	}
	return exp
}

// LossAndGrad computes softmax cross-entropy loss against the label and
// the gradient with respect to the logits.
func LossAndGrad(logits *tensor.T, label int) (float64, *tensor.T) {
	p := Softmax(logits)
	loss := -math.Log(math.Max(p[label], 1e-12))
	grad := tensor.New(logits.Shape...)
	for i := range p {
		grad.Data[i] = float32(p[i])
	}
	grad.Data[label] -= 1
	return loss, grad
}

// Backward propagates dLoss/dLogits through the stack.
func (n *Network) Backward(grad *tensor.T) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// SGD is a momentum SGD optimizer.
type SGD struct {
	LR       float64
	Momentum float64
	Decay    float64 // L2 weight decay
}

// Step applies accumulated gradients (scaled by 1/batch) and zeroes them.
func (s SGD) Step(params []*Param, batch int) {
	inv := float32(1 / float64(batch))
	for _, p := range params {
		for i := range p.W.Data {
			g := p.Grad.Data[i]*inv + float32(s.Decay)*p.W.Data[i]
			p.vel.Data[i] = float32(s.Momentum)*p.vel.Data[i] - float32(s.LR)*g
			p.W.Data[i] += p.vel.Data[i]
			p.Grad.Data[i] = 0
		}
	}
}

// Example is one labelled training example.
type Example struct {
	X     *tensor.T
	Label int
}

// TrainResult summarizes a training run.
type TrainResult struct {
	FinalLoss     float64
	TrainAccuracy float64
}

// Train runs epochs of mini-batch SGD over the examples and returns the
// final-epoch mean loss and training accuracy. Deterministic given rng.
func (n *Network) Train(examples []Example, epochs, batch int, opt SGD, rng *rand.Rand) TrainResult {
	if batch < 1 {
		batch = 1
	}
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	var res TrainResult
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var lossSum float64
		correct := 0
		for b := 0; b < len(idx); b += batch {
			end := b + batch
			if end > len(idx) {
				end = len(idx)
			}
			for _, i := range idx[b:end] {
				ex := examples[i]
				logits := n.Forward(ex.X)
				if logits.ArgMax() == ex.Label {
					correct++
				}
				loss, grad := LossAndGrad(logits, ex.Label)
				lossSum += loss
				n.Backward(grad)
			}
			opt.Step(n.Params(), end-b)
		}
		res.FinalLoss = lossSum / float64(len(idx))
		res.TrainAccuracy = float64(correct) / float64(len(idx))
	}
	return res
}

// Evaluate returns top-1 and top-k accuracy over the examples.
func (n *Network) Evaluate(examples []Example, k int) (top1, topk float64) {
	if len(examples) == 0 {
		return 0, 0
	}
	c1, ck := 0, 0
	for _, ex := range examples {
		logits := n.Forward(ex.X)
		if logits.ArgMax() == ex.Label {
			c1++
		}
		if inTopK(logits.Data, ex.Label, k) {
			ck++
		}
	}
	return float64(c1) / float64(len(examples)), float64(ck) / float64(len(examples))
}

// inTopK reports whether label is among the k largest logits.
func inTopK(logits []float32, label, k int) bool {
	lv := logits[label]
	higher := 0
	for i, v := range logits {
		if i != label && v > lv {
			higher++
		}
	}
	return higher < k
}

// Summary renders a one-line-per-layer description.
func (n *Network) Summary() string {
	s := ""
	for i, l := range n.Layers {
		s += fmt.Sprintf("%2d: %s\n", i, l.Name())
	}
	return s + fmt.Sprintf("params: %d", n.NumParams())
}
