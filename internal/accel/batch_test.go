package accel

import (
	"testing"

	"repro/internal/models"
)

// Ablation A4: batching amortizes weight-stationary reloads. The analog
// accelerators, whose reloads carry microsecond thermal settling, gain far
// more throughput from batching than SCONNA, whose reloads are
// LUT-rewrite cheap. This quantifies how much of the paper's batch-1 gap
// is reload-bound.
func TestBatchAmortizesAnalogReloads(t *testing.T) {
	m := models.ResNet50()

	run := func(cfg Config, batch int) float64 {
		cfg.Batch = batch
		r, err := Simulate(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		return r.FPS
	}

	mam1 := run(MAM(), 1)
	mam32 := run(MAM(), 32)
	sc1 := run(Sconna(), 1)
	sc32 := run(Sconna(), 32)

	mamSpeedup := mam32 / mam1
	scSpeedup := sc32 / sc1
	if mamSpeedup < 4 {
		t.Fatalf("MAM batch-32 speedup %.1fx too small for a reload-bound design", mamSpeedup)
	}
	if scSpeedup > mamSpeedup/2 {
		t.Fatalf("SCONNA speedup %.1fx should trail MAM's %.1fx by a wide margin", scSpeedup, mamSpeedup)
	}
	// Even at batch 32 SCONNA retains a throughput lead.
	if sc32 <= mam32 {
		t.Fatalf("SCONNA batch-32 FPS %.0f should still beat MAM %.0f", sc32, mam32)
	}
}

func TestBatchSizeDefaults(t *testing.T) {
	cfg := Sconna()
	if cfg.BatchSize() != 1 {
		t.Fatal("default batch must be 1 (paper Sec. VI-B)")
	}
	cfg.Batch = -3
	if cfg.BatchSize() != 1 {
		t.Fatal("invalid batch must clamp to 1")
	}
	cfg.Batch = 8
	if cfg.BatchSize() != 8 {
		t.Fatal("explicit batch lost")
	}
}

// FPS must scale sublinearly but monotonically with batch.
func TestBatchMonotoneFPS(t *testing.T) {
	m := models.ShuffleNetV2()
	prev := 0.0
	for _, b := range []int{1, 2, 4, 8} {
		cfg := AMM()
		cfg.Batch = b
		r, err := Simulate(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		if r.FPS <= prev {
			t.Fatalf("batch %d: FPS %.0f not increasing", b, r.FPS)
		}
		prev = r.FPS
	}
}
