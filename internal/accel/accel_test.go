package accel

import (
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/scalability"
)

func TestConfigConstantsMatchPaper(t *testing.T) {
	s := Sconna()
	if s.N != 176 || s.M != 176 || s.TotalVDPEs != 1024 || s.BitRateHz != 30e9 || s.Precision != 8 {
		t.Fatal("SCONNA constants disagree with Sec. VI-B")
	}
	m := MAM()
	if m.N != 22 || m.TotalVDPEs != 3971 || m.BitRateHz != 5e9 || m.SlicePrecision != 4 {
		t.Fatal("MAM constants disagree with Sec. VI-B")
	}
	a := AMM()
	if a.N != 16 || a.TotalVDPEs != 3172 {
		t.Fatal("AMM constants disagree with Sec. VI-B")
	}
}

func TestPeripheralsMatchTableIV(t *testing.T) {
	p := DefaultPeripherals()
	checks := []struct {
		got, want float64
		name      string
	}{
		{p.ReductionNS, 3.125, "reduction latency"},
		{p.ActivationNS, 0.78, "activation latency"},
		{p.EDRAMNS, 1.56, "eDRAM latency"},
		{p.DACPowerW, 30e-3, "DAC power"},
		{p.ADCAnalogPowerW, 29e-3, "analog ADC power"},
		{p.ADCSconnaPowerW, 2.55e-3, "SCONNA ADC power"},
		{p.SerializerPowerW, 5e-3, "serializer power"},
		{p.LUTPowerW, 0.06e-3, "LUT power"},
		{p.PCAPowerW, 0.02e-3, "PCA power"},
		{p.IOPowerW, 140.18e-3, "IO power"},
		{p.EDRAMPowerW, 41.1e-3, "eDRAM power"},
		{p.RouterPowerW, 42e-3, "router power"},
		{p.BusPowerW, 7e-3, "bus power"},
		{p.LUTNS, 2, "LUT latency"},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s: %g want %g", c.name, c.got, c.want)
		}
	}
}

func TestBitSlicing(t *testing.T) {
	if Sconna().BitSlices() != 1 {
		t.Fatal("SCONNA needs no slicing at 8-bit")
	}
	if MAM().BitSlices() != 2 || AMM().BitSlices() != 2 {
		t.Fatal("analog 4-bit VDPCs need 2 slices for 8-bit")
	}
	if MAM().EffectiveVDPEs() != 3971/2 {
		t.Fatal("effective VDPEs should halve under slicing")
	}
}

func TestOpNS(t *testing.T) {
	// SCONNA: 256 bits at 30 Gbps = 8.533 ns.
	if got := Sconna().OpNS(); math.Abs(got-256.0/30) > 1e-9 {
		t.Fatalf("SCONNA OpNS=%g want %g", got, 256.0/30)
	}
	// Analog: DAC + symbol + ADC = 0.78 + 0.2 + 0.78.
	if got := MAM().OpNS(); math.Abs(got-1.76) > 1e-9 {
		t.Fatalf("analog OpNS=%g want 1.76", got)
	}
}

func TestTopologyCounts(t *testing.T) {
	s := Sconna()
	if s.VDPCs() != 6 { // ceil(1024/176)
		t.Fatalf("SCONNA VDPCs=%d want 6", s.VDPCs())
	}
	if s.Tiles() != 2 { // ceil(6/4)
		t.Fatalf("SCONNA tiles=%d want 2", s.Tiles())
	}
	m := MAM()
	if m.VDPCs() != ceilDiv(3971, 22) {
		t.Fatal("MAM VDPC count wrong")
	}
}

func TestValidate(t *testing.T) {
	bad := Sconna()
	bad.N = 0
	if bad.Validate() == nil {
		t.Fatal("expected N error")
	}
	bad = Sconna()
	bad.BitRateHz = 0
	if bad.Validate() == nil {
		t.Fatal("expected bitrate error")
	}
	if _, err := Simulate(bad, models.ShuffleNetV2()); err == nil {
		t.Fatal("Simulate must propagate validation errors")
	}
}

func TestSimulateBasicInvariants(t *testing.T) {
	for _, cfg := range []Config{Sconna(), MAM(), AMM()} {
		r, err := Simulate(cfg, models.ShuffleNetV2())
		if err != nil {
			t.Fatal(err)
		}
		if r.TotalNS <= 0 || r.FPS <= 0 {
			t.Fatalf("%s: non-positive time/FPS", cfg.Name)
		}
		if r.Power.Total() <= 0 || r.EnergyJ <= 0 || r.AreaMM2 <= 0 {
			t.Fatalf("%s: non-positive power/energy/area", cfg.Name)
		}
		if len(r.Layers) == 0 {
			t.Fatalf("%s: no layer results", cfg.Name)
		}
		var sum float64
		for _, l := range r.Layers {
			if l.TotalNS < 0 {
				t.Fatalf("%s/%s: negative layer time", cfg.Name, l.Name)
			}
			sum += l.TotalNS
		}
		if math.Abs(sum-r.TotalNS) > 1e-6*r.TotalNS+1 {
			t.Fatalf("%s: layer times %.1f don't sum to total %.1f", cfg.Name, sum, r.TotalNS)
		}
	}
}

// The headline reproduction: SCONNA beats both analog baselines on every
// CNN and metric, AMM trails MAM, and the gmean factors land within 2.5x
// of the published 66.5x/146.4x (FPS), 90x/183x (FPS/W), 91x/184x
// (FPS/W/mm^2).
func TestFig9Reproduction(t *testing.T) {
	data, err := Fig9Default()
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) != 12 {
		t.Fatalf("want 12 rows (4 CNNs x 3 accelerators), got %d", len(data.Rows))
	}
	byModelAccel := map[string]map[string]Fig9Row{}
	for _, r := range data.Rows {
		if byModelAccel[r.Model] == nil {
			byModelAccel[r.Model] = map[string]Fig9Row{}
		}
		byModelAccel[r.Model][r.Accel] = r
	}
	for model, rows := range byModelAccel {
		s := rows["SCONNA"]
		m := rows["MAM (HOLYLIGHT)"]
		a := rows["AMM (DEAPCNN)"]
		if !(s.FPS > m.FPS && m.FPS > a.FPS) {
			t.Errorf("%s: FPS ordering violated: %g / %g / %g", model, s.FPS, m.FPS, a.FPS)
		}
		if !(s.FPSPerW > m.FPSPerW && m.FPSPerW > a.FPSPerW) {
			t.Errorf("%s: FPS/W ordering violated", model)
		}
		if !(s.FPSPerWMM > m.FPSPerWMM && m.FPSPerWMM > a.FPSPerWMM) {
			t.Errorf("%s: FPS/W/mm2 ordering violated", model)
		}
	}
	for accel, ref := range PaperFig9Gmeans {
		for metric, pair := range map[string][2]float64{
			"FPS":       {data.GmeanFPS[accel], ref.FPS},
			"FPS/W":     {data.GmeanFPSPerW[accel], ref.FPSPerW},
			"FPS/W/mm2": {data.GmeanFPSPerWMM[accel], ref.FPSPerWMM},
		} {
			got, want := pair[0], pair[1]
			if got < want/2.5 || got > want*2.5 {
				t.Errorf("%s %s gmean ratio %.1fx vs paper %.1fx (outside 2.5x band)", accel, metric, got, want)
			}
		}
	}
}

// The paper attributes SCONNA's advantage to fewer psums: check that for
// the ResNet50 S=4608 layers SCONNA needs C=27 chunks vs MAM's 210
// (Sec. III-A arithmetic).
func TestChunkArithmetic(t *testing.T) {
	r, err := Simulate(Sconna(), models.ResNet50())
	if err != nil {
		t.Fatal(err)
	}
	maxChunks := 0
	for _, l := range r.Layers {
		if l.Chunks > maxChunks {
			maxChunks = l.Chunks
		}
	}
	if maxChunks != 27 { // ceil(4608/176)
		t.Fatalf("SCONNA max chunks=%d want 27", maxChunks)
	}
	rm, err := Simulate(MAM(), models.ResNet50())
	if err != nil {
		t.Fatal(err)
	}
	maxChunks = 0
	for _, l := range rm.Layers {
		if l.Chunks > maxChunks {
			maxChunks = l.Chunks
		}
	}
	if maxChunks != 210 { // ceil(4608/22)
		t.Fatalf("MAM max chunks=%d want 210 (paper Sec. III-A: 105 per 44-point VDPE)", maxChunks)
	}
}

// Analog weight reloads dominate analog runtime under weight-stationary
// dataflow (thermal settling); SCONNA's reload share must be negligible.
func TestReloadDominanceAsymmetry(t *testing.T) {
	rs, _ := Simulate(Sconna(), models.ResNet50())
	rm, _ := Simulate(MAM(), models.ResNet50())
	var sReload, sTotal, mReload, mTotal float64
	for _, l := range rs.Layers {
		sReload += l.WeightNS
		sTotal += l.TotalNS
	}
	for _, l := range rm.Layers {
		mReload += l.WeightNS
		mTotal += l.TotalNS
	}
	if sReload/sTotal > 0.3 {
		t.Fatalf("SCONNA reload share %.2f too high", sReload/sTotal)
	}
	if mReload/mTotal < 0.5 {
		t.Fatalf("MAM reload share %.2f too low for thermal weight banks", mReload/mTotal)
	}
}

func TestAreaEqualAcrossAccelerators(t *testing.T) {
	// The paper's area-proportionate analysis matches all accelerators to
	// SCONNA's area.
	a := Sconna().AreaMM2()
	if math.Abs(MAM().AreaMM2()-a) > 1e-9 || math.Abs(AMM().AreaMM2()-a) > 1e-9 {
		t.Fatal("area-proportionate anchor violated")
	}
	if a <= 0 {
		t.Fatal("non-positive area")
	}
}

func TestGmean(t *testing.T) {
	if g := Gmean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("gmean=%g want 10", g)
	}
	if Gmean(nil) != 0 {
		t.Fatal("empty gmean should be 0")
	}
}

func TestEnergyBreakdownTotals(t *testing.T) {
	b := EnergyBreakdown{LaserW: 1, ComputeW: 2, HeaterW: 3, PeripheralW: 4}
	if b.Total() != 10 {
		t.Fatal("Total broken")
	}
}

func BenchmarkSimulateResNet50Sconna(b *testing.B) {
	m := models.ResNet50()
	cfg := Sconna()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, m); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = scalability.SCONNA // keep import for doc references
