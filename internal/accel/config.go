// Package accel implements the performance plane of the reproduction: the
// transaction-level, event-driven models of the SCONNA accelerator and the
// two analog photonic baselines — MAM (HOLYLIGHT [7]) and AMM (DEAP-CNN
// [9]) — that regenerate the paper's Fig. 9 FPS, FPS/W and FPS/W/mm^2
// comparisons under the Section VI-B methodology: 8-bit integer CNNs,
// batch size 1, weight-stationary dataflow, and area-proportionate VDPE
// counts (SCONNA 1024, MAM 3971, AMM 3172).
package accel

import (
	"fmt"
	"math"

	"repro/internal/scalability"
)

// Peripherals carries the Table IV per-component power, area and latency
// constants.
type Peripherals struct {
	ReductionPowerW   float64 // 0.05 mW
	ReductionAreaMM2  float64 // 3.00E-05
	ReductionNS       float64 // 3.125 ns per psum stage
	ActivationPowerW  float64 // 0.52 mW
	ActivationAreaMM2 float64 // 6.00E-04
	ActivationNS      float64 // 0.78 ns
	IOPowerW          float64 // 140.18 mW
	IOAreaMM2         float64 // 2.44E-02
	IONS              float64 // 0.78 ns
	PoolingPowerW     float64 // 0.4 mW
	PoolingAreaMM2    float64 // 2.40E-04
	PoolingNS         float64 // 3.125 ns
	EDRAMPowerW       float64 // 41.1 mW
	EDRAMAreaMM2      float64 // 0.166
	EDRAMNS           float64 // 1.56 ns
	BusPowerW         float64 // 7 mW
	BusAreaMM2        float64 // 9.00E-03
	RouterPowerW      float64 // 42 mW
	RouterAreaMM2     float64 // 0.151

	DACPowerW  float64 // 30 mW   (analog accelerators, [45])
	DACAreaMM2 float64 // 0.034
	DACNS      float64 // 0.78 ns

	ADCAnalogPowerW  float64 // 29 mW  (analog accelerators, [46])
	ADCAnalogAreaMM2 float64 // 0.103
	ADCSconnaPowerW  float64 // 2.55 mW (SCONNA, [47])
	ADCSconnaAreaMM2 float64 // 0.002
	ADCNS            float64 // 0.78 ns

	SerializerPowerW  float64 // 5 mW per OSM [48]
	SerializerAreaMM2 float64 // Table IV prints 5.9; we read 5.9E-03 (see DESIGN.md errata note)
	SerializerNS      float64 // 0.03 ns
	LUTPowerW         float64 // 0.06 mW per OSM [49]
	LUTAreaMM2        float64 // 0.09 per VDPE (errata reading; per-OSM would exceed wafer scale)
	LUTNS             float64 // 2 ns
	PCAPowerW         float64 // 0.02 mW
	PCAAreaMM2        float64 // 0.28
	BufferNS          float64 // 2 ns (scratchpad access, Sec. V-A)
}

// DefaultPeripherals returns the Table IV constants.
func DefaultPeripherals() Peripherals {
	return Peripherals{
		ReductionPowerW: 0.05e-3, ReductionAreaMM2: 3.0e-5, ReductionNS: 3.125,
		ActivationPowerW: 0.52e-3, ActivationAreaMM2: 6.0e-4, ActivationNS: 0.78,
		IOPowerW: 140.18e-3, IOAreaMM2: 2.44e-2, IONS: 0.78,
		PoolingPowerW: 0.4e-3, PoolingAreaMM2: 2.4e-4, PoolingNS: 3.125,
		EDRAMPowerW: 41.1e-3, EDRAMAreaMM2: 0.166, EDRAMNS: 1.56,
		BusPowerW: 7e-3, BusAreaMM2: 9.0e-3,
		RouterPowerW: 42e-3, RouterAreaMM2: 0.151,
		DACPowerW: 30e-3, DACAreaMM2: 0.034, DACNS: 0.78,
		ADCAnalogPowerW: 29e-3, ADCAnalogAreaMM2: 0.103,
		ADCSconnaPowerW: 2.55e-3, ADCSconnaAreaMM2: 0.002,
		ADCNS:            0.78,
		SerializerPowerW: 5e-3, SerializerAreaMM2: 5.9e-3, SerializerNS: 0.03,
		LUTPowerW: 0.06e-3, LUTAreaMM2: 0.09, LUTNS: 2,
		PCAPowerW: 0.02e-3, PCAAreaMM2: 0.28,
		BufferNS: 2,
	}
}

// Config describes one accelerator instance for the performance model.
type Config struct {
	// Name labels the accelerator in reports ("SCONNA", "MAM
	// (HOLYLIGHT)", "AMM (DEAPCNN)").
	Name string
	// Org selects the VDPC organization.
	Org scalability.Organization
	// N is the VDPE size; M the VDPEs per VDPC.
	N, M int
	// TotalVDPEs across all VDPCs (area-proportionate counts).
	TotalVDPEs int
	// VDPCsPerTile groups VDPCs into tiles (4 in Fig. 8).
	VDPCsPerTile int
	// Precision is the logical operand precision B (8-bit evaluation).
	Precision int
	// SlicePrecision is the native per-VDPC precision; analog VDPCs run
	// 4-bit slices, SCONNA runs the full precision natively.
	SlicePrecision int
	// BitRateHz: SCONNA stream bitrate (30 GHz); analog symbol rate DR
	// (5 GS/s).
	BitRateHz float64
	// ThermalTuneNS is the settling time of thermally-tuned analog weight
	// MRRs on a weight-stationary reload (microsecond-scale thermal time
	// constants; 0 for SCONNA, whose LUT/serializer path re-imprints
	// weights electro-refractively at bit speed).
	ThermalTuneNS float64
	// HeaterHoldW is the sustained per-MRR heater power holding analog
	// weight levels (analog banks only; SCONNA's on-off streams tolerate
	// drift and carry no sustained bias — see DESIGN.md).
	HeaterHoldW float64
	// LaserPerWavelengthW is the electrical laser power per wavelength
	// channel (10 mW optical / 0.1 WPE = 100 mW).
	LaserPerWavelengthW float64
	// IOBytesPerNS is the per-tile activation/weight streaming bandwidth.
	IOBytesPerNS float64
	// Batch is the inference batch size (1 in the paper's evaluation).
	// Larger batches amortize weight-stationary reloads — which is why
	// batching disproportionately helps the analog accelerators whose
	// reloads carry thermal settling (ablation A4).
	Batch int
	// Peripherals carries the Table IV constants.
	Peripherals Peripherals
}

// BatchSize returns the effective batch (>= 1).
func (c Config) BatchSize() int {
	if c.Batch < 1 {
		return 1
	}
	return c.Batch
}

// BitSlices returns how many parallel VDPEs implement one logical
// Precision-bit operation (Sec. III-A bit-slicing: two 4-bit VDPCs for
// 8-bit operands on the analog accelerators).
func (c Config) BitSlices() int {
	if c.SlicePrecision >= c.Precision {
		return 1
	}
	return int(math.Ceil(float64(c.Precision) / float64(c.SlicePrecision)))
}

// EffectiveVDPEs returns the logical VDPE count after bit-slicing.
func (c Config) EffectiveVDPEs() int { return c.TotalVDPEs / c.BitSlices() }

// VDPCs returns the number of VDPCs.
func (c Config) VDPCs() int { return ceilDiv(c.TotalVDPEs, c.M) }

// Tiles returns the number of tiles.
func (c Config) Tiles() int { return ceilDiv(c.VDPCs(), c.VDPCsPerTile) }

// OpNS returns the issue interval of one VDP chunk-op on one VDPE.
//
// SCONNA: the 2^B-bit stochastic stream at BitRateHz dominates the
// pipelined peripheral stages (buffer, LUT, serializer, ADC).
//
// Analog: a VDP op is a DAC->modulate->detect->ADC round trip; the symbol
// itself lasts 1/DR but the conversions bound the issue interval.
func (c Config) OpNS() float64 {
	if c.Org == scalability.SCONNA {
		stream := float64(int(1)<<uint(c.Precision)) / c.BitRateHz * 1e9
		return math.Max(stream, math.Max(c.Peripherals.LUTNS, c.Peripherals.BufferNS))
	}
	symbol := 1 / c.BitRateHz * 1e9
	return c.Peripherals.DACNS + symbol + c.Peripherals.ADCNS
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N < 1 || c.M < 1 || c.TotalVDPEs < 1 {
		return fmt.Errorf("accel: %s: N/M/TotalVDPEs must be positive", c.Name)
	}
	if c.BitRateHz <= 0 {
		return fmt.Errorf("accel: %s: bitrate must be positive", c.Name)
	}
	if c.Precision < 1 || c.SlicePrecision < 1 {
		return fmt.Errorf("accel: %s: precision must be positive", c.Name)
	}
	return nil
}

// Sconna returns the paper's SCONNA operating point: N=M=176, BR=30 Gbps,
// B=8, 1024 VDPEs.
func Sconna() Config {
	return Config{
		Name: "SCONNA", Org: scalability.SCONNA,
		N: 176, M: 176, TotalVDPEs: 1024, VDPCsPerTile: 4,
		Precision: 8, SlicePrecision: 8,
		BitRateHz:           30e9,
		ThermalTuneNS:       0,
		HeaterHoldW:         0,
		LaserPerWavelengthW: 0.1,
		IOBytesPerNS:        256,
		Peripherals:         DefaultPeripherals(),
	}
}

// MAM returns the MAM (HOLYLIGHT) baseline: N=22 at 4-bit, DR=5 GS/s,
// area-proportionate 3971 VDPEs, 8-bit via two bit slices.
func MAM() Config {
	return Config{
		Name: "MAM (HOLYLIGHT)", Org: scalability.MAM,
		N: 22, M: 22, TotalVDPEs: 3971, VDPCsPerTile: 4,
		Precision: 8, SlicePrecision: 4,
		BitRateHz:           5e9,
		ThermalTuneNS:       35000,
		HeaterHoldW:         10e-3,
		LaserPerWavelengthW: 0.1,
		IOBytesPerNS:        256,
		Peripherals:         DefaultPeripherals(),
	}
}

// AMM returns the AMM (DEAP-CNN) baseline: N=16 at 4-bit, DR=5 GS/s,
// area-proportionate 3172 VDPEs, 8-bit via two bit slices.
func AMM() Config {
	return Config{
		Name: "AMM (DEAPCNN)", Org: scalability.AMM,
		N: 16, M: 16, TotalVDPEs: 3172, VDPCsPerTile: 4,
		Precision: 8, SlicePrecision: 4,
		BitRateHz:           5e9,
		ThermalTuneNS:       35000,
		HeaterHoldW:         10e-3,
		LaserPerWavelengthW: 0.1,
		IOBytesPerNS:        256,
		Peripherals:         DefaultPeripherals(),
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
