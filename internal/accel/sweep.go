package accel

import (
	"repro/internal/models"
	"repro/internal/parallel"
)

// Job is one (accelerator, model) simulation request of a design-space
// sweep.
type Job struct {
	Cfg   Config
	Model models.Model
}

// SimulateAll runs every job across a bounded worker pool and returns the
// results in job order. Simulate is a pure function of its inputs, so the
// output is bit-identical to a serial loop for any worker count; workers
// <= 0 selects GOMAXPROCS.
func SimulateAll(jobs []Job, workers int) ([]Result, error) {
	return parallel.Map(workers, len(jobs), func(i int) (Result, error) {
		return Simulate(jobs[i].Cfg, jobs[i].Model)
	})
}

// Sweep crosses every accelerator configuration with every model and
// simulates the full design space across the worker pool. Results come
// back model-major ((m0,c0), (m0,c1), ..., (m1,c0), ...), matching the
// row order of the paper's Fig. 9.
func Sweep(cfgs []Config, ms []models.Model, workers int) ([]Result, error) {
	jobs := make([]Job, 0, len(cfgs)*len(ms))
	for _, m := range ms {
		for _, cfg := range cfgs {
			jobs = append(jobs, Job{Cfg: cfg, Model: m})
		}
	}
	return SimulateAll(jobs, workers)
}
