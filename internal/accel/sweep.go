package accel

import "repro/internal/models"

// Job is one (accelerator, model) simulation request of a design-space
// sweep.
type Job struct {
	Cfg   Config
	Model models.Model
}

// sweepJobList crosses configurations with models, model-major
// ((m0,c0), (m0,c1), ..., (m1,c0), ...) — the row order of Fig. 9.
func sweepJobList(cfgs []Config, ms []models.Model) []Job {
	jobs := make([]Job, 0, len(cfgs)*len(ms))
	for _, m := range ms {
		for _, cfg := range cfgs {
			jobs = append(jobs, Job{Cfg: cfg, Model: m})
		}
	}
	return jobs
}

// SimulateAll runs every job through an ephemeral cache-aware Runner and
// returns the results in job order. Simulate is a pure function of its
// inputs, so the output is bit-identical to a serial loop for any worker
// count; workers <= 0 selects GOMAXPROCS. Duplicate jobs in the list
// compute once (single-flight de-duplication). Callers that want results
// to survive across calls or processes hold a Runner instead.
func SimulateAll(jobs []Job, workers int) ([]Result, error) {
	return memoryRunner(workers).SimulateAll(jobs)
}

// Sweep crosses every accelerator configuration with every model and
// simulates the full design space across the worker pool. Results come
// back model-major, matching the row order of the paper's Fig. 9.
func Sweep(cfgs []Config, ms []models.Model, workers int) ([]Result, error) {
	return memoryRunner(workers).Sweep(cfgs, ms)
}
