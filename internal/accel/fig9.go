package accel

import (
	"math"

	"repro/internal/models"
)

// Fig9Row is one bar of the Fig. 9 charts: one (model, accelerator) pair.
type Fig9Row struct {
	Model     string
	Accel     string
	FPS       float64
	FPSPerW   float64
	FPSPerWMM float64
	PowerW    float64
	LatencyMS float64
}

// Fig9Data aggregates the full Fig. 9 comparison.
type Fig9Data struct {
	Rows []Fig9Row
	// Gmean ratios of SCONNA over each baseline accelerator, across the
	// evaluated CNNs (the paper's headline numbers: 66.5x / 146.4x FPS,
	// 90x / 183x FPS/W, 91x / 184x FPS/W/mm^2).
	GmeanFPS       map[string]float64
	GmeanFPSPerW   map[string]float64
	GmeanFPSPerWMM map[string]float64
}

// PaperFig9Gmeans records the published gmean improvement factors of
// SCONNA over each baseline for comparison in reports.
var PaperFig9Gmeans = map[string]struct{ FPS, FPSPerW, FPSPerWMM float64 }{
	"MAM (HOLYLIGHT)": {66.5, 90, 91},
	"AMM (DEAPCNN)":   {146.4, 183, 184},
}

// Gmean returns the geometric mean of xs (0 for empty input).
func Gmean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Fig9 runs the full comparison of the given accelerators over the given
// models. The first accelerator is the ratio baseline numerator (SCONNA in
// the paper's Fig. 9). It is Fig9Parallel at the default worker count.
func Fig9(cfgs []Config, ms []models.Model) (Fig9Data, error) {
	return Fig9Parallel(cfgs, ms, 0)
}

// Fig9Parallel is Fig9 with an explicit worker count (<= 0 selects
// GOMAXPROCS). It runs the sweep through an ephemeral cache-aware Runner;
// the ratio/gmean merge walks the ordered results exactly as the serial
// implementation did, so the output is bit-identical for any worker
// count.
func Fig9Parallel(cfgs []Config, ms []models.Model, workers int) (Fig9Data, error) {
	return memoryRunner(workers).Fig9(cfgs, ms)
}

// mergeFig9 folds ordered model-major sweep results into the Fig. 9 rows
// and SCONNA-over-baseline gmean ratios.
func mergeFig9(cfgs []Config, ms []models.Model, results []Result) Fig9Data {
	data := Fig9Data{
		GmeanFPS:       map[string]float64{},
		GmeanFPSPerW:   map[string]float64{},
		GmeanFPSPerWMM: map[string]float64{},
	}
	ratiosFPS := map[string][]float64{}
	ratiosW := map[string][]float64{}
	ratiosA := map[string][]float64{}
	for mi, m := range ms {
		var first Result
		for i, cfg := range cfgs {
			r := results[mi*len(cfgs)+i]
			if i == 0 {
				first = r
			} else {
				ratiosFPS[cfg.Name] = append(ratiosFPS[cfg.Name], first.FPS/r.FPS)
				ratiosW[cfg.Name] = append(ratiosW[cfg.Name], first.FPSPerW/r.FPSPerW)
				ratiosA[cfg.Name] = append(ratiosA[cfg.Name], first.FPSPerWMM/r.FPSPerWMM)
			}
			data.Rows = append(data.Rows, Fig9Row{
				Model: m.Name, Accel: cfg.Name,
				FPS: r.FPS, FPSPerW: r.FPSPerW, FPSPerWMM: r.FPSPerWMM,
				PowerW: r.Power.Total(), LatencyMS: r.TotalNS / 1e6,
			})
		}
	}
	for name, rs := range ratiosFPS {
		data.GmeanFPS[name] = Gmean(rs)
		data.GmeanFPSPerW[name] = Gmean(ratiosW[name])
		data.GmeanFPSPerWMM[name] = Gmean(ratiosA[name])
	}
	return data
}

// Fig9Default runs the paper's configuration: SCONNA vs MAM vs AMM on the
// four evaluated CNNs.
func Fig9Default() (Fig9Data, error) {
	return Fig9([]Config{Sconna(), MAM(), AMM()}, models.Evaluated())
}
