package accel

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/models"
)

func newTestRunner(t *testing.T, opts RunnerOptions) *Runner {
	t.Helper()
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// The Runner is an availability layer over a pure function: its results
// must equal direct Simulate calls exactly, hit or miss.
func TestRunnerMatchesDirectSimulate(t *testing.T) {
	t.Parallel()
	r := newTestRunner(t, RunnerOptions{Workers: 1})
	for _, job := range sweepJobs() {
		want, err := Simulate(job.Cfg, job.Model)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Simulate(job.Cfg, job.Model)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s/%s: runner result diverged from Simulate", job.Cfg.Name, job.Model.Name)
		}
	}
}

// Cold, warm, serial and parallel sweeps must all be bit-identical at
// any worker count — the core contract of the cache-aware refactor.
func TestRunnerWarmColdWorkerInvariance(t *testing.T) {
	t.Parallel()
	jobs := sweepJobs()
	serial, err := SimulateAll(jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		r := newTestRunner(t, RunnerOptions{Workers: workers})
		cold, err := r.SimulateAll(jobs)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := r.SimulateAll(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, serial) {
			t.Fatalf("workers=%d: cold sweep diverged from serial", workers)
		}
		if !reflect.DeepEqual(warm, serial) {
			t.Fatalf("workers=%d: warm sweep diverged from serial", workers)
		}
		s := r.Stats()
		if s.Misses != int64(len(jobs)) {
			t.Fatalf("workers=%d: %d misses over two passes, want %d (warm pass must not recompute)",
				workers, s.Misses, len(jobs))
		}
		if s.Lookups != 2*int64(len(jobs)) || s.Hits() != int64(len(jobs)) {
			t.Fatalf("workers=%d: stats = %+v", workers, s)
		}
	}
}

// Duplicate jobs in one sweep must compute once per unique digest, even
// when they race through the worker pool (single-flight).
func TestRunnerDuplicateJobsComputeOnce(t *testing.T) {
	t.Parallel()
	base := sweepJobs()[:3]
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, base...)
	}
	r := newTestRunner(t, RunnerOptions{})
	results, err := r.SimulateAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if !reflect.DeepEqual(res, results[i%len(base)]) {
			t.Fatalf("duplicate job %d diverged from its first occurrence", i)
		}
	}
	if s := r.Stats(); s.Misses != int64(len(base)) {
		t.Fatalf("%d misses for %d unique jobs", s.Misses, len(base))
	}
}

// A persisted store must hand a fresh Runner (a new process, in real
// use) bit-identical results with zero recomputation.
func TestRunnerDiskRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	jobs := sweepJobs()
	r1 := newTestRunner(t, RunnerOptions{CacheDir: dir})
	cold, err := r1.SimulateAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s := r1.Stats(); s.DiskWrites != int64(len(jobs)) {
		t.Fatalf("persisted %d entries, want %d", s.DiskWrites, len(jobs))
	}

	r2 := newTestRunner(t, RunnerOptions{CacheDir: dir})
	warm, err := r2.SimulateAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("disk-warmed sweep diverged from the cold sweep")
	}
	s := r2.Stats()
	if s.Misses != 0 || s.DiskHits != int64(len(jobs)) {
		t.Fatalf("warm stats = %+v, want 0 misses / %d disk hits", s, len(jobs))
	}
}

// The GC bounds flow through RunnerOptions: reopening a persisted store
// under a tight age bound garbage-collects it, and evicted entries
// recompute to bit-identical results on the next sweep.
func TestRunnerCacheGCBounds(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	jobs := sweepJobs()
	r1 := newTestRunner(t, RunnerOptions{CacheDir: dir})
	cold, err := r1.SimulateAll(jobs)
	if err != nil {
		t.Fatal(err)
	}

	r2 := newTestRunner(t, RunnerOptions{CacheDir: dir, CacheMaxAge: time.Nanosecond})
	if s := r2.Stats(); s.GCRemoved != int64(len(jobs)) || s.GCBytes <= 0 {
		t.Fatalf("age-bounded open removed %d entries (%d bytes), want %d", s.GCRemoved, s.GCBytes, len(jobs))
	}
	recomputed, err := r2.SimulateAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recomputed, cold) {
		t.Fatal("post-GC recomputation diverged")
	}
	if s := r2.Stats(); s.DiskHits != 0 || s.Misses != int64(len(jobs)) {
		t.Fatalf("post-GC stats = %+v, want all misses", s)
	}

	// A generous size bound keeps the (re-persisted) store intact.
	r3 := newTestRunner(t, RunnerOptions{CacheDir: dir, CacheMaxBytes: 1 << 30})
	if s := r3.Stats(); s.GCRemoved != 0 {
		t.Fatalf("size-bounded open evicted %d entries under a generous bound", s.GCRemoved)
	}
}

// Runner.Fig9 must reproduce Fig9Parallel (and therefore the serial
// reference) exactly, cold and warm.
func TestRunnerFig9MatchesFig9Parallel(t *testing.T) {
	t.Parallel()
	cfgs := []Config{Sconna(), MAM(), AMM()}
	ms := models.Evaluated()
	want, err := Fig9Parallel(cfgs, ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := newTestRunner(t, RunnerOptions{})
	for pass := 0; pass < 2; pass++ {
		got, err := r.Fig9(cfgs, ms)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: runner Fig9 diverged from serial Fig9Parallel", pass)
		}
	}
}

// Validation failures must propagate and must not poison the cache.
func TestRunnerErrorNotCached(t *testing.T) {
	t.Parallel()
	r := newTestRunner(t, RunnerOptions{})
	bad := Sconna()
	bad.N = 0
	if _, err := r.Simulate(bad, models.GoogleNet()); err == nil {
		t.Fatal("invalid config did not error through the runner")
	}
	if s := r.Stats(); s.Misses != 1 {
		t.Fatalf("stats = %+v, want the failed compute counted as a miss", s)
	}
	if _, err := r.Simulate(bad, models.GoogleNet()); err == nil {
		t.Fatal("second lookup of the invalid config did not error")
	}
}
