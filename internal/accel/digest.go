package accel

import "repro/internal/digest"

// Digest schema tags. Bump a tag whenever a field Simulate reads is
// added, removed, reordered, or reinterpreted: old cache entries then
// stop being addressed instead of being silently misread — that is the
// whole invalidation story of the content-addressed store.
const (
	configSchema = "repro/accel.Config@v1"
	jobSchema    = "repro/accel.Job@v1"
)

// Digest returns the canonical content digest of the configuration:
// every Config and Peripherals field, in declared order.
func (c Config) Digest() digest.Digest {
	h := digest.New()
	c.writeDigest(h)
	return h.Sum()
}

func (c Config) writeDigest(h *digest.Hasher) {
	h.Str(configSchema)
	h.Str(c.Name)
	h.Int(int(c.Org))
	h.Int(c.N).Int(c.M).Int(c.TotalVDPEs).Int(c.VDPCsPerTile)
	h.Int(c.Precision).Int(c.SlicePrecision)
	h.F64(c.BitRateHz).F64(c.ThermalTuneNS).F64(c.HeaterHoldW)
	h.F64(c.LaserPerWavelengthW).F64(c.IOBytesPerNS)
	h.Int(c.Batch)
	p := c.Peripherals
	h.F64(p.ReductionPowerW).F64(p.ReductionAreaMM2).F64(p.ReductionNS)
	h.F64(p.ActivationPowerW).F64(p.ActivationAreaMM2).F64(p.ActivationNS)
	h.F64(p.IOPowerW).F64(p.IOAreaMM2).F64(p.IONS)
	h.F64(p.PoolingPowerW).F64(p.PoolingAreaMM2).F64(p.PoolingNS)
	h.F64(p.EDRAMPowerW).F64(p.EDRAMAreaMM2).F64(p.EDRAMNS)
	h.F64(p.BusPowerW).F64(p.BusAreaMM2)
	h.F64(p.RouterPowerW).F64(p.RouterAreaMM2)
	h.F64(p.DACPowerW).F64(p.DACAreaMM2).F64(p.DACNS)
	h.F64(p.ADCAnalogPowerW).F64(p.ADCAnalogAreaMM2)
	h.F64(p.ADCSconnaPowerW).F64(p.ADCSconnaAreaMM2)
	h.F64(p.ADCNS)
	h.F64(p.SerializerPowerW).F64(p.SerializerAreaMM2).F64(p.SerializerNS)
	h.F64(p.LUTPowerW).F64(p.LUTAreaMM2).F64(p.LUTNS)
	h.F64(p.PCAPowerW).F64(p.PCAAreaMM2)
	h.F64(p.BufferNS)
}

// Digest returns the cache key of one simulation cell: the Job's config
// and model digests composed under the job schema tag. Simulate is a pure
// function of exactly these inputs, so this digest fully addresses its
// Result.
func (j Job) Digest() digest.Digest {
	h := digest.New()
	h.Str(jobSchema)
	j.Cfg.writeDigest(h)
	md := j.Model.Digest()
	h.Bytes(md[:])
	return h.Sum()
}
