package accel

import (
	"fmt"
	"math"

	"repro/internal/models"
	"repro/internal/noc"
	"repro/internal/scalability"
	"repro/internal/sim"
)

// LayerResult records the timing decomposition of one layer.
type LayerResult struct {
	Name      string
	S         int   // DKV size
	Chunks    int   // C = ceil(S/N)
	Rounds    int   // weight-stationary reload rounds
	VDPs      int64 // output points
	ComputeNS float64
	WeightNS  float64 // weight reload (thermal settling for analog)
	IONS      float64 // activation/weight streaming not hidden by compute
	ReduceNS  float64 // psum reduction not hidden by compute
	TotalNS   float64
}

// EnergyBreakdown itemizes average power by component group.
type EnergyBreakdown struct {
	LaserW      float64
	ComputeW    float64 // serializers/LUTs/DACs/ADCs/PCAs, activity-scaled
	HeaterW     float64 // sustained analog weight-bank thermal bias
	PeripheralW float64 // eDRAM, IO, routers, buses, act/pool/reduction
}

// Total returns the summed average power.
func (e EnergyBreakdown) Total() float64 {
	return e.LaserW + e.ComputeW + e.HeaterW + e.PeripheralW
}

// Result is one (accelerator, model) simulation outcome.
type Result struct {
	Config Config
	Model  string

	Layers  []LayerResult
	TotalNS float64
	FPS     float64

	Power      EnergyBreakdown
	EnergyJ    float64
	NoCEnergyJ float64 // dynamic mesh-transfer energy (also folded into EnergyJ)
	AreaMM2    float64
	FPSPerW    float64
	FPSPerWMM  float64 // FPS/W/mm^2
}

// Simulate runs batch-1, weight-stationary inference of the model on the
// accelerator through the event-driven kernel and returns the timing,
// power, energy and area results.
//
// Simulate (and everything it calls) must stay a pure function of
// (cfg, model): the cache-aware Runner memoizes its results by a content
// digest of exactly those inputs, so any hidden state here would let a
// cache hit diverge from a recomputation.
//
// Dataflow per layer (Sec. VI-B): the L*C decomposed kernel chunks are
// pinned across the effective VDPEs; each reload round processes all
// Hout*Wout positions; psums from the C chunks of each output reduce
// through the tile psum-reduction network (one lane per VDPE, 3.125 ns per
// add); activation and weight streams share the per-tile IO bandwidth and
// overlap with compute.
func Simulate(cfg Config, model models.Model) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	e := cfg.EffectiveVDPEs()
	if e < 1 {
		return Result{}, fmt.Errorf("accel: %s: no effective VDPEs", cfg.Name)
	}
	res := Result{Config: cfg, Model: model.Name}

	var kernel sim.Kernel
	io := sim.NewStation("io", cfg.Tiles())
	reduce := sim.NewStation("reduce", e)
	mesh := noc.DefaultConfig(cfg.Tiles())
	farTile := mesh.Tiles() - 1

	var computeBusy, reloadBusy, nocEnergyJ float64
	now := 0.0
	for _, layer := range model.Layers {
		lr := LayerResult{Name: layer.Name, S: layer.S(), VDPs: layer.VDPs()}
		lr.Chunks = ceilDiv(layer.S(), cfg.N)
		kernelChunks := layer.L * lr.Chunks
		lr.Rounds = ceilDiv(kernelChunks, e)
		positions := layer.HOut * layer.WOut
		// When the kernel-chunk set underfills the array, the mapper
		// replicates it across idle VDPEs and splits the positions among
		// the replicas (standard weight-stationary position tiling).
		if groups := e / max(kernelChunks, 1); groups > 1 {
			positions = ceilDiv(positions, groups)
		}

		opNS := cfg.OpNS()
		start := now
		for r := 0; r < lr.Rounds; r++ {
			chunksThis := kernelChunks - r*e
			if chunksThis > e {
				chunksThis = e
			}
			// Weight reload: thermal settling (analog) or LUT/buffer
			// rewrite (SCONNA), plus the weight bytes over the IO and
			// their distribution from global memory across the mesh to
			// the farthest tile.
			wload := cfg.ThermalTuneNS
			if cfg.Org == scalability.SCONNA {
				wload = cfg.Peripherals.BufferNS
			}
			wBytes := float64(chunksThis * cfg.N * cfg.BitSlices())
			perTileBytes := int(wBytes / float64(cfg.Tiles()))
			// Routing latency to the farthest tile sits on the critical
			// path; serialization is already priced by the IO station
			// below, so the latency charge uses an empty payload. Energy
			// charges the real bytes over every tile's route.
			wload += mesh.TransferNS(0, farTile, 0)
			for tile := 0; tile < mesh.Tiles(); tile++ {
				nocEnergyJ += mesh.TransferEnergyJ(0, tile, perTileBytes)
			}
			_, wEnd := io.Reserve(now, wBytes/(cfg.IOBytesPerNS*float64(cfg.Tiles())))
			roundStart := math.Max(now+wload, wEnd)
			lr.WeightNS += roundStart - now

			// Compute: every position of every batched image streams one
			// DIV chunk per VDPE under the stationary weights.
			batch := cfg.BatchSize()
			computeNS := float64(positions*batch) * opNS
			// Activation streaming for this round, overlapped with compute.
			aBytes := float64(positions*batch) * float64(layer.S())
			_, ioEnd := io.Reserve(roundStart, aBytes/(cfg.IOBytesPerNS*float64(cfg.Tiles())))
			// psum reduction: (C-1) adds per output, one lane per VDPE.
			outputsThis := float64(chunksThis) / float64(lr.Chunks) * float64(positions)
			var redEnd float64
			if lr.Chunks > 1 {
				redNS := outputsThis * float64(lr.Chunks-1) * cfg.Peripherals.ReductionNS / float64(e)
				_, redEnd = reduce.Reserve(roundStart, redNS)
				lr.ReduceNS += math.Max(0, redEnd-roundStart-computeNS)
			}
			roundEnd := math.Max(roundStart+computeNS, math.Max(ioEnd, redEnd))
			lr.ComputeNS += computeNS
			lr.IONS += math.Max(0, ioEnd-roundStart-computeNS)
			computeBusy += computeNS
			reloadBusy += roundStart - now
			now = roundEnd
		}
		// Layer tail: final psum tree latency + activation (+ pooling).
		tail := cfg.Peripherals.ActivationNS
		if lr.Chunks > 1 {
			tail += math.Ceil(math.Log2(float64(lr.Chunks))) * cfg.Peripherals.ReductionNS
		}
		kernel.ScheduleAt(now+tail, func() {})
		now = kernel.RunUntil(now + tail)
		lr.TotalNS = now - start
		res.Layers = append(res.Layers, lr)
	}

	res.TotalNS = now
	res.FPS = float64(cfg.BatchSize()) * 1e9 / now
	res.Power = cfg.power(now, computeBusy, reloadBusy)
	res.NoCEnergyJ = nocEnergyJ
	res.EnergyJ = res.Power.Total()*now*1e-9 + nocEnergyJ
	res.AreaMM2 = cfg.AreaMM2()
	res.FPSPerW = res.FPS / res.Power.Total()
	res.FPSPerWMM = res.FPSPerW / res.AreaMM2
	return res, nil
}

// power computes the average power breakdown given total time and busy
// times (all in ns).
func (c Config) power(totalNS, computeBusy, reloadBusy float64) EnergyBreakdown {
	var b EnergyBreakdown
	p := c.Peripherals
	duty := computeBusy / totalNS
	if duty > 1 {
		duty = 1
	}
	reloadDuty := reloadBusy / totalNS
	if reloadDuty > 1 {
		reloadDuty = 1
	}

	b.LaserW = float64(c.VDPCs()) * float64(c.N) * c.LaserPerWavelengthW
	b.PeripheralW = float64(c.Tiles()) * (p.EDRAMPowerW + p.IOPowerW + p.RouterPowerW +
		p.BusPowerW + p.ActivationPowerW + p.PoolingPowerW + p.ReductionPowerW)

	n := float64(c.N)
	vdpes := float64(c.TotalVDPEs)
	switch c.Org {
	case scalability.SCONNA:
		perVDPE := n*(p.SerializerPowerW+p.LUTPowerW) + 2*p.ADCSconnaPowerW + 2*p.PCAPowerW
		b.ComputeW = vdpes * perVDPE * duty
	case scalability.MAM:
		// Shared DIV DAC bank per VDPC + one ADC per VDPE. Weight
		// reloads are heater-driven (the DAC conversion itself is
		// sub-ns and negligible); the heaters hold the DKV bank's
		// analog levels continuously.
		_ = reloadDuty
		b.ComputeW = float64(c.VDPCs())*n*p.DACPowerW*duty +
			vdpes*p.ADCAnalogPowerW*duty
		b.HeaterW = vdpes * n * c.HeaterHoldW
	case scalability.AMM:
		// Per-VDPE DIV arrays multiply the modulator DAC population;
		// both DIV and DKV MRR banks hold thermal bias.
		b.ComputeW = vdpes*n*p.DACPowerW*duty +
			vdpes*p.ADCAnalogPowerW*duty
		b.HeaterW = 2 * vdpes * n * c.HeaterHoldW
	}
	return b
}

// AreaMM2 returns the accelerator die area. For the analog baselines the
// paper fixes area equal to SCONNA's by construction (the VDPE counts 3971
// and 3172 are *derived* from area matching), so all three configurations
// report the SCONNA-anchored area; the per-component model prices the
// SCONNA instance.
func (c Config) AreaMM2() float64 {
	anchor := Sconna()
	p := anchor.Peripherals
	const ringMM2 = 4e-4 // 20 um pitch MRR/OSM cell
	perVDPE := float64(anchor.N)*(ringMM2+p.SerializerAreaMM2) + p.LUTAreaMM2 +
		2*(p.PCAAreaMM2+p.ADCSconnaAreaMM2)
	tiles := float64(anchor.Tiles())
	tileArea := p.EDRAMAreaMM2 + p.IOAreaMM2 + p.RouterAreaMM2 + p.BusAreaMM2 +
		p.ActivationAreaMM2 + p.PoolingAreaMM2 + p.ReductionAreaMM2
	return float64(anchor.TotalVDPEs)*perVDPE + tiles*tileArea
}
