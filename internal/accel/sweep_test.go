package accel

import (
	"reflect"
	"testing"

	"repro/internal/models"
)

func sweepJobs() []Job {
	var jobs []Job
	for _, m := range models.Evaluated() {
		for _, cfg := range []Config{Sconna(), MAM(), AMM()} {
			jobs = append(jobs, Job{Cfg: cfg, Model: m})
		}
	}
	return jobs
}

// Simulate is a pure function, so the parallel sweep must return results
// byte-identical to the serial (workers=1) walk at every worker count.
func TestSimulateAllWorkerInvariance(t *testing.T) {
	t.Parallel()
	jobs := sweepJobs()
	serial, err := SimulateAll(jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(serial), len(jobs))
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := SimulateAll(jobs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d sweep diverged from serial", workers)
		}
	}
}

// SimulateAll must preserve job order: result i simulates job i.
func TestSimulateAllOrdered(t *testing.T) {
	t.Parallel()
	jobs := sweepJobs()
	results, err := SimulateAll(jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Model != jobs[i].Model.Name || r.Config.Name != jobs[i].Cfg.Name {
			t.Fatalf("result %d is (%s, %s), want (%s, %s)",
				i, r.Model, r.Config.Name, jobs[i].Model.Name, jobs[i].Cfg.Name)
		}
	}
}

// Sweep lays results out model-major, matching Fig. 9 row order.
func TestSweepModelMajorOrder(t *testing.T) {
	t.Parallel()
	cfgs := []Config{Sconna(), MAM()}
	ms := models.Evaluated()[:2]
	results, err := Sweep(cfgs, ms, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cfgs)*len(ms) {
		t.Fatalf("got %d results", len(results))
	}
	for mi, m := range ms {
		for ci, cfg := range cfgs {
			r := results[mi*len(cfgs)+ci]
			if r.Model != m.Name || r.Config.Name != cfg.Name {
				t.Fatalf("cell (%d,%d) is (%s, %s)", mi, ci, r.Model, r.Config.Name)
			}
		}
	}
}

// An invalid configuration in the middle of a sweep must surface as an
// error that names the failing job without suppressing the others.
func TestSimulateAllPropagatesError(t *testing.T) {
	t.Parallel()
	bad := Sconna()
	bad.TotalVDPEs = 0
	jobs := []Job{
		{Cfg: Sconna(), Model: models.ResNet50()},
		{Cfg: bad, Model: models.ResNet50()},
	}
	if _, err := SimulateAll(jobs, 4); err == nil {
		t.Fatal("expected invalid job to fail the sweep")
	}
}

// The parallel Fig. 9 pipeline must reproduce the serial one exactly:
// same rows, same gmean ratios.
func TestFig9ParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	cfgs := []Config{Sconna(), MAM(), AMM()}
	ms := models.Evaluated()
	serial, err := Fig9Parallel(cfgs, ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig9Parallel(cfgs, ms, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("parallel Fig. 9 diverged from serial")
	}
}
