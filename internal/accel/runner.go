package accel

import (
	"path/filepath"
	"time"

	"repro/internal/cache"
	"repro/internal/models"
	"repro/internal/parallel"
)

// RunnerOptions configures a cache-aware Runner.
type RunnerOptions struct {
	// Workers bounds the sweep worker pool (<= 0 selects GOMAXPROCS).
	Workers int
	// CacheEntries bounds the in-memory result LRU (<= 0 selects
	// cache.DefaultEntries).
	CacheEntries int
	// CacheDir, when non-empty, persists results on disk under
	// CacheDir/accel so later runs (CI, notebooks, param studies) warm-
	// start. Empty keeps the cache in-memory only.
	CacheDir string
	// CacheMaxBytes bounds the on-disk store: opening the runner
	// garbage-collects least-recently-written entries down to the bound
	// (<= 0 leaves the store unbounded). Safe at any time — evicted
	// content-addressed entries recompute on next demand.
	CacheMaxBytes int64
	// CacheMaxAge evicts on-disk entries older than this at open
	// (0 disables the age bound).
	CacheMaxAge time.Duration
}

// Runner is the evaluation engine of the performance plane: every
// simulation request flows through it. Simulate is a pure function of
// (Config, Model), so the Runner memoizes results in a content-addressed
// cache keyed by Job digests and fans misses across a bounded worker
// pool with single-flight de-duplication. Cached, uncached, serial and
// parallel runs all return bit-identical results at any worker count.
type Runner struct {
	workers int
	cache   *cache.Cache[Result]
}

// NewRunner builds a Runner. It fails only when the disk cache directory
// cannot be created.
func NewRunner(opts RunnerOptions) (*Runner, error) {
	dir := opts.CacheDir
	if dir != "" {
		// Namespace the store: scalability.Runner shares the same root.
		dir = filepath.Join(dir, "accel")
	}
	c, err := cache.New[Result](cache.Options{
		Entries:  opts.CacheEntries,
		Dir:      dir,
		MaxBytes: opts.CacheMaxBytes,
		MaxAge:   opts.CacheMaxAge,
	})
	if err != nil {
		return nil, err
	}
	// The newest runner's cache owns the process-wide "accel" metrics
	// slot (RegisterMetrics replaces); any /metrics endpoint exports it.
	c.RegisterMetrics("accel")
	return &Runner{workers: opts.Workers, cache: c}, nil
}

// memoryRunner builds the ephemeral in-memory Runner behind the
// package-level sweep functions.
func memoryRunner(workers int) *Runner {
	r, err := NewRunner(RunnerOptions{Workers: workers})
	if err != nil { // unreachable: no disk layer to fail
		panic(err)
	}
	return r
}

// Simulate returns the simulation result for (cfg, model), computing it
// at most once per content digest for the life of the cache. Results are
// shared by value between hits; callers must not mutate Result.Layers.
func (r *Runner) Simulate(cfg Config, model models.Model) (Result, error) {
	job := Job{Cfg: cfg, Model: model}
	return r.cache.GetOrCompute(job.Digest(), func() (Result, error) {
		return Simulate(cfg, model)
	})
}

// SimulateAll runs every job across the worker pool and returns results
// in job order. Duplicate jobs (and jobs already cached) compute once.
func (r *Runner) SimulateAll(jobs []Job) ([]Result, error) {
	return parallel.Map(r.workers, len(jobs), func(i int) (Result, error) {
		return r.Simulate(jobs[i].Cfg, jobs[i].Model)
	})
}

// Sweep crosses every configuration with every model, model-major —
// the row order of the paper's Fig. 9.
func (r *Runner) Sweep(cfgs []Config, ms []models.Model) ([]Result, error) {
	return r.SimulateAll(sweepJobList(cfgs, ms))
}

// SweepJobs returns the deterministic job list Sweep evaluates — the
// model-major cross of configurations and models, the row order of the
// paper's Fig. 9. Exported so shard coordinators partition exactly the
// list a single-machine Sweep would run.
func SweepJobs(cfgs []Config, ms []models.Model) []Job {
	return sweepJobList(cfgs, ms)
}

// SweepShard evaluates one contiguous shard (index of count, the CLI
// "-shard i/n" contract) of the Sweep job list and returns that slice's
// results in job order. The partition comes from parallel.ShardSpan — a
// pure function of (job count, index, count) — so N machines running
// disjoint shards against stores rooted in the same directory tree
// produce a cache union that warm-starts an unsharded Sweep completely:
// its merged output is byte-identical to a single-machine run.
func (r *Runner) SweepShard(cfgs []Config, ms []models.Model, index, count int) ([]Result, error) {
	jobs := sweepJobList(cfgs, ms)
	span := parallel.ShardSpan(len(jobs), index, count)
	return r.SimulateAll(jobs[span.Lo:span.Hi])
}

// Fig9 runs the full comparison of the given accelerators over the given
// models through the cache. The first accelerator is the ratio baseline
// numerator (SCONNA in the paper's Fig. 9); the ratio/gmean merge walks
// the ordered sweep results exactly as the serial implementation did, so
// the output is bit-identical for any worker count and any cache state.
func (r *Runner) Fig9(cfgs []Config, ms []models.Model) (Fig9Data, error) {
	results, err := r.Sweep(cfgs, ms)
	if err != nil {
		return Fig9Data{}, err
	}
	return mergeFig9(cfgs, ms, results), nil
}

// Stats snapshots the result-cache traffic counters.
func (r *Runner) Stats() cache.Stats { return r.cache.Stats() }
