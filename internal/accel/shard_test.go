package accel

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/models"
)

// TestShardedSweepUnionMatchesColdRun is the fleet-plane distribution
// contract end to end: two "machines" run disjoint -shard halves of the
// same sweep against their own store roots, the roots are
// directory-unioned, and a runner over the union must (a) answer the
// full sweep from cache alone — zero misses — and (b) produce output
// byte-identical to a cold single-machine run.
func TestShardedSweepUnionMatchesColdRun(t *testing.T) {
	t.Parallel()
	cfgs := []Config{Sconna(), MAM(), AMM()}
	ms := models.Evaluated()
	jobs := SweepJobs(cfgs, ms)

	rootA, rootB := t.TempDir(), t.TempDir()
	ra := newTestRunner(t, RunnerOptions{CacheDir: rootA})
	resA, err := ra.SweepShard(cfgs, ms, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	rb := newTestRunner(t, RunnerOptions{CacheDir: rootB})
	resB, err := rb.SweepShard(cfgs, ms, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resA)+len(resB) != len(jobs) {
		t.Fatalf("shards produced %d+%d results for %d jobs", len(resA), len(resB), len(jobs))
	}

	merged := t.TempDir()
	copied, err := cache.MergeDirs(merged, rootA, rootB)
	if err != nil {
		t.Fatal(err)
	}
	if copied != len(jobs) {
		t.Fatalf("union copied %d entries for %d disjoint jobs", copied, len(jobs))
	}
	// Merging again is a no-op: every entry is already present.
	if again, err := cache.MergeDirs(merged, rootA, rootB); err != nil || again != 0 {
		t.Fatalf("re-merge copied %d entries (err %v), want 0", again, err)
	}

	warm := newTestRunner(t, RunnerOptions{CacheDir: merged})
	got, err := warm.Sweep(cfgs, ms)
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Misses != 0 || st.Lookups != int64(len(jobs)) {
		t.Fatalf("union was not fully warm: %+v", st)
	}

	cold := newTestRunner(t, RunnerOptions{Workers: 1})
	want, err := cold.Sweep(cfgs, ms)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("merged-union sweep output is not byte-identical to a cold run")
	}

	// The shard results concatenate into the single-run result list:
	// the partition changed where work ran, never what it computed.
	if !reflect.DeepEqual(append(append([]Result{}, resA...), resB...), want) {
		t.Fatal("shard result concatenation diverged from the unsharded sweep")
	}
}

// TestSweepShardPartition: every shard count partitions the job list —
// no job lost, none duplicated, order preserved.
func TestSweepShardPartition(t *testing.T) {
	t.Parallel()
	cfgs := []Config{Sconna(), AMM()}
	ms := models.Evaluated()[:2]
	want, err := memoryRunner(1).Sweep(cfgs, ms)
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{1, 2, 3, 5} {
		r := memoryRunner(0)
		var all []Result
		for i := 0; i < count; i++ {
			res, err := r.SweepShard(cfgs, ms, i, count)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, res...)
		}
		if !reflect.DeepEqual(all, want) {
			t.Fatalf("count=%d: concatenated shards diverge from the full sweep", count)
		}
	}
}
