package sckernel

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/quant"
)

// TestDotBatchMatchesSequentialDot: the slab API must be bit-identical
// to calling Dot vector by vector in slab order — same estimates, same
// ADC RNG advancement — including across consecutive DotBatch calls on
// one stateful engine.
func TestDotBatchMatchesSequentialDot(t *testing.T) {
	for _, ideal := range []bool{false, true} {
		cfg := testCfg(8, ideal)
		batched, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		scale := 1 << uint(cfg.Bits)
		length := 3*cfg.N + 7 // crosses chunk seams
		for round := 0; round < 3; round++ {
			dkv := make([]int, length)
			for i := range dkv {
				dkv[i] = rng.Intn(2*scale+1) - scale
			}
			var slab Slab
			var vecs [][]int
			for v := 0; v < 9; v++ {
				div := make([]int, length)
				for i := range div {
					div[i] = rng.Intn(scale + 1)
				}
				vecs = append(vecs, div)
			}
			slab = MakeSlab(vecs...)
			out := make([]int, slab.Len())
			if err := batched.DotBatch(slab, dkv, out); err != nil {
				t.Fatalf("round %d: DotBatch: %v", round, err)
			}
			for v, div := range vecs {
				if want := serial.Dot(div, dkv); out[v] != want {
					t.Fatalf("round %d ideal=%v vec %d: DotBatch %d != sequential Dot %d",
						round, ideal, v, out[v], want)
				}
			}
		}
	}
}

// TestEngineFactoryMatchesScalarFactory: the packed factory must derive
// shard seeds exactly as quant.SconnaEngineFactory, so engines at the
// same shard index realize the same noise stream as their scalar twin.
func TestEngineFactoryMatchesScalarFactory(t *testing.T) {
	cfg := testCfg(6, false)
	packedF := EngineFactory(cfg)
	scalarF := quant.SconnaEngineFactory(cfg)
	for _, shard := range []int{0, 1, 7} {
		pe, err := packedF(shard)
		if err != nil {
			t.Fatalf("packed factory(%d): %v", shard, err)
		}
		se, err := scalarF(shard)
		if err != nil {
			t.Fatalf("scalar factory(%d): %v", shard, err)
		}
		got := engineTrace(t, pe, cfg.Bits, cfg.N)
		want := engineTrace(t, se, cfg.Bits, cfg.N)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shard %d call %d: packed %d != scalar %d", shard, i, got[i], want[i])
			}
		}
	}
}

// TestEngineNames: the packed engine labels itself distinctly from the
// scalar plane in reports.
func TestEngineNames(t *testing.T) {
	for _, tc := range []struct {
		ideal bool
		want  string
	}{{false, "sconna-packed"}, {true, "sconna-packed-ideal-adc"}} {
		e, err := New(testCfg(4, tc.ideal))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() != tc.want {
			t.Fatalf("Name() = %q, want %q", e.Name(), tc.want)
		}
	}
}

// TestEngineConfigValidation: configs the scalar core rejects must be
// rejected here too — the packed plane is a drop-in, not a loosening.
func TestEngineConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*testing.T) bool
	}{
		{"bits too high", func(t *testing.T) bool {
			cfg := testCfg(8, false)
			cfg.Bits = 13
			_, err := New(cfg)
			return err != nil
		}},
		{"zero N", func(t *testing.T) bool {
			cfg := testCfg(8, false)
			cfg.N = 0
			_, err := New(cfg)
			return err != nil
		}},
		{"zero M", func(t *testing.T) bool {
			cfg := testCfg(8, false)
			cfg.M = 0
			_, err := New(cfg)
			return err != nil
		}},
		{"N beyond DWDM grid", func(t *testing.T) bool {
			cfg := testCfg(8, false)
			cfg.N = 100000
			_, err := New(cfg)
			return err != nil
		}},
	} {
		if !tc.mut(t) {
			t.Fatalf("%s: want error, got nil", tc.name)
		}
	}
}

// TestEngineOperandContract: out-of-range operands panic through Dot
// (the quantizer contract, matching quant.SconnaEngine) and error
// through DotLarge.
func TestEngineOperandContract(t *testing.T) {
	e, err := New(testCfg(4, true))
	if err != nil {
		t.Fatal(err)
	}
	scale := 1 << 4
	if _, _, _, err := e.DotLarge([]int{scale + 1}, []int{1}); err == nil {
		t.Fatal("over-range input: want error")
	}
	if _, _, _, err := e.DotLarge([]int{1}, []int{-scale - 1}); err == nil {
		t.Fatal("over-range weight: want error")
	}
	if _, _, _, err := e.DotLarge([]int{1, 2}, []int{1}); err == nil {
		t.Fatal("length mismatch: want error")
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Dot with invalid operands: want panic")
		} else if !strings.Contains(r.(string), "sckernel") {
			t.Fatalf("panic %v lacks package context", r)
		}
	}()
	e.Dot([]int{-1}, []int{1})
}

// TestPlaneSharing: PlaneFor returns one image per precision — the
// built-once-and-shared contract every pooled engine relies on.
func TestPlaneSharing(t *testing.T) {
	if PlaneFor(8) != PlaneFor(8) {
		t.Fatal("PlaneFor(8) built two images")
	}
	a, err := New(testCfg(8, false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testCfg(8, true))
	if err != nil {
		t.Fatal(err)
	}
	if a.plane != b.plane {
		t.Fatal("engines at one precision hold different planes")
	}
}

// TestZeroLengthDot: an empty vector is zero chunks, zero estimate and
// zero RNG draws — exactly the scalar DotLarge walk.
func TestZeroLengthDot(t *testing.T) {
	cfg := testCfg(6, false)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, exact, chunks, err := a.DotLarge(nil, nil)
	if err != nil || est != 0 || exact != 0 || chunks != 0 {
		t.Fatalf("empty DotLarge = (%d,%d,%d,%v), want zeros", est, exact, chunks, err)
	}
	// The empty call must not have advanced the RNGs: both engines now
	// produce identical noisy traces.
	got := engineTrace(t, a, cfg.Bits, cfg.N)
	want := engineTrace(t, b, cfg.Bits, cfg.N)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d after empty dot: %d != %d (empty dot drew noise)", i, got[i], want[i])
		}
	}
}
