// Package sckernel is the word-packed stochastic-computing compute
// plane: the serving-speed implementation of the SCONNA functional core.
//
// The scalar reference (core.VDPE.Dot over sc.OSMLUT.MulInts) walks a
// dot product lane by lane, each lane performing a LUT lookup and a
// bitstream.AndPopCount over a 2^B-bit stream pair. This package packs
// the LUT's operand streams into one contiguous []uint64 word matrix per
// (bits, generator) pair — the Plane, built once and shared by every
// engine — and computes the same signed dot products through fused
// AND+popcount kernels that touch 64 stream bits per instruction, with
// sign steering driven by a packed sign mask instead of a per-lane
// branch.
//
// The contract is bitwise pinning, the same pattern as ForwardNaive vs
// the GEMM lowering: every kernel here must produce exactly the counts
// the scalar reference produces — PosOnes, NegOnes, Exact, and (through
// Engine, which replays core.VDPC.DotLarge's chunk seams and ADC-noise
// draw order) Est. The scalar path stays in the tree as the pinned
// reference; the equivalence tier in this package's tests sweeps
// precisions, chunk seams and operand extremes asserting the two planes
// agree bit for bit.
package sckernel

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/bitstream"
)

// Plane is the packed LUT image for one (bits, generator-pair) point:
// the stream vectors of sc.NewOSMLUT laid out as contiguous word
// matrices, value v's stream occupying words [v*W, (v+1)*W). A Plane is
// immutable after construction and safe to share across any number of
// goroutines and engines; PlaneFor caches one per precision for the
// default Unary/Bresenham pairing the OSM LUT uses.
type Plane struct {
	// Bits is the operand precision B; streams carry L = 2^B bits.
	Bits int
	// L is the stream length in bits (2^Bits).
	L int
	// W is the packed stream width in 64-bit words.
	W int

	// iw, ww are the input-role and weight-role images: entry v at
	// [v*W:(v+1)*W], for v in [0, L] (L+1 entries; all-ones encodes
	// full scale, exactly like the scalar LUT).
	iw, ww []uint64

	// wpfx holds, for each weight entry, the popcount of every
	// word-boundary prefix of its stream: entry wb's prefixes occupy
	// [wb*(W+1), (wb+1)*(W+1)), wpfx[wb*(W+1)+q] counting the ones in
	// the first q words. Valid only alongside unaryInput.
	wpfx []uint32

	// wwp is the weight image re-laid at stride W+1 with a zero pad
	// word per row, indexed in lockstep with wpfx. The pad makes the
	// prefix kernel branchless: for ib = q*64 the partial-word mask is
	// zero, so reading the pad word (q = W when ib = L) contributes
	// nothing and no full-stream special case is needed. Valid only
	// alongside unaryInput.
	wwp []uint64

	// unaryInput records that the input-role generator is thermometer
	// coding, which makes AndPopCount(iStream[ib], w) a prefix popcount
	// of w — the O(1)-per-lane fast path DotCounts takes.
	unaryInput bool

	// analytic records that every weight stream additionally satisfies
	// the exact rate-coding prefix property (the first p bits of entry
	// wb carry exactly p*wb/L ones — Bresenham/PWM coding does, by
	// construction), verified bit for bit at build time. Under unary
	// inputs that collapses the lane product to ib*wb >> Bits, the
	// multiply-shift kernel DotCounts prefers; the stream images and
	// word kernels remain the pinned reference behind it.
	analytic bool
}

// signShift arithmetic-shifts an int down to its sign word (-1 or 0).
const signShift = bits.UintSize - 1

// NewPlane packs the LUT image for operand precision bits and the given
// generator pairing. Stream generation is byte-identical to
// sc.NewOSMLUT: entry v of each role is g.Generate(v, 2^bits).
func NewPlane(bitsN int, gi, gw bitstream.Generator) *Plane {
	if bitsN < 1 || bitsN > 16 {
		panic(fmt.Sprintf("sckernel: unsupported plane precision %d", bitsN))
	}
	l := 1 << uint(bitsN)
	w := (l + 63) / 64
	_, unary := gi.(bitstream.Unary)
	p := &Plane{
		Bits:       bitsN,
		L:          l,
		W:          w,
		iw:         make([]uint64, (l+1)*w),
		ww:         make([]uint64, (l+1)*w),
		unaryInput: unary,
	}
	for v := 0; v <= l; v++ {
		copy(p.iw[v*w:(v+1)*w], gi.Generate(v, l).Words())
		copy(p.ww[v*w:(v+1)*w], gw.Generate(v, l).Words())
	}
	if unary {
		p.wpfx = make([]uint32, (l+1)*(w+1))
		p.wwp = make([]uint64, (l+1)*(w+1))
		for v := 0; v <= l; v++ {
			var c uint32
			for q := 0; q < w; q++ {
				p.wpfx[v*(w+1)+q] = c
				p.wwp[v*(w+1)+q] = p.ww[v*w+q]
				c += uint32(bits.OnesCount64(p.ww[v*w+q]))
			}
			p.wpfx[v*(w+1)+w] = c
			// p.wwp[v*(w+1)+w] stays zero: the pad word.
		}
		p.analytic = p.weightsRateExact()
	}
	return p
}

// weightsRateExact verifies, one stream bit at a time, that every weight
// entry wb carries exactly floor(p*wb/L) ones in its first p bits — the
// exact rate-coding property that licenses the analytic multiply-shift
// kernel. Run once at plane build; any generator that breaks it (e.g.
// LFSR) simply keeps the prefix/word kernels.
func (p *Plane) weightsRateExact() bool {
	l, w := p.L, p.W
	for v := 0; v <= l; v++ {
		row := p.ww[v*w : (v+1)*w]
		c := 0
		for q := 0; q <= l; q++ {
			if c != q*v>>uint(p.Bits) {
				return false
			}
			if q < l && row[q>>6]&(1<<(uint(q)&63)) != 0 {
				c++
			}
		}
	}
	return true
}

// planeCache shares one default-pair Plane per precision across the
// process: every engine of a pool, every serving model at the same
// operand precision, reads the same immutable image.
var planeCache struct {
	mu sync.Mutex
	m  map[int]*Plane
}

// PlaneFor returns the shared Plane for the default OSM LUT pairing
// (unary inputs, Bresenham weights) at the given precision, building it
// on first use.
func PlaneFor(bitsN int) *Plane {
	planeCache.mu.Lock()
	defer planeCache.mu.Unlock()
	if planeCache.m == nil {
		planeCache.m = make(map[int]*Plane)
	}
	p, ok := planeCache.m[bitsN]
	if !ok {
		p = NewPlane(bitsN, bitstream.Unary{}, bitstream.Bresenham{})
		planeCache.m[bitsN] = p
	}
	return p
}

// rangeErr reports the scalar reference's operand contract violation.
func (p *Plane) rangeErr(lane, ib, wb int) error {
	return fmt.Errorf("sckernel: operand out of range at lane %d (i=%d w=%d)", lane, ib, wb)
}

// DotCounts computes the signed stochastic dot product of an unsigned
// DIV against a signed DKV (both values bounded by 2^Bits) and returns
// the two accumulator counts — exactly what the scalar reference's pair
// of photo-charge accumulators integrate in core.VDPE.Dot. On the
// default unary-input plane it runs the prefix-popcount kernel (O(1)
// words per lane); otherwise it falls back to the fused word walk of
// DotCountsGeneric. Both are bit-identical to the scalar path.
func (p *Plane) DotCounts(div, dkv []int) (pos, neg int, err error) {
	if !p.unaryInput {
		return p.DotCountsGeneric(div, dkv)
	}
	if len(div) != len(dkv) {
		return 0, 0, fmt.Errorf("sckernel: DIV/DKV length mismatch %d vs %d", len(div), len(dkv))
	}
	dkv = dkv[:len(div)]
	l := p.L
	if p.analytic {
		// Exact rate coding: AndPopCount(unary(ib), wStream[wb]) ==
		// ib*wb >> Bits for every pair (verified against the stream
		// image at plane build) — one multiply per lane, no loads.
		shift := uint(p.Bits)
		for i, ib := range div {
			// Arithmetic sign extraction instead of a data-dependent
			// branch: s is all-ones for negative weights, steering c
			// into the matching accumulator via masks.
			wb := dkv[i]
			s := wb >> signShift
			wb = (wb ^ s) - s
			if uint(ib) > uint(l) || uint(wb) > uint(l) {
				return 0, 0, p.rangeErr(i, div[i], dkv[i])
			}
			c := ib * wb >> shift
			neg += c & s
			pos += c &^ s
		}
		return pos, neg, nil
	}
	w1 := p.W + 1
	wwp, wpfx := p.wwp, p.wpfx
	for i, ib := range div {
		wb := dkv[i]
		s := wb >> signShift
		wb = (wb ^ s) - s
		if uint(ib) > uint(l) || uint(wb) > uint(l) {
			return 0, 0, p.rangeErr(i, div[i], dkv[i])
		}
		// AndPopCount(unary(ib), wStream[wb]) is the ones count of the
		// first ib stream bits: whole words come from the prefix table,
		// the partial word from one masked popcount (of the zero pad
		// word when ib lands on a word boundary — contributing nothing).
		base := wb*w1 + ib>>6
		c := int(wpfx[base]) + bits.OnesCount64(wwp[base]&(1<<(uint(ib)&63)-1))
		neg += c & s
		pos += c &^ s
	}
	return pos, neg, nil
}

// DotCountsGeneric is the image-walking kernel: for each lane it ANDs
// the two packed stream rows word by word, popcounting 64 product bits
// per instruction. It works for any generator pairing and is the
// packed-plane reference the prefix fast path is pinned against.
func (p *Plane) DotCountsGeneric(div, dkv []int) (pos, neg int, err error) {
	if len(div) != len(dkv) {
		return 0, 0, fmt.Errorf("sckernel: DIV/DKV length mismatch %d vs %d", len(div), len(dkv))
	}
	l, w := p.L, p.W
	for i, ib := range div {
		wb := dkv[i]
		negw := wb < 0
		if negw {
			wb = -wb
		}
		if uint(ib) > uint(l) || uint(wb) > uint(l) {
			return 0, 0, p.rangeErr(i, div[i], dkv[i])
		}
		iw := p.iw[ib*w : ib*w+w]
		wwRow := p.ww[wb*w : wb*w+w : wb*w+w]
		c := 0
		for j, word := range iw {
			c += bits.OnesCount64(word & wwRow[j])
		}
		if negw {
			neg += c
		} else {
			pos += c
		}
	}
	return pos, neg, nil
}

// PackedDKV is a weight operand vector in packed form: unsigned stream
// magnitudes plus a packed sign mask (bit i set when lane i is
// negative). Packing validates the magnitudes once, so kernels applying
// the same weight vector to many DIVs — the conv inner loop the serving
// plane lowers onto — skip the per-lane sign branch and range check on
// every reuse.
type PackedDKV struct {
	mags []int
	sign []uint64
	n    int
}

// Len returns the packed vector's lane count.
func (w *PackedDKV) Len() int { return w.n }

// PackDKV packs dkv into dst, reusing its buffers. Magnitudes must be
// within [0, 2^Bits].
func (p *Plane) PackDKV(dst *PackedDKV, dkv []int) error {
	n := len(dkv)
	dst.n = n
	if cap(dst.mags) < n {
		dst.mags = make([]int, n)
	}
	dst.mags = dst.mags[:n]
	nw := (n + 63) / 64
	if cap(dst.sign) < nw {
		dst.sign = make([]uint64, nw)
	}
	dst.sign = dst.sign[:nw]
	for i := range dst.sign {
		dst.sign[i] = 0
	}
	for i, wb := range dkv {
		if wb < 0 {
			dst.sign[i>>6] |= 1 << (uint(i) & 63)
			wb = -wb
		}
		if wb > p.L {
			return fmt.Errorf("sckernel: weight magnitude out of range at lane %d (w=%d)", i, dkv[i])
		}
		dst.mags[i] = wb
	}
	return nil
}

// DotPacked is DotCounts against a pre-packed weight vector: sign
// steering reads the packed mask (branch-free accumulator select) and
// only the DIV side is range-checked per call.
func (p *Plane) DotPacked(div []int, w *PackedDKV) (pos, neg int, err error) {
	if len(div) != w.n {
		return 0, 0, fmt.Errorf("sckernel: DIV/DKV length mismatch %d vs %d", len(div), w.n)
	}
	l := p.L
	if !p.unaryInput {
		ws := p.W
		for i, ib := range div {
			if uint(ib) > uint(l) {
				return 0, 0, fmt.Errorf("sckernel: input out of range at lane %d (i=%d)", i, ib)
			}
			wb := w.mags[i]
			iw := p.iw[ib*ws : ib*ws+ws]
			wwRow := p.ww[wb*ws : wb*ws+ws : wb*ws+ws]
			c := 0
			for j, word := range iw {
				c += bits.OnesCount64(word & wwRow[j])
			}
			s := int(w.sign[i>>6]>>(uint(i)&63)) & 1
			neg += c & -s
			pos += c & (s - 1)
		}
		return pos, neg, nil
	}
	mags := w.mags[:len(div)]
	if p.analytic {
		shift := uint(p.Bits)
		// Blocked walk: one sign word covers 64 lanes; shifting it down
		// a bit per lane turns the steering-mask derivation into two
		// single-bit ops instead of a per-lane variable shift.
		for blk := 0; blk < len(div); blk += 64 {
			end := blk + 64
			if end > len(div) {
				end = len(div)
			}
			sw := w.sign[blk>>6]
			for i := blk; i < end; i++ {
				ib := div[i]
				if uint(ib) > uint(l) {
					return 0, 0, fmt.Errorf("sckernel: input out of range at lane %d (i=%d)", i, ib)
				}
				c := ib * mags[i] >> shift
				s := -int(sw & 1)
				sw >>= 1
				neg += c & s
				pos += c &^ s
			}
		}
		return pos, neg, nil
	}
	w1 := p.W + 1
	wwp, wpfx := p.wwp, p.wpfx
	for i, ib := range div {
		if uint(ib) > uint(l) {
			return 0, 0, fmt.Errorf("sckernel: input out of range at lane %d (i=%d)", i, ib)
		}
		base := mags[i]*w1 + ib>>6
		c := int(wpfx[base]) + bits.OnesCount64(wwp[base]&(1<<(uint(ib)&63)-1))
		s := int(w.sign[i>>6]>>(uint(i)&63)) & 1
		neg += c & -s
		pos += c & (s - 1)
	}
	return pos, neg, nil
}
