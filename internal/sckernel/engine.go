package sckernel

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/photonics"
	"repro/internal/quant"
)

// Engine is the word-packed SC serving engine: a quant.DotEngine that
// computes exactly what quant.SconnaEngine computes — same chunk seams
// as core.VDPC.DotLarge, same per-chunk PCA capacity check, same
// ADC-noise draw order from identically seeded per-VDPE RNGs — through
// the packed Plane kernels instead of the per-lane scalar walk.
//
// Like the scalar engine it replaces, an Engine is stateful (its ADC
// RNGs advance two draws per psum chunk) and must be owned by exactly
// one goroutine; the serving plane's pool and the evaluation shards
// already enforce that ownership. The Plane behind it is immutable and
// shared freely.
type Engine struct {
	cfg     core.Config
	plane   *Plane
	rngs    []*rand.Rand
	sigma   float64
	maxOnes int

	// packs is the DotBatch weight-pack scratch: one packed DKV per psum
	// chunk, rebuilt per call, retained across calls so a pooled engine
	// allocates nothing on the serving hot path.
	packs []PackedDKV
}

// New builds a packed engine for the functional configuration cfg,
// enforcing the same operating-point contract as core.NewVDPE (precision
// bounds, positive geometry, DWDM grid capacity) so that any config the
// scalar engine accepts — and only those — builds a packed engine.
func New(cfg core.Config) (*Engine, error) {
	if cfg.Bits < 1 || cfg.Bits > 12 {
		return nil, fmt.Errorf("sckernel: unsupported precision B=%d", cfg.Bits)
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("sckernel: VDPE size N=%d must be positive", cfg.N)
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("sckernel: VDPC size M=%d must be positive", cfg.M)
	}
	probe := photonics.NewMRR(cfg.BaseWavelengthNM, cfg.FWHMNM)
	if maxN := probe.ChannelCount(cfg.ChannelSpacingNM); cfg.N > maxN {
		return nil, fmt.Errorf("sckernel: N=%d exceeds FSR-limited channel count %d", cfg.N, maxN)
	}
	e := &Engine{
		cfg:     cfg,
		plane:   PlaneFor(cfg.Bits),
		maxOnes: cfg.N * (1 << uint(cfg.Bits)),
	}
	// The converter model is copied from core.NewVDPE verbatim: the MAPE
	// realized as zero-mean Gaussian relative noise with
	// E|eps| = sigma*sqrt(2/pi), one RNG per mirrored VDPE seeded
	// ADCSeed + 2*i — the draw streams Est equivalence is pinned to.
	mape := cfg.ADCMAPEPct
	if mape == 0 && !cfg.IdealADC {
		mape = 1.3
	}
	e.sigma = mape / 100 * math.Sqrt(math.Pi/2)
	e.rngs = make([]*rand.Rand, cfg.M)
	for i := range e.rngs {
		e.rngs[i] = rand.New(rand.NewSource(cfg.ADCSeed + int64(2*i)))
	}
	return e, nil
}

// Name implements quant.DotEngine.
func (e *Engine) Name() string {
	if e.cfg.IdealADC {
		return "sconna-packed-ideal-adc"
	}
	return "sconna-packed"
}

// SkipsZeros implements quant.ZeroSkipper: with an ideal ADC, dropping
// zero-DIV lanes is bit-exact. Lanes are independent (a zero activation
// lights no stream bits, so its pos/neg accumulator contribution is
// exactly zero), the ideal conversion is (pos-neg)*scale with no RNG
// draw — so per-chunk partials sum to the same total however the chunk
// seams fall on the shorter vector — and the PCA capacity check cannot
// fire on a lane subset when it could not fire on the full set (pos and
// neg only shrink, and both are bounded by N*2^B = maxOnes regardless).
// A noisy ADC breaks all of this: its RNG advances two draws per chunk,
// so the engine then requires the dense call sequence and reports false.
func (e *Engine) SkipsZeros() bool { return e.cfg.IdealADC }

// Dot implements quant.DotEngine with the packed kernels. Operand
// contract violations are programming errors in the quantizer, matching
// quant.SconnaEngine.Dot's panic semantics.
func (e *Engine) Dot(div, dkv []int) int {
	est, _, _, err := e.DotLarge(div, dkv)
	if err != nil {
		panic(fmt.Sprintf("sckernel: packed dot failed: %v", err))
	}
	return est
}

// DotLarge mirrors core.VDPC.DotLarge on the packed plane: the vectors
// decompose into ceil(S/N) psum chunks, chunk c runs on mirrored VDPE
// c mod M (whose RNG supplies that chunk's two ADC draws), and the
// partial estimates reduce digitally. Returned values are bit-identical
// to the scalar core, chunk for chunk.
func (e *Engine) DotLarge(div, dkv []int) (est, exact, chunks int, err error) {
	if len(div) != len(dkv) {
		return 0, 0, 0, fmt.Errorf("sckernel: vector length mismatch %d vs %d", len(div), len(dkv))
	}
	n := e.cfg.N
	scale := 1 << uint(e.cfg.Bits)
	for off := 0; off < len(div); off += n {
		end := off + n
		if end > len(div) {
			end = len(div)
		}
		pos, neg, derr := e.plane.DotCounts(div[off:end], dkv[off:end])
		if derr != nil {
			return 0, 0, 0, derr
		}
		cest, cexact, cerr := e.convert(pos, neg, chunks, scale)
		if cerr != nil {
			return 0, 0, 0, cerr
		}
		est += cest
		exact += cexact
		chunks++
	}
	return est, exact, chunks, nil
}

// convert applies the PCA capacity check and the ADC conversion to one
// chunk's accumulator counts — the post-kernel half of core.VDPE.Dot,
// floating-point op for floating-point op.
func (e *Engine) convert(pos, neg, chunk, scale int) (est, exact int, err error) {
	if pos > e.maxOnes || neg > e.maxOnes {
		return 0, 0, fmt.Errorf("sckernel: accumulation %d/%d exceeds PCA capacity %d", pos, neg, e.maxOnes)
	}
	exact = (pos - neg) * scale
	if e.cfg.IdealADC {
		return exact, exact, nil
	}
	rng := e.rngs[chunk%len(e.rngs)]
	ep := float64(pos) * (1 + rng.NormFloat64()*e.sigma)
	en := float64(neg) * (1 + rng.NormFloat64()*e.sigma)
	return int(math.Round(ep-en)) * scale, exact, nil
}

// Chunks returns how many psum chunks a vector of length s decomposes
// into, matching quant.(*SconnaEngine).Chunks.
func (e *Engine) Chunks(s int) int {
	n := e.cfg.N
	return (s + n - 1) / n
}

// Slab is a flat micro-batch of operand vectors: vector i occupies
// Data[Off[i]:Off[i+1]]. It is the layer-shaped operand form the
// quantized lowering already gathers (quant.Scratch's div/ds pair), so a
// batched layer hands its whole pixel slab to the engine in one call.
type Slab struct {
	Data []int
	Off  []int
}

// MakeSlab builds a Slab from discrete vectors (test and example
// convenience; hot paths fill Data/Off directly).
func MakeSlab(vecs ...[]int) Slab {
	s := Slab{Off: make([]int, 1, len(vecs)+1)}
	for _, v := range vecs {
		s.Data = append(s.Data, v...)
		s.Off = append(s.Off, len(s.Data))
	}
	return s
}

// Len returns the number of vectors in the slab.
func (s Slab) Len() int {
	if len(s.Off) == 0 {
		return 0
	}
	return len(s.Off) - 1
}

// At returns vector i.
func (s Slab) At(i int) []int { return s.Data[s.Off[i]:s.Off[i+1]] }

// DotBatch runs one shared signed weight vector against every DIV in
// the slab, writing the estimates to out (whose length must equal the
// slab's). The weight vector is packed once per call — magnitudes
// validated, signs lifted into a packed mask, one PackedDKV per psum
// chunk — and reused across the whole slab, which is the batched-layer
// amortization: the serving plane applies one conv weight row to every
// output pixel of a micro-batch.
//
// Call order is slab order, so the engine's ADC-noise stream advances
// exactly as it would under sequential Dot calls — DotBatch is
// bit-identical to that loop (pinned by the batch equivalence test) and
// exists purely to shed the per-call weight re-validation.
func (e *Engine) DotBatch(divs Slab, dkv []int, out []int) error {
	nvec := divs.Len()
	if len(out) != nvec {
		return fmt.Errorf("sckernel: out length %d, want %d", len(out), nvec)
	}
	n := e.cfg.N
	scale := 1 << uint(e.cfg.Bits)
	nchunks := e.Chunks(len(dkv))
	for len(e.packs) < nchunks {
		e.packs = append(e.packs, PackedDKV{})
	}
	for c := 0; c < nchunks; c++ {
		end := (c + 1) * n
		if end > len(dkv) {
			end = len(dkv)
		}
		if err := e.plane.PackDKV(&e.packs[c], dkv[c*n:end]); err != nil {
			return err
		}
	}
	for v := 0; v < nvec; v++ {
		div := divs.At(v)
		if len(div) != len(dkv) {
			return fmt.Errorf("sckernel: slab vector %d length %d, want %d", v, len(div), len(dkv))
		}
		est := 0
		for c := 0; c < nchunks; c++ {
			end := (c + 1) * n
			if end > len(div) {
				end = len(div)
			}
			pos, neg, derr := e.plane.DotPacked(div[c*n:end], &e.packs[c])
			if derr != nil {
				return derr
			}
			cest, _, cerr := e.convert(pos, neg, c, scale)
			if cerr != nil {
				return cerr
			}
			est += cest
		}
		out[v] = est
	}
	return nil
}

// EngineFactory returns a quant.EngineFactory building one packed
// engine per shard, with the shard-seed derivation copied from
// quant.SconnaEngineFactory — so swapping the scalar factory for this
// one changes the arithmetic substrate and nothing else: evaluation
// shards and deterministic-serving requests realize the identical ADC
// noise streams, and every result stays bit-identical to the scalar
// plane (pinned by the serving equivalence tests).
func EngineFactory(cfg core.Config) quant.EngineFactory {
	return func(shard int) (quant.DotEngine, error) {
		scfg := cfg
		scfg.ADCSeed = cfg.ADCSeed + int64(shard)*1000003
		return New(scfg)
	}
}
