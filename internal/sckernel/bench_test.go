package sckernel_test

import (
	"testing"

	"repro/internal/scbench"
)

// Standard-suite wrappers over the shared bench bodies; cmd/benchsc runs
// the same bodies through testing.Benchmark for BENCH_sc.json.

func BenchmarkSCScalarDot(b *testing.B)          { scbench.ScalarDot(b) }
func BenchmarkSCPackedDot(b *testing.B)          { scbench.PackedDot(b) }
func BenchmarkSCPackedDotBatch(b *testing.B)     { scbench.PackedDotBatch(b) }
func BenchmarkSCScalarDotMaxB(b *testing.B)      { scbench.ScalarDotMaxB(b) }
func BenchmarkSCPackedDotMaxB(b *testing.B)      { scbench.PackedDotMaxB(b) }
func BenchmarkSCKernelCountsPacked(b *testing.B) { scbench.KernelCountsPacked(b) }
func BenchmarkSCKernelCountsGeneric(b *testing.B) {
	scbench.KernelCountsGeneric(b)
}
