package sckernel

import (
	"fmt"
	"math/bits"
)

// FaultMask is the packed form of core's lane faults: two lane bitmasks,
// one for OSM lanes stuck dark (product stream forced to all zeros) and
// one for lanes stuck lit (forced to all ones). It is the kernel-plane
// counterpart of core.FaultyVDPE, pinned bitwise against it by the fault
// equivalence tests.
type FaultMask struct {
	dark, lit []uint64
	n         int
}

// NewFaultMask returns an empty mask over n lanes.
func NewFaultMask(n int) *FaultMask {
	if n < 0 {
		panic(fmt.Sprintf("sckernel: negative fault mask size %d", n))
	}
	nw := (n + 63) / 64
	return &FaultMask{dark: make([]uint64, nw), lit: make([]uint64, nw), n: n}
}

// StuckDark pins lane to all-zeros output. A lane may hold only one
// fault; the most recent call wins, matching core.InjectFaults's
// last-write-wins map semantics.
func (m *FaultMask) StuckDark(lane int) *FaultMask {
	m.check(lane)
	m.dark[lane>>6] |= 1 << (uint(lane) & 63)
	m.lit[lane>>6] &^= 1 << (uint(lane) & 63)
	return m
}

// StuckLit pins lane to all-ones output.
func (m *FaultMask) StuckLit(lane int) *FaultMask {
	m.check(lane)
	m.lit[lane>>6] |= 1 << (uint(lane) & 63)
	m.dark[lane>>6] &^= 1 << (uint(lane) & 63)
	return m
}

func (m *FaultMask) check(lane int) {
	if lane < 0 || lane >= m.n {
		panic(fmt.Sprintf("sckernel: fault lane %d out of range [0,%d)", lane, m.n))
	}
}

// Count returns how many lanes carry a fault.
func (m *FaultMask) Count() int {
	c := 0
	for i := range m.dark {
		c += bits.OnesCount64(m.dark[i]) + bits.OnesCount64(m.lit[i])
	}
	return c
}

// DotCountsFaulty is DotCounts with the fault mask applied: a stuck-dark
// lane contributes zero ones, a stuck-lit lane contributes a full stream
// of 2^Bits ones to its sign's accumulator — exactly the substitution
// core.FaultyVDPE.Dot performs after validating the lane's operands.
func (p *Plane) DotCountsFaulty(div, dkv []int, m *FaultMask) (pos, neg int, err error) {
	if len(div) != len(dkv) {
		return 0, 0, fmt.Errorf("sckernel: DIV/DKV length mismatch %d vs %d", len(div), len(dkv))
	}
	if len(div) > m.n {
		return 0, 0, fmt.Errorf("sckernel: vector size %d exceeds fault mask size %d", len(div), m.n)
	}
	l, w := p.L, p.W
	ww, wpfx := p.ww, p.wpfx
	for i, ib := range div {
		wb := dkv[i]
		negw := wb < 0
		if negw {
			wb = -wb
		}
		// Operands are validated before the fault substitutes the count,
		// exactly as the scalar FaultyVDPE does.
		if uint(ib) > uint(l) || uint(wb) > uint(l) {
			return 0, 0, p.rangeErr(i, div[i], dkv[i])
		}
		var c int
		bit := uint(i) & 63
		switch {
		case m.dark[i>>6]>>bit&1 == 1:
			c = 0
		case m.lit[i>>6]>>bit&1 == 1:
			c = l
		case !p.unaryInput:
			iw := p.iw[ib*w : ib*w+w]
			wwRow := ww[wb*w : wb*w+w : wb*w+w]
			for j, word := range iw {
				c += bits.OnesCount64(word & wwRow[j])
			}
		default:
			if q := ib >> 6; q == w {
				c = int(wpfx[wb*(w+1)+w])
			} else {
				c = int(wpfx[wb*(w+1)+q]) +
					bits.OnesCount64(ww[wb*w+q]&(1<<(uint(ib)&63)-1))
			}
		}
		if negw {
			neg += c
		} else {
			pos += c
		}
	}
	return pos, neg, nil
}
