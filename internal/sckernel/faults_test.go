package sckernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// faultSpec mirrors a core fault list onto a packed FaultMask.
type faultSpec struct {
	name   string
	faults []core.Fault
}

func (fs faultSpec) mask(n int) *FaultMask {
	m := NewFaultMask(n)
	for _, f := range fs.faults {
		if f.Kind == core.StuckDark {
			m.StuckDark(f.Lane)
		} else {
			m.StuckLit(f.Lane)
		}
	}
	return m
}

// TestFaultyVDPEMatchesPackedKernels is the real equivalence test the
// faults plane was missing: core.FaultyVDPE.Dot against the packed
// fault kernel, PosOnes/NegOnes/Exact bitwise, and Est reconstructed
// through FaultyVDPE's own converter walk (its truncating int(ep-en)
// conversion, reproduced draw for draw from the same seed).
func TestFaultyVDPEMatchesPackedKernels(t *testing.T) {
	specs := []faultSpec{
		{name: "none"},
		{name: "dark-0", faults: []core.Fault{{Lane: 0, Kind: core.StuckDark}}},
		{name: "lit-3", faults: []core.Fault{{Lane: 3, Kind: core.StuckLit}}},
		{name: "dark-1-lit-5", faults: []core.Fault{
			{Lane: 1, Kind: core.StuckDark}, {Lane: 5, Kind: core.StuckLit}}},
		{name: "all-dark", faults: func() []core.Fault {
			var fs []core.Fault
			for lane := 0; lane < 8; lane++ {
				fs = append(fs, core.Fault{Lane: lane, Kind: core.StuckDark})
			}
			return fs
		}()},
	}
	for _, bits := range []int{4, 8} {
		for _, ideal := range []bool{false, true} {
			cfg := testCfg(bits, ideal)
			cfg.M = 1
			scale := 1 << uint(bits)
			for _, spec := range specs {
				vdpe, err := core.NewVDPE(cfg)
				if err != nil {
					t.Fatal(err)
				}
				faulty, err := vdpe.InjectFaults(spec.faults...)
				if err != nil {
					t.Fatal(err)
				}
				p := PlaneFor(bits)
				mask := spec.mask(cfg.N)
				if got, want := mask.Count(), len(spec.faults); got != want {
					t.Fatalf("%s: mask count %d != %d", spec.name, got, want)
				}
				// The packed side reconstructs FaultyVDPE's converter:
				// same seed, same sigma derivation, same truncating
				// conversion — so Est equivalence pins that quirk too.
				rng := rand.New(rand.NewSource(cfg.ADCSeed))
				mape := cfg.ADCMAPEPct
				if mape == 0 && !cfg.IdealADC {
					mape = 1.3
				}
				sigma := mape / 100 * math.Sqrt(math.Pi/2)
				opRng := rand.New(rand.NewSource(int64(13*bits) + int64(len(spec.faults))))
				for call := 0; call < 6; call++ {
					div := make([]int, cfg.N)
					dkv := make([]int, cfg.N)
					for i := range div {
						div[i] = opRng.Intn(scale + 1)
						dkv[i] = opRng.Intn(2*scale+1) - scale
					}
					ref, err := faulty.Dot(div, dkv)
					if err != nil {
						t.Fatalf("%s call %d: FaultyVDPE.Dot: %v", spec.name, call, err)
					}
					pos, neg, err := p.DotCountsFaulty(div, dkv, mask)
					if err != nil {
						t.Fatalf("%s call %d: DotCountsFaulty: %v", spec.name, call, err)
					}
					if pos != ref.PosOnes || neg != ref.NegOnes {
						t.Fatalf("B=%d %s call %d: packed counts (%d,%d) != FaultyVDPE (%d,%d)",
							bits, spec.name, call, pos, neg, ref.PosOnes, ref.NegOnes)
					}
					exact := (pos - neg) * scale
					if exact != ref.Exact {
						t.Fatalf("B=%d %s call %d: exact %d != %d", bits, spec.name, call, exact, ref.Exact)
					}
					est := exact
					if !cfg.IdealADC {
						ep := float64(pos) * (1 + rng.NormFloat64()*sigma)
						en := float64(neg) * (1 + rng.NormFloat64()*sigma)
						est = int(ep-en) * scale
					}
					if est != ref.Est {
						t.Fatalf("B=%d ideal=%v %s call %d: est %d != FaultyVDPE %d",
							bits, ideal, spec.name, call, est, ref.Est)
					}
				}
			}
		}
	}
}

// TestFaultDegradationBound: unary stochastic encoding bounds every
// single lane fault's damage by WorstCaseLaneError, independent of
// which lane fails — the Section II-D graceful-degradation property,
// demonstrated here on the packed kernels across every lane and both
// fault kinds.
func TestFaultDegradationBound(t *testing.T) {
	cfg := testCfg(6, true)
	cfg.M = 1
	vdpe, err := core.NewVDPE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bound := vdpe.WorstCaseLaneError()
	scale := 1 << uint(cfg.Bits)
	p := PlaneFor(cfg.Bits)
	rng := rand.New(rand.NewSource(99))
	div := make([]int, cfg.N)
	dkv := make([]int, cfg.N)
	for i := range div {
		div[i] = rng.Intn(scale + 1)
		dkv[i] = rng.Intn(2*scale+1) - scale
	}
	pos0, neg0, err := p.DotCounts(div, dkv)
	if err != nil {
		t.Fatal(err)
	}
	clean := (pos0 - neg0) * scale
	for lane := 0; lane < cfg.N; lane++ {
		for _, kind := range []core.FaultKind{core.StuckDark, core.StuckLit} {
			mask := (faultSpec{faults: []core.Fault{{Lane: lane, Kind: kind}}}).mask(cfg.N)
			pos, neg, err := p.DotCountsFaulty(div, dkv, mask)
			if err != nil {
				t.Fatal(err)
			}
			got := (pos - neg) * scale
			if diff := got - clean; diff > bound || diff < -bound {
				t.Fatalf("lane %d %v: degradation %d exceeds worst-case bound %d",
					lane, kind, diff, bound)
			}
		}
	}
	// The bound is tight: a stuck-lit lane whose fault-free product is
	// zero injects exactly scale*scale.
	zeros := make([]int, cfg.N)
	mask := (faultSpec{faults: []core.Fault{{Lane: 2, Kind: core.StuckLit}}}).mask(cfg.N)
	pos, neg, err := p.DotCountsFaulty(zeros, zeros, mask)
	if err != nil {
		t.Fatal(err)
	}
	if got := (pos - neg) * scale; got != bound {
		t.Fatalf("stuck-lit on dark lane: %d, want exactly the bound %d", got, bound)
	}
}
