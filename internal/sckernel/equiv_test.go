package sckernel

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/quant"
	"repro/internal/sc"
)

// testCfg is the equivalence operating point: a small VDPE so the seam
// lengths (N-1, N, N+1, 3N+7) stay cheap at every precision, M=3 so the
// chunk walk crosses mirrored-VDPE RNG boundaries.
func testCfg(bits int, ideal bool) core.Config {
	cfg := core.DefaultConfig()
	cfg.Bits = bits
	cfg.N = 8
	cfg.M = 3
	cfg.ADCSeed = 77
	cfg.IdealADC = ideal
	return cfg
}

// seamLengths are the chunk-seam vector lengths of the sweep, relative
// to the VDPE size n.
func seamLengths(n int) []int {
	return []int{1, n - 1, n, n + 1, 3*n + 7}
}

// operandCase is one named (DIV, DKV) pair of the sweep.
type operandCase struct {
	name     string
	div, dkv []int
}

// operandCases builds the sweep's operand patterns for a given stream
// scale and vector length: all-zero, max-magnitude at both signs,
// alternating full-scale signs, and seeded random draws (mixed signs,
// full operand range including the 2^B full-scale value).
func operandCases(scale, length int, seed int64) []operandCase {
	constCase := func(name string, iv, wv int) operandCase {
		c := operandCase{name: name, div: make([]int, length), dkv: make([]int, length)}
		for i := range c.div {
			c.div[i] = iv
			c.dkv[i] = wv
		}
		return c
	}
	cases := []operandCase{
		constCase("all-zero", 0, 0),
		constCase("max-mag-pos", scale, scale),
		constCase("max-mag-neg", scale, -scale),
	}
	alt := constCase("alt-sign-max", scale, scale)
	for i := range alt.dkv {
		if i%2 == 1 {
			alt.dkv[i] = -scale
		}
	}
	cases = append(cases, alt)
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < 3; r++ {
		c := operandCase{name: fmt.Sprintf("random-%d", r), div: make([]int, length), dkv: make([]int, length)}
		for i := range c.div {
			c.div[i] = rng.Intn(scale + 1)
			c.dkv[i] = rng.Intn(2*scale+1) - scale
		}
		cases = append(cases, c)
	}
	return cases
}

// TestKernelCountsExhaustive sweeps every (input, weight-magnitude) pair
// at every precision B in 2..8, asserting all packed kernel tiers — the
// analytic multiply-shift path the default plane takes, the
// prefix-popcount path (exercised on a private plane with the analytic
// tier disabled), the generic fused word walk, and the pre-packed
// variants of each — reproduce the scalar LUT multiply
// (sc.OSMLUT.MulInts) count for count: the per-lane bitwise pin
// underneath everything else in this tier.
func TestKernelCountsExhaustive(t *testing.T) {
	for bits := 2; bits <= 8; bits++ {
		if testing.Short() && bits > 6 {
			break
		}
		lut := sc.NewOSMLUT(bits)
		p := PlaneFor(bits)
		if !p.analytic {
			t.Fatalf("B=%d: default Bresenham plane failed rate-exactness verification", bits)
		}
		// A private plane with the analytic tier masked off routes
		// DotCounts/DotPacked through the prefix-popcount kernel.
		pfx := NewPlane(bits, bitstream.Unary{}, bitstream.Bresenham{})
		pfx.analytic = false
		l := p.L
		var packed, pfxPacked PackedDKV
		for ib := 0; ib <= l; ib++ {
			for wb := 0; wb <= l; wb++ {
				want := lut.MulInts(ib, wb)
				for _, sign := range []int{1, -1} {
					div, dkv := []int{ib}, []int{sign * wb}
					wantPos, wantNeg := want, 0
					if sign < 0 && wb != 0 {
						// -0 is 0: sign steering keys off wb<0.
						wantPos, wantNeg = 0, want
					}
					pos, neg, err := p.DotCounts(div, dkv)
					if err != nil {
						t.Fatalf("B=%d DotCounts(%d,%d): %v", bits, ib, sign*wb, err)
					}
					fpos, fneg, err := pfx.DotCounts(div, dkv)
					if err != nil {
						t.Fatalf("B=%d prefix DotCounts(%d,%d): %v", bits, ib, sign*wb, err)
					}
					gpos, gneg, err := p.DotCountsGeneric(div, dkv)
					if err != nil {
						t.Fatalf("B=%d DotCountsGeneric(%d,%d): %v", bits, ib, sign*wb, err)
					}
					if err := p.PackDKV(&packed, dkv); err != nil {
						t.Fatalf("B=%d PackDKV(%d): %v", bits, sign*wb, err)
					}
					ppos, pneg, err := p.DotPacked(div, &packed)
					if err != nil {
						t.Fatalf("B=%d DotPacked(%d,%d): %v", bits, ib, sign*wb, err)
					}
					if err := pfx.PackDKV(&pfxPacked, dkv); err != nil {
						t.Fatalf("B=%d prefix PackDKV(%d): %v", bits, sign*wb, err)
					}
					qpos, qneg, err := pfx.DotPacked(div, &pfxPacked)
					if err != nil {
						t.Fatalf("B=%d prefix DotPacked(%d,%d): %v", bits, ib, sign*wb, err)
					}
					if pos != wantPos || neg != wantNeg ||
						fpos != wantPos || fneg != wantNeg ||
						gpos != wantPos || gneg != wantNeg ||
						ppos != wantPos || pneg != wantNeg ||
						qpos != wantPos || qneg != wantNeg {
						t.Fatalf("B=%d ib=%d wb=%d: kernel tiers (%d,%d)/(%d,%d)/(%d,%d)/(%d,%d)/(%d,%d) != scalar (%d,%d)",
							bits, ib, sign*wb, pos, neg, fpos, fneg, gpos, gneg, ppos, pneg, qpos, qneg, wantPos, wantNeg)
					}
				}
			}
		}
	}
}

// TestDotCountsMatchVDPE pins the packed chunk kernels against the
// scalar reference core.VDPE.Dot — PosOnes, NegOnes and Exact bitwise —
// over the operand patterns at every precision in the sweep.
func TestDotCountsMatchVDPE(t *testing.T) {
	for bits := 2; bits <= 8; bits++ {
		cfg := testCfg(bits, true)
		vdpe, err := core.NewVDPE(cfg)
		if err != nil {
			t.Fatalf("B=%d NewVDPE: %v", bits, err)
		}
		p := PlaneFor(bits)
		scale := 1 << uint(bits)
		var packed PackedDKV
		for _, length := range []int{1, cfg.N - 1, cfg.N} {
			for _, oc := range operandCases(scale, length, int64(100*bits)) {
				ref, err := vdpe.Dot(oc.div, oc.dkv)
				if err != nil {
					t.Fatalf("B=%d %s: VDPE.Dot: %v", bits, oc.name, err)
				}
				pos, neg, err := p.DotCounts(oc.div, oc.dkv)
				if err != nil {
					t.Fatalf("B=%d %s: DotCounts: %v", bits, oc.name, err)
				}
				gpos, gneg, err := p.DotCountsGeneric(oc.div, oc.dkv)
				if err != nil {
					t.Fatalf("B=%d %s: DotCountsGeneric: %v", bits, oc.name, err)
				}
				if err := p.PackDKV(&packed, oc.dkv); err != nil {
					t.Fatalf("B=%d %s: PackDKV: %v", bits, oc.name, err)
				}
				ppos, pneg, err := p.DotPacked(oc.div, &packed)
				if err != nil {
					t.Fatalf("B=%d %s: DotPacked: %v", bits, oc.name, err)
				}
				if pos != ref.PosOnes || neg != ref.NegOnes {
					t.Fatalf("B=%d %s len=%d: DotCounts (%d,%d) != VDPE (%d,%d)",
						bits, oc.name, length, pos, neg, ref.PosOnes, ref.NegOnes)
				}
				if gpos != ref.PosOnes || gneg != ref.NegOnes || ppos != ref.PosOnes || pneg != ref.NegOnes {
					t.Fatalf("B=%d %s len=%d: generic/packed kernels disagree with VDPE",
						bits, oc.name, length)
				}
				if exact := (pos - neg) * scale; exact != ref.Exact {
					t.Fatalf("B=%d %s: exact %d != VDPE %d", bits, oc.name, exact, ref.Exact)
				}
			}
		}
	}
}

// engineTrace runs one fixed call sequence — every seam length times
// every operand pattern, in order — through a quant.DotEngine and
// records the estimates. Stateful engines advance their ADC RNGs across
// the whole sequence, so equal traces mean equal draw orders, not just
// equal arithmetic.
func engineTrace(t *testing.T, e quant.DotEngine, bits, n int) []int {
	t.Helper()
	scale := 1 << uint(bits)
	var trace []int
	for _, length := range seamLengths(n) {
		for _, oc := range operandCases(scale, length, int64(1000*bits+length)) {
			trace = append(trace, e.Dot(oc.div, oc.dkv))
		}
	}
	return trace
}

// TestEngineMatchesSconnaEngine is the Est-level pin: the packed Engine
// must reproduce the scalar quant.SconnaEngine call for call across
// chunk seams — with the seeded ADC noise applied (and with it
// disabled), at every precision of the sweep.
func TestEngineMatchesSconnaEngine(t *testing.T) {
	for bits := 2; bits <= 8; bits++ {
		for _, ideal := range []bool{false, true} {
			cfg := testCfg(bits, ideal)
			scalar, err := quant.NewSconnaEngine(cfg)
			if err != nil {
				t.Fatalf("B=%d scalar engine: %v", bits, err)
			}
			packed, err := New(cfg)
			if err != nil {
				t.Fatalf("B=%d packed engine: %v", bits, err)
			}
			want := engineTrace(t, scalar, bits, cfg.N)
			got := engineTrace(t, packed, bits, cfg.N)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("B=%d ideal=%v call %d: packed %d != scalar %d",
						bits, ideal, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDotLargeMatchesVDPC pins the packed chunk reduction against
// core.VDPC.DotLarge directly: est, exact AND the chunk count, on fresh
// engine pairs per sequence so the RNG walks stay aligned.
func TestDotLargeMatchesVDPC(t *testing.T) {
	for _, bits := range []int{2, 5, 8} {
		for _, ideal := range []bool{false, true} {
			cfg := testCfg(bits, ideal)
			vdpc, err := core.NewVDPC(cfg)
			if err != nil {
				t.Fatalf("B=%d NewVDPC: %v", bits, err)
			}
			eng, err := New(cfg)
			if err != nil {
				t.Fatalf("B=%d New: %v", bits, err)
			}
			scale := 1 << uint(bits)
			for _, length := range seamLengths(cfg.N) {
				for _, oc := range operandCases(scale, length, int64(7*bits+length)) {
					wantEst, wantExact, wantChunks, err := vdpc.DotLarge(oc.div, oc.dkv)
					if err != nil {
						t.Fatalf("B=%d %s: DotLarge: %v", bits, oc.name, err)
					}
					gotEst, gotExact, gotChunks, err := eng.DotLarge(oc.div, oc.dkv)
					if err != nil {
						t.Fatalf("B=%d %s: packed DotLarge: %v", bits, oc.name, err)
					}
					if gotEst != wantEst || gotExact != wantExact || gotChunks != wantChunks {
						t.Fatalf("B=%d ideal=%v %s len=%d: packed (%d,%d,%d) != scalar (%d,%d,%d)",
							bits, ideal, oc.name, length,
							gotEst, gotExact, gotChunks, wantEst, wantExact, wantChunks)
					}
				}
			}
		}
	}
}

// TestEquivalenceAcrossWorkerCounts fans the (precision, ADC-mode)
// sweep across worker pools of size 1, 4 and GOMAXPROCS — every job
// builds private engines but all jobs share the process-wide packed
// Planes, which is exactly the serving pool's sharing shape. Under
// -race this is the shared-image safety proof; the result traces must
// be identical at every worker count.
func TestEquivalenceAcrossWorkerCounts(t *testing.T) {
	type job struct {
		bits  int
		ideal bool
	}
	var jobs []job
	for bits := 2; bits <= 8; bits++ {
		jobs = append(jobs, job{bits, false}, job{bits, true})
	}
	run := func(workers int) [][]int {
		traces := make([][]int, len(jobs))
		err := parallel.ForEach(workers, len(jobs), func(j int) error {
			cfg := testCfg(jobs[j].bits, jobs[j].ideal)
			scalar, err := quant.NewSconnaEngine(cfg)
			if err != nil {
				return err
			}
			packed, err := New(cfg)
			if err != nil {
				return err
			}
			got := engineTrace(t, packed, jobs[j].bits, cfg.N)
			want := engineTrace(t, scalar, jobs[j].bits, cfg.N)
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("B=%d ideal=%v call %d: packed %d != scalar %d",
						jobs[j].bits, jobs[j].ideal, i, got[i], want[i])
				}
			}
			traces[j] = got
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return traces
	}
	ref := run(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		for j := range ref {
			for i := range ref[j] {
				if got[j][i] != ref[j][i] {
					t.Fatalf("workers=%d job %d call %d: %d != serial %d",
						workers, j, i, got[j][i], ref[j][i])
				}
			}
		}
	}
}
