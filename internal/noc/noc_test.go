package noc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultConfigMesh(t *testing.T) {
	c := DefaultConfig(46)
	if c.Tiles() < 46 {
		t.Fatalf("mesh %dx%d holds %d < 46 tiles", c.Width, c.Height, c.Tiles())
	}
	if c.RouterCycles != 2 || c.BusCycles != 5 {
		t.Fatal("cycle counts disagree with Table IV")
	}
	if c.RouterPowerW != 42e-3 || c.BusPowerW != 7e-3 {
		t.Fatal("powers disagree with Table IV")
	}
	if c.RouterAreaMM2 != 0.151 || c.BusAreaMM2 != 9.0e-3 {
		t.Fatal("areas disagree with Table IV")
	}
	one := DefaultConfig(1)
	if one.Tiles() != 1 {
		t.Fatalf("single tile mesh has %d tiles", one.Tiles())
	}
}

func TestCoordAndHops(t *testing.T) {
	c := DefaultConfig(9) // 3x3
	if c.Width != 3 || c.Height != 3 {
		t.Fatalf("mesh %dx%d want 3x3", c.Width, c.Height)
	}
	x, y := c.Coord(4)
	if x != 1 || y != 1 {
		t.Fatalf("Coord(4)=(%d,%d) want (1,1)", x, y)
	}
	if c.Hops(0, 8) != 4 { // (0,0) -> (2,2)
		t.Fatalf("Hops(0,8)=%d want 4", c.Hops(0, 8))
	}
	if c.Hops(3, 3) != 0 {
		t.Fatal("self hops should be 0")
	}
}

func TestCoordOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultConfig(4).Coord(10)
}

func TestTransferLatency(t *testing.T) {
	c := DefaultConfig(9)
	// 1 hop, 32 bytes = 1 flit: 2 router cycles + 1 serialization cycle.
	got := c.TransferNS(0, 1, 32)
	if math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("TransferNS=%g want 3", got)
	}
	// Intra-tile uses the H-tree bus: 5 cycles for one flit.
	if bus := c.TransferNS(4, 4, 32); math.Abs(bus-5.0) > 1e-12 {
		t.Fatalf("intra-tile=%g want 5", bus)
	}
	// Larger payloads serialize.
	if c.TransferNS(0, 1, 320) <= got {
		t.Fatal("larger payload should take longer")
	}
}

// Property: latency is monotone in hop distance and payload size.
func TestTransferMonotone(t *testing.T) {
	c := DefaultConfig(16)
	f := func(a, b uint8, sz uint16) bool {
		src := int(a) % c.Tiles()
		dst := int(b) % c.Tiles()
		bytes := int(sz)%1024 + 1
		l1 := c.TransferNS(src, dst, bytes)
		l2 := c.TransferNS(src, dst, bytes+512)
		return l2 >= l1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTransferEnergyPositive(t *testing.T) {
	c := DefaultConfig(9)
	if e := c.TransferEnergyJ(0, 8, 64); e <= 0 {
		t.Fatalf("energy=%g", e)
	}
	if e := c.TransferEnergyJ(3, 3, 64); e <= 0 {
		t.Fatalf("intra-tile energy=%g", e)
	}
	// More hops cost more energy.
	if c.TransferEnergyJ(0, 8, 64) <= c.TransferEnergyJ(0, 1, 64) {
		t.Fatal("energy should grow with distance")
	}
}

func TestAggregatePowerAndArea(t *testing.T) {
	c := DefaultConfig(9)
	if p := c.TotalRouterPowerW(); math.Abs(p-9*42e-3) > 1e-12 {
		t.Fatalf("router power=%g", p)
	}
	if a := c.TotalAreaMM2(); math.Abs(a-9*(0.151+9e-3)) > 1e-12 {
		t.Fatalf("area=%g", a)
	}
}

func TestBusNSMinimum(t *testing.T) {
	c := DefaultConfig(4)
	if c.BusNS(0) < 5 {
		t.Fatal("bus transaction should cost at least BusCycles")
	}
}
