// Package noc models the accelerator's on-chip interconnect (Section VI-A
// of the paper): a mesh of tiles connected through routers, used to move
// CNN parameters from global memory to tiles and partial sums between
// tiles, plus the intra-tile H-tree bus. Latency and power constants come
// from Table IV (router: 42 mW, 2 cycles, 0.151 mm^2; bus: 7 mW, 5 cycles,
// 0.009 mm^2).
package noc

import (
	"fmt"
	"math"
)

// Config describes the interconnect operating point.
type Config struct {
	// Width and Height define the tile mesh dimensions.
	Width, Height int
	// ClockGHz converts Table IV cycle counts into time (1 GHz default).
	ClockGHz float64
	// RouterCycles per hop (2 in Table IV).
	RouterCycles int
	// BusCycles per bus transaction (5 in Table IV).
	BusCycles int
	// LinkBytesPerCycle is the flit width of mesh links.
	LinkBytesPerCycle int
	// RouterPowerW and BusPowerW are Table IV powers.
	RouterPowerW, BusPowerW float64
	// RouterAreaMM2 and BusAreaMM2 are Table IV areas.
	RouterAreaMM2, BusAreaMM2 float64
}

// DefaultConfig returns the Table IV interconnect operating point for a
// mesh of the given tile count (arranged as close to square as possible).
func DefaultConfig(tiles int) Config {
	w := int(math.Ceil(math.Sqrt(float64(tiles))))
	if w < 1 {
		w = 1
	}
	h := (tiles + w - 1) / w
	if h < 1 {
		h = 1
	}
	return Config{
		Width: w, Height: h,
		ClockGHz:          1.0,
		RouterCycles:      2,
		BusCycles:         5,
		LinkBytesPerCycle: 32,
		RouterPowerW:      42e-3,
		BusPowerW:         7e-3,
		RouterAreaMM2:     0.151,
		BusAreaMM2:        9.0e-3,
	}
}

// Tiles returns the number of tile slots in the mesh.
func (c Config) Tiles() int { return c.Width * c.Height }

// cycleNS returns one clock period in ns.
func (c Config) cycleNS() float64 { return 1 / c.ClockGHz }

// Coord returns the (x, y) mesh coordinate of tile id.
func (c Config) Coord(tile int) (x, y int) {
	if tile < 0 || tile >= c.Tiles() {
		panic(fmt.Sprintf("noc: tile %d out of range [0,%d)", tile, c.Tiles()))
	}
	return tile % c.Width, tile / c.Width
}

// Hops returns the XY-routed hop count between two tiles.
func (c Config) Hops(src, dst int) int {
	sx, sy := c.Coord(src)
	dx, dy := c.Coord(dst)
	return abs(sx-dx) + abs(sy-dy)
}

// TransferNS returns the latency of moving `bytes` from tile src to tile
// dst: per-hop router traversal plus link serialization.
func (c Config) TransferNS(src, dst, bytes int) float64 {
	hops := c.Hops(src, dst)
	if hops == 0 {
		return c.BusNS(bytes) // intra-tile: H-tree bus
	}
	routing := float64(hops*c.RouterCycles) * c.cycleNS()
	flits := (bytes + c.LinkBytesPerCycle - 1) / c.LinkBytesPerCycle
	serial := float64(flits) * c.cycleNS()
	return routing + serial
}

// BusNS returns the intra-tile H-tree bus latency for `bytes`.
func (c Config) BusNS(bytes int) float64 {
	flits := (bytes + c.LinkBytesPerCycle - 1) / c.LinkBytesPerCycle
	if flits < 1 {
		flits = 1
	}
	return float64(c.BusCycles+flits-1) * c.cycleNS()
}

// TransferEnergyJ returns the energy of a transfer: the occupancy time of
// each traversed router (and the bus at the endpoints) times its Table IV
// power.
func (c Config) TransferEnergyJ(src, dst, bytes int) float64 {
	hops := c.Hops(src, dst)
	if hops == 0 {
		return c.BusPowerW * c.BusNS(bytes) * 1e-9
	}
	t := c.TransferNS(src, dst, bytes) * 1e-9
	return float64(hops)*c.RouterPowerW*t + c.BusPowerW*c.BusNS(bytes)*1e-9
}

// TotalRouterPowerW returns static router power across the mesh.
func (c Config) TotalRouterPowerW() float64 {
	return float64(c.Tiles()) * c.RouterPowerW
}

// TotalAreaMM2 returns the interconnect area across the mesh.
func (c Config) TotalAreaMM2() float64 {
	return float64(c.Tiles()) * (c.RouterAreaMM2 + c.BusAreaMM2)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
