package pca

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultTIRMatchesPaper(t *testing.T) {
	tir := DefaultTIR()
	if tir.ROhms != 50 || tir.CFarads != 250e-12 || tir.Gain != 80 {
		t.Fatal("TIR constants disagree with Sec. V-C (R=50, C=250pF, gain=80)")
	}
}

func TestDeltaVPerOne(t *testing.T) {
	tir := DefaultTIR()
	// I=1.9uA (from -28 dBm at R=1.2 A/W), tbit=33.3ps at 30 Gbps:
	// dV = 80 * 1.9e-6 * 33.3e-12 / 250e-12 = ~20.3 uV.
	got := tir.DeltaVPerOne(1.9e-6, 1.0/30e9)
	want := 80 * 1.9e-6 * (1.0 / 30e9) / 250e-12
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("dV=%g want %g", got, want)
	}
}

// Fig. 7(b): the analog output voltage rises linearly with alpha and does
// NOT saturate at alpha=100% for the N=176, 2^8-bit operating point.
func TestFig7bLinearNoSaturation(t *testing.T) {
	cfg := DefaultConfig()
	pts := cfg.Fig7b(20)
	if len(pts) != 21 {
		t.Fatalf("want 21 points, got %d", len(pts))
	}
	if pts[0].VoltageV != 0 {
		t.Fatal("alpha=0 must give 0 V")
	}
	full := pts[len(pts)-1]
	if full.AlphaPct != 100 {
		t.Fatalf("last alpha=%g want 100", full.AlphaPct)
	}
	if full.VoltageV >= cfg.TIR.VSupplyV {
		t.Fatalf("saturated at alpha=100%%: %.3f V >= rail %.3f V", full.VoltageV, cfg.TIR.VSupplyV)
	}
	if cfg.TIR.Saturates(cfg.MaxOnes, cfg.PulseCurrentA(), cfg.BitTimeS()) {
		t.Fatal("Saturates() disagrees with Fig. 7(b)")
	}
	// Linearity: every point on the straight line through the endpoints,
	// within the one-quantum granularity of the ones count.
	quantum := cfg.TIR.DeltaVPerOne(cfg.PulseCurrentA(), cfg.BitTimeS())
	for _, p := range pts {
		want := full.VoltageV * p.AlphaPct / 100
		if math.Abs(p.VoltageV-want) > 2*quantum {
			t.Fatalf("alpha=%.0f%%: V=%.6g want %.6g (nonlinear)", p.AlphaPct, p.VoltageV, want)
		}
	}
}

func TestOutputVoltageClampsAtRail(t *testing.T) {
	tir := DefaultTIR()
	v := tir.OutputVoltage(1<<30, 1.9e-6, 1.0/30e9)
	if v != tir.VSupplyV {
		t.Fatalf("expected clamp at %.2f V, got %.6f", tir.VSupplyV, v)
	}
	if !tir.Saturates(1<<30, 1.9e-6, 1.0/30e9) {
		t.Fatal("Saturates should report true for absurd counts")
	}
}

// Property: the explicit forward-Euler trace agrees with the closed-form
// accumulation for pulse-train inputs.
func TestIntegrateTraceMatchesClosedForm(t *testing.T) {
	tir := DefaultTIR()
	f := func(seedOnes uint8) bool {
		ones := int(seedOnes)%64 + 1
		pulse := 1.9e-6
		tbit := 1.0 / 30e9
		const perBit = 4
		dt := tbit / perBit
		var current []float64
		for i := 0; i < ones; i++ {
			for s := 0; s < perBit; s++ {
				current = append(current, pulse)
			}
			for s := 0; s < perBit; s++ {
				current = append(current, 0) // interleave zeros
			}
		}
		trace := tir.IntegrateTrace(current, dt)
		got := trace[len(trace)-1]
		want := tir.OutputVoltage(ones, pulse, tbit)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestADCConvertIdealWithoutNoise(t *testing.T) {
	a := NewADC(8, 1.0, 0, 1)
	if a.Levels() != 256 {
		t.Fatalf("Levels=%d want 256", a.Levels())
	}
	lsb := 1.0 / 255
	for _, code := range []int{0, 1, 127, 254, 255} {
		if got := a.Convert(float64(code) * lsb); got != code {
			t.Fatalf("Convert(%d*lsb)=%d", code, got)
		}
	}
	// Out-of-range clamps.
	if a.Convert(-0.5) != 0 || a.Convert(2.0) != 255 {
		t.Fatal("clamping broken")
	}
}

// Sec. V-C: the ADC error model is calibrated to ~1.3% MAPE.
func TestADCMAPECalibration(t *testing.T) {
	cfg := DefaultConfig()
	a := NewADC(cfg.ADCBits, 1.0, cfg.ADCNoiseLSB, 7)
	mape := a.MeasureMAPE(20000)
	if mape < 0.8 || mape > 1.8 {
		t.Fatalf("MAPE=%.2f%% want ~1.3%%", mape)
	}
}

func TestADCDeterministicWithSeed(t *testing.T) {
	a1 := NewADC(8, 1.0, 1.0, 42)
	a2 := NewADC(8, 1.0, 1.0, 42)
	for i := 0; i < 100; i++ {
		v := float64(i) / 100
		if a1.Convert(v) != a2.Convert(v) {
			t.Fatal("same seed must give same conversions")
		}
	}
}

func TestAccumulationCapacityRequirement(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MaxOnes != 45056 {
		t.Fatalf("MaxOnes=%d want 176*256=45056 (Sec. V-C)", cfg.MaxOnes)
	}
	fs := cfg.FullScaleVoltage()
	if fs <= 0 || fs >= cfg.TIR.VSupplyV {
		t.Fatalf("full-scale %.3f V must be positive and below the rail", fs)
	}
}

func TestAccumulatorDoubleBuffering(t *testing.T) {
	cfg := DefaultConfig()
	acc := NewAccumulator(cfg, 1)
	acc.Add(1000)
	if acc.Ones() != 1000 {
		t.Fatalf("Ones=%d want 1000", acc.Ones())
	}
	if acc.Voltage() <= 0 {
		t.Fatal("voltage should be positive")
	}
	code, err := acc.ReadAndSwap(0)
	if err != nil {
		t.Fatal(err)
	}
	if code < 0 || code >= 256 {
		t.Fatalf("code=%d out of range", code)
	}
	if acc.Ones() != 0 {
		t.Fatal("swap should land on an empty capacitor")
	}
	// Immediately reading again must fail: the first capacitor is still
	// discharging (DischargeNS=10).
	acc.Add(10)
	if _, err := acc.ReadAndSwap(5); err == nil {
		t.Fatal("expected busy-capacitor error at t=5ns")
	}
	// After the discharge window it succeeds.
	if _, err := acc.ReadAndSwap(11); err != nil {
		t.Fatalf("unexpected error after discharge: %v", err)
	}
}

// Property: converting an accumulated count and mapping back recovers the
// count within the ADC error budget.
func TestCodeToOnesRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	acc := NewAccumulator(cfg, 3)
	now := 0.0
	f := func(raw uint16) bool {
		now += 10 * cfg.DischargeNS // past every discharge window
		ones := int(raw) % cfg.MaxOnes
		acc.Add(ones)
		code, err := acc.ReadAndSwap(now)
		if err != nil {
			return false
		}
		got := acc.CodeToOnes(code)
		// Allowed error: 1 LSB of quantization + 4 sigma of noise, in ones.
		tol := float64(cfg.MaxOnes) / 255 * (1 + 4*cfg.ADCNoiseLSB)
		return math.Abs(float64(got-ones)) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFig7bSweep(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Fig7b(100)
	}
}
