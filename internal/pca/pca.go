// Package pca models SCONNA's Photo-Charge Accumulator (Section IV-C and
// V-C of the paper): a photodetector feeding a time-integrating receiver
// (TIR) whose capacitor accumulates one charge quantum per optical '1'
// bit, double-buffered across two capacitors to hide discharge latency,
// followed by an ADC that converts the accrued analog voltage into the
// binary VDP result.
//
// The paper characterizes the circuit in NI MultiSim with R=50 ohm,
// C=250 pF and an amplifier gain of 80; this package integrates the same
// circuit analytically and by explicit forward-Euler traces (see DESIGN.md
// "Substitutions").
package pca

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/photonics"
)

// TIR is the time-integrating receiver stage: a capacitor integrating
// photocurrent pulses behind a voltage amplifier.
type TIR struct {
	// ROhms is the load/input resistance (50 ohm in Sec. V-C).
	ROhms float64
	// CFarads is the integration capacitor (250 pF in Sec. V-C).
	CFarads float64
	// Gain is the voltage amplifier gain (80 in Sec. V-C).
	Gain float64
	// VSupplyV is the supply rail bounding the amplifier output; beyond it
	// the accumulator saturates and the count is lost.
	VSupplyV float64
}

// DefaultTIR returns the Section V-C circuit values.
func DefaultTIR() TIR {
	return TIR{ROhms: 50, CFarads: 250e-12, Gain: 80, VSupplyV: 1.2}
}

// DeltaVPerOne returns the post-amplifier voltage increment contributed by
// a single optical '1' bit: gain * I_pulse * t_bit / C.
func (t TIR) DeltaVPerOne(pulseA, tBitS float64) float64 {
	return t.Gain * pulseA * tBitS / t.CFarads
}

// OutputVoltage returns the post-amplifier voltage after accumulating ones
// pulses of pulseA amperes lasting tBitS seconds each, clamped at the
// supply rail.
func (t TIR) OutputVoltage(ones int, pulseA, tBitS float64) float64 {
	v := float64(ones) * t.DeltaVPerOne(pulseA, tBitS)
	return math.Min(v, t.VSupplyV)
}

// Saturates reports whether accumulating maxOnes pulses would clip at the
// supply rail — the Section V-C question Fig. 7(b) answers in the negative
// for N=176, 2^8-bit streams.
func (t TIR) Saturates(maxOnes int, pulseA, tBitS float64) bool {
	return float64(maxOnes)*t.DeltaVPerOne(pulseA, tBitS) > t.VSupplyV
}

// IntegrateTrace integrates an explicit photocurrent waveform (amperes,
// one sample per dt seconds) through the capacitor by forward Euler and
// returns the post-amplifier voltage trace clamped at the rail. It is the
// waveform-level counterpart of OutputVoltage used to validate linearity.
func (t TIR) IntegrateTrace(currentA []float64, dtS float64) []float64 {
	out := make([]float64, len(currentA))
	q := 0.0
	for i, c := range currentA {
		q += c * dtS
		v := t.Gain * q / t.CFarads
		if v > t.VSupplyV {
			v = t.VSupplyV
		}
		out[i] = v
	}
	return out
}

// ADC converts the TIR output voltage into a binary count. The converter
// itself is ideal mid-tread quantization plus input-referred Gaussian noise
// whose magnitude is calibrated so the mean absolute percentage error of
// the converted results is ~1.3%, the figure the paper measures for its
// 8-bit SAR-flash ADC [47] (Sec. V-C).
type ADC struct {
	// Bits is the converter resolution (8 in the paper).
	Bits int
	// VRefV is the full-scale input voltage.
	VRefV float64
	// NoiseLSB is the input-referred rms noise in LSB units.
	NoiseLSB float64

	rng *rand.Rand
}

// NewADC returns an ADC with deterministic noise seeded by seed.
func NewADC(bits int, vref, noiseLSB float64, seed int64) *ADC {
	if bits < 1 || bits > 24 {
		panic(fmt.Sprintf("pca: unsupported ADC resolution %d", bits))
	}
	return &ADC{Bits: bits, VRefV: vref, NoiseLSB: noiseLSB, rng: rand.New(rand.NewSource(seed))}
}

// Levels returns the number of output codes, 2^Bits.
func (a *ADC) Levels() int { return 1 << uint(a.Bits) }

// Convert quantizes v (volts) to an output code in [0, Levels-1].
func (a *ADC) Convert(v float64) int {
	lsb := a.VRefV / float64(a.Levels()-1)
	noisy := v + a.rng.NormFloat64()*a.NoiseLSB*lsb
	code := int(math.Round(noisy / lsb))
	if code < 0 {
		code = 0
	}
	if code >= a.Levels() {
		code = a.Levels() - 1
	}
	return code
}

// MeasureMAPE estimates the converter's mean absolute percentage error
// over samples voltages swept uniformly across (5%, 100%] of full scale,
// the calibration the paper quotes as 1.3%.
func (a *ADC) MeasureMAPE(samples int) float64 {
	lsb := a.VRefV / float64(a.Levels()-1)
	sum := 0.0
	for i := 0; i < samples; i++ {
		frac := 0.05 + 0.95*float64(i)/float64(samples-1)
		v := frac * a.VRefV
		got := float64(a.Convert(v)) * lsb
		sum += math.Abs(got-v) / v
	}
	return sum / float64(samples) * 100
}

// Config assembles a full PCA operating point.
type Config struct {
	TIR TIR
	// PD converts optical power to current.
	PD photonics.Photodetector
	// PowerOneDBm is the optical power of a logic '1' at the detector
	// (the -28 dBm sensitivity point of Sec. V).
	PowerOneDBm float64
	// BitRate is the stream bitrate in bit/s (30 Gbps).
	BitRate float64
	// MaxOnes is the accumulation capacity requirement: N * 2^B ones
	// (176*256 in Sec. V-C).
	MaxOnes int
	// ADCBits and ADCNoiseLSB configure the converter.
	ADCBits     int
	ADCNoiseLSB float64
	// DischargeNS is the time to drain a capacitor before it can
	// accumulate again; the redundant TIR hides it (Sec. IV-C).
	DischargeNS float64
}

// DefaultConfig returns the Section V-C operating point.
func DefaultConfig() Config {
	return Config{
		TIR:         DefaultTIR(),
		PD:          photonics.DefaultPhotodetector(),
		PowerOneDBm: -28,
		BitRate:     30e9,
		MaxOnes:     176 * 256,
		ADCBits:     8,
		ADCNoiseLSB: 1.0,
		DischargeNS: 10,
	}
}

// PulseCurrentA returns the photocurrent of a '1' bit.
func (c Config) PulseCurrentA() float64 {
	return c.PD.Photocurrent(photonics.DBmToWatts(c.PowerOneDBm))
}

// BitTimeS returns the duration of one stream bit.
func (c Config) BitTimeS() float64 { return 1 / c.BitRate }

// FullScaleVoltage returns the TIR output when MaxOnes ones accumulate —
// the natural ADC reference voltage.
func (c Config) FullScaleVoltage() float64 {
	return float64(c.MaxOnes) * c.TIR.DeltaVPerOne(c.PulseCurrentA(), c.BitTimeS())
}

// AlphaPoint is one sample of the Fig. 7(b) linearity sweep.
type AlphaPoint struct {
	AlphaPct float64 // (# of ones / MaxOnes) * 100
	VoltageV float64 // TIR analog output voltage
}

// Fig7b sweeps alpha from 0 to 100% in steps and returns the TIR output
// voltage at each point, reproducing the linearity experiment of Fig. 7(b).
func (c Config) Fig7b(steps int) []AlphaPoint {
	out := make([]AlphaPoint, 0, steps+1)
	for i := 0; i <= steps; i++ {
		alpha := float64(i) / float64(steps)
		ones := int(alpha * float64(c.MaxOnes))
		v := c.TIR.OutputVoltage(ones, c.PulseCurrentA(), c.BitTimeS())
		out = append(out, AlphaPoint{AlphaPct: alpha * 100, VoltageV: v})
	}
	return out
}

// Accumulator is the runtime double-buffered PCA: one capacitor integrates
// while the other discharges, as in Fig. 4(b).
type Accumulator struct {
	cfg    Config
	adc    *ADC
	ones   [2]int
	busyNS [2]float64 // discharge completes at this simulated time
	active int
}

// NewAccumulator builds a runtime PCA with a deterministic ADC noise seed.
func NewAccumulator(cfg Config, seed int64) *Accumulator {
	fs := cfg.FullScaleVoltage()
	return &Accumulator{cfg: cfg, adc: NewADC(cfg.ADCBits, fs, cfg.ADCNoiseLSB, seed)}
}

// Add accumulates n optical ones on the active capacitor.
func (a *Accumulator) Add(n int) { a.ones[a.active] += n }

// Voltage returns the active capacitor's post-amplifier voltage.
func (a *Accumulator) Voltage() float64 {
	return a.cfg.TIR.OutputVoltage(a.ones[a.active], a.cfg.PulseCurrentA(), a.cfg.BitTimeS())
}

// Ones returns the raw accumulated ones count on the active capacitor.
func (a *Accumulator) Ones() int { return a.ones[a.active] }

// ReadAndSwap converts the active capacitor through the ADC, schedules its
// discharge, and switches accumulation to the redundant capacitor. nowNS is
// the simulated time; it returns the ADC code and an error if the redundant
// capacitor has not finished discharging (the only condition under which
// the double-buffering of Fig. 4(b) stalls).
func (a *Accumulator) ReadAndSwap(nowNS float64) (int, error) {
	next := 1 - a.active
	if nowNS < a.busyNS[next] {
		return 0, fmt.Errorf("pca: redundant capacitor busy until %.2f ns (now %.2f)", a.busyNS[next], nowNS)
	}
	code := a.adc.Convert(a.Voltage())
	a.ones[a.active] = 0
	a.busyNS[a.active] = nowNS + a.cfg.DischargeNS
	a.active = next
	return code, nil
}

// CodeToOnes maps an ADC code back to an estimated ones count.
func (a *Accumulator) CodeToOnes(code int) int {
	return int(math.Round(float64(code) / float64(a.adc.Levels()-1) * float64(a.cfg.MaxOnes)))
}
