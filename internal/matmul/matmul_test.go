package matmul

import (
	"math"
	"math/rand"
	"testing"
)

func TestOutSize(t *testing.T) {
	t.Parallel()
	if OutSize(16, 3, 1, 1) != 16 {
		t.Fatal("same-pad 3x3")
	}
	if OutSize(16, 3, 2, 1) != 8 {
		t.Fatal("stride 2")
	}
	if OutSize(5, 5, 1, 0) != 1 {
		t.Fatal("k == h")
	}
}

func TestPositionsGeometry(t *testing.T) {
	t.Parallel()
	p := Positions(4, 5, 3, 1, 1)
	if p.OutH != 4 || p.OutW != 5 {
		t.Fatalf("out %dx%d", p.OutH, p.OutW)
	}
	if p.Full() {
		t.Fatal("padded geometry cannot be full")
	}
	// Corner pixel (0,0): only the bottom-right 2x2 of the 3x3 window is
	// in bounds.
	off, kk := p.At(0)
	wantOff := []int{0, 1, 5, 6}
	wantKK := []int{4, 5, 7, 8}
	if len(off) != 4 {
		t.Fatalf("corner has %d slots", len(off))
	}
	for i := range off {
		if off[i] != wantOff[i] || kk[i] != wantKK[i] {
			t.Fatalf("corner slot %d: off=%d kk=%d want %d/%d", i, off[i], kk[i], wantOff[i], wantKK[i])
		}
	}
	// A central pixel sees the full window.
	mid := 1*p.OutW + 2
	off, kk = p.At(mid)
	if len(off) != 9 || kk[0] != 0 || kk[8] != 8 {
		t.Fatalf("central window truncated: %v %v", off, kk)
	}

	if q := Positions(6, 6, 3, 1, 0); !q.Full() {
		t.Fatal("unpadded geometry must be full")
	}
	if Positions(4, 5, 3, 1, 1) != p {
		t.Fatal("Positions must cache")
	}
}

// naiveIm2col is the textbook gather the fast path must match.
func naiveIm2col(src []float32, inC, h, w, k, stride, pad int) []float32 {
	oh, ow := OutSize(h, k, stride, pad), OutSize(w, k, stride, pad)
	out := make([]float32, oh*ow*inC*k*k)
	pix := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for ic := 0; ic < inC; ic++ {
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						iy, ix := oy*stride+ky-pad, ox*stride+kx-pad
						if iy < 0 || iy >= h || ix < 0 || ix >= w {
							continue
						}
						out[(pix*inC+ic)*k*k+ky*k+kx] = src[(ic*h+iy)*w+ix]
					}
				}
			}
			pix++
		}
	}
	return out
}

func TestIm2colMatchesNaive(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ inC, h, w, k, stride, pad int }{
		{1, 5, 5, 3, 1, 1},
		{3, 8, 6, 3, 2, 1},
		{2, 7, 7, 5, 1, 2},
		{4, 6, 6, 1, 1, 0},
		{2, 9, 9, 3, 3, 0},
	} {
		src := make([]float32, tc.inC*tc.h*tc.w)
		for i := range src {
			src[i] = float32(rng.NormFloat64())
		}
		p := Positions(tc.h, tc.w, tc.k, tc.stride, tc.pad)
		// Dirty buffer: reuse must still produce exact zeros at padding.
		dirty := make([]float32, p.NumPix()*tc.inC*tc.k*tc.k)
		for i := range dirty {
			dirty[i] = 999
		}
		got := p.Im2col(dirty, src, tc.inC)
		want := naiveIm2col(src, tc.inC, tc.h, tc.w, tc.k, tc.stride, tc.pad)
		if len(got) != len(want) {
			t.Fatalf("%+v: size %d vs %d", tc, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%+v: col[%d] = %v want %v", tc, i, got[i], want[i])
			}
		}
	}
}

func TestConvForwardGroupedOrder(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	outC, npix, group, groups := 3, 150, 9, 4 // npix > pixTile exercises blocking
	rowLen := group * groups
	w := make([]float32, outC*rowLen)
	cols := make([]float32, npix*rowLen)
	bias := make([]float32, outC)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	for i := range cols {
		cols[i] = float32(rng.NormFloat64())
	}
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	out := make([]float32, outC*npix)
	ConvForward(out, w, cols, outC, npix, rowLen, group, bias)
	for oc := 0; oc < outC; oc++ {
		for j := 0; j < npix; j++ {
			// Reference order: accumulator starts at the bias, one partial
			// per group, each summed from zero in k-order.
			s := bias[oc]
			for g := 0; g < groups; g++ {
				var p float32
				for i := 0; i < group; i++ {
					p += w[oc*rowLen+g*group+i] * cols[j*rowLen+g*group+i]
				}
				s += p
			}
			if math.Float32bits(out[oc*npix+j]) != math.Float32bits(s) {
				t.Fatalf("out[%d,%d] = %v want %v", oc, j, out[oc*npix+j], s)
			}
		}
	}
}

func TestConvForwardFlatIsGroupOne(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(6))
	k := 37
	a := make([]float32, k)
	b := make([]float32, k)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		b[i] = float32(rng.NormFloat64())
	}
	out := make([]float32, 1)
	ConvForward(out, a, b, 1, 1, k, 1, []float32{0.25})
	s := float32(0.25)
	for i := range a {
		s += a[i] * b[i]
	}
	if math.Float32bits(out[0]) != math.Float32bits(s) {
		t.Fatalf("flat accumulation %v want %v", out[0], s)
	}
}

func TestDepthwiseForward(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	c, npix, k2 := 3, 70, 9
	w := make([]float32, c*k2)
	cols := make([]float32, npix*c*k2)
	bias := make([]float32, c)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	for i := range cols {
		cols[i] = float32(rng.NormFloat64())
	}
	out := make([]float32, c*npix)
	DepthwiseForward(out, w, cols, c, npix, k2, bias)
	for oc := 0; oc < c; oc++ {
		for j := 0; j < npix; j++ {
			var p float32
			for i := 0; i < k2; i++ {
				p += w[oc*k2+i] * cols[j*c*k2+oc*k2+i]
			}
			s := bias[oc] + p
			if math.Float32bits(out[oc*npix+j]) != math.Float32bits(s) {
				t.Fatalf("out[%d,%d] = %v want %v", oc, j, out[oc*npix+j], s)
			}
		}
	}
}

func TestAxpy(t *testing.T) {
	t.Parallel()
	dst := []float32{1, 2, 3}
	Axpy(dst, 2, []float32{10, 20, 30})
	if dst[0] != 21 || dst[1] != 42 || dst[2] != 63 {
		t.Fatalf("axpy %v", dst)
	}
}
