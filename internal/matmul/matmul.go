// Package matmul is the im2col/GEMM compute plane under the nn and quant
// substrates. It lowers 2-D convolution onto a patch-matrix extraction
// (im2col) followed by a cache-blocked matrix multiply, which is how
// SC-DCNN-style CNN studies make accuracy sweeps tractable at scale: the
// patch gather is paid once per input instead of once per output channel,
// and the inner loops walk contiguous float32 slices with no bounds-check
// or multi-index overhead.
//
// # Determinism contract
//
// Float addition is not associative, so a GEMM lowering is only a
// drop-in replacement if it reproduces the reference summation order
// bit-for-bit. Every kernel here therefore keeps the inner reduction in
// fixed k-order: an output accumulator starts from its bias, and partial
// sums of `group` consecutive elements (one group per input channel for
// convolution, group 1 for fully-connected flat accumulation) are added
// in increasing k. Blocking only retiles the independent (row, column)
// loops — never the reduction — so outputs are bit-identical to the
// textbook nested loops at every block size. The equivalence tests in
// internal/nn pin this contract against the naive reference
// implementations.
//
// Zero padding is materialized as literal zeros in the patch matrix. The
// products they contribute are IEEE signed zeros, and adding a signed
// zero to an accumulator that started at a real value (or +0) never
// changes its bits, so the padded GEMM matches the pad-skipping loops
// exactly.
package matmul

import "sync"

// Pos describes the patch geometry of one convolution shape: for every
// output pixel, which kernel slots fall inside the input and where they
// read from. Integer (quant) and float lowering share one Pos, and the
// gradient scatter walks the same lists backwards, so the in-bounds
// enumeration order — (ky, kx) lexicographic, matching the reference
// loops — is part of the determinism contract.
//
// A Pos is immutable after construction and safe for concurrent use.
type Pos struct {
	H, W, K, Stride, Pad int
	OutH, OutW           int

	// Pixel p owns off[start[p]:start[p+1]] and kk[start[p]:start[p+1]]:
	// spatial source offsets (iy*W + ix) and kernel slots (ky*K + kx) of
	// its in-bounds window positions, in (ky, kx) order.
	start []int
	off   []int
	kk    []int
	full  bool // every pixel sees the complete K*K window
}

// OutSize returns the output spatial size for input size h under the
// given kernel/stride/pad.
func OutSize(h, k, stride, pad int) int { return (h+2*pad-k)/stride + 1 }

type posKey struct{ h, w, k, stride, pad int }

// posCache memoizes geometries. sync.Map keeps the steady-state lookup
// lock-free: Positions sits on the per-example forward hot path of every
// parallel evaluation worker, where a mutex would serialize the pool.
var posCache sync.Map // posKey -> *Pos

// Positions returns the (cached) patch geometry for the given input and
// kernel shape. Layers with a fixed input size share one Pos across the
// whole run.
func Positions(h, w, k, stride, pad int) *Pos {
	key := posKey{h, w, k, stride, pad}
	if p, ok := posCache.Load(key); ok {
		return p.(*Pos)
	}
	// Duplicate builds during a first-touch race are harmless: every
	// build is identical and LoadOrStore keeps exactly one.
	p, _ := posCache.LoadOrStore(key, newPositions(h, w, k, stride, pad))
	return p.(*Pos)
}

func newPositions(h, w, k, stride, pad int) *Pos {
	p := &Pos{H: h, W: w, K: k, Stride: stride, Pad: pad,
		OutH: OutSize(h, k, stride, pad), OutW: OutSize(w, k, stride, pad)}
	npix := p.OutH * p.OutW
	p.start = make([]int, npix+1)
	p.off = make([]int, 0, npix*k*k)
	p.kk = make([]int, 0, npix*k*k)
	pix := 0
	for oy := 0; oy < p.OutH; oy++ {
		for ox := 0; ox < p.OutW; ox++ {
			p.start[pix] = len(p.off)
			for ky := 0; ky < k; ky++ {
				iy := oy*stride + ky - pad
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < k; kx++ {
					ix := ox*stride + kx - pad
					if ix < 0 || ix >= w {
						continue
					}
					p.off = append(p.off, iy*w+ix)
					p.kk = append(p.kk, ky*k+kx)
				}
			}
			pix++
		}
	}
	p.start[npix] = len(p.off)
	p.full = len(p.off) == npix*k*k
	return p
}

// NumPix returns the output pixel count OutH*OutW.
func (p *Pos) NumPix() int { return p.OutH * p.OutW }

// Full reports whether every output pixel sees the complete K*K window
// (no padding truncation anywhere).
func (p *Pos) Full() bool { return p.full }

// At returns pixel pix's in-bounds spatial source offsets and kernel
// slots, in (ky, kx) order. The slices alias the Pos and must not be
// mutated.
func (p *Pos) At(pix int) (off, kk []int) {
	lo, hi := p.start[pix], p.start[pix+1]
	return p.off[lo:hi], p.kk[lo:hi]
}

// Im2col gathers src (CHW, inC x H x W) into a row-major patch matrix of
// shape [NumPix()][inC*K*K]: row p holds pixel p's receptive field with
// channels outermost and kernel slots innermost, zero-filled where the
// window hangs over the padding. dst is reused when its capacity
// suffices; the (possibly reallocated) matrix is returned.
func (p *Pos) Im2col(dst, src []float32, inC int) []float32 {
	k2 := p.K * p.K
	rowLen := inC * k2
	npix := p.NumPix()
	n := npix * rowLen
	if cap(dst) < n {
		dst = make([]float32, n)
	} else {
		dst = dst[:n]
		if !p.full {
			clear(dst)
		}
	}
	hw := p.H * p.W
	for pix := 0; pix < npix; pix++ {
		row := dst[pix*rowLen : (pix+1)*rowLen]
		lo, hi := p.start[pix], p.start[pix+1]
		if hi-lo == k2 {
			// Complete window: each kernel row is a contiguous run of
			// the input row, so gather by copy.
			base := p.off[lo] // iy0*W + ix0
			for ic := 0; ic < inC; ic++ {
				srcC := src[ic*hw+base:]
				dstC := row[ic*k2:]
				for ky := 0; ky < p.K; ky++ {
					copy(dstC[ky*p.K:ky*p.K+p.K], srcC[ky*p.W:ky*p.W+p.K])
				}
			}
			continue
		}
		offs, kks := p.off[lo:hi], p.kk[lo:hi]
		for ic := 0; ic < inC; ic++ {
			srcC := src[ic*hw:]
			dstC := row[ic*k2:]
			for i, o := range offs {
				dstC[kks[i]] = srcC[o]
			}
		}
	}
	return dst
}

// pixTile is the column-block width of the blocked kernels: one tile of
// patch rows (pixTile * rowLen floats) stays hot in cache while every
// weight row streams over it. 64 pixels x a 3x3x64 patch row is ~144 KiB
// worst-case in this tree, sized for L2.
const pixTile = 64

// ConvForward computes the standard-convolution GEMM
//
//	out[oc*npix + j] = bias[oc] + sum_g partial_g(w_row(oc), col_row(j))
//
// over w [outC x rowLen] and cols [npix x rowLen], with the reduction
// split into consecutive groups of `group` elements (the per-input-
// channel partials of the reference loops; group <= 1 selects flat
// element-by-element accumulation, the Dense contract). Blocked over
// pixel tiles; the reduction order never depends on the blocking.
func ConvForward(out, w, cols []float32, outC, npix, rowLen, group int, bias []float32) {
	for j0 := 0; j0 < npix; j0 += pixTile {
		j1 := min(j0+pixTile, npix)
		for oc := 0; oc < outC; oc++ {
			a := w[oc*rowLen : (oc+1)*rowLen]
			orow := out[oc*npix:]
			b0 := bias[oc]
			for j := j0; j < j1; j++ {
				orow[j] = accumGrouped(b0, a, cols[j*rowLen:(j+1)*rowLen], group)
			}
		}
	}
}

// DepthwiseForward computes the depthwise-convolution GEMM over
// per-channel kernels w [c x k2] and the shared patch matrix
// cols [npix x c*k2]: channel oc reduces only its own k2-slot group,
// added to the bias as one partial (the reference corrOne contract).
func DepthwiseForward(out, w, cols []float32, c, npix, k2 int, bias []float32) {
	rowLen := c * k2
	for j0 := 0; j0 < npix; j0 += pixTile {
		j1 := min(j0+pixTile, npix)
		for oc := 0; oc < c; oc++ {
			a := w[oc*k2 : (oc+1)*k2]
			orow := out[oc*npix:]
			b0 := bias[oc]
			for j := j0; j < j1; j++ {
				orow[j] = b0 + Dot(a, cols[j*rowLen+oc*k2:j*rowLen+(oc+1)*k2])
			}
		}
	}
}

// accumGrouped accumulates a·b onto init: per-group partials (each summed
// from zero in k-order) are added to the accumulator in increasing k;
// group <= 1 adds every product directly.
func accumGrouped(init float32, a, b []float32, group int) float32 {
	s := init
	if group <= 1 {
		b = b[:len(a)]
		for i, av := range a {
			s += av * b[i]
		}
		return s
	}
	for base := 0; base < len(a); base += group {
		s += Dot(a[base:base+group], b[base:base+group])
	}
	return s
}

// Dot returns the flat k-order dot product of equal-length slices,
// accumulated from zero.
func Dot(a, b []float32) float32 {
	var s float32
	b = b[:len(a)]
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Axpy computes dst[i] += alpha*src[i] over len(src) elements — the
// weight-gradient update of one (output channel, pixel) pair, applied in
// pixel order by the caller so each gradient element accumulates in the
// reference order.
func Axpy(dst []float32, alpha float32, src []float32) {
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] += alpha * v
	}
}
