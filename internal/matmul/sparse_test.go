package matmul

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// sparseSrc fills a CHW input with N(0,1) values, zeroing each element
// independently with probability sparsity.
func sparseSrc(rng *rand.Rand, n int, sparsity float64) []float32 {
	src := make([]float32, n)
	for i := range src {
		if rng.Float64() >= sparsity {
			src[i] = float32(rng.NormFloat64())
		}
	}
	return src
}

// convShapes is the equivalence-tier shape matrix: padding, stride,
// 1x1 and 5x5 kernels, non-square inputs, and a depthwise case.
var convShapes = []struct {
	name                 string
	h, w, k, stride, pad int
	inC, outC            int
	depthwise            bool
}{
	{"pad3x3", 8, 8, 3, 1, 1, 3, 4, false},
	{"stride2pad1", 9, 11, 3, 2, 1, 2, 3, false},
	{"1x1", 6, 6, 1, 1, 0, 4, 5, false},
	{"5x5pad2", 7, 7, 5, 1, 2, 2, 3, false},
	{"nonsquare-nopad", 5, 12, 3, 1, 0, 3, 2, false},
	{"depthwise3x3", 8, 8, 3, 1, 1, 4, 4, true},
}

var tierSparsities = []float64{0, 0.5, 0.9, 1.0}

// TestIm2colSparseMatchesDense: densifying the compacted structure
// reproduces the dense patch matrix exactly, and every surviving entry
// is nonzero.
func TestIm2colSparseMatchesDense(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	for _, sh := range convShapes {
		for _, sp := range tierSparsities {
			p := Positions(sh.h, sh.w, sh.k, sh.stride, sh.pad)
			src := sparseSrc(rng, sh.inC*sh.h*sh.w, sp)
			dense := p.Im2col(nil, src, sh.inC)
			sc := p.Im2colSparse(nil, src, sh.inC)
			for _, v := range sc.Vals {
				if v == 0 {
					t.Fatalf("%s sp=%.1f: zero survived compaction", sh.name, sp)
				}
			}
			k2 := sh.k * sh.k
			got := make([]float32, len(dense))
			for pix := 0; pix < p.NumPix(); pix++ {
				for ic := 0; ic < sh.inC; ic++ {
					s := pix*sh.inC + ic
					for e := sc.Seg[s]; e < sc.Seg[s+1]; e++ {
						got[pix*sh.inC*k2+ic*k2+sc.Kk[e]] = sc.Vals[e]
					}
				}
			}
			for i := range dense {
				if dense[i] != got[i] {
					t.Fatalf("%s sp=%.1f: densified mismatch at %d: %v vs %v",
						sh.name, sp, i, dense[i], got[i])
				}
			}
		}
	}
}

// TestConvForwardSparseBitIdentical: the compacted kernels reproduce the
// dense GEMM bit for bit over the full shape x sparsity tier, including
// reused (dirty) scratch structures.
func TestConvForwardSparseBitIdentical(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(23))
	var scratch SparseCols // reused across cases: stale contents must not leak
	for _, sh := range convShapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			p := Positions(sh.h, sh.w, sh.k, sh.stride, sh.pad)
			npix := p.NumPix()
			k2 := sh.k * sh.k
			wc := sh.inC
			if sh.depthwise {
				wc = 1
			}
			w := make([]float32, sh.outC*wc*k2)
			for i := range w {
				w[i] = float32(rng.NormFloat64())
			}
			bias := make([]float32, sh.outC)
			for i := range bias {
				bias[i] = float32(rng.NormFloat64())
			}
			for _, sp := range tierSparsities {
				src := sparseSrc(rng, sh.inC*sh.h*sh.w, sp)
				cols := p.Im2col(nil, src, sh.inC)
				want := make([]float32, sh.outC*npix)
				got := make([]float32, sh.outC*npix)
				sc := p.Im2colSparse(&scratch, src, sh.inC)
				if sh.depthwise {
					DepthwiseForward(want, w, cols, sh.inC, npix, k2, bias)
					DepthwiseForwardSparse(got, w, sc, sh.inC, npix, k2, bias)
				} else {
					ConvForward(want, w, cols, sh.outC, npix, sh.inC*k2, k2, bias)
					ConvForwardSparse(got, w, sc, sh.outC, npix, k2, bias)
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("sp=%.1f out[%d]: dense %v sparse %v", sp, i, want[i], got[i])
					}
				}
			}
		})
	}
}

// TestConvForwardSparseNegZeroBias: a -0 bias over an all-zero input is
// the signed-zero corner the `+ 0` normalization exists for — both
// kernels must produce +0, not -0.
func TestConvForwardSparseNegZeroBias(t *testing.T) {
	t.Parallel()
	p := Positions(4, 4, 3, 1, 1)
	npix := p.NumPix()
	negZero := float32(math.Copysign(0, -1))
	w := make([]float32, 1*1*9)
	bias := []float32{negZero}
	src := make([]float32, 16) // all zero
	cols := p.Im2col(nil, src, 1)
	sc := p.Im2colSparse(nil, src, 1)
	want := make([]float32, npix)
	got := make([]float32, npix)
	ConvForward(want, w, cols, 1, npix, 9, 9, bias)
	ConvForwardSparse(got, w, sc, 1, npix, 9, bias)
	for i := range want {
		if fmt.Sprint(want[i]) != fmt.Sprint(got[i]) {
			t.Fatalf("out[%d]: dense %v sparse %v", i, want[i], got[i])
		}
	}
}
