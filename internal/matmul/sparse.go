package matmul

// SparseCols is the column-compacted patch matrix of one input: the
// nonzero entries of the Im2col matrix, stored segment by segment where
// segment (pix*inC + ic) holds output pixel pix's in-bounds, nonzero
// activations from input channel ic, in (ky, kx) order — the same
// enumeration order as the dense patch matrix with the zero columns
// compressed out. A pixel's full compacted row is therefore the
// contiguous run Vals[Seg[pix*inC] : Seg[(pix+1)*inC]], channels
// outermost, which is what lets the quantized lowering hand one slice
// per (output channel, pixel) straight to a DotEngine.
type SparseCols struct {
	// Vals holds the nonzero activation values, segment-major.
	Vals []float32
	// Kk holds each value's kernel slot (ky*K + kx) within its channel
	// segment, parallel to Vals.
	Kk []int
	// Seg holds segment offsets: segment s owns Vals[Seg[s]:Seg[s+1]]
	// and Kk likewise. len(Seg) == NumPix()*InC + 1.
	Seg []int
	// InC is the channel count the matrix was gathered for.
	InC int
}

// NNZ returns the number of nonzero entries gathered.
func (sc *SparseCols) NNZ() int { return len(sc.Vals) }

// NumOffs returns the total number of in-bounds window positions across
// all output pixels — the per-channel dense patch-matrix population, and
// the dense-equivalent dot-product workload the accounting plane prices.
func (p *Pos) NumOffs() int { return p.start[p.NumPix()] }

// SparseThreshold is the input zero fraction at which the sparse
// lowering is worth taking: below it the per-entry index bookkeeping
// costs more than the skipped multiply-adds. 0.6 is conservative — the
// crossover sits near 0.5 for both the float gather kernels and the
// engine-mediated quantized path — and keeps half-dense inputs on the
// contiguous dense kernels.
const SparseThreshold = 0.6

// Im2colSparse gathers src (CHW, inC x H x W) into the column-compacted
// patch matrix: the dense Im2col with zero activation columns skipped.
// Zero-padded window positions never materialize (they are zeros by
// definition), so only in-bounds nonzero activations survive. dst's
// buffers are reused when capacity suffices; pass nil to allocate. The
// (possibly reallocated) structure is returned.
func (p *Pos) Im2colSparse(dst *SparseCols, src []float32, inC int) *SparseCols {
	if dst == nil {
		dst = &SparseCols{}
	}
	npix := p.NumPix()
	nseg := npix*inC + 1
	if cap(dst.Seg) < nseg {
		dst.Seg = make([]int, nseg)
	} else {
		dst.Seg = dst.Seg[:nseg]
	}
	dst.Vals = dst.Vals[:0]
	dst.Kk = dst.Kk[:0]
	dst.InC = inC
	hw := p.H * p.W
	seg := 0
	dst.Seg[0] = 0
	for pix := 0; pix < npix; pix++ {
		lo, hi := p.start[pix], p.start[pix+1]
		offs, kks := p.off[lo:hi], p.kk[lo:hi]
		for ic := 0; ic < inC; ic++ {
			srcC := src[ic*hw:]
			for i, o := range offs {
				if v := srcC[o]; v != 0 {
					dst.Vals = append(dst.Vals, v)
					dst.Kk = append(dst.Kk, kks[i])
				}
			}
			seg++
			dst.Seg[seg] = len(dst.Vals)
		}
	}
	return dst
}

// ConvForwardSparse computes the same GEMM as ConvForward over the
// column-compacted patch matrix, skipping the zero activation columns.
//
// Bit-identical to ConvForward on the densified matrix for finite
// weights: each per-channel partial accumulates the surviving products
// in the same k-order, and an IEEE accumulator that never holds -0
// (shown below) is unchanged by adding a signed-zero product. The
// skipped products are exactly the ±0 ones (activation zero times a
// finite weight); a partial's intermediate sum starts at +0, stays +0
// under ±0 additions, and a sum of two floats can only round to zero as
// +0 — so no intermediate is ever -0 and dropping the zero addends
// preserves every bit. The `+ 0` on the bias mirrors the dense kernel,
// whose first partial addition normalizes a -0 bias to +0 even when the
// whole row is zero.
func ConvForwardSparse(out, w []float32, sc *SparseCols, outC, npix, k2 int, bias []float32) {
	inC := sc.InC
	rowLen := inC * k2
	for j0 := 0; j0 < npix; j0 += pixTile {
		j1 := min(j0+pixTile, npix)
		for oc := 0; oc < outC; oc++ {
			wrow := w[oc*rowLen : (oc+1)*rowLen]
			orow := out[oc*npix:]
			b0 := bias[oc]
			for j := j0; j < j1; j++ {
				s := b0 + 0
				seg := j * inC
				for ic := 0; ic < inC; ic++ {
					lo, hi := sc.Seg[seg+ic], sc.Seg[seg+ic+1]
					if lo == hi {
						continue
					}
					var p float32
					wseg := wrow[ic*k2:]
					for e := lo; e < hi; e++ {
						p += sc.Vals[e] * wseg[sc.Kk[e]]
					}
					s += p
				}
				orow[j] = s
			}
		}
	}
}

// DepthwiseForwardSparse is ConvForwardSparse's depthwise counterpart:
// channel oc reduces only its own compacted segment, added to the bias
// as one partial — the DepthwiseForward contract with the zero columns
// skipped, bit-identical by the same signed-zero argument.
func DepthwiseForwardSparse(out, w []float32, sc *SparseCols, c, npix, k2 int, bias []float32) {
	for j0 := 0; j0 < npix; j0 += pixTile {
		j1 := min(j0+pixTile, npix)
		for oc := 0; oc < c; oc++ {
			wseg := w[oc*k2 : (oc+1)*k2]
			orow := out[oc*npix:]
			b0 := bias[oc]
			for j := j0; j < j1; j++ {
				lo, hi := sc.Seg[j*c+oc], sc.Seg[j*c+oc+1]
				var p float32
				for e := lo; e < hi; e++ {
					p += sc.Vals[e] * wseg[sc.Kk[e]]
				}
				orow[j] = b0 + p
			}
		}
	}
}
