package serve

import (
	"math"
	"math/bits"
	"sync"
	"time"

	"repro/internal/opcount"
)

// Stats is a snapshot of the server's traffic counters, exposed by
// (*Server).Stats and the GET /stats endpoint.
type Stats struct {
	// Accepted counts requests admitted to the queue; Rejected counts
	// backpressure rejections (queue full) and Draining counts requests
	// refused after Drain began. Served counts delivered results,
	// Cancelled requests whose (caller-owned) context ended before
	// their batch ran, and Expired requests dropped pre-dispatch by the
	// server-imposed per-model deadline (Options.DefaultTimeout).
	Accepted  uint64 `json:"accepted"`
	Rejected  uint64 `json:"rejected"`
	Draining  uint64 `json:"draining_rejected"`
	Served    uint64 `json:"served"`
	Cancelled uint64 `json:"cancelled"`
	Expired   uint64 `json:"deadline_expired"`
	Failed    uint64 `json:"failed"`
	// Batches counts executed micro-batches; BatchSizes[i] is how many
	// of them carried i+1 requests (the batch-size histogram).
	Batches    uint64   `json:"batches"`
	BatchSizes []uint64 `json:"batch_sizes"`
	// QueueDepth and QueueCap describe the request queue right now;
	// EnginesBusy/PoolSize describe engine-pool utilization.
	QueueDepth  int `json:"queue_depth"`
	QueueCap    int `json:"queue_cap"`
	EnginesBusy int `json:"engines_busy"`
	PoolSize    int `json:"pool_size"`
	// LatencyP50/LatencyP99 are submit-to-result quantiles (upper bucket
	// bounds of a log2-microsecond histogram).
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	// Deterministic reports the serving mode.
	Deterministic bool `json:"deterministic"`
	// Ops is the op/energy accounting summary, present only when the
	// server was built with Options.OpAccounting.
	Ops *OpStats `json:"ops,omitempty"`
}

// OpStats summarizes the server's op/energy accounting plane: arithmetic
// and memory-traffic totals for the work actually executed (Exec) next
// to what a dense lowering would have cost (Dense), plus per-inference
// energy under the repo's electronic and SCONNA models.
type OpStats struct {
	Inferences uint64         `json:"inferences"`
	Dense      opcount.Counts `json:"dense"`
	Exec       opcount.Counts `json:"exec"`
	// SkippedFrac is the fraction of dense ops elided by zero skipping.
	SkippedFrac float64 `json:"skipped_frac"`
	// Per-inference energy in microjoules: the electronic model priced at
	// the dense and executed op counts, and the SCONNA model at executed.
	ElectronicDenseUJ float64 `json:"electronic_dense_uj_per_inf"`
	ElectronicUJ      float64 `json:"electronic_uj_per_inf"`
	SconnaUJ          float64 `json:"sconna_uj_per_inf"`
}

// summarizeOps folds a recorder snapshot into the /stats summary.
func summarizeOps(p opcount.Profile) *OpStats {
	dense, exec := p.Dense(), p.Exec()
	o := &OpStats{
		Inferences:  p.Inferences,
		Dense:       dense,
		Exec:        exec,
		SkippedFrac: p.SkippedFrac(),
	}
	if p.Inferences > 0 {
		n := float64(p.Inferences)
		o.ElectronicDenseUJ = opcount.Electronic().UJ(dense) / n
		o.ElectronicUJ = opcount.Electronic().UJ(exec) / n
		o.SconnaUJ = opcount.Sconna().UJ(exec) / n
	}
	return o
}

// latBuckets is the log2-microsecond latency histogram size: bucket i
// holds observations in [2^(i-1), 2^i) microseconds, the last bucket is
// open-ended (~1.2 hours), which comfortably brackets both microsecond
// dispatch overheads and multi-second cold batches.
const latBuckets = 33

// histogram is a fixed-bucket log2 latency histogram. One mutex guards
// it; observations are a handful of stores, so contention stays
// negligible next to a forward pass.
type histogram struct {
	mu      sync.Mutex
	buckets [latBuckets]uint64
	count   uint64
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us))
	if b >= latBuckets {
		b = latBuckets - 1
	}
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.mu.Unlock()
}

// quantile returns the upper bound of the bucket containing the q-th
// (0..1) observation (nearest-rank: ceil(q*count)-1, zero-based), or 0
// when the histogram is empty.
func (h *histogram) quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q*float64(h.count))) - 1
	if rank >= h.count { // q >= 1 (or float overshoot): the max observation
		rank = h.count - 1
	}
	var seen uint64
	for b, n := range h.buckets {
		seen += n
		if seen > rank {
			return time.Duration(uint64(1)<<uint(b)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<uint(latBuckets)) * time.Microsecond
}
