package serve

import (
	"time"

	"repro/internal/opcount"
	"repro/internal/telemetry"
)

// Stats is a snapshot of the server's traffic counters, exposed by
// (*Server).Stats and the GET /stats endpoint.
type Stats struct {
	// Accepted counts requests admitted to the queue; Rejected counts
	// backpressure rejections (queue full) and Draining counts requests
	// refused after Drain began. Served counts delivered results,
	// Cancelled requests whose (caller-owned) context ended before
	// their batch ran, and Expired requests dropped pre-dispatch by the
	// server-imposed per-model deadline (Options.DefaultTimeout).
	Accepted  uint64 `json:"accepted"`
	Rejected  uint64 `json:"rejected"`
	Draining  uint64 `json:"draining_rejected"`
	Served    uint64 `json:"served"`
	Cancelled uint64 `json:"cancelled"`
	Expired   uint64 `json:"deadline_expired"`
	Failed    uint64 `json:"failed"`
	// Batches counts executed micro-batches; BatchSizes[i] is how many
	// of them carried i+1 requests (the batch-size histogram).
	Batches    uint64   `json:"batches"`
	BatchSizes []uint64 `json:"batch_sizes"`
	// QueueDepth and QueueCap describe the request queue right now;
	// EnginesBusy/PoolSize describe engine-pool utilization.
	QueueDepth  int `json:"queue_depth"`
	QueueCap    int `json:"queue_cap"`
	EnginesBusy int `json:"engines_busy"`
	PoolSize    int `json:"pool_size"`
	// LatencyP50..LatencyP999 are submit-to-result quantiles (upper
	// bucket bounds of the telemetry plane's log2-microsecond
	// histogram), and LatencyBuckets is the full histogram they were
	// read from — bucket counts with their inclusive upper bounds,
	// trailing empty buckets trimmed — so dashboards are not limited to
	// the precomputed quantiles.
	LatencyP50     time.Duration   `json:"latency_p50_ns"`
	LatencyP90     time.Duration   `json:"latency_p90_ns"`
	LatencyP99     time.Duration   `json:"latency_p99_ns"`
	LatencyP999    time.Duration   `json:"latency_p999_ns"`
	LatencyBuckets []LatencyBucket `json:"latency_buckets,omitempty"`
	// Deterministic reports the serving mode.
	Deterministic bool `json:"deterministic"`
	// Ops is the op/energy accounting summary, present only when the
	// server was built with Options.OpAccounting.
	Ops *OpStats `json:"ops,omitempty"`
}

// OpStats summarizes the server's op/energy accounting plane: arithmetic
// and memory-traffic totals for the work actually executed (Exec) next
// to what a dense lowering would have cost (Dense), plus per-inference
// energy under the repo's electronic and SCONNA models.
type OpStats struct {
	Inferences uint64         `json:"inferences"`
	Dense      opcount.Counts `json:"dense"`
	Exec       opcount.Counts `json:"exec"`
	// SkippedFrac is the fraction of dense ops elided by zero skipping.
	SkippedFrac float64 `json:"skipped_frac"`
	// Per-inference energy in microjoules: the electronic model priced at
	// the dense and executed op counts, and the SCONNA model at executed.
	ElectronicDenseUJ float64 `json:"electronic_dense_uj_per_inf"`
	ElectronicUJ      float64 `json:"electronic_uj_per_inf"`
	SconnaUJ          float64 `json:"sconna_uj_per_inf"`
}

// summarizeOps folds a recorder snapshot into the /stats summary.
func summarizeOps(p opcount.Profile) *OpStats {
	dense, exec := p.Dense(), p.Exec()
	o := &OpStats{
		Inferences:  p.Inferences,
		Dense:       dense,
		Exec:        exec,
		SkippedFrac: p.SkippedFrac(),
	}
	if p.Inferences > 0 {
		n := float64(p.Inferences)
		o.ElectronicDenseUJ = opcount.Electronic().UJ(dense) / n
		o.ElectronicUJ = opcount.Electronic().UJ(exec) / n
		o.SconnaUJ = opcount.Sconna().UJ(exec) / n
	}
	return o
}

// LatencyBucket is one exported bucket of the submit-to-result log2
// latency histogram: Count observations at or under LeNS (and above
// the previous bucket's bound). The bucketing lives in
// internal/telemetry (telemetry.Histogram), shared with the per-stage
// histograms; this is its JSON-facing form.
type LatencyBucket struct {
	LeNS  time.Duration `json:"le_ns"`
	Count uint64        `json:"count"`
}

// latencyBuckets renders a histogram snapshot for /stats, trimming the
// trailing run of empty buckets (the document stays small while every
// populated bucket is visible).
func latencyBuckets(snap telemetry.HistSnapshot) []LatencyBucket {
	last := -1
	for i, n := range snap.Buckets {
		if n > 0 {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	out := make([]LatencyBucket, last+1)
	for i := 0; i <= last; i++ {
		out[i] = LatencyBucket{LeNS: telemetry.BucketUpper(i), Count: snap.Buckets[i]}
	}
	return out
}
