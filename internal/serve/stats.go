package serve

import (
	"math"
	"math/bits"
	"sync"
	"time"
)

// Stats is a snapshot of the server's traffic counters, exposed by
// (*Server).Stats and the GET /stats endpoint.
type Stats struct {
	// Accepted counts requests admitted to the queue; Rejected counts
	// backpressure rejections (queue full) and Draining counts requests
	// refused after Drain began. Served counts delivered results and
	// Cancelled requests whose context ended before their batch ran.
	Accepted  uint64 `json:"accepted"`
	Rejected  uint64 `json:"rejected"`
	Draining  uint64 `json:"draining_rejected"`
	Served    uint64 `json:"served"`
	Cancelled uint64 `json:"cancelled"`
	Failed    uint64 `json:"failed"`
	// Batches counts executed micro-batches; BatchSizes[i] is how many
	// of them carried i+1 requests (the batch-size histogram).
	Batches    uint64   `json:"batches"`
	BatchSizes []uint64 `json:"batch_sizes"`
	// QueueDepth and QueueCap describe the request queue right now;
	// EnginesBusy/PoolSize describe engine-pool utilization.
	QueueDepth  int `json:"queue_depth"`
	QueueCap    int `json:"queue_cap"`
	EnginesBusy int `json:"engines_busy"`
	PoolSize    int `json:"pool_size"`
	// LatencyP50/LatencyP99 are submit-to-result quantiles (upper bucket
	// bounds of a log2-microsecond histogram).
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	// Deterministic reports the serving mode.
	Deterministic bool `json:"deterministic"`
}

// latBuckets is the log2-microsecond latency histogram size: bucket i
// holds observations in [2^(i-1), 2^i) microseconds, the last bucket is
// open-ended (~1.2 hours), which comfortably brackets both microsecond
// dispatch overheads and multi-second cold batches.
const latBuckets = 33

// histogram is a fixed-bucket log2 latency histogram. One mutex guards
// it; observations are a handful of stores, so contention stays
// negligible next to a forward pass.
type histogram struct {
	mu      sync.Mutex
	buckets [latBuckets]uint64
	count   uint64
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us))
	if b >= latBuckets {
		b = latBuckets - 1
	}
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.mu.Unlock()
}

// quantile returns the upper bound of the bucket containing the q-th
// (0..1) observation (nearest-rank: ceil(q*count)-1, zero-based), or 0
// when the histogram is empty.
func (h *histogram) quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q*float64(h.count))) - 1
	if rank >= h.count { // q >= 1 (or float overshoot): the max observation
		rank = h.count - 1
	}
	var seen uint64
	for b, n := range h.buckets {
		seen += n
		if seen > rank {
			return time.Duration(uint64(1)<<uint(b)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<uint(latBuckets)) * time.Microsecond
}
