package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/quant"
)

func httpServer(t *testing.T, factory quant.EngineFactory, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, factory, opts)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func postJSON(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/classify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func marshalInput(t *testing.T, data []float32) string {
	t.Helper()
	b, err := json.Marshal(data)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestHTTPClassifySingleAndBatch(t *testing.T) {
	_, hs := httpServer(t, quant.SharedEngine(quant.ExactEngine{}), exactOpts(func(o *Options) {
		o.ClassNames = []string{"w", "x", "y", "z"}
	}))
	in := marshalInput(t, testInputs(1, 61)[0].Data)

	code, body := postJSON(t, hs.URL, `{"input":`+in+`}`)
	if code != http.StatusOK {
		t.Fatalf("single: %d %s", code, body)
	}
	var res Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.ClassName == "" || res.Logits != nil {
		t.Fatalf("single response %s: want class name, no logits by default", body)
	}

	code, body = postJSON(t, hs.URL, `{"inputs":[`+in+`,`+in+`],"logits":true}`)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	var batch batchResponse
	if err := json.Unmarshal([]byte(body), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("batch results: %s", body)
	}
	for i, r := range batch.Results {
		if r.Logits == nil {
			t.Fatalf("result %d missing requested logits", i)
		}
		if i > 0 && (r.Class != batch.Results[0].Class || r.Seq != batch.Results[0].Seq+uint64(i)) {
			t.Fatalf("identical inputs diverged or seqs non-consecutive: %s", body)
		}
	}
}

func TestHTTPBadRequests(t *testing.T) {
	s, hs := httpServer(t, quant.SharedEngine(quant.ExactEngine{}), exactOpts(nil))
	in := marshalInput(t, testInputs(1, 67)[0].Data)
	cases := []struct {
		name, body string
	}{
		{"empty", `{}`},
		{"not json", `{{{`},
		{"both forms", `{"input":` + in + `,"inputs":[` + in + `]}`},
		{"wrong length", `{"input":[1,2,3]}`},
		{"wrong length in batch", `{"inputs":[[1,2,3]]}`},
	}
	for _, c := range cases {
		if code, body := postJSON(t, hs.URL, c.body); code != http.StatusBadRequest {
			t.Fatalf("%s: %d %s", c.name, code, body)
		}
	}
	if code, _ := postJSON(t, hs.URL, `{"inputs":[`+strings.Repeat(in+",", cap(s.queue))+in+`]}`); code != http.StatusBadRequest {
		t.Fatalf("oversized batch: %d", code)
	}
	resp, err := http.Get(hs.URL + "/v1/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET classify: %d", resp.StatusCode)
	}
}

func TestHTTPBackpressure429(t *testing.T) {
	g := newGatedEngine()
	s, hs := httpServer(t, quant.SharedEngine(g), Options{
		InputShape: testShape, PoolSize: 1, MaxBatch: 1, QueueDepth: 1,
	})
	// Wedge the engine, then fill the pipeline via the API.
	first, err := s.enqueue(context.Background(), testInputs(1, 71))
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	in := marshalInput(t, testInputs(1, 73)[0].Data)
	saw429 := false
	for i := 0; i < 20 && !saw429; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/classify", strings.NewReader(`{"input":`+in+`}`))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Fatal("429 without Retry-After")
				}
				saw429 = true
			}
			resp.Body.Close()
		}
		cancel()
	}
	if !saw429 {
		t.Fatal("overload never surfaced as 429")
	}
	close(g.release)
	<-first[0].done
}

func TestHTTPHealthAndStats(t *testing.T) {
	s, hs := httpServer(t, quant.SharedEngine(quant.ExactEngine{}), exactOpts(nil))
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	if _, err := s.SubmitBatch(context.Background(), testInputs(3, 79)); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Served != 3 || st.PoolSize != 2 || len(st.BatchSizes) != 4 {
		t.Fatalf("stats: %+v", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d", resp.StatusCode)
	}
	if code, _ := postJSON(t, hs.URL, `{"input":`+marshalInput(t, testInputs(1, 83)[0].Data)+`}`); code != http.StatusServiceUnavailable {
		t.Fatalf("draining classify: %d", code)
	}
}

// The compact wire formats (base64 field and raw octet-stream body)
// must classify identically to the JSON float-array form.
func TestHTTPCompactWireFormats(t *testing.T) {
	_, hs := httpServer(t, quant.SharedEngine(quant.ExactEngine{}), exactOpts(nil))
	xs := testInputs(2, 97)
	rawBytes := func(data []float32) []byte {
		raw := make([]byte, 4*len(data))
		for j, v := range data {
			binary.LittleEndian.PutUint32(raw[4*j:], math.Float32bits(v))
		}
		return raw
	}

	code, body := postJSON(t, hs.URL, `{"input":`+marshalInput(t, xs[0].Data)+`,"logits":true}`)
	if code != http.StatusOK {
		t.Fatalf("json leg: %d %s", code, body)
	}
	var want Result
	if err := json.Unmarshal([]byte(body), &want); err != nil {
		t.Fatal(err)
	}

	b64 := base64.StdEncoding.EncodeToString(rawBytes(xs[0].Data))
	code, body = postJSON(t, hs.URL, `{"input_b64":"`+b64+`","logits":true}`)
	if code != http.StatusOK {
		t.Fatalf("b64 single: %d %s", code, body)
	}
	var got Result
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Class != want.Class || fmt.Sprint(got.Logits) != fmt.Sprint(want.Logits) {
		t.Fatalf("b64 single diverged: %s", body)
	}

	concat := append(rawBytes(xs[0].Data), rawBytes(xs[1].Data)...)
	code, body = postJSON(t, hs.URL, `{"inputs_b64":"`+base64.StdEncoding.EncodeToString(concat)+`","logits":true}`)
	if code != http.StatusOK {
		t.Fatalf("b64 batch: %d %s", code, body)
	}
	var batch batchResponse
	if err := json.Unmarshal([]byte(body), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 || batch.Results[0].Class != want.Class {
		t.Fatalf("b64 batch diverged: %s", body)
	}

	resp, err := http.Post(hs.URL+"/v1/classify?logits=1", rawContentType, bytes.NewReader(concat))
	if err != nil {
		t.Fatal(err)
	}
	rawBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw batch: %d %s", resp.StatusCode, rawBody)
	}
	batch = batchResponse{}
	if err := json.Unmarshal(rawBody, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 || batch.Results[0].Class != want.Class ||
		fmt.Sprint(batch.Results[0].Logits) != fmt.Sprint(want.Logits) {
		t.Fatalf("raw batch diverged: %s", rawBody)
	}

	// Malformed compact bodies are 400s, not 500s.
	if code, _ := postJSON(t, hs.URL, `{"input_b64":"!!!"}`); code != http.StatusBadRequest {
		t.Fatalf("bad base64: %d", code)
	}
	if code, _ := postJSON(t, hs.URL, `{"inputs_b64":"`+base64.StdEncoding.EncodeToString(concat[:12])+`"}`); code != http.StatusBadRequest {
		t.Fatalf("misaligned b64 batch: %d", code)
	}
	resp, err = http.Post(hs.URL+"/v1/classify", rawContentType, bytes.NewReader(concat[:10]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("misaligned raw body: %d", resp.StatusCode)
	}
}

// The HTTP-level replay pin: a deterministic server fed the same trace
// twice — across restarts and different pool sizes — must emit
// byte-identical response bodies.
func TestHTTPDeterministicReplayBytes(t *testing.T) {
	factory := quant.SconnaEngineFactory(testCoreConfig())
	trace := testInputs(8, 89)
	run := func(pool, maxBatch int) []string {
		_, hs := httpServer(t, factory, Options{
			InputShape: testShape, Deterministic: true,
			PoolSize: pool, MaxBatch: maxBatch, QueueDepth: 64,
		})
		var bodies []string
		for _, x := range trace {
			code, body := postJSON(t, hs.URL, `{"input":`+marshalInput(t, x.Data)+`,"logits":true}`)
			if code != http.StatusOK {
				t.Fatalf("replay request: %d %s", code, body)
			}
			bodies = append(bodies, body)
		}
		return bodies
	}
	first := run(1, 1)
	for _, cfg := range []struct{ pool, maxBatch int }{{1, 1}, {3, 8}} {
		again := run(cfg.pool, cfg.maxBatch)
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("pool=%d maxBatch=%d: response %d drifted:\n%s\nvs\n%s",
					cfg.pool, cfg.maxBatch, i, first[i], again[i])
			}
		}
	}
}
