package serve

import (
	"context"
	"math"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// TestSparseInputsDeterministicAndControlled pins the load generator: a
// given (n, size, sparsity, seed) yields byte-identical inputs, the
// realized zero fraction tracks the request, and nonzeros stay positive.
func TestSparseInputsDeterministicAndControlled(t *testing.T) {
	t.Parallel()
	a := SparseInputs(4, 4096, 0.9, 7)
	b := SparseInputs(4, 4096, 0.9, 7)
	zeros, total := 0, 0
	for i := range a {
		for j := range a[i] {
			if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
				t.Fatalf("input %d element %d: %v vs %v — not deterministic", i, j, a[i][j], b[i][j])
			}
			total++
			if a[i][j] == 0 {
				zeros++
			} else if a[i][j] <= 0 || a[i][j] > 1 {
				t.Fatalf("nonzero element %v outside (0, 1]", a[i][j])
			}
		}
	}
	if frac := float64(zeros) / float64(total); frac < 0.85 || frac > 0.95 {
		t.Fatalf("realized sparsity %.3f, want ~0.9", frac)
	}
	c := SparseInputs(1, 4096, 0.9, 8)
	same := true
	for j := range c[0] {
		if math.Float32bits(c[0][j]) != math.Float32bits(a[0][j]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical inputs")
	}
	if xs := SparseInputs(2, 16, 1.0, 3); xs[0][0] != 0 || xs[1][15] != 0 {
		t.Fatal("sparsity 1.0 must yield all-zero inputs")
	}
}

// TestServeOpAccounting pins the /stats accounting plane: with
// Options.OpAccounting the server reports op totals that grow with
// traffic and show zero-skipping savings on sparse inputs; without it
// the Ops summary is absent entirely (the zero-cost-when-off contract).
func TestServeOpAccounting(t *testing.T) {
	s := newTestServer(t, quant.SharedEngine(quant.ExactEngine{}), exactOpts(func(o *Options) {
		o.OpAccounting = true
	}))
	size := testShape[0] * testShape[1] * testShape[2]
	for _, raw := range SparseInputs(5, size, 0.95, 11) {
		x := tensor.New(testShape...)
		copy(x.Data, raw)
		if _, err := s.Submit(context.Background(), x); err != nil {
			t.Fatal(err)
		}
	}
	ops := s.Stats().Ops
	if ops == nil {
		t.Fatal("OpAccounting on: Stats().Ops is nil")
	}
	if ops.Inferences != 5 {
		t.Fatalf("inferences %d, want 5", ops.Inferences)
	}
	if ops.Dense.Total() == 0 || ops.Exec.Total() == 0 {
		t.Fatalf("empty op totals: dense %+v exec %+v", ops.Dense, ops.Exec)
	}
	if ops.Exec.Total() >= ops.Dense.Total() || ops.SkippedFrac <= 0 {
		t.Fatalf("95%%-sparse traffic skipped nothing: exec %d dense %d skipped %.3f",
			ops.Exec.Total(), ops.Dense.Total(), ops.SkippedFrac)
	}
	if ops.ElectronicDenseUJ <= ops.ElectronicUJ || ops.ElectronicUJ <= 0 || ops.SconnaUJ <= 0 {
		t.Fatalf("energy summary inconsistent: %+v", ops)
	}

	off := newTestServer(t, quant.SharedEngine(quant.ExactEngine{}), exactOpts(nil))
	if _, err := off.Submit(context.Background(), testInputs(1, 31)[0]); err != nil {
		t.Fatal(err)
	}
	if off.Stats().Ops != nil {
		t.Fatal("OpAccounting off: Stats().Ops must be absent")
	}
}
