package serve

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/quant"
)

// Engine is one pooled inference unit: a factory-built DotEngine paired
// with the batch scratch that serves it. The SCONNA engine is stateful
// (its VDPC advances an ADC-noise stream per dot product) and the
// scratch holds per-stream gather buffers, so the pair moves through the
// pool as a unit and is owned by exactly one goroutine between Get and
// Put — which is what keeps the serving plane -race clean.
type Engine struct {
	// ID is the engine's pool slot, which also seeded its factory build:
	// engine i is factory(i), so a pool realizes the same set of noise
	// streams on every start.
	ID int
	// Dot is the dot-product substrate.
	Dot quant.DotEngine
	// Scratch is the engine-private batched-inference scratch.
	Scratch *quant.BatchScratch
}

// Pool owns a fixed set of engines checked out per micro-batch. It is a
// plain counting resource: Get blocks until an engine is free (or the
// context ends), Put returns it. Utilization is observable through
// InUse, which the /stats endpoint exposes.
type Pool struct {
	free chan *Engine
	size int
	busy atomic.Int64
}

// NewPool builds n engines through factory (engine i from factory(i))
// and returns the filled pool.
func NewPool(n int, factory quant.EngineFactory) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("serve: pool size %d < 1", n)
	}
	p := &Pool{free: make(chan *Engine, n), size: n}
	for i := 0; i < n; i++ {
		eng, err := factory(i)
		if err != nil {
			return nil, fmt.Errorf("serve: building pool engine %d: %w", i, err)
		}
		p.free <- &Engine{ID: i, Dot: eng, Scratch: quant.NewBatchScratch()}
	}
	return p, nil
}

// Get checks an engine out, blocking until one is free or ctx ends.
func (p *Pool) Get(ctx context.Context) (*Engine, error) {
	select {
	case e := <-p.free:
		p.busy.Add(1)
		return e, nil
	default:
	}
	select {
	case e := <-p.free:
		p.busy.Add(1)
		return e, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Put returns a checked-out engine. Returning an engine twice (or one
// the pool never issued) is a programming error and panics rather than
// silently growing the pool.
func (p *Pool) Put(e *Engine) {
	if e == nil {
		panic("serve: Put(nil)")
	}
	p.busy.Add(-1)
	select {
	case p.free <- e:
	default:
		panic("serve: engine returned to a full pool")
	}
}

// Size returns the pool's engine count.
func (p *Pool) Size() int { return p.size }

// InUse returns how many engines are currently checked out.
func (p *Pool) InUse() int { return int(p.busy.Load()) }
