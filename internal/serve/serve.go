// Package serve is the serving plane of the reproduction: a long-lived,
// micro-batching inference service over the quantized compute plane
// (internal/quant), turning the one-shot Table V evaluation machinery
// into a system that sustains classify traffic.
//
// Three pieces cooperate:
//
//   - An engine Pool owns N factory-built SCONNA engines, each paired
//     with private scratch buffers, checked out per micro-batch — the
//     serving-time form of the engine-per-shard ownership rule that
//     keeps stateful VDPCs single-goroutine.
//
//   - A micro-batcher coalesces individual classify requests from a
//     bounded queue into batches (up to MaxBatch, waiting at most
//     MaxWait), runs them through quant.(*Network).ForwardBatch on a
//     pooled engine, and fans results back to per-request futures. A
//     full queue rejects new work (ErrOverloaded — HTTP 429) instead of
//     buffering unboundedly.
//
//   - An HTTP JSON API (POST /v1/classify, GET /healthz, GET /stats)
//     fronts the batcher, with graceful drain on shutdown.
//
// A Server hosts exactly one quantized network. Multi-model serving —
// the paper-faithful scenario of six CNNs time-sharing one accelerator —
// is the Registry: named, versioned models (version = content digest of
// the quantized network), one private Server per model, routed by name
// (POST /v1/models/{name}/classify) with the legacy /v1/classify kept as
// a byte-compatible alias for the default model, and hot
// Register/Unregister with per-model graceful drain.
//
// Two serving modes trade replay stability against throughput. In the
// default throughput mode every batch runs on one pooled engine, so a
// stateful engine's noise stream depends on how traffic happened to
// batch. Deterministic mode instead derives one fresh engine per request
// from its arrival index (factory(seq)), making every response a pure
// function of (network, input, seq) — bit-identical when a recorded
// trace is replayed, at any pool size and any batching (pinned by the
// replay tests).
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/opcount"
	"repro/internal/parallel"
	"repro/internal/quant"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// ErrOverloaded reports a full request queue: the caller should back off
// and retry (the HTTP layer maps it to 429 with a Retry-After derived
// from the observed drain rate — see the backoff contract on
// writeSubmitError).
var ErrOverloaded = errors.New("serve: request queue full")

// ErrDraining reports a server that has begun graceful shutdown and no
// longer accepts work (HTTP 503).
var ErrDraining = errors.New("serve: draining")

// ErrDeadline reports a request that exceeded the server-imposed
// per-model deadline (Options.DefaultTimeout) before completing. It is
// distinct from the caller's own context.DeadlineExceeded: the HTTP
// layer maps a server-imposed deadline to 504 and a caller-gone
// context to 499.
var ErrDeadline = errors.New("serve: request deadline exceeded")

// Options configures a Server.
type Options struct {
	// MaxBatch bounds how many requests one micro-batch carries
	// (<= 0 selects 32).
	MaxBatch int
	// MaxWait bounds how long the batcher waits for a partial batch to
	// fill once at least one request is pending. 0 never waits: the
	// batcher greedily drains whatever is queued and fires immediately,
	// which under concurrent closed-loop load still forms full batches
	// (arrivals pile up while the previous batch computes) and costs
	// lone requests no added latency.
	MaxWait time.Duration
	// QueueDepth bounds the pending-request queue; admission beyond it
	// fails with ErrOverloaded (<= 0 selects 4*MaxBatch).
	QueueDepth int
	// PoolSize is the engine-pool size (<= 0 selects GOMAXPROCS).
	PoolSize int
	// Deterministic selects replay-stable serving: request seq drives a
	// fresh factory(seq) engine instead of a pooled stream (see the
	// package comment for the trade-off).
	Deterministic bool
	// InputShape is the tensor shape every classify input must carry
	// (nil selects 1x16x16, the procedural dataset's shape).
	InputShape []int
	// ClassNames optionally labels the logits indices in results.
	ClassNames []string
	// OpAccounting attaches an op/energy recorder to the serving hot
	// path: every batch tallies per-layer dense-equivalent and executed
	// op counts (atomic counters shared across the pool), summarized in
	// Stats().Ops. Off by default — when off, the forward paths see a
	// nil recorder and pay one branch per layer, nothing else.
	OpAccounting bool
	// DefaultTimeout is the per-model request deadline: Submit and
	// SubmitBatch callers whose context carries no deadline of its own
	// get one this far out. A request that expires while queued is
	// dropped before any engine is claimed and resolves with
	// ErrDeadline (HTTP 504). 0 disables — requests may wait in the
	// queue indefinitely, the pre-resilience behavior.
	DefaultTimeout time.Duration
	// AdmissionWeight sizes this model's share of a registry-wide
	// in-flight budget when models share a box (see
	// Registry.SetMaxInFlight); <= 0 selects 1. Ignored outside a
	// registry.
	AdmissionWeight int
	// Breaker enables a per-model circuit breaker on the registry's
	// routed HTTP paths: server-side failures (5xx) feed a rolling
	// window, tripping sheds load with 503 + Retry-After, and half-open
	// probes decide recovery. nil disables (the byte-compatible legacy
	// behavior). Ignored outside a registry.
	Breaker *resilience.BreakerOptions
	// Telemetry enables the telemetry plane: every admitted request
	// carries a span (trace ID derived from its arrival seq via
	// splitmix64, so traces replay stably) marked through
	// decode → admit → queue → assemble → checkout → forward → respond,
	// feeding per-stage latency histograms and a bounded ring of recent
	// traces (GET /debug/traces, Chrome trace-event JSON). nil disables
	// — the Nop path: no span allocates, the hot path pays one nil
	// check per stage mark, and replayed traffic stays byte-identical
	// (pinned by the Nop-telemetry replay test). Telemetry never
	// touches results, so byte-identity also holds with it on.
	Telemetry *telemetry.Options
}

// Result is one classify outcome.
type Result struct {
	// Seq is the request's arrival index — in deterministic mode also
	// the seed index of the engine that served it.
	Seq uint64 `json:"seq"`
	// Class is the argmax logit index, named by ClassName when the
	// server was configured with class names.
	Class     int    `json:"class"`
	ClassName string `json:"class_name,omitempty"`
	// Logits holds the raw logits (omitted on the wire unless asked).
	Logits []float32 `json:"logits,omitempty"`
	// Engine identifies the arithmetic stream: the pool slot in
	// throughput mode, the seq-derived engine index in deterministic
	// mode (so responses stay replay-stable at any pool size).
	Engine int `json:"engine"`
}

// request is one queued classify call; done is its future — shared by
// the admission group and buffered for the whole group, so the batch
// runner never blocks on an abandoned caller. idx is the request's
// position within its group (groups may split across micro-batches, so
// outcomes carry it back).
type request struct {
	seq  uint64
	idx  int
	x    *tensor.T
	ctx  context.Context
	enq  time.Time
	done chan outcome
	// sp is the request's telemetry span; nil (free) when the server
	// runs without telemetry.
	sp *telemetry.Span
}

type outcome struct {
	idx int
	res Result
	err error
}

// Server is the micro-batching inference service.
type Server struct {
	qn      *quant.Network
	factory quant.EngineFactory
	opts    Options
	pool    *Pool
	queue   chan *request
	batches chan []*request

	// enqMu serializes admissions so arrival order, seq assignment and
	// queue order agree — the property deterministic replay relies on.
	enqMu   sync.Mutex
	nextSeq uint64

	// mu guards closed: admissions hold it shared, Drain exclusively,
	// so the queue never sees a send after close.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup

	// ops is the op/energy recorder (nil unless Options.OpAccounting);
	// shared by every pooled engine's scratch — its counters are atomic.
	ops *opcount.Recorder

	// tel is the telemetry plane (nil unless Options.Telemetry — nil is
	// the Nop path every span helper tolerates).
	tel *telemetry.Plane

	accepted  atomic.Uint64
	rejected  atomic.Uint64
	draining  atomic.Uint64
	served    atomic.Uint64
	cancelled atomic.Uint64
	expired   atomic.Uint64
	failed    atomic.Uint64
	nbatches  atomic.Uint64
	batchMu   sync.Mutex
	batchHist []uint64
	lat       telemetry.Histogram

	// Drain-rate window: served-per-second over the recent past, the
	// denominator of the 429 Retry-After estimate (backlog / rate).
	rateMu     sync.Mutex
	rateStart  time.Time
	rateServed uint64
	ratePrev   float64
}

// New builds and starts a Server over the quantized network. factory
// seeds both the engine pool (engine i = factory(i)) and, in
// deterministic mode, the per-request engines (factory(seq)).
func New(qn *quant.Network, factory quant.EngineFactory, opts Options) (*Server, error) {
	if qn == nil {
		return nil, errors.New("serve: nil network")
	}
	if factory == nil {
		return nil, errors.New("serve: nil engine factory")
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 32
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 4 * opts.MaxBatch
	}
	opts.PoolSize = parallel.Workers(opts.PoolSize)
	if opts.InputShape == nil {
		opts.InputShape = []int{1, 16, 16}
	}
	pool, err := NewPool(opts.PoolSize, factory)
	if err != nil {
		return nil, err
	}
	s := &Server{
		qn:        qn,
		factory:   factory,
		opts:      opts,
		pool:      pool,
		queue:     make(chan *request, opts.QueueDepth),
		batches:   make(chan []*request, opts.PoolSize),
		batchHist: make([]uint64, opts.MaxBatch),
		rateStart: time.Now(),
	}
	if opts.OpAccounting {
		s.ops = qn.OpRecorder()
	}
	if opts.Telemetry != nil {
		s.tel = telemetry.New(*opts.Telemetry)
	}
	s.wg.Add(1 + opts.PoolSize)
	go s.dispatch()
	for i := 0; i < opts.PoolSize; i++ {
		go s.runWorker()
	}
	return s, nil
}

// Options returns the server's resolved configuration.
func (s *Server) Options() Options { return s.opts }

// Telemetry returns the server's telemetry plane, or nil when the
// server runs without one (the Nop path).
func (s *Server) Telemetry() *telemetry.Plane { return s.tel }

// inputLen is the flat element count every input must carry.
func (s *Server) inputLen() int {
	n := 1
	for _, d := range s.opts.InputShape {
		n *= d
	}
	return n
}

func (s *Server) checkInput(x *tensor.T) error {
	if x == nil {
		return errors.New("serve: nil input")
	}
	// Validate the full shape, not just the element count: ForwardBatch
	// indexes ranks directly, so a wrong-rank tensor from a Go caller
	// must be rejected at admission, never inside a worker.
	if len(x.Shape) != len(s.opts.InputShape) {
		return fmt.Errorf("serve: input shape %v, want %v", x.Shape, s.opts.InputShape)
	}
	for i, d := range s.opts.InputShape {
		if x.Shape[i] != d {
			return fmt.Errorf("serve: input shape %v, want %v", x.Shape, s.opts.InputShape)
		}
	}
	if x.Len() != s.inputLen() {
		return fmt.Errorf("serve: input has %d elements, want %d (shape %v)",
			x.Len(), s.inputLen(), s.opts.InputShape)
	}
	return nil
}

// enqueue admits a group of inputs atomically: all of them enter the
// queue in consecutive seq order, or none do (ErrOverloaded). ctx is
// attached to each request so the batch runner can skip work whose
// caller has gone away.
func (s *Server) enqueue(ctx context.Context, xs []*tensor.T) ([]*request, error) {
	for _, x := range xs {
		if err := s.checkInput(x); err != nil {
			return nil, err
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.draining.Add(uint64(len(xs)))
		return nil, ErrDraining
	}
	s.enqMu.Lock()
	defer s.enqMu.Unlock()
	if cap(s.queue)-len(s.queue) < len(xs) {
		s.rejected.Add(uint64(len(xs)))
		return nil, ErrOverloaded
	}
	now := time.Now()
	var httpInfo telemetry.HTTPInfo
	if s.tel != nil {
		httpInfo = telemetry.HTTPInfoFrom(ctx)
	}
	done := make(chan outcome, len(xs))
	backing := make([]request, len(xs))
	reqs := make([]*request, len(xs))
	for i, x := range xs {
		r := &backing[i]
		*r = request{seq: s.nextSeq, idx: i, x: x, ctx: ctx, enq: now, done: done}
		if s.tel != nil {
			// The HTTP decode window is shared by the whole admission
			// group; each request's span carries it so per-stage
			// histograms see the cost a caller actually paid.
			r.sp = s.tel.StartSpan(r.seq, now, httpInfo.Decode, httpInfo.ClientID)
		}
		s.nextSeq++
		// Cannot block: capacity was checked under enqMu and only
		// admissions add to the queue.
		s.queue <- r
		reqs[i] = r
	}
	s.accepted.Add(uint64(len(xs)))
	return reqs, nil
}

// withDeadline applies the per-model default timeout to contexts that
// carry no deadline of their own: a caller-supplied deadline always
// wins, and an expiry of the server-imposed one is distinguishable via
// context.Cause (ErrDeadline).
func (s *Server) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.opts.DefaultTimeout <= 0 {
		return ctx, func() {}
	}
	if _, has := ctx.Deadline(); has {
		return ctx, func() {}
	}
	return context.WithTimeoutCause(ctx, s.opts.DefaultTimeout, ErrDeadline)
}

// ctxErr resolves a finished context to the error the caller should
// see: the server-imposed deadline surfaces as ErrDeadline, everything
// else as the context's own error.
func ctxErr(ctx context.Context) error {
	if cause := context.Cause(ctx); errors.Is(cause, ErrDeadline) {
		return ErrDeadline
	}
	return ctx.Err()
}

// Submit classifies one input, blocking until its micro-batch completes
// or ctx ends. A full queue fails fast with ErrOverloaded; with
// Options.DefaultTimeout set, a deadline-free ctx gains the per-model
// deadline and expiry surfaces as ErrDeadline.
func (s *Server) Submit(ctx context.Context, x *tensor.T) (Result, error) {
	ctx, cancel := s.withDeadline(ctx)
	defer cancel()
	reqs, err := s.enqueue(ctx, []*tensor.T{x})
	if err != nil {
		return Result{}, err
	}
	select {
	case o := <-reqs[0].done:
		return o.res, o.err
	case <-ctx.Done():
		return Result{}, ctxErr(ctx)
	}
}

// SubmitBatch classifies a group of inputs admitted atomically in
// consecutive arrival order, returning results in input order. The
// per-model default deadline applies to the group as a whole.
func (s *Server) SubmitBatch(ctx context.Context, xs []*tensor.T) ([]Result, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	ctx, cancel := s.withDeadline(ctx)
	defer cancel()
	reqs, err := s.enqueue(ctx, xs)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(reqs))
	done := reqs[0].done // shared by the whole admission group
	for range reqs {
		select {
		case o := <-done:
			if o.err != nil {
				return nil, o.err
			}
			out[o.idx] = o.res
		case <-ctx.Done():
			return nil, ctxErr(ctx)
		}
	}
	return out, nil
}

// dispatch coalesces queued requests into micro-batches: take one
// (blocking), greedily drain whatever else is pending, then optionally
// wait up to MaxWait for the batch to fill. Closing the queue (Drain)
// flushes the assembly and stops the workers after the backlog runs dry.
func (s *Server) dispatch() {
	defer s.wg.Done()
	defer close(s.batches)
	for {
		r, ok := <-s.queue
		if !ok {
			return
		}
		r.sp.Mark(telemetry.StageQueue)
		batch := make([]*request, 1, s.opts.MaxBatch)
		batch[0] = r
		closed := false
	greedy:
		for len(batch) < s.opts.MaxBatch {
			select {
			case r2, ok := <-s.queue:
				if !ok {
					closed = true
					break greedy
				}
				r2.sp.Mark(telemetry.StageQueue)
				batch = append(batch, r2)
			default:
				break greedy
			}
		}
		if !closed && len(batch) < s.opts.MaxBatch && s.opts.MaxWait > 0 {
			timer := time.NewTimer(s.opts.MaxWait)
		wait:
			for len(batch) < s.opts.MaxBatch {
				select {
				case r2, ok := <-s.queue:
					if !ok {
						closed = true
						break wait
					}
					r2.sp.Mark(telemetry.StageQueue)
					batch = append(batch, r2)
				case <-timer.C:
					break wait
				}
			}
			timer.Stop()
		}
		s.batches <- batch
		if closed {
			return
		}
	}
}

func (s *Server) runWorker() {
	defer s.wg.Done()
	for batch := range s.batches {
		s.runBatch(batch)
	}
}

// runBatch skips requests whose context already ended (expired or
// cancelled work is dropped before any engine is claimed — it must
// never spend pool time), checks an engine out, runs the survivors
// through one batched forward and resolves their futures.
func (s *Server) runBatch(batch []*request) {
	exec := make([]*request, 0, len(batch))
	for _, r := range batch {
		if r.ctx != nil && r.ctx.Err() != nil {
			err := ctxErr(r.ctx)
			r.done <- outcome{idx: r.idx, err: err}
			if errors.Is(err, ErrDeadline) {
				s.expired.Add(1)
				r.sp.Finish("expired")
			} else {
				s.cancelled.Add(1)
				r.sp.Finish("cancelled")
			}
			continue
		}
		exec = append(exec, r)
	}
	if len(exec) == 0 {
		return
	}

	var engines []quant.DotEngine
	if s.opts.Deterministic {
		// Engines derive per seq; a factory error (a real failure, or a
		// chaos-injected one) fails only its own request. Survivors in
		// the same micro-batch keep exactly their factory(seq) engines,
		// so their results stay bit-identical to a fault-free replay.
		kept := exec[:0]
		engines = make([]quant.DotEngine, 0, len(exec))
		for _, r := range exec {
			e, err := s.factory(int(r.seq))
			if err != nil {
				r.done <- outcome{idx: r.idx, err: fmt.Errorf("serve: building engine for seq %d: %w", r.seq, err)}
				s.failed.Add(1)
				r.sp.Finish("failed")
				continue
			}
			kept = append(kept, r)
			engines = append(engines, e)
		}
		exec = kept
		if len(exec) == 0 {
			return
		}
	}

	if s.tel != nil {
		for _, r := range exec {
			r.sp.Mark(telemetry.StageAssemble)
		}
	}
	eng, err := s.pool.Get(context.Background())
	if err != nil { // unreachable: Background never ends
		panic(err)
	}
	defer s.pool.Put(eng)
	if s.tel != nil {
		for _, r := range exec {
			r.sp.Mark(telemetry.StageCheckout)
		}
	}

	xs := make([]*tensor.T, len(exec))
	for i, r := range exec {
		xs[i] = r.x
	}
	if !s.opts.Deterministic {
		engines = []quant.DotEngine{eng.Dot}
	}

	// A nil recorder keeps accounting zero-cost; a live one is atomic
	// and safe to share across all pooled scratches.
	eng.Scratch.Ops = s.ops
	outs := s.qn.ForwardBatch(xs, engines, eng.Scratch)
	if s.tel != nil {
		for _, r := range exec {
			r.sp.Mark(telemetry.StageForward)
		}
	}
	if s.ops != nil {
		s.ops.AddInferences(uint64(len(exec)))
	}
	now := time.Now()
	for i, r := range exec {
		logits := outs[i]
		res := Result{
			Seq:    r.seq,
			Class:  logits.ArgMax(),
			Logits: logits.Data,
			Engine: eng.ID,
		}
		if s.opts.Deterministic {
			// The pool slot is a scheduling artifact; the seq-derived
			// engine is the arithmetic identity replay must preserve.
			res.Engine = int(r.seq)
		}
		if res.Class < len(s.opts.ClassNames) {
			res.ClassName = s.opts.ClassNames[res.Class]
		}
		r.done <- outcome{idx: r.idx, res: res}
		s.lat.Observe(now.Sub(r.enq))
		r.sp.Mark(telemetry.StageRespond)
		r.sp.Finish("ok")
	}
	s.served.Add(uint64(len(exec)))
	s.noteServed(len(exec))
	s.nbatches.Add(1)
	s.batchMu.Lock()
	s.batchHist[len(exec)-1]++
	s.batchMu.Unlock()
}

// rateWindow is how often the drain-rate window rolls over; long
// enough to smooth batch granularity, short enough to track a shifting
// load.
const rateWindow = 5 * time.Second

// noteServed advances the drain-rate window.
func (s *Server) noteServed(n int) {
	now := time.Now()
	s.rateMu.Lock()
	s.rateServed += uint64(n)
	if el := now.Sub(s.rateStart); el >= rateWindow {
		s.ratePrev = float64(s.rateServed) / el.Seconds()
		s.rateServed = 0
		s.rateStart = now
	}
	s.rateMu.Unlock()
}

// retryAfterSeconds estimates how long an overloaded caller should
// back off: the current queue backlog divided by the observed drain
// rate (served per second over the recent window), clamped to [1, 30]
// whole seconds — the value the 429 path sends as Retry-After. With no
// drain observed yet it answers 1s, the legacy constant.
func (s *Server) retryAfterSeconds() int {
	s.rateMu.Lock()
	rate := s.ratePrev
	if el := time.Since(s.rateStart).Seconds(); el > 0.05 {
		if cur := float64(s.rateServed) / el; cur > rate {
			rate = cur
		}
	}
	s.rateMu.Unlock()
	if rate <= 0 {
		return 1
	}
	secs := int(math.Ceil(float64(len(s.queue)+1) / rate))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// Drain stops admissions, waits for the queued backlog to finish (or ctx
// to end) and stops the batcher and workers. It is idempotent; Submit
// during or after a drain fails with ErrDraining.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// Stats snapshots the traffic counters.
func (s *Server) Stats() Stats {
	s.batchMu.Lock()
	hist := append([]uint64(nil), s.batchHist...)
	s.batchMu.Unlock()
	var ops *OpStats
	if s.ops != nil {
		ops = summarizeOps(s.ops.Snapshot())
	}
	snap := s.lat.Snapshot()
	return Stats{
		Ops:            ops,
		Accepted:       s.accepted.Load(),
		Rejected:       s.rejected.Load(),
		Draining:       s.draining.Load(),
		Served:         s.served.Load(),
		Cancelled:      s.cancelled.Load(),
		Expired:        s.expired.Load(),
		Failed:         s.failed.Load(),
		Batches:        s.nbatches.Load(),
		BatchSizes:     hist,
		QueueDepth:     len(s.queue),
		QueueCap:       cap(s.queue),
		EnginesBusy:    s.pool.InUse(),
		PoolSize:       s.pool.Size(),
		LatencyP50:     snap.Quantile(0.50),
		LatencyP90:     snap.Quantile(0.90),
		LatencyP99:     snap.Quantile(0.99),
		LatencyP999:    snap.Quantile(0.999),
		LatencyBuckets: latencyBuckets(snap),
		Deterministic:  s.opts.Deterministic,
	}
}
