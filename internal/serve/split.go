package serve

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// SplitModelHeader is the response header a traffic-split alias stamps
// with the variant model that actually served the request — how replay
// tooling and the split test observe the realized A/B sequence without
// parsing stats.
const SplitModelHeader = "X-Split-Model"

// split is one A/B traffic split: an alias name routing to two
// registered models with a deterministic per-request variant choice.
// The chooser hashes (seed, per-split request counter) through the
// splitmix64 finalizer, so the realized variant sequence is a pure
// function of the seed and the request order — replaying the same
// request count against the same seed realizes bit-identical routing,
// independent of client concurrency (the counter is atomic, and
// whichever request draws sequence number k gets variant(k)).
type split struct {
	alias string
	a, b  string
	fracB float64
	seed  uint64

	seq              atomic.Uint64 // next request's sequence number
	servedA, servedB atomic.Uint64
}

// variant returns the model name for sequence number k.
func (sp *split) variant(k uint64) string {
	// Map the hash to [0, 1) with 53-bit precision (an exact float64)
	// and compare against the B fraction: fracB of the hash space —
	// hence, in the limit, fracB of the traffic — goes to B.
	if float64(mix64(sp.seed^k)>>11)/float64(1<<53) < sp.fracB {
		return sp.b
	}
	return sp.a
}

// SetSplit installs (or replaces) a traffic-split alias: requests to
// POST /v1/models/{alias}/classify route to modelA or modelB, with
// fraction fracB of the hash space going to B, chosen per request by a
// seeded splitmix64 hash of the split's request counter. Both models
// must already be registered, and the alias must not collide with a
// registered model name (registered models always win resolution, so a
// shadowed alias would be unreachable). Replacing an existing alias
// resets its counters.
func (r *Registry) SetSplit(alias, modelA, modelB string, fracB float64, seed uint64) error {
	if err := validModelName(alias); err != nil {
		return err
	}
	if fracB < 0 || fracB > 1 {
		return fmt.Errorf("serve: split fraction %v outside [0, 1]", fracB)
	}
	if _, err := r.Get(modelA); err != nil {
		return fmt.Errorf("serve: split variant A: %w", err)
	}
	if _, err := r.Get(modelB); err != nil {
		return fmt.Errorf("serve: split variant B: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrRegistryClosed
	}
	if _, dup := r.models[alias]; dup {
		return fmt.Errorf("serve: split alias %q is a registered model", alias)
	}
	r.splits[alias] = &split{alias: alias, a: modelA, b: modelB, fracB: fracB, seed: seed}
	return nil
}

// ClearSplit removes a traffic-split alias. The underlying models stay
// registered and routable by their own names.
func (r *Registry) ClearSplit(alias string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.splits[alias]; !ok {
		return fmt.Errorf("%w: split alias %q", ErrUnknownModel, alias)
	}
	delete(r.splits, alias)
	return nil
}

// SplitInfo is one traffic split's section of the registry stats
// document.
type SplitInfo struct {
	Alias  string  `json:"alias"`
	ModelA string  `json:"model_a"`
	ModelB string  `json:"model_b"`
	FracB  float64 `json:"frac_b"`
	Seed   uint64  `json:"seed"`
	// Requests counts classify calls that resolved through the alias;
	// ServedA/ServedB break them down by chosen variant.
	Requests uint64 `json:"requests"`
	ServedA  uint64 `json:"served_a"`
	ServedB  uint64 `json:"served_b"`
}

// Splits snapshots the registry's traffic-split aliases, sorted by
// alias.
func (r *Registry) Splits() []SplitInfo {
	r.mu.RLock()
	sps := make([]*split, 0, len(r.splits))
	for _, sp := range r.splits {
		sps = append(sps, sp)
	}
	r.mu.RUnlock()
	sort.Slice(sps, func(i, j int) bool { return sps[i].alias < sps[j].alias })
	out := make([]SplitInfo, len(sps))
	for i, sp := range sps {
		out[i] = SplitInfo{
			Alias: sp.alias, ModelA: sp.a, ModelB: sp.b, FracB: sp.fracB, Seed: sp.seed,
			Requests: sp.seq.Load(), ServedA: sp.servedA.Load(), ServedB: sp.servedB.Load(),
		}
	}
	return out
}

// resolveSplit routes one request through a traffic-split alias:
// it draws the next sequence number, picks the variant and returns that
// model. ok is false when name is not an alias or the chosen variant is
// no longer registered (the caller 404s either way).
func (r *Registry) resolveSplit(name string) (*Model, string, bool) {
	r.mu.RLock()
	sp := r.splits[name]
	r.mu.RUnlock()
	if sp == nil {
		return nil, "", false
	}
	k := sp.seq.Add(1) - 1
	chosen := sp.variant(k)
	m, err := r.Get(chosen)
	if err != nil {
		return nil, "", false
	}
	if chosen == sp.b {
		sp.servedB.Add(1)
	} else {
		sp.servedA.Add(1)
	}
	return m, chosen, true
}
