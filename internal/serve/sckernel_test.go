package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/quant"
	"repro/internal/sckernel"
)

// TestPackedEngineDeterministicReplay: the SC-backed serving engine must
// satisfy the same replay contract as the scalar plane — every response a
// pure function of (network, input, seq) at pool sizes 1, 2 and 4 — and,
// because the packed factory derives shard seeds identically, the served
// logits must be bit-identical to the scalar SCONNA factory's.
func TestPackedEngineDeterministicReplay(t *testing.T) {
	qn := testNet(t)
	cfg := testCoreConfig()
	packed := sckernel.EngineFactory(cfg)
	scalar := quant.SconnaEngineFactory(cfg)
	trace := testInputs(10, 61)

	// Serial reference: one fresh scalar engine per request seq.
	want := make([][]float32, len(trace))
	for i, x := range trace {
		eng, err := scalar(i)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = qn.ForwardScratch(x, eng, quant.NewScratch()).Data
	}

	for _, pool := range []int{1, 2, 4} {
		s := newTestServer(t, packed, Options{
			InputShape: testShape, Deterministic: true,
			PoolSize: pool, MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 64,
		})
		results, err := s.SubmitBatch(context.Background(), trace)
		if err != nil {
			t.Fatalf("pool %d: %v", pool, err)
		}
		for i, res := range results {
			if res.Seq != uint64(i) {
				t.Fatalf("pool %d: trace index %d got seq %d", pool, i, res.Seq)
			}
			for j := range want[i] {
				if res.Logits[j] != want[i][j] {
					t.Fatalf("pool %d: trace %d logit %d: packed %v != scalar reference %v",
						pool, i, j, res.Logits[j], want[i][j])
				}
			}
		}
	}
}

// TestPackedEngineThroughputPool: in throughput mode the packed engines
// are pooled statefully like any SCONNA engine — batches are served from
// pool slots and every request classifies.
func TestPackedEngineThroughputPool(t *testing.T) {
	s := newTestServer(t, sckernel.EngineFactory(testCoreConfig()), Options{
		InputShape: testShape, PoolSize: 2, MaxBatch: 4,
	})
	results, err := s.SubmitBatch(context.Background(), testInputs(6, 67))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Engine < 0 || res.Engine >= 2 {
			t.Fatalf("result %d: engine %d outside pool", i, res.Engine)
		}
	}
	if st := s.Stats(); st.Served != 6 {
		t.Fatalf("Served = %d, want 6", st.Served)
	}
}

// TestRegistryServesPackedModel: an sckernel-backed model registers and
// routes like any other, and its responses match a scalar-backed twin of
// the same network registered beside it.
func TestRegistryServesPackedModel(t *testing.T) {
	qn := testNet(t)
	cfg := testCoreConfig()
	reg := NewRegistry()
	opts := Options{InputShape: testShape, Deterministic: true, PoolSize: 2, MaxBatch: 4, QueueDepth: 64}
	mp, err := reg.Register("packed", qn, sckernel.EngineFactory(cfg), opts)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := reg.Register("scalar", qn, quant.SconnaEngineFactory(cfg), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = reg.DrainAll(ctx)
	})
	if mp.Version() != ms.Version() {
		t.Fatalf("same network, different versions: %q vs %q", mp.Version(), ms.Version())
	}
	for i, x := range testInputs(5, 71) {
		rp, err := mp.Server().Submit(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := ms.Server().Submit(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		for j := range rs.Logits {
			if rp.Logits[j] != rs.Logits[j] {
				t.Fatalf("input %d logit %d: packed model %v != scalar model %v",
					i, j, rp.Logits[j], rs.Logits[j])
			}
		}
	}
}
