package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// testNetB is a second, genuinely different quantized model (other
// seed, other precision) so multi-model tests route between distinct
// versions.
var testNetBFixture struct {
	once sync.Once
	qn   *quant.Network
}

func testNetB(t testing.TB) *quant.Network {
	t.Helper()
	testNetBFixture.once.Do(func() {
		net := nn.BuildSmallCNN(2, 4, 35)
		calib := []nn.Example{{X: testInputs(1, 36)[0], Label: 1}}
		qn, err := quant.Quantize(net, 5, calib)
		if err != nil {
			panic(err)
		}
		testNetBFixture.qn = qn
	})
	return testNetBFixture.qn
}

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = reg.DrainAll(ctx)
	})
	return reg
}

// twoModelRegistry registers "alpha" (the default) and "beta" with the
// exact engine.
func twoModelRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := newTestRegistry(t)
	if _, err := reg.Register("alpha", testNet(t), quant.SharedEngine(quant.ExactEngine{}), exactOpts(nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("beta", testNetB(t), quant.SharedEngine(quant.ExactEngine{}), exactOpts(nil)); err != nil {
		t.Fatal(err)
	}
	return reg
}

func registryHTTP(t *testing.T, reg *Registry) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(reg.Handler())
	t.Cleanup(hs.Close)
	return hs
}

func TestRegistryRegisterAndRoute(t *testing.T) {
	reg := twoModelRegistry(t)
	hs := registryHTTP(t, reg)

	alpha, err := reg.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	beta, err := reg.Get("beta")
	if err != nil {
		t.Fatal(err)
	}
	if alpha.Version() != testNet(t).Digest().String() {
		t.Fatalf("alpha version %s is not the network digest", alpha.Version())
	}
	if alpha.Version() == beta.Version() {
		t.Fatal("distinct models share a version: versions are not content-addressed")
	}
	if def, err := reg.Default(); err != nil || def.Name() != "alpha" {
		t.Fatalf("default = %v, %v; want alpha (first registered)", def, err)
	}
	if got := reg.Names(); fmt.Sprint(got) != "[alpha beta]" {
		t.Fatalf("Names() = %v", got)
	}

	// Per-model routing classifies through the right network.
	x := testInputs(1, 103)[0]
	in := marshalInput(t, x.Data)
	for _, c := range []struct {
		model string
		qn    *quant.Network
	}{{"alpha", testNet(t)}, {"beta", testNetB(t)}} {
		resp, err := http.Post(hs.URL+"/v1/models/"+c.model+"/classify", "application/json",
			strings.NewReader(`{"input":`+in+`}`))
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		err = json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s classify: %d %v", c.model, resp.StatusCode, err)
		}
		if want := c.qn.Forward(x, quant.ExactEngine{}).ArgMax(); res.Class != want {
			t.Fatalf("%s classified %d, want %d", c.model, res.Class, want)
		}
	}

	// Unknown models are 404s with a JSON error body, on both routed
	// endpoints.
	for _, path := range []string{"/v1/models/nope/classify", "/v1/models/nope/stats"} {
		req, _ := http.NewRequest(http.MethodPost, hs.URL+path, strings.NewReader(`{"input":`+in+`}`))
		if strings.HasSuffix(path, "/stats") {
			req, _ = http.NewRequest(http.MethodGet, hs.URL+path, nil)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		err = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || err != nil || !strings.Contains(e.Error, "nope") {
			t.Fatalf("%s: %d %v %q", path, resp.StatusCode, err, e.Error)
		}
	}
	if _, err := reg.Get("nope"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("Get(nope) = %v, want ErrUnknownModel", err)
	}

	// The listing carries name, version, default flag and live stats.
	resp, err := http.Get(hs.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var listing RegistryStats
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("listing: %d %v", resp.StatusCode, err)
	}
	if listing.DefaultModel != "alpha" || len(listing.Models) != 2 {
		t.Fatalf("listing: %+v", listing)
	}
	if listing.Models[0].Name != "alpha" || !listing.Models[0].Default ||
		listing.Models[1].Name != "beta" || listing.Models[1].Default {
		t.Fatalf("listing order/default flags: %+v", listing.Models)
	}
	if listing.Models[0].Stats.Served == 0 || listing.Models[0].Version != alpha.Version() {
		t.Fatalf("alpha section: %+v", listing.Models[0])
	}

	// Per-model stats endpoint mirrors the Go snapshot.
	resp, err = http.Get(hs.URL + "/v1/models/beta/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || st.Served != 1 {
		t.Fatalf("beta stats: %v %+v", err, st)
	}

	// Wrong methods are JSON 405s.
	resp, err = http.Get(hs.URL + "/v1/models/alpha/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET classify: %d", resp.StatusCode)
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	reg := newTestRegistry(t)
	factory := quant.SharedEngine(quant.ExactEngine{})
	if _, err := reg.Register("ok-model.v1", testNet(t), factory, exactOpts(nil)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "a/b", "a b", "héllo", ".", "..", strings.Repeat("x", 129)} {
		if _, err := reg.Register(name, testNet(t), factory, exactOpts(nil)); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
	if _, err := reg.Register("ok-model.v1", testNet(t), factory, exactOpts(nil)); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate register: %v", err)
	}
	if _, err := reg.Register("nilnet", nil, factory, exactOpts(nil)); err == nil {
		t.Fatal("nil network accepted")
	}
	// A failed registration must release its name reservation.
	boom := func(int) (quant.DotEngine, error) { return nil, errors.New("boom") }
	if _, err := reg.Register("flaky", testNet(t), boom, exactOpts(nil)); err == nil {
		t.Fatal("factory failure not surfaced")
	}
	if _, err := reg.Register("flaky", testNet(t), factory, exactOpts(nil)); err != nil {
		t.Fatalf("name not released after failed registration: %v", err)
	}
}

// The legacy /v1/classify alias must answer byte-for-byte like a
// standalone single-model Server over the same network — the PR 4
// compatibility contract for existing clients.
func TestRegistryLegacyAliasByteCompatible(t *testing.T) {
	factory := quant.SconnaEngineFactory(testCoreConfig())
	opts := Options{InputShape: testShape, Deterministic: true, PoolSize: 2, MaxBatch: 4, QueueDepth: 64}
	trace := testInputs(6, 107)

	collect := func(url string) []string {
		var bodies []string
		for _, x := range trace {
			code, body := postJSON(t, url, `{"input":`+marshalInput(t, x.Data)+`,"logits":true}`)
			if code != http.StatusOK {
				t.Fatalf("%s: %d %s", url, code, body)
			}
			bodies = append(bodies, body)
		}
		return bodies
	}

	_, direct := httpServer(t, factory, opts)
	want := collect(direct.URL)

	reg := newTestRegistry(t)
	if _, err := reg.Register(DefaultModelName, testNet(t), factory, opts); err != nil {
		t.Fatal(err)
	}
	hs := registryHTTP(t, reg)
	got := collect(hs.URL)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("legacy alias drifted at request %d:\n%s\nvs\n%s", i, got[i], want[i])
		}
	}
}

// The deterministic-replay contract holds independently per model: each
// model's engine derives from its own arrival seq, so interleaved
// multi-model traffic replays bit-identically at any pool size — here
// pools 1, 2 and 4 against the serial per-model reference.
func TestRegistryDeterministicReplayPerModel(t *testing.T) {
	factoryA := quant.SconnaEngineFactory(testCoreConfig())
	cfgB := testCoreConfig()
	cfgB.ADCSeed = 4242
	factoryB := quant.SconnaEngineFactory(cfgB)
	const n = 6
	traceA, traceB := testInputs(n, 109), testInputs(n, 113)

	reference := func(qn *quant.Network, factory quant.EngineFactory, trace []*tensor.T) []*tensor.T {
		out := make([]*tensor.T, len(trace))
		for i, x := range trace {
			eng, err := factory(i)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = qn.ForwardScratch(x, eng, quant.NewScratch())
		}
		return out
	}
	wantA := reference(testNet(t), factoryA, traceA)
	wantB := reference(testNetB(t), factoryB, traceB)

	for _, pool := range []int{1, 2, 4} {
		opts := Options{InputShape: testShape, Deterministic: true, PoolSize: pool, MaxBatch: 4, QueueDepth: 64}
		reg := newTestRegistry(t)
		a, err := reg.Register("alpha", testNet(t), factoryA, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := reg.Register("beta", testNetB(t), factoryB, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Interleave arrivals across the two models: per-model seqs must
		// stay private (0,1,2,... each), untouched by the other model's
		// traffic.
		var gotA, gotB []Result
		for i := 0; i < n; i++ {
			ra, err := a.Server().Submit(context.Background(), traceA[i])
			if err != nil {
				t.Fatal(err)
			}
			rb, err := b.Server().Submit(context.Background(), traceB[i])
			if err != nil {
				t.Fatal(err)
			}
			gotA, gotB = append(gotA, ra), append(gotB, rb)
		}
		check := func(model string, got []Result, want []*tensor.T) {
			for i, res := range got {
				if res.Seq != uint64(i) {
					t.Fatalf("pool=%d %s: arrival %d got seq %d — per-model seqs leaked", pool, model, i, res.Seq)
				}
				for j := range want[i].Data {
					if res.Logits[j] != want[i].Data[j] {
						t.Fatalf("pool=%d %s: arrival %d logit %d: %v != %v (per-model replay must be bit-identical)",
							pool, model, i, j, res.Logits[j], want[i].Data[j])
					}
				}
			}
		}
		check("alpha", gotA, wantA)
		check("beta", gotB, wantB)
	}
}

// Unregister under live traffic: the removed model drains gracefully
// (admitted work finishes, then 404s), the surviving model never sees
// an error.
func TestRegistryUnregisterUnderLiveTraffic(t *testing.T) {
	reg := twoModelRegistry(t)
	hs := registryHTTP(t, reg)
	beta, err := reg.Get("beta")
	if err != nil {
		t.Fatal(err)
	}
	in := marshalInput(t, testInputs(1, 127)[0].Data)

	const clients, perClient = 4, 25
	codes := make([][]int, 2*clients) // [alpha clients..., beta clients...]
	var wg sync.WaitGroup
	post := func(model string) int {
		resp, err := http.Post(hs.URL+"/v1/models/"+model+"/classify", "application/json",
			strings.NewReader(`{"input":`+in+`}`))
		if err != nil {
			return -1
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for c := 0; c < clients; c++ {
		for m, model := range []string{"alpha", "beta"} {
			wg.Add(1)
			go func(slot int, model string) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					codes[slot] = append(codes[slot], post(model))
				}
			}(m*clients+c, model)
		}
	}
	// Yank beta mid-traffic.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := reg.Unregister(ctx, "beta"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for c := 0; c < clients; c++ {
		for i, code := range codes[c] {
			if code != http.StatusOK {
				t.Fatalf("alpha client %d request %d: %d — surviving models must be untouched", c, i, code)
			}
		}
		for i, code := range codes[clients+c] {
			switch code {
			case http.StatusOK, http.StatusNotFound, http.StatusServiceUnavailable:
			default:
				t.Fatalf("beta client %d request %d: %d — want 200 (before), 503 (draining) or 404 (after)", c, i, code)
			}
		}
	}
	if !beta.Server().Draining() {
		t.Fatal("unregistered model's server not drained")
	}
	if code := post("beta"); code != http.StatusNotFound {
		t.Fatalf("post-unregister beta: %d, want 404", code)
	}
	if code := post("alpha"); code != http.StatusOK {
		t.Fatalf("post-unregister alpha: %d, want 200", code)
	}
	if _, err := reg.Get("beta"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("Get(beta) after unregister: %v", err)
	}
	if err := reg.Unregister(ctx, "beta"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("double unregister: %v", err)
	}
}

// Unregistering the default model retires the legacy alias (404, never
// a silent re-route to an already-registered model) but frees the
// default slot: the next Register claims it.
func TestRegistryUnregisteredDefaultRetiresAlias(t *testing.T) {
	reg := twoModelRegistry(t)
	hs := registryHTTP(t, reg)
	in := marshalInput(t, testInputs(1, 131)[0].Data)
	if code, _ := postJSON(t, hs.URL, `{"input":`+in+`}`); code != http.StatusOK {
		t.Fatalf("alias before unregister: %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := reg.Unregister(ctx, "alpha"); err != nil {
		t.Fatal(err)
	}
	// beta is still registered, but the alias must NOT re-route to it.
	if code, _ := postJSON(t, hs.URL, `{"input":`+in+`}`); code != http.StatusNotFound {
		t.Fatalf("alias after unregistering its target: %d, want 404", code)
	}
	if st := reg.Stats(); st.DefaultModel != "" {
		t.Fatalf("stats still name a default: %+v", st)
	}
	// The default slot is free again: a fresh registration claims it.
	if _, err := reg.Register("gamma", testNet(t), quant.SharedEngine(quant.ExactEngine{}), exactOpts(nil)); err != nil {
		t.Fatal(err)
	}
	if def, err := reg.Default(); err != nil || def.Name() != "gamma" {
		t.Fatalf("default after re-register = %v, %v; want gamma", def, err)
	}
	if code, _ := postJSON(t, hs.URL, `{"input":`+in+`}`); code != http.StatusOK {
		t.Fatalf("alias after re-register: %d", code)
	}
	// An explicit SetDefault re-points the alias.
	if err := reg.SetDefault("beta"); err != nil {
		t.Fatal(err)
	}
	if def, err := reg.Default(); err != nil || def.Name() != "beta" {
		t.Fatalf("default after SetDefault = %v, %v", def, err)
	}
	if err := reg.SetDefault("ghost"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("SetDefault(ghost): %v", err)
	}
}

// A Register that finishes building after the registry shut down (or
// after its reservation was revoked by Unregister) must not leak the
// fresh server: it drains it and reports the registration lost.
func TestRegistryRegisterLosesRaceToShutdown(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	slowRegister := func(reg *Registry, name string) (chan struct{}, chan struct{}, chan error) {
		started, release, errc := make(chan struct{}), make(chan struct{}), make(chan error, 1)
		factory := func(i int) (quant.DotEngine, error) {
			if i == 0 {
				close(started) // the pool build is now in flight
				<-release
			}
			return quant.ExactEngine{}, nil
		}
		qn := testNet(t)
		go func() {
			_, err := reg.Register(name, qn, factory, Options{InputShape: testShape, PoolSize: 2, MaxBatch: 2})
			errc <- err
		}()
		return started, release, errc
	}

	// DrainAll while the server is still building.
	reg := NewRegistry()
	started, release, errc := slowRegister(reg, "slow")
	<-started
	if err := reg.DrainAll(ctx); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-errc; !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("register racing DrainAll: %v, want ErrRegistryClosed", err)
	}

	// Unregister revoking a mid-flight reservation.
	reg2 := newTestRegistry(t)
	started, release, errc = slowRegister(reg2, "slow")
	<-started
	if err := reg2.Unregister(ctx, "slow"); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "unregistered during registration") {
		t.Fatalf("register racing Unregister: %v", err)
	}
	if _, err := reg2.Get("slow"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("revoked model still visible: %v", err)
	}
}

func TestRegistryDrainAll(t *testing.T) {
	reg := twoModelRegistry(t)
	hs := registryHTTP(t, reg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := reg.DrainAll(ctx); err != nil {
		t.Fatal(err)
	}
	if !reg.Draining() || reg.Len() != 0 {
		t.Fatalf("draining=%v len=%d after DrainAll", reg.Draining(), reg.Len())
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	in := marshalInput(t, testInputs(1, 137)[0].Data)
	for _, path := range []string{"/v1/classify", "/v1/models/alpha/classify"} {
		resp, err := http.Post(hs.URL+path, "application/json", strings.NewReader(`{"input":`+in+`}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s while draining: %d", path, resp.StatusCode)
		}
	}
	if _, err := reg.Register("late", testNet(t), quant.SharedEngine(quant.ExactEngine{}), exactOpts(nil)); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("register after DrainAll: %v", err)
	}
	if err := reg.DrainAll(ctx); err != nil {
		t.Fatalf("second DrainAll: %v", err)
	}
}

// The load generator's mix leg: weighted per-request-hash routing is
// deterministic (same config, same sequence), covers every weighted
// model, and excludes zero-weight entries.
func TestDriveMixDeterministicRouting(t *testing.T) {
	reg := twoModelRegistry(t)
	hs := registryHTTP(t, reg)
	inputs := make([][]float32, 4)
	for i, x := range testInputs(4, 139) {
		inputs[i] = x.Data
	}
	opts := LoadOptions{
		Requests: 60, Clients: 3, Batch: 2,
		Mix:     []ModelShare{{Name: "alpha", Weight: 3}, {Name: "beta", Weight: 1}, {Name: "ghost", Weight: 0}},
		MixSeed: 17,
	}
	rep, err := Drive(hs.URL, inputs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 || rep.Rejected > 0 || rep.Responses != opts.Requests {
		t.Fatalf("mixed drive: %+v", rep)
	}
	if rep.ByModel["ghost"] != 0 {
		t.Fatalf("zero-weight model received traffic: %+v", rep.ByModel)
	}
	if rep.ByModel["alpha"] == 0 || rep.ByModel["beta"] == 0 {
		t.Fatalf("a weighted model was starved: %+v", rep.ByModel)
	}
	if rep.ByModel["alpha"]+rep.ByModel["beta"] != rep.Responses {
		t.Fatalf("per-model counts don't add up: %+v", rep)
	}
	if rep.ByModel["alpha"] <= rep.ByModel["beta"] {
		t.Fatalf("3:1 weights not respected: %+v", rep.ByModel)
	}
	again, err := Drive(hs.URL, inputs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(again.ByModel) != fmt.Sprint(rep.ByModel) {
		t.Fatalf("routing drifted across identical runs: %v vs %v", again.ByModel, rep.ByModel)
	}
	// The realized model split is a property of (Requests, Batch, Mix,
	// MixSeed) alone — client spans align to the batch size, so the
	// per-model counts hold at any client count.
	for _, clients := range []int{1, 2, 5} {
		o := opts
		o.Clients = clients
		other, err := Drive(hs.URL, inputs, o)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(other.ByModel) != fmt.Sprint(rep.ByModel) {
			t.Fatalf("clients=%d realized a different mix: %v vs %v", clients, other.ByModel, rep.ByModel)
		}
	}
	// The selection itself is a pure function of (mix, seed, index).
	for i := 0; i < 100; i++ {
		if pickShare(opts.Mix, opts.MixSeed, i) != pickShare(opts.Mix, opts.MixSeed, i) {
			t.Fatal("pickShare not deterministic")
		}
		if pickShare(opts.Mix, opts.MixSeed, i) == "ghost" {
			t.Fatal("pickShare chose a zero-weight model")
		}
	}
}

// The registry bench must produce the multi-model routing leg the
// BENCH_serve.json trajectory records.
func TestBenchRegistryThroughputSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is full-tier")
	}
	reg := twoModelRegistry(t)
	inputs := make([][]float32, 8)
	for i, x := range testInputs(8, 149) {
		inputs[i] = x.Data
	}
	rep, err := BenchRegistryThroughput(reg, inputs, BenchOptions{
		SerialRequests: 16, BatchedRequests: 64, MixRequests: 64, Clients: 2, Batch: 4, Raw: true,
		Mix: []ModelShare{{Name: "alpha", Weight: 1}, {Name: "beta", Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != benchSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if rep.MultiModel == nil || rep.MultiModel.Responses != 64 || rep.MultiModel.Errors > 0 {
		t.Fatalf("multi-model leg: %+v", rep.MultiModel)
	}
	if rep.Registry == nil || len(rep.Registry.Models) != 2 {
		t.Fatalf("registry stats sections: %+v", rep.Registry)
	}
	if rep.Serial.Errors+rep.Batched.Errors > 0 {
		t.Fatalf("bench legs saw errors: %+v %+v", rep.Serial, rep.Batched)
	}
}
