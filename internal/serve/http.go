package serve

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// classifyRequest is the POST /v1/classify body: exactly one of the
// input forms must be set. Input/Inputs carry flat pixel arrays in the
// server's InputShape layout (CHW); InputB64/InputsB64 carry the same
// tensors as base64 of little-endian float32s (InputsB64 concatenates
// whole examples, so the batch size is implied by the length) — the
// compact form high-throughput callers use to keep JSON float parsing
// off the hot path. Logits asks for raw logits in the response.
type classifyRequest struct {
	Input     []float32   `json:"input,omitempty"`
	Inputs    [][]float32 `json:"inputs,omitempty"`
	InputB64  string      `json:"input_b64,omitempty"`
	InputsB64 string      `json:"inputs_b64,omitempty"`
	Logits    bool        `json:"logits,omitempty"`
}

// batchResponse wraps batch results in input order.
type batchResponse struct {
	Results []Result `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP API:
//
//	POST /v1/classify   — classify one input or a batch
//	GET  /healthz       — liveness (503 once draining)
//	GET  /stats         — Stats snapshot as JSON
//	GET  /metrics       — Prometheus text exposition (counters, gauges,
//	                      latency and per-stage histograms)
//	GET  /debug/traces  — recent request traces as Chrome trace-event
//	                      JSON (empty without Options.Telemetry)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/classify", s.handleClassify)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.Handle("/metrics", telemetry.MetricsHandler(func(f *telemetry.Families) { s.collectInto(f) }))
	mux.HandleFunc("/debug/traces", s.handleTraces)
	return mux
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	// The decode window is only timed when telemetry is on; the Nop path
	// takes no timestamps.
	var start time.Time
	if s.tel != nil {
		start = time.Now()
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if r.Header.Get("Content-Type") == rawContentType {
		s.handleClassifyRaw(w, r, start)
		return
	}
	var req classifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	xs, single, err := s.decodeInputs(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := s.httpCtx(r, start)
	if single {
		res, err := s.Submit(ctx, xs[0])
		if err != nil {
			s.writeSubmitError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, trimLogits(res, req.Logits))
		return
	}
	if len(xs) > cap(s.queue) {
		writeError(w, http.StatusBadRequest, "batch larger than the server queue")
		return
	}
	results, err := s.SubmitBatch(ctx, xs)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	for i := range results {
		results[i] = trimLogits(results[i], req.Logits)
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

// rawContentType selects the binary wire format: the POST body is the
// concatenated little-endian float32 tensors themselves (batch size
// implied by the length), nothing is JSON-scanned on the input path, and
// the response is always a batchResponse. ?logits=1 asks for logits.
// This is the format the load generator's throughput clients use.
const rawContentType = "application/octet-stream"

func (s *Server) handleClassifyRaw(w http.ResponseWriter, r *http.Request, start time.Time) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	n := s.inputLen()
	if len(raw) == 0 || len(raw)%(4*n) != 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("raw body is %d bytes, want a positive multiple of %d (one %v float32 tensor)",
				len(raw), 4*n, s.opts.InputShape))
		return
	}
	data := make([]float32, len(raw)/4)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	xs := make([]*tensor.T, len(data)/n)
	for i := range xs {
		if xs[i], err = s.inputTensor(data[i*n : (i+1)*n : (i+1)*n]); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	if len(xs) > cap(s.queue) {
		writeError(w, http.StatusBadRequest, "batch larger than the server queue")
		return
	}
	results, err := s.SubmitBatch(s.httpCtx(r, start), xs)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	keepLogits := r.URL.Query().Get("logits") != ""
	for i := range results {
		results[i] = trimLogits(results[i], keepLogits)
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

// decodeInputs normalizes the four request forms into input tensors,
// enforcing that exactly one form is present.
func (s *Server) decodeInputs(req classifyRequest) (xs []*tensor.T, single bool, err error) {
	forms := 0
	for _, set := range []bool{req.Input != nil, req.Inputs != nil, req.InputB64 != "", req.InputsB64 != ""} {
		if set {
			forms++
		}
	}
	if forms != 1 {
		return nil, false, errors.New(`set exactly one of "input", "inputs", "input_b64", "inputs_b64"`)
	}
	switch {
	case req.Input != nil:
		x, err := s.inputTensor(req.Input)
		if err != nil {
			return nil, false, err
		}
		return []*tensor.T{x}, true, nil
	case req.Inputs != nil:
		if len(req.Inputs) == 0 {
			return nil, false, errors.New(`serve: "inputs" carries no examples`)
		}
		xs = make([]*tensor.T, len(req.Inputs))
		for i, in := range req.Inputs {
			if xs[i], err = s.inputTensor(in); err != nil {
				return nil, false, err
			}
		}
		return xs, false, nil
	case req.InputB64 != "":
		data, err := decodeB64Floats(req.InputB64)
		if err != nil {
			return nil, false, err
		}
		x, err := s.inputTensor(data)
		if err != nil {
			return nil, false, err
		}
		return []*tensor.T{x}, true, nil
	default:
		data, err := decodeB64Floats(req.InputsB64)
		if err != nil {
			return nil, false, err
		}
		n := s.inputLen()
		if len(data) == 0 || len(data)%n != 0 {
			return nil, false, fmt.Errorf("serve: inputs_b64 carries %d floats, want a positive multiple of %d", len(data), n)
		}
		xs = make([]*tensor.T, len(data)/n)
		for i := range xs {
			if xs[i], err = s.inputTensor(data[i*n : (i+1)*n : (i+1)*n]); err != nil {
				return nil, false, err
			}
		}
		return xs, false, nil
	}
}

// decodeB64Floats decodes base64 little-endian float32s.
func decodeB64Floats(s string) ([]float32, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("serve: invalid base64 input: %w", err)
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("serve: base64 input is %d bytes, want a multiple of 4", len(raw))
	}
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

// inputTensor validates a flat pixel array against the configured shape.
func (s *Server) inputTensor(data []float32) (*tensor.T, error) {
	x := &tensor.T{Shape: s.opts.InputShape, Data: data}
	if err := s.checkInput(x); err != nil {
		return nil, err
	}
	return x, nil
}

// trimLogits drops the logits payload unless the caller asked for it;
// classification responses stay small on the hot path.
func trimLogits(res Result, keep bool) Result {
	if !keep {
		res.Logits = nil
	}
	return res
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// writeSubmitError maps batcher errors onto status codes: backpressure
// is the explicit 429 contract, drain is 503, a server-imposed
// deadline (Options.DefaultTimeout) is 504, a caller-gone context is
// 499-style (the nginx convention; net/http has no name for it).
//
// The 429 backoff contract: every ErrOverloaded response carries a
// Retry-After of whole seconds derived from the observed drain rate —
// current queue backlog divided by recently served requests per
// second, clamped to [1, 30]. A client that waits the advertised
// interval (the resilience.RetryClient honors it verbatim) arrives
// when the backlog it was rejected behind has, at the observed rate,
// drained; hammering sooner only re-fills the window it was shed from.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrDeadline):
		writeError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, 499, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding these small value types cannot fail; a broken connection
	// surfaces in the client, not here.
	_ = json.NewEncoder(w).Encode(v)
}
