package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/quant"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// DefaultModelName is the model the legacy single-model endpoints
// (POST /v1/classify, GET /stats) alias when the registry was built
// without an explicit default: the first model registered.
const DefaultModelName = "default"

// ErrUnknownModel reports a routing miss: no model is registered under
// the requested name (HTTP 404).
var ErrUnknownModel = errors.New("serve: unknown model")

// ErrRegistryClosed reports a registry that has begun DrainAll and no
// longer accepts registrations or traffic (HTTP 503).
var ErrRegistryClosed = errors.New("serve: registry draining")

// Model is one registry entry: a named, versioned quantized model and
// the private serving stack (engine pool, micro-batcher, stats) that
// fronts it. Versions are content-addressed — the digest of the
// quantized network — so two registries serving the same artifact
// report the same version, and a weight change is a version change.
type Model struct {
	name    string
	version string
	srv     *Server

	// breaker is the model's circuit breaker (nil when Options.Breaker
	// was nil — the byte-compatible legacy path takes zero extra code).
	// quota bounds the model's in-flight requests to its weight share of
	// the registry budget (limit 0 = unlimited); weight is the share.
	breaker *resilience.Breaker
	quota   resilience.Quota
	weight  int
}

// Name returns the model's registered name (the routing key).
func (m *Model) Name() string { return m.name }

// Version returns the model's content-addressed version ID: the full
// hex digest of the quantized network (quant.(*Network).Digest).
func (m *Model) Version() string { return m.version }

// Server returns the model's private serving stack. Submit/SubmitBatch
// on it are the Go-level classify API for this model; its seq counter,
// engine pool and stats are independent of every other model's, which
// is what makes the deterministic-replay contract hold per model.
func (m *Model) Server() *Server { return m.srv }

// Breaker returns the model's circuit breaker, or nil when the model
// was registered without one (Options.Breaker nil).
func (m *Model) Breaker() *resilience.Breaker { return m.breaker }

// Registry is the multi-model serving plane: named, versioned quantized
// models, each behind its own engine pool and micro-batcher, routed by
// name over one HTTP surface. Register and Unregister are safe under
// live traffic — lookups take a read lock, an unregistered model drains
// gracefully (its queued work finishes) while the rest keep serving.
type Registry struct {
	mu      sync.RWMutex
	models  map[string]*Model
	splits  map[string]*split
	defName string // first registered, unless SetDefault moved it
	closed  bool
	// maxInFlight is the registry-wide in-flight budget split across
	// models by Options.AdmissionWeight (0 = unlimited, the default).
	maxInFlight int
}

// NewRegistry returns an empty registry; models arrive via Register.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*Model), splits: make(map[string]*split)}
}

// validModelName bounds the routing namespace: path-safe, non-empty,
// and short enough to log. The name is a URL path segment, so anything
// that would need escaping is rejected at registration, not at request
// time.
func validModelName(name string) error {
	if name == "" {
		return errors.New("serve: empty model name")
	}
	if len(name) > 128 {
		return fmt.Errorf("serve: model name %q longer than 128 bytes", name[:32]+"...")
	}
	if name == "." || name == ".." {
		// ServeMux path-cleans these out of /v1/models/{name}/classify,
		// so the model would be registered yet unreachable by its route.
		return fmt.Errorf("serve: model name %q is not routable", name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("serve: model name %q contains %q (allowed: letters, digits, - _ .)", name, r)
		}
	}
	return nil
}

// Register builds a Server over qn (exactly as New would) and adds it
// under name. The first model registered becomes the default — the one
// the legacy /v1/classify alias routes to. The version is the content
// digest of qn. Registering a name that is already present fails:
// replacing a live model is an Unregister (drain) then a Register, so
// in-flight traffic is never silently re-routed mid-request.
func (r *Registry) Register(name string, qn *quant.Network, factory quant.EngineFactory, opts Options) (*Model, error) {
	if err := validModelName(name); err != nil {
		return nil, err
	}
	if qn == nil {
		return nil, errors.New("serve: nil network")
	}
	version := qn.Digest().String()

	// Reserve the name before building the server: a duplicate must not
	// cost an engine-pool build, and two concurrent Registers of one
	// name must not both win.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrRegistryClosed
	}
	if _, dup := r.models[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("serve: model %q already registered", name)
	}
	if _, dup := r.splits[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("serve: name %q is a traffic-split alias", name)
	}
	placeholder := &Model{name: name, version: version, weight: opts.AdmissionWeight}
	if placeholder.weight <= 0 {
		placeholder.weight = 1
	}
	if opts.Breaker != nil {
		placeholder.breaker = resilience.NewBreaker(*opts.Breaker)
	}
	r.models[name] = placeholder
	if r.defName == "" {
		r.defName = name
	}
	r.mu.Unlock()

	if opts.Telemetry != nil && opts.Telemetry.Name == "" {
		// Trace events and metric planes carry the model name; copy the
		// options so the caller's value stays untouched.
		t := *opts.Telemetry
		t.Name = name
		opts.Telemetry = &t
	}
	srv, err := New(qn, factory, opts)
	if err != nil {
		r.mu.Lock()
		if r.models[name] == placeholder {
			delete(r.models, name)
		}
		if r.defName == name {
			r.defName = ""
		}
		r.mu.Unlock()
		return nil, err
	}
	r.mu.Lock()
	// The reservation may have been revoked while the server was
	// building (a concurrent DrainAll or Unregister): the fresh server
	// must not leak — it has never seen traffic, so draining it is
	// immediate — and the caller must learn the registration did not
	// take.
	if r.closed || r.models[name] != placeholder {
		closed := r.closed
		r.mu.Unlock()
		_ = srv.Drain(context.Background())
		if closed {
			return nil, ErrRegistryClosed
		}
		return nil, fmt.Errorf("serve: model %q unregistered during registration", name)
	}
	placeholder.srv = srv
	r.rebalanceLocked()
	r.mu.Unlock()
	return placeholder, nil
}

// SetMaxInFlight installs (or, with 0, removes) the registry-wide
// in-flight request budget. The budget is split across the registered
// models by their Options.AdmissionWeight — limit_i = max(1,
// budget·w_i/Σw) — so a hot model saturating its share gets 429s while
// lighter models keep their engine time. Safe under live traffic, and
// re-applied automatically as models register and unregister.
func (r *Registry) SetMaxInFlight(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 0 {
		n = 0
	}
	r.maxInFlight = n
	r.rebalanceLocked()
}

// MaxInFlight returns the registry-wide budget (0 = unlimited).
func (r *Registry) MaxInFlight() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.maxInFlight
}

// rebalanceLocked recomputes every model's quota limit from the
// registry budget and the models' weights. Callers hold r.mu.
func (r *Registry) rebalanceLocked() {
	if r.maxInFlight <= 0 {
		for _, m := range r.models {
			m.quota.SetLimit(0)
		}
		return
	}
	total := 0
	for _, m := range r.models {
		total += m.weight
	}
	if total == 0 {
		return
	}
	for _, m := range r.models {
		limit := r.maxInFlight * m.weight / total
		if limit < 1 {
			limit = 1
		}
		m.quota.SetLimit(limit)
	}
}

// Unregister removes the named model from routing and drains its
// server: requests already admitted finish, new lookups 404. The rest
// of the registry serves uninterrupted throughout. ctx bounds the
// drain.
func (r *Registry) Unregister(ctx context.Context, name string) error {
	r.mu.Lock()
	m, ok := r.models[name]
	if ok {
		delete(r.models, name)
	}
	// Removing the default clears defName: the legacy alias 404s
	// immediately (never silently re-routes to an already-registered
	// different model), while a later Register — or SetDefault — can
	// claim the default slot again.
	if ok && r.defName == name {
		r.defName = ""
	}
	if ok {
		r.rebalanceLocked()
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if m.srv == nil {
		// The model is mid-Register: revoking the reservation is enough —
		// Register sees it gone, drains the server it just built and
		// reports the registration lost.
		return nil
	}
	return m.srv.Drain(ctx)
}

// Get returns the named model, or ErrUnknownModel. A model mid-Register
// (name reserved, server still building) is not yet visible to traffic.
func (r *Registry) Get(name string) (*Model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	if !ok || m.srv == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return m, nil
}

// Default returns the model the legacy single-model endpoints alias.
func (r *Registry) Default() (*Model, error) {
	r.mu.RLock()
	name := r.defName
	r.mu.RUnlock()
	if name == "" {
		return nil, fmt.Errorf("%w: no default model", ErrUnknownModel)
	}
	return r.Get(name)
}

// SetDefault redirects the legacy alias to the named model.
func (r *Registry) SetDefault(name string) error {
	if _, err := r.Get(name); err != nil {
		return err
	}
	r.mu.Lock()
	r.defName = name
	r.mu.Unlock()
	return nil
}

// Names returns the registered model names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for name, m := range r.models {
		if m.srv != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered (traffic-visible) models.
func (r *Registry) Len() int { return len(r.Names()) }

// ModelInfo is one entry of the GET /v1/models listing (and the
// per-model section of the registry's /stats document).
type ModelInfo struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	// Digest is the content digest of the model's quantized network —
	// the same value Version carries (versions are content-addressed),
	// exported explicitly so fleet auditing can diff replicas and match
	// registry entries against artifact-store listings without knowing
	// the versioning convention.
	Digest string `json:"digest"`
	// Default marks the model the legacy /v1/classify alias routes to.
	Default bool `json:"default,omitempty"`
	// Stats is the model's private traffic snapshot.
	Stats Stats `json:"stats"`
	// Breaker is the model's circuit-breaker snapshot (absent when the
	// model runs without one); InFlight/QuotaLimit/QuotaRejected describe
	// the admission quota (QuotaLimit 0 = unlimited).
	Breaker       *resilience.BreakerStats `json:"breaker,omitempty"`
	InFlight      int                      `json:"in_flight,omitempty"`
	QuotaLimit    int                      `json:"quota_limit,omitempty"`
	QuotaRejected uint64                   `json:"quota_rejected,omitempty"`
}

// RegistryStats is the registry-wide stats document: one section per
// model, sorted by name.
type RegistryStats struct {
	// DefaultModel names the legacy-alias target ("" once it has been
	// unregistered).
	DefaultModel string      `json:"default_model"`
	Models       []ModelInfo `json:"models"`
	// Splits lists the registry's A/B traffic-split aliases with their
	// realized per-variant counts.
	Splits   []SplitInfo `json:"splits,omitempty"`
	Draining bool        `json:"draining"`
	// Health mirrors GET /healthz: "ok", "degraded" (some breaker open
	// or probing) or "draining".
	Health string `json:"health"`
}

// Stats snapshots every registered model's traffic counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.RLock()
	defName := r.defName
	closed := r.closed
	models := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		if m.srv != nil {
			models = append(models, m)
		}
	}
	r.mu.RUnlock()
	sort.Slice(models, func(i, j int) bool { return models[i].name < models[j].name })
	out := RegistryStats{DefaultModel: defName, Draining: closed, Health: r.Health(), Models: make([]ModelInfo, len(models))}
	seen := false
	for i, m := range models {
		out.Models[i] = ModelInfo{
			Name: m.name, Version: m.version, Digest: m.version,
			Default: m.name == defName, Stats: m.srv.Stats(),
			InFlight: m.quota.InFlight(), QuotaLimit: m.quota.Limit(), QuotaRejected: m.quota.Rejected(),
		}
		if m.breaker != nil {
			bs := m.breaker.Stats()
			out.Models[i].Breaker = &bs
		}
		seen = seen || m.name == defName
	}
	if !seen {
		out.DefaultModel = ""
	}
	if sp := r.Splits(); len(sp) > 0 {
		out.Splits = sp
	}
	return out
}

// DrainAll stops the whole registry: registrations and admissions end,
// every model's backlog finishes (bounded by ctx), then the models are
// removed. Idempotent; per-model drain errors aggregate in name order.
func (r *Registry) DrainAll(ctx context.Context) error {
	r.mu.Lock()
	r.closed = true
	models := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		models = append(models, m)
	}
	r.models = make(map[string]*Model)
	r.mu.Unlock()
	sort.Slice(models, func(i, j int) bool { return models[i].name < models[j].name })
	var errs []error
	for _, m := range models {
		if m.srv == nil {
			continue
		}
		if err := m.srv.Drain(ctx); err != nil {
			errs = append(errs, fmt.Errorf("model %q: %w", m.name, err))
		}
	}
	return errors.Join(errs...)
}

// Draining reports whether DrainAll has begun.
func (r *Registry) Draining() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.closed
}

// Handler returns the registry's HTTP surface:
//
//	POST /v1/models/{name}/classify — classify against the named model
//	GET  /v1/models/{name}/stats    — that model's Stats snapshot
//	GET  /v1/models                 — name/version/stats listing
//	POST /v1/classify               — legacy alias for the default model
//	                                  (byte-compatible with the
//	                                  single-model server's responses)
//	GET  /healthz                   — liveness (503 once draining)
//	GET  /stats                     — RegistryStats (per-model sections)
//	GET  /metrics                   — Prometheus text exposition, every
//	                                  model's counters labeled model=<name>
//	                                  plus breaker/quota/registry families
//	GET  /debug/traces              — all models' recent traces merged
//	                                  into one Chrome trace document
//
// Unknown model names are 404s with a JSON error body; every other
// status contract (400/429/503/499) is the single-model server's,
// because routing hands the request body untouched to that model's
// handler.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	// Method checks live inside the handlers (not in mux patterns) so
	// wrong-method errors keep the single-model server's JSON bodies —
	// the legacy alias must stay byte-compatible even on error paths.
	mux.HandleFunc("/v1/models/{name}/classify", r.handleModelClassify)
	mux.HandleFunc("/v1/models/{name}/stats", r.handleModelStats)
	mux.HandleFunc("/v1/models", r.handleList)
	mux.HandleFunc("/v1/classify", r.handleDefaultClassify)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/stats", r.handleRegistryStats)
	mux.Handle("/metrics", telemetry.MetricsHandler(r.collectInto))
	mux.HandleFunc("/debug/traces", r.handleTraces)
	return mux
}

// lookup resolves a routed model or writes the 404/503.
func (r *Registry) lookup(w http.ResponseWriter, name string) (*Model, bool) {
	if r.Draining() {
		writeError(w, http.StatusServiceUnavailable, ErrRegistryClosed.Error())
		return nil, false
	}
	m, err := r.Get(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return nil, false
	}
	return m, true
}

func (r *Registry) handleModelClassify(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	if r.Draining() {
		writeError(w, http.StatusServiceUnavailable, ErrRegistryClosed.Error())
		return
	}
	m, err := r.Get(name)
	if err != nil {
		// Registered models win resolution; only a miss consults the
		// traffic-split aliases, so a split can never shadow a model.
		sm, chosen, ok := r.resolveSplit(name)
		if !ok {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		w.Header().Set(SplitModelHeader, chosen)
		m = sm
	}
	r.serveModel(m, w, req)
}

// serveModel runs the model's classify handler behind the resilience
// gates: quota admission first (cheap, and every acquire pairs with a
// guaranteed Release), then the circuit breaker. The ordering matters —
// a breaker Allow must pair with exactly one Record, so a quota 429
// issued after Allow would leak a half-open probe slot. With no breaker
// and no quota limit this degenerates to the legacy direct call: the
// response writer is never wrapped, so legacy responses stay
// byte-identical.
func (r *Registry) serveModel(m *Model, w http.ResponseWriter, req *http.Request) {
	if !m.quota.TryAcquire() {
		w.Header().Set("Retry-After", strconv.Itoa(m.srv.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("serve: model %q over its admission quota", m.name))
		return
	}
	defer m.quota.Release()
	if m.breaker == nil {
		m.srv.handleClassify(w, req)
		return
	}
	allowed, retryAfter := m.breaker.Allow()
	if !allowed {
		secs := int(retryAfter / time.Second)
		if retryAfter%time.Second != 0 || secs < 1 {
			secs++ // round up: retrying a hair early hits the open breaker again
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("serve: model %q circuit open", m.name))
		return
	}
	rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	m.srv.handleClassify(rec, req)
	// 5xx — engine failures, injected faults, server-imposed deadlines —
	// counts against the breaker; a 429 is load shedding working as
	// designed, not a model fault, and records as success.
	m.breaker.Record(rec.code < 500)
}

// statusRecorder captures the status a handler wrote so the breaker can
// classify the outcome. Only installed when a breaker is enabled:
// wrapping the writer changes its dynamic type, which the byte-compat
// legacy path must never observe.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (r *Registry) handleModelStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	// Stats stay readable while draining: the snapshot is how an
	// operator watches a drain finish.
	m, err := r.Get(req.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, m.srv.Stats())
}

func (r *Registry) handleList(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, r.Stats())
}

// handleDefaultClassify is the legacy single-model endpoint: requests
// route to the default model's handler untouched, so responses are
// byte-identical to a single-model Server fronting that network
// (pinned by the registry alias test).
func (r *Registry) handleDefaultClassify(w http.ResponseWriter, req *http.Request) {
	if r.Draining() {
		writeError(w, http.StatusServiceUnavailable, ErrRegistryClosed.Error())
		return
	}
	m, err := r.Default()
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	r.serveModel(m, w, req)
}

// Health reports the registry's aggregate condition: "draining" once
// DrainAll began, "degraded" while any model's circuit breaker is open
// or half-open, "ok" otherwise.
func (r *Registry) Health() string {
	if r.Draining() {
		return "draining"
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.models {
		if m.breaker != nil && m.breaker.State() != resilience.Closed {
			return "degraded"
		}
	}
	return "ok"
}

// handleHealthz reports degraded-mode health: "ok" and "degraded" are
// both 200 — a degraded registry is still serving (the open breaker
// sheds only its own model) and must not be pulled from rotation —
// while "draining" is the load-balancer-visible 503.
func (r *Registry) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := r.Health()
	code := http.StatusOK
	if h == "draining" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": h})
}

func (r *Registry) handleRegistryStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, r.Stats())
}

// modelPath returns the classify path for a named model, or the legacy
// alias for name "" — the one routing convention the load generator and
// walkthroughs share.
func modelPath(name string) string {
	if name == "" {
		return "/v1/classify"
	}
	return "/v1/models/" + strings.TrimSpace(name) + "/classify"
}
