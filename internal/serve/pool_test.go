package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/quant"
)

func TestPoolBuildsEnginesBySlot(t *testing.T) {
	var built []int
	p, err := NewPool(3, func(i int) (quant.DotEngine, error) {
		built = append(built, i)
		return quant.ExactEngine{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(built) != "[0 1 2]" {
		t.Fatalf("factory called with %v", built)
	}
	if p.Size() != 3 || p.InUse() != 0 {
		t.Fatalf("size %d busy %d", p.Size(), p.InUse())
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		e, err := p.Get(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if e.Scratch == nil {
			t.Fatal("engine missing scratch")
		}
		seen[e.ID] = true
	}
	if len(seen) != 3 {
		t.Fatalf("IDs %v", seen)
	}
}

func TestPoolRejectsBadInputs(t *testing.T) {
	if _, err := NewPool(0, quant.SharedEngine(quant.ExactEngine{})); err == nil {
		t.Fatal("zero-size pool accepted")
	}
	wantErr := errors.New("boom")
	if _, err := NewPool(2, func(i int) (quant.DotEngine, error) {
		if i == 1 {
			return nil, wantErr
		}
		return quant.ExactEngine{}, nil
	}); !errors.Is(err, wantErr) {
		t.Fatalf("factory error not surfaced: %v", err)
	}
}

// Exhaustion: with every engine checked out, Get must block until the
// context ends (pool starvation is backpressure, not a panic) and
// recover as soon as one returns.
func TestPoolExhaustionAndContextCancellation(t *testing.T) {
	p, err := NewPool(2, quant.SharedEngine(quant.ExactEngine{}))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Get(context.Background())
	b, _ := p.Get(context.Background())
	if p.InUse() != 2 {
		t.Fatalf("busy %d", p.InUse())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Get(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("exhausted Get: %v", err)
	}
	p.Put(a)
	c, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("freed engine not reissued")
	}
	p.Put(b)
	p.Put(c)
	if p.InUse() != 0 {
		t.Fatalf("busy %d after returns", p.InUse())
	}
}

// Checkout/return under concurrent load (-race): ownership hands off
// cleanly, utilization never exceeds the pool size, and the same engine
// is never held twice.
func TestPoolConcurrentCheckout(t *testing.T) {
	const size, workers, rounds = 3, 8, 200
	p, err := NewPool(size, quant.SharedEngine(quant.ExactEngine{}))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	held := map[int]bool{}
	var wg sync.WaitGroup
	fail := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				e, err := p.Get(context.Background())
				if err != nil {
					fail <- err.Error()
					return
				}
				mu.Lock()
				if held[e.ID] {
					mu.Unlock()
					fail <- fmt.Sprintf("engine %d double-issued", e.ID)
					return
				}
				held[e.ID] = true
				mu.Unlock()
				if n := p.InUse(); n > size {
					fail <- fmt.Sprintf("utilization %d > size %d", n, size)
					return
				}
				// Exercise the engine like a batch runner would: -race
				// flags any ownership leak on a stateful engine.
				e.Dot.Dot([]int{1, 2}, []int{3, 4})
				mu.Lock()
				held[e.ID] = false
				mu.Unlock()
				p.Put(e)
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if p.InUse() != 0 {
		t.Fatalf("busy %d after all returns", p.InUse())
	}
}

func TestPoolPutMisuse(t *testing.T) {
	p, err := NewPool(1, quant.SharedEngine(quant.ExactEngine{}))
	if err != nil {
		t.Fatal(err)
	}
	mustPanicServe(t, "nil Put", func() { p.Put(nil) })
	e, _ := p.Get(context.Background())
	p.Put(e)
	mustPanicServe(t, "double Put", func() { p.Put(e) })
}

func mustPanicServe(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	f()
}
