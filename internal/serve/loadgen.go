package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// ServedByHeader is the response header a fleet router stamps with the
// name of the replica that answered a proxied request. The load
// generator journals it per POST and tallies per-replica response
// counts, which is how routed traffic distributions are audited. It
// lives in this package (not internal/fleet) so the client side needs
// no fleet import; the router references this constant.
const ServedByHeader = "X-Served-By"

// ModelShare weights one model in a multi-model traffic mix: requests
// route to POST /v1/models/{Name}/classify in proportion Weight /
// sum(weights). An empty Name targets the legacy default alias.
type ModelShare struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
}

// LoadOptions shapes one load-generation run against the HTTP API.
type LoadOptions struct {
	// Requests is the total number of classify calls to issue.
	Requests int
	// Clients is the number of concurrent closed-loop clients
	// (<= 0 selects 1).
	Clients int
	// Batch is how many inputs each POST carries (<= 0 selects 1; 1
	// issues single-input bodies).
	Batch int
	// Logits asks the server to echo raw logits back.
	Logits bool
	// Raw posts the binary wire format (octet-stream float32 tensors)
	// instead of JSON float arrays.
	Raw bool
	// Model routes every request to the named model
	// (/v1/models/{Model}/classify); empty targets the legacy default
	// alias. Ignored when Mix is set.
	Model string
	// Mix spreads traffic across models by weight. Each POST picks its
	// model from a deterministic hash of (MixSeed, request index), so
	// the same run configuration always realizes the same model
	// sequence — independent of client count and scheduling.
	Mix []ModelShare
	// MixSeed perturbs the mix hash; two seeds realize two different
	// (but each deterministic) model sequences.
	MixSeed uint64
	// Retry enables the resilient client: transient failures — 429
	// backpressure, 5xx (including injected chaos faults) — are retried
	// with exponential backoff and deterministic jitter, honoring the
	// server's Retry-After. Zero fields select the documented defaults.
	Retry *resilience.RetryOptions
	// TraceOut receives one TraceRecord JSON line per POST: the
	// client-side trace ID, routed model, outcome, wall latency and
	// attempt count. Lines appear in completion order (the record's
	// Index orders them deterministically offline); writes are
	// serialized. nil disables.
	TraceOut io.Writer
}

// TraceRecord is one line of the load generator's trace JSONL
// (LoadOptions.TraceOut): the client-side view of one POST. TraceID is
// the splitmix64 hash of the group's first global request index —
// exactly how the server derives span IDs from arrival seqs — so
// client and server traces join by ID format offline.
type TraceRecord struct {
	// Index is the global index of the group's first request.
	Index int `json:"index"`
	// TraceID is the stamped X-Trace-Id value.
	TraceID string `json:"trace_id"`
	// Model is the routed model ("" = the legacy default alias).
	Model string `json:"model,omitempty"`
	// Status is "ok", "rejected" (429) or "error".
	Status string `json:"status"`
	// Requests is how many inputs the POST carried.
	Requests int `json:"requests"`
	// LatencyNS is the POST's wall latency, retries included.
	LatencyNS int64 `json:"latency_ns"`
	// Attempts counts tries including the first (1 without retry).
	Attempts int `json:"attempts"`
	// ServedBy is the replica that answered (the X-Served-By response
	// header), present only behind a fleet router.
	ServedBy string `json:"served_by,omitempty"`
}

// LoadReport is one load-generation outcome.
type LoadReport struct {
	Requests  int           `json:"requests"`
	Responses int           `json:"responses"`
	Rejected  int           `json:"rejected_429"`
	Errors    int           `json:"errors"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	QPS       float64       `json:"qps"`
	Clients   int           `json:"clients"`
	Batch     int           `json:"batch"`
	Raw       bool          `json:"raw_wire"`
	// ByModel counts classify results per routed model for mixed runs
	// (key "" is the legacy default alias).
	ByModel map[string]int `json:"by_model,omitempty"`
	// ByReplica counts classify results per answering replica when
	// responses carried X-Served-By — present only when the target is a
	// fleet router (a direct server never stamps the header, so driving
	// one is unchanged).
	ByReplica map[string]int `json:"by_replica,omitempty"`
	// Retries counts extra attempts beyond each POST's first (present
	// only when LoadOptions.Retry enabled the resilient client).
	Retries int `json:"retries,omitempty"`
}

// mix64 is the splitmix64 finalizer: a fixed, well-diffusing 64-bit
// hash (every input bit moves every output bit), so reducing it modulo
// a small weight total stays unbiased even over consecutive indices —
// which byte-oriented hashes like FNV do not guarantee.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SparseInputs generates n deterministic inputs of the given size with a
// controlled zero fraction: element j of input i is zero iff the hashed
// fraction mix64(mix64(seed+i)^j) / 2^64 falls below sparsity, otherwise
// a positive value in (0, 1]. Pure function of its arguments — the same
// (n, size, sparsity, seed) always yields byte-identical inputs, so
// benchmark legs and cached experiments replay exactly.
func SparseInputs(n, size int, sparsity float64, seed uint64) [][]float32 {
	xs := make([][]float32, n)
	for i := range xs {
		base := mix64(seed + uint64(i))
		x := make([]float32, size)
		for j := range x {
			h := mix64(base ^ uint64(j))
			if float64(h)/float64(1<<63)/2 < sparsity {
				continue
			}
			// Positive and bounded away from the quantization step so no
			// nonzero element rounds to zero after activation quantization.
			x[j] = 0.5 + 0.5*float32(h>>40)/float32(1<<24)
		}
		xs[i] = x
	}
	return xs
}

// pickShare selects the mix entry for one request index: a hash of
// (seed, index) reduced into the cumulative weights. Pure function of
// its arguments — the routing sequence is a property of the run
// configuration, not of scheduling.
func pickShare(mix []ModelShare, seed uint64, idx int) string {
	total := 0
	for _, s := range mix {
		if s.Weight > 0 {
			total += s.Weight
		}
	}
	if total == 0 {
		return ""
	}
	v := int(mix64(mix64(seed)^uint64(idx)) % uint64(total))
	for _, s := range mix {
		if s.Weight <= 0 {
			continue
		}
		if v < s.Weight {
			return s.Name
		}
		v -= s.Weight
	}
	return mix[len(mix)-1].Name // unreachable: v < total by construction
}

// Drive issues opts.Requests classify calls against the API rooted at
// baseURL, cycling over the given flat inputs, with opts.Clients
// concurrent closed-loop clients each posting opts.Batch inputs per
// request. Responses counts classify results that came back 2xx with a
// well-formed body; 429 backpressure rejections and other failures are
// tallied separately. The returned error covers only setup problems —
// per-request failures are data, not errors.
func Drive(baseURL string, inputs [][]float32, opts LoadOptions) (LoadReport, error) {
	if len(inputs) == 0 {
		return LoadReport{}, fmt.Errorf("serve: no inputs to drive with")
	}
	if opts.Requests <= 0 {
		return LoadReport{}, fmt.Errorf("serve: Requests must be positive")
	}
	if opts.Clients <= 0 {
		opts.Clients = 1
	}
	if opts.Batch <= 0 {
		opts.Batch = 1
	}
	url := baseURL + modelPath(opts.Model)
	client := &http.Client{}
	// One retrier shared by every client goroutine: its counters are
	// atomic, and sharing keeps the per-call seed sequence global so the
	// report's retry count is a property of the run, not of scheduling.
	var retrier *resilience.RetryClient
	if opts.Retry != nil {
		retrier = &resilience.RetryClient{HTTP: client, Opts: *opts.Retry}
	}
	var raws [][]byte
	if opts.Raw {
		raws = make([][]byte, len(inputs))
		for i, in := range inputs {
			raw := make([]byte, 4*len(in))
			for j, v := range in {
				binary.LittleEndian.PutUint32(raw[4*j:], math.Float32bits(v))
			}
			raws[i] = raw
		}
	}
	per := (opts.Requests + opts.Clients - 1) / opts.Clients
	if len(opts.Mix) > 0 {
		// Align client spans to the POST group size so every group
		// starts at a multiple of Batch: the set of pickShare indices —
		// and with it the realized model sequence — is then identical at
		// every client count, which is what the Mix determinism contract
		// promises. (Unmixed runs keep the historical even split.)
		if rem := per % opts.Batch; rem != 0 {
			per += opts.Batch - rem
		}
	}
	spans := parallel.Spans(opts.Requests, per)

	var responses, rejected, failures atomic.Int64
	var modelMu sync.Mutex
	byModel := make(map[string]int)
	byReplica := make(map[string]int)
	var traceMu sync.Mutex
	writeTrace := func(rec TraceRecord) {
		line, err := json.Marshal(rec)
		if err != nil { // unreachable: TraceRecord is all plain fields
			return
		}
		traceMu.Lock()
		_, _ = opts.TraceOut.Write(append(line, '\n'))
		traceMu.Unlock()
	}
	start := time.Now()
	err := parallel.ForEach(len(spans), len(spans), func(c int) error {
		span := spans[c]
		for lo := span.Lo; lo < span.Hi; lo += opts.Batch {
			hi := lo + opts.Batch
			if hi > span.Hi {
				hi = span.Hi
			}
			n := hi - lo
			postPath := url
			model := opts.Model
			if len(opts.Mix) > 0 {
				// One model per POST, picked by the group's first global
				// request index. Spans partition [0, Requests) on
				// Batch-aligned boundaries (see above), so every group
				// start is a multiple of Batch and the routing sequence
				// is identical at any client count.
				model = pickShare(opts.Mix, opts.MixSeed, lo)
				postPath = baseURL + modelPath(model)
			}
			var body []byte
			var e error
			contentType := "application/json"
			single := n == 1 && opts.Batch == 1 && !opts.Raw
			switch {
			case opts.Raw:
				contentType = rawContentType
				concat := make([]byte, 0, n*len(raws[0]))
				for i := 0; i < n; i++ {
					concat = append(concat, raws[(lo+i)%len(inputs)]...)
				}
				body = concat
			case single:
				body, e = json.Marshal(classifyRequest{Input: inputs[lo%len(inputs)], Logits: opts.Logits})
			default:
				batch := make([][]float32, n)
				for i := 0; i < n; i++ {
					batch[i] = inputs[(lo+i)%len(inputs)]
				}
				body, e = json.Marshal(classifyRequest{Inputs: batch, Logits: opts.Logits})
			}
			if e != nil {
				failures.Add(int64(n))
				continue
			}
			postURL := postPath
			if opts.Raw && opts.Logits {
				postURL += "?logits=1"
			}
			// Every POST is stamped with a trace ID derived from the
			// group's first global request index — the same splitmix64
			// derivation server spans use on arrival seqs — so server-side
			// traces can be joined to this client's records offline.
			traceID := telemetry.TraceID(uint64(lo))
			attempts := 1
			t0 := time.Now()
			var resp *http.Response
			if retrier != nil {
				hdr := http.Header{telemetry.TraceIDHeader: []string{traceID}}
				resp, attempts, e = retrier.PostHeader(postURL, contentType, body, hdr)
			} else {
				var req *http.Request
				if req, e = http.NewRequest(http.MethodPost, postURL, bytes.NewReader(body)); e == nil {
					req.Header.Set("Content-Type", contentType)
					req.Header.Set(telemetry.TraceIDHeader, traceID)
					resp, e = client.Do(req)
				}
			}
			status := "ok"
			served := ""
			if e == nil && resp != nil {
				served = resp.Header.Get(ServedByHeader)
			}
			switch {
			case e != nil:
				failures.Add(int64(n))
				status = "error"
			case resp.StatusCode == http.StatusTooManyRequests:
				rejected.Add(int64(n))
				resp.Body.Close()
				status = "rejected"
			case resp.StatusCode != http.StatusOK:
				failures.Add(int64(n))
				resp.Body.Close()
				status = "error"
			default:
				got, de := decodeResults(resp, n, single)
				if de != nil {
					failures.Add(int64(n))
					status = "error"
					break
				}
				responses.Add(int64(got))
				if len(opts.Mix) > 0 || served != "" {
					modelMu.Lock()
					if len(opts.Mix) > 0 {
						byModel[model] += got
					}
					if served != "" {
						byReplica[served] += got
					}
					modelMu.Unlock()
				}
			}
			if opts.TraceOut != nil {
				writeTrace(TraceRecord{
					Index: lo, TraceID: traceID, Model: model, Status: status,
					Requests: n, LatencyNS: time.Since(t0).Nanoseconds(), Attempts: attempts,
					ServedBy: served,
				})
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil { // unreachable: clients report failures via counters
		return LoadReport{}, err
	}
	rep := LoadReport{
		Requests:  opts.Requests,
		Responses: int(responses.Load()),
		Rejected:  int(rejected.Load()),
		Errors:    int(failures.Load()),
		Elapsed:   elapsed,
		Clients:   opts.Clients,
		Batch:     opts.Batch,
		Raw:       opts.Raw,
	}
	if len(opts.Mix) > 0 {
		rep.ByModel = byModel
	}
	if len(byReplica) > 0 {
		rep.ByReplica = byReplica
	}
	if retrier != nil {
		rep.Retries = int(retrier.Retries())
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Responses) / elapsed.Seconds()
	}
	return rep, nil
}

// decodeResults parses a classify response carrying n results.
func decodeResults(resp *http.Response, n int, single bool) (int, error) {
	defer resp.Body.Close()
	if single {
		var r Result
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			return 0, err
		}
		return 1, nil
	}
	var b batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		return 0, err
	}
	if len(b.Results) != n {
		return 0, fmt.Errorf("serve: %d results for %d inputs", len(b.Results), n)
	}
	return n, nil
}

// BenchOptions sizes a throughput bench run.
type BenchOptions struct {
	// SerialRequests sizes the single-request-serial baseline leg
	// (<= 0 selects 256).
	SerialRequests int
	// BatchedRequests sizes the throughput leg (<= 0 selects 1024).
	BatchedRequests int
	// Clients and Batch shape the throughput leg (<= 0 selects 4 and
	// 32).
	Clients int
	Batch   int
	// Raw drives the throughput leg with the binary wire format (the
	// serial baseline always posts naive JSON single-input bodies — the
	// integration a one-shot caller actually writes).
	Raw bool
	// Mix adds a multi-model routing leg (registry benches only):
	// MixRequests classify calls spread across the weighted models via
	// per-request-hash selection, exercising the per-name routing path
	// and every model's private pool at once.
	Mix []ModelShare
	// MixRequests sizes the multi-model leg (<= 0 selects
	// BatchedRequests).
	MixRequests int
	// FaultRate > 0 adds a fault-injected goodput leg: the batched
	// workload re-runs behind the deterministic HTTP chaos middleware
	// injecting flagged 500s at this rate, driven by retrying clients.
	// The leg's QPS over the fault-free batched QPS is GoodputFrac — the
	// resilience plane's headline number.
	FaultRate float64
	// ChaosSeed seeds the fault schedule and the retry jitter; the same
	// seed realizes the same faults at the same request indices.
	ChaosSeed uint64
	// TelemetryHandler adds a telemetry-overhead leg: the batched
	// workload re-runs against this handler — the same model behind a
	// server built with Options.Telemetry — in paired off/on trials, and
	// the best paired QPS ratio sets TelemetryOverhead, the number the
	// CI gate bounds.
	TelemetryHandler http.Handler
	// FleetHandler adds a routing-overhead leg: the batched workload
	// re-runs against this handler — a fleet router proxying to the same
	// backend as the direct legs — in paired direct/routed trials, and
	// the best paired QPS ratio sets RoutingOverhead, the number the CI
	// gate bounds.
	FleetHandler http.Handler
	// FleetModel names the model both fleet-leg sides drive (the routed
	// side has no legacy default alias, so the model must be addressed
	// by name on both).
	FleetModel string
}

// BenchReport is the BENCH_serve.json wire format. Schema-tagged like
// the other trajectory files; consumers key on the tag (@v2 added the
// multi-model routing leg and the registry stats document).
type BenchReport struct {
	Schema     string     `json:"schema"`
	GoMaxProcs int        `json:"go_max_procs"`
	Serial     LoadReport `json:"serial"`
	Batched    LoadReport `json:"batched"`
	// MultiModel is the registry routing leg: batched traffic spread
	// across every registered model by deterministic per-request hash
	// (absent for single-model benches).
	MultiModel *LoadReport `json:"multi_model,omitempty"`
	// Speedup is batched QPS over single-request-serial QPS — the
	// headline number the serving plane exists to move.
	Speedup float64 `json:"batched_speedup_vs_serial"`
	Stats   Stats   `json:"server_stats"`
	// Registry carries the per-model stats sections when the bench ran
	// against a model registry.
	Registry *RegistryStats `json:"registry_stats,omitempty"`
	// FaultInjected is the goodput-under-faults leg (absent unless
	// BenchOptions.FaultRate > 0): the batched workload behind the
	// deterministic chaos middleware, driven by retrying clients.
	FaultInjected *LoadReport `json:"fault_injected,omitempty"`
	// GoodputFrac is FaultInjected QPS over fault-free batched QPS —
	// how much sustained throughput survives the injected fault rate.
	GoodputFrac float64 `json:"goodput_frac,omitempty"`
	// Telemetry is the telemetry-overhead leg (absent unless
	// BenchOptions.TelemetryHandler is set): the best of three batched
	// runs against a telemetry-on server.
	Telemetry *LoadReport `json:"telemetry,omitempty"`
	// TelemetryOverhead is the fractional QPS cost of telemetry:
	// 1 minus the best paired on/off QPS ratio, floored at 0. The CI
	// gate bounds it.
	TelemetryOverhead float64 `json:"telemetry_overhead,omitempty"`
	// Fleet is the routing-overhead leg (absent unless
	// BenchOptions.FleetHandler is set): the best of three batched runs
	// through a fleet router proxying to the same backend as the direct
	// legs. Its ByReplica section shows where the traffic landed.
	Fleet *LoadReport `json:"fleet,omitempty"`
	// RoutingOverhead is the fractional QPS cost of the router hop:
	// 1 minus the best paired routed/direct QPS ratio, floored at 0.
	// The CI gate bounds it.
	RoutingOverhead float64 `json:"routing_overhead,omitempty"`
}

// benchSchema tags BENCH_serve.json; see BenchReport (@v2 added the
// multi-model routing leg and the registry stats document; @v3 the
// fault-injected goodput leg and retry counters; @v4 the
// telemetry-overhead leg; @v5 the fleet routing-overhead leg).
const benchSchema = "repro/bench_serve@v5"

// ListenLocal serves an HTTP API (a single-model Server's Handler or a
// Registry's) on an ephemeral loopback listener, returning the
// http.Server (Close stops it) and the base URL. The bench, the
// sconnaserve selftest and in-process walkthroughs share it.
func ListenLocal(h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	return hs, "http://" + ln.Addr().String(), nil
}

// BenchThroughput measures the server's sustained classify throughput
// two ways over a real loopback HTTP listener: a single closed-loop
// client posting naive JSON single-input bodies one at a time (the
// single-request-serial baseline — the integration a one-shot caller of
// the evaluation plane actually writes), then concurrent throughput
// clients with batched bodies (binary wire format when opts.Raw) feeding
// the micro-batcher. The ratio is the serving plane's amortization win:
// per-request HTTP, JSON and dispatch overhead divided across a
// micro-batch, weight-vector gathers shared batch-wide, engines reused
// from the pool. Both legs' configurations are recorded in the report.
//
// The caller keeps ownership of s (it is not drained).
func BenchThroughput(s *Server, inputs [][]float32, opts BenchOptions) (BenchReport, error) {
	rep, err := benchHandler(s.Handler(), inputs, opts)
	if err != nil {
		return BenchReport{}, err
	}
	rep.Stats = s.Stats()
	return rep, nil
}

// BenchRegistryThroughput is BenchThroughput against a model registry:
// the serial and batched legs drive the legacy default alias (the same
// wire traffic as the single-model bench, so the headline QPS numbers
// stay comparable across releases), and when opts.Mix is set a third
// leg spreads batched traffic across the named models through the
// per-name routing surface. The report carries the default model's
// Stats plus the registry's per-model sections.
func BenchRegistryThroughput(reg *Registry, inputs [][]float32, opts BenchOptions) (BenchReport, error) {
	def, err := reg.Default()
	if err != nil {
		return BenchReport{}, err
	}
	rep, err := benchHandler(reg.Handler(), inputs, opts)
	if err != nil {
		return BenchReport{}, err
	}
	rep.Stats = def.Server().Stats()
	rs := reg.Stats()
	rep.Registry = &rs
	return rep, nil
}

// benchHandler runs the serial/batched (and optional multi-model) legs
// against any classify API handler. Stats are left to the caller.
func benchHandler(h http.Handler, inputs [][]float32, opts BenchOptions) (BenchReport, error) {
	if opts.SerialRequests <= 0 {
		opts.SerialRequests = 256
	}
	if opts.BatchedRequests <= 0 {
		opts.BatchedRequests = 1024
	}
	if opts.Clients <= 0 {
		opts.Clients = 4
	}
	if opts.Batch <= 0 {
		opts.Batch = 32
	}
	if opts.MixRequests <= 0 {
		opts.MixRequests = opts.BatchedRequests
	}
	hs, base, err := ListenLocal(h)
	if err != nil {
		return BenchReport{}, err
	}
	defer hs.Close()

	// Warm the path (JIT-free Go still pays first-touch allocations,
	// connection setup and position-cache builds).
	if _, err := Drive(base, inputs, LoadOptions{Requests: 2 * opts.Batch, Clients: 2, Batch: opts.Batch, Raw: opts.Raw}); err != nil {
		return BenchReport{}, err
	}
	if _, err := Drive(base, inputs, LoadOptions{Requests: 16, Clients: 1, Batch: 1}); err != nil {
		return BenchReport{}, err
	}

	serial, err := Drive(base, inputs, LoadOptions{Requests: opts.SerialRequests, Clients: 1, Batch: 1})
	if err != nil {
		return BenchReport{}, err
	}
	batched, err := Drive(base, inputs, LoadOptions{
		Requests: opts.BatchedRequests, Clients: opts.Clients, Batch: opts.Batch, Raw: opts.Raw,
	})
	if err != nil {
		return BenchReport{}, err
	}
	rep := BenchReport{
		Schema:     benchSchema,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Serial:     serial,
		Batched:    batched,
	}
	if len(opts.Mix) > 0 {
		mixed, err := Drive(base, inputs, LoadOptions{
			Requests: opts.MixRequests, Clients: opts.Clients, Batch: opts.Batch, Raw: opts.Raw,
			Mix: opts.Mix,
		})
		if err != nil {
			return BenchReport{}, err
		}
		rep.MultiModel = &mixed
	}
	if serial.QPS > 0 {
		rep.Speedup = batched.QPS / serial.QPS
	}
	if opts.FaultRate > 0 {
		// The goodput leg: the same batched workload, but every POST may
		// be answered with an injected, flagged 500 (deterministic
		// schedule keyed by ChaosSeed), and the clients retry with tight
		// backoff. The fraction of fault-free QPS that survives is the
		// resilience plane's cost under that fault rate.
		ch, cbase, err := ListenLocal(resilience.Middleware(h, resilience.HTTPChaosOptions{
			Seed: opts.ChaosSeed, ErrorRate: opts.FaultRate,
		}))
		if err != nil {
			return BenchReport{}, err
		}
		faulted, err := Drive(cbase, inputs, LoadOptions{
			Requests: opts.BatchedRequests, Clients: opts.Clients, Batch: opts.Batch, Raw: opts.Raw,
			Retry: &resilience.RetryOptions{
				Seed: opts.ChaosSeed, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond,
			},
		})
		ch.Close()
		if err != nil {
			return BenchReport{}, err
		}
		rep.FaultInjected = &faulted
		if batched.QPS > 0 {
			rep.GoodputFrac = faulted.QPS / batched.QPS
		}
	}
	if opts.TelemetryHandler != nil {
		// The telemetry-overhead leg: identical batched workload against a
		// telemetry-on server. A single off/on QPS pair is far too noisy
		// to gate a few-percent ceiling on (scheduler jitter alone
		// exceeds it), so the leg runs three adjacent off/on pairs of
		// double-length trials and gates on the best paired QPS ratio:
		// noise only ever depresses a ratio (the on side cannot "get
		// lucky" past the off side by more than jitter), so if telemetry
		// keeps pace in any one adjacent pair it cannot be costing more
		// than that, while a real systematic cost depresses every pair.
		th, tbase, err := ListenLocal(opts.TelemetryHandler)
		if err != nil {
			return BenchReport{}, err
		}
		if _, err := Drive(tbase, inputs, LoadOptions{Requests: 2 * opts.Batch, Clients: 2, Batch: opts.Batch, Raw: opts.Raw}); err != nil {
			th.Close()
			return BenchReport{}, err
		}
		trialCfg := LoadOptions{
			Requests: 2 * opts.BatchedRequests, Clients: opts.Clients, Batch: opts.Batch, Raw: opts.Raw,
		}
		var ratios []float64
		var bestOn *LoadReport
		for trial := 0; trial < 3; trial++ {
			off, err := Drive(base, inputs, trialCfg)
			if err != nil {
				th.Close()
				return BenchReport{}, err
			}
			on, err := Drive(tbase, inputs, trialCfg)
			if err != nil {
				th.Close()
				return BenchReport{}, err
			}
			if off.QPS > 0 {
				ratios = append(ratios, on.QPS/off.QPS)
			}
			if bestOn == nil || on.QPS > bestOn.QPS {
				bestOn = &on
			}
		}
		th.Close()
		sort.Float64s(ratios)
		rep.Telemetry = bestOn
		if n := len(ratios); n > 0 && ratios[n-1] < 1 {
			rep.TelemetryOverhead = 1 - ratios[n-1]
		}
	}
	if opts.FleetHandler != nil {
		// The routing-overhead leg: identical batched workload through a
		// fleet router that proxies back to the same backend the direct
		// legs hit. Same paired-trials discipline as the telemetry leg —
		// three adjacent direct/routed pairs, gate on the best paired QPS
		// ratio — because a single pair is far too noisy to bound a hop
		// cost on. Both sides address the model by name: the routed side
		// has no legacy default alias.
		fh, fbase, err := ListenLocal(opts.FleetHandler)
		if err != nil {
			return BenchReport{}, err
		}
		trialCfg := LoadOptions{
			Requests: 2 * opts.BatchedRequests, Clients: opts.Clients, Batch: opts.Batch, Raw: opts.Raw,
			Model: opts.FleetModel,
		}
		warmCfg := LoadOptions{
			Requests: 2 * opts.Batch, Clients: 2, Batch: opts.Batch, Raw: opts.Raw,
			Model: opts.FleetModel,
		}
		if _, err := Drive(fbase, inputs, warmCfg); err != nil {
			fh.Close()
			return BenchReport{}, err
		}
		if _, err := Drive(base, inputs, warmCfg); err != nil {
			fh.Close()
			return BenchReport{}, err
		}
		var ratios []float64
		var bestRouted *LoadReport
		for trial := 0; trial < 3; trial++ {
			direct, err := Drive(base, inputs, trialCfg)
			if err != nil {
				fh.Close()
				return BenchReport{}, err
			}
			routed, err := Drive(fbase, inputs, trialCfg)
			if err != nil {
				fh.Close()
				return BenchReport{}, err
			}
			if direct.QPS > 0 {
				ratios = append(ratios, routed.QPS/direct.QPS)
			}
			if bestRouted == nil || routed.QPS > bestRouted.QPS {
				bestRouted = &routed
			}
		}
		fh.Close()
		sort.Float64s(ratios)
		rep.Fleet = bestRouted
		if n := len(ratios); n > 0 && ratios[n-1] < 1 {
			rep.RoutingOverhead = 1 - ratios[n-1]
		}
	}
	return rep, nil
}
