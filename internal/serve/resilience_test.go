package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/quant"
	"repro/internal/resilience"
	"repro/internal/tensor"
)

// postSingle posts one JSON single-input classify request and returns
// the response (body closed) plus its decoded error text, if any.
func postSingle(t *testing.T, client *http.Client, url string, x *tensor.T) *http.Response {
	t.Helper()
	body, err := json.Marshal(classifyRequest{Input: x.Data})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// The chaos soak: a registry model served in deterministic mode behind
// a circuit breaker, with engine-level fault injection. Every request
// terminates with a definite status, the breaker trips (healthz
// degrades while the registry keeps answering), recovers through
// half-open probes once the faults stop, and the drained process leaks
// no goroutines.
func TestChaosSoakBreakerTripAndRecover(t *testing.T) {
	startGoroutines := runtime.NumGoroutine()

	inner := quant.SharedEngine(quant.ExactEngine{})
	chaotic := resilience.ChaosEngineFactory(inner, resilience.ChaosOptions{Seed: 7, ErrRate: 0.9, SkipSeqs: 2})
	var faulting atomic.Bool // two-phase soak: faults on, then recovery
	faulting.Store(true)
	factory := func(shard int) (quant.DotEngine, error) {
		if faulting.Load() {
			return chaotic(shard)
		}
		return inner(shard)
	}

	reg := NewRegistry()
	_, err := reg.Register("m", testNet(t), factory, Options{
		InputShape: testShape, PoolSize: 2, MaxBatch: 4, QueueDepth: 64, Deterministic: true,
		Breaker: &resilience.BreakerOptions{
			Window: 8, FailureThreshold: 0.5, MinSamples: 4,
			Cooldown: 20 * time.Millisecond, HalfOpenProbes: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs, base, err := ListenLocal(reg.Handler())
	if err != nil {
		t.Fatal(err)
	}

	x := testInputs(1, 61)[0]
	client := &http.Client{}
	codes := map[int]int{}
	post := func() int {
		resp := postSingle(t, client, base+"/v1/models/m/classify", x)
		codes[resp.StatusCode]++
		return resp.StatusCode
	}

	// Phase 1: faults flow until the breaker opens.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Health() != "degraded" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never tripped; status codes so far: %v", codes)
		}
		post()
	}
	if codes[http.StatusInternalServerError] == 0 {
		t.Fatal("degraded without any injected 500")
	}
	// An open breaker sheds with 503 + Retry-After, and healthz stays a
	// 200 "degraded" — the box is still serving its other models.
	resp := postSingle(t, client, base+"/v1/models/m/classify", x)
	if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker 503 without Retry-After")
	}
	hresp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || health["status"] != "degraded" {
		t.Fatalf("healthz while tripped: %d %v, want 200 degraded", hresp.StatusCode, health)
	}

	// Phase 2: faults stop; the cooldown elapses, half-open probes
	// succeed, the breaker closes and health returns to ok.
	faulting.Store(false)
	for reg.Health() != "ok" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered; status codes: %v", codes)
		}
		post()
		time.Sleep(time.Millisecond)
	}
	st := reg.Stats()
	if st.Health != "ok" || len(st.Models) != 1 {
		t.Fatalf("registry stats after recovery: %+v", st)
	}
	mb := st.Models[0].Breaker
	if mb == nil || mb.State != "closed" || mb.Trips == 0 {
		t.Fatalf("breaker stats after recovery: %+v", mb)
	}

	// Every POST terminated with a definite status.
	total := 0
	for _, n := range codes {
		total += n
	}
	if total == 0 || codes[http.StatusOK] == 0 {
		t.Fatalf("soak accounting: %v", codes)
	}

	// Drain everything; the goroutine count settles back.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := reg.DrainAll(ctx); err != nil {
		t.Fatal(err)
	}
	hs.Close()
	client.CloseIdleConnections()
	for end := time.Now().Add(5 * time.Second); ; {
		if runtime.NumGoroutine() <= startGoroutines+3 {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("goroutines: %d at start, %d after drain", startGoroutines, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Chaos runs replay: the same seed realizes the same faults at the
// same arrival seqs with bit-identical results (including the
// corrupted ones), a different seed realizes a different run, and
// non-faulted requests match the fault-free reference exactly.
func TestChaosReplayByteIdentical(t *testing.T) {
	qn := testNet(t)
	base := quant.SconnaEngineFactory(testCoreConfig())
	trace := testInputs(24, 67)
	// SkipSeqs covers the largest pool the test builds (3), so the same
	// schedule drives every pool size.
	chaos := resilience.ChaosOptions{Seed: 11, ErrRate: 0.25, WrongRate: 0.25, SlowRate: 0.1, SlowDelay: 50 * time.Microsecond, SkipSeqs: 3}

	run := func(o resilience.ChaosOptions, poolSize int) ([]string, []bool) {
		s := newTestServer(t, resilience.ChaosEngineFactory(base, o), Options{
			InputShape: testShape, Deterministic: true, PoolSize: poolSize, MaxBatch: 4, QueueDepth: 64,
		})
		sigs := make([]string, len(trace))
		failed := make([]bool, len(trace))
		for i, x := range trace {
			res, err := s.Submit(context.Background(), x)
			if err != nil {
				failed[i] = true
				sigs[i] = "err"
				continue
			}
			sigs[i] = fmt.Sprintf("%x", res.Logits)
		}
		return sigs, failed
	}

	sigsA, failedA := run(chaos, 1)
	sigsB, failedB := run(chaos, 3)
	for i := range sigsA {
		if sigsA[i] != sigsB[i] {
			t.Fatalf("seq %d: chaos run not replayable across pool sizes: %q vs %q", i, sigsA[i], sigsB[i])
		}
		if want := chaos.FaultFor(uint64(i)) == resilience.FaultErr; failedA[i] != want {
			t.Fatalf("seq %d: failed=%v, schedule says %v", i, failedA[i], want)
		}
		_ = failedB
	}

	// Non-faulted seqs are bit-identical to the fault-free reference:
	// chaos perturbs only what the schedule says it perturbs.
	for i, x := range trace {
		if chaos.FaultFor(uint64(i)) == resilience.FaultErr || chaos.FaultFor(uint64(i)) == resilience.FaultWrong {
			continue
		}
		eng, err := base(i)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%x", qn.ForwardScratch(x, eng, quant.NewScratch()).Data)
		if sigsA[i] != want {
			t.Fatalf("seq %d (fault %v): chaos run diverged from fault-free reference", i, chaos.FaultFor(uint64(i)))
		}
	}

	sigsC, _ := run(resilience.ChaosOptions{Seed: 12, ErrRate: 0.25, WrongRate: 0.25, SlowRate: 0.1, SlowDelay: 50 * time.Microsecond, SkipSeqs: 3}, 1)
	diff := 0
	for i := range sigsA {
		if sigsA[i] != sigsC[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("two chaos seeds realized identical runs")
	}
}

// blockEngine wedges its worker on the first Dot until released; used
// to hold every pool worker busy so cancellations land mid-flight.
type blockEngine struct {
	started chan<- int
	release <-chan struct{}
	seq     int
	once    sync.Once
}

func (b *blockEngine) Dot(div, dkv []int) int {
	b.once.Do(func() { b.started <- b.seq })
	<-b.release
	return 1
}

func (b *blockEngine) Name() string { return "block" }

// Cancellation at every pool size, both pre-dispatch (context already
// ended at enqueue) and mid-flight (cancelled while every worker is
// wedged in an earlier batch): doomed requests resolve with their
// context error before any engine is claimed for them, and the
// survivors' results are bit-identical to the per-seq fault-free
// reference — a cancellation never perturbs its batch-mates.
func TestCancellationPoolSizesBitIdentical(t *testing.T) {
	qn := testNet(t)
	base := quant.SconnaEngineFactory(testCoreConfig())
	trace := testInputs(12, 71)
	doomed := map[int]bool{2: true, 5: true, 9: true}

	for _, poolSize := range []int{1, 2, 4} {
		started := make(chan int, poolSize)
		release := make(chan struct{})
		factory := func(shard int) (quant.DotEngine, error) {
			if shard < poolSize {
				return &blockEngine{started: started, release: release, seq: shard}, nil
			}
			return base(shard)
		}
		s := newTestServer(t, factory, Options{
			InputShape: testShape, Deterministic: true, PoolSize: poolSize, MaxBatch: 4, QueueDepth: 64,
		})

		// Wedge every worker: each blocker is admitted alone and waited
		// for, so it occupies its own batch and its own worker.
		blockX := testInputs(1, 73)[0]
		var blockers []*request
		for i := 0; i < poolSize; i++ {
			reqs, err := s.enqueue(context.Background(), []*tensor.T{blockX})
			if err != nil {
				t.Fatal(err)
			}
			blockers = append(blockers, reqs...)
			<-started
		}

		// The trace arrives while all workers are busy. Doomed requests
		// carry an already-cancelled context (pre-dispatch cancellation);
		// midCancel is cancelled after enqueue, while its batch cannot
		// have run yet (mid-flight).
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		midCtx, midCancel := context.WithCancel(context.Background())
		var reqs []*request
		for i := range trace {
			ctx := context.Background()
			switch {
			case doomed[i]:
				ctx = cancelled
			case i == 7:
				ctx = midCtx
			}
			rs, err := s.enqueue(ctx, trace[i:i+1])
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, rs...)
		}
		midCancel()
		close(release)

		for _, b := range blockers {
			<-b.done
		}
		for i, r := range reqs {
			o := <-r.done
			if doomed[i] || i == 7 {
				if !errors.Is(o.err, context.Canceled) {
					t.Fatalf("pool %d: doomed seq %d resolved with %v", poolSize, i, o.err)
				}
				continue
			}
			if o.err != nil {
				t.Fatalf("pool %d: survivor seq %d failed: %v", poolSize, i, o.err)
			}
			seq := poolSize + i // blockers claimed seqs [0, poolSize)
			if o.res.Seq != uint64(seq) {
				t.Fatalf("pool %d: survivor %d has seq %d, want %d", poolSize, i, o.res.Seq, seq)
			}
			eng, err := base(seq)
			if err != nil {
				t.Fatal(err)
			}
			want := qn.ForwardScratch(trace[i], eng, quant.NewScratch())
			for j := range want.Data {
				if o.res.Logits[j] != want.Data[j] {
					t.Fatalf("pool %d: survivor seq %d logit %d: %v != %v (must be bit-identical)",
						poolSize, seq, j, o.res.Logits[j], want.Data[j])
				}
			}
		}
		if got := s.Stats().Cancelled; got != uint64(len(doomed))+1 {
			t.Fatalf("pool %d: Cancelled = %d, want %d", poolSize, got, len(doomed)+1)
		}
	}
}

// The server-imposed deadline: a queued request that outlives
// Options.DefaultTimeout resolves with ErrDeadline (HTTP 504), counted
// separately from caller cancellations, while a caller-supplied
// deadline still wins and surfaces as the caller's own context error.
func TestDefaultTimeoutDeadline(t *testing.T) {
	g := newGatedEngine()
	s := newTestServer(t, quant.SharedEngine(g), Options{
		InputShape: testShape, PoolSize: 1, MaxBatch: 1, QueueDepth: 8,
		DefaultTimeout: 30 * time.Millisecond,
	})
	x := testInputs(1, 79)[0]
	blocker, err := s.enqueue(context.Background(), []*tensor.T{x})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started

	// No caller deadline: the server's applies.
	if _, err := s.Submit(context.Background(), x); !errors.Is(err, ErrDeadline) {
		t.Fatalf("queued past DefaultTimeout: %v, want ErrDeadline", err)
	}
	// A caller deadline wins over the server's.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	_, err = s.Submit(ctx, x)
	cancel()
	if errors.Is(err, ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("caller deadline: %v, want context.DeadlineExceeded", err)
	}

	// The HTTP layer maps the server-imposed deadline to 504.
	hs, base, err := ListenLocal(s.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	resp := postSingle(t, &http.Client{}, base+"/v1/classify", x)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired HTTP request: %d, want 504", resp.StatusCode)
	}

	close(g.release)
	<-blocker[0].done
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Fatal(err)
	}
	// The expired requests were dropped pre-dispatch and counted as
	// such; only the blocker actually ran.
	st := s.Stats()
	if st.Expired == 0 {
		t.Fatalf("no expired requests counted: %+v", st)
	}
	if st.Served != 1 {
		t.Fatalf("Served = %d, want 1 (expired work must not reach an engine)", st.Served)
	}
}

// The 429 contract: Retry-After is a whole-second integer derived from
// backlog over observed drain rate, clamped to [1, 30].
func TestRetryAfterDerivedFromDrainRate(t *testing.T) {
	g := newGatedEngine()
	s := newTestServer(t, quant.SharedEngine(g), Options{
		InputShape: testShape, PoolSize: 1, MaxBatch: 1, QueueDepth: 2,
	})
	// With no drain observed the estimate is the legacy 1s.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("cold retryAfterSeconds = %d, want 1", got)
	}
	// Seed the window directly: 2 served/s against an empty queue is a
	// 1s wait; 0.1/s means a 10s estimate; 0.01/s clamps at 30.
	s.rateMu.Lock()
	s.ratePrev = 2
	s.rateStart = time.Now()
	s.rateServed = 0
	s.rateMu.Unlock()
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("fast drain: %d, want 1", got)
	}
	s.rateMu.Lock()
	s.ratePrev = 0.1
	s.rateMu.Unlock()
	if got := s.retryAfterSeconds(); got != 10 {
		t.Fatalf("slow drain: %d, want ceil(1/0.1) = 10", got)
	}
	s.rateMu.Lock()
	s.ratePrev = 0.01
	s.rateMu.Unlock()
	if got := s.retryAfterSeconds(); got != 30 {
		t.Fatalf("crawling drain: %d, want the 30s clamp", got)
	}
	s.rateMu.Lock()
	s.ratePrev = 0
	s.rateMu.Unlock()

	// End to end: wedge the worker and keep posting with a short client
	// timeout. Admitted posts time out client-side and stay queued
	// (consuming pipeline capacity), so within a few rounds the queue is
	// genuinely full and a 429 with a parseable Retry-After comes back.
	x := testInputs(1, 83)[0]
	blocker, err := s.enqueue(context.Background(), []*tensor.T{x})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	hs, base, err := ListenLocal(s.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	client := &http.Client{Timeout: 100 * time.Millisecond}
	body, err := json.Marshal(classifyRequest{Input: x.Data})
	if err != nil {
		t.Fatal(err)
	}
	var saw429 bool
	for i := 0; i < 50 && !saw429; i++ {
		resp, err := client.Post(base+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			continue // admitted and wedged: the client timeout fired
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || secs < 1 || secs > 30 {
				t.Fatalf("429 Retry-After %q: err=%v", resp.Header.Get("Retry-After"), err)
			}
		}
		resp.Body.Close()
	}
	if !saw429 {
		t.Fatal("full queue never returned 429")
	}
	close(g.release)
	<-blocker[0].done
}

// Drain and DrainAll are idempotent and safe to race: any number of
// concurrent drains all succeed, the backlog resolves exactly once,
// and admissions after the first drain fail with the drain error.
func TestConcurrentDrainIdempotent(t *testing.T) {
	s := newTestServer(t, quant.SharedEngine(quant.ExactEngine{}), exactOpts(nil))
	xs := testInputs(8, 89)
	reqs, err := s.enqueue(context.Background(), xs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Drain(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Drain %d: %v", i, err)
		}
	}
	for i, r := range reqs {
		select {
		case o := <-r.done:
			if o.err != nil {
				t.Fatalf("backlog %d failed: %v", i, o.err)
			}
		default:
			t.Fatalf("backlog %d unresolved after drain", i)
		}
	}

	// The registry variant: concurrent DrainAll racing an Unregister.
	reg := NewRegistry()
	for _, name := range []string{"a", "b"} {
		if _, err := reg.Register(name, testNet(t), quant.SharedEngine(quant.ExactEngine{}), exactOpts(nil)); err != nil {
			t.Fatal(err)
		}
	}
	var rwg sync.WaitGroup
	rerrs := make([]error, 4)
	for i := range rerrs {
		rwg.Add(1)
		go func(i int) {
			defer rwg.Done()
			rerrs[i] = reg.DrainAll(ctx)
		}(i)
	}
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		_ = reg.Unregister(ctx, "a") // may 404 if DrainAll won; both fine
	}()
	rwg.Wait()
	for i, err := range rerrs {
		if err != nil {
			t.Fatalf("concurrent DrainAll %d: %v", i, err)
		}
	}
	if !reg.Draining() || reg.Len() != 0 {
		t.Fatalf("registry after DrainAll: draining=%v len=%d", reg.Draining(), reg.Len())
	}
}

// Weighted admission quotas: the registry budget splits by weight,
// rebalances as models come and go, and a model at its limit sheds
// with 429 + Retry-After while other models keep serving.
func TestRegistryWeightedQuota(t *testing.T) {
	g := newGatedEngine()
	reg := NewRegistry()
	if _, err := reg.Register("hot", testNet(t), quant.SharedEngine(g), Options{
		InputShape: testShape, PoolSize: 1, MaxBatch: 1, QueueDepth: 8, AdmissionWeight: 3,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("cold", testNet(t), quant.SharedEngine(quant.ExactEngine{}), Options{
		InputShape: testShape, PoolSize: 1, MaxBatch: 4, QueueDepth: 8, AdmissionWeight: 1,
	}); err != nil {
		t.Fatal(err)
	}
	reg.SetMaxInFlight(4) // hot: 4*3/4 = 3, cold: 4*1/4 = 1
	limits := map[string]int{}
	for _, m := range reg.Stats().Models {
		limits[m.Name] = m.QuotaLimit
	}
	if limits["hot"] != 3 || limits["cold"] != 1 {
		t.Fatalf("quota limits %v, want hot=3 cold=1", limits)
	}

	hs, base, err := ListenLocal(reg.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	x := testInputs(1, 97)[0]

	// Saturate hot's 3 slots: each POST wedges inside the gated engine.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postSingle(t, &http.Client{}, base+"/v1/models/hot/classify", x)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		inflight := 0
		for _, m := range reg.Stats().Models {
			if m.Name == "hot" {
				inflight = m.InFlight
			}
		}
		if inflight == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hot model never reached its in-flight limit")
		}
		time.Sleep(time.Millisecond)
	}
	resp := postSingle(t, &http.Client{}, base+"/v1/models/hot/classify", x)
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("over-quota POST: %d (Retry-After %q), want 429 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// The lighter model is unaffected: weighted shares isolate it.
	if resp := postSingle(t, &http.Client{}, base+"/v1/models/cold/classify", x); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold model during hot saturation: %d, want 200", resp.StatusCode)
	}
	close(g.release)
	wg.Wait()

	// Unregister rebalances: hot alone now owns the whole budget.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := reg.Unregister(ctx, "cold"); err != nil {
		t.Fatal(err)
	}
	for _, m := range reg.Stats().Models {
		if m.Name == "hot" && m.QuotaLimit != 4 {
			t.Fatalf("hot limit after rebalance = %d, want 4", m.QuotaLimit)
		}
	}
	// SetMaxInFlight(0) lifts the quotas entirely.
	reg.SetMaxInFlight(0)
	for _, m := range reg.Stats().Models {
		if m.QuotaLimit != 0 {
			t.Fatalf("limit %d after unlimited, want 0", m.QuotaLimit)
		}
	}
	if err := reg.DrainAll(ctx); err != nil {
		t.Fatal(err)
	}
}

// Loadgen retry integration: driving an HTTP-chaos-wrapped server with
// the retrying client recovers every injected fault (budgeted), and
// the report carries the retry count.
func TestDriveWithRetryClient(t *testing.T) {
	s := newTestServer(t, quant.SharedEngine(quant.ExactEngine{}), exactOpts(func(o *Options) {
		o.QueueDepth = 64
	}))
	h := resilience.Middleware(s.Handler(), resilience.HTTPChaosOptions{
		Seed: 5, ErrorRate: 0.3, FaultBudget: 16,
	})
	hs, base, err := ListenLocal(h)
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	inputs := make([][]float32, 4)
	for i, x := range testInputs(4, 101) {
		inputs[i] = x.Data
	}
	rep, err := Drive(base, inputs, LoadOptions{
		Requests: 64, Clients: 2, Batch: 1,
		// Retries are re-arrivals with independent fault draws, so the
		// attempt budget must outlast a plausible streak of injected 500s.
		Retry: &resilience.RetryOptions{MaxAttempts: 8, Seed: 5, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Responses != 64 || rep.Errors != 0 {
		t.Fatalf("retrying drive: %+v (every injected fault must be recovered)", rep)
	}
	if rep.Retries == 0 {
		t.Fatal("no retries recorded against a 30% fault rate")
	}
}

// The fault-injected bench leg: goodput under injected faults is a
// bounded fraction of fault-free throughput, and the report schema
// carries the leg.
func TestBenchFaultInjectedGoodput(t *testing.T) {
	if testing.Short() {
		t.Skip("bench leg in -short")
	}
	s := newTestServer(t, quant.SharedEngine(quant.ExactEngine{}), exactOpts(func(o *Options) {
		o.MaxBatch = 8
		o.QueueDepth = 256
	}))
	inputs := make([][]float32, 8)
	for i, x := range testInputs(8, 103) {
		inputs[i] = x.Data
	}
	rep, err := BenchThroughput(s, inputs, BenchOptions{
		SerialRequests: 16, BatchedRequests: 128, Clients: 2, Batch: 8,
		FaultRate: 0.1, ChaosSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != benchSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if rep.FaultInjected == nil || rep.FaultInjected.Responses != 128 {
		t.Fatalf("fault-injected leg: %+v", rep.FaultInjected)
	}
	if rep.GoodputFrac <= 0 {
		t.Fatalf("GoodputFrac = %v", rep.GoodputFrac)
	}
}
