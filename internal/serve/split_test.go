package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/quant"
)

// postSplit posts one classify call to the named route and returns the
// status plus the X-Split-Model header.
func postSplit(t *testing.T, base, name string, input []float32) (int, string) {
	t.Helper()
	body, err := json.Marshal(classifyRequest{Input: input})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+modelPath(name), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r Result
	_ = json.NewDecoder(resp.Body).Decode(&r)
	return resp.StatusCode, resp.Header.Get(SplitModelHeader)
}

// TestSplitReplayIsBitIdentical drives the same request count through
// two independently built registries sharing a split seed and requires
// the realized variant sequences to match exactly: the A/B choice is a
// pure function of (seed, per-split request counter), which is the
// replay contract the split plane promises.
func TestSplitReplayIsBitIdentical(t *testing.T) {
	const n = 40
	input := testInputs(1, 9)[0].Data
	run := func() []string {
		reg := twoModelRegistry(t)
		if err := reg.SetSplit("canary", "alpha", "beta", 0.3, 42); err != nil {
			t.Fatal(err)
		}
		hs := registryHTTP(t, reg)
		seq := make([]string, n)
		for i := range seq {
			code, served := postSplit(t, hs.URL, "canary", input)
			if code != http.StatusOK {
				t.Fatalf("request %d: status %d", i, code)
			}
			if served != "alpha" && served != "beta" {
				t.Fatalf("request %d served by %q", i, served)
			}
			seq[i] = served
		}
		return seq
	}
	first := run()
	second := run()
	sawA, sawB := false, false
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at request %d: %s vs %s", i, first[i], second[i])
		}
		sawA = sawA || first[i] == "alpha"
		sawB = sawB || first[i] == "beta"
	}
	if !sawA || !sawB {
		t.Fatalf("split at 0.3 over %d requests never realized both variants: %v", n, first)
	}
}

// TestSplitStatsAndCounters: the registry stats document carries the
// split section with counts matching the realized routing.
func TestSplitStatsAndCounters(t *testing.T) {
	reg := twoModelRegistry(t)
	if err := reg.SetSplit("canary", "alpha", "beta", 0.5, 7); err != nil {
		t.Fatal(err)
	}
	hs := registryHTTP(t, reg)
	input := testInputs(1, 9)[0].Data
	served := map[string]uint64{}
	const n = 16
	for i := 0; i < n; i++ {
		code, s := postSplit(t, hs.URL, "canary", input)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
		served[s]++
	}
	st := reg.Stats()
	if len(st.Splits) != 1 {
		t.Fatalf("stats carry %d splits, want 1", len(st.Splits))
	}
	sp := st.Splits[0]
	if sp.Alias != "canary" || sp.ModelA != "alpha" || sp.ModelB != "beta" || sp.Seed != 7 {
		t.Fatalf("split section %+v", sp)
	}
	if sp.Requests != n || sp.ServedA != served["alpha"] || sp.ServedB != served["beta"] {
		t.Fatalf("split counters %+v, observed A=%d B=%d over %d",
			sp, served["alpha"], served["beta"], n)
	}
	// Per-model stats absorb the alias traffic: alpha+beta served counts
	// sum to the alias total (no request was double-counted or lost).
	var total uint64
	for _, mi := range st.Models {
		total += mi.Stats.Served
	}
	if total != n {
		t.Fatalf("model stats served %d requests, alias drove %d", total, n)
	}
	if err := reg.ClearSplit("canary"); err != nil {
		t.Fatal(err)
	}
	code, _ := postSplit(t, hs.URL, "canary", input)
	if code != http.StatusNotFound {
		t.Fatalf("cleared alias answered %d, want 404", code)
	}
}

// TestSplitValidation: aliases cannot shadow models, models cannot
// shadow aliases, variants must exist, fractions must be in [0, 1].
func TestSplitValidation(t *testing.T) {
	reg := twoModelRegistry(t)
	if err := reg.SetSplit("alpha", "alpha", "beta", 0.5, 1); err == nil {
		t.Fatal("alias shadowing a registered model accepted")
	}
	if err := reg.SetSplit("canary", "alpha", "ghost", 0.5, 1); err == nil {
		t.Fatal("split onto an unregistered variant accepted")
	}
	if err := reg.SetSplit("canary", "alpha", "beta", 1.5, 1); err == nil {
		t.Fatal("fraction 1.5 accepted")
	}
	if err := reg.SetSplit("canary", "alpha", "beta", 0.5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("canary", testNet(t), quant.SharedEngine(quant.ExactEngine{}), exactOpts(nil)); err == nil {
		t.Fatal("model registration over a split alias accepted")
	}
	if err := reg.ClearSplit("ghost"); err == nil {
		t.Fatal("clearing an unknown alias reported success")
	}
}

// TestModelInfoDigest: the models listing exports the artifact digest
// explicitly and it equals the content-addressed version.
func TestModelInfoDigest(t *testing.T) {
	reg := twoModelRegistry(t)
	st := reg.Stats()
	if len(st.Models) != 2 {
		t.Fatalf("%d models", len(st.Models))
	}
	for _, mi := range st.Models {
		if mi.Digest == "" || mi.Digest != mi.Version {
			t.Fatalf("model %s digest %q / version %q", mi.Name, mi.Digest, mi.Version)
		}
		if len(mi.Digest) != 64 {
			t.Fatalf("model %s digest %q is not full hex", mi.Name, mi.Digest)
		}
	}
}
