package serve

import (
	"context"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/opcount"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// This file is the Prometheus face of the serving plane: every counter
// /stats already exposes as JSON, re-exported in text exposition format
// (GET /metrics), plus the telemetry plane's per-stage latency
// histograms. Family creation order is fixed — the golden /metrics test
// pins name and label ordering — so collectors always create families
// in the same sequence and only then add samples.

// collectInto folds the server's traffic counters into f. Every sample
// carries labels first (the registry passes model=<name>; the
// single-model handler passes none), then the sample's own label.
func (s *Server) collectInto(f *telemetry.Families, labels ...telemetry.Label) {
	st := s.Stats()
	lab := func(extra ...telemetry.Label) []telemetry.Label {
		return append(append(make([]telemetry.Label, 0, len(labels)+len(extra)), labels...), extra...)
	}

	req := f.Family("sconna_serve_requests_total", "counter",
		"Requests by outcome: accepted admissions, rejected backpressure, draining refusals, served results, cancelled callers, expired deadlines, failed engine builds.")
	for _, oc := range []struct {
		name string
		n    uint64
	}{
		{"accepted", st.Accepted}, {"rejected", st.Rejected}, {"draining", st.Draining},
		{"served", st.Served}, {"cancelled", st.Cancelled}, {"expired", st.Expired},
		{"failed", st.Failed},
	} {
		req.Add(float64(oc.n), lab(telemetry.L("outcome", oc.name))...)
	}
	f.Family("sconna_serve_batches_total", "counter", "Executed micro-batches.").
		Add(float64(st.Batches), labels...)
	bs := f.Family("sconna_serve_batch_size_total", "counter",
		"Executed micro-batches by how many requests they carried.")
	for i, n := range st.BatchSizes {
		if n > 0 {
			bs.Add(float64(n), lab(telemetry.L("size", strconv.Itoa(i+1)))...)
		}
	}
	f.Family("sconna_serve_queue_depth", "gauge", "Requests waiting in the bounded queue.").
		Add(float64(st.QueueDepth), labels...)
	f.Family("sconna_serve_queue_capacity", "gauge", "Bounded-queue capacity.").
		Add(float64(st.QueueCap), labels...)
	f.Family("sconna_serve_engines_busy", "gauge", "Engine-pool slots checked out right now.").
		Add(float64(st.EnginesBusy), labels...)
	f.Family("sconna_serve_pool_size", "gauge", "Engine-pool size.").
		Add(float64(st.PoolSize), labels...)
	f.Family("sconna_serve_latency_seconds", "histogram",
		"Submit-to-result latency (log2-microsecond buckets).").
		Histogram(s.lat.Snapshot(), labels...)

	stage := f.Family("sconna_serve_stage_latency_seconds", "histogram",
		"Pipeline-stage latency: decode, admit, queue, assemble, checkout, forward, respond.")
	traces := f.Family("sconna_serve_traces_total", "counter",
		"Request traces recorded by the telemetry plane.")
	if s.tel != nil {
		snaps := s.tel.StageSnapshot()
		for i, name := range telemetry.StageNames() {
			stage.Histogram(snaps[i], lab(telemetry.L("stage", name))...)
		}
		traces.Add(float64(s.tel.TraceCount()), labels...)
	}

	if o := st.Ops; o != nil {
		f.Family("sconna_ops_inferences_total", "counter", "Inferences tallied by the op/energy accounting plane.").
			Add(float64(o.Inferences), labels...)
		ops := f.Family("sconna_ops_total", "counter",
			"Arithmetic and memory-traffic ops by lowering (dense equivalent vs executed) and op class.")
		for _, kc := range []struct {
			kind string
			c    opcount.Counts
		}{{"dense", o.Dense}, {"exec", o.Exec}} {
			for _, opn := range []struct {
				op string
				n  uint64
			}{{"mul", kc.c.Mul}, {"add", kc.c.Add}, {"rd", kc.c.Rd}, {"wr", kc.c.Wr}} {
				ops.Add(float64(opn.n), lab(telemetry.L("kind", kc.kind), telemetry.L("op", opn.op))...)
			}
		}
		f.Family("sconna_ops_skipped_fraction", "gauge", "Fraction of dense ops elided by zero skipping.").
			Add(o.SkippedFrac, labels...)
		en := f.Family("sconna_energy_uj_per_inference", "gauge",
			"Per-inference energy in microjoules under each power model.")
		en.Add(o.ElectronicDenseUJ, lab(telemetry.L("power_model", "electronic_dense"))...)
		en.Add(o.ElectronicUJ, lab(telemetry.L("power_model", "electronic"))...)
		en.Add(o.SconnaUJ, lab(telemetry.L("power_model", "sconna"))...)
	}
}

// httpCtx attaches the HTTP decode timing and the client's stamped
// trace ID to the admission context. Only when telemetry is on — the
// Nop path allocates no context values and takes no timestamps.
func (s *Server) httpCtx(r *http.Request, start time.Time) context.Context {
	if s.tel == nil {
		return r.Context()
	}
	return telemetry.WithHTTPInfo(r.Context(), telemetry.HTTPInfo{
		Decode:   time.Since(start),
		ClientID: r.Header.Get(telemetry.TraceIDHeader),
	})
}

// handleTraces serves the telemetry plane's trace ring as Chrome
// trace-event JSON (load in chrome://tracing or Perfetto). With
// telemetry off the document is a well-formed empty trace.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = telemetry.WriteChromeTrace(w, s.tel)
}

// collectInto folds the whole registry into f: registry-level gauges,
// then every model's server counters labeled model=<name> (sorted, so
// sample order is stable), then the resilience plane — breaker and
// admission-quota families.
func (r *Registry) collectInto(f *telemetry.Families) {
	r.mu.RLock()
	closed := r.closed
	budget := r.maxInFlight
	models := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		if m.srv != nil {
			models = append(models, m)
		}
	}
	r.mu.RUnlock()
	sort.Slice(models, func(i, j int) bool { return models[i].name < models[j].name })

	f.Family("sconna_registry_models", "gauge", "Registered, traffic-visible models.").
		Add(float64(len(models)))
	f.Family("sconna_registry_max_in_flight", "gauge", "Registry-wide in-flight budget (0 = unlimited).").
		Add(float64(budget))
	draining := 0.0
	if closed {
		draining = 1
	}
	f.Family("sconna_registry_draining", "gauge", "1 once DrainAll has begun.").Add(draining)

	for _, m := range models {
		m.srv.collectInto(f, telemetry.L("model", m.name))
	}

	brState := f.Family("sconna_breaker_state", "gauge",
		"Circuit-breaker state: 0 closed, 1 half-open, 2 open.")
	brTrips := f.Family("sconna_breaker_trips_total", "counter", "Circuit-breaker trips.")
	brRej := f.Family("sconna_breaker_rejected_total", "counter", "Requests shed by an open breaker.")
	qInFlight := f.Family("sconna_quota_in_flight", "gauge", "Requests inside the model's admission quota.")
	qLimit := f.Family("sconna_quota_limit", "gauge", "Admission-quota limit (0 = unlimited).")
	qRej := f.Family("sconna_quota_rejected_total", "counter", "Requests shed by the admission quota.")
	for _, m := range models {
		lab := telemetry.L("model", m.name)
		if m.breaker != nil {
			bs := m.breaker.Stats()
			state := 0.0
			switch bs.State {
			case resilience.HalfOpen.String():
				state = 1
			case resilience.Open.String():
				state = 2
			}
			brState.Add(state, lab)
			brTrips.Add(float64(bs.Trips), lab)
			brRej.Add(float64(bs.Rejected), lab)
		}
		qInFlight.Add(float64(m.quota.InFlight()), lab)
		qLimit.Add(float64(m.quota.Limit()), lab)
		qRej.Add(float64(m.quota.Rejected()), lab)
	}
}

// handleTraces merges every model's trace ring into one Chrome trace
// document (one process row per model, sorted by name).
func (r *Registry) handleTraces(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	r.mu.RLock()
	models := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		if m.srv != nil {
			models = append(models, m)
		}
	}
	r.mu.RUnlock()
	sort.Slice(models, func(i, j int) bool { return models[i].name < models[j].name })
	planes := make([]*telemetry.Plane, len(models))
	for i, m := range models {
		planes[i] = m.srv.Telemetry()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = telemetry.WriteChromeTrace(w, planes...)
}
