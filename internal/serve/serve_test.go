package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// testShape is the smoke input shape: small enough that -race runs stay
// fast, padded convolutions still exercise truncated windows.
var testShape = []int{1, 8, 8}

// testNet builds the smoke quantized network once: serving semantics do
// not depend on trained weights, so a seeded random-init network keeps
// the suite fast while the logits stay deterministic.
var testNetFixture struct {
	once sync.Once
	qn   *quant.Network
}

func testNet(t testing.TB) *quant.Network {
	t.Helper()
	testNetFixture.once.Do(func() {
		net := nn.BuildSmallCNN(2, 4, 21)
		calib := []nn.Example{{X: testInputs(1, 22)[0], Label: 0}}
		qn, err := quant.Quantize(net, 6, calib)
		if err != nil {
			panic(err)
		}
		testNetFixture.qn = qn
	})
	return testNetFixture.qn
}

// testInputs draws n positive-valued smoke inputs.
func testInputs(n int, seed int64) []*tensor.T {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*tensor.T, n)
	for i := range xs {
		x := tensor.New(testShape...)
		for j := range x.Data {
			x.Data[j] = float32(math.Abs(rng.NormFloat64()))
		}
		xs[i] = x
	}
	return xs
}

// testCoreConfig is the smoke functional operating point (6-bit streams
// keep a forward pass light).
func testCoreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Bits = 6
	cfg.N = 16
	cfg.M = 1
	cfg.ADCSeed = 99
	return cfg
}

func exactOpts(mut func(*Options)) Options {
	o := Options{InputShape: testShape, PoolSize: 2, MaxBatch: 4}
	if mut != nil {
		mut(&o)
	}
	return o
}

func newTestServer(t *testing.T, factory quant.EngineFactory, opts Options) *Server {
	t.Helper()
	s, err := New(testNet(t), factory, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s
}

func TestSubmitMatchesDirectForward(t *testing.T) {
	qn := testNet(t)
	s := newTestServer(t, quant.SharedEngine(quant.ExactEngine{}), exactOpts(func(o *Options) {
		o.ClassNames = []string{"a", "b", "c", "d"}
	}))
	for i, x := range testInputs(6, 23) {
		res, err := s.Submit(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		want := qn.Forward(x, quant.ExactEngine{})
		if res.Class != want.ArgMax() {
			t.Fatalf("input %d: class %d, want %d", i, res.Class, want.ArgMax())
		}
		if res.ClassName != []string{"a", "b", "c", "d"}[res.Class] {
			t.Fatalf("input %d: class name %q", i, res.ClassName)
		}
		for j := range want.Data {
			if res.Logits[j] != want.Data[j] {
				t.Fatalf("input %d logit %d: %v != %v", i, j, res.Logits[j], want.Data[j])
			}
		}
	}
}

func TestSubmitBatchOrderAndSeqs(t *testing.T) {
	s := newTestServer(t, quant.SharedEngine(quant.ExactEngine{}), exactOpts(nil))
	qn := testNet(t)
	xs := testInputs(7, 29)
	results, err := s.SubmitBatch(context.Background(), xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(xs) {
		t.Fatalf("%d results for %d inputs", len(results), len(xs))
	}
	for i, res := range results {
		if res.Seq != uint64(i) {
			t.Fatalf("result %d has seq %d: batch admission must be atomic and ordered", i, res.Seq)
		}
		if want := qn.Forward(xs[i], quant.ExactEngine{}).ArgMax(); res.Class != want {
			t.Fatalf("result %d: class %d want %d", i, res.Class, want)
		}
	}
}

func TestSubmitValidatesInput(t *testing.T) {
	s := newTestServer(t, quant.SharedEngine(quant.ExactEngine{}), exactOpts(nil))
	if _, err := s.Submit(context.Background(), tensor.New(1, 4, 4)); err == nil {
		t.Fatal("wrong-shape input accepted")
	}
	// Right element count, wrong rank: must be rejected at admission —
	// inside a worker it would panic the whole server.
	flat := tensor.New(testShape[0] * testShape[1] * testShape[2])
	if _, err := s.Submit(context.Background(), flat); err == nil {
		t.Fatal("wrong-rank input accepted")
	}
	if _, err := s.Submit(context.Background(), nil); err == nil {
		t.Fatal("nil input accepted")
	}
}

// gatedEngine blocks every Dot until released, letting tests hold a
// batch in flight deterministically.
type gatedEngine struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGatedEngine() *gatedEngine {
	return &gatedEngine{started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedEngine) Dot(div, dkv []int) int {
	g.once.Do(func() { close(g.started) })
	<-g.release
	return 1
}

func (g *gatedEngine) Name() string { return "gated" }

// With the one engine wedged mid-batch, admissions must fill the bounded
// pipeline and then fail fast with ErrOverloaded — never queue without
// bound, never block the submitter.
func TestBackpressureRejectsWhenFull(t *testing.T) {
	g := newGatedEngine()
	s := newTestServer(t, quant.SharedEngine(g), Options{
		InputShape: testShape, PoolSize: 1, MaxBatch: 1, QueueDepth: 2,
	})
	x := testInputs(1, 31)[0]
	first, err := s.enqueue(context.Background(), []*tensor.T{x})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started // the worker is now wedged inside the batch

	var accepted []*request
	sawReject := false
	for i := 0; i < 20 && !sawReject; i++ {
		reqs, err := s.enqueue(context.Background(), []*tensor.T{x})
		switch {
		case err == nil:
			accepted = append(accepted, reqs...)
		case errors.Is(err, ErrOverloaded):
			sawReject = true
		default:
			t.Fatal(err)
		}
	}
	if !sawReject {
		t.Fatal("queue never pushed back: unbounded buffering")
	}
	if s.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}

	close(g.release)
	for _, r := range append(first, accepted...) {
		if o := <-r.done; o.err != nil {
			t.Fatalf("accepted request failed: %v", o.err)
		}
	}
}

// Requests whose context ends while queued are skipped by the batch
// runner and resolved with the context error, without poisoning the
// rest of their batch.
func TestContextCancellationMidBatch(t *testing.T) {
	g := newGatedEngine()
	s := newTestServer(t, quant.SharedEngine(g), Options{
		InputShape: testShape, PoolSize: 1, MaxBatch: 8, QueueDepth: 16,
	})
	xs := testInputs(4, 37)
	blocker, err := s.enqueue(context.Background(), xs[:1])
	if err != nil {
		t.Fatal(err)
	}
	<-g.started

	ctx, cancel := context.WithCancel(context.Background())
	doomed, err := s.enqueue(ctx, xs[1:3])
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := s.enqueue(context.Background(), xs[3:])
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(g.release)

	if o := <-blocker[0].done; o.err != nil {
		t.Fatalf("blocker failed: %v", o.err)
	}
	for i, r := range doomed {
		if o := <-r.done; !errors.Is(o.err, context.Canceled) {
			t.Fatalf("cancelled request %d resolved with %v", i, o.err)
		}
	}
	if o := <-survivor[0].done; o.err != nil {
		t.Fatalf("survivor sharing the batch failed: %v", o.err)
	}
	if got := s.Stats().Cancelled; got != 2 {
		t.Fatalf("Cancelled = %d, want 2", got)
	}
}

func TestDrainFinishesBacklogThenRefuses(t *testing.T) {
	s := newTestServer(t, quant.SharedEngine(quant.ExactEngine{}), exactOpts(nil))
	xs := testInputs(9, 41)
	reqs, err := s.enqueue(context.Background(), xs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		select {
		case o := <-r.done:
			if o.err != nil {
				t.Fatalf("backlog request %d failed: %v", i, o.err)
			}
		default:
			t.Fatalf("backlog request %d unresolved after drain", i)
		}
	}
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if _, err := s.Submit(context.Background(), xs[0]); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Submit: %v, want ErrDraining", err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
	if st := s.Stats(); st.Served != uint64(len(xs)) {
		t.Fatalf("Served = %d, want %d", st.Served, len(xs))
	}
}

// The replay contract: in deterministic mode every response is a pure
// function of (network, input, arrival seq) — the same recorded trace
// served through any pool size and any batching yields bit-identical
// results, equal to the serial reference of one fresh factory(seq)
// engine per request.
func TestDeterministicReplayBitIdentical(t *testing.T) {
	qn := testNet(t)
	factory := quant.SconnaEngineFactory(testCoreConfig())
	trace := testInputs(12, 43)

	// Serial reference, straight through the compute plane.
	want := make([]*tensor.T, len(trace))
	for i, x := range trace {
		eng, err := factory(i)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = qn.ForwardScratch(x, eng, quant.NewScratch())
	}

	configs := []Options{
		{InputShape: testShape, Deterministic: true, PoolSize: 1, MaxBatch: 1, QueueDepth: 64},
		{InputShape: testShape, Deterministic: true, PoolSize: 3, MaxBatch: 8, MaxWait: 2 * time.Millisecond, QueueDepth: 64},
	}
	for ci, opts := range configs {
		s := newTestServer(t, factory, opts)
		var results []Result
		// Mixed submission shapes: singles and batches still assign
		// consecutive seqs in trace order.
		one, err := s.Submit(context.Background(), trace[0])
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, one)
		chunk, err := s.SubmitBatch(context.Background(), trace[1:7])
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, chunk...)
		chunk, err = s.SubmitBatch(context.Background(), trace[7:])
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, chunk...)

		for i, res := range results {
			if res.Seq != uint64(i) {
				t.Fatalf("config %d: trace index %d got seq %d", ci, i, res.Seq)
			}
			if res.Engine != i {
				t.Fatalf("config %d: trace index %d reports engine %d — responses must not leak pool scheduling", ci, i, res.Engine)
			}
			for j := range want[i].Data {
				if res.Logits[j] != want[i].Data[j] {
					t.Fatalf("config %d: trace index %d logit %d: %v != %v (replay must be bit-identical)",
						ci, i, j, res.Logits[j], want[i].Data[j])
				}
			}
		}
	}
}

// Throughput mode trades replay stability for speed; the trade must be
// visible: a pooled stateful engine serves whole batches, so results are
// still valid classifications but the reported engine is a pool slot.
func TestThroughputModeServesFromPool(t *testing.T) {
	factory := quant.SconnaEngineFactory(testCoreConfig())
	s := newTestServer(t, factory, Options{InputShape: testShape, PoolSize: 2, MaxBatch: 4})
	results, err := s.SubmitBatch(context.Background(), testInputs(6, 47))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Engine < 0 || res.Engine >= 2 {
			t.Fatalf("result %d: engine %d outside pool", i, res.Engine)
		}
	}
	st := s.Stats()
	if st.Batches == 0 || st.Served != 6 {
		t.Fatalf("stats: %+v", st)
	}
	sum := uint64(0)
	for sz, n := range st.BatchSizes {
		sum += uint64(sz+1) * n
	}
	if sum != st.Served {
		t.Fatalf("batch-size histogram accounts for %d requests, served %d", sum, st.Served)
	}
}

// Concurrent submitters under -race: the batcher, pool and stats must
// hold up, and every accepted request must resolve exactly once.
func TestConcurrentSubmitRace(t *testing.T) {
	s := newTestServer(t, quant.SharedEngine(quant.ExactEngine{}), Options{
		InputShape: testShape, PoolSize: 2, MaxBatch: 8, QueueDepth: 64,
	})
	xs := testInputs(4, 53)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				if _, err := s.Submit(context.Background(), xs[(i+k)%len(xs)]); err != nil && !errors.Is(err, ErrOverloaded) {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Served != st.Accepted || st.Served == 0 {
		t.Fatalf("every accepted request must resolve: %+v", st)
	}
}
