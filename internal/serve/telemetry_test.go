package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/quant"
	"repro/internal/telemetry"
)

// scrapeMetrics fetches and validates the server's /metrics document.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	doc := string(body)
	if err := telemetry.ValidateExposition(doc); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, doc)
	}
	return doc
}

// The golden /metrics pin: deterministic serial traffic must export a
// valid exposition document whose family order and deterministic sample
// lines match exactly — scrapers and dashboards key on both.
func TestMetricsGolden(t *testing.T) {
	s := newTestServer(t, quant.SharedEngine(quant.ExactEngine{}), Options{
		InputShape: testShape, Deterministic: true,
		PoolSize: 1, MaxBatch: 1, QueueDepth: 8,
		Telemetry: &telemetry.Options{},
	})
	for _, x := range testInputs(5, 31) {
		if _, err := s.Submit(context.Background(), x); err != nil {
			t.Fatal(err)
		}
	}
	doc := scrapeMetrics(t, httptestURL(t, s))

	// Family order is part of the format contract.
	var families []string
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.Fields(line)[2])
		}
	}
	wantFamilies := []string{
		"sconna_serve_requests_total",
		"sconna_serve_batches_total",
		"sconna_serve_batch_size_total",
		"sconna_serve_queue_depth",
		"sconna_serve_queue_capacity",
		"sconna_serve_engines_busy",
		"sconna_serve_pool_size",
		"sconna_serve_latency_seconds",
		"sconna_serve_stage_latency_seconds",
		"sconna_serve_traces_total",
	}
	if fmt.Sprint(families) != fmt.Sprint(wantFamilies) {
		t.Fatalf("family order drifted:\n got %v\nwant %v", families, wantFamilies)
	}

	// Deterministic sample lines must match byte-for-byte (latency
	// values vary run to run; counts do not).
	for _, want := range []string{
		`sconna_serve_requests_total{outcome="accepted"} 5`,
		`sconna_serve_requests_total{outcome="served"} 5`,
		`sconna_serve_requests_total{outcome="rejected"} 0`,
		`sconna_serve_batches_total 5`,
		`sconna_serve_batch_size_total{size="1"} 5`,
		`sconna_serve_queue_depth 0`,
		`sconna_serve_queue_capacity 8`,
		`sconna_serve_engines_busy 0`,
		`sconna_serve_pool_size 1`,
		`sconna_serve_latency_seconds_count 5`,
		`sconna_serve_stage_latency_seconds_count{stage="queue"} 5`,
		`sconna_serve_stage_latency_seconds_count{stage="forward"} 5`,
		`sconna_serve_traces_total 5`,
	} {
		if !strings.Contains(doc, want+"\n") {
			t.Errorf("metrics missing line %q in:\n%s", want, doc)
		}
	}
}

// httptestURL serves an already-built server's handler for scraping.
func httptestURL(t *testing.T, s *Server) string {
	t.Helper()
	hs, base, err := ListenLocal(s.Handler())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hs.Close() })
	return base
}

// Trace determinism: the same recorded trace replayed at pool sizes 1,
// 2 and 4 must produce the same trace IDs, the same per-request stage
// sequences and the same statuses — spans are keyed by arrival seq,
// which batching and pool scheduling never perturb.
func TestTraceDeterminismAcrossPools(t *testing.T) {
	factory := quant.SconnaEngineFactory(testCoreConfig())
	trace := testInputs(6, 41)
	type spanKey struct {
		traceID string
		stages  string
		status  string
	}
	run := func(pool int) map[uint64]spanKey {
		s := newTestServer(t, factory, Options{
			InputShape: testShape, Deterministic: true,
			PoolSize: pool, MaxBatch: 4, QueueDepth: 32,
			Telemetry: &telemetry.Options{TraceRing: 32},
		})
		if _, err := s.SubmitBatch(context.Background(), trace); err != nil {
			t.Fatal(err)
		}
		out := make(map[uint64]spanKey)
		for _, rec := range s.Telemetry().Traces() {
			var stages []string
			for _, st := range rec.Stages {
				stages = append(stages, st.Stage)
			}
			out[rec.Seq] = spanKey{rec.TraceID, strings.Join(stages, ">"), rec.Status}
		}
		return out
	}
	first := run(1)
	if len(first) != len(trace) {
		t.Fatalf("recorded %d spans, want %d", len(first), len(trace))
	}
	for seq, sp := range first {
		if want := telemetry.TraceID(seq); sp.traceID != want {
			t.Fatalf("seq %d trace ID %q, want %q", seq, sp.traceID, want)
		}
		if sp.status != "ok" {
			t.Fatalf("seq %d status %q", seq, sp.status)
		}
	}
	for _, pool := range []int{2, 4} {
		again := run(pool)
		if len(again) != len(first) {
			t.Fatalf("pool=%d: %d spans vs %d", pool, len(again), len(first))
		}
		for seq, sp := range first {
			if again[seq] != sp {
				t.Fatalf("pool=%d seq %d drifted: %+v vs %+v", pool, seq, again[seq], sp)
			}
		}
	}
}

// The Nop-path pin: a deterministic server with telemetry armed must
// emit HTTP response bodies byte-identical to the same server with
// telemetry off — observability may never change what clients see.
func TestHTTPReplayBytesTelemetryInvariant(t *testing.T) {
	factory := quant.SconnaEngineFactory(testCoreConfig())
	trace := testInputs(8, 89)
	run := func(pool, maxBatch int, tel *telemetry.Options) []string {
		_, hs := httpServer(t, factory, Options{
			InputShape: testShape, Deterministic: true,
			PoolSize: pool, MaxBatch: maxBatch, QueueDepth: 64,
			Telemetry: tel,
		})
		var bodies []string
		for i, x := range trace {
			req, err := http.NewRequest("POST", hs.URL+"/v1/classify",
				strings.NewReader(`{"input":`+marshalInput(t, x.Data)+`,"logits":true}`))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			if tel != nil {
				req.Header.Set(telemetry.TraceIDHeader, telemetry.TraceID(uint64(i)))
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("replay request: %d %s", resp.StatusCode, body)
			}
			bodies = append(bodies, string(body))
		}
		return bodies
	}
	off := run(1, 1, nil)
	for _, cfg := range []struct{ pool, maxBatch int }{{1, 1}, {3, 8}} {
		on := run(cfg.pool, cfg.maxBatch, &telemetry.Options{TraceRing: 16})
		for i := range off {
			if on[i] != off[i] {
				t.Fatalf("pool=%d maxBatch=%d: telemetry changed response %d:\n%s\nvs\n%s",
					cfg.pool, cfg.maxBatch, i, on[i], off[i])
			}
		}
	}
}
