package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/quant"
)

// benchServer builds one leg of the smoke serving stack in throughput
// mode: the smoke network behind an engine pool built from factory. The
// exact-integer engine is the amortization-floor configuration (serving
// overheads dominate, so the micro-batching win is fully visible); the
// SCONNA functional engine shows the compute-bound end, where the
// stream simulation caps how much batching can recover.
func benchServer(tb testing.TB, factory quant.EngineFactory) *Server {
	tb.Helper()
	s, err := New(testNet(tb), factory, Options{
		InputShape: testShape,
		MaxBatch:   32,
		QueueDepth: 512,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s
}

func benchInputs(tb testing.TB, n int) [][]float32 {
	tb.Helper()
	xs := testInputs(n, 101)
	flat := make([][]float32, n)
	for i, x := range xs {
		flat[i] = x.Data
	}
	return flat
}

// The acceptance floor of the serving plane: micro-batched concurrent
// serving must sustain at least 4x the QPS of single-request-serial
// serving (one closed-loop client, one input per POST) on the smoke
// network. The win is amortization — per-request HTTP and dispatch
// overhead divided across the batch, DKV gathers shared batch-wide,
// pooled engines reused — so it holds even on a single core. The floor
// is measured on the exact-integer serving configuration with the raw
// wire format, where serving overheads (rather than the functional
// stream simulation) are what the caller pays per request.
func TestThroughputSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement is a full-tier test")
	}
	const floor = 4.0
	var rep BenchReport
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		rep, err = BenchThroughput(benchServer(t, quant.SharedEngine(quant.ExactEngine{})), benchInputs(t, 64), BenchOptions{
			SerialRequests:  512,
			BatchedRequests: 2048,
			Clients:         4,
			Batch:           32,
			Raw:             true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Serial.Errors+rep.Batched.Errors > 0 || rep.Serial.Rejected+rep.Batched.Rejected > 0 {
			t.Fatalf("load generation saw failures: serial %+v batched %+v", rep.Serial, rep.Batched)
		}
		if rep.Speedup >= floor {
			break
		}
	}
	t.Logf("serial %.0f QPS, batched %.0f QPS, speedup %.2fx", rep.Serial.QPS, rep.Batched.QPS, rep.Speedup)
	if rep.Speedup < floor {
		t.Fatalf("throughput mode %.2fx over single-request-serial, floor %.1fx", rep.Speedup, floor)
	}
}

// The compute-bound end of the same measurement: serving the SCONNA
// functional engine must still gain from micro-batching (the stream
// simulation dominates, so the ratio is smaller — recorded, not floored
// at 4x).
func TestThroughputSpeedupSconnaEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement is a full-tier test")
	}
	rep, err := BenchThroughput(benchServer(t, quant.SconnaEngineFactory(testCoreConfig())), benchInputs(t, 64), BenchOptions{
		SerialRequests:  128,
		BatchedRequests: 512,
		Clients:         4,
		Batch:           32,
		Raw:             true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sconna engine: serial %.0f QPS, batched %.0f QPS, speedup %.2fx",
		rep.Serial.QPS, rep.Batched.QPS, rep.Speedup)
	if rep.Speedup < 1.1 {
		t.Fatalf("micro-batching gained nothing on the SCONNA engine: %.2fx", rep.Speedup)
	}
}

// BenchmarkServeSerialHTTP measures single-request-serial serving: one
// closed-loop client, one input per POST.
func BenchmarkServeSerialHTTP(b *testing.B) {
	benchDrive(b, LoadOptions{Clients: 1, Batch: 1, Raw: true})
}

// BenchmarkServeBatchedHTTP measures throughput-mode serving: four
// concurrent clients posting 32-input batches into the micro-batcher.
func BenchmarkServeBatchedHTTP(b *testing.B) {
	benchDrive(b, LoadOptions{Clients: 4, Batch: 32, Raw: true})
}

func benchDrive(b *testing.B, opts LoadOptions) {
	s := benchServer(b, quant.SharedEngine(quant.ExactEngine{}))
	inputs := benchInputs(b, 64)
	hs, base, err := ListenLocal(s.Handler())
	if err != nil {
		b.Fatal(err)
	}
	defer hs.Close()
	opts.Requests = b.N
	b.ResetTimer()
	rep, err := Drive(base, inputs, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if rep.Errors > 0 || rep.Rejected > 0 {
		b.Fatalf("load generation saw failures: %+v", rep)
	}
	b.ReportMetric(rep.QPS, "qps")
}
