package quant

import (
	"repro/internal/matmul"
)

// ZeroSkipper marks engines for which the sparsity-exploiting lowering
// is provably exact. SkipsZeros() == true is a contract with three
// clauses: (1) Dot's result is a pure function of the lanes whose DIV
// value is nonzero — a lane with div[i] == 0 contributes nothing and may
// be dropped; (2) Dot over empty vectors is 0, so a call whose every
// lane is zero may be elided entirely; (3) Dot consumes no hidden state
// (no RNG advance, no call counter), so eliding calls cannot shift any
// noise stream.
//
// ExactEngine satisfies all three trivially (plain integer arithmetic).
// The packed analytic SCONNA tier satisfies them when its ADC is ideal:
// lanes are independent (a zero-DIV lane lights no stream bits, so its
// popcount contribution is exactly zero), the ideal ADC conversion draws
// no randomness, and the PCA capacity check cannot fire on a subset of
// lanes if it did not fire on the full set. Noisy engines must NOT
// implement (or must return false from) SkipsZeros: their ADC noise
// stream advances per Dot call, so they require the dense per-(layer,
// output-channel, pixel) call sequence, which the lowering preserves for
// them unconditionally.
type ZeroSkipper interface {
	DotEngine
	// SkipsZeros reports that dropping zero-DIV lanes (and whole
	// all-zero calls) is bit-exact for this engine.
	SkipsZeros() bool
}

// SkipsZeros implements ZeroSkipper: integer arithmetic drops zero
// products exactly.
func (ExactEngine) SkipsZeros() bool { return true }

// skipsZeros gates the sparse path on the engine's capability.
func skipsZeros(e DotEngine) bool {
	z, ok := e.(ZeroSkipper)
	return ok && z.SkipsZeros()
}

// worthSparse reports whether the quantized activations are sparse
// enough for the compacted path to win: zero fraction at or above
// matmul.SparseThreshold. Below it, the per-entry index bookkeeping
// costs more than the skipped lanes save and the dense gather stays.
func worthSparse(qx []int) bool {
	if len(qx) == 0 {
		return false
	}
	z := 0
	for _, v := range qx {
		if v == 0 {
			z++
		}
	}
	return float64(z) >= matmul.SparseThreshold*float64(len(qx))
}

// gatherSparse builds the column-compacted integer patch structure over
// s.qx: segment (pix*inC + ic) holds pixel pix's in-bounds nonzero
// quantized activations from channel ic in (ky, kx) order — the dense
// DIV enumeration with the zero lanes dropped, so a pixel's full
// compacted DIV is the contiguous run s.sval[s.sseg[pix*inC] :
// s.sseg[(pix+1)*inC]]. s.skk holds each entry's within-row weight slot
// ic*k2 + kk, so a DKV gather is one indexed walk of the run — no
// per-channel segment bookkeeping on the hot (output channel, pixel)
// path.
func gatherSparse(pos *matmul.Pos, s *Scratch, inC, hw, k2 int) {
	npix := pos.NumPix()
	nseg := npix*inC + 1
	s.sseg = growInts(s.sseg, nseg)
	s.sval = s.sval[:0]
	s.skk = s.skk[:0]
	seg := 0
	s.sseg[0] = 0
	for pix := 0; pix < npix; pix++ {
		offs, kks := pos.At(pix)
		for ic := 0; ic < inC; ic++ {
			qc := s.qx[ic*hw:]
			wbase := ic * k2
			for i, o := range offs {
				if v := qc[o]; v != 0 {
					s.sval = append(s.sval, v)
					s.skk = append(s.skk, wbase+kks[i])
				}
			}
			seg++
			s.sseg[seg] = len(s.sval)
		}
	}
}

// sparseDot runs one (output channel, pixel) compacted dot product of a
// non-depthwise conv: the pixel's contiguous compacted DIV run against
// the DKV gathered through the stored weight-slot index, with the call
// elided when the run is empty (exact by the ZeroSkipper contract).
func (c *QConv2D) sparseDot(engine DotEngine, s *Scratch, kbase, pix int) int {
	lo, hi := s.sseg[pix*c.InC], s.sseg[(pix+1)*c.InC]
	if lo == hi {
		return 0
	}
	n := hi - lo
	s.dkv = growInts(s.dkv, n)
	wrow := c.W[kbase:]
	for i, k := range s.skk[lo:hi] {
		s.dkv[i] = wrow[k]
	}
	return engine.Dot(s.sval[lo:hi], s.dkv[:n])
}

// sparseDotDW is sparseDot's depthwise counterpart: channel oc reduces
// only its own compacted segment. The stored slot ic*k2 + kk with
// ic == oc is already the absolute index into the depthwise weight
// tensor (whose row oc starts at oc*k2), so the gather needs no base.
func (c *QConv2D) sparseDotDW(engine DotEngine, s *Scratch, pix, oc int) int {
	lo, hi := s.sseg[pix*c.InC+oc], s.sseg[pix*c.InC+oc+1]
	if lo == hi {
		return 0
	}
	n := hi - lo
	s.dkv = growInts(s.dkv, n)
	for i, k := range s.skk[lo:hi] {
		s.dkv[i] = c.W[k]
	}
	return engine.Dot(s.sval[lo:hi], s.dkv[:n])
}

// forwardSparse runs the quantized convolution over the compacted
// structure (already gathered into s by gatherSparse): per (output
// channel, pixel) the engine sees the dense operand vectors with zero
// DIV lanes dropped, in the dense enumeration order, and all-zero calls
// elided — exact for any ZeroSkipper engine. The (oc, pixel) iteration
// order matches the dense lowering.
func (c *QConv2D) forwardSparse(out []float32, engine DotEngine, s *Scratch, npix, k2 int) {
	if c.Depthwise {
		for oc := 0; oc < c.OutC; oc++ {
			orow := out[oc*npix:]
			for pix := 0; pix < npix; pix++ {
				acc := c.sparseDotDW(engine, s, pix, oc)
				orow[pix] = float32(acc)*c.InScale*c.WScale + c.Bias[oc]
			}
		}
		return
	}
	ksz := c.InC * k2
	for oc := 0; oc < c.OutC; oc++ {
		kbase := oc * ksz
		orow := out[oc*npix:]
		for pix := 0; pix < npix; pix++ {
			acc := c.sparseDot(engine, s, kbase, pix)
			orow[pix] = float32(acc)*c.InScale*c.WScale + c.Bias[oc]
		}
	}
}
