package quant

import "repro/internal/digest"

// netSchema tags the quantized-network digest encoding. The digest is
// the model's version ID in the serving registry — two models share a
// version exactly when every value inference reads is identical — so
// this is a compatibility contract like the cache-key digests: bump the
// tag whenever a field inference reads is added, removed, reordered or
// reinterpreted (see internal/digest).
const netSchema = "repro/quant.Network@v1"

// Digest returns the canonical content digest of the quantized model:
// operand precision, layer kinds in order, and for each parameterized
// layer its full geometry, integer weights, biases and scales. Because
// quantized inference is a pure function of these values (plus the
// engine), equal digests mean byte-identical classification; the digest
// survives Save/Load round trips (pinned by the serialization tests)
// and a golden vector in internal/digest pins it across releases.
func (q *Network) Digest() digest.Digest {
	h := digest.New()
	h.Str(netSchema)
	h.Int(q.Bits)
	h.Int(len(q.layers))
	for _, l := range q.layers {
		h.Str(l.kind())
		switch {
		case l.conv != nil:
			c := l.conv
			h.Int(c.InC).Int(c.OutC).Int(c.K).Int(c.Stride).Int(c.Pad)
			h.Bool(c.Depthwise)
			hashParams(h, c.W, c.Bias, c.WScale, c.InScale)
		case l.dense != nil:
			d := l.dense
			h.Int(d.In).Int(d.Out)
			hashParams(h, d.W, d.Bias, d.WScale, d.InScale)
		}
	}
	return h.Sum()
}

// hashParams writes a layer's parameter payload: length-framed integer
// weights and float biases, then the two scales. float32 values widen
// to float64 exactly, so the bit pattern the hash sees is injective in
// the stored value.
func hashParams(h *digest.Hasher, w []int, bias []float32, wScale, inScale float32) {
	h.Int(len(w))
	for _, v := range w {
		h.Int(v)
	}
	h.Int(len(bias))
	for _, v := range bias {
		h.F64(float64(v))
	}
	h.F64(float64(wScale)).F64(float64(inScale))
}
