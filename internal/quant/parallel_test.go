package quant

import (
	"errors"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
)

// quantizedFixture quantizes the shared trained network once for the
// parallel-evaluation tests.
func quantizedFixture(t testing.TB) (*Network, []nn.Example) {
	t.Helper()
	net, train, test := trainTinyNet(t)
	qn, err := Quantize(net, 8, train[:32])
	if err != nil {
		t.Fatal(err)
	}
	return qn, test
}

// Parallel evaluation with a stateless shared engine must reproduce the
// serial Evaluate bit-for-bit at every worker count: the shard merge is
// integer summation and ExactEngine is a pure function.
func TestEvaluateParallelMatchesSerialExact(t *testing.T) {
	qn, test := quantizedFixture(t)
	wantTop1, wantTop5 := qn.Evaluate(test, 5, ExactEngine{})
	for _, workers := range []int{1, 2, 3, 8} {
		got1, got5, err := qn.EvaluateParallel(test, 5, SharedEngine(ExactEngine{}), workers)
		if err != nil {
			t.Fatal(err)
		}
		if got1 != wantTop1 || got5 != wantTop5 {
			t.Fatalf("workers=%d parallel (%.6f, %.6f) != serial (%.6f, %.6f)",
				workers, got1, got5, wantTop1, wantTop5)
		}
	}
}

// The worker-default contract: workers <= 0 selects GOMAXPROCS (the
// accel.Runner convention), and because the shard partition is fixed,
// every requested count — defaulted, clamped or explicit — returns the
// bit-identical result of the serial walk.
func TestEvaluateParallelWorkerDefaultTable(t *testing.T) {
	qn, test := quantizedFixture(t)
	want1, want5 := qn.Evaluate(test, 5, ExactEngine{})
	cases := []struct {
		name    string
		workers int
	}{
		{"negative selects GOMAXPROCS", -3},
		{"zero selects GOMAXPROCS", 0},
		{"serial", 1},
		{"small pool", 2},
		{"GOMAXPROCS explicitly", runtime.GOMAXPROCS(0)},
		{"more workers than shards", 10 * runtime.GOMAXPROCS(0)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got1, got5, err := qn.EvaluateParallel(test, 5, SharedEngine(ExactEngine{}), c.workers)
			if err != nil {
				t.Fatal(err)
			}
			if got1 != want1 || got5 != want5 {
				t.Fatalf("workers=%d: (%.6f, %.6f) != serial (%.6f, %.6f)",
					c.workers, got1, got5, want1, want5)
			}
		})
	}
}

// Parallel evaluation through the stateful SCONNA engine must be
// invariant in the worker count: the shard partition and per-shard ADC
// seeds are fixed, so any parallel schedule realizes the same noise
// streams as the serial (workers=1) walk over the shards.
func TestEvaluateParallelWorkerInvariance(t *testing.T) {
	qn, test := quantizedFixture(t)
	ccfg := core.DefaultConfig()
	ccfg.N = 32
	ccfg.M = 1
	ccfg.ADCSeed = 77
	factory := SconnaEngineFactory(ccfg)
	ref1, ref5, err := qn.EvaluateParallel(test, 5, factory, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got1, got5, err := qn.EvaluateParallel(test, 5, factory, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got1 != ref1 || got5 != ref5 {
			t.Fatalf("workers=%d (%.6f, %.6f) != workers=1 (%.6f, %.6f)",
				workers, got1, got5, ref1, ref5)
		}
	}
}

// Re-running the same parallel evaluation must reproduce itself exactly —
// each shard's engine is rebuilt from the same derived seed.
func TestEvaluateParallelRepeatable(t *testing.T) {
	qn, test := quantizedFixture(t)
	ccfg := core.DefaultConfig()
	ccfg.N = 32
	ccfg.M = 1
	factory := SconnaEngineFactory(ccfg)
	a1, a5, err := qn.EvaluateParallel(test, 5, factory, 4)
	if err != nil {
		t.Fatal(err)
	}
	b1, b5, err := qn.EvaluateParallel(test, 5, factory, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != b1 || a5 != b5 {
		t.Fatalf("rerun diverged: (%.6f, %.6f) vs (%.6f, %.6f)", a1, a5, b1, b5)
	}
}

func TestEvaluateParallelEmpty(t *testing.T) {
	t.Parallel()
	qn := &Network{Bits: 8}
	top1, top5, err := qn.EvaluateParallel(nil, 5, SharedEngine(ExactEngine{}), 4)
	if err != nil || top1 != 0 || top5 != 0 {
		t.Fatalf("empty evaluation: %v %v %v", top1, top5, err)
	}
}

// A factory failure must surface as an error naming the shard, not panic
// or deadlock, and must not poison other shards' work.
func TestEvaluateParallelFactoryError(t *testing.T) {
	qn, test := quantizedFixture(t)
	bad := func(shard int) (DotEngine, error) {
		if shard == 0 {
			return nil, errors.New("no engine for shard 0")
		}
		return ExactEngine{}, nil
	}
	if _, _, err := qn.EvaluateParallel(test, 5, bad, 4); err == nil {
		t.Fatal("expected factory error to propagate")
	}
}
