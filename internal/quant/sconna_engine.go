package quant

import (
	"fmt"

	"repro/internal/core"
)

// SconnaEngine runs dot products through the functional SCONNA core: LUT
// streams, optical AND gates, sign-steered PCA accumulation and (unless
// disabled) the 1.3%-MAPE ADC conversion. Vectors longer than the VDPE
// size decompose into chunks whose partial sums reduce digitally, exactly
// as Section II-B describes.
type SconnaEngine struct {
	vdpc *core.VDPC
	cfg  core.Config
}

// NewSconnaEngine builds an engine for the given functional configuration.
// A small M (e.g. 1-4) is sufficient: the functional result does not
// depend on how many VDPEs exist, only the performance plane cares.
func NewSconnaEngine(cfg core.Config) (*SconnaEngine, error) {
	v, err := core.NewVDPC(cfg)
	if err != nil {
		return nil, fmt.Errorf("quant: building SCONNA engine: %w", err)
	}
	return &SconnaEngine{vdpc: v, cfg: cfg}, nil
}

// Name implements DotEngine.
func (e *SconnaEngine) Name() string {
	if e.cfg.IdealADC {
		return "sconna-ideal-adc"
	}
	return "sconna"
}

// Dot implements DotEngine.
func (e *SconnaEngine) Dot(div, dkv []int) int {
	est, _, _, err := e.vdpc.DotLarge(div, dkv)
	if err != nil {
		// Operand contract violations are programming errors in the
		// quantizer, not runtime conditions.
		panic(fmt.Sprintf("quant: SCONNA dot failed: %v", err))
	}
	// The stream arithmetic carries products scaled by 2^B; DotLarge
	// already returns integer product units.
	return est
}

// Chunks returns how many psum chunks a vector of length s needs on this
// engine's VDPE size.
func (e *SconnaEngine) Chunks(s int) int {
	n := e.cfg.N
	return (s + n - 1) / n
}
