package quant

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// recordingEngine logs every Dot call's operand vectors. Wrapping the
// exact engine, it proves the lowered forward presents a stateful engine
// with the identical call sequence the naive loops would — the property
// that keeps SCONNA-noise results bit-identical across the rewrite.
type recordingEngine struct {
	calls [][2][]int
}

func (r *recordingEngine) Name() string { return "recording" }

func (r *recordingEngine) Dot(div, dkv []int) int {
	r.calls = append(r.calls, [2][]int{
		append([]int(nil), div...),
		append([]int(nil), dkv...),
	})
	return ExactEngine{}.Dot(div, dkv)
}

// qnetCases builds quantized networks over odd layer shapes: padded,
// strided, pointwise, depthwise and dense tails.
func qnetCases(t *testing.T) []struct {
	name string
	qn   *Network
	x    *tensor.T
} {
	t.Helper()
	build := func(name string, seed int64, inH, inW int, layers func(rng *rand.Rand) []nn.Layer) struct {
		name string
		qn   *Network
		x    *tensor.T
	} {
		rng := rand.New(rand.NewSource(seed))
		net := &nn.Network{Layers: layers(rng)}
		x := tensor.New(1, inH, inW)
		for i := range x.Data {
			x.Data[i] = float32(math.Abs(rng.NormFloat64()))
		}
		qn, err := Quantize(net, 8, []nn.Example{{X: x, Label: 0}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return struct {
			name string
			qn   *Network
			x    *tensor.T
		}{name, qn, x}
	}
	return []struct {
		name string
		qn   *Network
		x    *tensor.T
	}{
		build("pad-stride", 31, 9, 11, func(rng *rand.Rand) []nn.Layer {
			return []nn.Layer{
				nn.NewConv2D("c1", 1, 5, 3, 2, 1, false, rng),
				&nn.ReLU{},
				nn.NewConv2D("c2", 5, 3, 5, 1, 2, false, rng),
				&nn.Flatten{},
			}
		}),
		build("depthwise-pointwise", 32, 8, 8, func(rng *rand.Rand) []nn.Layer {
			return []nn.Layer{
				nn.NewConv2D("c1", 1, 4, 3, 1, 1, false, rng),
				&nn.ReLU{},
				nn.NewConv2D("dw", 4, 4, 3, 1, 1, true, rng),
				nn.NewConv2D("pw", 4, 6, 1, 1, 0, false, rng),
				&nn.ReLU{},
				&nn.GlobalAvgPool{},
				nn.NewDense("fc", 6, 4, rng),
			}
		}),
		build("nopad-pool", 33, 12, 12, func(rng *rand.Rand) []nn.Layer {
			return []nn.Layer{
				nn.NewConv2D("c1", 1, 3, 3, 1, 0, false, rng),
				&nn.ReLU{},
				&nn.MaxPool2{},
				&nn.Flatten{},
				nn.NewDense("fc", 3*5*5, 4, rng),
			}
		}),
	}
}

// TestQuantLoweredMatchesNaive pins the quantized lowering: logits from
// the shared-patch path are bit-identical to the reference per-channel
// gather loops, and — via the recording engine — the Dot call sequence
// (operand values, order and vector lengths) is preserved exactly, which
// is what keeps the stateful SCONNA engine's noise pairing unchanged.
func TestQuantLoweredMatchesNaive(t *testing.T) {
	t.Parallel()
	for _, tc := range qnetCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			recNaive, recLowered := &recordingEngine{}, &recordingEngine{}
			want := tc.qn.ForwardNaive(tc.x, recNaive)
			got := tc.qn.Forward(tc.x, recLowered)
			if !got.SameShape(want) {
				t.Fatalf("shape %v vs %v", got.Shape, want.Shape)
			}
			for i := range got.Data {
				if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
					t.Fatalf("logit[%d]: %v vs %v", i, got.Data[i], want.Data[i])
				}
			}
			if len(recNaive.calls) != len(recLowered.calls) {
				t.Fatalf("Dot call count %d vs naive %d", len(recLowered.calls), len(recNaive.calls))
			}
			for ci := range recNaive.calls {
				for side, which := range [2]string{"div", "dkv"} {
					a, b := recNaive.calls[ci][side], recLowered.calls[ci][side]
					if len(a) != len(b) {
						t.Fatalf("call %d %s length %d vs naive %d", ci, which, len(b), len(a))
					}
					for j := range a {
						if a[j] != b[j] {
							t.Fatalf("call %d %s[%d]: %d vs naive %d", ci, which, j, b[j], a[j])
						}
					}
				}
			}
		})
	}
}

// TestQuantLoweredSconnaBitIdentical runs the stateful SCONNA engine
// (fresh instance per path, same seed) through both implementations:
// identical call sequences must realize identical noise streams and so
// identical logits.
func TestQuantLoweredSconnaBitIdentical(t *testing.T) {
	t.Parallel()
	tc := qnetCases(t)[1] // depthwise-pointwise: the hardest call pattern
	ccfg := core.DefaultConfig()
	ccfg.N = 32
	ccfg.M = 1
	engNaive, err := NewSconnaEngine(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	engLowered, err := NewSconnaEngine(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	want := tc.qn.ForwardNaive(tc.x, engNaive)
	got := tc.qn.Forward(tc.x, engLowered)
	for i := range got.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("logit[%d]: %v vs naive %v", i, got.Data[i], want.Data[i])
		}
	}
}

// BenchmarkQuantForward compares the lowered quantized inference against
// the naive reference on the shared small-CNN shape (exact integer
// engine; the engine cost is identical on both paths, so the delta is
// the gather lowering).
func BenchmarkQuantForward(b *testing.B) {
	net := nn.BuildSmallCNN(8, 8, 1)
	x := tensor.New(1, 16, 16)
	rng := rand.New(rand.NewSource(1))
	for i := range x.Data {
		x.Data[i] = float32(math.Abs(rng.NormFloat64()))
	}
	qn, err := Quantize(net, 8, []nn.Example{{X: x, Label: 0}})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			qn.ForwardNaive(x, ExactEngine{})
		}
	})
	b.Run("lowered", func(b *testing.B) {
		s := NewScratch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			qn.ForwardScratch(x, ExactEngine{}, s)
		}
	})
}
