package quant

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// batchInputs draws n positive-valued inputs of the given shape.
func batchInputs(n int, seed int64, shape ...int) []*tensor.T {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*tensor.T, n)
	for i := range xs {
		x := tensor.New(shape...)
		for j := range x.Data {
			x.Data[j] = float32(math.Abs(rng.NormFloat64()))
		}
		xs[i] = x
	}
	return xs
}

// quantNets builds one standard and one depthwise quantized network so
// every batch test covers both conv paths (shared-patch and depthwise
// gathers) plus padding-truncated windows.
func quantNets(t *testing.T) []*Network {
	t.Helper()
	var qns []*Network
	calib := []nn.Example{{X: batchInputs(1, 3, 1, 16, 16)[0], Label: 0}}
	for _, build := range []*nn.Network{
		nn.BuildSmallCNN(4, 8, 1),
		nn.BuildDepthwiseCNN(4, 8, 2),
	} {
		qn, err := Quantize(build, 8, calib)
		if err != nil {
			t.Fatal(err)
		}
		qns = append(qns, qn)
	}
	return qns
}

// A shared stateless engine: the batched forward must reproduce the
// serial per-example forward bit-for-bit (same operand vectors, exact
// integer arithmetic is order-free).
func TestForwardBatchMatchesSerialExact(t *testing.T) {
	for _, qn := range quantNets(t) {
		xs := batchInputs(5, 7, 1, 16, 16)
		s := NewBatchScratch()
		got := qn.ForwardBatch(xs, []DotEngine{ExactEngine{}}, s)
		for i, x := range xs {
			want := qn.Forward(x, ExactEngine{})
			assertBitIdentical(t, got[i], want)
		}
		// Scratch reuse across calls (and across batch sizes) must not
		// leak state between batches.
		got2 := qn.ForwardBatch(xs[:3], []DotEngine{ExactEngine{}}, s)
		for i := range got2 {
			assertBitIdentical(t, got2[i], got[i])
		}
	}
}

// Per-example stateful engines: each engine must observe exactly the
// serial call sequence for its example, so batched logits are
// bit-identical to running every example alone through an identically
// seeded engine — the contract deterministic serving relies on.
func TestForwardBatchPerExampleEnginesMatchSerial(t *testing.T) {
	ccfg := core.DefaultConfig()
	ccfg.N = 32
	ccfg.M = 1
	ccfg.Bits = 8
	for _, qn := range quantNets(t) {
		xs := batchInputs(4, 9, 1, 16, 16)
		factory := SconnaEngineFactory(ccfg)
		engines := make([]DotEngine, len(xs))
		for i := range engines {
			e, err := factory(i)
			if err != nil {
				t.Fatal(err)
			}
			engines[i] = e
		}
		got := qn.ForwardBatch(xs, engines, NewBatchScratch())
		for i, x := range xs {
			fresh, err := factory(i)
			if err != nil {
				t.Fatal(err)
			}
			want := qn.ForwardScratch(x, fresh, NewScratch())
			assertBitIdentical(t, got[i], want)
		}
	}
}

// The call-order contract holds for every batch size, including the
// single-example batch the micro-batcher degenerates to under light
// load.
func TestForwardBatchSizeOne(t *testing.T) {
	qn := quantNets(t)[0]
	x := batchInputs(1, 13, 1, 16, 16)
	got := qn.ForwardBatch(x, []DotEngine{ExactEngine{}}, nil)
	assertBitIdentical(t, got[0], qn.Forward(x[0], ExactEngine{}))
}

func TestForwardBatchValidates(t *testing.T) {
	qn := quantNets(t)[0]
	xs := batchInputs(2, 17, 1, 16, 16)
	if got := qn.ForwardBatch(nil, []DotEngine{ExactEngine{}}, nil); got != nil {
		t.Fatalf("empty batch returned %v", got)
	}
	mustPanic(t, "engine count", func() {
		qn.ForwardBatch(xs, nil, nil)
	})
	mustPanic(t, "shape mismatch", func() {
		bad := []*tensor.T{xs[0], tensor.New(1, 8, 8)}
		qn.ForwardBatch(bad, []DotEngine{ExactEngine{}}, nil)
	})
}

func assertBitIdentical(t *testing.T, got, want *tensor.T) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("length %d vs %d", got.Len(), want.Len())
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("logit %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	f()
}
