package quant_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/sckernel"
	"repro/internal/tensor"
)

// crossEngine is a recording DotEngine that routes every Dot call of a
// quantized forward pass through the scalar ideal-ADC SCONNA engine and
// the packed ideal-ADC kernel engine in lockstep, asserting on every
// single call the properties the ideal path guarantees:
//
//   - scalar and packed agree bitwise;
//   - both equal the analytic stream oracle sum_i sign_i *
//     floor(div_i*|dkv_i|/L) * L, which the Bresenham prefix property
//     implies for unary×Bresenham stream pairs;
//   - the result is a multiple of L = 2^B (every lane contributes whole
//     streams of product units);
//   - the stochastic rounding deficit versus plain integer arithmetic is
//     bounded per lane: |exact − ideal| ≤ lanes*(L−1).
//
// This closes the previously untested ideal-ADC path across DotLarge
// chunking: the config's small N forces multi-chunk decomposition on
// every convolution dot.
type crossEngine struct {
	t       *testing.T
	scalar  quant.DotEngine
	packed  *sckernel.Engine
	bits    int
	calls   int
	chunked int // calls that decomposed into more than one psum chunk
}

func (c *crossEngine) Name() string { return "cross-check" }

func (c *crossEngine) Dot(div, dkv []int) int {
	c.t.Helper()
	c.calls++
	if c.packed.Chunks(len(div)) > 1 {
		c.chunked++
	}
	scale := 1 << uint(c.bits)
	s := c.scalar.Dot(div, dkv)
	p := c.packed.Dot(div, dkv)
	if s != p {
		c.t.Fatalf("call %d: scalar-ideal %d != packed-ideal %d (len %d)", c.calls, s, p, len(div))
	}
	ideal, exact := 0, 0
	for i := range div {
		w, sign := dkv[i], 1
		if w < 0 {
			w, sign = -w, -1
		}
		ideal += sign * (div[i] * w / scale) * scale
		exact += div[i] * dkv[i]
	}
	if s != ideal {
		c.t.Fatalf("call %d: ideal-ADC dot %d != analytic floor oracle %d", c.calls, s, ideal)
	}
	if s%scale != 0 {
		c.t.Fatalf("call %d: ideal-ADC dot %d not a multiple of L=%d", c.calls, s, scale)
	}
	if bound := len(div) * (scale - 1); exact-s > bound || s-exact > bound {
		c.t.Fatalf("call %d: |exact %d - ideal %d| exceeds lane bound %d", c.calls, exact, s, bound)
	}
	return s
}

func crossCfg(bits int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Bits = bits
	cfg.N = 5 // far below the layer vector lengths: every conv dot chunks
	cfg.M = 2
	cfg.ADCSeed = 31
	cfg.IdealADC = true
	return cfg
}

func newCrossEngine(t *testing.T, bits int) *crossEngine {
	t.Helper()
	cfg := crossCfg(bits)
	scalar, err := quant.NewSconnaEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := sckernel.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &crossEngine{t: t, scalar: scalar, packed: packed, bits: bits}
}

// TestIdealADCCrossEngineOnNetworks drives full quantized forward passes
// (random networks, random inputs) through the lockstep checker.
func TestIdealADCCrossEngineOnNetworks(t *testing.T) {
	for _, bits := range []int{3, 6, 8} {
		ce := newCrossEngine(t, bits)
		qn, err := quant.Quantize(nn.BuildSmallCNN(2, 4, int64(40+bits)), bits, nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(bits)))
		for trial := 0; trial < 3; trial++ {
			x := tensor.New(1, 8, 8)
			for i := range x.Data {
				x.Data[i] = rng.Float32()
			}
			qn.Forward(x, ce)
		}
		if ce.calls == 0 {
			t.Fatalf("B=%d: forward pass made no Dot calls", bits)
		}
		if ce.chunked == 0 {
			t.Fatalf("B=%d: no Dot call exercised DotLarge chunking (N=%d too large?)",
				bits, crossCfg(bits).N)
		}
	}
}

// TestIdealADCCrossEngineDirect hits the checker with crafted operand
// vectors: chunk-seam lengths, and the |dkv|=L corner where the floor
// oracle collapses to plain integer arithmetic, making ideal-ADC EXACTLY
// equal to ExactEngine.
func TestIdealADCCrossEngineDirect(t *testing.T) {
	for _, bits := range []int{2, 5, 8} {
		ce := newCrossEngine(t, bits)
		scale := 1 << uint(bits)
		n := crossCfg(bits).N
		rng := rand.New(rand.NewSource(int64(7 * bits)))
		for _, length := range []int{0, 1, n - 1, n, n + 1, 3*n + 7} {
			div := make([]int, length)
			dkv := make([]int, length)
			for i := range div {
				div[i] = rng.Intn(scale + 1)
				dkv[i] = rng.Intn(2*scale+1) - scale
			}
			ce.Dot(div, dkv)

			// Full-magnitude weights: div*L/L*L == div*L, so the ideal
			// stream dot equals the exact integer dot with zero deficit.
			exact := quant.ExactEngine{}
			for i := range dkv {
				if rng.Intn(2) == 0 {
					dkv[i] = scale
				} else {
					dkv[i] = -scale
				}
			}
			if got, want := ce.Dot(div, dkv), exact.Dot(div, dkv); got != want {
				t.Fatalf("B=%d len %d: ideal dot %d != exact %d with |dkv|=L", bits, length, got, want)
			}
		}
	}
}
