package quant

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// sparseInput fills a tensor with values in [0.5, 1] (comfortably above
// the quantization step, so no nonzero rounds to zero), zeroing each
// element independently with probability sparsity — the quantized zero
// fraction then tracks the requested float sparsity.
func sparseInput(rng *rand.Rand, sparsity float64, shape ...int) *tensor.T {
	x := tensor.New(shape...)
	for i := range x.Data {
		if rng.Float64() >= sparsity {
			x.Data[i] = 0.5 + 0.5*rng.Float32()
		}
	}
	return x
}

var quantTierSparsities = []float64{0, 0.5, 0.9, 1.0}

// denseOnlyEngine wraps ExactEngine without implementing ZeroSkipper, so
// it pins the dense path regardless of input sparsity.
type denseOnlyEngine struct{}

func (denseOnlyEngine) Name() string           { return "dense-only" }
func (denseOnlyEngine) Dot(div, dkv []int) int { return ExactEngine{}.Dot(div, dkv) }

// TestZeroSkipperCapability pins which engines opt into the sparse path.
func TestZeroSkipperCapability(t *testing.T) {
	t.Parallel()
	if !skipsZeros(ExactEngine{}) {
		t.Fatal("ExactEngine must skip zeros")
	}
	if skipsZeros(denseOnlyEngine{}) {
		t.Fatal("a plain DotEngine must not skip zeros")
	}
	if skipsZeros(&recordingEngine{}) {
		t.Fatal("the recording engine must see the dense call sequence")
	}
}

func TestWorthSparseThreshold(t *testing.T) {
	t.Parallel()
	if worthSparse(nil) {
		t.Fatal("empty input must not gate sparse")
	}
	if worthSparse([]int{1, 1, 0, 0, 1, 0, 1, 0, 1, 1}) { // 40% zeros
		t.Fatal("40%% zeros is below the threshold")
	}
	if !worthSparse([]int{0, 0, 0, 1, 0, 0, 0, 1, 0, 0}) { // 80% zeros
		t.Fatal("80%% zeros must gate sparse")
	}
}

// TestQuantSparseMatchesNaive is the sparsity equivalence tier: over the
// odd-shape network set and input sparsities {0, 0.5, 0.9, 1.0}, the
// lowered forward (sparse path engaged wherever the gate fires) is
// bit-identical to the dense naive reference for a ZeroSkipper engine.
func TestQuantSparseMatchesNaive(t *testing.T) {
	t.Parallel()
	for _, tc := range qnetCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(71))
			s := NewScratch() // reused across sparsities: stale compaction must not leak
			for _, sp := range quantTierSparsities {
				x := sparseInput(rng, sp, tc.x.Shape...)
				want := tc.qn.ForwardNaive(x, ExactEngine{})
				got := tc.qn.ForwardScratch(x, ExactEngine{}, s)
				if !got.SameShape(want) {
					t.Fatalf("sp=%.1f: shape %v vs %v", sp, got.Shape, want.Shape)
				}
				for i := range got.Data {
					if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
						t.Fatalf("sp=%.1f logit[%d]: %v vs %v", sp, i, got.Data[i], want.Data[i])
					}
				}
			}
		})
	}
}

// TestQuantSparsePathEngages proves through the op recorder that the
// gate actually routes: the first conv layer skips work at 0.9 input
// sparsity and runs dense (exec == dense) at 0 and 0.5.
func TestQuantSparsePathEngages(t *testing.T) {
	t.Parallel()
	tc := qnetCases(t)[0]
	rng := rand.New(rand.NewSource(72))
	for _, sp := range quantTierSparsities {
		rec := tc.qn.OpRecorder()
		s := NewScratch()
		s.Ops = rec
		tc.qn.ForwardScratch(sparseInput(rng, sp, tc.x.Shape...), ExactEngine{}, s)
		l0 := rec.Snapshot().Layers[0]
		if l0.Name != "conv" {
			t.Fatalf("layer 0 is %q, want conv", l0.Name)
		}
		if sp >= 0.9 {
			if l0.Exec.Total() >= l0.Dense.Total() {
				t.Fatalf("sp=%.1f: sparse path did not engage (exec %d >= dense %d)",
					sp, l0.Exec.Total(), l0.Dense.Total())
			}
		} else if l0.Exec != l0.Dense {
			t.Fatalf("sp=%.1f: expected dense path on layer 0, got exec %+v dense %+v",
				sp, l0.Exec, l0.Dense)
		}
	}
}

// TestQuantSparseDenseCallOrderPreserved asserts the determinism
// contract for engines that do NOT opt in: on a highly sparse input, a
// recording (non-ZeroSkipper) engine sees exactly the dense call
// sequence the naive reference issues — operand values, vector lengths
// and (layer, output channel, pixel) order all unchanged.
func TestQuantSparseDenseCallOrderPreserved(t *testing.T) {
	t.Parallel()
	for _, tc := range qnetCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(73))
			x := sparseInput(rng, 0.95, tc.x.Shape...)
			recNaive, recLowered := &recordingEngine{}, &recordingEngine{}
			tc.qn.ForwardNaive(x, recNaive)
			tc.qn.Forward(x, recLowered)
			if len(recNaive.calls) != len(recLowered.calls) {
				t.Fatalf("Dot call count %d vs naive %d", len(recLowered.calls), len(recNaive.calls))
			}
			for ci := range recNaive.calls {
				for side, which := range [2]string{"div", "dkv"} {
					a, b := recNaive.calls[ci][side], recLowered.calls[ci][side]
					if len(a) != len(b) {
						t.Fatalf("call %d %s length %d vs naive %d", ci, which, len(b), len(a))
					}
					for j := range a {
						if a[j] != b[j] {
							t.Fatalf("call %d %s[%d]: %d vs naive %d", ci, which, j, b[j], a[j])
						}
					}
				}
			}
		})
	}
}

// TestQuantSparseBatchMixedEngines runs micro-batches whose engines mix
// sparse-capable and dense-only substrates over the sparsity tier: every
// example must be bit-identical to its own serial ForwardScratch pass.
func TestQuantSparseBatchMixedEngines(t *testing.T) {
	t.Parallel()
	for _, tc := range qnetCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(74))
			bs := NewBatchScratch()
			for _, sp := range quantTierSparsities {
				xs := make([]*tensor.T, 4)
				for i := range xs {
					xs[i] = sparseInput(rng, sp, tc.x.Shape...)
				}
				engines := []DotEngine{ExactEngine{}, denseOnlyEngine{}, ExactEngine{}, denseOnlyEngine{}}
				got := tc.qn.ForwardBatch(xs, engines, bs)
				for e := range xs {
					want := tc.qn.ForwardScratch(xs[e], engines[e], NewScratch())
					for i := range want.Data {
						if math.Float32bits(got[e].Data[i]) != math.Float32bits(want.Data[i]) {
							t.Fatalf("sp=%.1f example %d logit[%d]: batch %v serial %v",
								sp, e, i, got[e].Data[i], want.Data[i])
						}
					}
				}
			}
		})
	}
}

// TestQuantSparseEvaluateParallelWorkerInvariance runs the sparse path
// under the parallel evaluator at workers 1, 4 and GOMAXPROCS (the
// -race tier exercises the shared atomic recorder-free hot path):
// accuracies must be identical across worker counts and equal to the
// serial evaluation.
func TestQuantSparseEvaluateParallelWorkerInvariance(t *testing.T) {
	t.Parallel()
	qn, err := Quantize(nn.BuildSmallCNN(4, 4, 5), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(75))
	examples := make([]nn.Example, 40)
	for i := range examples {
		examples[i] = nn.Example{X: sparseInput(rng, 0.9, 1, 16, 16), Label: i % 4}
	}
	wantTop1, wantTopk := qn.Evaluate(examples, 2, ExactEngine{})
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		top1, topk, err := qn.EvaluateParallel(examples, 2, SharedEngine(ExactEngine{}), workers)
		if err != nil {
			t.Fatal(err)
		}
		if top1 != wantTop1 || topk != wantTopk {
			t.Fatalf("workers=%d: (%v, %v) vs serial (%v, %v)", workers, top1, topk, wantTop1, wantTopk)
		}
	}
}

// TestQuantSparseOpRecorderBatchConsistency: running the same examples
// through the serial and batched paths must tally identical op counts
// (the batch aggregation is just a regrouping of the per-example sums).
func TestQuantSparseOpRecorderBatchConsistency(t *testing.T) {
	t.Parallel()
	tc := qnetCases(t)[1] // depthwise-pointwise: every conv kind
	rng := rand.New(rand.NewSource(76))
	xs := make([]*tensor.T, 3)
	for i := range xs {
		xs[i] = sparseInput(rng, 0.9, tc.x.Shape...)
	}
	recSerial := tc.qn.OpRecorder()
	for _, x := range xs {
		s := NewScratch()
		s.Ops = recSerial
		tc.qn.ForwardScratch(x, ExactEngine{}, s)
	}
	recBatch := tc.qn.OpRecorder()
	bs := NewBatchScratch()
	bs.Ops = recBatch
	tc.qn.ForwardBatch(xs, []DotEngine{ExactEngine{}}, bs)
	ps, pb := recSerial.Snapshot(), recBatch.Snapshot()
	for li := range ps.Layers {
		if ps.Layers[li].Dense != pb.Layers[li].Dense || ps.Layers[li].Exec != pb.Layers[li].Exec {
			t.Fatalf("layer %d (%s): serial %+v/%+v batch %+v/%+v", li, ps.Layers[li].Name,
				ps.Layers[li].Dense, ps.Layers[li].Exec, pb.Layers[li].Dense, pb.Layers[li].Exec)
		}
	}
}
