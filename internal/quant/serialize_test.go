package quant

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// artifactNet builds a small quantized network with non-trivial layer
// coverage (conv, relu, pool, gap/flatten, dense) without training: the
// artifact contract is about values, not accuracy.
func artifactNet(t testing.TB, width, bits int, seed int64) *Network {
	t.Helper()
	src := nn.BuildSmallCNN(width, 4, seed)
	calib := serializeInputsExamples(3, seed+1)
	qn, err := Quantize(src, bits, calib)
	if err != nil {
		t.Fatal(err)
	}
	return qn
}

func serializeInputs(n int, seed int64) []*tensor.T {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*tensor.T, n)
	for i := range xs {
		x := tensor.New(1, 16, 16)
		for j := range x.Data {
			x.Data[j] = float32(math.Abs(rng.NormFloat64()))
		}
		xs[i] = x
	}
	return xs
}

func serializeInputsExamples(n int, seed int64) []nn.Example {
	xs := serializeInputs(n, seed)
	ex := make([]nn.Example, n)
	for i, x := range xs {
		ex[i] = nn.Example{X: x, Label: i % 4}
	}
	return ex
}

// The artifact round trip must reproduce the model exactly: equal
// digests and byte-identical classification — including through a
// stateful SCONNA engine, whose noise stream pairs with the exact
// engine call sequence.
func TestArtifactRoundTripBitIdentical(t *testing.T) {
	t.Parallel()
	qn := artifactNet(t, 3, 7, 31)
	var buf bytes.Buffer
	if err := qn.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Bits != qn.Bits || loaded.NumWeights() != qn.NumWeights() {
		t.Fatalf("loaded bits=%d weights=%d, want bits=%d weights=%d",
			loaded.Bits, loaded.NumWeights(), qn.Bits, qn.NumWeights())
	}
	if got, want := loaded.Digest(), qn.Digest(); got != want {
		t.Fatalf("digest drifted across the round trip: %s vs %s", got.Short(), want.Short())
	}

	factory := SconnaEngineFactory(testCoreConfigSerialize())
	for i, x := range serializeInputs(4, 37) {
		want := qn.Forward(x, ExactEngine{})
		got := loaded.Forward(x, ExactEngine{})
		assertLogitsEqual(t, i, "exact", got, want)

		we, err := factory(i)
		if err != nil {
			t.Fatal(err)
		}
		ge, err := factory(i)
		if err != nil {
			t.Fatal(err)
		}
		assertLogitsEqual(t, i, "sconna", loaded.Forward(x, ge), qn.Forward(x, we))
	}
}

func assertLogitsEqual(t *testing.T, i int, engine string, got, want *tensor.T) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("input %d (%s): %d logits, want %d", i, engine, len(got.Data), len(want.Data))
	}
	for j := range want.Data {
		if got.Data[j] != want.Data[j] {
			t.Fatalf("input %d (%s) logit %d: %v != %v (artifact must be exact)",
				i, engine, j, got.Data[j], want.Data[j])
		}
	}
}

func TestArtifactSaveFileAtomicAndLoadable(t *testing.T) {
	t.Parallel()
	qn := artifactNet(t, 2, 6, 41)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.qnn")
	if err := qn.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place: the temp+rename path must leave exactly one
	// file behind (no stranded temp files).
	if err := qn.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.qnn" {
		t.Fatalf("directory after two saves: %v", entries)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Digest() != qn.Digest() {
		t.Fatal("file round trip moved the digest")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.qnn")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

// Load must reject malformed artifacts with a diagnostic, never build a
// network that would fault mid-forward.
func TestLoadRejectsCorruptArtifacts(t *testing.T) {
	t.Parallel()
	qn := artifactNet(t, 2, 6, 43)

	encode := func(mutate func(*artifact)) *bytes.Buffer {
		var buf bytes.Buffer
		if err := qn.Save(&buf); err != nil {
			t.Fatal(err)
		}
		var a artifact
		if err := gob.NewDecoder(&buf).Decode(&a); err != nil {
			t.Fatal(err)
		}
		mutate(&a)
		var out bytes.Buffer
		if err := gob.NewEncoder(&out).Encode(a); err != nil {
			t.Fatal(err)
		}
		return &out
	}

	cases := []struct {
		name   string
		body   *bytes.Buffer
		errHas string
	}{
		{"garbage", bytes.NewBufferString("not a gob stream"), "decoding"},
		{"wrong schema", encode(func(a *artifact) { a.Schema = "repro/other@v9" }), "schema"},
		{"bad bits", encode(func(a *artifact) { a.Bits = 1 }), "precision"},
		{"unknown kind", encode(func(a *artifact) { a.Layers[0].Kind = "lstm" }), "unknown kind"},
		{"truncated weights", encode(func(a *artifact) { a.Layers[0].W = a.Layers[0].W[:3] }), "weights"},
		{"bias mismatch", encode(func(a *artifact) { a.Layers[0].Bias = nil }), "biases"},
		{"zero scale", encode(func(a *artifact) { a.Layers[0].WScale = 0 }), "scale"},
		{"bad geometry", encode(func(a *artifact) { a.Layers[0].K = 0 }), "invalid"},
		// |w| > 2^B - 1 would panic a SCONNA engine at request time; the
		// artifact must die at load instead.
		{"over-range weight", encode(func(a *artifact) { a.Layers[0].W[0] = 1 << 20 }), "magnitude range"},
		{"under-range weight", encode(func(a *artifact) { a.Layers[0].W[1] = -(1 << 20) }), "magnitude range"},
	}
	for _, c := range cases {
		if _, err := Load(c.body); err == nil || !strings.Contains(err.Error(), c.errHas) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.errHas)
		}
	}
}

// The digest is the registry's version ID: any value inference reads
// must move it, and models that differ in weights, precision, or
// architecture must not collide.
func TestNetworkDigestSensitivity(t *testing.T) {
	t.Parallel()
	base := artifactNet(t, 2, 6, 47)
	if artifactNet(t, 2, 6, 47).Digest() != base.Digest() {
		t.Fatal("identical builds disagree: digest not canonical")
	}
	variants := map[string]*Network{
		"precision": artifactNet(t, 2, 7, 47),
		"weights":   artifactNet(t, 2, 6, 48),
		"width":     artifactNet(t, 3, 6, 47),
	}
	seen := map[string]string{base.Digest().String(): "base"}
	for name, qn := range variants {
		d := qn.Digest().String()
		if prev, dup := seen[d]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[d] = name
	}

	// Mutating a single stored value moves the digest.
	mutated := artifactNet(t, 2, 6, 47)
	for _, l := range mutated.layers {
		if l.conv != nil {
			l.conv.W[0]++
			break
		}
	}
	if mutated.Digest() == base.Digest() {
		t.Fatal("mutating a weight did not move the digest")
	}
}

func testCoreConfigSerialize() core.Config {
	cfg := core.DefaultConfig()
	cfg.Bits = 7
	cfg.N = 16
	cfg.M = 1
	cfg.ADCSeed = 77
	return cfg
}
