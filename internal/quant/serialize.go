package quant

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// artifactSchema tags the quantized-model artifact wire format. Unlike a
// float weights snapshot (nn.Save), an artifact is self-describing: it
// carries the full quantized architecture — layer kinds, dimensions,
// integer weights, scales — so a server can load and serve a model
// without reconstructing (or retraining) the float network it came from.
// Bump the tag whenever a serialized field is added, removed, reordered
// or reinterpreted; Load rejects unknown schemas instead of guessing.
const artifactSchema = "repro/quant.Artifact@v1"

// artifact is the gob wire format of a quantized model.
type artifact struct {
	Schema string
	Bits   int
	Layers []layerBlob
}

// layerBlob is one serialized qlayer. Kind selects which fields are
// meaningful; the engine-free layers (relu/pool/gap/flat) carry none.
type layerBlob struct {
	Kind string // "conv", "dense", "relu", "pool", "gap", "flat"

	// Convolution geometry (Kind == "conv").
	InC, OutC, K, Stride, Pad int
	Depthwise                 bool

	// Dense geometry (Kind == "dense").
	In, Out int

	// Shared parameter payload (conv and dense).
	W       []int
	Bias    []float32
	WScale  float32
	InScale float32
}

const (
	kindConv  = "conv"
	kindDense = "dense"
	kindReLU  = "relu"
	kindPool  = "pool"
	kindGAP   = "gap"
	kindFlat  = "flat"
)

// kind names the layer for serialization and digesting.
func (l qlayer) kind() string {
	switch {
	case l.conv != nil:
		return kindConv
	case l.dense != nil:
		return kindDense
	case l.relu:
		return kindReLU
	case l.pool:
		return kindPool
	case l.gap:
		return kindGAP
	case l.flat:
		return kindFlat
	}
	return "" // unreachable: Quantize and Load only build the six kinds
}

// Save writes the quantized model to w as a self-describing artifact.
// Load reconstructs an identical network — same layer kinds, dimensions,
// integer weights and scales — so classification through the loaded
// model is byte-identical to the original (pinned by the round-trip
// tests).
func (q *Network) Save(w io.Writer) error {
	a := artifact{Schema: artifactSchema, Bits: q.Bits}
	for _, l := range q.layers {
		blob := layerBlob{Kind: l.kind()}
		switch {
		case l.conv != nil:
			c := l.conv
			blob.InC, blob.OutC, blob.K, blob.Stride, blob.Pad = c.InC, c.OutC, c.K, c.Stride, c.Pad
			blob.Depthwise = c.Depthwise
			blob.W = append([]int(nil), c.W...)
			blob.Bias = append([]float32(nil), c.Bias...)
			blob.WScale, blob.InScale = c.WScale, c.InScale
		case l.dense != nil:
			d := l.dense
			blob.In, blob.Out = d.In, d.Out
			blob.W = append([]int(nil), d.W...)
			blob.Bias = append([]float32(nil), d.Bias...)
			blob.WScale, blob.InScale = d.WScale, d.InScale
		}
		a.Layers = append(a.Layers, blob)
	}
	if err := gob.NewEncoder(w).Encode(a); err != nil {
		return fmt.Errorf("quant: encoding artifact: %w", err)
	}
	return nil
}

// SaveFile writes the artifact to path via a temp-file + rename in the
// same directory, so a crash mid-write never leaves a truncated artifact
// behind (the same convention as nn.SaveFile and the disk cache).
func (q *Network) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".quant-*")
	if err != nil {
		return fmt.Errorf("quant: saving artifact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := q.Save(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("quant: saving artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("quant: saving artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("quant: saving artifact: %w", err)
	}
	return nil
}

// Load reconstructs a quantized model saved by Save, validating the
// schema tag and every dimension before building layers — a corrupt or
// foreign file fails here, never inside a forward pass.
func Load(r io.Reader) (*Network, error) {
	var a artifact
	if err := gob.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("quant: decoding artifact: %w", err)
	}
	if a.Schema != artifactSchema {
		return nil, fmt.Errorf("quant: artifact schema %q, want %q", a.Schema, artifactSchema)
	}
	if a.Bits < 2 || a.Bits > 8 {
		return nil, fmt.Errorf("quant: artifact precision %d outside [2,8]", a.Bits)
	}
	qmax := int(1)<<uint(a.Bits) - 1
	qn := &Network{Bits: a.Bits}
	for i, blob := range a.Layers {
		switch blob.Kind {
		case kindConv:
			c := &QConv2D{
				InC: blob.InC, OutC: blob.OutC, K: blob.K, Stride: blob.Stride, Pad: blob.Pad,
				Depthwise: blob.Depthwise,
				W:         blob.W, Bias: blob.Bias,
				WScale: blob.WScale, InScale: blob.InScale,
			}
			if err := validateConv(c, qmax); err != nil {
				return nil, fmt.Errorf("quant: artifact layer %d: %w", i, err)
			}
			qn.layers = append(qn.layers, qlayer{conv: c})
		case kindDense:
			d := &QDense{
				In: blob.In, Out: blob.Out,
				W: blob.W, Bias: blob.Bias,
				WScale: blob.WScale, InScale: blob.InScale,
			}
			if err := validateDense(d, qmax); err != nil {
				return nil, fmt.Errorf("quant: artifact layer %d: %w", i, err)
			}
			qn.layers = append(qn.layers, qlayer{dense: d})
		case kindReLU:
			qn.layers = append(qn.layers, qlayer{relu: true})
		case kindPool:
			qn.layers = append(qn.layers, qlayer{pool: true})
		case kindGAP:
			qn.layers = append(qn.layers, qlayer{gap: true})
		case kindFlat:
			qn.layers = append(qn.layers, qlayer{flat: true})
		default:
			return nil, fmt.Errorf("quant: artifact layer %d has unknown kind %q", i, blob.Kind)
		}
	}
	return qn, nil
}

// LoadFile reconstructs a quantized model saved by SaveFile (or Save)
// from path.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("quant: loading artifact: %w", err)
	}
	defer f.Close()
	return Load(f)
}

func validateConv(c *QConv2D, qmax int) error {
	if c.InC < 1 || c.OutC < 1 || c.K < 1 || c.Stride < 1 || c.Pad < 0 {
		return fmt.Errorf("conv geometry %dx%d k=%d s=%d p=%d invalid", c.InC, c.OutC, c.K, c.Stride, c.Pad)
	}
	wc := c.InC
	if c.Depthwise {
		if c.InC != c.OutC {
			return fmt.Errorf("depthwise conv with InC %d != OutC %d", c.InC, c.OutC)
		}
		wc = 1
	}
	if want := c.OutC * wc * c.K * c.K; len(c.W) != want {
		return fmt.Errorf("conv carries %d weights, want %d", len(c.W), want)
	}
	if len(c.Bias) != c.OutC {
		return fmt.Errorf("conv carries %d biases, want %d", len(c.Bias), c.OutC)
	}
	if err := validateWeightRange(c.W, qmax); err != nil {
		return err
	}
	return validateScales(c.WScale, c.InScale)
}

func validateDense(d *QDense, qmax int) error {
	if d.In < 1 || d.Out < 1 {
		return fmt.Errorf("dense geometry %dx%d invalid", d.In, d.Out)
	}
	if want := d.Out * d.In; len(d.W) != want {
		return fmt.Errorf("dense carries %d weights, want %d", len(d.W), want)
	}
	if len(d.Bias) != d.Out {
		return fmt.Errorf("dense carries %d biases, want %d", len(d.Bias), d.Out)
	}
	if err := validateWeightRange(d.W, qmax); err != nil {
		return err
	}
	return validateScales(d.WScale, d.InScale)
}

// validateWeightRange enforces the hardware contract |w| <= 2^B - 1
// (Quantize clamps to it): a SCONNA engine rejects out-of-range
// operands with a panic at request time, so an over-range artifact must
// die here at load, never inside a serving worker.
func validateWeightRange(w []int, qmax int) error {
	for i, v := range w {
		if v > qmax || v < -qmax {
			return fmt.Errorf("weight %d is %d, outside the %d-bit magnitude range [-%d, %d]",
				i, v, bitsFor(qmax), qmax, qmax)
		}
	}
	return nil
}

// bitsFor recovers B from qmax = 2^B - 1 for error messages.
func bitsFor(qmax int) int {
	b := 0
	for v := qmax; v > 0; v >>= 1 {
		b++
	}
	return b
}

func validateScales(wScale, inScale float32) error {
	for _, s := range []float32{wScale, inScale} {
		if !(s > 0) || math.IsInf(float64(s), 0) {
			return fmt.Errorf("scale %v outside (0, +Inf)", s)
		}
	}
	return nil
}
