package quant

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// tinyNetFixture holds the package's one-time trained network: every test
// needing a trained model shares it instead of retraining (the training
// run dominates this package's test time). -short shrinks the run; tests
// relax convergence-dependent assertions accordingly.
var tinyNetFixture struct {
	once  sync.Once
	net   *nn.Network
	train []nn.Example
	test  []nn.Example
}

func trainTinyNet(t testing.TB) (*nn.Network, []nn.Example, []nn.Example) {
	t.Helper()
	tinyNetFixture.once.Do(func() {
		n, epochs := 240, 10
		if testing.Short() {
			n, epochs = 120, 4
		}
		cfg := dataset.DefaultConfig()
		ex := dataset.Generate(cfg, n)
		train, test := dataset.Split(ex, 0.25)
		net := nn.BuildSmallCNN(4, dataset.NumClasses, 11)
		net.Train(train, epochs, 16, nn.SGD{LR: 0.05, Momentum: 0.9}, rand.New(rand.NewSource(11)))
		tinyNetFixture.net, tinyNetFixture.train, tinyNetFixture.test = net, train, test
	})
	return tinyNetFixture.net, tinyNetFixture.train, tinyNetFixture.test
}

func TestExactEngine(t *testing.T) {
	e := ExactEngine{}
	if e.Dot([]int{1, 2, 3}, []int{4, -5, 6}) != 12 {
		t.Fatal("exact dot broken")
	}
	if e.Name() != "exact" {
		t.Fatal("name broken")
	}
}

func TestQuantizeRejectsBadBits(t *testing.T) {
	net := nn.BuildSmallCNN(4, 8, 1)
	if _, err := Quantize(net, 1, nil); err == nil {
		t.Fatal("expected error for 1-bit")
	}
	if _, err := Quantize(net, 9, nil); err == nil {
		t.Fatal("expected error for 9-bit")
	}
}

func TestQuantizeSignedClamps(t *testing.T) {
	w := []float32{-10, -1, 0, 1, 10}
	q := quantizeSigned(w, 1, 5)
	want := []int{-5, -1, 0, 1, 5}
	for i := range q {
		if q[i] != want[i] {
			t.Fatalf("q=%v want %v", q, want)
		}
	}
}

func TestQuantizeActsClampsNonNegative(t *testing.T) {
	x := []float32{-1, 0, 0.5, 2}
	q := quantizeActs(nil, x, 1.0/255, 255)
	if q[0] != 0 || q[1] != 0 || (q[2] != 127 && q[2] != 128) || q[3] != 255 {
		t.Fatalf("q=%v", q)
	}
}

// 8-bit exact-integer quantization should track the float network closely
// on a trained model (the premise of the paper's "integer-quantized CNN"
// setting).
func TestQuantizedMatchesFloat(t *testing.T) {
	net, train, test := trainTinyNet(t)
	qn, err := Quantize(net, 8, train[:32])
	if err != nil {
		t.Fatal(err)
	}
	if qn.NumWeights() == 0 {
		t.Fatal("no quantized weights")
	}
	floatTop1, _ := net.Evaluate(test, 5)
	qTop1, qTop5 := qn.Evaluate(test, 5, ExactEngine{})
	if qTop5 < qTop1 {
		t.Fatal("top5 < top1")
	}
	// The short tier's barely-trained net sits nearer decision boundaries,
	// so int8 rounding flips more predictions; the mechanism under test is
	// the same.
	tol := 0.08
	if testing.Short() {
		tol = 0.20
	}
	if math.Abs(floatTop1-qTop1) > tol {
		t.Fatalf("8-bit quantization drop too large: float %.3f vs int8 %.3f", floatTop1, qTop1)
	}
}

// The SCONNA engine with ideal ADC must agree with the exact engine to
// within the one-bit-per-lane stream quantization — i.e. logits nearly
// identical, accuracy essentially unchanged.
func TestSconnaIdealADCCloseToExact(t *testing.T) {
	net, train, test := trainTinyNet(t)
	qn, err := Quantize(net, 8, train[:32])
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.DefaultConfig()
	ccfg.N = 64
	ccfg.M = 1
	ccfg.IdealADC = true
	eng, err := NewSconnaEngine(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	exact1, _ := qn.Evaluate(test[:24], 5, ExactEngine{})
	sc1, _ := qn.Evaluate(test[:24], 5, eng)
	if math.Abs(exact1-sc1) > 0.13 {
		t.Fatalf("ideal-ADC SCONNA drop too large: %.3f vs %.3f", exact1, sc1)
	}
}

func TestSconnaEngineChunks(t *testing.T) {
	ccfg := core.DefaultConfig()
	ccfg.N = 16
	ccfg.M = 1
	eng, err := NewSconnaEngine(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Chunks(16) != 1 || eng.Chunks(17) != 2 || eng.Chunks(160) != 10 {
		t.Fatal("chunking broken")
	}
	if eng.Name() != "sconna" {
		t.Fatal("name broken")
	}
	ccfg.IdealADC = true
	eng2, _ := NewSconnaEngine(ccfg)
	if eng2.Name() != "sconna-ideal-adc" {
		t.Fatal("ideal name broken")
	}
}

// Property-style check: a single quantized conv layer through the SCONNA
// engine agrees with the exact engine within the stream error bound.
func TestSconnaDotWithinBound(t *testing.T) {
	ccfg := core.DefaultConfig()
	ccfg.N = 32
	ccfg.M = 1
	ccfg.IdealADC = true
	eng, err := NewSconnaEngine(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(100)
		div := make([]int, k)
		dkv := make([]int, k)
		for i := range div {
			div[i] = rng.Intn(256)
			dkv[i] = rng.Intn(511) - 255
		}
		got := eng.Dot(div, dkv)
		want := ExactEngine{}.Dot(div, dkv)
		if math.Abs(float64(got-want)) > float64(k*256) {
			t.Fatalf("k=%d got %d want %d", k, got, want)
		}
	}
}

func TestForwardShapes(t *testing.T) {
	net := nn.BuildSmallCNN(4, 8, 3)
	cal := []nn.Example{{X: tensor.New(1, 16, 16), Label: 0}}
	cal[0].X.Fill(0.5)
	qn, err := Quantize(net, 8, cal)
	if err != nil {
		t.Fatal(err)
	}
	out := qn.Forward(cal[0].X, ExactEngine{})
	if out.Len() != 8 {
		t.Fatalf("logit count %d want 8", out.Len())
	}
}

func TestQuantizeDepthwiseNet(t *testing.T) {
	net := nn.BuildDepthwiseCNN(4, 8, 3)
	cal := []nn.Example{{X: tensor.New(1, 16, 16), Label: 0}}
	cal[0].X.Fill(0.3)
	qn, err := Quantize(net, 8, cal)
	if err != nil {
		t.Fatal(err)
	}
	out := qn.Forward(cal[0].X, ExactEngine{})
	if out.Len() != 8 {
		t.Fatalf("logit count %d want 8", out.Len())
	}
}
