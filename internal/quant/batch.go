package quant

import (
	"fmt"

	"repro/internal/matmul"
	"repro/internal/opcount"
	"repro/internal/tensor"
)

// BatchScratch holds the reusable buffers of a batched inference stream:
// one Scratch per example slot (quantized activations and DIV gathers are
// per-example state) plus a shared weight-gather buffer, which is where
// the batch amortization lives — each layer's DKV vectors are gathered
// once per micro-batch instead of once per example.
//
// Ownership follows the same rule as Scratch: one BatchScratch per
// serving goroutine, never shared. The serving plane pairs one with each
// pooled engine.
type BatchScratch struct {
	per    []*Scratch
	dkv    []int
	xs     []*tensor.T
	sparse []bool // per-example sparse-path flags for the current layer

	// Ops, when non-nil, receives per-layer op tallies aggregated over
	// the whole micro-batch; nil costs one branch per layer. Safe to
	// share one atomic Recorder across a serving pool's scratches.
	Ops *opcount.Recorder
}

// NewBatchScratch returns an empty batch scratch; buffers grow on first
// use and are retained across calls.
func NewBatchScratch() *BatchScratch { return &BatchScratch{} }

// slots returns n per-example scratches, growing the pool as needed.
func (s *BatchScratch) slots(n int) []*Scratch {
	for len(s.per) < n {
		s.per = append(s.per, NewScratch())
	}
	return s.per[:n]
}

// ForwardBatch runs quantized inference over a micro-batch of examples,
// which must all share one input shape. It returns one fresh logits
// tensor per example.
//
// engines selects the dot-product substrate: a single engine serves the
// whole batch (throughput serving — a stateful engine then realizes one
// noise stream across the interleaved batch, deterministic in the batch
// composition but not equal to serving the examples one by one), or one
// engine per example (len(engines) == len(xs), deterministic serving).
// In the per-example form each engine observes exactly the call sequence
// ForwardScratch would issue for its example — same operand vectors,
// same (layer, output-channel, pixel) order — so the logits are
// bit-identical to running that example alone through its engine
// (pinned by the batch equivalence tests).
//
// Compared with per-example ForwardScratch calls, one batched pass
// gathers each layer's weight vectors (DKV) once per micro-batch instead
// of once per example, which is the PR 3 follow-on amortization that the
// serving plane's micro-batcher exploits.
func (q *Network) ForwardBatch(xs []*tensor.T, engines []DotEngine, s *BatchScratch) []*tensor.T {
	if len(xs) == 0 {
		return nil
	}
	if len(engines) != 1 && len(engines) != len(xs) {
		panic(fmt.Sprintf("quant: ForwardBatch needs 1 or %d engines, got %d", len(xs), len(engines)))
	}
	for _, x := range xs[1:] {
		if !sameShape(x.Shape, xs[0].Shape) {
			panic(fmt.Sprintf("quant: ForwardBatch input shapes differ: %v vs %v", x.Shape, xs[0].Shape))
		}
	}
	if s == nil {
		s = NewBatchScratch()
	}
	eng := func(e int) DotEngine {
		if len(engines) == 1 {
			return engines[0]
		}
		return engines[e]
	}
	qmax := int(1)<<uint(q.Bits) - 1
	per := s.slots(len(xs))
	if cap(s.xs) < len(xs) {
		s.xs = make([]*tensor.T, len(xs))
	}
	cur := s.xs[:len(xs)]
	copy(cur, xs)
	owned := false // whether cur holds our tensors (not the caller's inputs)
	for li, l := range q.layers {
		switch {
		case l.conv != nil:
			l.conv.forwardBatch(cur, eng, qmax, per, s, li)
			owned = true
		case l.dense != nil:
			l.dense.forwardBatch(cur, eng, qmax, per, s, li)
			owned = true
		case l.relu:
			for e, x := range cur {
				if !owned {
					x = x.Clone()
					cur[e] = x
				}
				reluInPlace(x)
			}
			owned = true
			recordElt(s.Ops, li, reluOps(len(cur)*cur[0].Len()))
		case l.pool:
			for e, x := range cur {
				cur[e] = poolHalf(x)
			}
			owned = true
			recordElt(s.Ops, li, poolOps(len(cur)*cur[0].Len()))
		case l.gap:
			hw := cur[0].Shape[1] * cur[0].Shape[2]
			for e, x := range cur {
				cur[e] = gapPool(x)
			}
			owned = true
			recordElt(s.Ops, li, gapOps(len(cur)*cur[0].Len(), hw))
		case l.flat:
			for e, x := range cur {
				cur[e] = x.Reshape(x.Len()) // aliases: ownership carries
			}
		}
	}
	out := make([]*tensor.T, len(cur))
	copy(out, cur)
	for i := range cur {
		cur[i] = nil // don't pin the returned logits to the scratch
	}
	return out
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// forwardBatch is the batched counterpart of forward. The loop nests are
// arranged so that (a) every DKV gather is shared across the batch and
// (b) for each example the engine-facing call order is exactly the
// serial one — (output channel, pixel) lexicographic — which is what
// keeps per-example engines bit-identical to ForwardScratch.
//
// Sparsity gating is per example: an example whose engine opts in
// (ZeroSkipper) and whose quantized input clears worthSparse runs the
// compacted path, gathering its own (shorter) operand vectors, while the
// other examples keep the shared dense DKV gathers. Each example's
// (oc, pixel) call order is identical on both paths, so mixed batches
// stay bit-identical to per-example serial inference.
func (c *QConv2D) forwardBatch(xs []*tensor.T, eng func(int) DotEngine, qmax int, per []*Scratch, bs *BatchScratch, li int) {
	h, w := xs[0].Shape[1], xs[0].Shape[2]
	hw := h * w
	pos := matmul.Positions(h, w, c.K, c.Stride, c.Pad)
	oh, ow := pos.OutH, pos.OutW
	npix := oh * ow
	k2 := c.K * c.K

	outs := make([]*tensor.T, len(xs))
	if cap(bs.sparse) < len(xs) {
		bs.sparse = make([]bool, len(xs))
	}
	sp := bs.sparse[:len(xs)]
	anyDense, nSparse, nnzSparse := false, 0, 0
	segC := c.InC // compacted segments per pixel (depthwise included)
	for e := range xs {
		per[e].qx = quantizeActs(per[e].qx, xs[e].Data, c.InScale, qmax)
		outs[e] = tensor.New(c.OutC, oh, ow)
		sp[e] = skipsZeros(eng(e)) && worthSparse(per[e].qx)
		if sp[e] {
			gatherSparse(pos, per[e], segC, hw, k2)
			nSparse++
			nnzSparse += per[e].sseg[npix*segC]
		} else {
			anyDense = true
		}
	}
	if bs.Ops != nil {
		nin := len(xs[0].Data)
		if n := len(xs) - nSparse; n > 0 {
			c.recordOps(bs.Ops, li, uint64(pos.NumOffs()), nin, npix, n, -1)
		}
		if nSparse > 0 {
			c.recordOps(bs.Ops, li, uint64(pos.NumOffs()), nin, npix, nSparse, nnzSparse)
		}
	}

	if c.Depthwise {
		// DKV depends only on (oc, pixel); gather it once per batch and
		// reuse across the dense examples. Pixel outer of example keeps
		// the per-example call order at (oc, pix).
		for oc := 0; oc < c.OutC; oc++ {
			kbase := oc * k2
			for pix := 0; pix < npix; pix++ {
				offs, kks := pos.At(pix)
				n := len(offs)
				if anyDense {
					bs.dkv = growInts(bs.dkv, n)
					for i, k := range kks {
						bs.dkv[i] = c.W[kbase+k]
					}
				}
				for e := range xs {
					s := per[e]
					var acc int
					if sp[e] {
						acc = c.sparseDotDW(eng(e), s, pix, oc)
					} else {
						qc := s.qx[oc*hw : (oc+1)*hw]
						s.div = growInts(s.div, n)
						for i, o := range offs {
							s.div[i] = qc[o]
						}
						acc = eng(e).Dot(s.div, bs.dkv[:n])
					}
					outs[e].Data[oc*npix+pix] = float32(acc)*c.InScale*c.WScale + c.Bias[oc]
				}
			}
		}
		copy(xs, outs)
		return
	}

	ksz := c.InC * k2
	// Per-example integer im2col for the dense examples: every pixel's
	// DIV vector gathered once, exactly as the serial lowering does (the
	// sparse examples gathered their compacted structure above).
	for e := range xs {
		if sp[e] {
			continue
		}
		s := per[e]
		s.ds = growInts(s.ds, npix+1)
		need := 0
		for pix := 0; pix < npix; pix++ {
			s.ds[pix] = need
			lo, _ := pos.At(pix)
			need += len(lo) * c.InC
		}
		s.ds[npix] = need
		s.div = growInts(s.div, need)
		for pix := 0; pix < npix; pix++ {
			offs, _ := pos.At(pix)
			p := s.ds[pix]
			for ic := 0; ic < c.InC; ic++ {
				qc := s.qx[ic*hw:]
				for _, o := range offs {
					s.div[p] = qc[o]
					p++
				}
			}
		}
	}
	for oc := 0; oc < c.OutC; oc++ {
		kbase := oc * ksz
		if pos.Full() {
			// One contiguous weight row serves every dense (example,
			// pixel) of this output channel.
			if anyDense {
				bs.dkv = growInts(bs.dkv, ksz)
				copy(bs.dkv[:ksz], c.W[kbase:kbase+ksz])
			}
			for e := range xs {
				s := per[e]
				orow := outs[e].Data[oc*npix:]
				if sp[e] {
					for pix := 0; pix < npix; pix++ {
						acc := c.sparseDot(eng(e), s, kbase, pix)
						orow[pix] = float32(acc)*c.InScale*c.WScale + c.Bias[oc]
					}
					continue
				}
				dkv := bs.dkv[:ksz]
				for pix := 0; pix < npix; pix++ {
					acc := eng(e).Dot(s.div[s.ds[pix]:s.ds[pix+1]], dkv)
					orow[pix] = float32(acc)*c.InScale*c.WScale + c.Bias[oc]
				}
			}
			continue
		}
		for pix := 0; pix < npix; pix++ {
			_, kks := pos.At(pix)
			n := len(kks) * c.InC
			if anyDense {
				bs.dkv = growInts(bs.dkv, n)
				p := 0
				for ic := 0; ic < c.InC; ic++ {
					wseg := c.W[kbase+ic*k2:]
					for _, k := range kks {
						bs.dkv[p] = wseg[k]
						p++
					}
				}
			}
			for e := range xs {
				s := per[e]
				var acc int
				if sp[e] {
					acc = c.sparseDot(eng(e), s, kbase, pix)
				} else {
					acc = eng(e).Dot(s.div[s.ds[pix]:s.ds[pix+1]], bs.dkv[:n])
				}
				outs[e].Data[oc*npix+pix] = float32(acc)*c.InScale*c.WScale + c.Bias[oc]
			}
		}
	}
	copy(xs, outs)
}

// forwardBatch gathers each output row's weight vector once per batch;
// per-example call order stays (output) ascending, the serial order.
func (d *QDense) forwardBatch(xs []*tensor.T, eng func(int) DotEngine, qmax int, per []*Scratch, bs *BatchScratch, li int) {
	d.recordOps(bs.Ops, li, len(xs))
	outs := make([]*tensor.T, len(xs))
	for e := range xs {
		per[e].qx = quantizeActs(per[e].qx, xs[e].Data, d.InScale, qmax)
		outs[e] = tensor.New(d.Out)
	}
	bs.dkv = growInts(bs.dkv, d.In)
	dkv := bs.dkv[:d.In]
	for o := 0; o < d.Out; o++ {
		copy(dkv, d.W[o*d.In:(o+1)*d.In])
		for e := range xs {
			acc := eng(e).Dot(per[e].qx, dkv)
			outs[e].Data[o] = float32(acc)*d.InScale*d.WScale + d.Bias[o]
		}
	}
	copy(xs, outs)
}
