package quant

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/parallel"
)

// EngineFactory builds the DotEngine that evaluates one shard of a
// batched-inference run. Stateful engines (SconnaEngine owns a core.VDPC
// whose ADC noise streams advance per dot product — it must never be
// shared across goroutines) get one instance per shard, keyed off the
// shard index so the realized noise depends only on the shard partition,
// never on worker count or scheduling.
type EngineFactory func(shard int) (DotEngine, error)

// SharedEngine adapts a stateless engine (e.g. ExactEngine) into a
// factory handing every shard the same instance. The engine must be safe
// for concurrent use; the integer engines here hold no state at all.
func SharedEngine(e DotEngine) EngineFactory {
	return func(int) (DotEngine, error) { return e, nil }
}

// SconnaEngineFactory returns a factory building one SCONNA functional
// engine per shard. Each shard's VDPC draws its ADC noise from a seed
// deterministically derived from cfg.ADCSeed and the shard index, so a
// parallel evaluation realizes the same noise streams for any worker
// count — including one.
func SconnaEngineFactory(cfg core.Config) EngineFactory {
	return func(shard int) (DotEngine, error) {
		scfg := cfg
		scfg.ADCSeed = cfg.ADCSeed + int64(shard)*1000003
		return NewSconnaEngine(scfg)
	}
}

// EvalShardSize is the number of examples evaluated per engine shard. It
// is a fixed property of the evaluation (not of the machine) so that the
// shard partition — and with it every stateful engine's noise stream —
// is identical on every host and at every worker count.
const EvalShardSize = 16

// evaluateBlock pushes examples through engine serially, returning the
// top-1 and top-k hit counts. Both the serial Evaluate and each parallel
// shard run through this one code path. The scratch buffers are created
// here — one per block, next to the engine they serve — so a stateful
// engine and its scratch share the same single-goroutine ownership.
func (q *Network) evaluateBlock(examples []nn.Example, k int, engine DotEngine) (c1, ck int) {
	scratch := NewScratch()
	for _, ex := range examples {
		logits := q.ForwardScratch(ex.X, engine, scratch)
		if logits.ArgMax() == ex.Label {
			c1++
		}
		lv := logits.Data[ex.Label]
		higher := 0
		for i, v := range logits.Data {
			if i != ex.Label && v > lv {
				higher++
			}
		}
		if higher < k {
			ck++
		}
	}
	return c1, ck
}

// EvaluateParallel returns top-1 and top-k accuracy of quantized
// inference over the examples, fanning fixed-size example shards across a
// bounded worker pool with one factory-built engine per shard. Hit counts
// merge by integer summation, so the result is bit-identical to running
// the shards serially in order (workers=1) for any worker count; workers
// <= 0 selects GOMAXPROCS, the convention every runner in the tree
// shares (accel.Runner, scalability.Runner, nn.TrainParallel).
func (q *Network) EvaluateParallel(examples []nn.Example, k int, factory EngineFactory, workers int) (top1, topk float64, err error) {
	if len(examples) == 0 {
		return 0, 0, nil
	}
	// Resolve here rather than leaning on ForEach's default, so the
	// GOMAXPROCS convention is this function's contract (pinned by the
	// worker-default table test), not an implementation detail below it.
	workers = parallel.Workers(workers)
	spans := parallel.Spans(len(examples), EvalShardSize)
	c1s := make([]int, len(spans))
	cks := make([]int, len(spans))
	err = parallel.ForEach(workers, len(spans), func(s int) error {
		engine, ferr := factory(s)
		if ferr != nil {
			return fmt.Errorf("quant: building engine for shard %d: %w", s, ferr)
		}
		c1s[s], cks[s] = q.evaluateBlock(examples[spans[s].Lo:spans[s].Hi], k, engine)
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	c1, ck := 0, 0
	for s := range spans {
		c1 += c1s[s]
		ck += cks[s]
	}
	return float64(c1) / float64(len(examples)), float64(ck) / float64(len(examples)), nil
}
