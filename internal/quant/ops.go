package quant

import "repro/internal/opcount"

// OpRecorder builds an op-accounting Recorder shaped for this network:
// one slot per layer, named by layer kind. Attach it to a Scratch or
// BatchScratch (Ops field) to have the lowered forward paths tally the
// dense-equivalent and executed op counts of every layer; leave Ops nil
// and the hot path pays one branch per layer.
func (q *Network) OpRecorder() *opcount.Recorder {
	names := make([]string, len(q.layers))
	for i, l := range q.layers {
		names[i] = l.kind()
	}
	return opcount.NewRecorder(names)
}

// matCounts prices a quantize-gather-dot-dequantize layer under the
// opcount convention: t dot lanes (t muls, t adds, 2t reads), nin input
// elements quantized (1 mul, 1 read, 1 write each), nout output elements
// produced (1 dequant mul, 1 bias add, 1 write each).
func matCounts(t, nin, nout uint64) opcount.Counts {
	return opcount.Counts{
		Mul: t + nin + nout,
		Add: t + nout,
		Rd:  2*t + nin,
		Wr:  nin + nout,
	}
}

// eltCounts prices an engine-free elementwise/pooling layer.
func eltCounts(add, rd, mul, wr uint64) opcount.Counts {
	return opcount.Counts{Mul: mul, Add: add, Rd: rd, Wr: wr}
}

// recordElt tallies an engine-free layer (ReLU, pool, GAP) whose
// executed work never differs from the dense-equivalent work.
func recordElt(ops *opcount.Recorder, li int, c opcount.Counts) {
	if ops != nil {
		ops.Record(li, c, c)
	}
}

// reluOps prices in-place ReLU over n elements: one comparison (add),
// one read, one write each.
func reluOps(n int) opcount.Counts {
	u := uint64(n)
	return eltCounts(u, u, 0, u)
}

// poolOps prices 2x2 stride-2 max pooling producing m output elements:
// three comparisons and four reads per window, one write per output.
func poolOps(m int) opcount.Counts {
	u := uint64(m)
	return eltCounts(3*u, 4*u, 0, u)
}

// gapOps prices global average pooling over c channels of hw elements:
// hw accumulating adds and reads per channel, one scaling multiply and
// one write per channel.
func gapOps(c, hw int) opcount.Counts {
	u, v := uint64(c), uint64(hw)
	return eltCounts(u*v, u*v, u, u)
}

// dotLanes returns this convolution's dense-equivalent dot-lane count
// given totalOffs in-bounds window positions per channel.
func (c *QConv2D) dotLanes(totalOffs uint64) uint64 {
	if c.Depthwise {
		return uint64(c.OutC) * totalOffs
	}
	return uint64(c.OutC) * uint64(c.InC) * totalOffs
}

// recordOps tallies one conv layer execution for n examples sharing the
// patch geometry. nnz < 0 means those examples ran the dense path (exec
// == dense); otherwise nnz is their summed compacted entry count, which
// the sparse path reduces the dot-lane workload to (each pixel's
// compacted run is reused by every output channel; a depthwise segment
// belongs to exactly one).
func (c *QConv2D) recordOps(ops *opcount.Recorder, li int, totalOffs uint64, nin, npix, n, nnz int) {
	if ops == nil {
		return
	}
	tDense := uint64(n) * c.dotLanes(totalOffs)
	tExec := tDense
	if nnz >= 0 {
		if c.Depthwise {
			tExec = uint64(nnz)
		} else {
			tExec = uint64(c.OutC) * uint64(nnz)
		}
	}
	nio, nout := uint64(n)*uint64(nin), uint64(n)*uint64(c.OutC)*uint64(npix)
	dense := matCounts(tDense, nio, nout)
	exec := dense
	if tExec != tDense {
		exec = matCounts(tExec, nio, nout)
	}
	ops.Record(li, dense, exec)
}

// recordOps tallies n dense-layer executions (the fully-connected layer
// has no sparse variant: exec == dense).
func (d *QDense) recordOps(ops *opcount.Recorder, li, n int) {
	if ops == nil {
		return
	}
	t := uint64(n) * uint64(d.In) * uint64(d.Out)
	cts := matCounts(t, uint64(n)*uint64(d.In), uint64(n)*uint64(d.Out))
	ops.Record(li, cts, cts)
}
