package quant_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/sckernel"
	"repro/internal/tensor"
)

// TestPackedIdealZeroSkipper pins the packed tier's capability claim:
// only the ideal-ADC configuration opts into the sparse path (a noisy
// ADC advances its RNG per chunk and needs the dense call sequence).
func TestPackedIdealZeroSkipper(t *testing.T) {
	t.Parallel()
	ideal := crossCfg(8)
	eIdeal, err := sckernel.New(ideal)
	if err != nil {
		t.Fatal(err)
	}
	var zs quant.ZeroSkipper = eIdeal
	if !zs.SkipsZeros() {
		t.Fatal("ideal-ADC packed engine must skip zeros")
	}
	noisy := ideal
	noisy.IdealADC = false
	eNoisy, err := sckernel.New(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if eNoisy.SkipsZeros() {
		t.Fatal("noisy-ADC packed engine must not skip zeros")
	}
}

// TestPackedIdealSparseBitIdentical runs the ideal-ADC packed engine —
// which opts into zero skipping — against the dense naive reference over
// the sparsity tier: the compacted operand vectors shorten the chunk
// decomposition, yet every logit must stay bit-identical, which is
// exactly the ZeroSkipper exactness claim (lane-local floor arithmetic,
// seam-independent ideal conversion, capacity check monotone in lanes).
func TestPackedIdealSparseBitIdentical(t *testing.T) {
	t.Parallel()
	cfg := crossCfg(8) // N=5: every conv dot chunks, sparse rechunking is real
	qn, err := quant.Quantize(nn.BuildSmallCNN(2, 4, 57), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(58))
	for _, sp := range []float64{0, 0.5, 0.9, 1.0} {
		x := tensor.New(1, 8, 8)
		for i := range x.Data {
			if rng.Float64() >= sp {
				x.Data[i] = 0.5 + 0.5*rng.Float32()
			}
		}
		eng, err := sckernel.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		refEng, err := sckernel.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := qn.ForwardNaive(x, refEng)
		got := qn.Forward(x, eng)
		for i := range want.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("sp=%.1f logit[%d]: sparse %v dense %v", sp, i, got.Data[i], want.Data[i])
			}
		}
	}
}
