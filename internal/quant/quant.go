// Package quant provides post-training integer quantization of the
// nn substrate and quantized inference with pluggable dot-product engines,
// so the same quantized network can run on exact integer arithmetic (the
// paper's baseline accelerators) or through the SCONNA functional core
// (stochastic streams + PCA + ADC error), which is how the Table V
// accuracy-drop study is produced.
//
// The scheme matches the paper's hardware contract: activations are
// unsigned B-bit integers (bit-stream I carries no sign because inputs are
// post-ReLU), weights are sign-magnitude with B-bit magnitudes (bit-stream
// W carries a separate sign bit steering the filter MRRs).
package quant

import (
	"fmt"
	"math"

	"repro/internal/matmul"
	"repro/internal/nn"
	"repro/internal/opcount"
	"repro/internal/tensor"
)

// DotEngine computes integer dot products; implementations decide the
// arithmetic substrate.
type DotEngine interface {
	// Dot estimates sum_i div[i]*dkv[i], with div unsigned and dkv signed
	// integer values bounded by the engine's precision.
	Dot(div, dkv []int) int
	// Name labels the engine in reports.
	Name() string
}

// ExactEngine computes dot products with plain integer arithmetic — the
// reference for accuracy drops.
type ExactEngine struct{}

// Name implements DotEngine.
func (ExactEngine) Name() string { return "exact" }

// Dot implements DotEngine.
func (ExactEngine) Dot(div, dkv []int) int {
	s := 0
	for i := range div {
		s += div[i] * dkv[i]
	}
	return s
}

// QConv2D is an integer-quantized convolution.
type QConv2D struct {
	InC, OutC, K, Stride, Pad int
	Depthwise                 bool
	// W holds signed integer weights (sign + B-bit magnitude), laid out
	// as [OutC][WC][K][K] like the float layer.
	W []int
	// Bias stays in float (applied after dequantization, standard PTQ).
	Bias []float32
	// WScale dequantizes weights: w_float = w_int * WScale.
	WScale float32
	// InScale quantizes this layer's input activations.
	InScale float32
}

// QDense is an integer-quantized fully-connected layer.
type QDense struct {
	In, Out int
	W       []int // [Out][In]
	Bias    []float32
	WScale  float32
	InScale float32
}

// qlayer is a node of the quantized network. It holds no forward-pass
// state (pooling layers are instantiated per call), so a Network is safe
// for concurrent Forward calls as long as each goroutine brings its own
// DotEngine.
type qlayer struct {
	conv  *QConv2D
	dense *QDense
	relu  bool
	pool  bool
	gap   bool
	flat  bool
}

// Network is a quantized network executable on any DotEngine.
type Network struct {
	Bits   int
	layers []qlayer
}

// maxAbsOfParam returns the max |w| of a parameter tensor.
func maxAbsOfParam(t *tensor.T) float32 { return t.MaxAbs() }

// Quantize converts a trained float network into a quantized one with
// operand precision bits, calibrating per-layer activation scales over the
// calibration examples (max-abs calibration).
func Quantize(src *nn.Network, bits int, calibration []nn.Example) (*Network, error) {
	if bits < 2 || bits > 8 {
		return nil, fmt.Errorf("quant: unsupported precision %d", bits)
	}
	qmax := float32(int(1)<<uint(bits) - 1)

	// Calibration pass: record the max activation magnitude entering each
	// layer.
	maxIn := make([]float32, len(src.Layers))
	for _, ex := range calibration {
		x := ex.X
		for li, l := range src.Layers {
			m := x.MaxAbs()
			if m > maxIn[li] {
				maxIn[li] = m
			}
			x = l.Forward(x)
		}
	}
	for i := range maxIn {
		if maxIn[i] == 0 {
			maxIn[i] = 1
		}
	}

	qn := &Network{Bits: bits}
	for li, l := range src.Layers {
		switch v := l.(type) {
		case *nn.Conv2D:
			wScale := maxAbsOfParam(v.Wt.W) / qmax
			if wScale == 0 {
				wScale = 1
			}
			qc := &QConv2D{
				InC: v.InC, OutC: v.OutC, K: v.K, Stride: v.Stride, Pad: v.Pad,
				Depthwise: v.Depthwise,
				W:         quantizeSigned(v.Wt.W.Data, wScale, int(qmax)),
				Bias:      append([]float32(nil), v.Bias.W.Data...),
				WScale:    wScale,
				InScale:   maxIn[li] / qmax,
			}
			qn.layers = append(qn.layers, qlayer{conv: qc})
		case *nn.Dense:
			wScale := maxAbsOfParam(v.Wt.W) / qmax
			if wScale == 0 {
				wScale = 1
			}
			qd := &QDense{
				In: v.In, Out: v.Out,
				W:       quantizeSigned(v.Wt.W.Data, wScale, int(qmax)),
				Bias:    append([]float32(nil), v.Bias.W.Data...),
				WScale:  wScale,
				InScale: maxIn[li] / qmax,
			}
			qn.layers = append(qn.layers, qlayer{dense: qd})
		case *nn.ReLU:
			qn.layers = append(qn.layers, qlayer{relu: true})
		case *nn.MaxPool2:
			qn.layers = append(qn.layers, qlayer{pool: true})
		case *nn.GlobalAvgPool:
			qn.layers = append(qn.layers, qlayer{gap: true})
		case *nn.Flatten:
			qn.layers = append(qn.layers, qlayer{flat: true})
		default:
			return nil, fmt.Errorf("quant: unsupported layer %T", l)
		}
	}
	return qn, nil
}

func quantizeSigned(w []float32, scale float32, qmax int) []int {
	out := make([]int, len(w))
	for i, v := range w {
		q := int(math.Round(float64(v / scale)))
		if q > qmax {
			q = qmax
		}
		if q < -qmax {
			q = -qmax
		}
		out[i] = q
	}
	return out
}

// quantizeActs converts activations to unsigned integers in [0, qmax];
// negative values clamp to zero (activations are post-ReLU by contract).
// dst is reused when its capacity suffices.
func quantizeActs(dst []int, x []float32, scale float32, qmax int) []int {
	dst = growInts(dst, len(x))
	for i, v := range x {
		q := int(math.Round(float64(v / scale)))
		if q < 0 {
			q = 0
		}
		if q > qmax {
			q = qmax
		}
		dst[i] = q
	}
	return dst
}

// growInts resizes buf to n elements, reallocating only when capacity is
// short. Contents are unspecified.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// Scratch holds the reusable integer buffers of one quantized inference
// stream: the quantized activations, the gathered per-pixel operand
// vectors (DIV) and the weight-gather buffer (DKV). The SCONNA engine is
// stateful, so scratch follows the same ownership rule: one Scratch per
// DotEngine, never shared across goroutines. evaluateBlock allocates one
// per shard, which is what keeps EvaluateParallel -race clean.
type Scratch struct {
	qx  []int
	div []int // all pixels' gathered activations, flat
	ds  []int // per-pixel start offsets into div (npix+1)
	dkv []int

	// Column-compacted gather (sparse path): nonzero quantized
	// activations, their kernel slots, and per-(pixel, channel) segment
	// offsets. See gatherSparse.
	sval []int
	skk  []int
	sseg []int

	// Ops, when non-nil, receives per-layer op tallies (dense-equivalent
	// and executed) from the lowered forward path. The Recorder is
	// atomic and may be shared across scratches; nil costs one branch
	// per layer.
	Ops *opcount.Recorder
}

// NewScratch returns an empty scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// Forward runs quantized inference on x through engine and returns float
// logits, with a private one-shot scratch. For repeated inference (batch
// evaluation) use ForwardScratch with a reused Scratch to amortize the
// buffer allocations.
func (q *Network) Forward(x *tensor.T, engine DotEngine) *tensor.T {
	return q.ForwardScratch(x, engine, NewScratch())
}

// ForwardScratch is Forward with caller-owned scratch buffers. The
// scratch must be private to the engine's goroutine, like the engine
// itself.
//
// The engine-free layers run through inference-only kernels (poolHalf,
// gapPool, in-place ReLU on internally produced tensors) rather than the
// stateful nn training layers: the values are bit-identical — same
// comparisons, same accumulation order — but nothing caches backprop
// state and the serving hot path sheds the per-call clones and argmax
// allocations (pinned against ForwardNaive, which keeps the nn layers,
// by the equivalence tests).
func (q *Network) ForwardScratch(x *tensor.T, engine DotEngine, s *Scratch) *tensor.T {
	qmax := int(1)<<uint(q.Bits) - 1
	owned := false // whether x is ours to mutate (not the caller's input)
	for li, l := range q.layers {
		switch {
		case l.conv != nil:
			x = l.conv.forward(x, engine, qmax, s, li)
			owned = true
		case l.dense != nil:
			x = l.dense.forward(x, engine, qmax, s, li)
			owned = true
		case l.relu:
			if !owned {
				x = x.Clone()
				owned = true
			}
			reluInPlace(x)
			recordElt(s.Ops, li, reluOps(x.Len()))
		case l.pool:
			x = poolHalf(x)
			owned = true
			recordElt(s.Ops, li, poolOps(x.Len()))
		case l.gap:
			hw := x.Shape[1] * x.Shape[2]
			x = gapPool(x)
			owned = true
			recordElt(s.Ops, li, gapOps(x.Len(), hw))
		case l.flat:
			x = x.Reshape(x.Len()) // aliases: ownership carries over
		}
	}
	return x
}

func reluInPlace(x *tensor.T) {
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = 0
		}
	}
}

// poolHalf is the 2x2 stride-2 max pool of nn.MaxPool2 restricted to
// inference: same comparisons on the same values (bit-identical output),
// direct indexing, no argmax state.
func poolHalf(x *tensor.T) *tensor.T {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := h/2, w/2
	out := tensor.New(c, oh, ow)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			r0 := x.Data[(ch*h+oy*2)*w:]
			r1 := x.Data[(ch*h+oy*2+1)*w:]
			orow := out.Data[(ch*oh+oy)*ow:]
			for ox := 0; ox < ow; ox++ {
				bv := r0[ox*2]
				if v := r0[ox*2+1]; v > bv {
					bv = v
				}
				if v := r1[ox*2]; v > bv {
					bv = v
				}
				if v := r1[ox*2+1]; v > bv {
					bv = v
				}
				orow[ox] = bv
			}
		}
	}
	return out
}

// gapPool is nn.GlobalAvgPool restricted to inference: identical
// accumulation order, so the float result is bit-identical.
func gapPool(x *tensor.T) *tensor.T {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	out := tensor.New(c)
	for ch := 0; ch < c; ch++ {
		var s float32
		for _, v := range x.Data[ch*h*w : (ch+1)*h*w] {
			s += v
		}
		out.Data[ch] = s / float32(h*w)
	}
	return out
}

// ForwardNaive runs quantized inference through the reference
// per-output-pixel gather loops (the seed implementation, kept
// verbatim). The lowered path must reproduce it exactly — same operand
// vectors, same engine call order — so it anchors the equivalence and
// call-sequence tests and the naive leg of BenchmarkQuantForward.
func (q *Network) ForwardNaive(x *tensor.T, engine DotEngine) *tensor.T {
	qmax := int(1)<<uint(q.Bits) - 1
	for _, l := range q.layers {
		switch {
		case l.conv != nil:
			x = l.conv.forwardNaive(x, engine, qmax)
		case l.dense != nil:
			x = l.dense.forwardNaive(x, engine, qmax)
		case l.relu:
			x = x.Clone()
			for i, v := range x.Data {
				if v < 0 {
					x.Data[i] = 0
				}
			}
		case l.pool:
			x = (&nn.MaxPool2{}).Forward(x)
		case l.gap:
			x = (&nn.GlobalAvgPool{}).Forward(x)
		case l.flat:
			x = x.Reshape(x.Len())
		}
	}
	return x
}

// forward runs the lowered quantized convolution: the input is quantized
// once, each output pixel's in-bounds activation vector (DIV) is
// gathered once through the shared patch geometry (instead of once per
// output channel, as the naive loops do), and the weight vectors (DKV)
// gather through the same position lists.
//
// The lowering preserves the engine-facing contract exactly: operand
// vectors hold the same values in the same order (zero-padded positions
// compressed out, channels outermost), and Dot is called in the same
// output-channel-major order — so a stateful engine (the SCONNA VDPC
// advances its ADC noise stream per dot product) sees an identical call
// sequence and produces bit-identical results (asserted by the
// call-sequence equivalence test).
//
// When the engine opts in (ZeroSkipper) and the quantized input is
// sparse enough (worthSparse), the layer instead runs the
// column-compacted sparse path — bit-exact for such engines by the
// ZeroSkipper contract, and pinned sparse == dense by the equivalence
// tier. Engines that do not opt in always see the dense call sequence.
func (c *QConv2D) forward(x *tensor.T, engine DotEngine, qmax int, s *Scratch, li int) *tensor.T {
	h, w := x.Shape[1], x.Shape[2]
	hw := h * w
	pos := matmul.Positions(h, w, c.K, c.Stride, c.Pad)
	oh, ow := pos.OutH, pos.OutW
	npix := oh * ow
	k2 := c.K * c.K
	s.qx = quantizeActs(s.qx, x.Data, c.InScale, qmax)
	out := tensor.New(c.OutC, oh, ow)

	if skipsZeros(engine) && worthSparse(s.qx) {
		gatherSparse(pos, s, c.InC, hw, k2)
		c.forwardSparse(out.Data, engine, s, npix, k2)
		c.recordOps(s.Ops, li, uint64(pos.NumOffs()), len(x.Data), npix, 1, s.sseg[npix*c.InC])
		return out
	}
	c.recordOps(s.Ops, li, uint64(pos.NumOffs()), len(x.Data), npix, 1, -1)

	if c.Depthwise {
		// One channel per output channel: gather DIV/DKV per (oc, pixel)
		// through the position lists (no bounds checks, weight row
		// contiguous).
		for oc := 0; oc < c.OutC; oc++ {
			kbase := oc * k2
			qc := s.qx[oc*hw : (oc+1)*hw]
			orow := out.Data[oc*npix:]
			for pix := 0; pix < npix; pix++ {
				offs, kks := pos.At(pix)
				n := len(offs)
				s.div = growInts(s.div, n)
				s.dkv = growInts(s.dkv, n)
				for i, o := range offs {
					s.div[i] = qc[o]
					s.dkv[i] = c.W[kbase+kks[i]]
				}
				acc := engine.Dot(s.div, s.dkv)
				orow[pix] = float32(acc)*c.InScale*c.WScale + c.Bias[oc]
			}
		}
		return out
	}

	ksz := c.InC * k2
	// Gather every pixel's DIV vector once, reused across all output
	// channels — the integer im2col.
	s.ds = growInts(s.ds, npix+1)
	need := 0
	for pix := 0; pix < npix; pix++ {
		s.ds[pix] = need
		lo, _ := pos.At(pix)
		need += len(lo) * c.InC
	}
	s.ds[npix] = need
	s.div = growInts(s.div, need)
	for pix := 0; pix < npix; pix++ {
		offs, _ := pos.At(pix)
		p := s.ds[pix]
		for ic := 0; ic < c.InC; ic++ {
			qc := s.qx[ic*hw:]
			for _, o := range offs {
				s.div[p] = qc[o]
				p++
			}
		}
	}
	s.dkv = growInts(s.dkv, ksz)
	for oc := 0; oc < c.OutC; oc++ {
		kbase := oc * ksz
		orow := out.Data[oc*npix:]
		if pos.Full() {
			// No truncated windows anywhere: every pixel's DKV is the
			// full contiguous weight row — gather it once per channel.
			dkv := s.dkv[:ksz]
			copy(dkv, c.W[kbase:kbase+ksz])
			for pix := 0; pix < npix; pix++ {
				acc := engine.Dot(s.div[s.ds[pix]:s.ds[pix+1]], dkv)
				orow[pix] = float32(acc)*c.InScale*c.WScale + c.Bias[oc]
			}
			continue
		}
		for pix := 0; pix < npix; pix++ {
			_, kks := pos.At(pix)
			n := len(kks) * c.InC
			dkv := s.dkv[:n]
			p := 0
			for ic := 0; ic < c.InC; ic++ {
				wseg := c.W[kbase+ic*k2:]
				for _, k := range kks {
					dkv[p] = wseg[k]
					p++
				}
			}
			acc := engine.Dot(s.div[s.ds[pix]:s.ds[pix+1]], dkv)
			orow[pix] = float32(acc)*c.InScale*c.WScale + c.Bias[oc]
		}
	}
	return out
}

// forwardNaive is the seed implementation of the quantized convolution,
// kept verbatim as the lowering's reference.
func (c *QConv2D) forwardNaive(x *tensor.T, engine DotEngine, qmax int) *tensor.T {
	h, w := x.Shape[1], x.Shape[2]
	oh := (h+2*c.Pad-c.K)/c.Stride + 1
	ow := (w+2*c.Pad-c.K)/c.Stride + 1
	qx := quantizeActs(nil, x.Data, c.InScale, qmax)
	out := tensor.New(c.OutC, oh, ow)
	wc := c.InC
	if c.Depthwise {
		wc = 1
	}
	ksz := wc * c.K * c.K
	div := make([]int, 0, ksz)
	dkv := make([]int, 0, ksz)
	for oc := 0; oc < c.OutC; oc++ {
		kbase := oc * ksz
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				div = div[:0]
				dkv = dkv[:0]
				icLo, icHi := 0, c.InC
				if c.Depthwise {
					icLo, icHi = oc, oc+1
				}
				for ic := icLo; ic < icHi; ic++ {
					wci := ic - icLo
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride + ky - c.Pad
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride + kx - c.Pad
							wv := c.W[kbase+(wci*c.K+ky)*c.K+kx]
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue // zero-pad contributes nothing
							}
							div = append(div, qx[(ic*h+iy)*w+ix])
							dkv = append(dkv, wv)
						}
					}
				}
				acc := engine.Dot(div, dkv)
				out.Set(float32(acc)*c.InScale*c.WScale+c.Bias[oc], oc, oy, ox)
			}
		}
	}
	return out
}

func (d *QDense) forward(x *tensor.T, engine DotEngine, qmax int, s *Scratch, li int) *tensor.T {
	d.recordOps(s.Ops, li, 1)
	s.qx = quantizeActs(s.qx, x.Data, d.InScale, qmax)
	out := tensor.New(d.Out)
	s.dkv = growInts(s.dkv, d.In)
	for o := 0; o < d.Out; o++ {
		copy(s.dkv, d.W[o*d.In:(o+1)*d.In])
		acc := engine.Dot(s.qx, s.dkv)
		out.Data[o] = float32(acc)*d.InScale*d.WScale + d.Bias[o]
	}
	return out
}

func (d *QDense) forwardNaive(x *tensor.T, engine DotEngine, qmax int) *tensor.T {
	qx := quantizeActs(nil, x.Data, d.InScale, qmax)
	out := tensor.New(d.Out)
	dkv := make([]int, d.In)
	for o := 0; o < d.Out; o++ {
		copy(dkv, d.W[o*d.In:(o+1)*d.In])
		acc := engine.Dot(qx, dkv)
		out.Data[o] = float32(acc)*d.InScale*d.WScale + d.Bias[o]
	}
	return out
}

// Evaluate returns top-1 and top-k accuracy of quantized inference over
// the examples using engine, serially on the caller's goroutine. For
// concurrent evaluation with engine-per-shard isolation see
// EvaluateParallel.
func (q *Network) Evaluate(examples []nn.Example, k int, engine DotEngine) (top1, topk float64) {
	if len(examples) == 0 {
		return 0, 0
	}
	c1, ck := q.evaluateBlock(examples, k, engine)
	return float64(c1) / float64(len(examples)), float64(ck) / float64(len(examples))
}

// NumWeights returns the total quantized weight count.
func (q *Network) NumWeights() int {
	t := 0
	for _, l := range q.layers {
		if l.conv != nil {
			t += len(l.conv.W)
		}
		if l.dense != nil {
			t += len(l.dense.W)
		}
	}
	return t
}
