package mapper

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/tensor"
)

func TestConvGeometry(t *testing.T) {
	c := Conv{InC: 3, H: 8, W: 8, OutC: 4, K: 3, Stride: 1, Pad: 1}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.OutSize(8) != 8 {
		t.Fatal("same-pad out size")
	}
	if c.S() != 27 {
		t.Fatalf("S=%d want 27", c.S())
	}
	dw := Conv{InC: 4, H: 8, W: 8, OutC: 4, K: 3, Stride: 1, Pad: 1, Depthwise: true}
	if dw.S() != 9 {
		t.Fatalf("depthwise S=%d want 9", dw.S())
	}
}

func TestConvValidateErrors(t *testing.T) {
	bad := []Conv{
		{InC: 0, H: 4, W: 4, OutC: 1, K: 1, Stride: 1},
		{InC: 2, H: 4, W: 4, OutC: 3, K: 3, Stride: 1, Depthwise: true},
		{InC: 1, H: 2, W: 2, OutC: 1, K: 5, Stride: 1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestChunksPartition(t *testing.T) {
	f := func(rawS, rawN uint8) bool {
		s := int(rawS)%500 + 1
		n := int(rawN)%200 + 1
		chunks := Chunks(s, n)
		want := (s + n - 1) / n
		if len(chunks) != want {
			return false
		}
		covered := 0
		for i, ch := range chunks {
			if ch.Index != i || ch.Hi <= ch.Lo || ch.Hi-ch.Lo > n {
				return false
			}
			if ch.Lo != covered {
				return false
			}
			covered = ch.Hi
		}
		return covered == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanAssignmentsCoverEverything(t *testing.T) {
	c := Conv{InC: 16, H: 8, W: 8, OutC: 10, K: 3, Stride: 1, Pad: 1}
	p, err := NewPlan(c, 44, 8)
	if err != nil {
		t.Fatal(err)
	}
	// S=144 -> C=4 chunks; 10 kernels x 4 chunks = 40 assignments over 8
	// VDPEs -> 5 rounds.
	if p.ChunkCount() != 4 {
		t.Fatalf("C=%d want 4", p.ChunkCount())
	}
	if len(p.Assignments) != 40 {
		t.Fatalf("assignments=%d want 40", len(p.Assignments))
	}
	if p.Rounds != 5 {
		t.Fatalf("rounds=%d want 5", p.Rounds)
	}
	seen := map[[2]int]bool{}
	for _, a := range p.Assignments {
		key := [2]int{a.Kernel, a.Chunk.Index}
		if seen[key] {
			t.Fatalf("duplicate assignment %v", key)
		}
		seen[key] = true
		if a.VDPE < 0 || a.VDPE >= p.VDPEs || a.Round < 0 || a.Round >= p.Rounds {
			t.Fatalf("assignment out of range: %+v", a)
		}
		vd, rd, err := p.VDPEOf(a.Kernel, a.Chunk.Index)
		if err != nil || vd != a.VDPE || rd != a.Round {
			t.Fatalf("VDPEOf disagrees with plan: %+v vs (%d,%d)", a, vd, rd)
		}
	}
	if len(seen) != 40 {
		t.Fatal("missing assignments")
	}
	if _, _, err := p.VDPEOf(99, 0); err == nil {
		t.Fatal("expected range error")
	}
}

func TestPlanReplication(t *testing.T) {
	c := Conv{InC: 1, H: 8, W: 8, OutC: 2, K: 3, Stride: 1, Pad: 1}
	p, err := NewPlan(c, 44, 64) // 2 kernels x 1 chunk over 64 VDPEs
	if err != nil {
		t.Fatal(err)
	}
	if p.Replicas != 32 {
		t.Fatalf("replicas=%d want 32", p.Replicas)
	}
	if p.PsumsPerOutput() != 1 {
		t.Fatal("single chunk should need one psum")
	}
}

// End-to-end: extracting DIV/DKV chunks per the plan and computing them
// on a functional VDPE reproduces the exact convolution output (within
// stream quantization) after psum reduction.
func TestPlanComputesConvolution(t *testing.T) {
	conv := Conv{InC: 2, H: 5, W: 5, OutC: 3, K: 3, Stride: 1, Pad: 1}
	if err := conv.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	qx := make([]int, conv.InC*conv.H*conv.W)
	for i := range qx {
		qx[i] = rng.Intn(65)
	}
	qw := make([]int, conv.OutC*conv.InC*conv.K*conv.K)
	for i := range qw {
		qw[i] = rng.Intn(129) - 64
	}

	ccfg := core.DefaultConfig()
	ccfg.Bits = 6
	ccfg.N = 8 // force multi-chunk decomposition: S=18 -> C=3
	ccfg.IdealADC = true
	vdpe, err := core.NewVDPE(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(conv, ccfg.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ChunkCount() != 3 {
		t.Fatalf("C=%d want 3", plan.ChunkCount())
	}

	oy, ox := 2, 3
	for oc := 0; oc < conv.OutC; oc++ {
		div := conv.ExtractDIV(qx, oc, oy, ox)
		dkv := conv.ExtractDKV(qw, oc)
		if len(div) != conv.S() || len(dkv) != conv.S() {
			t.Fatal("extract sizes wrong")
		}
		// psum reduction over the plan's chunks.
		sum := 0
		for _, ch := range Chunks(conv.S(), ccfg.N) {
			res, err := vdpe.Dot(div[ch.Lo:ch.Hi], dkv[ch.Lo:ch.Hi])
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Est
		}
		exact := core.ExactDot(div, dkv)
		tol := float64(conv.S() * 64) // one stream bit per lane
		if d := float64(sum - exact); d > tol || d < -tol {
			t.Fatalf("kernel %d: sum=%d exact=%d", oc, sum, exact)
		}
	}
}

func TestExtractDIVZeroPads(t *testing.T) {
	conv := Conv{InC: 1, H: 3, W: 3, OutC: 1, K: 3, Stride: 1, Pad: 1}
	qx := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	div := conv.ExtractDIV(qx, 0, 0, 0) // top-left corner: 5 taps padded
	zeros := 0
	for _, v := range div {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 5 {
		t.Fatalf("corner window should have >=5 padded zeros, got %d (%v)", zeros, div)
	}
	if div[4] != 1 { // center tap maps to input (0,0)
		t.Fatalf("center tap %d want 1 (%v)", div[4], div)
	}
}

func TestExtractDIVDepthwise(t *testing.T) {
	conv := Conv{InC: 2, H: 2, W: 2, OutC: 2, K: 1, Stride: 1, Pad: 0, Depthwise: true}
	qx := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if got := conv.ExtractDIV(qx, 1, 0, 1); len(got) != 1 || got[0] != 6 {
		t.Fatalf("depthwise DIV=%v want [6]", got)
	}
}

func TestQuantizeActivations(t *testing.T) {
	x := tensor.FromSlice([]float32{-1, 0, 0.5, 3}, 4)
	q := QuantizeActivations(x, 1.0/255, 255)
	if q[0] != 0 || q[3] != 255 {
		t.Fatalf("q=%v", q)
	}
	if q[2] < 126 || q[2] > 129 {
		t.Fatalf("mid value %d", q[2])
	}
}

func TestNewPlanValidation(t *testing.T) {
	c := Conv{InC: 1, H: 4, W: 4, OutC: 1, K: 3, Stride: 1, Pad: 1}
	if _, err := NewPlan(c, 0, 4); err == nil {
		t.Fatal("expected n error")
	}
	if _, err := NewPlan(Conv{}, 4, 4); err == nil {
		t.Fatal("expected geometry error")
	}
}
