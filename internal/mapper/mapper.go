// Package mapper implements the "preprocessing and mapping unit" of the
// system-level SCONNA accelerator (Fig. 8): it decomposes convolution
// operands into decomposed input vectors (DIVs) and decomposed kernel
// vectors (DKVs) of at most N points (Sec. II-B), and assigns the
// resulting (kernel, chunk) pairs to VDPEs under the weight-stationary
// dataflow the evaluation uses.
package mapper

import (
	"fmt"

	"repro/internal/tensor"
)

// Conv describes the convolution being mapped.
type Conv struct {
	InC, H, W int // input tensor shape (CHW)
	OutC      int // kernels
	K         int // kernel spatial size
	Stride    int
	Pad       int
	Depthwise bool
}

// OutSize returns the output spatial size for input size h.
func (c Conv) OutSize(h int) int { return (h+2*c.Pad-c.K)/c.Stride + 1 }

// S returns the flattened kernel size K*K*D.
func (c Conv) S() int {
	if c.Depthwise {
		return c.K * c.K
	}
	return c.K * c.K * c.InC
}

// Validate reports geometry errors.
func (c Conv) Validate() error {
	if c.InC < 1 || c.OutC < 1 || c.K < 1 || c.Stride < 1 || c.Pad < 0 {
		return fmt.Errorf("mapper: invalid conv geometry %+v", c)
	}
	if c.Depthwise && c.InC != c.OutC {
		return fmt.Errorf("mapper: depthwise conv needs InC==OutC, got %d/%d", c.InC, c.OutC)
	}
	if c.OutSize(c.H) < 1 || c.OutSize(c.W) < 1 {
		return fmt.Errorf("mapper: kernel %d does not fit input %dx%d with pad %d", c.K, c.H, c.W, c.Pad)
	}
	return nil
}

// ExtractDIV flattens the input window feeding output position (oy, ox)
// for output channel oc into a vector of length S, zero-padding
// out-of-bounds taps — the DIV the modulation block imprints.
// The input is a quantized activation tensor laid out CHW as integers.
func (c Conv) ExtractDIV(qx []int, oc, oy, ox int) []int {
	out := make([]int, 0, c.S())
	icLo, icHi := 0, c.InC
	if c.Depthwise {
		icLo, icHi = oc, oc+1
	}
	for ic := icLo; ic < icHi; ic++ {
		for ky := 0; ky < c.K; ky++ {
			iy := oy*c.Stride + ky - c.Pad
			for kx := 0; kx < c.K; kx++ {
				ix := ox*c.Stride + kx - c.Pad
				if iy < 0 || iy >= c.H || ix < 0 || ix >= c.W {
					out = append(out, 0)
					continue
				}
				out = append(out, qx[(ic*c.H+iy)*c.W+ix])
			}
		}
	}
	return out
}

// ExtractDKV flattens kernel oc of the quantized weight tensor
// [OutC][WC][K][K] into its S-point kernel vector.
func (c Conv) ExtractDKV(qw []int, oc int) []int {
	wc := c.InC
	if c.Depthwise {
		wc = 1
	}
	ksz := wc * c.K * c.K
	out := make([]int, ksz)
	copy(out, qw[oc*ksz:(oc+1)*ksz])
	return out
}

// Chunk is one DIV/DKV decomposition slice: points [Lo, Hi) of the
// full S-point vectors.
type Chunk struct {
	Index  int
	Lo, Hi int
}

// Chunks decomposes an S-point vector into ceil(S/n) chunks of at most n
// points (Sec. II-B's C = Ceil(S/N)).
func Chunks(s, n int) []Chunk {
	if n < 1 {
		panic(fmt.Sprintf("mapper: chunk size %d", n))
	}
	var out []Chunk
	idx := 0
	for lo := 0; lo < s; lo += n {
		hi := lo + n
		if hi > s {
			hi = s
		}
		out = append(out, Chunk{Index: idx, Lo: lo, Hi: hi})
		idx++
	}
	return out
}

// Assignment pins one (kernel, chunk) pair to a VDPE for a reload round.
type Assignment struct {
	Kernel int
	Chunk  Chunk
	VDPE   int
	Round  int
}

// Plan is a weight-stationary mapping of a convolution onto an array of
// VDPEs.
type Plan struct {
	Conv        Conv
	N           int // VDPE size
	VDPEs       int // array size
	Assignments []Assignment
	Rounds      int
	// Replicas is the position-tiling factor: when the chunk set
	// underfills the array, the mapper replicates it and splits output
	// positions across replicas.
	Replicas int
}

// NewPlan maps the convolution onto `vdpes` VDPEs of size n.
func NewPlan(c Conv, n, vdpes int) (*Plan, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if n < 1 || vdpes < 1 {
		return nil, fmt.Errorf("mapper: invalid array n=%d vdpes=%d", n, vdpes)
	}
	chunks := Chunks(c.S(), n)
	p := &Plan{Conv: c, N: n, VDPEs: vdpes}
	slot := 0
	round := 0
	for oc := 0; oc < c.OutC; oc++ {
		for _, ch := range chunks {
			p.Assignments = append(p.Assignments, Assignment{
				Kernel: oc, Chunk: ch, VDPE: slot, Round: round,
			})
			slot++
			if slot == vdpes {
				slot = 0
				round++
			}
		}
	}
	p.Rounds = round
	if slot != 0 {
		p.Rounds++
	}
	total := c.OutC * len(chunks)
	p.Replicas = 1
	if total < vdpes {
		p.Replicas = vdpes / total
	}
	return p, nil
}

// ChunkCount returns C = ceil(S/N).
func (p *Plan) ChunkCount() int { return (p.Conv.S() + p.N - 1) / p.N }

// PsumsPerOutput returns the partial sums each output point generates.
func (p *Plan) PsumsPerOutput() int { return p.ChunkCount() }

// VDPEOf returns the (vdpe, round) holding a kernel's chunk.
func (p *Plan) VDPEOf(kernel, chunk int) (vdpe, round int, err error) {
	c := p.ChunkCount()
	if kernel < 0 || kernel >= p.Conv.OutC || chunk < 0 || chunk >= c {
		return 0, 0, fmt.Errorf("mapper: (kernel %d, chunk %d) out of range", kernel, chunk)
	}
	flat := kernel*c + chunk
	return flat % p.VDPEs, flat / p.VDPEs, nil
}

// QuantizeActivations converts a float activation tensor to unsigned
// qmax-scale integers with the given scale (clamping negatives to zero,
// the post-ReLU contract).
func QuantizeActivations(x *tensor.T, scale float32, qmax int) []int {
	out := make([]int, x.Len())
	for i, v := range x.Data {
		q := int(v/scale + 0.5)
		if q < 0 {
			q = 0
		}
		if q > qmax {
			q = qmax
		}
		out[i] = q
	}
	return out
}
