package bitstream

import (
	"strings"
	"testing"
)

// cleanRunes strips the separators FromString ignores, returning the
// significant runes.
func cleanRunes(s string) []rune {
	var out []rune
	for _, r := range s {
		if r != ' ' && r != '_' {
			out = append(out, r)
		}
	}
	return out
}

// FuzzFromString: parsing accepts exactly the strings of '0'/'1' runes
// (with ' '/'_' separators), the parsed vector mirrors the significant
// runes bit for bit, and String() round-trips losslessly.
func FuzzFromString(f *testing.F) {
	for _, seed := range []string{
		"", "0", "1", "01", "0101 1010", "1_0_1", "  __  ",
		"11111111 00000000 1", "x", "012", "0101019", "héllo",
		strings.Repeat("10", 100),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		clean := cleanRunes(s)
		v, err := FromString(s)
		wantErr := false
		for _, r := range clean {
			if r != '0' && r != '1' {
				wantErr = true
				break
			}
		}
		if wantErr {
			if err == nil {
				t.Fatalf("FromString(%q) accepted an invalid rune", s)
			}
			return
		}
		if err != nil {
			t.Fatalf("FromString(%q): %v", s, err)
		}
		if v.Len() != len(clean) {
			t.Fatalf("FromString(%q).Len() = %d, want %d", s, v.Len(), len(clean))
		}
		ones := 0
		for i, r := range clean {
			if v.Get(i) != (r == '1') {
				t.Fatalf("FromString(%q): bit %d = %v, want %v", s, i, v.Get(i), r == '1')
			}
			if r == '1' {
				ones++
			}
		}
		if v.PopCount() != ones {
			t.Fatalf("FromString(%q).PopCount() = %d, want %d", s, v.PopCount(), ones)
		}
		// Round trip through the renderer (which inserts display
		// spaces FromString strips back out).
		rt, err := FromString(v.String())
		if err != nil {
			t.Fatalf("round-trip parse of %q: %v", v.String(), err)
		}
		if !rt.Equal(v) {
			t.Fatalf("FromString(String()) != original for %q", s)
		}
		checkTail(t, v)
	})
}

// boolsFrom derives a deterministic bool slice of the given length from
// fuzz bytes (bit j of data drives bit j of the stream, cycling).
func boolsFrom(data []byte, length int) []bool {
	out := make([]bool, length)
	if len(data) == 0 {
		return out
	}
	for j := range out {
		out[j] = data[(j/8)%len(data)]>>(uint(j)&7)&1 == 1
	}
	return out
}

// FuzzAndPopCount: the fused word kernel against a naive bool-slice
// oracle, at fuzz-chosen lengths crossing word boundaries.
func FuzzAndPopCount(f *testing.F) {
	f.Add([]byte{0x00}, []byte{0xff}, uint16(64))
	f.Add([]byte{0xaa, 0x55}, []byte{0x0f, 0xf0}, uint16(63))
	f.Add([]byte{0xff, 0xff, 0xff}, []byte{0xff}, uint16(65))
	f.Add([]byte{0x13, 0x37}, []byte{0xde, 0xad}, uint16(129))
	f.Add([]byte{}, []byte{}, uint16(0))
	f.Fuzz(func(t *testing.T, a, b []byte, n uint16) {
		length := int(n) % 1024
		xb, yb := boolsFrom(a, length), boolsFrom(b, length)
		x, y := FromBools(xb), FromBools(yb)
		want := 0
		for j := 0; j < length; j++ {
			if xb[j] && yb[j] {
				want++
			}
		}
		if got := AndPopCount(x, y); got != want {
			t.Fatalf("AndPopCount = %d, oracle = %d (len %d)", got, want, length)
		}
		// The materialized product stream agrees with the fused count.
		prod := New(length).And(x, y)
		if prod.PopCount() != want {
			t.Fatalf("And().PopCount() = %d, oracle = %d", prod.PopCount(), want)
		}
		checkTail(t, prod)
	})
}

// FuzzTailMask: bits beyond Len must stay zero through Not and Xor —
// the invariant AndPopCount and PopCount rely on to count only live
// stream bits.
func FuzzTailMask(f *testing.F) {
	f.Add([]byte{0xff}, uint16(1))
	f.Add([]byte{0xff, 0xff}, uint16(63))
	f.Add([]byte{0x00}, uint16(64))
	f.Add([]byte{0xa5, 0x5a, 0xff}, uint16(100))
	f.Fuzz(func(t *testing.T, a []byte, n uint16) {
		length := int(n) % 1024
		xb := boolsFrom(a, length)
		x := FromBools(xb)
		inv := New(length).Not(x)
		checkTail(t, inv)
		if got, want := inv.PopCount(), length-x.PopCount(); got != want {
			t.Fatalf("Not().PopCount() = %d, want %d (tail bits leaked)", got, want)
		}
		back := New(length).Not(inv)
		if !back.Equal(x) {
			t.Fatalf("Not(Not(x)) != x at length %d", length)
		}
		xz := New(length).Xor(x, x)
		checkTail(t, xz)
		if xz.PopCount() != 0 {
			t.Fatalf("Xor(x,x).PopCount() = %d, want 0", xz.PopCount())
		}
		xi := New(length).Xor(x, inv)
		checkTail(t, xi)
		if xi.PopCount() != length {
			t.Fatalf("Xor(x,~x).PopCount() = %d, want %d", xi.PopCount(), length)
		}
	})
}

// checkTail asserts no bits are set at or beyond Len in the packed
// words.
func checkTail(t *testing.T, v *Vector) {
	t.Helper()
	words := v.Words()
	if want := (v.Len() + 63) / 64; len(words) != want {
		t.Fatalf("len(Words()) = %d, want %d", len(words), want)
	}
	if rem := uint(v.Len()) & 63; rem != 0 {
		if tail := words[len(words)-1] >> rem; tail != 0 {
			t.Fatalf("tail bits set beyond Len %d: %#x", v.Len(), tail)
		}
	}
}
