package bitstream

import (
	"fmt"
	"math/bits"
)

// A Generator converts a rational value ones/length into a bit-stream of the
// given length carrying exactly (or approximately, for pseudo-random
// generators) that fraction of ones. Generators differ in *where* the ones
// fall, which controls the correlation between streams and hence the
// accuracy of AND-gate multiplication (Section II-D / IV-B of the paper).
type Generator interface {
	// Generate returns a stream of length bits encoding ones/length.
	Generate(ones, length int) *Vector
	// Name identifies the generator in reports and ablations.
	Name() string
}

// Unary generates thermometer-coded streams: the first `ones` bits are 1.
// Paired with an evenly-spread generator (Bresenham or VanDerCorput) it
// yields AND-multiplication exact to within one bit, which is how the OSM
// lookup table achieves the paper's "error-free multiplication" property.
type Unary struct{}

// Name implements Generator.
func (Unary) Name() string { return "unary" }

// Generate implements Generator.
func (Unary) Generate(ones, length int) *Vector {
	checkRange(ones, length)
	v := New(length)
	full := ones / 64
	for i := 0; i < full; i++ {
		v.words[i] = ^uint64(0)
	}
	if rem := uint(ones) & 63; rem != 0 {
		v.words[full] = (1 << rem) - 1
	}
	return v
}

// Bresenham generates rate-coded streams where ones are spread maximally
// evenly: bit i is set iff floor((i+1)*ones/length) > floor(i*ones/length).
// Every prefix of length p contains floor(p*ones/length) or that plus one
// ones, so AND with a unary stream is exact to within one bit.
type Bresenham struct{}

// Name implements Generator.
func (Bresenham) Name() string { return "bresenham" }

// Generate implements Generator.
func (Bresenham) Generate(ones, length int) *Vector {
	checkRange(ones, length)
	v := New(length)
	if ones == 0 {
		return v
	}
	acc := 0
	for i := 0; i < length; i++ {
		acc += ones
		if acc >= length {
			acc -= length
			v.Set(i)
		}
	}
	return v
}

// VanDerCorput generates streams using the base-2 van der Corput
// low-discrepancy sequence: bit i is set iff bitreverse(i) < ones (lengths
// must be powers of two). It is the classic Sobol-dimension-0 generator used
// in unary-computing designs such as uGEMM [26].
type VanDerCorput struct{}

// Name implements Generator.
func (VanDerCorput) Name() string { return "vandercorput" }

// Generate implements Generator. Length must be a power of two.
func (VanDerCorput) Generate(ones, length int) *Vector {
	checkRange(ones, length)
	if length&(length-1) != 0 {
		panic(fmt.Sprintf("bitstream: van der Corput length %d not a power of two", length))
	}
	v := New(length)
	if length == 0 {
		return v
	}
	shift := 64 - uint(bits.TrailingZeros(uint(length)))
	for i := 0; i < length; i++ {
		if int(bits.Reverse64(uint64(i))>>shift) < ones {
			v.Set(i)
		}
	}
	return v
}

// LFSR generates pseudo-random streams by comparing successive states of a
// maximal-length linear-feedback shift register against the target value.
// It models a conventional hardware SNG and is retained as the ablation
// baseline against the deterministic LUT streams (experiment A2).
type LFSR struct {
	// Width is the register width in bits (3..24 supported). The stream
	// period is 2^Width-1.
	Width int
	// Seed is the initial state; it must be nonzero within Width bits.
	// A zero Seed is replaced by 1.
	Seed uint32
}

// Name implements Generator.
func (l LFSR) Name() string { return fmt.Sprintf("lfsr%d", l.Width) }

// lfsrTaps maps register width to a maximal-length tap mask (Fibonacci
// form, taps numbered from 1). Values from the standard Xilinx table.
var lfsrTaps = map[int]uint32{
	3:  0b110,
	4:  0b1100,
	5:  0b10100,
	6:  0b110000,
	7:  0b1100000,
	8:  0b10111000,
	9:  0b100010000,
	10: 0b1001000000,
	11: 0b10100000000,
	12: 0b111000001000,
	13: 0b1110010000000,
	14: 0b11100000000010,
	15: 0b110000000000000,
	16: 0b1101000000001000,
	17: 0b10010000000000000,
	18: 0b100000010000000000,
	19: 0b1110010000000000000,
	20: 0b10010000000000000000,
	21: 0b101000000000000000000,
	22: 0b1100000000000000000000,
	23: 0b10000100000000000000000,
	24: 0b111000010000000000000000,
}

// Next advances the register one step and returns the new state.
func lfsrNext(state, taps uint32, width int) uint32 {
	fb := uint32(bits.OnesCount32(state&taps)) & 1
	state = (state << 1) | fb
	return state & ((1 << uint(width)) - 1)
}

// Generate implements Generator. The stream sets bit i iff the i-th LFSR
// state, scaled to [0,length), is below ones.
func (l LFSR) Generate(ones, length int) *Vector {
	checkRange(ones, length)
	taps, ok := lfsrTaps[l.Width]
	if !ok {
		panic(fmt.Sprintf("bitstream: unsupported LFSR width %d", l.Width))
	}
	seed := l.Seed & ((1 << uint(l.Width)) - 1)
	if seed == 0 {
		seed = 1
	}
	v := New(length)
	state := seed
	period := uint64(1)<<uint(l.Width) - 1
	for i := 0; i < length; i++ {
		// Scale state (in [1, 2^w-1]) to [0, length).
		scaled := (uint64(state-1) * uint64(length)) / period
		if int(scaled) < ones {
			v.Set(i)
		}
		state = lfsrNext(state, taps, l.Width)
	}
	return v
}

// Period returns the LFSR sequence period, 2^Width - 1.
func (l LFSR) Period() int { return 1<<uint(l.Width) - 1 }

func checkRange(ones, length int) {
	if length < 0 || ones < 0 || ones > length {
		panic(fmt.Sprintf("bitstream: invalid ones/length %d/%d", ones, length))
	}
}

// SCC computes the stochastic computing correlation coefficient of
// Alaghi & Hayes between two equal-length streams. SCC is 0 for
// uncorrelated streams (the condition the paper requires for error-free
// AND multiplication), +1 for maximally overlapping and -1 for maximally
// disjoint streams.
func SCC(x, y *Vector) float64 {
	if x.Len() != y.Len() {
		panic("bitstream: length mismatch")
	}
	n := float64(x.Len())
	if n == 0 {
		return 0
	}
	var tmp Vector
	tmp.words = make([]uint64, len(x.words))
	tmp.n = x.n
	ad := float64(AndPopCount(x, y)) // P(X=1, Y=1) * n
	px := float64(x.PopCount())
	py := float64(y.PopCount())
	delta := ad/n - (px/n)*(py/n)
	if delta == 0 {
		return 0
	}
	var denom float64
	if delta > 0 {
		denom = minf(px, py)/n - (px/n)*(py/n)
	} else {
		denom = (px/n)*(py/n) - maxf(px+py-n, 0)/n
	}
	if denom == 0 {
		return 0
	}
	return delta / denom
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
