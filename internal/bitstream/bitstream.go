// Package bitstream provides the packed bit-vector kernel underlying the
// stochastic-computing layer of the SCONNA reproduction.
//
// A stochastic number (SN) is physically a serial bit-stream; in software we
// hold it as a packed bit-vector ([]uint64 words) so that the two operations
// the hardware performs — bitwise AND (the optical AND gate) and counting
// ones (the photo-charge accumulator) — map to word-parallel operations.
//
// The package also provides the stochastic number generators (SNGs) used to
// build the OSM lookup table of Section IV-B of the paper: unary
// (thermometer) coding, Bresenham/PWM rate coding, van der Corput
// low-discrepancy coding, and LFSR pseudo-random coding (kept as an
// ablation baseline).
package bitstream

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a fixed-length packed bit-vector. The zero value is an empty
// vector; use New to create one with a given length.
type Vector struct {
	words []uint64
	n     int // length in bits
}

// New returns a zeroed Vector of n bits. It panics if n is negative.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitstream: negative length %d", n))
	}
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// FromBools builds a Vector from a slice of booleans.
func FromBools(bs []bool) *Vector {
	v := New(len(bs))
	for i, b := range bs {
		if b {
			v.Set(i)
		}
	}
	return v
}

// FromString parses a Vector from a string of '0'/'1' runes, ignoring
// spaces and underscores. Bit 0 is the leftmost rune.
func FromString(s string) (*Vector, error) {
	clean := strings.Map(func(r rune) rune {
		if r == ' ' || r == '_' {
			return -1
		}
		return r
	}, s)
	v := New(len(clean))
	for i, r := range clean {
		switch r {
		case '1':
			v.Set(i)
		case '0':
		default:
			return nil, fmt.Errorf("bitstream: invalid rune %q at %d", r, i)
		}
	}
	return v, nil
}

// Len returns the length of the vector in bits.
func (v *Vector) Len() int { return v.n }

// Get reports whether bit i is set. It panics if i is out of range.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i>>6] &^= 1 << (uint(i) & 63)
}

// SetTo sets bit i to b.
func (v *Vector) SetTo(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitstream: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := New(v.n)
	copy(w.words, v.words)
	return w
}

// Equal reports whether v and w have identical length and bits.
func (v *Vector) Equal(w *Vector) bool {
	if v.n != w.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != w.words[i] {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits.
func (v *Vector) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Fraction returns PopCount/Len, the unipolar value encoded by the stream.
// It returns 0 for an empty vector.
func (v *Vector) Fraction() float64 {
	if v.n == 0 {
		return 0
	}
	return float64(v.PopCount()) / float64(v.n)
}

// And sets v = a AND b and returns v. All three must have equal length.
// This is the software model of the Optical AND Gate's drop-port output.
func (v *Vector) And(a, b *Vector) *Vector {
	v.binop(a, b)
	for i := range v.words {
		v.words[i] = a.words[i] & b.words[i]
	}
	return v
}

// Or sets v = a OR b and returns v.
func (v *Vector) Or(a, b *Vector) *Vector {
	v.binop(a, b)
	for i := range v.words {
		v.words[i] = a.words[i] | b.words[i]
	}
	return v
}

// Xor sets v = a XOR b and returns v.
func (v *Vector) Xor(a, b *Vector) *Vector {
	v.binop(a, b)
	for i := range v.words {
		v.words[i] = a.words[i] ^ b.words[i]
	}
	return v
}

// Not sets v = NOT a (within a's length) and returns v.
func (v *Vector) Not(a *Vector) *Vector {
	if v.n != a.n {
		panic("bitstream: length mismatch")
	}
	for i := range v.words {
		v.words[i] = ^a.words[i]
	}
	v.maskTail()
	return v
}

func (v *Vector) binop(a, b *Vector) {
	if a.n != b.n || v.n != a.n {
		panic(fmt.Sprintf("bitstream: length mismatch %d/%d/%d", v.n, a.n, b.n))
	}
}

// maskTail zeroes bits beyond Len in the last word.
func (v *Vector) maskTail() {
	if rem := uint(v.n) & 63; rem != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << rem) - 1
	}
}

// AndPopCount returns PopCount(a AND b) without allocating. This is the
// fused multiply-accumulate primitive: the optical AND gate followed by the
// photo-charge accumulator counting the ones incident on the photodetector.
func AndPopCount(a, b *Vector) int {
	if a.n != b.n {
		panic("bitstream: length mismatch")
	}
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(a.words[i] & b.words[i])
	}
	return c
}

// Bools returns the bits as a boolean slice.
func (v *Vector) Bools() []bool {
	out := make([]bool, v.n)
	for i := 0; i < v.n; i++ {
		out[i] = v.Get(i)
	}
	return out
}

// String renders the vector as a '0'/'1' string, bit 0 first, with a space
// every 8 bits for readability.
func (v *Vector) String() string {
	var sb strings.Builder
	for i := 0; i < v.n; i++ {
		if i > 0 && i%8 == 0 {
			sb.WriteByte(' ')
		}
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Words exposes the underlying packed words (read-only use intended).
func (v *Vector) Words() []uint64 { return v.words }
