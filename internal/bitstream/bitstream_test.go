package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLenAndZero(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 255, 256, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len=%d want %d", v.Len(), n)
		}
		if v.PopCount() != 0 {
			t.Fatalf("new vector of %d bits has %d ones", n, v.PopCount())
		}
	}
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if got := v.PopCount(); got != len(idx) {
		t.Fatalf("PopCount=%d want %d", got, len(idx))
	}
	for _, i := range idx {
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d still set", i)
		}
	}
	if v.PopCount() != 0 {
		t.Fatalf("PopCount=%d want 0", v.PopCount())
	}
}

func TestSetToAndBools(t *testing.T) {
	v := New(9)
	pattern := []bool{true, false, true, true, false, false, true, false, true}
	for i, b := range pattern {
		v.SetTo(i, b)
	}
	got := v.Bools()
	for i := range pattern {
		if got[i] != pattern[i] {
			t.Fatalf("bit %d = %v want %v", i, got[i], pattern[i])
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(8).Get(8)
}

func TestFromStringAndString(t *testing.T) {
	v, err := FromString("1010 1100")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 8 || v.PopCount() != 4 {
		t.Fatalf("parsed %d bits %d ones", v.Len(), v.PopCount())
	}
	if s := v.String(); s != "10101100" {
		t.Fatalf("String=%q", s)
	}
	if _, err := FromString("10x1"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestAndOrXorNot(t *testing.T) {
	a, _ := FromString("11001010")
	b, _ := FromString("10101100")
	and := New(8).And(a, b)
	or := New(8).Or(a, b)
	xor := New(8).Xor(a, b)
	not := New(8).Not(a)
	if got := and.String(); got != "10001000" {
		t.Errorf("AND=%q", got)
	}
	if got := or.String(); got != "11101110" {
		t.Errorf("OR=%q", got)
	}
	if got := xor.String(); got != "01100110" {
		t.Errorf("XOR=%q", got)
	}
	if got := not.String(); got != "00110101" {
		t.Errorf("NOT=%q", got)
	}
}

func TestNotMasksTail(t *testing.T) {
	a := New(70) // NOT must not set ghost bits beyond Len
	n := New(70).Not(a)
	if got := n.PopCount(); got != 70 {
		t.Fatalf("NOT popcount=%d want 70", got)
	}
}

func TestCloneEqual(t *testing.T) {
	a := Unary{}.Generate(37, 128)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Set(127)
	if a.Equal(b) {
		t.Fatal("mutating clone affected original or Equal broken")
	}
	if a.Equal(New(64)) {
		t.Fatal("different lengths must not be equal")
	}
}

// Property: AndPopCount(a,b) agrees with a naive bit loop.
func TestAndPopCountMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				a.Set(i)
			}
			if rng.Intn(2) == 1 {
				b.Set(i)
			}
		}
		want := 0
		for i := 0; i < n; i++ {
			if a.Get(i) && b.Get(i) {
				want++
			}
		}
		return AndPopCount(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: deterministic generators produce exactly `ones` set bits (value
// preservation: the stream encodes ones/length with zero encoding error).
// The LFSR, whose period 2^w-1 never divides the stream length, is allowed a
// small encoding error — this is precisely why the OSM LUT uses
// deterministic streams (ablation A2).
func TestGeneratorsExactOnes(t *testing.T) {
	type tc struct {
		g   Generator
		tol int
	}
	cases := []tc{{Unary{}, 0}, {Bresenham{}, 0}, {VanDerCorput{}, 0}, {LFSR{Width: 8, Seed: 1}, 3}}
	for _, c := range cases {
		c := c
		t.Run(c.g.Name(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				length := 256 // power of two for VDC
				ones := rng.Intn(length + 1)
				v := c.g.Generate(ones, length)
				diff := v.PopCount() - ones
				if diff < 0 {
					diff = -diff
				}
				return diff <= c.tol && v.Len() == length
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: unary x bresenham AND-multiplication is exact to within one bit,
// the "error-free multiplication" requirement of Section IV-B.
func TestUnaryBresenhamExactProduct(t *testing.T) {
	const n = 256
	u, br := Unary{}, Bresenham{}
	for a := 0; a <= n; a += 3 {
		for b := 0; b <= n; b += 7 {
			got := AndPopCount(u.Generate(a, n), br.Generate(b, n))
			exact := float64(a) * float64(b) / float64(n)
			if diff := float64(got) - exact; diff > 1.0 || diff < -1.0 {
				t.Fatalf("a=%d b=%d got %d want %.3f (err %.3f)", a, b, got, exact, diff)
			}
		}
	}
}

// Property: unary x van der Corput multiplication error is bounded by the
// low-discrepancy bound (log2(n)+2 bits for length n).
func TestUnaryVDCBoundedError(t *testing.T) {
	const n = 256
	u, vd := Unary{}, VanDerCorput{}
	bound := 10.0 // log2(256)+2
	for a := 0; a <= n; a += 5 {
		for b := 0; b <= n; b += 11 {
			got := AndPopCount(u.Generate(a, n), vd.Generate(b, n))
			exact := float64(a) * float64(b) / float64(n)
			if diff := float64(got) - exact; diff > bound || diff < -bound {
				t.Fatalf("a=%d b=%d got %d want %.3f", a, b, got, exact)
			}
		}
	}
}

func TestVanDerCorputRequiresPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	VanDerCorput{}.Generate(3, 100)
}

func TestLFSRPeriod(t *testing.T) {
	for w := 3; w <= 16; w++ {
		l := LFSR{Width: w, Seed: 1}
		taps := lfsrTaps[w]
		state := uint32(1)
		seen := 0
		for {
			state = lfsrNext(state, taps, w)
			seen++
			if state == 1 {
				break
			}
			if seen > l.Period()+1 {
				t.Fatalf("width %d: period exceeds maximal %d", w, l.Period())
			}
		}
		if seen != l.Period() {
			t.Fatalf("width %d: period %d want %d (taps not maximal)", w, seen, l.Period())
		}
	}
}

func TestLFSRZeroSeedHandled(t *testing.T) {
	v := LFSR{Width: 8, Seed: 0}.Generate(128, 256)
	if got := v.PopCount(); got < 125 || got > 131 {
		t.Fatalf("popcount=%d want ~128", got)
	}
}

func TestSCCIdenticalAndDisjoint(t *testing.T) {
	n := 64
	a := Unary{}.Generate(32, n)
	if got := SCC(a, a); got < 0.99 {
		t.Errorf("SCC(a,a)=%.3f want ~1", got)
	}
	// Disjoint halves: maximal negative correlation.
	b := New(n)
	for i := 32; i < 64; i++ {
		b.Set(i)
	}
	if got := SCC(a, b); got > -0.99 {
		t.Errorf("SCC(disjoint)=%.3f want ~-1", got)
	}
}

// Property: the unary/bresenham pairing used by the OSM LUT has |SCC| well
// below the random-stream baseline, i.e. the streams are near-uncorrelated
// as required by [26].
func TestUnaryBresenhamNearZeroSCC(t *testing.T) {
	// For small operand values the single quantization bit inflates the
	// normalized coefficient, so restrict to mid-range operands where the
	// denominator of SCC is well conditioned.
	const n = 256
	for a := 32; a <= 208; a += 24 {
		for b := 32; b <= 208; b += 24 {
			x := Unary{}.Generate(a, n)
			y := Bresenham{}.Generate(b, n)
			if scc := SCC(x, y); scc > 0.25 || scc < -0.25 {
				t.Fatalf("a=%d b=%d SCC=%.3f want ~0", a, b, scc)
			}
		}
	}
}

func TestGenerateEdgeValues(t *testing.T) {
	gens := []Generator{Unary{}, Bresenham{}, VanDerCorput{}, LFSR{Width: 10, Seed: 7}}
	for _, g := range gens {
		for _, ones := range []int{0, 256} {
			v := g.Generate(ones, 256)
			if v.PopCount() != ones {
				t.Errorf("%s: ones=%d got %d", g.Name(), ones, v.PopCount())
			}
		}
	}
}

func TestGenerateInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ones>length")
		}
	}()
	Unary{}.Generate(10, 8)
}

func BenchmarkAndPopCount256(b *testing.B) {
	x := Unary{}.Generate(128, 256)
	y := Bresenham{}.Generate(100, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AndPopCount(x, y)
	}
}

func BenchmarkGenerateBresenham(b *testing.B) {
	g := Bresenham{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Generate(173, 256)
	}
}
