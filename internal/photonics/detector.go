package photonics

import "math"

// Photodetector models the balanced photodiodes of the summation elements
// and the PCA photodetector: responsivity, dark current, and the three
// noise contributions of Eq. 3 (shot, thermal, RIN).
type Photodetector struct {
	// ResponsivityAW is R_PD in A/W (1.2 in Table III).
	ResponsivityAW float64
	// DarkCurrentA is I_d in amperes (35 nA in Table III).
	DarkCurrentA float64
	// LoadOhms is R_L (50 ohm in Table III).
	LoadOhms float64
	// TemperatureK is the absolute temperature (300 K in Table III).
	TemperatureK float64
	// RINdBHz is the laser relative intensity noise (-140 dB/Hz).
	RINdBHz float64
}

// DefaultPhotodetector returns the Table III operating point.
func DefaultPhotodetector() Photodetector {
	return Photodetector{
		ResponsivityAW: 1.2,
		DarkCurrentA:   35e-9,
		LoadOhms:       50,
		TemperatureK:   300,
		RINdBHz:        -140,
	}
}

// Photocurrent returns the signal current R*P for incident power powerW.
func (p Photodetector) Photocurrent(powerW float64) float64 {
	return p.ResponsivityAW * powerW
}

// NoisePSD implements Eq. 3 of the paper: the noise current spectral
// density beta (A/sqrt(Hz)) at incident optical power powerW,
//
//	beta = sqrt( 2q(R*P + Id) + 4kT/RL + R^2 P^2 RIN )
func (p Photodetector) NoisePSD(powerW float64) float64 {
	i := p.Photocurrent(powerW)
	shot := 2 * ElectronCharge * (i + p.DarkCurrentA)
	thermal := 4 * BoltzmannConst * p.TemperatureK / p.LoadOhms
	rin := DBToLinear(p.RINdBHz) * i * i
	return math.Sqrt(shot + thermal + rin)
}

// NoiseRMS returns the total rms noise current over the Eq. 2 noise
// bandwidth DR/sqrt(2) for data rate dr (samples/s).
func (p Photodetector) NoiseRMS(powerW, dr float64) float64 {
	return p.NoisePSD(powerW) * math.Sqrt(dr/math.Sqrt2)
}

// SNRdB returns the electrical signal-to-noise ratio in dB (20*log10 of the
// current ratio) at incident power powerW and data rate dr.
func (p Photodetector) SNRdB(powerW, dr float64) float64 {
	sig := p.Photocurrent(powerW)
	return 20 * math.Log10(sig/p.NoiseRMS(powerW, dr))
}

// ENOB implements Eq. 2: the effective number of resolvable bits at the
// detector for power powerW and data rate dr,
//
//	B_Res = ( 20*log10( R*P / (beta*sqrt(DR/sqrt(2))) ) - 1.76 ) / 6.02
func (p Photodetector) ENOB(powerW, dr float64) float64 {
	return (p.SNRdB(powerW, dr) - 1.76) / 6.02
}

// SensitivityDBm inverts Eq. 2: the minimum optical power (dBm) at which
// the detector resolves bres bits at data rate dr. It returns NaN when the
// requested resolution is unreachable at any power (the RIN ceiling:
// at high power SNR saturates at 1/sqrt(RIN*BW)).
func (p Photodetector) SensitivityDBm(bres, dr float64) float64 {
	target := bres
	// Monotone-increasing in power until the RIN plateau; bisect in dBm.
	lo, hi := -80.0, 30.0
	if p.ENOB(DBmToWatts(hi), dr) < target {
		return math.NaN()
	}
	if p.ENOB(DBmToWatts(lo), dr) >= target {
		return lo
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if p.ENOB(DBmToWatts(mid), dr) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// MaxENOB returns the RIN-limited resolution ceiling at data rate dr: the
// ENOB attained as power grows without bound.
func (p Photodetector) MaxENOB(dr float64) float64 {
	bw := dr / math.Sqrt2
	snr := 20 * math.Log10(1/math.Sqrt(DBToLinear(p.RINdBHz)*bw))
	return (snr - 1.76) / 6.02
}
