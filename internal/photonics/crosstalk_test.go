package photonics

import (
	"math"
	"testing"
)

func TestChannelPlanGrid(t *testing.T) {
	p := NewChannelPlan(176)
	if p.Wavelength(0) != 1550 {
		t.Fatal("anchor wrong")
	}
	if got := p.Wavelength(1); math.Abs(got-1549.75) > 1e-12 {
		t.Fatalf("channel 1 = %g want 1549.75", got)
	}
	if got := p.SpanNM(); math.Abs(got-43.75) > 1e-9 {
		t.Fatalf("span=%g want 43.75 (175 x 0.25)", got)
	}
	// The paper's N=176 plan fits one 50 nm FSR; 201 channels would not.
	if !p.FitsFSR(50) {
		t.Fatal("176-channel plan must fit a 50 nm FSR")
	}
	big := NewChannelPlan(201)
	if big.FitsFSR(50) {
		t.Fatal("201 channels must not fit (Sec. V-B cap is 200)")
	}
}

func TestChannelPlanBounds(t *testing.T) {
	p := NewChannelPlan(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Wavelength(4)
}

func TestCrosstalkMiddleWorst(t *testing.T) {
	p := NewChannelPlan(21)
	edge := p.CrosstalkDB(0, 0.8)
	mid := p.CrosstalkDB(10, 0.8)
	if mid <= edge {
		t.Fatalf("middle channel crosstalk %.2f should exceed edge %.2f", mid, edge)
	}
	if worst := p.WorstCrosstalkDB(0.8); worst < mid-1e-9 {
		t.Fatal("worst should be at least the middle channel's")
	}
}

func TestCrosstalkGrowsWithFWHM(t *testing.T) {
	p := NewChannelPlan(32)
	narrow := p.WorstCrosstalkDB(0.2)
	wide := p.WorstCrosstalkDB(0.8)
	if wide <= narrow {
		t.Fatalf("wider resonances must leak more: %.2f vs %.2f dB", wide, narrow)
	}
}

func TestSingleChannelNoCrosstalk(t *testing.T) {
	p := NewChannelPlan(1)
	if !math.IsInf(p.CrosstalkDB(0, 0.8), -1) {
		t.Fatal("lone channel has no aggressors")
	}
}

func TestMaxChannelsForCrosstalk(t *testing.T) {
	// A loose -3 dB budget admits many channels; a brutal -40 dB budget
	// admits fewer. The solver must be monotone in the budget.
	loose := MaxChannelsForCrosstalk(0.25, 0.8, -3, 250)
	tight := MaxChannelsForCrosstalk(0.25, 0.8, -40, 250)
	if loose < tight {
		t.Fatalf("loose budget %d < tight budget %d", loose, tight)
	}
	if tight < 0 || loose > 250 {
		t.Fatal("solver out of range")
	}
}

func TestThermalTunerHoldPower(t *testing.T) {
	tt := DefaultThermalTuner()
	p, err := tt.HoldPowerMW(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-10) > 1e-9 { // 2.5 nm / 0.25 nm-per-mW
		t.Fatalf("hold power %.2f mW want 10", p)
	}
	// Negative shifts cost the same magnitude.
	p2, _ := tt.HoldPowerMW(-2.5)
	if p2 != p {
		t.Fatal("sign should not matter")
	}
	if _, err := tt.HoldPowerMW(100); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

// Settling to 8-bit tolerance takes several thermal time constants —
// the physical basis for the accel model's microsecond-scale analog
// weight-reload penalty (DESIGN.md calibration note).
func TestThermalSettleTime(t *testing.T) {
	tt := DefaultThermalTuner()
	t8 := tt.SettleTimeUS(1.0 / 256)
	if t8 < 4*tt.TimeConstantUS || t8 > 7*tt.TimeConstantUS {
		t.Fatalf("8-bit settle %.1f us should be ~5.5 tau", t8)
	}
	t4 := tt.SettleTimeUS(1.0 / 16)
	if t4 >= t8 {
		t.Fatal("coarser tolerance must settle faster")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid tolerance")
		}
	}()
	tt.SettleTimeUS(0)
}
