package photonics

import (
	"fmt"
	"math"
)

// This file models the DWDM channel plan and the inter-channel crosstalk
// that Section V-B cites as one of the effects limiting SCONNA's practical
// VDPC size below the FSR-limited 200 channels.

// ChannelPlan lays out N wavelength channels on a uniform DWDM grid
// anchored at BaseNM, descending by SpacingNM per channel.
type ChannelPlan struct {
	BaseNM    float64
	SpacingNM float64
	N         int
}

// NewChannelPlan returns the paper's grid: 1550 nm anchor, 0.25 nm
// spacing.
func NewChannelPlan(n int) ChannelPlan {
	return ChannelPlan{BaseNM: 1550, SpacingNM: 0.25, N: n}
}

// Wavelength returns channel i's wavelength in nm.
func (c ChannelPlan) Wavelength(i int) float64 {
	if i < 0 || i >= c.N {
		panic(fmt.Sprintf("photonics: channel %d out of range [0,%d)", i, c.N))
	}
	return c.BaseNM - float64(i)*c.SpacingNM
}

// SpanNM returns the total spectral span of the plan.
func (c ChannelPlan) SpanNM() float64 {
	if c.N <= 1 {
		return 0
	}
	return float64(c.N-1) * c.SpacingNM
}

// FitsFSR reports whether the plan fits within one free spectral range.
func (c ChannelPlan) FitsFSR(fsrNM float64) bool { return c.SpanNM() < fsrNM }

// CrosstalkDB returns the worst-case coherent crosstalk power ratio (dB,
// negative) seen by the victim channel at index victim from all other
// channels' filters: each aggressor MRR of linewidth fwhmNM leaks a
// Lorentzian tail onto the victim wavelength.
func (c ChannelPlan) CrosstalkDB(victim int, fwhmNM float64) float64 {
	victimLambda := c.Wavelength(victim)
	sum := 0.0
	for i := 0; i < c.N; i++ {
		if i == victim {
			continue
		}
		d := c.Wavelength(i) - victimLambda
		x := 2 * d / fwhmNM
		sum += 1 / (1 + x*x)
	}
	if sum == 0 {
		return math.Inf(-1)
	}
	return LinearToDB(sum)
}

// WorstCrosstalkDB returns the worst channel's aggregate crosstalk across
// the plan (the middle channels see the most neighbours).
func (c ChannelPlan) WorstCrosstalkDB(fwhmNM float64) float64 {
	worst := math.Inf(-1)
	for i := 0; i < c.N; i++ {
		if x := c.CrosstalkDB(i, fwhmNM); x > worst {
			worst = x
		}
	}
	return worst
}

// MaxChannelsForCrosstalk returns the largest N on this grid whose
// worst-case aggregate crosstalk stays at or below limitDB (a negative
// budget such as -20 dB). It grows the plan until the budget breaks.
func MaxChannelsForCrosstalk(spacingNM, fwhmNM, limitDB float64, cap int) int {
	best := 0
	for n := 2; n <= cap; n++ {
		plan := ChannelPlan{BaseNM: 1550, SpacingNM: spacingNM, N: n}
		if plan.WorstCrosstalkDB(fwhmNM) <= limitDB {
			best = n
		} else {
			break
		}
	}
	return best
}

// ThermalTuner models the integrated microheater of an MRR/OAG: the
// static power needed to hold a resonance shift and the settling time of a
// shift step.
type ThermalTuner struct {
	// NMPerMW is the tuning efficiency (resonance shift per mW of heater
	// power); silicon microheaters achieve ~0.25 nm/mW.
	NMPerMW float64
	// TimeConstantUS is the thermal time constant in microseconds
	// (1-10 us for integrated heaters).
	TimeConstantUS float64
	// MaxMW bounds the heater drive.
	MaxMW float64
}

// DefaultThermalTuner returns a literature-typical silicon microheater.
func DefaultThermalTuner() ThermalTuner {
	return ThermalTuner{NMPerMW: 0.25, TimeConstantUS: 10, MaxMW: 40}
}

// HoldPowerMW returns the static power to hold a shift of shiftNM, or an
// error if it exceeds the heater's range.
func (t ThermalTuner) HoldPowerMW(shiftNM float64) (float64, error) {
	if shiftNM < 0 {
		shiftNM = -shiftNM
	}
	p := shiftNM / t.NMPerMW
	if p > t.MaxMW {
		return 0, fmt.Errorf("photonics: shift %.2f nm needs %.1f mW > max %.1f mW", shiftNM, p, t.MaxMW)
	}
	return p, nil
}

// SettleTimeUS returns the time for the resonance to settle within
// `tolerance` (fraction, e.g. 1/256 for 8-bit accuracy) of a step change:
// t = tau * ln(1/tolerance).
func (t ThermalTuner) SettleTimeUS(tolerance float64) float64 {
	if tolerance <= 0 || tolerance >= 1 {
		panic(fmt.Sprintf("photonics: tolerance %g out of (0,1)", tolerance))
	}
	return t.TimeConstantUS * math.Log(1/tolerance)
}
