package photonics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestUnitConversionsRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		dbm := math.Mod(math.Abs(raw), 60) - 30 // [-30, 30) dBm
		w := DBmToWatts(dbm)
		return almost(WattsToDBm(w), dbm, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !almost(DBToLinear(3.0103), 2, 1e-3) {
		t.Fatal("3 dB should double power")
	}
	if !almost(LinearToDB(10), 10, 1e-12) {
		t.Fatal("10x should be 10 dB")
	}
}

func TestFWHMToHzAndLifetime(t *testing.T) {
	// 0.8 nm at 1550 nm is ~99.8 GHz.
	df := FWHMToHz(0.8, 1550)
	if df < 95e9 || df > 105e9 {
		t.Fatalf("df=%.3g want ~1e11", df)
	}
	tau := PhotonLifetime(0.8, 1550)
	if !almost(tau, 1/(2*math.Pi*df), 1e-18) {
		t.Fatalf("tau=%.3g inconsistent", tau)
	}
	if q := QualityFactor(0.8, 1550); !almost(q, 1937.5, 0.1) {
		t.Fatalf("Q=%.1f want 1937.5", q)
	}
}

func TestMRRDropTransmissionShape(t *testing.T) {
	m := NewMRR(1550, 0.5)
	on := m.DropTransmission(1550)
	if on < 0.99 || on > 1 {
		t.Fatalf("on-resonance drop=%g want ~1 (0.01 dB IL)", on)
	}
	// At half-width detuning the Lorentzian is at half power.
	half := m.DropTransmission(1550 + 0.25)
	if !almost(half, on/2, 1e-6) {
		t.Fatalf("half-width drop=%g want %g", half, on/2)
	}
	// Monotone decay away from resonance within half FSR.
	prev := on
	for d := 0.1; d < 20; d += 0.1 {
		cur := m.DropTransmission(1550 + d)
		if cur > prev+1e-12 {
			t.Fatalf("drop not monotone at detuning %g", d)
		}
		prev = cur
	}
}

func TestMRRFSRPeriodicity(t *testing.T) {
	m := NewMRR(1550, 0.5)
	if !almost(m.DropTransmission(1550+50), m.DropTransmission(1550), 1e-9) {
		t.Fatal("resonance should repeat at one FSR")
	}
	if got := m.ChannelCount(0.25); got != 200 {
		t.Fatalf("ChannelCount=%d want 200 (paper Sec. V-B)", got)
	}
}

func TestMRRThroughComplementsDrop(t *testing.T) {
	m := NewMRR(1550, 0.5)
	// On resonance nearly everything leaves via the drop port.
	if th := m.ThroughTransmission(1550); th > 0.01 {
		t.Fatalf("on-resonance through=%g want ~0", th)
	}
	// Far off resonance the through port passes all but the OBL floor.
	if th := m.ThroughTransmission(1550 + 10); th < 0.99 {
		t.Fatalf("off-resonance through=%g want ~1", th)
	}
}

func TestMRRValidate(t *testing.T) {
	if err := NewMRR(1550, 0.5).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := NewMRR(1550, -1)
	if bad.Validate() == nil {
		t.Fatal("negative FWHM should fail")
	}
	bad2 := NewMRR(1550, 60) // FWHM > FSR
	if bad2.Validate() == nil {
		t.Fatal("FWHM >= FSR should fail")
	}
}

func TestMRRShift(t *testing.T) {
	m := NewMRR(1550, 0.5)
	m.Shift(1.0)
	if !almost(m.ResonanceNM, 1551, 1e-12) {
		t.Fatal("shift not applied")
	}
}

// The OAG must behave as a logical AND gate in steady state: Fig. 6(b).
func TestOAGTruthTable(t *testing.T) {
	g := NewOAG(0.35)
	tt := g.TruthTable()
	on := tt[1][1]
	for i := 0; i <= 1; i++ {
		for w := 0; w <= 1; w++ {
			if i == 1 && w == 1 {
				continue
			}
			if tt[i][w] > on/10 {
				t.Fatalf("level (%d,%d)=%g too close to on=%g", i, w, tt[i][w], on)
			}
		}
	}
	if g.ContrastDB() < 10 {
		t.Fatalf("contrast %.1f dB too low", g.ContrastDB())
	}
}

// Fig. 6(c): a transient run at 10 Gbps decodes to I AND W.
func TestOAGTransientDecodesToAND(t *testing.T) {
	g := NewOAG(0.35)
	rng := rand.New(rand.NewSource(42))
	n := 64
	ib := make([]bool, n)
	wb := make([]bool, n)
	for i := range ib {
		ib[i] = rng.Intn(2) == 1
		wb[i] = rng.Intn(2) == 1
	}
	const spb = 16
	trace := g.Transient(ib, wb, 10e9, spb)
	if len(trace) != n*spb {
		t.Fatalf("trace len=%d want %d", len(trace), n*spb)
	}
	got := g.DecodeTransient(trace, spb)
	for i := range got {
		want := ib[i] && wb[i]
		if got[i] != want {
			t.Fatalf("bit %d: decoded %v want %v (I=%v W=%v)", i, got[i], want, ib[i], wb[i])
		}
	}
}

// Fig. 7(a): supported bitrate increases with FWHM and saturates at 40 Gbps
// around FWHM ~ 0.8 nm.
func TestOAGMaxBitrateFrontier(t *testing.T) {
	const sens = -28.0
	prev := 0.0
	for _, fw := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7} {
		br := NewOAG(fw).MaxBitrate(sens)
		if br <= prev {
			t.Fatalf("BR not increasing at FWHM=%.1f: %.3g <= %.3g", fw, br, prev)
		}
		prev = br
	}
	if br := NewOAG(0.8).MaxBitrate(sens); br < 39e9 {
		t.Fatalf("BR at 0.8 nm = %.3g want ~40e9 (saturated)", br)
	}
	if br := NewOAG(1.2).MaxBitrate(sens); br != 40e9 {
		t.Fatalf("BR beyond saturation = %.3g want exactly the 40 Gbps cap", br)
	}
	// The paper operates at 30 Gbps with FWHM <= 0.8 nm: check 30 Gbps is
	// attainable below 0.8 nm.
	if br := NewOAG(0.62).MaxBitrate(sens); br < 30e9 {
		t.Fatalf("BR at 0.62 nm = %.3g want >= 30e9", br)
	}
}

func TestOMAMonotoneInBitrate(t *testing.T) {
	g := NewOAG(0.4)
	prev := math.Inf(1)
	for br := 5e9; br <= 60e9; br += 5e9 {
		oma := g.OMADBm(br, -27.8)
		if oma > prev+1e-9 {
			t.Fatalf("OMA should degrade with bitrate: %.2f > %.2f at %.0f", oma, prev, br)
		}
		prev = oma
	}
}

func TestPhotodetectorNoiseTerms(t *testing.T) {
	pd := DefaultPhotodetector()
	// Thermal-only floor at zero power: sqrt(4kT/RL + 2q*Id).
	wantFloor := math.Sqrt(4*BoltzmannConst*300/50 + 2*ElectronCharge*35e-9)
	if got := pd.NoisePSD(0); !almost(got, wantFloor, wantFloor*1e-6) {
		t.Fatalf("zero-power PSD=%.3g want %.3g", got, wantFloor)
	}
	// PSD grows with power (RIN term).
	if pd.NoisePSD(1e-3) <= pd.NoisePSD(1e-6) {
		t.Fatal("PSD should grow with power")
	}
}

func TestENOBAndSensitivityInverse(t *testing.T) {
	pd := DefaultPhotodetector()
	dr := 5e9
	for _, b := range []float64{1, 4, 6} {
		sens := pd.SensitivityDBm(b, dr)
		if math.IsNaN(sens) {
			t.Fatalf("sensitivity NaN for B=%g", b)
		}
		if got := pd.ENOB(DBmToWatts(sens), dr); got < b-0.01 {
			t.Fatalf("ENOB(sens)=%.3f want >= %g", got, b)
		}
	}
	// Resolution requests beyond the RIN ceiling are unreachable.
	ceil := pd.MaxENOB(dr)
	if !math.IsNaN(pd.SensitivityDBm(ceil+2, dr)) {
		t.Fatal("expected NaN beyond RIN ceiling")
	}
}

func TestENOBDecreasesWithDataRate(t *testing.T) {
	pd := DefaultPhotodetector()
	p := DBmToWatts(-20)
	if pd.ENOB(p, 1e9) <= pd.ENOB(p, 10e9) {
		t.Fatal("ENOB should fall as data rate rises")
	}
}

func TestLossChain(t *testing.T) {
	var c LossChain
	c.Add("coupling", 1.6).Add("osm", 4).AddN("obl", 0.01, 175)
	want := 1.6 + 4 + 1.75
	if !almost(c.TotalDB(), want, 1e-9) {
		t.Fatalf("TotalDB=%g want %g", c.TotalDB(), want)
	}
	if !almost(c.OutputDBm(10), 10-want, 1e-9) {
		t.Fatal("OutputDBm wrong")
	}
	out := c.Apply(1e-3)
	if !almost(WattsToDBm(out), -want, 1e-9) {
		t.Fatal("Apply wrong")
	}
	if s := c.String(); len(s) == 0 {
		t.Fatal("empty String")
	}
	var empty LossChain
	if empty.TotalDB() != 0 {
		t.Fatal("empty chain should be lossless")
	}
}

func TestLaserPower(t *testing.T) {
	l := DefaultLaser()
	if !almost(l.OpticalPowerW(), 10e-3, 1e-9) {
		t.Fatalf("optical power=%g want 10 mW", l.OpticalPowerW())
	}
	if !almost(l.ElectricalPowerW(), 100e-3, 1e-9) {
		t.Fatalf("electrical power=%g want 100 mW", l.ElectricalPowerW())
	}
}

func BenchmarkOAGTransient(b *testing.B) {
	g := NewOAG(0.35)
	rng := rand.New(rand.NewSource(1))
	n := 256
	ib := make([]bool, n)
	wb := make([]bool, n)
	for i := range ib {
		ib[i] = rng.Intn(2) == 1
		wb[i] = rng.Intn(2) == 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Transient(ib, wb, 30e9, 8)
	}
}
