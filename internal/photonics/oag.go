package photonics

import "math"

// OAG models the paper's Optical AND Gate (Fig. 6): an add-drop MRR with
// two embedded PN-junction operand terminals and an integrated microheater.
//
// The microheater tunes the operand-independent resonance from its
// fabrication position gamma to the programmed position eta, chosen so that
// only when BOTH operand junctions are driven (I=1, W=1) the accumulated
// electro-refractive shift lands the resonance on the input wavelength,
// steering it to the drop port: T(lambda_in) = I AND W.
type OAG struct {
	// Ring is the underlying resonator. Its ResonanceNM holds the
	// programmed (heater-tuned) position eta with no operands applied.
	Ring MRR
	// LambdaInNM is the input optical wavelength position.
	LambdaInNM float64
	// PNShiftNM is the resonance shift contributed by one driven
	// PN-junction operand terminal.
	PNShiftNM float64
	// ElectricalMaxBR is the driver/junction-limited maximum bitrate in
	// bit/s; Fig. 7(a) shows BR saturating at 40 Gbps.
	ElectricalMaxBR float64
	// MarginDB is the settled high-level power margin above detector
	// sensitivity assumed when solving the OMA constraint.
	MarginDB float64
	// SettleFactor scales the cavity photon lifetime into the effective
	// intensity settling constant tau = SettleFactor/(2*pi*df). It folds
	// charge/discharge asymmetry and driver rise time into one constant,
	// calibrated (4.14) so the Fig. 7(a) OMA frontier meets the 40 Gbps
	// electrical saturation at FWHM ~ 0.8 nm, as the paper reports.
	SettleFactor float64
}

// settleTau returns the effective intensity settling time constant in
// seconds.
func (g *OAG) settleTau() float64 {
	return g.SettleFactor / (2 * math.Pi * FWHMToHz(g.Ring.FWHMNM, g.LambdaInNM))
}

// NewOAG builds an OAG at the paper's default operating point: input
// wavelength 1550 nm, FWHM fwhmNM, PN shift of two linewidths (so a single
// driven junction leaves the ring ~12 dB off resonance), 40 Gbps electrical
// cap.
func NewOAG(fwhmNM float64) *OAG {
	const lambda = 1550.0
	shift := 2 * fwhmNM
	ring := NewMRR(lambda-2*shift, fwhmNM)
	return &OAG{
		Ring:            *ring,
		LambdaInNM:      lambda,
		PNShiftNM:       shift,
		ElectricalMaxBR: 40e9,
		MarginDB:        0.2,
		SettleFactor:    4.14,
	}
}

// SteadyStateDrop returns the settled drop-port transmission for operand
// bits (i, w): the logical AND behaviour of Fig. 6(b).
func (g *OAG) SteadyStateDrop(i, w bool) float64 {
	r := g.Ring // copy; apply operand shifts
	if i {
		r.Shift(g.PNShiftNM)
	}
	if w {
		r.Shift(g.PNShiftNM)
	}
	return r.DropTransmission(g.LambdaInNM)
}

// TruthTable returns the four settled drop-port transmissions indexed by
// [i][w].
func (g *OAG) TruthTable() [2][2]float64 {
	var t [2][2]float64
	for i := 0; i <= 1; i++ {
		for w := 0; w <= 1; w++ {
			t[i][w] = g.SteadyStateDrop(i == 1, w == 1)
		}
	}
	return t
}

// ContrastDB returns the worst-case optical contrast of the gate: the ratio
// between the (1,1) output level and the largest of the other three levels.
func (g *OAG) ContrastDB() float64 {
	t := g.TruthTable()
	on := t[1][1]
	off := math.Max(t[0][0], math.Max(t[0][1], t[1][0]))
	return LinearToDB(on / off)
}

// TransientSample is one point of a Fig. 6(c)-style transient analysis.
type TransientSample struct {
	TimeNS float64 // time in ns
	I, W   bool    // electrical operand bits applied
	Power  float64 // instantaneous drop-port transmission (linear)
}

// Transient runs a sampled transient analysis of the gate driven by the two
// operand bit sequences at bitrate br (bit/s), with samplesPerBit points
// per bit interval. The drop-port power follows the settled AND level with
// a first-order exponential response at the cavity photon lifetime —
// the behaviour Lumerical INTERCONNECT produces in the paper's Fig. 6(c).
func (g *OAG) Transient(ibits, wbits []bool, br float64, samplesPerBit int) []TransientSample {
	n := len(ibits)
	if len(wbits) < n {
		n = len(wbits)
	}
	tau := g.settleTau()
	tbit := 1 / br
	dt := tbit / float64(samplesPerBit)
	out := make([]TransientSample, 0, n*samplesPerBit)
	p := g.SteadyStateDrop(false, false)
	for k := 0; k < n; k++ {
		target := g.SteadyStateDrop(ibits[k], wbits[k])
		for s := 0; s < samplesPerBit; s++ {
			p += (target - p) * (1 - math.Exp(-dt/tau))
			out = append(out, TransientSample{
				TimeNS: (float64(k)*tbit + float64(s+1)*dt) * 1e9,
				I:      ibits[k], W: wbits[k],
				Power: p,
			})
		}
	}
	return out
}

// DecodeTransient thresholds a transient trace back into logical bits by
// sampling the final point of each bit interval against the midpoint
// between the settled (1,1) and worst off levels. It is used by tests to
// verify T(lambda_in) = I AND W at a given bitrate.
func (g *OAG) DecodeTransient(trace []TransientSample, samplesPerBit int) []bool {
	t := g.TruthTable()
	on := t[1][1]
	off := math.Max(t[0][0], math.Max(t[0][1], t[1][0]))
	thresh := (on + off) / 2
	var bits []bool
	for i := samplesPerBit - 1; i < len(trace); i += samplesPerBit {
		bits = append(bits, trace[i].Power >= thresh)
	}
	return bits
}

// OMADBm returns the optical modulation amplitude in dBm at bitrate br for
// a settled '1' power of settledDBm at the photodetector: the difference
// between the lowest '1' level and the highest '0' level after one bit time
// of exponential settling (worst-case single-bit eye).
func (g *OAG) OMADBm(br, settledDBm float64) float64 {
	tau := g.settleTau()
	tbit := 1 / br
	e := math.Exp(-tbit / tau)
	p1 := DBmToWatts(settledDBm)
	// Worst '1': rising from 0 for one bit. Worst '0': falling from p1.
	oma := p1 * (1 - 2*e)
	if oma <= 0 {
		return math.Inf(-1)
	}
	return WattsToDBm(oma)
}

// MaxBitrate returns the highest bitrate (bit/s) at which the gate's OMA
// stays at or above the detector sensitivity sensDBm, assuming the settled
// '1' level is sensDBm+MarginDB at the detector, capped by the electrical
// limit. This generates the Fig. 7(a) frontier: BR grows with FWHM (shorter
// photon lifetime) and saturates at ElectricalMaxBR (~0.8 nm for 40 Gbps).
func (g *OAG) MaxBitrate(sensDBm float64) float64 {
	settled := sensDBm + g.MarginDB
	lo, hi := 1e8, g.ElectricalMaxBR
	if g.OMADBm(lo, settled) < sensDBm {
		return 0
	}
	if g.OMADBm(hi, settled) >= sensDBm {
		return hi
	}
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		if g.OMADBm(mid, settled) >= sensDBm {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
