package photonics

import (
	"fmt"
	"math"
)

// MRR models an add-drop microring resonator with a Lorentzian passband.
// The drop-port power transmission at detuning d = lambda - resonance is
//
//	D(d) = Dmax / (1 + (2d/FWHM)^2)
//
// and the through-port transmission is Tmax - D(d)*(Tmax-Tmin), a standard
// first-order cavity approximation sufficient for the truth-table and
// loss-budget behaviour the paper relies on.
type MRR struct {
	// ResonanceNM is the current resonance wavelength in nm, including any
	// thermal or electro-refractive shift applied via Shift.
	ResonanceNM float64
	// FWHMNM is the full passband width at half maximum, in nm.
	FWHMNM float64
	// FSRNM is the free spectral range in nm (50 nm in the paper, Sec. V-B).
	FSRNM float64
	// DropILdB is the insertion loss at resonance through the drop port.
	DropILdB float64
	// ThroughILdB is the out-of-band insertion loss through the through
	// port (the paper's OBL, 0.01 dB for MRRs and OSMs).
	ThroughILdB float64
}

// NewMRR returns an MRR resonant at resonanceNM with the given FWHM and the
// paper's default FSR (50 nm) and losses.
func NewMRR(resonanceNM, fwhmNM float64) *MRR {
	return &MRR{
		ResonanceNM: resonanceNM,
		FWHMNM:      fwhmNM,
		FSRNM:       50,
		DropILdB:    0.01,
		ThroughILdB: 0.01,
	}
}

// Shift moves the resonance by deltaNM (positive = red shift). Thermal
// tuning via the integrated microheater and electro-refractive PN-junction
// shifts both reduce to resonance displacement at this level of modeling.
func (m *MRR) Shift(deltaNM float64) { m.ResonanceNM += deltaNM }

// effectiveDetuning folds the detuning into the principal FSR interval so
// that adjacent resonance orders are respected.
func (m *MRR) effectiveDetuning(lambdaNM float64) float64 {
	d := lambdaNM - m.ResonanceNM
	if m.FSRNM > 0 {
		d = math.Mod(d, m.FSRNM)
		if d > m.FSRNM/2 {
			d -= m.FSRNM
		} else if d < -m.FSRNM/2 {
			d += m.FSRNM
		}
	}
	return d
}

// DropTransmission returns the linear power transmission from input port to
// drop port at lambdaNM.
func (m *MRR) DropTransmission(lambdaNM float64) float64 {
	d := m.effectiveDetuning(lambdaNM)
	x := 2 * d / m.FWHMNM
	peak := DBToLinear(-m.DropILdB)
	return peak / (1 + x*x)
}

// ThroughTransmission returns the linear power transmission from input port
// to through port at lambdaNM: out-of-band it is the OBL floor; on
// resonance the power is diverted to the drop port.
func (m *MRR) ThroughTransmission(lambdaNM float64) float64 {
	floor := DBToLinear(-m.ThroughILdB)
	return floor * (1 - m.DropTransmission(lambdaNM))
}

// ExtinctionDB returns the drop-port extinction ratio in dB between zero
// detuning and detuning d nm.
func (m *MRR) ExtinctionDB(dNM float64) float64 {
	on := m.DropTransmission(m.ResonanceNM)
	off := m.DropTransmission(m.ResonanceNM + dNM)
	return LinearToDB(on / off)
}

// Validate reports an error if the MRR parameters are non-physical.
func (m *MRR) Validate() error {
	if m.FWHMNM <= 0 {
		return fmt.Errorf("photonics: FWHM must be positive, got %g", m.FWHMNM)
	}
	if m.FSRNM < 0 {
		return fmt.Errorf("photonics: FSR must be non-negative, got %g", m.FSRNM)
	}
	if m.FSRNM > 0 && m.FWHMNM >= m.FSRNM {
		return fmt.Errorf("photonics: FWHM %g >= FSR %g", m.FWHMNM, m.FSRNM)
	}
	return nil
}

// ChannelCount returns how many DWDM channels with the given spacing fit in
// one FSR — the theoretical VDPC size bound of Section V-B
// (N = FSR/spacing = 50/0.25 = 200 in the paper).
func (m *MRR) ChannelCount(spacingNM float64) int {
	if spacingNM <= 0 || m.FSRNM <= 0 {
		return 0
	}
	return int(m.FSRNM / spacingNM)
}
