// Package photonics provides analytic models of the silicon-photonic
// devices SCONNA is built from: add-drop microring resonators (MRRs), the
// paper's Optical AND Gate (OAG, Section IV-B), photodetectors with
// shot/thermal/RIN noise (Eq. 3), lasers, and insertion-loss chains
// (Eq. 4).
//
// The paper characterizes its devices with Ansys/Lumerical foundry tools;
// this package substitutes analytic Lorentzian cavity models with
// photon-lifetime-limited transient response (see DESIGN.md,
// "Substitutions"). All powers are in watts unless a name says dBm; all
// wavelengths in nanometres.
package photonics

import "math"

// Physical constants (SI).
const (
	SpeedOfLight   = 2.99792458e8    // m/s
	ElectronCharge = 1.602176634e-19 // C
	BoltzmannConst = 1.380649e-23    // J/K
)

// DBToLinear converts a decibel ratio to a linear power ratio.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to decibels.
func LinearToDB(lin float64) float64 { return 10 * math.Log10(lin) }

// DBmToWatts converts absolute power in dBm to watts.
func DBmToWatts(dbm float64) float64 { return 1e-3 * math.Pow(10, dbm/10) }

// WattsToDBm converts absolute power in watts to dBm.
func WattsToDBm(w float64) float64 { return 10 * math.Log10(w/1e-3) }

// FWHMToHz converts a resonance linewidth in nm at center wavelength
// lambdaNM (nm) to the equivalent linewidth in Hz: df = c*dl/lambda^2.
func FWHMToHz(fwhmNM, lambdaNM float64) float64 {
	lm := lambdaNM * 1e-9
	return SpeedOfLight * (fwhmNM * 1e-9) / (lm * lm)
}

// PhotonLifetime returns the cavity photon lifetime in seconds for a
// resonance of the given FWHM (nm) at lambdaNM: tau = 1/(2*pi*df).
func PhotonLifetime(fwhmNM, lambdaNM float64) float64 {
	return 1 / (2 * math.Pi * FWHMToHz(fwhmNM, lambdaNM))
}

// QualityFactor returns the loaded Q of a resonance: lambda/FWHM.
func QualityFactor(fwhmNM, lambdaNM float64) float64 { return lambdaNM / fwhmNM }
