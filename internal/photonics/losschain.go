package photonics

import (
	"fmt"
	"strings"
)

// LossChain accumulates named optical loss/gain contributions in dB and
// evaluates end-to-end power, the bookkeeping behind Eq. 4 of the paper.
type LossChain struct {
	terms []lossTerm
}

type lossTerm struct {
	name string
	dB   float64
}

// Add appends a loss of dB decibels (positive = attenuation) labelled name,
// returning the chain for fluent use.
func (c *LossChain) Add(name string, dB float64) *LossChain {
	c.terms = append(c.terms, lossTerm{name, dB})
	return c
}

// AddN appends n repetitions of a per-element loss as one aggregate term,
// e.g. out-of-band loss across N-1 cascaded OSMs.
func (c *LossChain) AddN(name string, perElementDB float64, n int) *LossChain {
	if n < 0 {
		n = 0
	}
	return c.Add(fmt.Sprintf("%s x%d", name, n), perElementDB*float64(n))
}

// TotalDB returns the summed loss in dB.
func (c *LossChain) TotalDB() float64 {
	t := 0.0
	for _, term := range c.terms {
		t += term.dB
	}
	return t
}

// Apply attenuates inputW (watts) by the chain's total loss.
func (c *LossChain) Apply(inputW float64) float64 {
	return inputW * DBToLinear(-c.TotalDB())
}

// OutputDBm returns the output power in dBm for an input of inputDBm.
func (c *LossChain) OutputDBm(inputDBm float64) float64 {
	return inputDBm - c.TotalDB()
}

// String renders the chain as an itemized budget, one term per line.
func (c *LossChain) String() string {
	var sb strings.Builder
	for _, t := range c.terms {
		fmt.Fprintf(&sb, "%-28s %7.3f dB\n", t.name, t.dB)
	}
	fmt.Fprintf(&sb, "%-28s %7.3f dB", "TOTAL", c.TotalDB())
	return sb.String()
}

// Laser models one laser diode of the laser block.
type Laser struct {
	// PowerDBm is the emitted optical power per wavelength channel
	// (10 dBm in Table III).
	PowerDBm float64
	// WallPlugEfficiency is eta_WPE (0.1 in Table III).
	WallPlugEfficiency float64
}

// DefaultLaser returns the Table III laser operating point.
func DefaultLaser() Laser { return Laser{PowerDBm: 10, WallPlugEfficiency: 0.1} }

// OpticalPowerW returns the emitted optical power in watts.
func (l Laser) OpticalPowerW() float64 { return DBmToWatts(l.PowerDBm) }

// ElectricalPowerW returns the wall-plug electrical power consumed:
// optical power divided by the wall-plug efficiency.
func (l Laser) ElectricalPowerW() float64 {
	return l.OpticalPowerW() / l.WallPlugEfficiency
}
