package core

import (
	"fmt"
)

// Fault injection: Section II-D cites high error tolerance as a core
// advantage of stochastic computing. This file lets tests and experiments
// inject physical faults into a VDPE — OSM lanes stuck dark (laser/ring
// failure) or stuck lit (gate jammed on resonance) — and measure the
// bounded, graceful degradation that unary value encoding guarantees,
// in contrast to positional binary encodings where one stuck line can
// flip the MSB.
type FaultKind int

// Supported fault kinds.
const (
	// StuckDark forces an OSM's output stream to all zeros.
	StuckDark FaultKind = iota
	// StuckLit forces an OSM's output stream to all ones.
	StuckLit
)

// String returns the fault mnemonic.
func (k FaultKind) String() string {
	switch k {
	case StuckDark:
		return "stuck-dark"
	case StuckLit:
		return "stuck-lit"
	}
	return "?"
}

// Fault pins one OSM lane of a VDPE.
type Fault struct {
	Lane int
	Kind FaultKind
}

// InjectFaults returns a copy-on-read view of the VDPE that applies the
// faults during Dot computations. The underlying VDPE is not modified.
type FaultyVDPE struct {
	v      *VDPE
	faults map[int]FaultKind
}

// InjectFaults wraps the VDPE with the given lane faults. Lane indices
// must be within [0, N).
func (v *VDPE) InjectFaults(faults ...Fault) (*FaultyVDPE, error) {
	fm := make(map[int]FaultKind, len(faults))
	for _, f := range faults {
		if f.Lane < 0 || f.Lane >= v.cfg.N {
			return nil, fmt.Errorf("core: fault lane %d out of range [0,%d)", f.Lane, v.cfg.N)
		}
		fm[f.Lane] = f.Kind
	}
	return &FaultyVDPE{v: v, faults: fm}, nil
}

// Dot computes the signed VDP with the injected faults applied: a
// stuck-dark lane contributes zero ones; a stuck-lit lane contributes a
// full stream of ones to its sign's accumulator.
func (f *FaultyVDPE) Dot(div []int, dkv []int) (SignedResult, error) {
	if len(div) != len(dkv) {
		return SignedResult{}, fmt.Errorf("core: DIV/DKV length mismatch %d vs %d", len(div), len(dkv))
	}
	if len(div) > f.v.cfg.N {
		return SignedResult{}, fmt.Errorf("core: vector size %d exceeds VDPE size %d", len(div), f.v.cfg.N)
	}
	scale := 1 << uint(f.v.cfg.Bits)
	var posOnes, negOnes int
	for i := range div {
		wb := dkv[i]
		neg := wb < 0
		if neg {
			wb = -wb
		}
		if div[i] < 0 || div[i] > scale || wb > scale {
			return SignedResult{}, fmt.Errorf("core: operand out of range at lane %d", i)
		}
		var c int
		switch kind, faulty := f.faults[i]; {
		case faulty && kind == StuckDark:
			c = 0
		case faulty && kind == StuckLit:
			c = scale
		default:
			c = f.v.osms[i].Multiply(div[i], wb)
		}
		if neg {
			negOnes += c
		} else {
			posOnes += c
		}
	}
	res := SignedResult{PosOnes: posOnes, NegOnes: negOnes}
	res.Exact = (posOnes - negOnes) * scale
	res.Est = res.Exact
	if !f.v.cfg.IdealADC {
		ep := float64(posOnes) * (1 + f.v.rng.NormFloat64()*f.v.adcSigma)
		en := float64(negOnes) * (1 + f.v.rng.NormFloat64()*f.v.adcSigma)
		res.Est = int(ep-en) * scale
	}
	return res, nil
}

// WorstCaseLaneError returns the maximum error (in integer product units)
// any single lane fault can induce: one full stream of 2^B ones worth
// 2^B product units each. For unary stochastic encoding this bound is
// independent of WHICH lane fails — the graceful-degradation property.
func (v *VDPE) WorstCaseLaneError() int {
	scale := 1 << uint(v.cfg.Bits)
	return scale * scale
}

// BinaryWorstCaseBitError returns, for contrast, the worst single-bit
// error of a conventional positional binary accumulator of the same
// dynamic range: flipping the MSB of an N*2^B*2^B-range value.
func (v *VDPE) BinaryWorstCaseBitError() int {
	rangeMax := v.cfg.N * (1 << uint(v.cfg.Bits)) * (1 << uint(v.cfg.Bits))
	msb := 1
	for msb*2 <= rangeMax {
		msb *= 2
	}
	return msb
}
