// Package core implements the functional plane of the SCONNA accelerator —
// the paper's primary contribution (Section IV): Optical Stochastic
// Multipliers (OSMs) built from a lookup-table peripheral and an Optical
// AND Gate, cascaded per wavelength into Vector-Dot-Product Elements
// (VDPEs) whose filter MRRs steer signed product streams onto two
// Photo-Charge Accumulators, grouped into Vector-Dot-Product Cores (VDPCs).
//
// This package computes *values* through the device models; timing, energy
// and area live in internal/accel (the performance plane). Both planes
// share the same device configurations.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitstream"
	"repro/internal/pca"
	"repro/internal/photonics"
	"repro/internal/sc"
)

// Config selects the functional operating point of a SCONNA VDPC.
type Config struct {
	// Bits is the operand precision B; streams carry 2^B bits.
	Bits int
	// N is the VDPE size: OSMs (wavelengths) per VDPE.
	N int
	// M is the number of VDPEs per VDPC.
	M int
	// FWHMNM is the OAG resonance linewidth (<= 0.8 nm per Sec. V-A).
	FWHMNM float64
	// ChannelSpacingNM is the DWDM inter-wavelength gap (0.25 nm).
	ChannelSpacingNM float64
	// BaseWavelengthNM anchors the DWDM grid (1550 nm).
	BaseWavelengthNM float64
	// PCA is the physical accumulator operating point (capacity,
	// TIR circuit, discharge). Its MaxOnes is derived from N and Bits.
	PCA pca.Config
	// ADCMAPEPct is the converter's mean absolute percentage error
	// applied to each PCA's accumulated count (1.3% in Sec. V-C; the TIR
	// amplifier auto-ranges the accumulation into the ADC window, so the
	// error is relative to the result, which is how the paper applies it
	// in its accuracy study).
	ADCMAPEPct float64
	// ADCSeed seeds the deterministic ADC noise streams.
	ADCSeed int64
	// IdealADC disables ADC noise (exact ones counts pass through); used
	// to isolate stochastic-stream error from converter error in the
	// accuracy studies.
	IdealADC bool
}

// DefaultConfig returns the paper's SCONNA operating point: B=8, N=M=176,
// BR=30 Gbps, FWHM=0.8 nm, 0.25 nm channel spacing.
func DefaultConfig() Config {
	return Config{
		Bits:             8,
		N:                176,
		M:                176,
		FWHMNM:           0.8,
		ChannelSpacingNM: 0.25,
		BaseWavelengthNM: 1550,
		PCA:              pca.DefaultConfig(),
		ADCMAPEPct:       1.3,
		ADCSeed:          1,
	}
}

// OSM is one Optical Stochastic Multiplier: the LUT/serializer peripheral
// feeding an Optical AND Gate at a dedicated wavelength (Fig. 5).
type OSM struct {
	// Wavelength is the DWDM channel this OSM modulates, in nm.
	Wavelength float64
	// Gate is the underlying OAG device model.
	Gate *photonics.OAG

	lut *sc.OSMLUT
}

// Multiply performs the stochastic multiplication of input value ib and
// weight magnitude wb (both in [0, 2^B]) and returns the ones count of the
// product stream — the charge quantum count its wavelength contributes to
// the PCA.
func (o *OSM) Multiply(ib, wb int) int { return o.lut.MulInts(ib, wb) }

// MultiplyStreams returns the full product stream, for callers that need
// the bit-level waveform (examples, device validation).
func (o *OSM) MultiplyStreams(ib, wb int) sc.SN {
	iv, wv := o.lut.Lookup(ib, wb)
	return sc.Mul(iv, wv)
}

// MultiplyTransient drives the OAG device model with the two serialized
// streams at bitrate br and decodes the drop-port waveform back to bits.
// It is the device-accurate (slow) path used to validate that the optical
// gate reproduces the logical AND at speed.
func (o *OSM) MultiplyTransient(ib, wb int, br float64, samplesPerBit int) *bitstream.Vector {
	iv, wv := o.lut.Lookup(ib, wb)
	trace := o.Gate.Transient(iv.Bits.Bools(), wv.Bits.Bools(), br, samplesPerBit)
	bits := o.Gate.DecodeTransient(trace, samplesPerBit)
	return bitstream.FromBools(bits)
}

// SignedResult is a VDPE output: the ADC-converted estimate alongside the
// exact (pre-ADC) accumulation, letting callers measure converter error.
type SignedResult struct {
	// Est is the VDP estimate in integer product units (sum of i*w),
	// reconstructed from the two converted PCA counts.
	Est int
	// Exact is the pre-ADC accumulation in the same units (still subject
	// to the <=1-bit-per-lane stochastic stream quantization).
	Exact int
	// PosOnes, NegOnes are the raw accumulated counts of the two PCAs.
	PosOnes, NegOnes int
}

// VDPE is one vector-dot-product element: a cascade of N OSMs, a filter
// MRR bank steering by weight sign, and a pair of PCAs (Fig. 4(a)).
type VDPE struct {
	cfg      Config
	osms     []*OSM
	adcSigma float64 // relative noise sigma realizing ADCMAPEPct
	rng      *rand.Rand
	maxOnes  int
}

// NewVDPE builds a VDPE for cfg. It validates that N fits the DWDM grid
// within one FSR.
func NewVDPE(cfg Config) (*VDPE, error) {
	if cfg.Bits < 1 || cfg.Bits > 12 {
		return nil, fmt.Errorf("core: unsupported precision B=%d", cfg.Bits)
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("core: VDPE size N=%d must be positive", cfg.N)
	}
	probe := photonics.NewMRR(cfg.BaseWavelengthNM, cfg.FWHMNM)
	if maxN := probe.ChannelCount(cfg.ChannelSpacingNM); cfg.N > maxN {
		return nil, fmt.Errorf("core: N=%d exceeds FSR-limited channel count %d", cfg.N, maxN)
	}
	lut := sc.NewOSMLUT(cfg.Bits)
	v := &VDPE{cfg: cfg}
	// The PCA capacity requirement is defined by this VDPE: it must
	// accumulate up to N*2^B ones (Sec. V-C).
	v.maxOnes = cfg.N * (1 << uint(cfg.Bits))
	// Realize the converter's MAPE as zero-mean Gaussian relative noise:
	// E|eps| = sigma*sqrt(2/pi) = MAPE/100.
	mape := cfg.ADCMAPEPct
	if mape == 0 && !cfg.IdealADC {
		mape = 1.3
	}
	v.adcSigma = mape / 100 * math.Sqrt(math.Pi/2)
	v.rng = rand.New(rand.NewSource(cfg.ADCSeed))
	for i := 0; i < cfg.N; i++ {
		gate := photonics.NewOAG(cfg.FWHMNM)
		lambda := cfg.BaseWavelengthNM - float64(i)*cfg.ChannelSpacingNM
		gate.LambdaInNM = lambda
		gate.Ring.ResonanceNM = lambda - 2*gate.PNShiftNM
		v.osms = append(v.osms, &OSM{Wavelength: lambda, Gate: gate, lut: lut})
	}
	return v, nil
}

// N returns the VDPE size.
func (v *VDPE) N() int { return v.cfg.N }

// OSMs exposes the per-wavelength multipliers (read-only use intended).
func (v *VDPE) OSMs() []*OSM { return v.osms }

// Dot computes the signed VDP of a decomposed input vector (DIV, unsigned
// values in [0,2^B]) against a decomposed kernel vector (DKV, signed values
// in [-2^B,2^B]), both at most N points, through the OSM cascade and the
// PCA pair. Shorter vectors leave the remaining OSM lanes dark.
func (v *VDPE) Dot(div []int, dkv []int) (SignedResult, error) {
	if len(div) != len(dkv) {
		return SignedResult{}, fmt.Errorf("core: DIV/DKV length mismatch %d vs %d", len(div), len(dkv))
	}
	if len(div) > v.cfg.N {
		return SignedResult{}, fmt.Errorf("core: vector size %d exceeds VDPE size %d", len(div), v.cfg.N)
	}
	scale := 1 << uint(v.cfg.Bits)
	var posOnes, negOnes int
	for i := range div {
		wb := dkv[i]
		neg := wb < 0
		if neg {
			wb = -wb
		}
		if div[i] < 0 || div[i] > scale || wb > scale {
			return SignedResult{}, fmt.Errorf("core: operand out of range at lane %d (i=%d w=%d)", i, div[i], dkv[i])
		}
		// The filter MRR steers this lane's product stream by sign bit.
		c := v.osms[i].Multiply(div[i], wb)
		if neg {
			negOnes += c
		} else {
			posOnes += c
		}
	}
	if posOnes > v.maxOnes || negOnes > v.maxOnes {
		return SignedResult{}, fmt.Errorf("core: accumulation %d/%d exceeds PCA capacity %d", posOnes, negOnes, v.maxOnes)
	}
	res := SignedResult{PosOnes: posOnes, NegOnes: negOnes}
	res.Exact = (posOnes - negOnes) * scale
	if v.cfg.IdealADC {
		res.Est = res.Exact
		return res, nil
	}
	// Each PCA's count passes through its own converter with the
	// calibrated relative error (Sec. V-C: 1.3% MAPE on computed results).
	ep := float64(posOnes) * (1 + v.rng.NormFloat64()*v.adcSigma)
	en := float64(negOnes) * (1 + v.rng.NormFloat64()*v.adcSigma)
	res.Est = int(math.Round(ep-en)) * scale
	return res, nil
}

// VDPC is a vector-dot-product core: M VDPEs fed from one DWDM laser
// block through the aggregation split (Fig. 4(a)).
type VDPC struct {
	cfg   Config
	vdpes []*VDPE
}

// NewVDPC builds a VDPC with M VDPEs.
func NewVDPC(cfg Config) (*VDPC, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("core: VDPC size M=%d must be positive", cfg.M)
	}
	c := &VDPC{cfg: cfg}
	for i := 0; i < cfg.M; i++ {
		vcfg := cfg
		vcfg.ADCSeed = cfg.ADCSeed + int64(2*i)
		v, err := NewVDPE(vcfg)
		if err != nil {
			return nil, err
		}
		c.vdpes = append(c.vdpes, v)
	}
	return c, nil
}

// M returns the VDPE count.
func (c *VDPC) M() int { return len(c.vdpes) }

// VDPE returns the i-th element.
func (c *VDPC) VDPE(i int) *VDPE { return c.vdpes[i] }

// DotBatch distributes a batch of (DIV, DKV) pairs round-robin across the
// M VDPEs and returns one result per pair.
func (c *VDPC) DotBatch(divs, dkvs [][]int) ([]SignedResult, error) {
	if len(divs) != len(dkvs) {
		return nil, fmt.Errorf("core: batch length mismatch %d vs %d", len(divs), len(dkvs))
	}
	out := make([]SignedResult, len(divs))
	for i := range divs {
		r, err := c.vdpes[i%len(c.vdpes)].Dot(divs[i], dkvs[i])
		if err != nil {
			return nil, fmt.Errorf("core: pair %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// DotLarge computes a full-length VDP of size S > N by decomposing the
// vectors into ceil(S/N) DIV/DKV chunks (Sec. II-B), computing each chunk
// on a VDPE, and reducing the partial sums digitally — the psum reduction
// the paper's Section III-A analyses. It returns the reduced estimate, the
// exact pre-ADC value, and the chunk count C.
func (c *VDPC) DotLarge(input []int, kernel []int) (est, exact, chunks int, err error) {
	if len(input) != len(kernel) {
		return 0, 0, 0, fmt.Errorf("core: vector length mismatch %d vs %d", len(input), len(kernel))
	}
	n := c.cfg.N
	for off := 0; off < len(input); off += n {
		end := off + n
		if end > len(input) {
			end = len(input)
		}
		r, derr := c.vdpes[chunks%len(c.vdpes)].Dot(input[off:end], kernel[off:end])
		if derr != nil {
			return 0, 0, 0, derr
		}
		est += r.Est
		exact += r.Exact
		chunks++
	}
	return est, exact, chunks, nil
}

// ExactDot returns the true integer dot product for reference.
func ExactDot(a, b []int) int {
	s := 0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
