package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// smallConfig returns a fast functional configuration for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Bits = 6
	cfg.N = 16
	cfg.M = 4
	return cfg
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Bits != 8 || cfg.N != 176 || cfg.M != 176 {
		t.Fatal("default operating point must be B=8, N=M=176")
	}
	if cfg.FWHMNM != 0.8 || cfg.ChannelSpacingNM != 0.25 {
		t.Fatal("default FWHM/spacing must be 0.8/0.25 nm")
	}
}

func TestNewVDPEValidation(t *testing.T) {
	cfg := smallConfig()
	if _, err := NewVDPE(cfg); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.N = 300 // beyond FSR/spacing = 200
	if _, err := NewVDPE(bad); err == nil {
		t.Fatal("expected FSR violation error")
	}
	bad = cfg
	bad.N = 0
	if _, err := NewVDPE(bad); err == nil {
		t.Fatal("expected N validation error")
	}
	bad = cfg
	bad.Bits = 0
	if _, err := NewVDPE(bad); err == nil {
		t.Fatal("expected precision validation error")
	}
}

func TestOSMWavelengthGrid(t *testing.T) {
	cfg := smallConfig()
	v, err := NewVDPE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	osms := v.OSMs()
	if len(osms) != cfg.N {
		t.Fatalf("got %d OSMs want %d", len(osms), cfg.N)
	}
	for i, o := range osms {
		want := cfg.BaseWavelengthNM - float64(i)*cfg.ChannelSpacingNM
		if math.Abs(o.Wavelength-want) > 1e-9 {
			t.Fatalf("OSM %d wavelength %.3f want %.3f", i, o.Wavelength, want)
		}
	}
}

// Property: OSM.Multiply equals the exact integer product within one
// stream bit.
func TestOSMMultiplyAccuracy(t *testing.T) {
	cfg := smallConfig()
	v, _ := NewVDPE(cfg)
	o := v.OSMs()[0]
	scale := 1 << uint(cfg.Bits)
	f := func(a, b uint8) bool {
		ia, wb := int(a)%(scale+1), int(b)%(scale+1)
		got := float64(o.Multiply(ia, wb))
		exact := float64(ia) * float64(wb) / float64(scale)
		return math.Abs(got-exact) <= 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The device-accurate transient path must agree bit-for-bit with the fast
// logical path at the paper's 30 Gbps operating point.
func TestOSMTransientMatchesLogical(t *testing.T) {
	cfg := smallConfig()
	v, _ := NewVDPE(cfg)
	o := v.OSMs()[0]
	for _, pair := range [][2]int{{10, 50}, {32, 32}, {0, 64}, {64, 64}, {1, 1}} {
		fast := o.MultiplyStreams(pair[0], pair[1])
		slow := o.MultiplyTransient(pair[0], pair[1], 30e9, 8)
		if !fast.Bits.Equal(slow) {
			t.Fatalf("(%d,%d): transient decode disagrees with logical AND", pair[0], pair[1])
		}
	}
}

func TestVDPEDotIdealADC(t *testing.T) {
	cfg := smallConfig()
	cfg.IdealADC = true
	v, err := NewVDPE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scale := 1 << uint(cfg.Bits)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(cfg.N)
		div := make([]int, k)
		dkv := make([]int, k)
		for i := range div {
			div[i] = rng.Intn(scale + 1)
			dkv[i] = rng.Intn(2*scale+1) - scale
		}
		res, err := v.Dot(div, dkv)
		if err != nil {
			t.Fatal(err)
		}
		exact := ExactDot(div, dkv)
		// One stream bit per lane, each worth `scale` product units.
		tol := float64(k * scale)
		if math.Abs(float64(res.Est-exact)) > tol {
			t.Fatalf("trial %d: est=%d exact=%d tol=%g", trial, res.Est, exact, tol)
		}
		if res.Est != res.Exact {
			t.Fatal("ideal ADC must pass exact accumulation through")
		}
	}
}

func TestVDPEDotWithADCError(t *testing.T) {
	cfg := smallConfig()
	v, err := NewVDPE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scale := 1 << uint(cfg.Bits)
	rng := rand.New(rand.NewSource(10))
	sigma := cfg.ADCMAPEPct / 100 * math.Sqrt(math.Pi/2)
	if sigma == 0 {
		sigma = 1.3 / 100 * math.Sqrt(math.Pi/2)
	}
	for trial := 0; trial < 30; trial++ {
		div := make([]int, cfg.N)
		dkv := make([]int, cfg.N)
		for i := range div {
			div[i] = rng.Intn(scale + 1)
			dkv[i] = rng.Intn(2*scale+1) - scale
		}
		res, err := v.Dot(div, dkv)
		if err != nil {
			t.Fatal(err)
		}
		exact := ExactDot(div, dkv)
		// Error budget: one stream bit per lane plus 6-sigma of the
		// relative converter noise on each PCA's accumulation.
		tol := float64(cfg.N*scale) + 6*sigma*float64(res.PosOnes+res.NegOnes)*float64(scale)
		if math.Abs(float64(res.Est-exact)) > tol {
			t.Fatalf("trial %d: est=%d exact=%d tol=%g", trial, res.Est, exact, tol)
		}
	}
}

func TestVDPEDotErrors(t *testing.T) {
	v, _ := NewVDPE(smallConfig())
	if _, err := v.Dot([]int{1, 2}, []int{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	long := make([]int, 17)
	if _, err := v.Dot(long, long); err == nil {
		t.Fatal("expected oversize error")
	}
	if _, err := v.Dot([]int{-1}, []int{1}); err == nil {
		t.Fatal("expected range error for negative input")
	}
	if _, err := v.Dot([]int{1}, []int{1000}); err == nil {
		t.Fatal("expected range error for oversized weight")
	}
}

func TestVDPCBatchAndLarge(t *testing.T) {
	cfg := smallConfig()
	cfg.IdealADC = true
	c, err := NewVDPC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.M() != cfg.M {
		t.Fatalf("M=%d want %d", c.M(), cfg.M)
	}
	if c.VDPE(0) == nil {
		t.Fatal("VDPE accessor broken")
	}
	scale := 1 << uint(cfg.Bits)
	rng := rand.New(rand.NewSource(11))

	// Batch of small pairs.
	var divs, dkvs [][]int
	for i := 0; i < 10; i++ {
		d := make([]int, 8)
		k := make([]int, 8)
		for j := range d {
			d[j] = rng.Intn(scale + 1)
			k[j] = rng.Intn(2*scale+1) - scale
		}
		divs = append(divs, d)
		dkvs = append(dkvs, k)
	}
	res, err := c.DotBatch(divs, dkvs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		exact := ExactDot(divs[i], dkvs[i])
		if math.Abs(float64(r.Est-exact)) > float64(8*scale) {
			t.Fatalf("batch %d: est=%d exact=%d", i, r.Est, exact)
		}
	}

	// Large vector: S = 100 with N = 16 -> 7 chunks.
	S := 100
	input := make([]int, S)
	kernel := make([]int, S)
	for i := range input {
		input[i] = rng.Intn(scale + 1)
		kernel[i] = rng.Intn(2*scale+1) - scale
	}
	est, exact, chunks, err := c.DotLarge(input, kernel)
	if err != nil {
		t.Fatal(err)
	}
	if chunks != 7 {
		t.Fatalf("chunks=%d want ceil(100/16)=7", chunks)
	}
	trueDot := ExactDot(input, kernel)
	if exact != est {
		t.Fatal("ideal ADC: est should equal exact")
	}
	if math.Abs(float64(est-trueDot)) > float64(S*scale) {
		t.Fatalf("est=%d true=%d", est, trueDot)
	}
}

func TestDotBatchMismatch(t *testing.T) {
	c, _ := NewVDPC(smallConfig())
	if _, err := c.DotBatch(make([][]int, 2), make([][]int, 1)); err == nil {
		t.Fatal("expected batch mismatch error")
	}
	if _, _, _, err := c.DotLarge(make([]int, 3), make([]int, 2)); err == nil {
		t.Fatal("expected large mismatch error")
	}
}

func TestExactDot(t *testing.T) {
	if ExactDot([]int{1, 2, 3}, []int{4, -5, 6}) != 4-10+18 {
		t.Fatal("ExactDot broken")
	}
	if ExactDot(nil, nil) != 0 {
		t.Fatal("empty ExactDot should be 0")
	}
}

func BenchmarkVDPEDot176(b *testing.B) {
	cfg := DefaultConfig()
	cfg.IdealADC = true
	v, err := NewVDPE(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	div := make([]int, cfg.N)
	dkv := make([]int, cfg.N)
	for i := range div {
		div[i] = rng.Intn(257)
		dkv[i] = rng.Intn(513) - 256
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Dot(div, dkv); err != nil {
			b.Fatal(err)
		}
	}
}
