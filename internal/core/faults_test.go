package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestFaultKindString(t *testing.T) {
	if StuckDark.String() != "stuck-dark" || StuckLit.String() != "stuck-lit" {
		t.Fatal("fault names broken")
	}
	if FaultKind(9).String() != "?" {
		t.Fatal("unknown fault")
	}
}

func TestInjectFaultsValidation(t *testing.T) {
	cfg := smallConfig()
	v, _ := NewVDPE(cfg)
	if _, err := v.InjectFaults(Fault{Lane: 99}); err == nil {
		t.Fatal("expected out-of-range lane error")
	}
	if _, err := v.InjectFaults(Fault{Lane: -1}); err == nil {
		t.Fatal("expected negative lane error")
	}
}

// The SC error-tolerance claim (Sec. II-D): a single stuck lane perturbs
// the result by at most one full stream — 2^B * 2^B product units —
// regardless of which lane fails, while a binary accumulator's worst
// single-bit error is N times larger.
func TestSingleLaneFaultBounded(t *testing.T) {
	cfg := smallConfig()
	cfg.IdealADC = true
	v, err := NewVDPE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scale := 1 << uint(cfg.Bits)
	rng := rand.New(rand.NewSource(21))
	div := make([]int, cfg.N)
	dkv := make([]int, cfg.N)
	for i := range div {
		div[i] = rng.Intn(scale + 1)
		dkv[i] = rng.Intn(2*scale+1) - scale
	}
	clean, err := v.Dot(div, dkv)
	if err != nil {
		t.Fatal(err)
	}
	bound := v.WorstCaseLaneError()
	for lane := 0; lane < cfg.N; lane++ {
		for _, kind := range []FaultKind{StuckDark, StuckLit} {
			fv, err := v.InjectFaults(Fault{Lane: lane, Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			res, err := fv.Dot(div, dkv)
			if err != nil {
				t.Fatal(err)
			}
			if diff := abs(res.Est - clean.Est); diff > bound {
				t.Fatalf("lane %d %v: error %d exceeds bound %d", lane, kind, diff, bound)
			}
		}
	}
	// Contrast: binary positional encoding's worst bit error is N/2 to N
	// times the stochastic bound.
	if v.BinaryWorstCaseBitError() < bound*cfg.N/2 {
		t.Fatalf("binary worst-case %d should dwarf stochastic bound %d",
			v.BinaryWorstCaseBitError(), bound)
	}
}

// Errors accumulate linearly (not catastrophically) with the number of
// faulty lanes.
func TestMultiLaneFaultLinearGrowth(t *testing.T) {
	cfg := smallConfig()
	cfg.IdealADC = true
	v, _ := NewVDPE(cfg)
	scale := 1 << uint(cfg.Bits)
	rng := rand.New(rand.NewSource(22))
	div := make([]int, cfg.N)
	dkv := make([]int, cfg.N)
	for i := range div {
		div[i] = rng.Intn(scale + 1)
		dkv[i] = rng.Intn(2*scale+1) - scale
	}
	clean, _ := v.Dot(div, dkv)
	for k := 1; k <= 4; k++ {
		faults := make([]Fault, k)
		for i := range faults {
			faults[i] = Fault{Lane: i, Kind: StuckLit}
		}
		fv, _ := v.InjectFaults(faults...)
		res, _ := fv.Dot(div, dkv)
		if diff := abs(res.Est - clean.Est); diff > k*v.WorstCaseLaneError() {
			t.Fatalf("%d faults: error %d exceeds %d", k, diff, k*v.WorstCaseLaneError())
		}
	}
}

// A stuck-dark lane on a zero-weight position is invisible.
func TestStuckDarkOnZeroWeightHarmless(t *testing.T) {
	cfg := smallConfig()
	cfg.IdealADC = true
	v, _ := NewVDPE(cfg)
	div := []int{10, 20, 30}
	dkv := []int{5, 0, 7}
	clean, _ := v.Dot(div, dkv)
	fv, _ := v.InjectFaults(Fault{Lane: 1, Kind: StuckDark})
	res, _ := fv.Dot(div, dkv)
	if res.Est != clean.Est {
		t.Fatalf("stuck-dark on zero product changed result: %d vs %d", res.Est, clean.Est)
	}
}

func TestFaultyDotValidation(t *testing.T) {
	v, _ := NewVDPE(smallConfig())
	fv, _ := v.InjectFaults()
	if _, err := fv.Dot([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("expected mismatch error")
	}
	long := make([]int, 99)
	if _, err := fv.Dot(long, long); err == nil {
		t.Fatal("expected oversize error")
	}
	if _, err := fv.Dot([]int{-4}, []int{1}); err == nil {
		t.Fatal("expected range error")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

var _ = math.Abs
