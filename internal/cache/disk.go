package cache

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/digest"
)

// diskStore persists one gob file per digest under dir. Writes go through
// a temp file + rename so concurrent writers (including other processes
// sharing the directory) can never expose a torn entry; both sides of a
// rename race hold identical bytes, because the content is addressed by a
// digest of everything that determines it.
type diskStore[V any] struct {
	dir string
}

func newDiskStore[V any](dir string) (*diskStore[V], error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: disk store: %w", err)
	}
	return &diskStore[V]{dir: dir}, nil
}

func (d *diskStore[V]) path(key digest.Digest) string {
	return filepath.Join(d.dir, key.String()+".gob")
}

// load reads the entry for key. A missing file is (zero, false, nil); a
// present-but-unreadable file reports its error so the caller can count
// it and fall back to computing.
func (d *diskStore[V]) load(key digest.Digest) (V, bool, error) {
	var v V
	f, err := os.Open(d.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return v, false, nil
	}
	if err != nil {
		return v, false, err
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(&v); err != nil {
		return v, false, fmt.Errorf("cache: corrupt entry %s: %w", key.Short(), err)
	}
	return v, true, nil
}

func (d *diskStore[V]) store(key digest.Digest, v V) error {
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := gob.NewEncoder(tmp).Encode(v); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), d.path(key))
}
