package cache

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/digest"
)

// diskStore persists one gob file per digest under dir. Writes go through
// a temp file + rename so concurrent writers (including other processes
// sharing the directory) can never expose a torn entry; both sides of a
// rename race hold identical bytes, because the content is addressed by a
// digest of everything that determines it.
type diskStore[V any] struct {
	dir string
}

func newDiskStore[V any](dir string) (*diskStore[V], error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: disk store: %w", err)
	}
	return &diskStore[V]{dir: dir}, nil
}

func (d *diskStore[V]) path(key digest.Digest) string {
	return filepath.Join(d.dir, key.String()+".gob")
}

// load reads the entry for key. A missing file is (zero, false, nil); a
// present-but-unreadable file reports its error so the caller can count
// it and fall back to computing.
func (d *diskStore[V]) load(key digest.Digest) (V, bool, error) {
	var v V
	f, err := os.Open(d.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return v, false, nil
	}
	if err != nil {
		return v, false, err
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(&v); err != nil {
		return v, false, fmt.Errorf("cache: corrupt entry %s: %w", key.Short(), err)
	}
	return v, true, nil
}

func (d *diskStore[V]) store(key digest.Digest, v V) error {
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := gob.NewEncoder(tmp).Encode(v); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), d.path(key))
}

// gcEntry is one on-disk cache file as seen by the collector.
type gcEntry struct {
	name  string
	size  int64
	mtime time.Time
}

// tmpGrace is how long an orphaned temp file (a crashed writer's
// leftover) survives garbage collection. A live writer holds its temp
// file for milliseconds, so an hour is generously safe; without this
// floor a MaxBytes-only store would never reclaim crash debris (temp
// files are invisible to the size pass — they are not addressable
// entries).
const tmpGrace = time.Hour

// gc bounds the store: entries older than maxAge are removed, then the
// least-recently-written entries (LRU by mtime — a disk entry is written
// once, on first compute, so mtime is its last-useful-write time) are
// evicted oldest-first until the total size fits maxBytes. Either bound
// <= 0 disables that pass. Temp files from crashed writers are collected
// once older than min(maxAge, tmpGrace). Missing files (a concurrent GC
// or a racing writer) are not errors.
func (d *diskStore[V]) gc(maxBytes int64, maxAge time.Duration, now time.Time) (removed int, freed int64, err error) {
	dents, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("cache: gc scan: %w", err)
	}
	var entries []gcEntry
	var total int64
	for _, de := range dents {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		isEntry := strings.HasSuffix(name, ".gob")
		isTmp := strings.HasPrefix(name, ".tmp-")
		if !isEntry && !isTmp {
			continue
		}
		info, ierr := de.Info()
		if ierr != nil {
			continue // raced with a concurrent remove
		}
		e := gcEntry{name: name, size: info.Size(), mtime: info.ModTime()}
		deadline := maxAge
		if isTmp && (deadline <= 0 || deadline > tmpGrace) {
			deadline = tmpGrace
		}
		if deadline > 0 && now.Sub(e.mtime) > deadline {
			if d.remove(e.name) {
				removed++
				freed += e.size
			}
			continue
		}
		if isTmp {
			continue // young temp file: a writer may still own it
		}
		entries = append(entries, e)
		total += e.size
	}
	if maxBytes <= 0 || total <= maxBytes {
		return removed, freed, nil
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].name < entries[j].name // deterministic tie-break
	})
	for _, e := range entries {
		if total <= maxBytes {
			break
		}
		if d.remove(e.name) {
			removed++
			freed += e.size
		}
		total -= e.size
	}
	return removed, freed, nil
}

// remove deletes one store file, reporting whether this process did the
// removal (a concurrent collector may have won the race).
func (d *diskStore[V]) remove(name string) bool {
	return os.Remove(filepath.Join(d.dir, name)) == nil
}
