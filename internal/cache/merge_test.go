package cache

import (
	"os"
	"path/filepath"
	"testing"
)

// TestMergeDirs pins the union contract at the file level: entries copy
// to their relative paths, present entries are skipped (content-
// addressed: present means identical), and temp files or foreign files
// in a source never travel.
func TestMergeDirs(t *testing.T) {
	t.Parallel()
	write := func(root, rel, body string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srcA, srcB, dst := t.TempDir(), t.TempDir(), t.TempDir()
	write(srcA, "accel/aaaa.gob", "a")
	write(srcA, "accel/.tmp-123", "junk")   // writer temp: never travels
	write(srcA, "accel/README.txt", "junk") // foreign file: never travels
	write(srcB, "accel/bbbb.gob", "b")
	write(srcB, "scalability/cccc.gob", "c")
	write(dst, "accel/aaaa.gob", "a") // already present: skipped

	copied, err := MergeDirs(dst, srcA, srcB)
	if err != nil {
		t.Fatal(err)
	}
	if copied != 2 {
		t.Fatalf("copied %d entries, want 2 (aaaa present, junk skipped)", copied)
	}
	for rel, want := range map[string]string{
		"accel/aaaa.gob":       "a",
		"accel/bbbb.gob":       "b",
		"scalability/cccc.gob": "c",
	} {
		got, err := os.ReadFile(filepath.Join(dst, rel))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("%s holds %q, want %q", rel, got, want)
		}
	}
	for _, rel := range []string{"accel/.tmp-123", "accel/README.txt"} {
		if _, err := os.Stat(filepath.Join(dst, rel)); !os.IsNotExist(err) {
			t.Fatalf("junk file %s traveled into dst", rel)
		}
	}
	if again, err := MergeDirs(dst, srcA, srcB); err != nil || again != 0 {
		t.Fatalf("re-merge copied %d entries (err %v), want 0", again, err)
	}
}
