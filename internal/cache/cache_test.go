package cache

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/digest"
)

func key(s string) digest.Digest { return digest.New().Str(s).Sum() }

// value builds a distinct payload per key so round-trip tests can detect
// cross-key mixups.
func value(s string) []float64 { return []float64{float64(len(s)), 1.5} }

func mustGet[V any](t *testing.T, c *Cache[V], k digest.Digest, compute func() (V, error)) V {
	t.Helper()
	v, err := c.GetOrCompute(k, compute)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHitMissAccounting(t *testing.T) {
	t.Parallel()
	c, err := New[[]float64](Options{})
	if err != nil {
		t.Fatal(err)
	}
	computes := 0
	get := func(s string) []float64 {
		return mustGet(t, c, key(s), func() ([]float64, error) {
			computes++
			return value(s), nil
		})
	}
	get("a")
	if got := get("a"); !reflect.DeepEqual(got, value("a")) {
		t.Fatalf("hit returned %v", got)
	}
	get("b")
	get("a")
	if computes != 2 {
		t.Fatalf("computed %d times, want 2", computes)
	}
	s := c.Stats()
	if s.Lookups != 4 || s.MemHits != 2 || s.Misses != 2 || s.DiskHits != 0 {
		t.Fatalf("stats = %+v, want 4 lookups / 2 mem hits / 2 misses", s)
	}
	if s.Hits() != 2 {
		t.Fatalf("Hits() = %d, want 2", s.Hits())
	}
	if rate := s.HitRate(); rate != 0.5 {
		t.Fatalf("HitRate() = %v, want 0.5", rate)
	}
}

func TestLRUEviction(t *testing.T) {
	t.Parallel()
	c, err := New[[]float64](Options{Entries: 2})
	if err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	get := func(s string) {
		mustGet(t, c, key(s), func() ([]float64, error) {
			computes.Add(1)
			return value(s), nil
		})
	}
	get("a")
	get("b")
	get("a") // refresh a: b is now the LRU entry
	get("c") // evicts b
	if c.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", c.Len())
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions)
	}
	get("a") // must still be resident
	if computes.Load() != 3 {
		t.Fatalf("computed %d times before re-fetching b, want 3", computes.Load())
	}
	get("b") // evicted: recomputes
	if computes.Load() != 4 {
		t.Fatalf("computed %d times after re-fetching b, want 4", computes.Load())
	}
}

func TestErrorsNotCached(t *testing.T) {
	t.Parallel()
	c, err := New[[]float64](Options{})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		if _, err := c.GetOrCompute(key("x"), func() ([]float64, error) {
			calls++
			return nil, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("got err %v, want boom", err)
		}
	}
	if calls != 2 {
		t.Fatalf("failed compute ran %d times, want 2 (errors must not be cached)", calls)
	}
	v := mustGet(t, c, key("x"), func() ([]float64, error) { return value("x"), nil })
	if !reflect.DeepEqual(v, value("x")) {
		t.Fatalf("recovery compute returned %v", v)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	c1, err := New[[]float64](Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := mustGet(t, c1, key("cell"), func() ([]float64, error) { return value("cell"), nil })
	if s := c1.Stats(); s.DiskWrites != 1 {
		t.Fatalf("DiskWrites = %d, want 1", s.DiskWrites)
	}

	// A fresh cache over the same directory must serve the entry from
	// disk without computing.
	c2, err := New[[]float64](Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got := mustGet(t, c2, key("cell"), func() ([]float64, error) {
		t.Fatal("compute ran despite a persisted entry")
		return nil, nil
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("disk round-trip: got %v, want %v", got, want)
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 disk hit / 0 misses", s)
	}
	// The disk hit is promoted into memory: a second lookup is a mem hit.
	mustGet(t, c2, key("cell"), func() ([]float64, error) { return nil, errors.New("no") })
	if s := c2.Stats(); s.MemHits != 1 {
		t.Fatalf("MemHits = %d after promoted lookup, want 1", s.MemHits)
	}
}

func TestCorruptDiskEntryDegradesToCompute(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	c1, err := New[[]float64](Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustGet(t, c1, key("cell"), func() ([]float64, error) { return value("cell"), nil })
	entries, err := filepath.Glob(filepath.Join(dir, "*.gob"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("glob: %v (%d entries)", err, len(entries))
	}
	if err := os.WriteFile(entries[0], []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := New[[]float64](Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got := mustGet(t, c2, key("cell"), func() ([]float64, error) { return value("cell"), nil })
	if !reflect.DeepEqual(got, value("cell")) {
		t.Fatalf("got %v after corrupt entry", got)
	}
	s := c2.Stats()
	if s.DiskErrors == 0 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want a disk error and one compute", s)
	}
}

// Single-flight: any number of concurrent lookups of one digest run the
// compute exactly once, and every caller sees the same value. Run with
// -race.
func TestSingleFlight(t *testing.T) {
	t.Parallel()
	c, err := New[[]float64](Options{})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 32
	var computes atomic.Int64
	var wg sync.WaitGroup
	results := make([][]float64, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.GetOrCompute(key("one"), func() ([]float64, error) {
				computes.Add(1)
				return value("one"), nil
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if computes.Load() != 1 {
		t.Fatalf("computed %d times for one digest, want 1", computes.Load())
	}
	for i, r := range results {
		if !reflect.DeepEqual(r, value("one")) {
			t.Fatalf("caller %d saw %v", i, r)
		}
	}
	s := c.Stats()
	if s.Lookups != callers || s.Misses != 1 || s.Hits() != callers-1 {
		t.Fatalf("stats = %+v, want %d lookups / 1 miss / %d hits", s, callers, callers-1)
	}
}

// A concurrent sweep whose job list repeats digests must compute each
// unique digest exactly once — the cache property that makes duplicate
// sweep cells free. Run with -race.
func TestSingleFlightUniqueDigests(t *testing.T) {
	t.Parallel()
	c, err := New[[]float64](Options{})
	if err != nil {
		t.Fatal(err)
	}
	const unique, dup = 7, 13
	counts := make([]atomic.Int64, unique)
	errs := make([]error, unique*dup)
	var wg sync.WaitGroup
	for u := 0; u < unique; u++ {
		for d := 0; d < dup; d++ {
			wg.Add(1)
			go func(u, i int) {
				defer wg.Done()
				_, errs[i] = c.GetOrCompute(key(string(rune('a'+u))), func() ([]float64, error) {
					counts[u].Add(1)
					return value("v"), nil
				})
			}(u, u*dup+d)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	for u := range counts {
		if got := counts[u].Load(); got != 1 {
			t.Fatalf("digest %d computed %d times, want 1", u, got)
		}
	}
	if s := c.Stats(); s.Misses != unique || s.Lookups != unique*dup {
		t.Fatalf("stats = %+v, want %d misses over %d lookups", s, unique, unique*dup)
	}
}

// The String format is grepped verbatim by the CI cache-effectiveness
// smoke step; both CLIs print it. Keep it pinned.
func TestStatsString(t *testing.T) {
	t.Parallel()
	s := Stats{Lookups: 12, MemHits: 12}
	if got := s.String(); got != "12 lookups, 12 hits, 0 misses (100.0% hits)" {
		t.Fatalf("Stats.String() = %q", got)
	}
}
