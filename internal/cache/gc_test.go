package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/digest"
)

func gcKey(i int) digest.Digest {
	h := digest.New()
	h.Str(fmt.Sprintf("gc-test-%d", i))
	return h.Sum()
}

// fillStore computes n entries into a disk-backed cache and returns the
// store directory's entry file names in creation order.
func fillStore(t *testing.T, dir string, n int) []string {
	t.Helper()
	c, err := New[[]byte](Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		k := gcKey(i)
		if _, err := c.GetOrCompute(k, func() ([]byte, error) {
			return make([]byte, 1024), nil
		}); err != nil {
			t.Fatal(err)
		}
		names[i] = k.String() + ".gob"
	}
	return names
}

func entryCount(t *testing.T, dir string) int {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range des {
		if filepath.Ext(de.Name()) == ".gob" {
			n++
		}
	}
	return n
}

// TestGCMaxAgeEvictsOldEntries ages half the store below the bound and
// reopens it: only the aged entries disappear, and the survivors still
// serve disk hits.
func TestGCMaxAgeEvictsOldEntries(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	names := fillStore(t, dir, 6)
	old := time.Now().Add(-48 * time.Hour)
	for _, name := range names[:3] {
		if err := os.Chtimes(filepath.Join(dir, name), old, old); err != nil {
			t.Fatal(err)
		}
	}
	c, err := New[[]byte](Options{Dir: dir, MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if got := entryCount(t, dir); got != 3 {
		t.Fatalf("%d entries survived, want 3", got)
	}
	st := c.Stats()
	if st.GCRemoved != 3 || st.GCBytes == 0 {
		t.Fatalf("gc stats %+v, want 3 removals with bytes", st)
	}
	for _, name := range names[:3] {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("aged entry %s still present", name)
		}
	}
	// A survivor must still be a disk hit; an evicted key recomputes.
	if _, err := c.GetOrCompute(gcKey(4), func() ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.DiskHits != 1 {
		t.Fatalf("surviving entry should disk-hit, stats %+v", st)
	}
}

// TestGCMaxBytesEvictsLRUByMtime over-fills the store, then bounds it:
// the oldest-written entries go first and the newest survive.
func TestGCMaxBytesEvictsLRUByMtime(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	names := fillStore(t, dir, 5)
	// Spread mtimes so LRU order is unambiguous (entry 0 oldest).
	base := time.Now().Add(-time.Hour)
	for i, name := range names {
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, name), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	var entrySize int64
	if info, err := os.Stat(filepath.Join(dir, names[0])); err == nil {
		entrySize = info.Size()
	} else {
		t.Fatal(err)
	}
	c, err := New[[]byte](Options{Dir: dir, MaxBytes: 2 * entrySize})
	if err != nil {
		t.Fatal(err)
	}
	if got := entryCount(t, dir); got != 2 {
		t.Fatalf("%d entries survived, want 2", got)
	}
	for _, name := range names[3:] {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("newest entry %s evicted: %v", name, err)
		}
	}
	if st := c.Stats(); st.GCRemoved != 3 {
		t.Fatalf("gc stats %+v, want 3 removals", st)
	}
}

// TestGCCollectsStaleTempFiles: temp files from crashed writers age out;
// fresh ones are left for their owners.
func TestGCCollectsStaleTempFiles(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fillStore(t, dir, 1)
	stale := filepath.Join(dir, ".tmp-dead")
	fresh := filepath.Join(dir, ".tmp-live")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := New[[]byte](Options{Dir: dir, MaxAge: 24 * time.Hour}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived GC")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh temp file must be left for its writer")
	}
}

// TestGCCollectsTempFilesWithoutMaxAge: a MaxBytes-only store must still
// reclaim crash debris — temp files are invisible to the size pass, so
// they fall under the fixed tmpGrace deadline instead.
func TestGCCollectsTempFilesWithoutMaxAge(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fillStore(t, dir, 1)
	stale := filepath.Join(dir, ".tmp-crashed")
	if err := os.WriteFile(stale, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * tmpGrace)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := New[[]byte](Options{Dir: dir, MaxBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived a MaxBytes-only GC")
	}
	if got := entryCount(t, dir); got != 1 {
		t.Fatalf("real entry count %d, want 1 (size bound not exceeded)", got)
	}
}

// TestGCUnboundedIsNoOp: no bounds, no disk layer — GC must do nothing.
func TestGCUnboundedIsNoOp(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fillStore(t, dir, 3)
	c, err := New[[]byte](Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := c.GC(); err != nil || n != 0 {
		t.Fatalf("unbounded GC removed %d err %v", n, err)
	}
	if got := entryCount(t, dir); got != 3 {
		t.Fatalf("unbounded GC changed the store: %d entries", got)
	}
	mem, err := New[[]byte](Options{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := mem.GC(); err != nil || n != 0 {
		t.Fatalf("memory-only GC removed %d err %v", n, err)
	}
}

// TestGCEvictedEntryRecomputes: after eviction the content-addressed
// contract holds — the key recomputes to the identical value and is
// re-persisted.
func TestGCEvictedEntryRecomputes(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	names := fillStore(t, dir, 2)
	old := time.Now().Add(-2 * time.Hour)
	for _, name := range names {
		if err := os.Chtimes(filepath.Join(dir, name), old, old); err != nil {
			t.Fatal(err)
		}
	}
	c, err := New[[]byte](Options{Dir: dir, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.GetOrCompute(gcKey(0), func() ([]byte, error) { return []byte("recomputed"), nil })
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "recomputed" {
		t.Fatalf("got %q", v)
	}
	if st := c.Stats(); st.Misses != 1 || st.DiskWrites != 1 {
		t.Fatalf("evicted key should recompute and re-persist, stats %+v", st)
	}
}
