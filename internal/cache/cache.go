// Package cache is the content-addressed result store behind the
// reproduction's cache-aware runners (accel.Runner, scalability.Runner).
// A Cache memoizes the results of pure computations keyed by canonical
// input digests (internal/digest), through three layers:
//
//   - an in-memory LRU sized in entries (the hot working set of a sweep);
//   - an optional on-disk gob store, one file per digest, shared across
//     processes and runs (what makes warm CI/notebook sweeps O(changed
//     cells) instead of O(grid));
//   - single-flight de-duplication, so concurrent sweep workers that miss
//     on the same digest block on one computation instead of redoing it.
//
// The cache is strictly an availability layer: because keys are content
// digests of every input the computation reads, a hit returns exactly
// what the computation would return, and callers observe bit-identical
// results whether an entry was computed, remembered, or read back from
// disk. Disk failures (unwritable directory, corrupt entry) degrade to
// recomputation and are counted in Stats, never surfaced as errors.
package cache

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/digest"
)

// DefaultEntries is the in-memory LRU capacity when Options.Entries is
// unset. The Fig. 9 grid is 12 cells; 4096 comfortably holds the largest
// ablation and param-study grids in the tree.
const DefaultEntries = 4096

// Options configures a Cache.
type Options struct {
	// Entries bounds the in-memory LRU (<= 0 selects DefaultEntries).
	Entries int
	// Dir enables the on-disk gob store rooted at this directory
	// (created if absent). Empty disables the disk layer.
	Dir string
	// MaxBytes bounds the on-disk store's total size: when the store
	// exceeds it, the least-recently-written entries are evicted
	// oldest-first (LRU by mtime) until it fits. <= 0 disables the size
	// bound. Applied by GC, which New runs once at open.
	MaxBytes int64
	// MaxAge evicts on-disk entries older than this. 0 disables the age
	// bound. Applied by GC, which New runs once at open.
	MaxAge time.Duration
}

// Stats counts cache traffic. Hits split by layer; Misses count lookups
// that yielded no cached value: actual computations (including ones
// whose compute returned an error) and joins of an in-flight computation
// that failed.
type Stats struct {
	Lookups    int64 // GetOrCompute calls
	MemHits    int64 // served by the in-memory LRU
	DiskHits   int64 // served by the on-disk store
	Shared     int64 // shared a successful in-flight computation of the same digest
	Misses     int64 // computed, or shared a failed computation
	Evictions  int64 // LRU entries displaced
	DiskWrites int64 // entries persisted
	DiskErrors int64 // unreadable/unwritable disk entries (degraded to compute)
	GCRemoved  int64 // disk entries evicted by age/size garbage collection
	GCBytes    int64 // bytes reclaimed by garbage collection
}

// Hits returns the total lookups served without computing.
func (s Stats) Hits() int64 { return s.MemHits + s.DiskHits + s.Shared }

// HitRate returns Hits as a fraction of Lookups (0 when idle).
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(s.Lookups)
}

// String renders the traffic summary both CLIs print to stderr; the CI
// cache-effectiveness smoke step greps this exact format, so it lives in
// one place.
func (s Stats) String() string {
	return fmt.Sprintf("%d lookups, %d hits, %d misses (%.1f%% hits)",
		s.Lookups, s.Hits(), s.Misses, 100*s.HitRate())
}

// flight is one in-progress computation; waiters block on done and then
// share v/err.
type flight[V any] struct {
	done chan struct{}
	v    V
	err  error
}

// Cache memoizes values of type V keyed by content digest. Safe for
// concurrent use. Values are returned by (shallow) copy of the stored
// value: callers must treat results as immutable, which holds for the
// simulation results cached here.
type Cache[V any] struct {
	mu       sync.Mutex
	lru      *lru[V]
	disk     *diskStore[V]
	maxBytes int64
	maxAge   time.Duration
	flights  map[digest.Digest]*flight[V]
	stats    Stats
}

// New builds a Cache. It fails only when the disk directory cannot be
// created. When an age or size bound is configured, the opening process
// garbage-collects the store once, so long-lived shared directories
// (CI caches, notebook stores) stay bounded without a separate daemon.
func New[V any](opts Options) (*Cache[V], error) {
	entries := opts.Entries
	if entries <= 0 {
		entries = DefaultEntries
	}
	c := &Cache[V]{
		lru:      newLRU[V](entries),
		maxBytes: opts.MaxBytes,
		maxAge:   opts.MaxAge,
		flights:  map[digest.Digest]*flight[V]{},
	}
	if opts.Dir != "" {
		d, err := newDiskStore[V](opts.Dir)
		if err != nil {
			return nil, err
		}
		c.disk = d
		if opts.MaxBytes > 0 || opts.MaxAge > 0 {
			if _, err := c.GC(); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// GC applies the configured MaxAge/MaxBytes bounds to the on-disk store
// and returns how many entries were removed. Removal is safe at any
// time: keys are content digests, so an evicted entry is recomputed (and
// re-persisted) on next demand, never served stale. The in-memory layer
// is unaffected — it is bounded separately by Options.Entries, and a
// memory hit for an evicted digest is still exactly the value the
// computation would produce. Without a disk layer or bounds GC is a
// no-op.
func (c *Cache[V]) GC() (removed int, err error) {
	if c.disk == nil || (c.maxBytes <= 0 && c.maxAge <= 0) {
		return 0, nil
	}
	removed, freed, err := c.disk.gc(c.maxBytes, c.maxAge, time.Now())
	if removed > 0 {
		c.note(func(s *Stats) {
			s.GCRemoved += int64(removed)
			s.GCBytes += freed
		})
	}
	return removed, err
}

// GetOrCompute returns the cached value for key, or runs compute exactly
// once per in-flight digest and remembers its result. Errors from compute
// are shared with concurrent waiters but never cached, so a transient
// failure does not poison the key. The only errors returned are compute's
// own.
func (c *Cache[V]) GetOrCompute(key digest.Digest, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	c.stats.Lookups++
	if v, ok := c.lru.get(key); ok {
		c.stats.MemHits++
		c.mu.Unlock()
		return v, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		// A join only counts as a hit when the shared computation
		// succeeded; a failed flight cached nothing, so reporting it as
		// a hit would inflate the effectiveness stats.
		c.note(func(s *Stats) {
			if f.err == nil {
				s.Shared++
			} else {
				s.Misses++
			}
		})
		return f.v, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	v, fromDisk, err := c.fill(key, compute)
	c.mu.Lock()
	delete(c.flights, key)
	switch {
	case err != nil:
		c.stats.Misses++
	case fromDisk:
		c.stats.DiskHits++
		c.stats.Evictions += int64(c.lru.add(key, v))
	default:
		c.stats.Misses++
		c.stats.Evictions += int64(c.lru.add(key, v))
	}
	c.mu.Unlock()
	// Release waiters before the disk write: the value is final, so
	// flight joiners must not stall behind persistence I/O.
	f.v, f.err = v, err
	close(f.done)
	if err == nil && !fromDisk && c.disk != nil {
		if werr := c.disk.store(key, v); werr != nil {
			c.note(func(s *Stats) { s.DiskErrors++ })
		} else {
			c.note(func(s *Stats) { s.DiskWrites++ })
		}
	}
	return v, err
}

// fill resolves a miss: disk probe first, compute otherwise.
func (c *Cache[V]) fill(key digest.Digest, compute func() (V, error)) (v V, fromDisk bool, err error) {
	if c.disk != nil {
		switch v, ok, derr := c.disk.load(key); {
		case derr != nil:
			c.note(func(s *Stats) { s.DiskErrors++ })
		case ok:
			return v, true, nil
		}
	}
	v, err = compute()
	return v, false, err
}

func (c *Cache[V]) note(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of in-memory entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.len()
}
