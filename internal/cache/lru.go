package cache

import (
	"container/list"

	"repro/internal/digest"
)

// lru is a fixed-capacity least-recently-used map from digest to value.
// Not safe for concurrent use; Cache serializes access.
type lru[V any] struct {
	cap   int
	order *list.List // front = most recent; element value is *lruEntry[V]
	items map[digest.Digest]*list.Element
}

type lruEntry[V any] struct {
	key digest.Digest
	v   V
}

func newLRU[V any](capacity int) *lru[V] {
	return &lru[V]{cap: capacity, order: list.New(), items: map[digest.Digest]*list.Element{}}
}

func (l *lru[V]) get(key digest.Digest) (V, bool) {
	if el, ok := l.items[key]; ok {
		l.order.MoveToFront(el)
		return el.Value.(*lruEntry[V]).v, true
	}
	var zero V
	return zero, false
}

// add inserts or refreshes key and returns how many entries were evicted
// (0 or 1).
func (l *lru[V]) add(key digest.Digest, v V) int {
	if el, ok := l.items[key]; ok {
		el.Value.(*lruEntry[V]).v = v
		l.order.MoveToFront(el)
		return 0
	}
	l.items[key] = l.order.PushFront(&lruEntry[V]{key: key, v: v})
	if l.order.Len() <= l.cap {
		return 0
	}
	oldest := l.order.Back()
	l.order.Remove(oldest)
	delete(l.items, oldest.Value.(*lruEntry[V]).key)
	return 1
}

func (l *lru[V]) len() int { return l.order.Len() }
