package cache

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestRegisterMetrics(t *testing.T) {
	c, err := New[int](Options{Entries: 4})
	if err != nil {
		t.Fatal(err)
	}
	unregister := c.RegisterMetrics("test")
	defer unregister()
	if _, err := c.GetOrCompute(key("k1"), func() (int, error) { return 42, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetOrCompute(key("k1"), func() (int, error) { return 42, nil }); err != nil {
		t.Fatal(err)
	}

	f := telemetry.NewFamilies()
	telemetry.CollectGlobal(f)
	var b strings.Builder
	if err := f.Write(&b); err != nil {
		t.Fatal(err)
	}
	doc := b.String()
	if err := telemetry.ValidateExposition(doc); err != nil {
		t.Fatalf("cache exposition invalid: %v\n%s", err, doc)
	}
	for _, want := range []string{
		`sconna_cache_lookups_total{cache="test"} 2`,
		`sconna_cache_hits_total{cache="test",layer="mem"} 1`,
		`sconna_cache_misses_total{cache="test"} 1`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("cache metrics missing %q:\n%s", want, doc)
		}
	}
	unregister()
	f2 := telemetry.NewFamilies()
	telemetry.CollectGlobal(f2)
	var b2 strings.Builder
	if err := f2.Write(&b2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b2.String(), `cache="test"`) {
		t.Error("unregistered cache still exported")
	}
}
