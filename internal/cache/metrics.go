package cache

import "repro/internal/telemetry"

// RegisterMetrics publishes the cache's traffic counters on the
// process-global telemetry collector registry as sconna_cache_*
// families labeled cache=<name>. Any /metrics endpoint in the process
// (the serving stack's, typically) then exports them, even though no
// HTTP handler can reach the cache directly. Returns the unregister
// func; registering a second cache under the same name replaces the
// first.
func (c *Cache[V]) RegisterMetrics(name string) func() {
	key := "cache:" + name
	telemetry.RegisterCollector(key, func(f *telemetry.Families) {
		s := c.Stats()
		lab := telemetry.L("cache", name)
		f.Family("sconna_cache_lookups_total", "counter", "Cache lookups (GetOrCompute calls).").
			Add(float64(s.Lookups), lab)
		hits := f.Family("sconna_cache_hits_total", "counter",
			"Lookups served without computing, by layer: in-memory LRU, on-disk store, shared in-flight computation.")
		hits.Add(float64(s.MemHits), lab, telemetry.L("layer", "mem"))
		hits.Add(float64(s.DiskHits), lab, telemetry.L("layer", "disk"))
		hits.Add(float64(s.Shared), lab, telemetry.L("layer", "shared"))
		f.Family("sconna_cache_misses_total", "counter", "Lookups that had to compute.").
			Add(float64(s.Misses), lab)
		f.Family("sconna_cache_evictions_total", "counter", "In-memory LRU entries displaced.").
			Add(float64(s.Evictions), lab)
		f.Family("sconna_cache_disk_writes_total", "counter", "Entries persisted to the on-disk store.").
			Add(float64(s.DiskWrites), lab)
		f.Family("sconna_cache_disk_errors_total", "counter",
			"Unreadable or unwritable disk entries (degraded to compute).").
			Add(float64(s.DiskErrors), lab)
		f.Family("sconna_cache_gc_removed_total", "counter",
			"Disk entries evicted by age/size garbage collection.").
			Add(float64(s.GCRemoved), lab)
	})
	return func() { telemetry.UnregisterCollector(key) }
}
