package cache

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// MergeDirs unions cache directory trees into dst: every .gob entry
// found under a src root (recursively — the sweep runners namespace
// their stores as <root>/accel and <root>/scalability) is copied to the
// same relative path under dst, unless dst already holds it. Entries
// are content-addressed — the file name is the digest of everything
// that determines the value — so "already present" means "identical",
// and merging N disjoint shard runs' stores is exactly equivalent to
// one machine having computed them all. Copies go through the store's
// temp-file+rename convention, so a merge is safe while readers (or
// other mergers) share dst. Temp files and foreign entries in srcs are
// skipped. Returns how many entries were copied.
func MergeDirs(dst string, srcs ...string) (int, error) {
	copied := 0
	for _, src := range srcs {
		err := filepath.WalkDir(src, func(path string, de fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if de.IsDir() {
				return nil
			}
			name := de.Name()
			if !strings.HasSuffix(name, ".gob") || strings.HasPrefix(name, ".tmp-") {
				return nil
			}
			rel, err := filepath.Rel(src, path)
			if err != nil {
				return err
			}
			target := filepath.Join(dst, rel)
			if _, err := os.Stat(target); err == nil {
				return nil // content-addressed: present means identical
			}
			if err := copyEntry(path, target); err != nil {
				return err
			}
			copied++
			return nil
		})
		if err != nil {
			return copied, fmt.Errorf("cache: merging %s: %w", src, err)
		}
	}
	return copied, nil
}

// copyEntry copies one cache entry atomically: temp file in the target
// directory, then rename — the same convention the store's writers use,
// so a racing reader never observes a torn entry.
func copyEntry(src, dst string) error {
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := io.Copy(tmp, in); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), dst)
}
