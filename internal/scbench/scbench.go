// Package scbench defines the SC-kernel benchmark bodies shared by the
// `go test -bench` suite (internal/sckernel wraps them as standard
// benchmarks) and cmd/benchsc, which runs them through
// testing.Benchmark to emit BENCH_sc.json — the packed-vs-scalar
// trajectory the CI speedup gate reads.
//
// The smoke shape is a fixed contract: the paper operating point (8-bit
// streams, VDPE size 176) with a 6-chunk operand vector, so the dot
// exercises the chunked psum reduction, the sign steering and the ADC
// conversion exactly as serving does. Changing the shape invalidates
// the ns/op trajectory, so treat it like a golden value.
package scbench

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/quant"
	"repro/internal/sckernel"
)

// Smoke shapes. The paper point is the serving operating point: 8-bit
// streams, VDPE size 176, vector spanning 6 psum chunks, a micro-batch
// the size of the serving default MaxBatch. The gated stream-scaling
// point runs the same geometry at the core's maximum stream precision
// (B=12, 4096-bit streams): the packed kernels are O(1) words per lane
// while the scalar stream walk is O(2^B/64), so this is the shape where
// the packed plane's structural advantage must show — the CI speedup
// floor applies here.
const (
	smokeBits  = 8
	gateBits   = 12
	smokeN     = 176
	smokeLen   = 6 * smokeN
	smokeBatch = 8
)

// Config returns the paper-point benchmark configuration.
func Config() core.Config {
	return configAt(smokeBits)
}

// GateConfig returns the gated stream-scaling configuration.
func GateConfig() core.Config {
	return configAt(gateBits)
}

func configAt(bits int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Bits = bits
	cfg.N = smokeN
	cfg.M = 4
	cfg.ADCSeed = 1
	return cfg
}

// operandsAt draws one deterministic operand pair for precision bits.
func operandsAt(bits int) (div, dkv []int) {
	rng := rand.New(rand.NewSource(9))
	scale := 1 << uint(bits)
	div = make([]int, smokeLen)
	dkv = make([]int, smokeLen)
	for i := range div {
		div[i] = rng.Intn(scale + 1)
		dkv[i] = rng.Intn(2*scale+1) - scale
	}
	return div, dkv
}

// operands draws the paper-point operand pair.
func operands() (div, dkv []int) { return operandsAt(smokeBits) }

// ScalarDot times the scalar reference plane: quant.SconnaEngine over
// core.VDPC, per-lane stream AND+popcount through the OSM LUT vectors.
func ScalarDot(b *testing.B) {
	e, err := quant.NewSconnaEngine(Config())
	if err != nil {
		b.Fatal(err)
	}
	div, dkv := operands()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Dot(div, dkv)
	}
}

// PackedDot times the word-packed kernel engine on the identical shape
// and configuration; results are bit-identical to ScalarDot.
func PackedDot(b *testing.B) {
	e, err := sckernel.New(Config())
	if err != nil {
		b.Fatal(err)
	}
	div, dkv := operands()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Dot(div, dkv)
	}
}

// PackedDotBatch times the slab API over a serving-sized micro-batch
// sharing one weight vector (the conv inner loop's engine-facing shape);
// ns/op is per batch, i.e. smokeBatch dots.
func PackedDotBatch(b *testing.B) {
	e, err := sckernel.New(Config())
	if err != nil {
		b.Fatal(err)
	}
	_, dkv := operands()
	vecs := make([][]int, smokeBatch)
	rng := rand.New(rand.NewSource(10))
	scale := 1 << smokeBits
	for v := range vecs {
		vec := make([]int, smokeLen)
		for i := range vec {
			vec[i] = rng.Intn(scale + 1)
		}
		vecs[v] = vec
	}
	slab := sckernel.MakeSlab(vecs...)
	out := make([]int, slab.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.DotBatch(slab, dkv, out); err != nil {
			b.Fatal(err)
		}
	}
}

// KernelCountsPacked times the raw packed count kernel (no ADC, no
// chunking): the prefix-popcount fast path over one VDPE-sized vector.
func KernelCountsPacked(b *testing.B) {
	p := sckernel.PlaneFor(smokeBits)
	div, dkv := operands()
	div, dkv = div[:smokeN], dkv[:smokeN]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.DotCounts(div, dkv); err != nil {
			b.Fatal(err)
		}
	}
}

// ScalarDotMaxB times the scalar plane at the gated stream-scaling
// point: identical geometry to ScalarDot with 4096-bit streams, so each
// lane's AndPopCount walks 64 words.
func ScalarDotMaxB(b *testing.B) {
	e, err := quant.NewSconnaEngine(GateConfig())
	if err != nil {
		b.Fatal(err)
	}
	div, dkv := operandsAt(gateBits)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Dot(div, dkv)
	}
}

// PackedDotMaxB times the packed engine at the gated stream-scaling
// point; the CI floor is ScalarDotMaxB ns / PackedDotMaxB ns.
func PackedDotMaxB(b *testing.B) {
	e, err := sckernel.New(GateConfig())
	if err != nil {
		b.Fatal(err)
	}
	div, dkv := operandsAt(gateBits)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Dot(div, dkv)
	}
}

// KernelCountsGeneric times the generator-generic fused word kernel on
// the same vector — the fallback the prefix path is measured against.
func KernelCountsGeneric(b *testing.B) {
	p := sckernel.PlaneFor(smokeBits)
	div, dkv := operands()
	div, dkv = div[:smokeN], dkv[:smokeN]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.DotCountsGeneric(div, dkv); err != nil {
			b.Fatal(err)
		}
	}
}
