package scalability

import "repro/internal/digest"

// Digest schema tags; bump on any change to the fields the solvers read
// (see the compatibility contract in internal/digest).
const (
	configSchema = "repro/scalability.Config@v1"
	cellSchema   = "repro/scalability.TableICell@v1"
)

// Digest returns the canonical content digest of the Table III operating
// point: the photodetector fields and every Config field, in declared
// order.
func (c Config) Digest() digest.Digest {
	h := digest.New()
	c.writeDigest(h)
	return h.Sum()
}

func (c Config) writeDigest(h *digest.Hasher) {
	h.Str(configSchema)
	h.F64(c.PD.ResponsivityAW).F64(c.PD.DarkCurrentA).F64(c.PD.LoadOhms)
	h.F64(c.PD.TemperatureK).F64(c.PD.RINdBHz)
	h.F64(c.BudgetDBm)
	h.F64(c.ILSMFdB).F64(c.ILECdB)
	h.F64(c.ILWGdBPerMM)
	h.F64(c.ELSplitterDB)
	h.F64(c.ILOSMdB)
	h.F64(c.OBLOSMdB).F64(c.OBLMRRdB)
	h.F64(c.ILMRRdB)
	h.F64(c.ILPenaltyDB)
	h.F64(c.DOSMmm)
	h.F64(c.WallPlugEfficiency)
	h.Bool(c.BudgetIsElectrical)
	h.F64(c.AMMExtraDB)
	h.Int(c.NSearchLimit)
}

// cellDigest returns the cache key of one Table I cell solve: the full
// operating point plus the cell coordinates (organization, precision,
// data rate). MaxN is a pure function of exactly these inputs.
func (c Config) cellDigest(org Organization, precision int, dr float64) digest.Digest {
	h := digest.New()
	h.Str(cellSchema)
	c.writeDigest(h)
	h.Int(int(org)).Int(precision).F64(dr)
	return h.Sum()
}
