package scalability

import (
	"reflect"
	"testing"
)

func newTestRunner(t *testing.T, cfg Config, opts RunnerOptions) *Runner {
	t.Helper()
	r, err := NewRunner(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// The cache-aware Runner must reproduce the Table I of the direct solve,
// cold and warm, at any worker count.
func TestRunnerTableIMatchesDirect(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	want := cfg.TableIParallel(1)
	for _, workers := range []int{1, 3, 8} {
		r := newTestRunner(t, cfg, RunnerOptions{Workers: workers})
		cold := r.TableI()
		warm := r.TableI()
		if !reflect.DeepEqual(cold, want) {
			t.Fatalf("workers=%d: cold table diverged from serial", workers)
		}
		if !reflect.DeepEqual(warm, want) {
			t.Fatalf("workers=%d: warm table diverged from serial", workers)
		}
		s := r.Stats()
		if s.Misses != int64(len(want)) || s.Hits() != int64(len(want)) {
			t.Fatalf("workers=%d: stats = %+v, want %d misses then %d hits",
				workers, s, len(want), len(want))
		}
	}
}

// Solved cells must survive on disk across Runner instances (processes)
// with zero recomputation.
func TestRunnerTableIDiskRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cfg := DefaultConfig()
	r1 := newTestRunner(t, cfg, RunnerOptions{CacheDir: dir})
	cold := r1.TableI()

	r2 := newTestRunner(t, cfg, RunnerOptions{CacheDir: dir})
	warm := r2.TableI()
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("disk-warmed table diverged from the cold solve")
	}
	s := r2.Stats()
	if s.Misses != 0 || s.DiskHits != int64(len(cold)) {
		t.Fatalf("warm stats = %+v, want 0 misses / %d disk hits", s, len(cold))
	}
}

// A different operating point must address different cells: the config
// digest is part of every cell key.
func TestRunnerCellKeyedByConfig(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	r1 := newTestRunner(t, DefaultConfig(), RunnerOptions{CacheDir: dir})
	r1.TableI()

	moved := DefaultConfig()
	moved.BudgetDBm += 3
	r2 := newTestRunner(t, moved, RunnerOptions{CacheDir: dir})
	r2.TableI()
	if s := r2.Stats(); s.DiskHits != 0 || s.Misses == 0 {
		t.Fatalf("stats = %+v: a changed operating point must not reuse cached cells", s)
	}
}
