// Package scalability implements the VDPC scalability analysis of
// Section V of the SCONNA paper: Eq. 2 (effective resolution at the
// photodetector), Eq. 3 (noise spectral density) and Eq. 4 (laser power
// budget), together with per-organization solvers for the maximum
// achievable VDPE size N. It regenerates Table I (analog AMM/MAM VDPCs at
// 4/6-bit over 1-10 GS/s) and the SCONNA N=M determination of Section V-B.
package scalability

import (
	"math"

	"repro/internal/photonics"
)

// Organization identifies a VDPC organization (Section II-C / IV-A).
type Organization int

// VDPC organizations analysed by the paper.
const (
	// SCONNA is the stochastic-computing VDPC of Section IV.
	SCONNA Organization = iota
	// MAM is the Modulation-Aggregation-Modulation analog organization
	// (HOLYLIGHT [7]).
	MAM
	// AMM is the Aggregation-Modulation-Modulation analog organization
	// (DEAP-CNN [9]).
	AMM
)

// String returns the organization mnemonic.
func (o Organization) String() string {
	switch o {
	case SCONNA:
		return "SCONNA"
	case MAM:
		return "MAM"
	case AMM:
		return "AMM"
	}
	return "?"
}

// Config carries the Table III device parameters feeding Eq. 2-4.
type Config struct {
	// PD is the summation-element / PCA photodetector (Eq. 2-3 terms).
	PD photonics.Photodetector
	// BudgetDBm is P_Laser, the optical power budget per wavelength
	// channel (10 dBm in Table III).
	BudgetDBm float64
	// ILSMFdB, ILECdB are fiber and fiber-to-chip coupling losses (0, 1.6).
	ILSMFdB, ILECdB float64
	// ILWGdBPerMM is silicon waveguide propagation loss (0.3 dB/mm).
	ILWGdBPerMM float64
	// ELSplitterDB is splitter excess loss per stage (0.01 dB).
	ELSplitterDB float64
	// ILOSMdB is the in-band insertion loss of the modulating OSM (4 dB);
	// the same value is used for the analog MRR modulators.
	ILOSMdB float64
	// OBLOSMdB and OBLMRRdB are per-element out-of-band losses (0.01 dB).
	OBLOSMdB, OBLMRRdB float64
	// ILMRRdB is the filter MRR in-band insertion loss (0.01 dB).
	ILMRRdB float64
	// ILPenaltyDB is the aggregate network penalty (7.3 dB).
	ILPenaltyDB float64
	// DOSMmm is the gap between adjacent OSMs (0.020 mm).
	DOSMmm float64
	// WallPlugEfficiency is eta_WPE (0.1). Only charged when
	// BudgetIsElectrical is true.
	WallPlugEfficiency float64
	// BudgetIsElectrical selects whether BudgetDBm bounds electrical
	// laser power (Eq. 4 as printed divides by eta_WPE) or optical power
	// (Table III labels P_Laser as emitted optical intensity). The
	// reproduction defaults to optical, which matches Table I magnitudes.
	BudgetIsElectrical bool
	// AMMExtraDB is the additional per-core insertion loss of the AMM
	// organization relative to MAM (its second full modulator array sits
	// in the signal path). Calibrated at 1.5 dB, which reproduces the
	// paper's consistent MAM:AMM sizing ratio of ~1.4x in Table I.
	AMMExtraDB float64
	// NSearchLimit bounds the solver search (Sec. V-B theoretical cap is
	// FSR/channel-spacing = 200).
	NSearchLimit int
}

// DefaultConfig returns the Table III operating point.
func DefaultConfig() Config {
	return Config{
		PD:                 photonics.DefaultPhotodetector(),
		BudgetDBm:          10,
		ILSMFdB:            0,
		ILECdB:             1.6,
		ILWGdBPerMM:        0.3,
		ELSplitterDB:       0.01,
		ILOSMdB:            4,
		OBLOSMdB:           0.01,
		OBLMRRdB:           0.01,
		ILMRRdB:            0.01,
		ILPenaltyDB:        7.3,
		DOSMmm:             0.020,
		WallPlugEfficiency: 0.1,
		BudgetIsElectrical: false,
		AMMExtraDB:         1.5,
		NSearchLimit:       200,
	}
}

// Beta returns Eq. 3's noise PSD (A/sqrt(Hz)) at detector power powerW.
func (c Config) Beta(powerW float64) float64 { return c.PD.NoisePSD(powerW) }

// ENOB returns Eq. 2's effective resolution at detector power powerW and
// data rate dr.
func (c Config) ENOB(powerW, dr float64) float64 { return c.PD.ENOB(powerW, dr) }

// SensitivityDBm returns the minimum detector power (dBm) resolving bres
// bits at data rate dr, or NaN beyond the RIN ceiling.
func (c Config) SensitivityDBm(bres, dr float64) float64 {
	return c.PD.SensitivityDBm(bres, dr)
}

// deviceLoss appends the organization-specific device losses along one
// wavelength's path: modulator stages, out-of-band cascades and waveguide
// propagation.
func (c Config) deviceLoss(ch *photonics.LossChain, org Organization, n int) {
	ch.Add("waveguide propagation", c.ILWGdBPerMM*float64(n)*c.DOSMmm)
	switch org {
	case SCONNA:
		ch.Add("modulating OSM (in-band)", c.ILOSMdB)
		ch.AddN("OSM out-of-band", c.OBLOSMdB, n-1)
		ch.Add("filter MRR (in-band)", c.ILMRRdB)
		ch.AddN("filter MRR out-of-band", c.OBLMRRdB, n-1)
	case MAM:
		// Shared broadband DIV modulator + DKV weighting array.
		ch.Add("DIV modulator (in-band)", c.ILOSMdB)
		ch.Add("DKV MRR (in-band)", c.ILOSMdB)
		ch.AddN("mux out-of-band", c.OBLMRRdB, n-1)
		ch.AddN("DKV out-of-band", c.OBLMRRdB, n-1)
	case AMM:
		// Full DIV array + DKV array in the path.
		ch.Add("DIV MRR (in-band)", c.ILOSMdB)
		ch.Add("DKV MRR (in-band)", c.ILOSMdB)
		ch.AddN("DIV out-of-band", c.OBLMRRdB, n-1)
		ch.AddN("DKV out-of-band", c.OBLMRRdB, n-1)
		ch.Add("AMM organization extra", c.AMMExtraDB)
	}
}

// LossChain builds the full Eq. 4 per-wavelength optical path for
// organization org with VDPE size n and VDPE count m, terminating at the
// detector: coupling, 1:M power split, device losses and network penalty.
func (c Config) LossChain(org Organization, n, m int) *photonics.LossChain {
	ch := &photonics.LossChain{}
	ch.Add("fiber (SMF)", c.ILSMFdB)
	ch.Add("fiber-to-chip coupling", c.ILECdB)
	// 1-to-M power split of each wavelength across the VDPE waveguides.
	ch.Add("1:M power split", 10*math.Log10(float64(m)))
	ch.AddN("splitter excess", c.ELSplitterDB, int(math.Ceil(math.Log2(float64(m)))))
	c.deviceLoss(ch, org, n)
	ch.Add("network penalty", c.ILPenaltyDB)
	if c.BudgetIsElectrical {
		ch.Add("wall-plug efficiency", -10*math.Log10(c.WallPlugEfficiency))
	}
	return ch
}

// DynamicRangeLossChain builds the per-VDPE analysis path used by the
// Table I solver: coupling and device losses only, without the 1:M split
// and network penalty (which belong to the whole-accelerator Eq. 4 sizing,
// not to the single-core dynamic-range analysis of [21]).
func (c Config) DynamicRangeLossChain(org Organization, n int) *photonics.LossChain {
	ch := &photonics.LossChain{}
	ch.Add("fiber (SMF)", c.ILSMFdB)
	ch.Add("fiber-to-chip coupling", c.ILECdB)
	c.deviceLoss(ch, org, n)
	return ch
}

// RequiredLaserDBm implements Eq. 4: the per-wavelength laser power needed
// so that sensDBm reaches the detector through the org/n/m path.
func (c Config) RequiredLaserDBm(org Organization, n, m int, sensDBm float64) float64 {
	return sensDBm + c.LossChain(org, n, m).TotalDB()
}

// DynamicRangeDB returns the optical dynamic range an analog VDPC of size
// n at precision b must span: N*2^B distinguishable power levels
// (Sec. III-A), i.e. 10*log10(n * 2^b) dB above the minimum detectable
// level.
func DynamicRangeDB(b, n int) float64 {
	return 10 * math.Log10(float64(n)*math.Pow(2, float64(b)))
}

// MaxN solves for the largest VDPE size N (with M=N, as the paper assumes)
// such that the optical power budget covers the detector's single-level
// sensitivity plus the N*2^B-level dynamic range plus the path losses —
// the strong N-vs-B trade-off of Section III-A. For SCONNA the dynamic
// range term is a single digital level (2 states, B_Res = 1-bit), which is
// why its N scales so much further. It returns 0 if no size is feasible.
func (c Config) MaxN(org Organization, b int, dr float64) int {
	best := 0
	for n := 1; n <= c.MaxN0(); n++ {
		if c.feasible(org, b, n, dr) {
			best = n
		}
	}
	return best
}

// MaxN0 returns the configured solver search bound.
func (c Config) MaxN0() int {
	if c.NSearchLimit > 0 {
		return c.NSearchLimit
	}
	return 200
}

func (c Config) feasible(org Organization, b, n int, dr float64) bool {
	sens := c.SensitivityDBm(1, dr) // minimum distinguishable level
	if math.IsNaN(sens) {
		return false
	}
	if org == SCONNA {
		// Digital streams: full Eq. 4 chain, single-level sensitivity.
		return c.RequiredLaserDBm(org, n, n, sens) <= c.BudgetDBm
	}
	need := sens + DynamicRangeDB(b, n) + c.DynamicRangeLossChain(org, n).TotalDB()
	return need <= c.BudgetDBm
}

// MaxNWithSensitivity is MaxN with an externally supplied detector
// sensitivity (dBm), used to reproduce the paper's published SCONNA
// operating point of P_PD-opt = -28 dBm.
func (c Config) MaxNWithSensitivity(org Organization, sensDBm float64) int {
	best := 0
	for n := 1; n <= c.MaxN0(); n++ {
		if c.RequiredLaserDBm(org, n, n, sensDBm) <= c.BudgetDBm {
			best = n
		}
	}
	return best
}

// TableICell is one entry of the reproduced Table I.
type TableICell struct {
	Org       Organization
	Precision int     // bits
	DataRate  float64 // samples/s
	N         int     // solved max VDPE size
	PaperN    int     // value published in Table I
}

// paperTableI holds the published Table I values, keyed by org, precision
// and data rate in GS/s.
var paperTableI = map[Organization]map[int]map[int]int{
	AMM: {4: {1: 31, 3: 20, 5: 16, 10: 11}, 6: {1: 6, 3: 3, 5: 2, 10: 1}},
	MAM: {4: {1: 44, 3: 29, 5: 22, 10: 16}, 6: {1: 12, 3: 7, 5: 5, 10: 3}},
}

// PaperTableIN returns the published Table I entry, or 0 if absent.
func PaperTableIN(org Organization, precision, drGS int) int {
	return paperTableI[org][precision][drGS]
}

// TableI regenerates Table I: max N for AMM and MAM at 4- and 6-bit
// precision across data rates of 1, 3, 5 and 10 GS/s. It is TableIParallel
// at the default worker count.
func (c Config) TableI() []TableICell {
	return c.TableIParallel(0)
}

// TableIParallel solves the Table I cells through an ephemeral
// cache-aware Runner across a bounded worker pool (<= 0 selects
// GOMAXPROCS). Each cell's MaxN solve is a pure function of the
// configuration, so the table is identical for any worker count. Callers
// that want solved cells to survive across calls or processes hold a
// Runner instead.
func (c Config) TableIParallel(workers int) []TableICell {
	return memoryRunner(c, workers).TableI()
}

// SconnaScaling reports the Section V-B determination of SCONNA's VDPC
// size at B=8, BR=30 Gbps.
type SconnaScaling struct {
	// TheoreticalN is FSR / channel spacing (200 in the paper).
	TheoreticalN int
	// SensitivityDBm is the Eq. 2/3-derived detector sensitivity for
	// B_Res=1 at the stream bitrate.
	SensitivityDBm float64
	// NFromEquations is the solver result using SensitivityDBm.
	NFromEquations int
	// NWithPaperSensitivity is the solver result pinned to the paper's
	// published P_PD-opt = -28 dBm.
	NWithPaperSensitivity int
	// PaperN is the published result (176).
	PaperN int
}

// SolveSconna computes the SCONNA scalability summary for stream bitrate
// br (30 Gbps in the paper).
func (c Config) SolveSconna(br float64) SconnaScaling {
	mrr := photonics.NewMRR(1550, 0.8)
	s := SconnaScaling{
		TheoreticalN: mrr.ChannelCount(0.25),
		PaperN:       176,
	}
	s.SensitivityDBm = c.SensitivityDBm(1, br)
	s.NFromEquations = c.MaxN(SCONNA, 1, br)
	s.NWithPaperSensitivity = c.MaxNWithSensitivity(SCONNA, -28)
	return s
}
