package scalability

import (
	"math"
	"reflect"
	"testing"
)

func TestOrganizationString(t *testing.T) {
	if SCONNA.String() != "SCONNA" || MAM.String() != "MAM" || AMM.String() != "AMM" {
		t.Fatal("String() broken")
	}
	if Organization(99).String() != "?" {
		t.Fatal("unknown org should render as ?")
	}
}

func TestDefaultConfigMatchesTableIII(t *testing.T) {
	c := DefaultConfig()
	if c.BudgetDBm != 10 {
		t.Errorf("PLaser=%g want 10 dBm", c.BudgetDBm)
	}
	if c.PD.ResponsivityAW != 1.2 {
		t.Errorf("R=%g want 1.2", c.PD.ResponsivityAW)
	}
	if c.PD.DarkCurrentA != 35e-9 {
		t.Errorf("Id=%g want 35 nA", c.PD.DarkCurrentA)
	}
	if c.PD.LoadOhms != 50 || c.PD.TemperatureK != 300 || c.PD.RINdBHz != -140 {
		t.Error("PD constants disagree with Table III")
	}
	if c.ILECdB != 1.6 || c.ILWGdBPerMM != 0.3 || c.ILOSMdB != 4 ||
		c.OBLOSMdB != 0.01 || c.ILMRRdB != 0.01 || c.ILPenaltyDB != 7.3 ||
		c.ELSplitterDB != 0.01 || c.DOSMmm != 0.020 || c.WallPlugEfficiency != 0.1 {
		t.Error("loss constants disagree with Table III")
	}
}

func TestDynamicRangeDB(t *testing.T) {
	// 44 * 2^4 = 704 levels -> 28.5 dB.
	if got := DynamicRangeDB(4, 44); math.Abs(got-28.476) > 0.01 {
		t.Fatalf("got %.3f want 28.48", got)
	}
	// SCONNA's single bit at any N would be handled separately; the helper
	// itself is pure math.
	if got := DynamicRangeDB(0, 1); got != 0 {
		t.Fatalf("1 level should be 0 dB, got %g", got)
	}
}

// The solved Table I must preserve the paper's qualitative structure:
// N decreases with data rate, decreases with precision, and MAM always
// supports a larger N than AMM. Magnitudes must stay within 2x of the
// published values.
func TestTableIShape(t *testing.T) {
	c := DefaultConfig()
	cells := c.TableI()
	if len(cells) != 16 {
		t.Fatalf("want 16 cells, got %d", len(cells))
	}
	byKey := map[[3]int]int{}
	for _, cell := range cells {
		byKey[[3]int{int(cell.Org), cell.Precision, int(cell.DataRate / 1e9)}] = cell.N
		if cell.N < 1 {
			t.Errorf("%v B=%d DR=%g: infeasible N=0", cell.Org, cell.Precision, cell.DataRate)
		}
		if cell.PaperN > 0 {
			ratio := float64(cell.N) / float64(cell.PaperN)
			if ratio > 3 || ratio < 1/3.0 {
				t.Errorf("%v B=%d DR=%.0fGS/s: N=%d vs paper %d (ratio %.2f)",
					cell.Org, cell.Precision, cell.DataRate/1e9, cell.N, cell.PaperN, ratio)
			}
		}
	}
	for _, org := range []Organization{AMM, MAM} {
		for _, b := range []int{4, 6} {
			prev := math.MaxInt32
			for _, gs := range []int{1, 3, 5, 10} {
				n := byKey[[3]int{int(org), b, gs}]
				if n > prev {
					t.Errorf("%v B=%d: N should not increase with DR", org, b)
				}
				prev = n
			}
		}
		for _, gs := range []int{1, 3, 5, 10} {
			if byKey[[3]int{int(org), 6, gs}] >= byKey[[3]int{int(org), 4, gs}] {
				t.Errorf("%v DR=%d: 6-bit N should be below 4-bit N", org, gs)
			}
		}
	}
	for _, b := range []int{4, 6} {
		for _, gs := range []int{1, 3, 5, 10} {
			if byKey[[3]int{int(MAM), b, gs}] <= byKey[[3]int{int(AMM), b, gs}] {
				t.Errorf("B=%d DR=%d: MAM should exceed AMM", b, gs)
			}
		}
	}
}

func TestPaperTableIN(t *testing.T) {
	if PaperTableIN(MAM, 4, 1) != 44 || PaperTableIN(AMM, 6, 10) != 1 {
		t.Fatal("published Table I values wrong")
	}
	if PaperTableIN(SCONNA, 4, 1) != 0 {
		t.Fatal("SCONNA has no Table I entry")
	}
}

// Section V-B headline: SCONNA's digital streams break the N-B trade-off,
// supporting far larger N at 8-bit-equivalent precision than any analog
// VDPC achieves even at 4-bit.
func TestSconnaScalesBeyondAnalog(t *testing.T) {
	c := DefaultConfig()
	s := c.SolveSconna(30e9)
	if s.TheoreticalN != 200 {
		t.Errorf("theoretical N=%d want 200", s.TheoreticalN)
	}
	bestAnalog := 0
	for _, cell := range c.TableI() {
		if cell.N > bestAnalog {
			bestAnalog = cell.N
		}
	}
	if s.NFromEquations <= bestAnalog {
		t.Errorf("SCONNA N=%d should exceed best analog N=%d", s.NFromEquations, bestAnalog)
	}
	if s.NWithPaperSensitivity < 100 {
		t.Errorf("N at paper sensitivity = %d, want >= 100 (paper: 176)", s.NWithPaperSensitivity)
	}
	if s.NWithPaperSensitivity > s.TheoreticalN {
		t.Errorf("N=%d cannot exceed the FSR-limited %d", s.NWithPaperSensitivity, s.TheoreticalN)
	}
	if s.PaperN != 176 {
		t.Errorf("PaperN=%d want 176", s.PaperN)
	}
	if math.IsNaN(s.SensitivityDBm) || s.SensitivityDBm > -15 {
		t.Errorf("B_Res=1 sensitivity %.1f dBm implausible", s.SensitivityDBm)
	}
}

func TestLossChainMonotoneInN(t *testing.T) {
	c := DefaultConfig()
	for _, org := range []Organization{SCONNA, MAM, AMM} {
		l16 := c.LossChain(org, 16, 16).TotalDB()
		l176 := c.LossChain(org, 176, 176).TotalDB()
		if l176 <= l16 {
			t.Errorf("%v: loss should grow with N (%.2f vs %.2f)", org, l16, l176)
		}
	}
}

func TestAMMLossExceedsMAM(t *testing.T) {
	c := DefaultConfig()
	for _, n := range []int{8, 22, 44} {
		amm := c.DynamicRangeLossChain(AMM, n).TotalDB()
		mam := c.DynamicRangeLossChain(MAM, n).TotalDB()
		if amm <= mam {
			t.Errorf("N=%d: AMM loss %.2f should exceed MAM %.2f", n, amm, mam)
		}
	}
}

func TestRequiredLaserDBmConsistent(t *testing.T) {
	c := DefaultConfig()
	sens := -28.0
	got := c.RequiredLaserDBm(SCONNA, 176, 176, sens)
	want := sens + c.LossChain(SCONNA, 176, 176).TotalDB()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("RequiredLaserDBm=%g want %g", got, want)
	}
}

func TestElectricalBudgetAddsWPE(t *testing.T) {
	c := DefaultConfig()
	opt := c.LossChain(SCONNA, 16, 16).TotalDB()
	c.BudgetIsElectrical = true
	elec := c.LossChain(SCONNA, 16, 16).TotalDB()
	if math.Abs(elec-opt-10) > 1e-9 {
		t.Fatalf("WPE=0.1 should add exactly 10 dB, got %.3f", elec-opt)
	}
}

func TestMaxNInfeasibleReturnsZero(t *testing.T) {
	c := DefaultConfig()
	c.BudgetDBm = -60 // impossible budget
	if n := c.MaxN(MAM, 4, 1e9); n != 0 {
		t.Fatalf("expected 0 for infeasible budget, got %d", n)
	}
}

func TestBetaMatchesEq3(t *testing.T) {
	c := DefaultConfig()
	p := 1.585e-6 // -28 dBm
	got := c.Beta(p)
	i := 1.2 * p
	want := math.Sqrt(2*1.602176634e-19*(i+35e-9) + 4*1.380649e-23*300/50 + i*i*1e-14)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("beta=%.4g want %.4g", got, want)
	}
}

func BenchmarkTableISolve(b *testing.B) {
	c := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.TableI()
	}
}

// The Table I solve is a pure function per cell, so the parallel solver
// must return the identical table at every worker count.
func TestTableIParallelWorkerInvariance(t *testing.T) {
	t.Parallel()
	c := DefaultConfig()
	serial := c.TableIParallel(1)
	if len(serial) != 16 {
		t.Fatalf("table has %d cells, want 16", len(serial))
	}
	for _, workers := range []int{2, 8} {
		par := c.TableIParallel(workers)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d Table I diverged from serial", workers)
		}
	}
	if !reflect.DeepEqual(serial, c.TableI()) {
		t.Fatal("TableI must equal TableIParallel at the default worker count")
	}
}
