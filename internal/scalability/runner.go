package scalability

import (
	"path/filepath"
	"time"

	"repro/internal/cache"
	"repro/internal/parallel"
)

// RunnerOptions configures a cache-aware Table I Runner.
type RunnerOptions struct {
	// Workers bounds the cell-solve worker pool (<= 0 selects GOMAXPROCS).
	Workers int
	// CacheEntries bounds the in-memory cell LRU (<= 0 selects
	// cache.DefaultEntries).
	CacheEntries int
	// CacheDir, when non-empty, persists solved cells on disk under
	// CacheDir/scalability so later runs warm-start. Empty keeps the
	// cache in-memory only.
	CacheDir string
	// CacheMaxBytes bounds the on-disk store: opening the runner
	// garbage-collects least-recently-written entries down to the bound
	// (<= 0 leaves the store unbounded).
	CacheMaxBytes int64
	// CacheMaxAge evicts on-disk entries older than this at open
	// (0 disables the age bound).
	CacheMaxAge time.Duration
}

// Runner is the cache-aware evaluation engine of the scalability plane.
// Each Table I cell's MaxN solve is a pure function of (Config, org,
// precision, data rate), so the Runner memoizes solved N values in a
// content-addressed cache and fans misses across a bounded worker pool;
// solved, cached, serial and parallel runs all return the identical
// table. Only the solver output is cached — reference data like PaperN
// is attached after recall, so editing the published table never
// requires invalidating stored solves.
type Runner struct {
	cfg     Config
	workers int
	cache   *cache.Cache[int]
}

// NewRunner builds a Runner over the given operating point. It fails
// only when the disk cache directory cannot be created.
func NewRunner(cfg Config, opts RunnerOptions) (*Runner, error) {
	dir := opts.CacheDir
	if dir != "" {
		// Namespace the store: accel.Runner shares the same root.
		dir = filepath.Join(dir, "scalability")
	}
	c, err := cache.New[int](cache.Options{
		Entries:  opts.CacheEntries,
		Dir:      dir,
		MaxBytes: opts.CacheMaxBytes,
		MaxAge:   opts.CacheMaxAge,
	})
	if err != nil {
		return nil, err
	}
	// The newest runner's cache owns the process-wide "scalability"
	// metrics slot (RegisterMetrics replaces); any /metrics endpoint
	// exports it.
	c.RegisterMetrics("scalability")
	return &Runner{cfg: cfg, workers: opts.Workers, cache: c}, nil
}

// memoryRunner builds the ephemeral in-memory Runner behind
// TableIParallel.
func memoryRunner(cfg Config, workers int) *Runner {
	r, err := NewRunner(cfg, RunnerOptions{Workers: workers})
	if err != nil { // unreachable: no disk layer to fail
		panic(err)
	}
	return r
}

// Cell solves (or recalls) one Table I cell for the Runner's operating
// point at the given organization, precision and data rate.
func (r *Runner) Cell(org Organization, precision int, drHz float64) TableICell {
	n, err := r.cache.GetOrCompute(r.cfg.cellDigest(org, precision, drHz),
		func() (int, error) {
			return r.cfg.MaxN(org, precision, drHz), nil
		})
	if err != nil { // unreachable: the cell solver cannot fail
		panic(err)
	}
	return TableICell{
		Org: org, Precision: precision, DataRate: drHz,
		N:      n,
		PaperN: PaperTableIN(org, precision, int(drHz/1e9)),
	}
}

// TableI regenerates Table I through the cache: max N for AMM and MAM at
// 4- and 6-bit precision across data rates of 1, 3, 5 and 10 GS/s.
func (r *Runner) TableI() []TableICell {
	return r.cells(tableISpecs())
}

// TableIShard solves one contiguous shard (index of count, the CLI
// "-shard i/n" contract) of the Table I grid and returns that slice's
// cells in row order. The partition comes from parallel.ShardSpan, so
// disjoint shard runs sharing a cache directory tree warm-start an
// unsharded TableI completely — its merged output is byte-identical to
// a single-machine run.
func (r *Runner) TableIShard(index, count int) []TableICell {
	specs := tableISpecs()
	span := parallel.ShardSpan(len(specs), index, count)
	return r.cells(specs[span.Lo:span.Hi])
}

// cells solves the given specs across the worker pool, in spec order.
func (r *Runner) cells(specs []tableISpec) []TableICell {
	out, err := parallel.Map(r.workers, len(specs), func(i int) (TableICell, error) {
		s := specs[i]
		return r.Cell(s.org, s.b, float64(s.gs)*1e9), nil
	})
	if err != nil { // unreachable: Cell cannot fail
		panic(err)
	}
	return out
}

// Stats snapshots the cell-cache traffic counters.
func (r *Runner) Stats() cache.Stats { return r.cache.Stats() }

type tableISpec struct {
	org Organization
	b   int
	gs  int
}

// tableISpecs enumerates the published Table I grid in row order.
func tableISpecs() []tableISpec {
	var specs []tableISpec
	for _, org := range []Organization{AMM, MAM} {
		for _, b := range []int{4, 6} {
			for _, gs := range []int{1, 3, 5, 10} {
				specs = append(specs, tableISpec{org, b, gs})
			}
		}
	}
	return specs
}
