package scalability

import (
	"reflect"
	"testing"

	"repro/internal/cache"
)

// TestTableIShardUnion mirrors the accel shard contract on the Table I
// grid: disjoint shard runs against separate store roots, unioned, must
// regenerate the full table from cache alone, identical to an unsharded
// run.
func TestTableIShardUnion(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	want := memoryRunner(cfg, 1).TableI()

	rootA, rootB, merged := t.TempDir(), t.TempDir(), t.TempDir()
	ra, err := NewRunner(cfg, RunnerOptions{CacheDir: rootA})
	if err != nil {
		t.Fatal(err)
	}
	cellsA := ra.TableIShard(0, 2)
	rb, err := NewRunner(cfg, RunnerOptions{CacheDir: rootB})
	if err != nil {
		t.Fatal(err)
	}
	cellsB := rb.TableIShard(1, 2)
	if got := append(append([]TableICell{}, cellsA...), cellsB...); !reflect.DeepEqual(got, want) {
		t.Fatal("shard concatenation diverged from the unsharded table")
	}

	if _, err := cache.MergeDirs(merged, rootA, rootB); err != nil {
		t.Fatal(err)
	}
	warm, err := NewRunner(cfg, RunnerOptions{CacheDir: merged})
	if err != nil {
		t.Fatal(err)
	}
	got := warm.TableI()
	if st := warm.Stats(); st.Misses != 0 || st.Lookups != int64(len(want)) {
		t.Fatalf("union was not fully warm: %+v", st)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("union-warmed table diverged from the unsharded run")
	}
}
