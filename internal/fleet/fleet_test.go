package fleet

import (
	"testing"
)

func TestParseShard(t *testing.T) {
	cases := []struct {
		in   string
		want Shard
		ok   bool
	}{
		{"", Shard{}, true},
		{"0/1", Shard{0, 1}, true},
		{"0/2", Shard{0, 2}, true},
		{"1/2", Shard{1, 2}, true},
		{"7/8", Shard{7, 8}, true},
		{"2/2", Shard{}, false},
		{"-1/2", Shard{}, false},
		{"0/0", Shard{}, false},
		{"1", Shard{}, false},
		{"a/b", Shard{}, false},
		{"1/2/3", Shard{}, false},
	}
	for _, c := range cases {
		got, err := ParseShard(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseShard(%q) err = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && got != c.want {
			t.Fatalf("ParseShard(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestShardSpansPartition: shard spans over any job-list length cover
// [0, n) exactly once — the invariant that makes a directory union of
// shard runs equal to a single run.
func TestShardSpansPartition(t *testing.T) {
	for _, n := range []int{0, 1, 7, 16, 48} {
		for _, count := range []int{1, 2, 3, 5, 9} {
			covered := make([]int, n)
			for i := 0; i < count; i++ {
				sp := Shard{Index: i, Count: count}.Span(n)
				for j := sp.Lo; j < sp.Hi; j++ {
					covered[j]++
				}
			}
			for j, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d count=%d: index %d covered %d times", n, count, j, c)
				}
			}
		}
	}
}

func TestShardZeroValueIsFullSpan(t *testing.T) {
	sp := Shard{}.Span(12)
	if sp.Lo != 0 || sp.Hi != 12 {
		t.Fatalf("unsharded span = %+v, want [0, 12)", sp)
	}
	if (Shard{}).Enabled() {
		t.Fatal("zero value reports enabled")
	}
	if got := (Shard{Index: 1, Count: 4}).String(); got != "1/4" {
		t.Fatalf("String = %q", got)
	}
}
