package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/quant"
)

// artifactExt is the on-disk artifact suffix: one quant.Save stream per
// digest, exactly the bytes -save-quant writes, so a store directory is
// interchangeable with a directory of hand-saved .qnn files.
const artifactExt = ".qnn"

// ArtifactPath is the HTTP route prefix the store handler serves:
// GET ArtifactPath lists digests, GET ArtifactPath/{digest} streams the
// artifact bytes.
const ArtifactPath = "/v1/artifacts"

// Store is digest-keyed read access to quantized-model artifacts: the
// contract replicas pull models through. Get validates content against
// the requested digest — a Store implementation can be wrong, but it
// cannot make a caller accept mismatched bytes.
type Store interface {
	// Get returns the artifact whose quant network digest is dig.
	Get(dig string) (*quant.Network, error)
	// List returns every stored digest in sorted order.
	List() ([]string, error)
}

// validDigest bounds what Get/Put accept as a digest key: the full
// lowercase hex form of digest.Digest (64 chars), which is also what
// keeps the value path-safe on disk and in URLs.
func validDigest(dig string) error {
	if len(dig) != 64 {
		return fmt.Errorf("fleet: digest %q is not 64 hex chars", dig)
	}
	for _, r := range dig {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return fmt.Errorf("fleet: digest %q is not lowercase hex", dig)
		}
	}
	return nil
}

// DiskStore is the on-disk artifact store: <dir>/<digest>.qnn, written
// atomically (temp file + rename, the repository-wide convention), so
// concurrent writers — including other processes sharing the directory
// over a network mount — never expose a torn artifact. Content
// addressing makes write races benign: both sides hold identical bytes.
type DiskStore struct {
	dir string
}

// OpenDiskStore opens (creating if needed) an artifact store rooted at
// dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: artifact store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// Path returns where the digest's artifact lives (whether or not it
// exists yet).
func (s *DiskStore) Path(dig string) string {
	return filepath.Join(s.dir, dig+artifactExt)
}

// Put stores qn under its content digest and returns the digest. An
// already-present entry is left untouched (same digest — same bytes),
// so Put is idempotent and cheap to re-run.
func (s *DiskStore) Put(qn *quant.Network) (string, error) {
	if qn == nil {
		return "", fmt.Errorf("fleet: nil network")
	}
	dig := qn.Digest().String()
	path := s.Path(dig)
	if _, err := os.Stat(path); err == nil {
		return dig, nil
	}
	if err := qn.SaveFile(path); err != nil {
		return "", fmt.Errorf("fleet: storing artifact %s: %w", dig[:12], err)
	}
	return dig, nil
}

// Get loads the digest's artifact and verifies the content hash: a
// corrupt, truncated or mislabeled file fails here, never inside a
// serving worker.
func (s *DiskStore) Get(dig string) (*quant.Network, error) {
	if err := validDigest(dig); err != nil {
		return nil, err
	}
	qn, err := quant.LoadFile(s.Path(dig))
	if err != nil {
		return nil, fmt.Errorf("fleet: artifact %s: %w", dig[:12], err)
	}
	if got := qn.Digest().String(); got != dig {
		return nil, fmt.Errorf("fleet: artifact %s content hashes to %s — store entry corrupt or mislabeled",
			dig[:12], got[:12])
	}
	return qn, nil
}

// List returns the stored digests in sorted order. Temp files and
// foreign entries are invisible.
func (s *DiskStore) List() ([]string, error) {
	dents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("fleet: artifact store: %w", err)
	}
	var out []string
	for _, de := range dents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, artifactExt) {
			continue
		}
		dig := strings.TrimSuffix(name, artifactExt)
		if validDigest(dig) == nil {
			out = append(out, dig)
		}
	}
	sort.Strings(out)
	return out, nil
}

// artifactList is the JSON document of GET /v1/artifacts.
type artifactList struct {
	Artifacts []string `json:"artifacts"`
}

// StoreHandler serves a Store read-only over HTTP:
//
//	GET /v1/artifacts          — {"artifacts": [digest, ...]} (sorted)
//	GET /v1/artifacts/{digest} — the raw quant.Save artifact bytes
//
// Replicas booting with -pull fetch through this surface; the digest in
// the URL is the integrity contract (HTTPStore re-hashes what it
// receives).
func StoreHandler(s Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(ArtifactPath, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET required")
			return
		}
		digs, err := s.List()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(artifactList{Artifacts: digs})
	})
	mux.HandleFunc(ArtifactPath+"/{digest}", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET required")
			return
		}
		dig := req.PathValue("digest")
		if err := validDigest(dig); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		qn, err := s.Get(dig)
		if err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, fs.ErrNotExist) {
				code = http.StatusNotFound
			}
			httpError(w, code, err.Error())
			return
		}
		// Serialize the validated network rather than streaming the file:
		// the handler then works for any Store, and what goes on the wire
		// is exactly what Get vouched for.
		var buf bytes.Buffer
		if err := qn.Save(&buf); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(buf.Bytes())
	})
	return mux
}

// httpError writes the fleet plane's JSON error body (the same shape as
// the serving plane's).
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// HTTPStore pulls artifacts from a StoreHandler (typically the router's
// listener) and re-validates every Get by content digest — transport
// corruption or a lying server fails the pull, never boots a wrong
// model.
type HTTPStore struct {
	// Base is the server root, e.g. "http://router:8080".
	Base string
	// Client overrides the HTTP client (nil = http.DefaultClient).
	Client *http.Client
}

func (s *HTTPStore) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

// Get fetches and validates one artifact by digest.
func (s *HTTPStore) Get(dig string) (*quant.Network, error) {
	if err := validDigest(dig); err != nil {
		return nil, err
	}
	resp, err := s.client().Get(strings.TrimRight(s.Base, "/") + ArtifactPath + "/" + dig)
	if err != nil {
		return nil, fmt.Errorf("fleet: pulling artifact %s: %w", dig[:12], err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("fleet: pulling artifact %s: %d %s", dig[:12], resp.StatusCode, body)
	}
	qn, err := quant.Load(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("fleet: pulling artifact %s: %w", dig[:12], err)
	}
	if got := qn.Digest().String(); got != dig {
		return nil, fmt.Errorf("fleet: pulled artifact hashes to %s, want %s", got[:12], dig[:12])
	}
	return qn, nil
}

// List fetches the server's digest listing.
func (s *HTTPStore) List() ([]string, error) {
	resp, err := s.client().Get(strings.TrimRight(s.Base, "/") + ArtifactPath)
	if err != nil {
		return nil, fmt.Errorf("fleet: listing artifacts: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: listing artifacts: %d", resp.StatusCode)
	}
	var doc artifactList
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("fleet: listing artifacts: %w", err)
	}
	return doc.Artifacts, nil
}
