// Package fleet is the multi-node distribution plane of the serving
// stack: it scales the single-box model registry (internal/serve) and
// the cache-aware sweep runners (internal/accel, internal/scalability)
// across machines using the digest substrate the repository already
// runs on.
//
// Three pieces compose it:
//
//   - An artifact store (DiskStore, HTTPStore): digest-keyed Put/Get/List
//     of quantized-model artifacts (quant.Save bytes) with the same
//     atomic temp-file+rename writes as the result cache. Replicas pull
//     models by digest and validate what they received by re-hashing —
//     a store can be corrupted, swapped or stale, but it can never make
//     a replica serve bytes that don't match the requested version.
//
//   - A router (Router): consistent-hashes model names onto a replica
//     ring (Ring — bounded-load rendezvous hashing over the splitmix64
//     finalizer, a pure function of the member set) and proxies
//     /v1/models/{name}/classify with deadline propagation, per-replica
//     circuit breakers (internal/resilience) and candidate-order
//     failover. Membership or model-set changes rebalance the table
//     deterministically.
//
//   - Shard coordinates (Shard): the "-shard i/n" contract CLI sweeps
//     use to split a deterministic job list across machines via
//     parallel.Spans, so a directory union of the shards' stores is
//     byte-identical to a single-machine run.
package fleet

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/parallel"
)

// mix64 is the splitmix64 finalizer — the same fixed, well-diffusing
// hash the load generator's traffic mix, the telemetry trace IDs and
// the chaos schedules are built on. Routing reuses it so model→replica
// assignment is a documented pure function, not an accident of a map
// iteration or a library version.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash64 folds a string through mix64 byte by byte. Deterministic
// across processes and releases by construction (no seed, no
// map-iteration dependence), which is what lets two routers with the
// same member set route identically with no coordination.
func hash64(s string) uint64 {
	h := uint64(len(s))
	for i := 0; i < len(s); i++ {
		h = mix64(h ^ uint64(s[i]))
	}
	return h
}

// Shard is one coordinate of an N-way sweep partition: index Index of
// Count contiguous shards. The zero value means "unsharded".
type Shard struct {
	Index, Count int
}

// ParseShard parses the CLI "-shard i/n" syntax. "" is the unsharded
// zero value; otherwise i/n with 0 <= i < n is required.
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("fleet: shard %q is not i/n", s)
	}
	i, err := strconv.Atoi(is)
	if err != nil {
		return Shard{}, fmt.Errorf("fleet: shard index %q: %w", is, err)
	}
	n, err := strconv.Atoi(ns)
	if err != nil {
		return Shard{}, fmt.Errorf("fleet: shard count %q: %w", ns, err)
	}
	if n < 1 || i < 0 || i >= n {
		return Shard{}, fmt.Errorf("fleet: shard %d/%d out of range (want 0 <= i < n)", i, n)
	}
	return Shard{Index: i, Count: n}, nil
}

// Enabled reports whether the coordinate names a real partition (a
// parsed -shard flag) rather than the unsharded zero value.
func (s Shard) Enabled() bool { return s.Count > 0 }

// Span returns this shard's slice of an n-item job list, via the same
// parallel.Spans partition every deterministic sweep uses.
func (s Shard) Span(n int) parallel.Span {
	if !s.Enabled() {
		return parallel.Span{Lo: 0, Hi: n}
	}
	return parallel.ShardSpan(n, s.Index, s.Count)
}

// String formats the coordinate back into the CLI syntax.
func (s Shard) String() string {
	if !s.Enabled() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}
