package fleet

import (
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// testNet builds one small quantized network per test binary: store
// semantics do not depend on trained weights, so a seeded random-init
// network keeps the suite fast while digests stay deterministic.
var testNetFixture struct {
	once sync.Once
	qn   *quant.Network
	alt  *quant.Network
}

func buildNet(t testing.TB, seed int64, bits int) *quant.Network {
	t.Helper()
	net := nn.BuildSmallCNN(2, 4, seed)
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(1, 8, 8)
	for j := range x.Data {
		x.Data[j] = float32(math.Abs(rng.NormFloat64()))
	}
	qn, err := quant.Quantize(net, bits, []nn.Example{{X: x, Label: 0}})
	if err != nil {
		t.Fatalf("quantize: %v", err)
	}
	return qn
}

func testNet(t testing.TB) *quant.Network {
	t.Helper()
	testNetFixture.once.Do(func() {
		testNetFixture.qn = buildNet(t, 21, 6)
		testNetFixture.alt = buildNet(t, 35, 5)
	})
	return testNetFixture.qn
}

func testNetAlt(t testing.TB) *quant.Network {
	t.Helper()
	testNet(t)
	return testNetFixture.alt
}

func TestDiskStoreRoundTrip(t *testing.T) {
	store, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	qn := testNet(t)
	dig, err := store.Put(qn)
	if err != nil {
		t.Fatal(err)
	}
	if dig != qn.Digest().String() {
		t.Fatalf("Put returned %s, want the content digest %s", dig, qn.Digest())
	}
	// Idempotent re-put.
	if again, err := store.Put(qn); err != nil || again != dig {
		t.Fatalf("re-put: %s, %v", again, err)
	}
	got, err := store.Get(dig)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest().String() != dig {
		t.Fatalf("round trip changed the digest: %s", got.Digest())
	}
	digs, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(digs) != 1 || digs[0] != dig {
		t.Fatalf("List = %v, want [%s]", digs, dig)
	}
}

func TestDiskStoreListSortsAndFilters(t *testing.T) {
	store, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := store.Put(testNet(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := store.Put(testNetAlt(t))
	if err != nil {
		t.Fatal(err)
	}
	// Foreign files and temp droppings must be invisible.
	for _, junk := range []string{"README.md", ".quant-tmp-123", "nothex" + strings.Repeat("0", 57) + artifactExt} {
		if err := os.WriteFile(filepath.Join(store.Dir(), junk), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	digs, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{a, b}
	if want[0] > want[1] {
		want[0], want[1] = want[1], want[0]
	}
	if len(digs) != 2 || digs[0] != want[0] || digs[1] != want[1] {
		t.Fatalf("List = %v, want %v", digs, want)
	}
}

func TestDiskStoreRejectsCorruptArtifact(t *testing.T) {
	store, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dig, err := store.Put(testNet(t))
	if err != nil {
		t.Fatal(err)
	}
	// A mislabeled entry: valid artifact bytes stored under the wrong
	// digest must fail the content check, not load silently.
	other := testNetAlt(t)
	if err := other.SaveFile(store.Path(dig)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(dig); err == nil || !strings.Contains(err.Error(), "corrupt or mislabeled") {
		t.Fatalf("mislabeled artifact loaded: %v", err)
	}
	// Truncated bytes must fail deserialization.
	if err := os.WriteFile(store.Path(dig), []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(dig); err == nil {
		t.Fatal("truncated artifact loaded")
	}
}

func TestDiskStoreRejectsBadDigest(t *testing.T) {
	store, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, dig := range []string{"", "short", strings.Repeat("Z", 64), "../../../../etc/passwd"} {
		if _, err := store.Get(dig); err == nil {
			t.Fatalf("digest %q accepted", dig)
		}
	}
}

// TestHTTPStore exercises the full pull path: DiskStore behind
// StoreHandler, fetched through HTTPStore, digest re-validated
// client-side.
func TestHTTPStore(t *testing.T) {
	disk, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dig, err := disk.Put(testNet(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(StoreHandler(disk))
	defer srv.Close()

	remote := &HTTPStore{Base: srv.URL}
	digs, err := remote.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(digs) != 1 || digs[0] != dig {
		t.Fatalf("remote List = %v, want [%s]", digs, dig)
	}
	qn, err := remote.Get(dig)
	if err != nil {
		t.Fatal(err)
	}
	if qn.Digest().String() != dig {
		t.Fatalf("pulled digest %s, want %s", qn.Digest(), dig)
	}

	// Missing artifact: 404, surfaced as an error by the client.
	missing := strings.Repeat("0", 64)
	resp, err := http.Get(srv.URL + ArtifactPath + "/" + missing)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing artifact answered %d, want 404", resp.StatusCode)
	}
	if _, err := remote.Get(missing); err == nil {
		t.Fatal("client accepted a 404 pull")
	}

	// Malformed digest: 400 before touching the store.
	resp, err = http.Get(srv.URL + ArtifactPath + "/nothex")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad digest answered %d, want 400", resp.StatusCode)
	}
}

// TestHTTPStoreRejectsLyingServer: a server returning wrong bytes for a
// digest must fail the client-side re-hash.
func TestHTTPStoreRejectsLyingServer(t *testing.T) {
	qn := testNet(t)
	lying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_ = qn.Save(w) // always the same artifact, whatever was asked
	}))
	defer lying.Close()
	remote := &HTTPStore{Base: lying.URL}
	wrong := strings.Repeat("1", 64)
	if _, err := remote.Get(wrong); err == nil || !strings.Contains(err.Error(), "hashes to") {
		t.Fatalf("lying server accepted: %v", err)
	}
}
