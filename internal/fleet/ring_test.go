package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

var (
	goldenMembers = []string{"replica-a:9001", "replica-b:9002", "replica-c:9003"}
	goldenModels  = []string{"alpha", "beta", "gamma", "delta", "epsilon", "default"}
)

// TestAssignGolden pins the routing table for a fixed (member set, model
// set) pair: the assignment is a documented pure function of the two
// sets, and any change to the hash, the score mix, the placement order
// or the load bound shows up here as a routing break — which is a wire
// compatibility break for every deployed router pair.
func TestAssignGolden(t *testing.T) {
	want := map[string]string{
		"alpha":   "replica-b:9002",
		"beta":    "replica-c:9003",
		"default": "replica-a:9001",
		"delta":   "replica-b:9002",
		"epsilon": "replica-b:9002",
		"gamma":   "replica-c:9003",
	}
	got := NewRing(goldenMembers).Assign(goldenModels, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("assignment drifted from golden:\n got %v\nwant %v", got, want)
	}
}

// TestAssignDeterministic: member order, model order and repetition must
// not change the table.
func TestAssignDeterministic(t *testing.T) {
	base := NewRing(goldenMembers).Assign(goldenModels, 0)
	shuffledMembers := []string{"replica-c:9003", "replica-a:9001", "replica-b:9002", "replica-a:9001"}
	shuffledModels := []string{"default", "epsilon", "alpha", "gamma", "beta", "delta", "alpha"}
	for i := 0; i < 3; i++ {
		got := NewRing(shuffledMembers).Assign(shuffledModels, 0)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("assignment depends on input order: %v vs %v", got, base)
		}
	}
}

// TestAssignBoundedLoad: no member may exceed
// ceil(models/members * loadFactor) primaries.
func TestAssignBoundedLoad(t *testing.T) {
	members := []string{"m0", "m1", "m2", "m3", "m4"}
	models := make([]string, 60)
	for i := range models {
		models[i] = fmt.Sprintf("model-%03d", i)
	}
	assign := NewRing(members).Assign(models, 0)
	if len(assign) != len(models) {
		t.Fatalf("%d models assigned, want %d", len(assign), len(models))
	}
	load := map[string]int{}
	for _, member := range assign {
		load[member]++
	}
	bound := int(float64(len(models))/float64(len(members))*DefaultLoadFactor + 0.999999)
	for member, n := range load {
		if n > bound {
			t.Fatalf("member %s carries %d models, bound %d", member, n, bound)
		}
	}
}

// TestAssignMemberLeave: removing a member moves only the models that
// were assigned to it (rendezvous stability) — plus possibly models the
// tighter load bound displaces, which the golden sets don't trigger.
func TestAssignMemberLeave(t *testing.T) {
	before := NewRing(goldenMembers).Assign(goldenModels, 0)
	after := NewRing([]string{"replica-a:9001", "replica-c:9003"}).Assign(goldenModels, 0)
	for model, was := range before {
		if was == "replica-b:9002" {
			continue // its models must move somewhere
		}
		if after[model] != was {
			t.Fatalf("model %s moved %s -> %s though its member stayed", model, was, after[model])
		}
	}
	for model, now := range after {
		if now == "replica-b:9002" {
			t.Fatalf("model %s assigned to departed member", model)
		}
	}
}

// TestCandidatesComplete: the failover order is a permutation of the
// member set with the assigned primary reachable from it.
func TestCandidatesComplete(t *testing.T) {
	ring := NewRing(goldenMembers)
	for _, model := range goldenModels {
		cands := ring.Candidates(model)
		if len(cands) != ring.Len() {
			t.Fatalf("model %s: %d candidates for %d members", model, len(cands), ring.Len())
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("model %s: duplicate candidate %s", model, c)
			}
			seen[c] = true
		}
	}
}

func TestEmptyRing(t *testing.T) {
	ring := NewRing(nil)
	if got := ring.Assign(goldenModels, 0); got != nil {
		t.Fatalf("empty ring assigned %v", got)
	}
	if got := NewRing(goldenMembers).Assign(nil, 0); got != nil {
		t.Fatalf("empty model set assigned %v", got)
	}
}
