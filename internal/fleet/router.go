package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// RouterOptions configures a fleet router.
type RouterOptions struct {
	// Replicas is the initial member set ("host:port" or full URLs).
	Replicas []string
	// Breaker shapes the per-replica circuit breakers. nil selects
	// fleet defaults tuned for dead-replica detection: a handful of
	// transport errors opens the breaker, so a killed replica stops
	// eating first-attempt latency within a few requests.
	Breaker *resilience.BreakerOptions
	// RequestTimeout bounds each proxied request end to end (candidate
	// walk included); expiry answers 504. 0 imposes no router deadline —
	// the client's own context still propagates.
	RequestTimeout time.Duration
	// LoadFactor is the bounded-load headroom (<= 1 selects
	// DefaultLoadFactor).
	LoadFactor float64
	// Client overrides the proxy HTTP client (nil = a dedicated client).
	Client *http.Client
	// Store, when non-nil, mounts the artifact surface
	// (GET /v1/artifacts[/{digest}]) on the router's handler so replicas
	// can pull models from the box that routes to them.
	Store Store
}

// routerBreakerDefaults trip fast on transport errors: a dead replica
// is a 100%-failure source, so four samples are plenty, and a single
// half-open probe per cooldown is all it takes to notice recovery.
var routerBreakerDefaults = resilience.BreakerOptions{
	Window: 8, FailureThreshold: 0.5, MinSamples: 4,
	Cooldown: time.Second, HalfOpenProbes: 1,
}

// replica is one ring member's live state.
type replica struct {
	name    string // as registered — the X-Served-By value
	base    string // scheme://host:port
	breaker *resilience.Breaker

	proxied atomic.Uint64 // responses forwarded from this replica
	errored atomic.Uint64 // transport errors + 5xx charged to it
}

// Router consistent-hashes model names onto a replica ring and proxies
// classify traffic with deadline propagation, per-replica circuit
// breakers and deterministic failover. The routing table — who owns
// which model — is a pure function of (member set, model set): pinned
// by the golden test, identical on every router with the same view.
type Router struct {
	opts   RouterOptions
	client *http.Client

	mu     sync.RWMutex
	ring   *Ring
	models []string          // sorted model-set snapshot
	assign map[string]string // model -> replica name
	reps   map[string]*replica

	reroutes atomic.Uint64 // failover hops past a primary
	unrouted atomic.Uint64 // requests for models not in the table
}

// NewRouter builds a router over the initial member set. The routing
// table starts empty; Refresh (or SetModels) populates it.
func NewRouter(opts RouterOptions) *Router {
	rt := &Router{
		opts:   opts,
		client: opts.Client,
		reps:   make(map[string]*replica),
		assign: make(map[string]string),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	for _, name := range opts.Replicas {
		rt.addLocked(name)
	}
	rt.rebuildLocked()
	return rt
}

// breakerOpts resolves the per-replica breaker configuration.
func (rt *Router) breakerOpts() resilience.BreakerOptions {
	if rt.opts.Breaker != nil {
		return *rt.opts.Breaker
	}
	return routerBreakerDefaults
}

// addLocked registers a member (idempotent). Callers hold rt.mu or are
// inside NewRouter.
func (rt *Router) addLocked(name string) {
	name = strings.TrimSpace(name)
	if name == "" {
		return
	}
	if _, ok := rt.reps[name]; ok {
		return
	}
	base := name
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	rt.reps[name] = &replica{
		name: name, base: strings.TrimRight(base, "/"),
		breaker: resilience.NewBreaker(rt.breakerOpts()),
	}
}

// rebuildLocked recomputes the ring and the model assignment from the
// current member and model sets. Callers hold rt.mu (or NewRouter).
func (rt *Router) rebuildLocked() {
	members := make([]string, 0, len(rt.reps))
	for name := range rt.reps {
		members = append(members, name)
	}
	rt.ring = NewRing(members)
	rt.assign = rt.ring.Assign(rt.models, rt.opts.LoadFactor)
}

// Join adds a replica to the ring and rebalances. Idempotent.
func (rt *Router) Join(name string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.addLocked(name)
	rt.rebuildLocked()
}

// Leave removes a replica from the ring and rebalances: only the models
// that hashed onto it (plus bounded-load spill) move.
func (rt *Router) Leave(name string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.reps, name)
	rt.rebuildLocked()
}

// SetModels installs the routed model set and rebalances. The set is
// normally discovered via Refresh; tests and single-tenant routers set
// it directly.
func (rt *Router) SetModels(models []string) {
	sorted := append([]string(nil), models...)
	sort.Strings(sorted)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.models = sorted
	rt.rebuildLocked()
}

// Models returns the routed model set (sorted).
func (rt *Router) Models() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]string(nil), rt.models...)
}

// Assignments snapshots the routing table: model -> replica name.
func (rt *Router) Assignments() map[string]string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make(map[string]string, len(rt.assign))
	for m, r := range rt.assign {
		out[m] = r
	}
	return out
}

// replicaModels is the slice of a replica's /v1/models listing Refresh
// reads — just the names (the serving plane's ModelInfo is a superset).
type replicaModels struct {
	Models []struct {
		Name string `json:"name"`
	} `json:"models"`
}

// Refresh polls every member's GET /v1/models, unions the discovered
// model names and rebalances — how replica-side Register/Unregister
// reaches the routing table. Unreachable replicas contribute nothing
// (their breakers handle traffic-time shedding); the error joins the
// per-replica failures but the table still updates with what was
// learned, unless nothing answered (then the old table stands).
func (rt *Router) Refresh(ctx context.Context) error {
	rt.mu.RLock()
	reps := make([]*replica, 0, len(rt.reps))
	for _, r := range rt.reps {
		reps = append(reps, r)
	}
	rt.mu.RUnlock()
	sort.Slice(reps, func(i, j int) bool { return reps[i].name < reps[j].name })

	seen := make(map[string]bool)
	answered := 0
	var errs []error
	for _, r := range reps {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/v1/models", nil)
		if err != nil {
			errs = append(errs, fmt.Errorf("replica %s: %w", r.name, err))
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			errs = append(errs, fmt.Errorf("replica %s: %w", r.name, err))
			continue
		}
		var doc replicaModels
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			errs = append(errs, fmt.Errorf("replica %s: listing models: %d %v", r.name, resp.StatusCode, err))
			continue
		}
		answered++
		for _, m := range doc.Models {
			if m.Name != "" {
				seen[m.Name] = true
			}
		}
	}
	if answered > 0 {
		models := make([]string, 0, len(seen))
		for m := range seen {
			models = append(models, m)
		}
		rt.SetModels(models)
	}
	return errors.Join(errs...)
}

// candidates returns the failover walk for a model: the assigned
// primary first, then the remaining members in descending rendezvous
// score. ok is false when the model is not in the routing table.
func (rt *Router) candidates(model string) ([]*replica, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	primary, ok := rt.assign[model]
	if !ok {
		return nil, false
	}
	names := rt.ring.Candidates(model)
	out := make([]*replica, 0, len(names))
	if r := rt.reps[primary]; r != nil {
		out = append(out, r)
	}
	for _, n := range names {
		if n == primary {
			continue
		}
		if r := rt.reps[n]; r != nil {
			out = append(out, r)
		}
	}
	return out, true
}

// Health reports "ok", or "degraded" while any replica breaker is open
// or probing (the router still serves — failover covers the hole).
func (rt *Router) Health() string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	for _, r := range rt.reps {
		if r.breaker.State() != resilience.Closed {
			return "degraded"
		}
	}
	return "ok"
}

// RoutedModel is one routing-table row of the router's stats document.
type RoutedModel struct {
	Name    string `json:"name"`
	Replica string `json:"replica"`
}

// ReplicaStats is one member's row of the router's stats document.
type ReplicaStats struct {
	Name    string                   `json:"name"`
	Proxied uint64                   `json:"proxied"`
	Errors  uint64                   `json:"errors"`
	Breaker *resilience.BreakerStats `json:"breaker,omitempty"`
}

// RouterStats is the router's stats document (GET /v1/models and
// GET /stats on the router's surface).
type RouterStats struct {
	Models   []RoutedModel  `json:"models"`
	Replicas []ReplicaStats `json:"replicas"`
	Reroutes uint64         `json:"reroutes"`
	Unrouted uint64         `json:"unrouted"`
	Health   string         `json:"health"`
}

// Stats snapshots the routing table and per-replica traffic.
func (rt *Router) Stats() RouterStats {
	rt.mu.RLock()
	models := make([]RoutedModel, 0, len(rt.assign))
	for m, r := range rt.assign {
		models = append(models, RoutedModel{Name: m, Replica: r})
	}
	reps := make([]*replica, 0, len(rt.reps))
	for _, r := range rt.reps {
		reps = append(reps, r)
	}
	rt.mu.RUnlock()
	sort.Slice(models, func(i, j int) bool { return models[i].Name < models[j].Name })
	sort.Slice(reps, func(i, j int) bool { return reps[i].name < reps[j].name })
	out := RouterStats{
		Models:   models,
		Reroutes: rt.reroutes.Load(),
		Unrouted: rt.unrouted.Load(),
		Health:   rt.Health(),
	}
	for _, r := range reps {
		bs := r.breaker.Stats()
		out.Replicas = append(out.Replicas, ReplicaStats{
			Name: r.name, Proxied: r.proxied.Load(), Errors: r.errored.Load(), Breaker: &bs,
		})
	}
	return out
}

// Handler returns the router's HTTP surface:
//
//	POST /v1/models/{name}/classify — proxied to the model's replica
//	                                  (failover in rendezvous order),
//	                                  response stamped X-Served-By
//	GET  /v1/models/{name}/stats    — proxied the same way
//	POST /v1/classify               — alias for model "default"
//	GET  /v1/models, GET /stats     — RouterStats (routing table,
//	                                  per-replica traffic, breakers)
//	GET  /healthz                   — ok/degraded (always 200: failover
//	                                  keeps a degraded router serving)
//	GET  /metrics                   — Prometheus text exposition
//	GET  /v1/artifacts[/{digest}]   — the artifact store, when mounted
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/models/{name}/classify", func(w http.ResponseWriter, req *http.Request) {
		rt.proxy(w, req, req.PathValue("name"))
	})
	mux.HandleFunc("/v1/models/{name}/stats", func(w http.ResponseWriter, req *http.Request) {
		rt.proxy(w, req, req.PathValue("name"))
	})
	mux.HandleFunc("/v1/classify", func(w http.ResponseWriter, req *http.Request) {
		rt.proxy(w, req, "default")
	})
	mux.HandleFunc("/v1/models", rt.handleStats)
	mux.HandleFunc("/stats", rt.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"status": rt.Health()})
	})
	mux.Handle("/metrics", telemetry.MetricsHandler(rt.collectInto))
	if rt.opts.Store != nil {
		mux.Handle(ArtifactPath, StoreHandler(rt.opts.Store))
		mux.Handle(ArtifactPath+"/", StoreHandler(rt.opts.Store))
	}
	return mux
}

func (rt *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rt.Stats())
}

// proxy forwards one request to the model's replica, walking the
// failover candidates in rendezvous order. Per-candidate outcome
// accounting: a transport error or 5xx records a breaker failure and
// moves on (counted as a reroute); any other status — 2xx results, 4xx
// client errors, 429 backpressure — is the replica answering and is
// forwarded verbatim plus the X-Served-By stamp. When every candidate
// fails, the client sees 504 if the router deadline expired, else 502.
func (rt *Router) proxy(w http.ResponseWriter, req *http.Request, model string) {
	cands, ok := rt.candidates(model)
	if !ok || len(cands) == 0 {
		rt.unrouted.Add(1)
		httpError(w, http.StatusNotFound, fmt.Sprintf("fleet: no replica routes model %q", model))
		return
	}
	body, err := io.ReadAll(req.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := req.Context()
	if rt.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.opts.RequestTimeout)
		defer cancel()
	}

	var lastErr error
	for i, r := range cands {
		allowed, _ := r.breaker.Allow()
		if !allowed {
			continue
		}
		if i > 0 {
			rt.reroutes.Add(1)
		}
		out, err := http.NewRequestWithContext(ctx, req.Method, r.base+req.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			r.breaker.Record(false)
			lastErr = err
			continue
		}
		out.Header = req.Header.Clone()
		resp, err := rt.client.Do(out)
		if err != nil {
			r.breaker.Record(false)
			r.errored.Add(1)
			lastErr = err
			if ctx.Err() != nil {
				break // the deadline expired: stop burning candidates
			}
			continue
		}
		if resp.StatusCode >= 500 {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			r.breaker.Record(false)
			r.errored.Add(1)
			lastErr = fmt.Errorf("replica %s answered %d", r.name, resp.StatusCode)
			continue
		}
		r.breaker.Record(true)
		r.proxied.Add(1)
		h := w.Header()
		for k, vs := range resp.Header {
			h[k] = vs
		}
		h.Set(serve.ServedByHeader, r.name)
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
	if ctx.Err() != nil {
		httpError(w, http.StatusGatewayTimeout,
			fmt.Sprintf("fleet: model %q deadline expired in the router", model))
		return
	}
	msg := fmt.Sprintf("fleet: no replica available for model %q", model)
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	httpError(w, http.StatusBadGateway, msg)
}

// collectInto folds the router's counters into the exposition document:
// ring gauges, per-replica traffic and breaker state, failover totals.
// Family names are router-scoped (sconna_router_*) so a scrape of a
// router box is never confused with a replica's serving families.
func (rt *Router) collectInto(f *telemetry.Families) {
	st := rt.Stats()
	f.Family("sconna_router_replicas", "gauge", "Ring members.").
		Add(float64(len(st.Replicas)))
	f.Family("sconna_router_models", "gauge", "Models in the routing table.").
		Add(float64(len(st.Models)))
	f.Family("sconna_router_reroutes_total", "counter",
		"Failover hops past a model's primary replica.").Add(float64(st.Reroutes))
	f.Family("sconna_router_unrouted_total", "counter",
		"Requests for models absent from the routing table.").Add(float64(st.Unrouted))
	prox := f.Family("sconna_router_proxied_total", "counter",
		"Responses forwarded, by replica.")
	errs := f.Family("sconna_router_errors_total", "counter",
		"Transport errors and 5xx answers, by replica.")
	brState := f.Family("sconna_router_breaker_state", "gauge",
		"Per-replica circuit-breaker state: 0 closed, 1 half-open, 2 open.")
	for _, r := range st.Replicas {
		lab := telemetry.L("replica", r.Name)
		prox.Add(float64(r.Proxied), lab)
		errs.Add(float64(r.Errors), lab)
		state := 0.0
		if r.Breaker != nil {
			switch r.Breaker.State {
			case resilience.HalfOpen.String():
				state = 1
			case resilience.Open.String():
				state = 2
			}
		}
		brState.Add(state, lab)
	}
}
