package fleet

import (
	"sort"
)

// Ring is a consistent-hash view of a replica member set. Assignment
// uses rendezvous (highest-random-weight) hashing over the splitmix64
// finalizer with a bounded-load cap: every (model, member) pair gets a
// deterministic score, each model prefers its highest-scoring member,
// and no member takes more than LoadFactor times its fair share. The
// result is a pure function of (member set, model set) — two routers
// that agree on those agree on every route with no coordination — and
// a member change moves only the models that hashed onto it (plus any
// spill the load cap forces), never a full reshuffle.
type Ring struct {
	members []string // sorted, deduplicated
}

// DefaultLoadFactor is the bounded-load headroom: a member accepts at
// most ceil(models/members * DefaultLoadFactor) primaries before
// assignment spills to the next candidate in score order.
const DefaultLoadFactor = 1.25

// NewRing builds a ring over the given members (order-insensitive;
// duplicates and empty names are dropped).
func NewRing(members []string) *Ring {
	seen := make(map[string]bool, len(members))
	out := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		out = append(out, m)
	}
	sort.Strings(out)
	return &Ring{members: out}
}

// Members returns the sorted member set.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// score is the rendezvous weight of (model, member). Both operands go
// through hash64 before mixing so structurally different pairs ("ab","c"
// vs "a","bc") can never collide by concatenation.
func score(model, member string) uint64 {
	return mix64(hash64(model) ^ mix64(hash64(member)))
}

// Candidates returns the members in descending preference order for the
// model: primary first, then the failover sequence the router walks when
// a breaker is open or a proxy attempt fails. Ties (astronomically rare)
// break by name so the order stays total and deterministic.
func (r *Ring) Candidates(model string) []string {
	out := append([]string(nil), r.members...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := score(model, out[i]), score(model, out[j])
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// Assign maps every model onto a member with bounded load: models are
// placed in sorted-name order, each onto its highest-scoring member
// that still has capacity ceil(len(models)/len(members) * loadFactor).
// loadFactor <= 1 selects DefaultLoadFactor. An empty ring returns nil.
// The sorted placement order makes the spill — not just the scores —
// a pure function of the two sets, which the golden routing test pins.
func (r *Ring) Assign(models []string, loadFactor float64) map[string]string {
	if len(r.members) == 0 || len(models) == 0 {
		return nil
	}
	if loadFactor <= 1 {
		loadFactor = DefaultLoadFactor
	}
	sorted := append([]string(nil), models...)
	sort.Strings(sorted)
	fair := float64(len(sorted)) / float64(len(r.members))
	bound := int(fair*loadFactor + 0.999999)
	if bound < 1 {
		bound = 1
	}
	load := make(map[string]int, len(r.members))
	out := make(map[string]string, len(sorted))
	for _, model := range sorted {
		if _, dup := out[model]; dup {
			continue
		}
		for _, member := range r.Candidates(model) {
			if load[member] < bound {
				out[model] = member
				load[member]++
				break
			}
		}
		if _, ok := out[model]; !ok {
			// Every member is at cap (cap*members >= models makes this
			// unreachable, but a defensive fallback beats dropping a model):
			// take the primary regardless of load.
			primary := r.Candidates(model)[0]
			out[model] = primary
			load[primary]++
		}
	}
	return out
}
