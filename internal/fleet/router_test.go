package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// stubReplica is a minimal replica surface for router tests: it answers
// classify with its own identity and lists a fixed model set — the
// routing plane's contract needs nothing heavier than that, which keeps
// these tests free of engine builds.
type stubReplica struct {
	srv    *httptest.Server
	models []string
}

func newStubReplica(t *testing.T, models ...string) *stubReplica {
	t.Helper()
	s := &stubReplica{models: models}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/models/{name}/classify", func(w http.ResponseWriter, req *http.Request) {
		body, _ := io.ReadAll(req.Body)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"replica": s.Name(), "model": req.PathValue("name"), "bytes": len(body),
			"trace": req.Header.Get(telemetry.TraceIDHeader),
		})
	})
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, _ *http.Request) {
		var doc struct {
			Models []map[string]string `json:"models"`
		}
		for _, m := range s.models {
			doc.Models = append(doc.Models, map[string]string{"name": m})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(doc)
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

// Name returns the member name the router addresses this replica by
// (host:port, no scheme — the router adds http://).
func (s *stubReplica) Name() string { return strings.TrimPrefix(s.srv.URL, "http://") }

func postClassify(t *testing.T, base, model string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/models/"+model+"/classify", "application/json",
		bytes.NewReader([]byte(`{"input":[1]}`)))
	if err != nil {
		t.Fatalf("post %s: %v", model, err)
	}
	return resp
}

func decodeReplica(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var doc struct {
		Replica string `json:"replica"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return doc.Replica
}

func TestRouterProxiesToAssignedReplica(t *testing.T) {
	a := newStubReplica(t, "alpha", "beta")
	b := newStubReplica(t, "alpha", "beta")
	rt := NewRouter(RouterOptions{Replicas: []string{a.Name(), b.Name()}})
	rt.SetModels([]string{"alpha", "beta"})
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	assign := rt.Assignments()
	for _, model := range []string{"alpha", "beta"} {
		resp := postClassify(t, hs.URL, model)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("model %s: status %d", model, resp.StatusCode)
		}
		served := resp.Header.Get(serve.ServedByHeader)
		if served != assign[model] {
			t.Fatalf("model %s served by %s, table says %s", model, served, assign[model])
		}
		if got := decodeReplica(t, resp); got != assign[model] {
			t.Fatalf("model %s answered by %s, table says %s", model, got, assign[model])
		}
	}
	st := rt.Stats()
	total := uint64(0)
	for _, r := range st.Replicas {
		total += r.Proxied
	}
	if total != 2 || st.Reroutes != 0 {
		t.Fatalf("proxied %d reroutes %d, want 2/0", total, st.Reroutes)
	}
}

func TestRouterFailoverAndBreaker(t *testing.T) {
	a := newStubReplica(t, "alpha")
	b := newStubReplica(t, "alpha")
	rt := NewRouter(RouterOptions{
		Replicas: []string{a.Name(), b.Name()},
		Breaker: &resilience.BreakerOptions{
			Window: 4, FailureThreshold: 0.5, MinSamples: 2,
			Cooldown: time.Hour, HalfOpenProbes: 1,
		},
	})
	rt.SetModels([]string{"alpha"})
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	primary := rt.Assignments()["alpha"]
	dead, survivor := a, b
	if primary == b.Name() {
		dead, survivor = b, a
	}
	dead.srv.Close()

	// Every request must still succeed via the survivor; after two
	// transport errors the dead replica's breaker opens and later
	// requests skip it entirely.
	for i := 0; i < 8; i++ {
		resp := postClassify(t, hs.URL, "alpha")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if got := decodeReplica(t, resp); got != survivor.Name() {
			t.Fatalf("request %d answered by %s, want survivor %s", i, got, survivor.Name())
		}
	}
	st := rt.Stats()
	if st.Reroutes == 0 {
		t.Fatal("no reroutes recorded while failing over")
	}
	var deadBreaker string
	for _, r := range st.Replicas {
		if r.Name == dead.Name() {
			deadBreaker = r.Breaker.State
		}
	}
	if deadBreaker != "open" {
		t.Fatalf("dead replica breaker %q, want open", deadBreaker)
	}
	if rt.Health() != "degraded" {
		t.Fatalf("health %q with an open breaker", rt.Health())
	}

	// /metrics exposes the state and still validates.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := telemetry.ValidateExposition(string(body)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	want := fmt.Sprintf("sconna_router_breaker_state{replica=%q} 2", dead.Name())
	if !strings.Contains(string(body), want) {
		t.Fatalf("metrics missing %q:\n%s", want, body)
	}
}

func TestRouterAllReplicasDown(t *testing.T) {
	a := newStubReplica(t, "alpha")
	rt := NewRouter(RouterOptions{Replicas: []string{a.Name()}})
	rt.SetModels([]string{"alpha"})
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	a.srv.Close()
	resp := postClassify(t, hs.URL, "alpha")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d with every replica down, want 502", resp.StatusCode)
	}
}

func TestRouterDeadline(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-req.Context().Done():
		}
	}))
	defer slow.Close()
	name := strings.TrimPrefix(slow.URL, "http://")
	rt := NewRouter(RouterOptions{Replicas: []string{name}, RequestTimeout: 50 * time.Millisecond})
	rt.SetModels([]string{"alpha"})
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	start := time.Now()
	resp := postClassify(t, hs.URL, "alpha")
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d past the router deadline, want 504", resp.StatusCode)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("deadline did not bound the proxy: %v", time.Since(start))
	}
}

func TestRouterUnknownModel(t *testing.T) {
	a := newStubReplica(t, "alpha")
	rt := NewRouter(RouterOptions{Replicas: []string{a.Name()}})
	rt.SetModels([]string{"alpha"})
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	resp := postClassify(t, hs.URL, "nope")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d for unknown model, want 404", resp.StatusCode)
	}
	if rt.Stats().Unrouted != 1 {
		t.Fatalf("unrouted %d, want 1", rt.Stats().Unrouted)
	}
}

func TestRouterRefreshDiscoversUnion(t *testing.T) {
	a := newStubReplica(t, "alpha", "gamma")
	b := newStubReplica(t, "beta")
	rt := NewRouter(RouterOptions{Replicas: []string{a.Name(), b.Name()}})
	if err := rt.Refresh(context.Background()); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	got := rt.Models()
	want := []string{"alpha", "beta", "gamma"}
	if len(got) != len(want) {
		t.Fatalf("models %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("models %v, want %v", got, want)
		}
	}
	assign := rt.Assignments()
	if len(assign) != 3 {
		t.Fatalf("assignments %v, want all three models routed", assign)
	}

	// A dead member degrades Refresh to an error but keeps the union
	// from the live ones.
	b.srv.Close()
	if err := rt.Refresh(context.Background()); err == nil {
		t.Fatal("refresh with a dead member reported no error")
	}
	if got := rt.Models(); len(got) != 2 {
		t.Fatalf("models after partial refresh: %v, want the live member's two", got)
	}
}

func TestRouterJoinLeaveRebalances(t *testing.T) {
	a := newStubReplica(t, "alpha")
	b := newStubReplica(t, "alpha")
	rt := NewRouter(RouterOptions{Replicas: []string{a.Name()}})
	rt.SetModels(goldenModels)
	before := rt.Assignments()
	for _, member := range before {
		if member != a.Name() {
			t.Fatalf("single-member ring routed to %s", member)
		}
	}
	rt.Join(b.Name())
	joined := rt.Assignments()
	moved := 0
	for m, member := range joined {
		if member != before[m] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("join moved nothing across six models (bounded load must spill)")
	}
	rt.Leave(b.Name())
	after := rt.Assignments()
	for m, member := range after {
		if member != a.Name() {
			t.Fatalf("model %s still routed to departed %s", m, member)
		}
	}
}
