// Package dataset generates the procedural labelled image dataset that
// stands in for ImageNet in the Table V accuracy study (see DESIGN.md,
// "Substitutions"). Images are single-channel, values in [0,1], drawn from
// eight visually distinct pattern classes with randomized phase, position,
// frequency and additive noise, so that a small CNN must learn non-trivial
// spatial features to classify them.
package dataset

import (
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// NumClasses is the number of pattern classes.
const NumClasses = 8

// ClassNames labels the classes for reports.
var ClassNames = [NumClasses]string{
	"hstripes", "vstripes", "diagonal", "checker",
	"disk", "ring", "cross", "gradient",
}

// Config controls generation.
type Config struct {
	// Size is the square image side (default 16).
	Size int
	// Noise is the additive uniform noise amplitude (default 0.15).
	Noise float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig returns the accuracy-study operating point.
func DefaultConfig() Config { return Config{Size: 16, Noise: 0.15, Seed: 2023} }

// Generate produces n labelled examples, classes balanced round-robin.
func Generate(cfg Config, n int) []nn.Example {
	if cfg.Size == 0 {
		cfg.Size = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]nn.Example, 0, n)
	for i := 0; i < n; i++ {
		label := i % NumClasses
		out = append(out, nn.Example{X: Render(cfg, label, rng), Label: label})
	}
	return out
}

// GenerateParallel produces n labelled examples (classes balanced
// round-robin like Generate) across a bounded worker pool; workers <= 0
// selects GOMAXPROCS. Each example renders from its own RNG stream,
// deterministically derived from (cfg.Seed, example index), so the output
// depends only on cfg and n — bit-identical at every worker count.
//
// It is deliberately NOT a drop-in replacement for Generate: at the same
// seed the two draw different images (single sequential stream vs
// per-example streams). The accuracy study pins its trained fixtures and
// Table V numbers to Generate's stream; swapping this in there would
// silently retrain every proxy on different data. Use it for new
// workloads sized beyond what serial generation sustains.
func GenerateParallel(cfg Config, n, workers int) []nn.Example {
	if cfg.Size == 0 {
		cfg.Size = 16
	}
	out := make([]nn.Example, n)
	err := parallel.ForEach(workers, n, func(i int) error {
		rng := rand.New(rand.NewSource(cfg.Seed*1000003 + int64(i)))
		label := i % NumClasses
		out[i] = nn.Example{X: Render(cfg, label, rng), Label: label}
		return nil
	})
	if err != nil { // unreachable: rendering cannot fail
		panic(err)
	}
	return out
}

// Split partitions examples into train and test sets with the given test
// fraction, stratified per class so both sets see every class regardless of
// how labels interleave in the input order.
func Split(examples []nn.Example, testFrac float64) (train, test []nn.Example) {
	stride := int(math.Round(1 / testFrac))
	if stride < 2 {
		stride = 2
	}
	seen := map[int]int{}
	for _, ex := range examples {
		k := seen[ex.Label]
		seen[ex.Label]++
		if k%stride == stride-1 {
			test = append(test, ex)
		} else {
			train = append(train, ex)
		}
	}
	return train, test
}

// Render draws one image of the given class.
func Render(cfg Config, label int, rng *rand.Rand) *tensor.T {
	s := cfg.Size
	img := tensor.New(1, s, s)
	phase := rng.Float64() * float64(s)
	freq := 2 + rng.Float64()*2
	cx := float64(s)/2 + (rng.Float64()-0.5)*float64(s)/4
	cy := float64(s)/2 + (rng.Float64()-0.5)*float64(s)/4
	r := float64(s) / 4 * (0.8 + 0.4*rng.Float64())
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			fx, fy := float64(x), float64(y)
			var v float64
			switch label {
			case 0: // horizontal stripes
				v = 0.5 + 0.5*math.Sin((fy+phase)*freq*math.Pi/float64(s)*2)
			case 1: // vertical stripes
				v = 0.5 + 0.5*math.Sin((fx+phase)*freq*math.Pi/float64(s)*2)
			case 2: // diagonal stripes
				v = 0.5 + 0.5*math.Sin((fx+fy+phase)*freq*math.Pi/float64(s)*1.5)
			case 3: // checkerboard
				cell := float64(s) / (freq + 1)
				if (int((fx+phase)/cell)+int((fy+phase)/cell))%2 == 0 {
					v = 0.9
				} else {
					v = 0.1
				}
			case 4: // filled disk
				d := math.Hypot(fx-cx, fy-cy)
				if d < r {
					v = 0.9
				} else {
					v = 0.1
				}
			case 5: // ring
				d := math.Hypot(fx-cx, fy-cy)
				if math.Abs(d-r) < float64(s)/10 {
					v = 0.9
				} else {
					v = 0.1
				}
			case 6: // cross
				if math.Abs(fx-cx) < float64(s)/10 || math.Abs(fy-cy) < float64(s)/10 {
					v = 0.9
				} else {
					v = 0.1
				}
			case 7: // corner gradient
				v = (fx + fy) / float64(2*s)
			}
			v += (rng.Float64() - 0.5) * 2 * cfg.Noise
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			img.Set(float32(v), 0, y, x)
		}
	}
	return img
}
