package dataset

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func TestGenerateBalancedAndBounded(t *testing.T) {
	cfg := DefaultConfig()
	ex := Generate(cfg, 64)
	if len(ex) != 64 {
		t.Fatalf("got %d examples", len(ex))
	}
	counts := map[int]int{}
	for _, e := range ex {
		counts[e.Label]++
		if e.Label < 0 || e.Label >= NumClasses {
			t.Fatalf("label %d out of range", e.Label)
		}
		if e.X.Shape[0] != 1 || e.X.Shape[1] != cfg.Size || e.X.Shape[2] != cfg.Size {
			t.Fatalf("shape %v", e.X.Shape)
		}
		for _, v := range e.X.Data {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %g out of [0,1]", v)
			}
		}
	}
	for c := 0; c < NumClasses; c++ {
		if counts[c] != 8 {
			t.Fatalf("class %d count %d want 8", c, counts[c])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(), 16)
	b := Generate(DefaultConfig(), 16)
	for i := range a {
		for j := range a[i].X.Data {
			if a[i].X.Data[j] != b[i].X.Data[j] {
				t.Fatal("same seed must reproduce identical data")
			}
		}
	}
}

// GenerateParallel seeds each example independently, so its output must
// be byte-identical at every worker count — including the serial walk.
func TestGenerateParallelWorkerInvariance(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	serial := GenerateParallel(cfg, 64, 1)
	if len(serial) != 64 {
		t.Fatalf("got %d examples", len(serial))
	}
	for _, workers := range []int{2, 4, 16} {
		par := GenerateParallel(cfg, 64, workers)
		for i := range serial {
			if par[i].Label != serial[i].Label {
				t.Fatalf("workers=%d label %d diverged", workers, i)
			}
			for j := range serial[i].X.Data {
				if par[i].X.Data[j] != serial[i].X.Data[j] {
					t.Fatalf("workers=%d example %d pixel %d diverged", workers, i, j)
				}
			}
		}
	}
}

// GenerateParallel keeps Generate's contract: balanced labels, bounded
// pixels, configured shape.
func TestGenerateParallelBalancedAndBounded(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	ex := GenerateParallel(cfg, 64, 8)
	counts := map[int]int{}
	for _, e := range ex {
		counts[e.Label]++
		if e.X.Shape[0] != 1 || e.X.Shape[1] != cfg.Size || e.X.Shape[2] != cfg.Size {
			t.Fatalf("shape %v", e.X.Shape)
		}
		for _, v := range e.X.Data {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %g out of [0,1]", v)
			}
		}
	}
	for c := 0; c < NumClasses; c++ {
		if counts[c] != 8 {
			t.Fatalf("class %d count %d want 8", c, counts[c])
		}
	}
}

func TestSplitFractions(t *testing.T) {
	ex := Generate(DefaultConfig(), 100)
	train, test := Split(ex, 0.2)
	if len(train)+len(test) != 100 {
		t.Fatal("split lost examples")
	}
	if len(test) < 15 || len(test) > 25 {
		t.Fatalf("test size %d want ~20", len(test))
	}
}

func TestClassNamesComplete(t *testing.T) {
	for i, n := range ClassNames {
		if n == "" {
			t.Fatalf("class %d unnamed", i)
		}
	}
}

// The dataset must actually be learnable: a small CNN should reach high
// train accuracy quickly. This is the gate for the Table V study being
// meaningful.
func TestDatasetLearnable(t *testing.T) {
	// The short tier trains a smaller run with a looser floor: it still
	// gates "a CNN learns something from these patterns" without paying
	// the full-convergence cost.
	examples, epochs := 320, 14
	trainFloor, testFloor := 0.9, 0.8
	if testing.Short() {
		examples, epochs = 160, 6
		trainFloor, testFloor = 0.4, 0.3
	}
	cfg := DefaultConfig()
	ex := Generate(cfg, examples)
	train, test := Split(ex, 0.25)
	net := nn.BuildSmallCNN(6, NumClasses, 42)
	res := net.Train(train, epochs, 16, nn.SGD{LR: 0.05, Momentum: 0.9}, rand.New(rand.NewSource(42)))
	if res.TrainAccuracy < trainFloor {
		t.Fatalf("train accuracy %.2f too low (loss %.3f)", res.TrainAccuracy, res.FinalLoss)
	}
	top1, top5 := net.Evaluate(test, 5)
	if top1 < testFloor {
		t.Fatalf("test top-1 %.2f too low", top1)
	}
	if top5 < top1 {
		t.Fatal("top-5 must dominate top-1")
	}
}
