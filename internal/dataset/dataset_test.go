package dataset

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func TestGenerateBalancedAndBounded(t *testing.T) {
	cfg := DefaultConfig()
	ex := Generate(cfg, 64)
	if len(ex) != 64 {
		t.Fatalf("got %d examples", len(ex))
	}
	counts := map[int]int{}
	for _, e := range ex {
		counts[e.Label]++
		if e.Label < 0 || e.Label >= NumClasses {
			t.Fatalf("label %d out of range", e.Label)
		}
		if e.X.Shape[0] != 1 || e.X.Shape[1] != cfg.Size || e.X.Shape[2] != cfg.Size {
			t.Fatalf("shape %v", e.X.Shape)
		}
		for _, v := range e.X.Data {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %g out of [0,1]", v)
			}
		}
	}
	for c := 0; c < NumClasses; c++ {
		if counts[c] != 8 {
			t.Fatalf("class %d count %d want 8", c, counts[c])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(), 16)
	b := Generate(DefaultConfig(), 16)
	for i := range a {
		for j := range a[i].X.Data {
			if a[i].X.Data[j] != b[i].X.Data[j] {
				t.Fatal("same seed must reproduce identical data")
			}
		}
	}
}

func TestSplitFractions(t *testing.T) {
	ex := Generate(DefaultConfig(), 100)
	train, test := Split(ex, 0.2)
	if len(train)+len(test) != 100 {
		t.Fatal("split lost examples")
	}
	if len(test) < 15 || len(test) > 25 {
		t.Fatalf("test size %d want ~20", len(test))
	}
}

func TestClassNamesComplete(t *testing.T) {
	for i, n := range ClassNames {
		if n == "" {
			t.Fatalf("class %d unnamed", i)
		}
	}
}

// The dataset must actually be learnable: a small CNN should reach high
// train accuracy quickly. This is the gate for the Table V study being
// meaningful.
func TestDatasetLearnable(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	cfg := DefaultConfig()
	ex := Generate(cfg, 320)
	train, test := Split(ex, 0.25)
	net := nn.BuildSmallCNN(6, NumClasses, 42)
	res := net.Train(train, 14, 16, nn.SGD{LR: 0.05, Momentum: 0.9}, rand.New(rand.NewSource(42)))
	if res.TrainAccuracy < 0.9 {
		t.Fatalf("train accuracy %.2f too low (loss %.3f)", res.TrainAccuracy, res.FinalLoss)
	}
	top1, top5 := net.Evaluate(test, 5)
	if top1 < 0.8 {
		t.Fatalf("test top-1 %.2f too low", top1)
	}
	if top5 < top1 {
		t.Fatal("top-5 must dominate top-1")
	}
}
