package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Dims() != 3 {
		t.Fatalf("len=%d dims=%d", x.Len(), x.Dims())
	}
	x.Set(7, 1, 2, 3)
	if x.At(1, 2, 3) != 7 {
		t.Fatal("round-trip failed")
	}
	if x.At(0, 0, 0) != 0 {
		t.Fatal("zero init failed")
	}
}

// TestUncheckedIndexHelpers pins the hot-loop indexing surface against
// the checked accessors: Idx3/Idx4 must agree with At's offset
// computation everywhere.
func TestUncheckedIndexHelpers(t *testing.T) {
	x := New(2, 3, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				if got, want := x.AtFlat(x.Idx3(i, j, k)), x.At(i, j, k); got != want {
					t.Fatalf("Idx3(%d,%d,%d)=%v want %v", i, j, k, got, want)
				}
			}
		}
	}
	x.SetFlat(x.Idx3(1, 2, 3), 99)
	if x.At(1, 2, 3) != 99 {
		t.Fatal("SetFlat round-trip failed")
	}
	y := New(2, 2, 3, 3)
	y.Set(5, 1, 0, 2, 1)
	if y.AtFlat(y.Idx4(1, 0, 2, 1)) != 5 {
		t.Fatal("Idx4 disagrees with At")
	}
}

func TestIndexValidation(t *testing.T) {
	x := New(2, 2)
	for _, bad := range [][]int{{2, 0}, {0, -1}, {0}, {0, 0, 0}} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for index %v", bad)
				}
			}()
			x.At(bad...)
		}()
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dim")
		}
	}()
	New(3, 0)
}

func TestFromSlice(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.At(1, 2) != 6 {
		t.Fatal("layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for count mismatch")
		}
	}()
	FromSlice([]float32{1}, 2, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := New(4)
	x.Fill(3)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 3 {
		t.Fatal("clone shares storage")
	}
	if !x.SameShape(y) {
		t.Fatal("clone shape mismatch")
	}
}

func TestZeroFill(t *testing.T) {
	x := New(3)
	x.Fill(2.5)
	for _, v := range x.Data {
		if v != 2.5 {
			t.Fatal("fill failed")
		}
	}
	x.Zero()
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("zero failed")
		}
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[5] = 1
	if x.Data[5] != 1 {
		t.Fatal("reshape must share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	x.Reshape(5)
}

func TestMaxAbsAndArgMax(t *testing.T) {
	x := FromSlice([]float32{-4, 2, 3, -1}, 4)
	if x.MaxAbs() != 4 {
		t.Fatalf("MaxAbs=%g", x.MaxAbs())
	}
	if x.ArgMax() != 2 {
		t.Fatalf("ArgMax=%d", x.ArgMax())
	}
}

func TestAXPY(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := FromSlice([]float32{10, 20}, 2)
	x.AXPY(0.5, y)
	if x.Data[0] != 6 || x.Data[1] != 12 {
		t.Fatalf("AXPY got %v", x.Data)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape mismatch panic")
		}
	}()
	x.AXPY(1, New(3))
}

// Property: At/Set round-trips over random indices.
func TestAtSetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := New(3, 5, 7)
		i, j, k := rng.Intn(3), rng.Intn(5), rng.Intn(7)
		v := float32(rng.NormFloat64())
		x.Set(v, i, j, k)
		return x.At(i, j, k) == v && x.Data[(i*5+j)*7+k] == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandNormalDeterministic(t *testing.T) {
	a, b := New(100), New(100)
	a.RandNormal(rand.New(rand.NewSource(5)), 1)
	b.RandNormal(rand.New(rand.NewSource(5)), 1)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}

func TestZerosSparsity(t *testing.T) {
	x := FromSlice([]float32{0, 1.5, -0, 0, -2, 0}, 6)
	if got := x.Zeros(); got != 4 {
		t.Fatalf("Zeros = %d, want 4 (both IEEE zeros count)", got)
	}
	if got := x.Sparsity(); got != 4.0/6.0 {
		t.Fatalf("Sparsity = %v", got)
	}
	full := New(3, 3)
	if full.Zeros() != 9 || full.Sparsity() != 1 {
		t.Fatal("fresh tensor must be fully sparse")
	}
	full.Fill(2)
	if full.Zeros() != 0 || full.Sparsity() != 0 {
		t.Fatal("filled tensor must be dense")
	}
	empty := &T{}
	if empty.Sparsity() != 0 {
		t.Fatal("empty tensor sparsity must be 0")
	}
}
