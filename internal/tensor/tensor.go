// Package tensor provides the minimal dense float32 tensor underlying the
// neural-network substrate of this reproduction. Layout is row-major with
// CHW ordering for images (channel, height, width).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// T is a dense float32 tensor.
type T struct {
	Shape []int
	Data  []float32
}

// New allocates a zeroed tensor with the given shape.
func New(shape ...int) *T {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in %v", s, shape))
		}
		n *= s
	}
	return &T{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data with the given shape, validating the element count.
func FromSlice(data []float32, shape ...int) *T {
	t := &T{Shape: append([]int(nil), shape...), Data: data}
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: %d elements for shape %v (want %d)", len(data), shape, n))
	}
	return t
}

// Len returns the number of elements.
func (t *T) Len() int { return len(t.Data) }

// Dims returns the rank.
func (t *T) Dims() int { return len(t.Shape) }

// At returns the element at the given multi-index (rank must match).
func (t *T) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *T) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

// Idx3 returns the flat offset of (i, j, k) in a rank-3 tensor without
// rank or range validation — the hot-loop counterpart of At, for callers
// that iterate shapes they already validated. Out-of-range indices read
// adjacent elements (or panic at the Data access), exactly like raw
// slice arithmetic.
func (t *T) Idx3(i, j, k int) int { return (i*t.Shape[1]+j)*t.Shape[2] + k }

// Idx4 is Idx3 for rank-4 tensors.
func (t *T) Idx4(i, j, k, l int) int {
	return ((i*t.Shape[1]+j)*t.Shape[2]+k)*t.Shape[3] + l
}

// AtFlat returns the element at flat offset i (as produced by Idx3/Idx4
// or Strides arithmetic).
func (t *T) AtFlat(i int) float32 { return t.Data[i] }

// SetFlat stores v at flat offset i.
func (t *T) SetFlat(i int, v float32) { t.Data[i] = v }

func (t *T) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *T) Clone() *T {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero sets all elements to 0.
func (t *T) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *T) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether two tensors have identical shapes.
func (t *T) SameShape(o *T) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Reshape returns a view with a new shape of equal element count.
func (t *T) Reshape(shape ...int) *T {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v", t.Shape, shape))
	}
	return &T{Shape: append([]int(nil), shape...), Data: t.Data}
}

// MaxAbs returns the maximum absolute value (0 for empty tensors).
func (t *T) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}

// Zeros returns the number of zero elements. Both IEEE zeros count
// (+0 and -0 compare equal to zero), matching what the sparsity-
// exploiting lowering may skip.
func (t *T) Zeros() int {
	n := 0
	for _, v := range t.Data {
		if v == 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of zero elements (0 for empty tensors).
func (t *T) Sparsity() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return float64(t.Zeros()) / float64(len(t.Data))
}

// ArgMax returns the index of the largest element.
func (t *T) ArgMax() int {
	best := 0
	for i, v := range t.Data {
		if v > t.Data[best] {
			best = i
		}
	}
	return best
}

// RandNormal fills the tensor with N(0, std) values from rng.
func (t *T) RandNormal(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// AXPY computes t += alpha*o elementwise (shapes must match).
func (t *T) AXPY(alpha float32, o *T) {
	if !t.SameShape(o) {
		panic("tensor: AXPY shape mismatch")
	}
	for i := range t.Data {
		t.Data[i] += alpha * o.Data[i]
	}
}
