// Package opcount is the op/energy accounting plane of the quantized
// compute path: per-layer operation counters (multiplies, adds, memory
// reads/writes) recorded during inference, both as the dense-equivalent
// workload and as what actually executed after sparsity skipping, priced
// by Horowitz-style per-op energy models.
//
// The counting convention follows the to-spike-or-not exemplars
// (SNIPPETS.md §1–2): a dot product of length L costs L multiplies,
// L adds and 2L memory reads (one weight, one activation per element);
// each output element costs one dequantization multiply, one bias add
// and one write; quantizing an activation tensor costs one multiply,
// one read and one write per element; ReLU and pooling comparisons
// count as adds. The convention is part of the trajectory contract —
// change it and every recorded energy table moves.
//
// A Recorder is attached to a quant Scratch/BatchScratch (nil detaches
// it: the hot path pays one branch per layer). Counters are atomic, so
// one Recorder can aggregate across a serving pool's engines; Snapshot
// returns a consistent-enough Profile for monitoring (counters are read
// individually, like every other stats counter in the serving plane).
package opcount

import "sync/atomic"

// Counts tallies the four op classes of the accounting convention.
type Counts struct {
	Mul uint64 `json:"mul"`
	Add uint64 `json:"add"`
	Rd  uint64 `json:"rd"`
	Wr  uint64 `json:"wr"`
}

// Plus returns c + o elementwise.
func (c Counts) Plus(o Counts) Counts {
	return Counts{Mul: c.Mul + o.Mul, Add: c.Add + o.Add, Rd: c.Rd + o.Rd, Wr: c.Wr + o.Wr}
}

// Total returns the summed op count across all classes.
func (c Counts) Total() uint64 { return c.Mul + c.Add + c.Rd + c.Wr }

// LayerCounts is one layer's accounting row: the dense-equivalent
// workload and what actually executed (equal unless the sparse path
// skipped work).
type LayerCounts struct {
	Name  string `json:"name"`
	Dense Counts `json:"dense"`
	Exec  Counts `json:"exec"`
}

// Profile is a snapshot of recorded counts: per-layer rows plus how
// many inferences they accumulate over.
type Profile struct {
	Inferences uint64        `json:"inferences"`
	Layers     []LayerCounts `json:"layers"`
}

// Dense returns the summed dense-equivalent counts.
func (p Profile) Dense() Counts {
	var t Counts
	for _, l := range p.Layers {
		t = t.Plus(l.Dense)
	}
	return t
}

// Exec returns the summed executed counts.
func (p Profile) Exec() Counts {
	var t Counts
	for _, l := range p.Layers {
		t = t.Plus(l.Exec)
	}
	return t
}

// SkippedFrac returns the fraction of dense-equivalent ops the sparse
// path skipped (0 when nothing was recorded).
func (p Profile) SkippedFrac() float64 {
	d := p.Dense().Total()
	if d == 0 {
		return 0
	}
	return 1 - float64(p.Exec().Total())/float64(d)
}

// Recorder accumulates per-layer counts with atomic counters, so one
// Recorder can be shared by every engine of a serving pool. Layer slots
// are fixed at construction; recording into an out-of-range slot panics
// (a wiring bug, like a wrong-length batch).
type Recorder struct {
	names      []string
	dense      []atomicCounts
	exec       []atomicCounts
	inferences atomic.Uint64
}

type atomicCounts struct {
	mul, add, rd, wr atomic.Uint64
}

func (a *atomicCounts) add4(c Counts) {
	if c.Mul != 0 {
		a.mul.Add(c.Mul)
	}
	if c.Add != 0 {
		a.add.Add(c.Add)
	}
	if c.Rd != 0 {
		a.rd.Add(c.Rd)
	}
	if c.Wr != 0 {
		a.wr.Add(c.Wr)
	}
}

func (a *atomicCounts) load() Counts {
	return Counts{Mul: a.mul.Load(), Add: a.add.Load(), Rd: a.rd.Load(), Wr: a.wr.Load()}
}

// NewRecorder builds a Recorder with one slot per layer name.
func NewRecorder(layerNames []string) *Recorder {
	return &Recorder{
		names: append([]string(nil), layerNames...),
		dense: make([]atomicCounts, len(layerNames)),
		exec:  make([]atomicCounts, len(layerNames)),
	}
}

// Record adds one layer execution's dense-equivalent and executed
// counts to slot layer.
func (r *Recorder) Record(layer int, dense, exec Counts) {
	r.dense[layer].add4(dense)
	r.exec[layer].add4(exec)
}

// AddInferences bumps the inference counter by n.
func (r *Recorder) AddInferences(n uint64) { r.inferences.Add(n) }

// Snapshot returns the accumulated Profile.
func (r *Recorder) Snapshot() Profile {
	p := Profile{
		Inferences: r.inferences.Load(),
		Layers:     make([]LayerCounts, len(r.names)),
	}
	for i, name := range r.names {
		p.Layers[i] = LayerCounts{Name: name, Dense: r.dense[i].load(), Exec: r.exec[i].load()}
	}
	return p
}
