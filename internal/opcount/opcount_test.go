package opcount

import (
	"sync"
	"testing"

	"repro/internal/digest"
)

func TestCountsPlusTotal(t *testing.T) {
	t.Parallel()
	a := Counts{Mul: 1, Add: 2, Rd: 3, Wr: 4}
	b := Counts{Mul: 10, Add: 20, Rd: 30, Wr: 40}
	s := a.Plus(b)
	if s != (Counts{Mul: 11, Add: 22, Rd: 33, Wr: 44}) {
		t.Fatalf("Plus: %+v", s)
	}
	if got := s.Total(); got != 110 {
		t.Fatalf("Total: %d", got)
	}
}

func TestRecorderSnapshot(t *testing.T) {
	t.Parallel()
	r := NewRecorder([]string{"conv1", "dense1"})
	r.Record(0, Counts{Mul: 100, Add: 100, Rd: 200, Wr: 10}, Counts{Mul: 40, Add: 40, Rd: 80, Wr: 10})
	r.Record(1, Counts{Mul: 50, Add: 50, Rd: 100, Wr: 5}, Counts{Mul: 50, Add: 50, Rd: 100, Wr: 5})
	r.AddInferences(3)
	p := r.Snapshot()
	if p.Inferences != 3 {
		t.Fatalf("inferences: %d", p.Inferences)
	}
	if len(p.Layers) != 2 || p.Layers[0].Name != "conv1" || p.Layers[1].Name != "dense1" {
		t.Fatalf("layers: %+v", p.Layers)
	}
	if p.Layers[0].Exec.Mul != 40 || p.Layers[1].Dense.Rd != 100 {
		t.Fatalf("counts: %+v", p.Layers)
	}
	dense, exec := p.Dense(), p.Exec()
	if dense != (Counts{Mul: 150, Add: 150, Rd: 300, Wr: 15}) {
		t.Fatalf("dense sum: %+v", dense)
	}
	if exec != (Counts{Mul: 90, Add: 90, Rd: 180, Wr: 15}) {
		t.Fatalf("exec sum: %+v", exec)
	}
	want := 1 - float64(exec.Total())/float64(dense.Total())
	if got := p.SkippedFrac(); got != want {
		t.Fatalf("skipped frac: %v want %v", got, want)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	t.Parallel()
	r := NewRecorder([]string{"l0"})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(0, Counts{Mul: 2, Add: 1}, Counts{Mul: 1})
				r.AddInferences(1)
			}
		}()
	}
	wg.Wait()
	p := r.Snapshot()
	if p.Inferences != workers*per {
		t.Fatalf("inferences: %d", p.Inferences)
	}
	if p.Layers[0].Dense.Mul != 2*workers*per || p.Layers[0].Exec.Mul != workers*per {
		t.Fatalf("counts: %+v", p.Layers[0])
	}
}

func TestSkippedFracEmpty(t *testing.T) {
	t.Parallel()
	if got := (Profile{}).SkippedFrac(); got != 0 {
		t.Fatalf("empty skipped frac: %v", got)
	}
}

func TestEnergyModels(t *testing.T) {
	t.Parallel()
	c := Counts{Mul: 10, Add: 20, Rd: 30, Wr: 40}
	e := Electronic()
	wantPJ := 0.2*10 + 0.03*20 + 2.5*30 + 2.5*40
	if got := e.PJ(c); got != wantPJ {
		t.Fatalf("electronic PJ: %v want %v", got, wantPJ)
	}
	if got := e.UJ(c); got != wantPJ*1e-6 {
		t.Fatalf("electronic UJ: %v", got)
	}
	s := Sconna()
	if s.AddPJ != 0 {
		t.Fatalf("sconna adds must be free (analog PCA accumulation): %v", s.AddPJ)
	}
	if s.PJ(Counts{Add: 1000}) != 0 {
		t.Fatalf("sconna add-only counts must price to zero")
	}
	if e.Name == "" || s.Name == "" {
		t.Fatal("models must be named")
	}
}

func TestJobDigestSensitivity(t *testing.T) {
	t.Parallel()
	var net digest.Digest
	net[0] = 7
	base := JobDigest(net, 0.9, 42, 16)
	if base != JobDigest(net, 0.9, 42, 16) {
		t.Fatal("digest must be deterministic")
	}
	var net2 digest.Digest
	net2[0] = 8
	for name, other := range map[string]digest.Digest{
		"net":      JobDigest(net2, 0.9, 42, 16),
		"sparsity": JobDigest(net, 0.5, 42, 16),
		"seed":     JobDigest(net, 0.9, 43, 16),
		"n":        JobDigest(net, 0.9, 42, 17),
	} {
		if other == base {
			t.Fatalf("digest insensitive to %s", name)
		}
	}
}

func TestRunnerCaches(t *testing.T) {
	t.Parallel()
	r, err := NewRunner(RunnerOptions{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var net digest.Digest
	key := JobDigest(net, 0.9, 1, 4)
	calls := 0
	compute := func() (Profile, error) {
		calls++
		rec := NewRecorder([]string{"l0"})
		rec.Record(0, Counts{Mul: 5}, Counts{Mul: 2})
		rec.AddInferences(4)
		return rec.Snapshot(), nil
	}
	p1, err := r.Profile(key, compute)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Profile(key, compute)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if p1.Layers[0].Dense.Mul != 5 || p2.Layers[0].Dense.Mul != 5 || p2.Inferences != 4 {
		t.Fatalf("cached profile mismatch: %+v vs %+v", p1, p2)
	}
	st := r.Stats()
	if st.Lookups != 2 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
