package opcount

// EnergyModel prices the four op classes in picojoules per operation —
// the Horowitz-style per-op accounting of the to-spike-or-not exemplars
// (one add/mult/memory energy each, multiplied by counted ops).
type EnergyModel struct {
	Name  string  `json:"name"`
	MulPJ float64 `json:"mul_pj"`
	AddPJ float64 `json:"add_pj"`
	RdPJ  float64 `json:"rd_pj"`
	WrPJ  float64 `json:"wr_pj"`
}

// PJ returns the energy of the counted ops under this model, in pJ.
func (m EnergyModel) PJ(c Counts) float64 {
	return m.MulPJ*float64(c.Mul) + m.AddPJ*float64(c.Add) +
		m.RdPJ*float64(c.Rd) + m.WrPJ*float64(c.Wr)
}

// UJ returns the same energy in microjoules.
func (m EnergyModel) UJ(c Counts) float64 { return m.PJ(c) * 1e-6 }

// Electronic is the electronic per-op baseline: Horowitz ISSCC'14 45 nm
// numbers at 8-bit operand width, as used by the to-spike-or-not
// exemplars — 0.2 pJ per int8 multiply, 0.03 pJ per int8 add, 2.5 pJ
// per memory access (read or write).
func Electronic() EnergyModel {
	return EnergyModel{Name: "electronic-8b", MulPJ: 0.2, AddPJ: 0.03, RdPJ: 2.5, WrPJ: 2.5}
}

// Sconna prices the same counts at the SCONNA operating point, derived
// from this repo's performance plane (internal/accel, Table IV power
// model at the 8-bit batch-1 point): sustained laser + compute power
// (105.6 W + 747.3 W) amortized over the peak MAC rate of the 1024-VDPE
// organization (176 lanes per VDPE every 8.53 ns op ≈ 2.11e13 MAC/s)
// gives 40.4 pJ per optical multiply; accumulation happens in the
// analog PCA domain inside that same op (0 pJ per add); the peripheral
// power share (eDRAM/IO/NoC, 0.46 W) amortizes to ~0.02 pJ per operand
// access. SCONNA is a throughput-first design: it spends more energy
// per op than the electronic baseline but issues orders of magnitude
// more of them per second — which is exactly what the energy-vs-
// sparsity table makes visible.
func Sconna() EnergyModel {
	return EnergyModel{Name: "sconna-8b", MulPJ: 40.4, AddPJ: 0, RdPJ: 0.022, WrPJ: 0.022}
}
