package opcount

import (
	"path/filepath"
	"time"

	"repro/internal/cache"
	"repro/internal/digest"
)

// jobSchema tags the accounting-cell digest encoding. Bump it whenever
// JobDigest's field set — or the counting convention in this package —
// changes meaning, like every other cache-key schema in the tree.
const jobSchema = "repro/opcount.Job@v1"

// JobDigest keys one accounting cell: profiling a fixed quantized
// network (by content digest) over a deterministic input population
// (sparsity, generator seed, example count). A profile is a pure
// function of these values, which is what makes the cells cacheable.
func JobDigest(netDigest digest.Digest, sparsity float64, seed uint64, n int) digest.Digest {
	h := digest.New()
	h.Str(jobSchema)
	h.Bytes(netDigest[:])
	h.F64(sparsity)
	h.U64(seed)
	h.Int(n)
	return h.Sum()
}

// RunnerOptions configures a cache-aware accounting Runner, mirroring
// the other runners in the tree.
type RunnerOptions struct {
	// CacheEntries bounds the in-memory profile LRU (<= 0 selects
	// cache.DefaultEntries).
	CacheEntries int
	// CacheDir, when non-empty, persists profiles on disk under
	// CacheDir/opcount; empty keeps the cache in-memory only.
	CacheDir string
	// CacheMaxBytes / CacheMaxAge bound the on-disk store at open,
	// exactly as for the accel Runner.
	CacheMaxBytes int64
	CacheMaxAge   time.Duration
}

// Runner memoizes accounting profiles in a content-addressed cache:
// each cell computes at most once per digest for the life of the store,
// and hits return exactly what the computation would (profiles are pure
// data, shared by value).
type Runner struct {
	cache *cache.Cache[Profile]
}

// NewRunner builds a Runner; it fails only when the disk cache
// directory cannot be created.
func NewRunner(opts RunnerOptions) (*Runner, error) {
	dir := opts.CacheDir
	if dir != "" {
		dir = filepath.Join(dir, "opcount")
	}
	c, err := cache.New[Profile](cache.Options{
		Entries:  opts.CacheEntries,
		Dir:      dir,
		MaxBytes: opts.CacheMaxBytes,
		MaxAge:   opts.CacheMaxAge,
	})
	if err != nil {
		return nil, err
	}
	// The newest runner's cache owns the process-wide "opcount" metrics
	// slot (RegisterMetrics replaces); any /metrics endpoint exports it.
	c.RegisterMetrics("opcount")
	return &Runner{cache: c}, nil
}

// Profile returns the cached profile for key, computing it at most once
// per content digest.
func (r *Runner) Profile(key digest.Digest, compute func() (Profile, error)) (Profile, error) {
	return r.cache.GetOrCompute(key, compute)
}

// Stats snapshots the profile-cache traffic counters.
func (r *Runner) Stats() cache.Stats { return r.cache.Stats() }
