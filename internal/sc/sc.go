// Package sc implements the stochastic-computing arithmetic layer of the
// SCONNA reproduction (Sections II-D and IV of the paper).
//
// Values are unipolar stochastic numbers: a bit-stream of length 2^B whose
// fraction of ones encodes a value in [0,1]. Multiplication is a bitwise
// AND (performed optically by the OSM in hardware); addition is unscaled
// unipolar addition, i.e. counting ones across streams (performed by the
// photo-charge accumulator). Signed weights use sign-magnitude form: the
// sign bit steers the product stream to the positive (OWA) or negative
// (OWA') accumulation waveguide (Section IV-A).
package sc

import (
	"fmt"
	"math"

	"repro/internal/bitstream"
)

// SN is a unipolar stochastic number: a bit-stream whose fraction of ones
// encodes Value in [0,1].
type SN struct {
	Bits *bitstream.Vector
}

// Value returns the encoded unipolar value, ones/length.
func (s SN) Value() float64 { return s.Bits.Fraction() }

// Len returns the stream length in bits.
func (s SN) Len() int { return s.Bits.Len() }

// FromInt encodes the integer v (0 <= v <= 2^bits) as a stream of length
// 2^bits using generator g.
func FromInt(v int, bits int, g bitstream.Generator) SN {
	n := 1 << uint(bits)
	if v < 0 || v > n {
		panic(fmt.Sprintf("sc: value %d out of range [0,%d]", v, n))
	}
	return SN{Bits: g.Generate(v, n)}
}

// Mul returns the AND-gate product of a and b as a new stochastic number.
// This is the software model of the Optical AND Gate output stream.
func Mul(a, b SN) SN {
	out := bitstream.New(a.Bits.Len())
	out.And(a.Bits, b.Bits)
	return SN{Bits: out}
}

// MulCount returns the number of ones in the AND product without
// materializing the product stream: the photodetector in the PCA only ever
// sees the total charge, never the stream.
func MulCount(a, b SN) int { return bitstream.AndPopCount(a.Bits, b.Bits) }

// UnscaledAdd performs unipolar unscaled addition over the product streams:
// it returns the total number of ones across all streams, exactly what a
// PCA capacitor integrates when all streams are incident on its
// photodetector (Section IV-C).
func UnscaledAdd(streams ...SN) int {
	total := 0
	for _, s := range streams {
		total += s.Bits.PopCount()
	}
	return total
}

// Signed is a sign-magnitude stochastic operand: the paper's weight
// bit-stream W "provides a weight value along with a sign bit".
type Signed struct {
	Mag SN
	Neg bool
}

// Value returns the signed value encoded by the operand.
func (s Signed) Value() float64 {
	v := s.Mag.Value()
	if s.Neg {
		return -v
	}
	return v
}

// DotResult is the output of a signed stochastic dot product: the raw
// positive and negative accumulation counts (what the OWA- and OWA'-coupled
// PCAs each integrate) and the stream length used.
type DotResult struct {
	PosOnes int // ones accumulated on OWA   (sign bit 0)
	NegOnes int // ones accumulated on OWA'  (sign bit 1)
	Length  int // bits per stream (2^B)
}

// Raw returns PosOnes - NegOnes, the signed accumulation in "ones" units.
func (d DotResult) Raw() int { return d.PosOnes - d.NegOnes }

// Value returns the dot product in value units: (pos-neg)/length, i.e. the
// sum over i of I_i*W_i with I_i, W_i in [0,1].
func (d DotResult) Value() float64 {
	if d.Length == 0 {
		return 0
	}
	return float64(d.Raw()) / float64(d.Length)
}

// Dot computes the signed stochastic dot product of unsigned inputs and
// signed weights, modeling one SCONNA VDPE: each pair is multiplied by an
// OSM (AND), the sign bit steers the product to the positive or negative
// accumulator, and each accumulator counts ones (PCA).
func Dot(inputs []SN, weights []Signed) DotResult {
	if len(inputs) != len(weights) {
		panic(fmt.Sprintf("sc: length mismatch %d vs %d", len(inputs), len(weights)))
	}
	var res DotResult
	if len(inputs) == 0 {
		return res
	}
	res.Length = inputs[0].Len()
	for i := range inputs {
		c := bitstream.AndPopCount(inputs[i].Bits, weights[i].Mag.Bits)
		if weights[i].Neg {
			res.NegOnes += c
		} else {
			res.PosOnes += c
		}
	}
	return res
}

// MulError quantifies the multiplication error of a generator pairing:
// it returns the mean absolute error and maximum absolute error (both in
// value units, i.e. fractions of full scale) of AND-multiplication over all
// (a,b) pairs with the given stride, for streams of length 2^bits.
func MulError(gi, gw bitstream.Generator, bits, stride int) (mae, maxErr float64) {
	n := 1 << uint(bits)
	var sum float64
	count := 0
	for a := 0; a <= n; a += stride {
		ia := gi.Generate(a, n)
		for b := 0; b <= n; b += stride {
			wb := gw.Generate(b, n)
			got := float64(bitstream.AndPopCount(ia, wb)) / float64(n)
			exact := float64(a) * float64(b) / float64(n*n)
			e := math.Abs(got - exact)
			sum += e
			if e > maxErr {
				maxErr = e
			}
			count++
		}
	}
	return sum / float64(count), maxErr
}
