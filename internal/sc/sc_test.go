package sc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
)

func TestFromIntValue(t *testing.T) {
	for _, v := range []int{0, 1, 100, 255, 256} {
		s := FromInt(v, 8, bitstream.Unary{})
		want := float64(v) / 256
		if got := s.Value(); math.Abs(got-want) > 1e-12 {
			t.Errorf("v=%d Value=%g want %g", v, got, want)
		}
		if s.Len() != 256 {
			t.Errorf("len=%d want 256", s.Len())
		}
	}
}

func TestFromIntOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromInt(257, 8, bitstream.Unary{})
}

// Fig. 3 of the paper: I with 4/8 ones times W with 6/8 ones yields a
// product stream with 3/8 ones (4/8 * 6/8 = 3/8).
func TestPaperFig3Multiplication(t *testing.T) {
	i := FromInt(4, 3, bitstream.Unary{})
	w := FromInt(6, 3, bitstream.Bresenham{})
	p := Mul(i, w)
	if got := p.Bits.PopCount(); got != 3 {
		t.Fatalf("product ones=%d want 3", got)
	}
	if got := MulCount(i, w); got != 3 {
		t.Fatalf("MulCount=%d want 3", got)
	}
}

// Property: LUT multiplication is exact to within one stream bit for all
// operand pairs at B=8 (the "error-free multiplication" design goal).
func TestLUTMulExactWithinOneBit(t *testing.T) {
	lut := NewOSMLUT(8)
	n := lut.StreamLen()
	for a := 0; a <= n; a += 5 {
		for b := 0; b <= n; b += 7 {
			got := lut.MulInts(a, b)
			exact := float64(a) * float64(b) / float64(n)
			if d := math.Abs(float64(got) - exact); d > 1.0 {
				t.Fatalf("a=%d b=%d got=%d exact=%.3f", a, b, got, exact)
			}
		}
	}
}

func TestLUTSizeMatchesPaperRule(t *testing.T) {
	lut := NewOSMLUT(8)
	// 2^8 entries x two 2^8-bit vectors = 131072 bits = 16 KiB.
	if got := lut.SizeBits(); got != 256*2*256 {
		t.Fatalf("SizeBits=%d want %d", got, 256*2*256)
	}
	if lut.Entries() != 257 {
		t.Fatalf("Entries=%d want 257", lut.Entries())
	}
}

func TestXORIndex(t *testing.T) {
	if XORIndex(0xAA, 0x55) != 0xFF {
		t.Fatal("xor hash broken")
	}
	if XORIndex(123, 123) != 0 {
		t.Fatal("xor hash identity broken")
	}
}

func TestUnscaledAdd(t *testing.T) {
	a := FromInt(10, 4, bitstream.Unary{})
	b := FromInt(5, 4, bitstream.Bresenham{})
	c := FromInt(0, 4, bitstream.Unary{})
	if got := UnscaledAdd(a, b, c); got != 15 {
		t.Fatalf("UnscaledAdd=%d want 15", got)
	}
	if got := UnscaledAdd(); got != 0 {
		t.Fatalf("empty UnscaledAdd=%d want 0", got)
	}
}

func TestSignedValue(t *testing.T) {
	s := Signed{Mag: FromInt(128, 8, bitstream.Bresenham{}), Neg: true}
	if got := s.Value(); math.Abs(got+0.5) > 1e-12 {
		t.Fatalf("Value=%g want -0.5", got)
	}
	s.Neg = false
	if got := s.Value(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Value=%g want 0.5", got)
	}
}

// Property: a signed stochastic dot product matches the exact rational dot
// product to within len(inputs) stream bits (each OSM contributes at most
// one bit of error).
func TestDotMatchesExact(t *testing.T) {
	const bits = 8
	n := 1 << bits
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(32)
		inputs := make([]SN, k)
		weights := make([]Signed, k)
		exact := 0.0
		for i := 0; i < k; i++ {
			iv := rng.Intn(n + 1)
			wv := rng.Intn(n + 1)
			neg := rng.Intn(2) == 1
			inputs[i] = FromInt(iv, bits, bitstream.Unary{})
			weights[i] = Signed{Mag: FromInt(wv, bits, bitstream.Bresenham{}), Neg: neg}
			term := float64(iv) * float64(wv) / float64(n*n)
			if neg {
				exact -= term
			} else {
				exact += term
			}
		}
		res := Dot(inputs, weights)
		if res.Length != n {
			return false
		}
		// Each term may be off by at most 1/n in value units.
		return math.Abs(res.Value()-exact) <= float64(k)/float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDotEmptyAndMismatch(t *testing.T) {
	res := Dot(nil, nil)
	if res.Raw() != 0 || res.Value() != 0 {
		t.Fatal("empty dot should be zero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot(make([]SN, 1), nil)
}

// Property: DotInts steering matches independent sign bookkeeping.
func TestDotIntsSignSteering(t *testing.T) {
	lut := NewOSMLUT(6)
	inputs := []int{10, 20, 30, 64}
	weights := []int{5, -7, 0, -64}
	res := lut.DotInts(inputs, weights)
	wantPos := lut.MulInts(10, 5) + lut.MulInts(30, 0)
	wantNeg := lut.MulInts(20, 7) + lut.MulInts(64, 64)
	if res.PosOnes != wantPos || res.NegOnes != wantNeg {
		t.Fatalf("got (%d,%d) want (%d,%d)", res.PosOnes, res.NegOnes, wantPos, wantNeg)
	}
	if res.Raw() != wantPos-wantNeg {
		t.Fatal("Raw mismatch")
	}
}

// Ablation A2 evidence: deterministic LUT streams beat LFSR random streams
// on multiplication error by a wide margin.
func TestDeterministicBeatsLFSR(t *testing.T) {
	maeDet, maxDet := MulError(bitstream.Unary{}, bitstream.Bresenham{}, 8, 17)
	maeLFSR, _ := MulError(bitstream.LFSR{Width: 8, Seed: 1}, bitstream.LFSR{Width: 8, Seed: 0xB5}, 8, 17)
	if maxDet > 1.0/256.0+1e-9 {
		t.Fatalf("deterministic max error %.5f exceeds 1 bit", maxDet)
	}
	if maeLFSR < 2*maeDet {
		t.Fatalf("expected LFSR MAE (%.5f) >> deterministic MAE (%.5f)", maeLFSR, maeDet)
	}
}

func TestMulErrorZeroForZeroOperands(t *testing.T) {
	lut := NewOSMLUT(4)
	if lut.MulInts(0, 16) != 0 || lut.MulInts(16, 0) != 0 {
		t.Fatal("zero operand must yield zero product")
	}
	if lut.MulInts(16, 16) != 16 {
		t.Fatalf("full-scale product=%d want 16", lut.MulInts(16, 16))
	}
}

func BenchmarkLUTDotInts176(b *testing.B) {
	lut := NewOSMLUT(8)
	rng := rand.New(rand.NewSource(1))
	inputs := make([]int, 176)
	weights := make([]int, 176)
	for i := range inputs {
		inputs[i] = rng.Intn(257)
		weights[i] = rng.Intn(513) - 256
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lut.DotInts(inputs, weights)
	}
}
