package sc

import (
	"fmt"

	"repro/internal/bitstream"
)

// Bipolar stochastic format (Section II-D background): a stream of length
// N encodes a value v in [-1, 1] as v = 2*N1/N - 1, and multiplication is
// a bitwise XNOR. SCONNA itself uses the unipolar format with explicit
// sign steering (which wastes no encoding range on the sign), but the
// bipolar form is provided for completeness and for the SNG ablations.

// Bipolar is a bipolar-coded stochastic number.
type Bipolar struct {
	Bits *bitstream.Vector
}

// BipolarFromFloat encodes v in [-1, 1] into a stream of length n using
// generator g. The encoding error is bounded by the generator's own
// quantization (exact for the deterministic generators when v maps to an
// integer ones count).
func BipolarFromFloat(v float64, n int, g bitstream.Generator) Bipolar {
	if v < -1 || v > 1 {
		panic(fmt.Sprintf("sc: bipolar value %g out of [-1,1]", v))
	}
	ones := int((v + 1) / 2 * float64(n))
	if ones < 0 {
		ones = 0
	}
	if ones > n {
		ones = n
	}
	return Bipolar{Bits: g.Generate(ones, n)}
}

// Value decodes the bipolar stream back to [-1, 1].
func (b Bipolar) Value() float64 {
	n := b.Bits.Len()
	if n == 0 {
		return 0
	}
	return 2*float64(b.Bits.PopCount())/float64(n) - 1
}

// Len returns the stream length.
func (b Bipolar) Len() int { return b.Bits.Len() }

// MulBipolar multiplies two bipolar streams with the XNOR gate:
// P(out=1) = P(a=b), which decodes to the product of the two values when
// the streams are uncorrelated.
func MulBipolar(a, b Bipolar) Bipolar {
	n := a.Bits.Len()
	out := bitstream.New(n)
	out.Xor(a.Bits, b.Bits)
	inv := bitstream.New(n)
	inv.Not(out)
	return Bipolar{Bits: inv}
}

// BipolarMulError sweeps value pairs on a grid of the given stride and
// returns mean and max absolute multiplication error (value units) for a
// generator pairing — the bipolar counterpart of MulError, used by the
// SNG ablation.
func BipolarMulError(ga, gb bitstream.Generator, n, steps int) (mae, maxErr float64) {
	count := 0
	var sum float64
	for i := 0; i <= steps; i++ {
		va := -1 + 2*float64(i)/float64(steps)
		a := BipolarFromFloat(va, n, ga)
		for j := 0; j <= steps; j++ {
			vb := -1 + 2*float64(j)/float64(steps)
			b := BipolarFromFloat(vb, n, gb)
			got := MulBipolar(a, b).Value()
			exact := a.Value() * b.Value() // exact over the *encoded* values
			e := got - exact
			if e < 0 {
				e = -e
			}
			sum += e
			if e > maxErr {
				maxErr = e
			}
			count++
		}
	}
	return sum / float64(count), maxErr
}
