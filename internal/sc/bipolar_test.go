package sc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
)

func TestBipolarEncodeDecode(t *testing.T) {
	for _, v := range []float64{-1, -0.5, 0, 0.5, 1} {
		b := BipolarFromFloat(v, 256, bitstream.Unary{})
		if math.Abs(b.Value()-v) > 1.0/256 {
			t.Fatalf("v=%g decoded %g", v, b.Value())
		}
		if b.Len() != 256 {
			t.Fatalf("len=%d", b.Len())
		}
	}
}

func TestBipolarOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BipolarFromFloat(1.5, 64, bitstream.Unary{})
}

// XNOR on identical streams yields the all-ones stream: v*v for
// perfectly correlated streams decodes to 1, the classic bipolar
// correlation hazard — this is WHY generator pairing matters.
func TestBipolarCorrelationHazard(t *testing.T) {
	a := BipolarFromFloat(0.0, 64, bitstream.Unary{})
	p := MulBipolar(a, a)
	if p.Value() != 1 {
		t.Fatalf("self-XNOR should saturate to +1, got %g", p.Value())
	}
}

// With an uncorrelated pairing the XNOR product tracks the true product.
func TestBipolarMulAccuracy(t *testing.T) {
	f := func(ra, rb uint8) bool {
		va := -1 + 2*float64(ra)/255
		vb := -1 + 2*float64(rb)/255
		a := BipolarFromFloat(va, 256, bitstream.Unary{})
		b := BipolarFromFloat(vb, 256, bitstream.Bresenham{})
		got := MulBipolar(a, b).Value()
		exact := a.Value() * b.Value()
		// Bipolar error scales as ~2/sqrt-free deterministic bound:
		// |err| <= 2*(1 bit)/N *2 plus pairing slack.
		return math.Abs(got-exact) <= 16.0/256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBipolarMulErrorSweep(t *testing.T) {
	mae, maxe := BipolarMulError(bitstream.Unary{}, bitstream.Bresenham{}, 256, 16)
	if mae > 0.03 || maxe > 0.08 {
		t.Fatalf("deterministic bipolar pairing too lossy: mae=%.4f max=%.4f", mae, maxe)
	}
	maeL, _ := BipolarMulError(bitstream.LFSR{Width: 8, Seed: 1}, bitstream.LFSR{Width: 8, Seed: 0xB5}, 256, 16)
	if maeL < mae {
		t.Fatalf("LFSR pairing (%.4f) should not beat deterministic (%.4f)", maeL, mae)
	}
}

func TestBipolarEmpty(t *testing.T) {
	b := Bipolar{Bits: bitstream.New(0)}
	if b.Value() != 0 {
		t.Fatal("empty bipolar should decode to 0")
	}
}
