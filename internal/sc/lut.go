package sc

import (
	"fmt"

	"repro/internal/bitstream"
)

// OSMLUT is the OSM peripheral lookup table of Section IV-B: all stochastic
// bit-vectors are generated a priori (offline) and stored in bit-parallel
// form, so at run time the peripheral only performs a lookup and pushes the
// two vectors through serializers.
//
// The paper describes 2^B entries, each holding a combination of
// uncorrelated bit-vectors (Iv, Wv); entries are addressed through an
// XOR-based hash Ib^Wb. Functionally the table must yield the canonical
// stream for each operand value, so we store, per value v in [0,2^B):
//
//   - IStream[v]: the input-role stream (unary/thermometer coded), and
//   - WStream[v]: the weight-role stream (Bresenham rate coded),
//
// a pairing whose AND product is exact to within one bit and whose SCC is
// ~0, satisfying the uncorrelated-streams requirement from [26]. The
// XOR-hash addressing of the physical eDRAM is retained for the latency
// model (see internal/accel); it does not change the fetched values.
type OSMLUT struct {
	// Bits is the operand precision B; streams have 2^Bits bits.
	Bits int

	iStreams []*bitstream.Vector
	wStreams []*bitstream.Vector
}

// NewOSMLUT builds the lookup table for operand precision bits (e.g. 8),
// generating 2^bits+1 entries per role (values 0..2^bits inclusive; the
// all-ones stream encodes full scale).
func NewOSMLUT(bits int) *OSMLUT {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("sc: unsupported LUT precision %d", bits))
	}
	n := 1 << uint(bits)
	l := &OSMLUT{Bits: bits}
	l.iStreams = make([]*bitstream.Vector, n+1)
	l.wStreams = make([]*bitstream.Vector, n+1)
	iu, wb := bitstream.Unary{}, bitstream.Bresenham{}
	for v := 0; v <= n; v++ {
		l.iStreams[v] = iu.Generate(v, n)
		l.wStreams[v] = wb.Generate(v, n)
	}
	return l
}

// StreamLen returns the stream length in bits (2^Bits).
func (l *OSMLUT) StreamLen() int { return 1 << uint(l.Bits) }

// Entries returns the number of value entries (2^Bits + 1).
func (l *OSMLUT) Entries() int { return len(l.iStreams) }

// SizeBits returns the storage footprint of the table in bits, matching the
// paper's sizing rule: 2^B entries, each storing two 2^B-bit vectors.
func (l *OSMLUT) SizeBits() int { return (1 << uint(l.Bits)) * 2 * (1 << uint(l.Bits)) }

// Lookup returns the pre-generated stream pair for input value ib and
// weight magnitude wb. Both must be in [0, 2^Bits].
func (l *OSMLUT) Lookup(ib, wb int) (iv, wv SN) {
	return SN{Bits: l.iStreams[ib]}, SN{Bits: l.wStreams[wb]}
}

// XORIndex reproduces the paper's XOR-based hash used to address the
// physical eDRAM rows. It is exposed for the latency/energy model and for
// documentation; value lookup uses the operand values directly.
func XORIndex(ib, wb uint32) uint32 { return ib ^ wb }

// MulInts multiplies two integer operands through the LUT streams and the
// AND gate, returning the raw ones count of the product stream. The exact
// product in the same units is ib*wb/2^Bits; the count differs from it by
// at most one (the LUT pairing property).
func (l *OSMLUT) MulInts(ib, wb int) int {
	iv, wv := l.Lookup(ib, wb)
	return MulCount(iv, wv)
}

// DotInts computes a signed integer dot product through the LUT: inputs are
// unsigned (post-ReLU, as the paper notes bit-stream I carries no sign) and
// weights are signed integers in [-2^Bits, 2^Bits]. It returns the raw
// positive/negative accumulation counts, the physical quantities the two
// PCAs integrate.
func (l *OSMLUT) DotInts(inputs []int, weights []int) DotResult {
	if len(inputs) != len(weights) {
		panic(fmt.Sprintf("sc: length mismatch %d vs %d", len(inputs), len(weights)))
	}
	res := DotResult{Length: l.StreamLen()}
	for i, ib := range inputs {
		wb := weights[i]
		neg := wb < 0
		if neg {
			wb = -wb
		}
		c := l.MulInts(ib, wb)
		if neg {
			res.NegOnes += c
		} else {
			res.PosOnes += c
		}
	}
	return res
}
