package accuracy

import (
	"math"
	"testing"
)

func TestDefaultSpecsCoverPaperModels(t *testing.T) {
	specs := DefaultSpecs()
	if len(specs) != 4 {
		t.Fatalf("want 4 specs, got %d", len(specs))
	}
	dw := 0
	for _, s := range specs {
		if _, ok := PaperTableV[s.Name]; !ok {
			t.Fatalf("spec %q has no paper reference", s.Name)
		}
		if s.Depthwise {
			dw++
		}
	}
	if dw != 2 {
		t.Fatalf("want 2 depthwise proxies (mobile CNNs), got %d", dw)
	}
}

func TestGmeanFloored(t *testing.T) {
	rows := []Row{{Drop1: 0.0}, {Drop1: 0.8}}
	g := gmeanFloored(rows, func(r Row) float64 { return r.Drop1 })
	want := math.Sqrt(0.05 * 0.8)
	if math.Abs(g-want) > 1e-9 {
		t.Fatalf("gmean=%g want %g", g, want)
	}
}

// The core Table V claim, at reduced scale: quantized inference through
// the SCONNA functional core loses only a small amount of accuracy
// relative to exact integer inference.
func TestTableVDropSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	opts := QuickOptions()
	row, err := RunSpec(Spec{Name: "GoogleNet(proxy)", Width: 8, Seed: 7}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if row.Top1Exact < 60 {
		t.Fatalf("proxy failed to train: exact top-1 %.1f%%", row.Top1Exact)
	}
	if row.Drop1 > 15 {
		t.Fatalf("Top-1 drop %.1f points implausibly large", row.Drop1)
	}
	if row.Top5Exact < row.Top1Exact {
		t.Fatal("top-5 must dominate top-1")
	}
	if row.Params <= 0 {
		t.Fatal("missing parameter count")
	}
}

// Ideal-ADC inference must never be worse than noisy-ADC inference by a
// meaningful margin (the ADC is the paper's error source, Sec. V-C).
func TestIdealADCBoundsNoisy(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	opts := QuickOptions()
	spec := Spec{Name: "ResNet50(proxy)", Width: 8, Seed: 9}
	noisy, err := RunSpec(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.IdealADC = true
	ideal, err := RunSpec(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ideal.Drop1 > noisy.Drop1+6 {
		t.Fatalf("ideal ADC drop %.1f should not exceed noisy drop %.1f", ideal.Drop1, noisy.Drop1)
	}
	if ideal.Drop1 > 8 {
		t.Fatalf("ideal-ADC drop %.1f points too large: stream error alone must be small", ideal.Drop1)
	}
}
