package accuracy

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestDefaultSpecsCoverPaperModels(t *testing.T) {
	t.Parallel()
	specs := DefaultSpecs()
	if len(specs) != 4 {
		t.Fatalf("want 4 specs, got %d", len(specs))
	}
	dw := 0
	for _, s := range specs {
		if _, ok := PaperTableV[s.Name]; !ok {
			t.Fatalf("spec %q has no paper reference", s.Name)
		}
		if s.Depthwise {
			dw++
		}
	}
	if dw != 2 {
		t.Fatalf("want 2 depthwise proxies (mobile CNNs), got %d", dw)
	}
}

func TestGmeanFloored(t *testing.T) {
	t.Parallel()
	rows := []Row{{Drop1: 0.0}, {Drop1: 0.8}}
	g := gmeanFloored(rows, func(r Row) float64 { return r.Drop1 })
	want := math.Sqrt(0.05 * 0.8)
	if math.Abs(g-want) > 1e-9 {
		t.Fatalf("gmean=%g want %g", g, want)
	}
}

// proxyFixture holds the package's one-time trained/quantized proxy: the
// evaluation tests share it instead of each retraining their own network.
// -short swaps in the smallest pipeline that still exercises every stage.
var proxyFixture struct {
	once sync.Once
	p    *Prepared
	opts Options
	err  error
}

func preparedProxy(t *testing.T) (*Prepared, Options) {
	t.Helper()
	proxyFixture.once.Do(func() {
		opts := QuickOptions()
		if testing.Short() {
			opts = ShortOptions()
		}
		proxyFixture.opts = opts
		proxyFixture.p, proxyFixture.err = Prepare(Spec{Name: "GoogleNet(proxy)", Width: 8, Seed: 7}, opts)
	})
	if proxyFixture.err != nil {
		t.Fatal(proxyFixture.err)
	}
	return proxyFixture.p, proxyFixture.opts
}

// The core Table V claim, at reduced scale: quantized inference through
// the SCONNA functional core loses only a small amount of accuracy
// relative to exact integer inference. The short tier runs the same
// pipeline on a barely-trained proxy, so it asserts the error mechanism's
// bound but not a convergence floor.
func TestTableVDropSmall(t *testing.T) {
	p, opts := preparedProxy(t)
	row, err := p.Evaluate(opts)
	if err != nil {
		t.Fatal(err)
	}
	dropBound := 15.0
	if testing.Short() {
		dropBound = 45.0
	} else if row.Top1Exact < 60 {
		t.Fatalf("proxy failed to train: exact top-1 %.1f%%", row.Top1Exact)
	}
	if row.Drop1 > dropBound {
		t.Fatalf("Top-1 drop %.1f points implausibly large", row.Drop1)
	}
	if row.Top5Exact < row.Top1Exact {
		t.Fatal("top-5 must dominate top-1")
	}
	if row.Params <= 0 {
		t.Fatal("missing parameter count")
	}
}

// Ideal-ADC inference must never be worse than noisy-ADC inference by a
// meaningful margin (the ADC is the paper's error source, Sec. V-C). The
// two evaluations share the fixture's one trained network.
func TestIdealADCBoundsNoisy(t *testing.T) {
	p, opts := preparedProxy(t)
	noisy, err := p.Evaluate(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.IdealADC = true
	ideal, err := p.Evaluate(opts)
	if err != nil {
		t.Fatal(err)
	}
	slack, streamBound := 6.0, 8.0
	if testing.Short() {
		slack, streamBound = 15.0, 25.0
	}
	if ideal.Drop1 > noisy.Drop1+slack {
		t.Fatalf("ideal ADC drop %.1f should not exceed noisy drop %.1f", ideal.Drop1, noisy.Drop1)
	}
	if ideal.Drop1 > streamBound {
		t.Fatalf("ideal-ADC drop %.1f points too large: stream error alone must be small", ideal.Drop1)
	}
}

// Data-parallel training must not change what the study measures: a
// Prepare with TrainWorkers=N is bit-identical to TrainWorkers=1 (the
// sharded all-reduce is worker-count-invariant), wire format included.
func TestPrepareTrainWorkersInvariance(t *testing.T) {
	t.Parallel()
	opts := ShortOptions()
	opts.TrainExamples = 48
	opts.Epochs = 1
	opts.EvalExamples = 8
	spec := Spec{Name: "GoogleNet(proxy)", Width: 4, Seed: 31}
	prepare := func(trainWorkers int) []float32 {
		o := opts
		o.TrainWorkers = trainWorkers
		p, err := Prepare(spec, o)
		if err != nil {
			t.Fatal(err)
		}
		var ws []float32
		for _, param := range p.Net.Params() {
			ws = append(ws, param.W.Data...)
		}
		return ws
	}
	ref := prepare(1)
	for _, workers := range []int{2, 8, -1} {
		got := prepare(workers)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("TrainWorkers=%d diverged from TrainWorkers=1", workers)
		}
	}
}

// The parallel study must be bit-identical to the serial one: per-spec
// pipelines are deterministic in their seeds and the shard partition of
// each evaluation is independent of the worker count.
func TestRunWorkerInvariance(t *testing.T) {
	t.Parallel()
	opts := ShortOptions()
	opts.TrainExamples = 64
	opts.Epochs = 1
	opts.EvalExamples = 16
	specs := []Spec{
		{Name: "GoogleNet(proxy)", Width: 4, Seed: 21},
		{Name: "ResNet50(proxy)", Width: 4, Seed: 22},
	}
	opts.Workers = 1
	serial, err := Run(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(specs)+1 || serial[len(serial)-1].Model != "Gmean" {
		t.Fatalf("unexpected study shape: %+v", serial)
	}
	for _, workers := range []int{2, 8} {
		opts.Workers = workers
		par, err := Run(specs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d study diverged from serial:\n%+v\nvs\n%+v", workers, par, serial)
		}
	}
}
