// Package accuracy implements the Table V experiment: the Top-1/Top-5
// accuracy drop of integer-quantized CNNs when their dot products run
// through the SCONNA functional core (stochastic streams + PCA + the
// 1.3%-MAPE ADC) instead of exact integer arithmetic.
//
// The paper evaluates four ImageNet CNNs through PyTorch; this package
// trains four proxy CNNs of increasing capacity on the procedural dataset
// (see DESIGN.md "Substitutions") — the depthwise proxies standing in for
// ShuffleNet_V2/MobileNet_V2 and the wider standard-conv proxies for
// GoogleNet/ResNet50 — and measures the same drop mechanism: per-chunk
// stochastic quantization plus ADC conversion error propagating through
// the layers, with larger models more error-tolerant.
package accuracy

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/quant"
)

// Spec describes one proxy model of the study.
type Spec struct {
	// Name is the paper CNN this proxy stands in for.
	Name string
	// Depthwise selects the depthwise-separable topology (mobile CNNs).
	Depthwise bool
	// Width scales the channel counts (model capacity).
	Width int
	// Seed makes training deterministic.
	Seed int64
	// Noise overrides the study's dataset noise for this proxy when
	// positive: the lower-capacity depthwise proxies need a gentler task
	// to train at all, just as their ImageNet counterparts start from
	// lower baseline accuracies.
	Noise float64
}

// DefaultSpecs mirrors the paper's four CNNs ordered as Table V:
// GoogleNet, ResNet50, MobileNet_V2, ShuffleNet_V2.
func DefaultSpecs() []Spec {
	return []Spec{
		{Name: "GoogleNet(proxy)", Depthwise: false, Width: 10, Seed: 101},
		{Name: "ResNet50(proxy)", Depthwise: false, Width: 14, Seed: 102},
		{Name: "MobileNet_V2(proxy)", Depthwise: true, Width: 8, Seed: 103, Noise: 0.3},
		{Name: "ShuffleNet_V2(proxy)", Depthwise: true, Width: 10, Seed: 104, Noise: 0.3},
	}
}

// PaperTableV records the published Top-1/Top-5 drops (percent) for
// comparison: GoogleNet 0.1/0.1, ResNet50 0.4/0.3, MobileNet_V2 1.5/0.7,
// ShuffleNet_V2 0.5/0.4, gmean 0.4/0.3.
var PaperTableV = map[string][2]float64{
	"GoogleNet(proxy)":     {0.1, 0.1},
	"ResNet50(proxy)":      {0.4, 0.3},
	"MobileNet_V2(proxy)":  {1.5, 0.7},
	"ShuffleNet_V2(proxy)": {0.5, 0.4},
}

// Row is one Table V line.
type Row struct {
	Model      string
	Params     int
	Top1Exact  float64 // percent
	Top5Exact  float64
	Top1Sconna float64
	Top5Sconna float64
	Drop1      float64 // percentage points
	Drop5      float64
}

// Options controls the study's cost/fidelity trade-off.
type Options struct {
	// TrainExamples and Epochs size the training runs.
	TrainExamples int
	Epochs        int
	// EvalExamples bounds the test-set size used for both engines.
	EvalExamples int
	// VDPESize is the functional core's N (chunking granularity).
	VDPESize int
	// Bits is the operand precision (8 in the paper).
	Bits int
	// IdealADC disables the converter error (isolates stream error).
	IdealADC bool
	// Noise is the dataset's additive noise amplitude. The study raises
	// it above the default so test examples sit near decision boundaries
	// and sub-percent arithmetic perturbations become measurable, like
	// ImageNet's fine-grained classes do for the paper.
	Noise float64
	// Workers bounds the study's concurrency: proxy models train in
	// parallel and each model's batched inference fans example shards
	// across engine-per-shard workers. <= 0 selects GOMAXPROCS. The
	// results are bit-identical for every worker count (see
	// quant.EvaluateParallel).
	Workers int
	// TrainWorkers fans each proxy's minibatch gradient computation
	// across data-parallel workers (nn.TrainParallel): != 0 enables the
	// sharded trainer (< 0 selects GOMAXPROCS), whose result is
	// bit-identical at every worker count. 0 keeps the legacy serial
	// nn.Train walk, which differs from the sharded trainer only in
	// gradient summation order (so trained weights — and with them the
	// study's row values — differ in float rounding between the two
	// trainers, while each trainer is individually deterministic).
	TrainWorkers int
}

// DefaultOptions returns the full-study configuration.
func DefaultOptions() Options {
	return Options{
		TrainExamples: 480,
		Epochs:        14,
		EvalExamples:  160,
		VDPESize:      176,
		Bits:          8,
		Noise:         0.55,
	}
}

// QuickOptions returns a reduced configuration for tests and benchmarks:
// smaller training runs on a gentler dataset than the full study.
func QuickOptions() Options {
	o := DefaultOptions()
	o.TrainExamples = 240
	o.Epochs = 10
	o.EvalExamples = 40
	o.VDPESize = 64
	o.Noise = 0.3
	return o
}

// ShortOptions returns the `go test -short` tier: the smallest runs that
// still exercise the full train/quantize/evaluate pipeline. Accuracy
// floors do not hold at this scale — short-mode tests assert structure
// and error bounds, not convergence.
func ShortOptions() Options {
	o := QuickOptions()
	o.TrainExamples = 96
	o.Epochs = 3
	o.EvalExamples = 16
	o.VDPESize = 32
	return o
}

// Prepared carries the one-time trained and quantized artifacts of one
// proxy spec: the fixture the evaluation stage (and tests sharing fixtures
// across files) run against.
type Prepared struct {
	Spec Spec
	Net  *nn.Network
	QN   *quant.Network
	Test []nn.Example
}

// Prepare generates the spec's dataset, trains the proxy CNN and
// quantizes it. The whole stage is deterministic in (spec, opts): every
// RNG is seeded from spec.Seed.
func Prepare(spec Spec, opts Options) (*Prepared, error) {
	dcfg := dataset.DefaultConfig()
	dcfg.Seed = spec.Seed
	if opts.Noise > 0 {
		dcfg.Noise = opts.Noise
	}
	if spec.Noise > 0 {
		dcfg.Noise = spec.Noise
	}
	examples := dataset.Generate(dcfg, opts.TrainExamples+opts.EvalExamples)
	train, test := dataset.Split(examples, 0.25)
	if len(test) > opts.EvalExamples {
		test = test[:opts.EvalExamples]
	}

	var net *nn.Network
	epochs := opts.Epochs
	lr := 0.05
	if spec.Depthwise {
		net = nn.BuildDepthwiseCNN(spec.Width, dataset.NumClasses, spec.Seed)
		// Depthwise-separable stacks diverge at the standard LR and
		// converge slower; train them gentler and longer, as their
		// ImageNet counterparts also require.
		lr = 0.03
		epochs *= 2
	} else {
		net = nn.BuildSmallCNN(spec.Width, dataset.NumClasses, spec.Seed)
	}
	opt := nn.SGD{LR: lr, Momentum: 0.9}
	if opts.TrainWorkers != 0 {
		workers := opts.TrainWorkers
		if workers < 0 {
			workers = 0 // nn.TrainParallel: <= 0 selects GOMAXPROCS
		}
		if _, err := net.TrainParallel(train, epochs, 16, opt, rand.New(rand.NewSource(spec.Seed)), workers); err != nil {
			return nil, fmt.Errorf("accuracy: %s: data-parallel training: %w", spec.Name, err)
		}
	} else {
		net.Train(train, epochs, 16, opt, rand.New(rand.NewSource(spec.Seed)))
	}

	calib := train
	if len(calib) > 48 {
		calib = calib[:48]
	}
	qn, err := quant.Quantize(net, opts.Bits, calib)
	if err != nil {
		return nil, fmt.Errorf("accuracy: %s: %w", spec.Name, err)
	}
	return &Prepared{Spec: spec, Net: net, QN: qn, Test: test}, nil
}

// CoreConfig returns the functional-core operating point the prepared
// model evaluates against under opts.
func (p *Prepared) CoreConfig(opts Options) core.Config {
	ccfg := core.DefaultConfig()
	ccfg.Bits = opts.Bits
	ccfg.N = opts.VDPESize
	ccfg.M = 1
	ccfg.IdealADC = opts.IdealADC
	ccfg.ADCSeed = p.Spec.Seed
	return ccfg
}

// Evaluate runs the exact-integer and SCONNA evaluations of the prepared
// model and returns its Table V row. Both evaluations fan example shards
// across opts.Workers goroutines with one dot-product engine per shard
// (the SCONNA engine's VDPC is stateful and must not be shared); the
// shard partition and per-shard ADC seeds are fixed, so the row is
// bit-identical at every worker count.
func (p *Prepared) Evaluate(opts Options) (Row, error) {
	row := Row{Model: p.Spec.Name, Params: p.Net.NumParams()}
	e1, e5, err := p.QN.EvaluateParallel(p.Test, 5, quant.SharedEngine(quant.ExactEngine{}), opts.Workers)
	if err != nil {
		return Row{}, fmt.Errorf("accuracy: %s: exact evaluation: %w", p.Spec.Name, err)
	}
	s1, s5, err := p.QN.EvaluateParallel(p.Test, 5, quant.SconnaEngineFactory(p.CoreConfig(opts)), opts.Workers)
	if err != nil {
		return Row{}, fmt.Errorf("accuracy: %s: SCONNA evaluation: %w", p.Spec.Name, err)
	}
	row.Top1Exact, row.Top5Exact = e1*100, e5*100
	row.Top1Sconna, row.Top5Sconna = s1*100, s5*100
	row.Drop1 = row.Top1Exact - row.Top1Sconna
	row.Drop5 = row.Top5Exact - row.Top5Sconna
	return row, nil
}

// RunSpec trains, quantizes and evaluates one proxy model, returning its
// Table V row.
func RunSpec(spec Spec, opts Options) (Row, error) {
	p, err := Prepare(spec, opts)
	if err != nil {
		return Row{}, err
	}
	return p.Evaluate(opts)
}

// Run executes the full Table V study — the per-spec train/quantize/eval
// pipelines fan across opts.Workers goroutines; each pipeline is
// deterministic in its spec, so the study is bit-identical to the serial
// path — and appends a gmean row computed the way the paper reports it
// (geometric mean over per-model drops, floored at 0.05 points to keep
// the gmean defined when a model shows no drop).
func Run(specs []Spec, opts Options) ([]Row, error) {
	inner := opts
	if len(specs) > 1 {
		// The spec pipelines already occupy the pool; keep each
		// pipeline's evaluation shards serial rather than stacking a
		// second pool per spec on the same cores. Evaluation results
		// are worker-invariant, so this changes scheduling only.
		inner.Workers = 1
	}
	rows, err := parallel.Map(opts.Workers, len(specs), func(i int) (Row, error) {
		return RunSpec(specs[i], inner)
	})
	if err != nil {
		return nil, err
	}
	g := Row{Model: "Gmean"}
	g.Drop1 = gmeanFloored(rows, func(r Row) float64 { return r.Drop1 })
	g.Drop5 = gmeanFloored(rows, func(r Row) float64 { return r.Drop5 })
	rows = append(rows, g)
	return rows, nil
}

func gmeanFloored(rows []Row, f func(Row) float64) float64 {
	s := 0.0
	for _, r := range rows {
		v := f(r)
		if v < 0.05 {
			v = 0.05
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(rows)))
}
